package mpx_bench

import (
	"encoding/json"
	"os"
	"testing"
)

// benchRecord is one benchmark result serialized for artifact upload: the
// standard counters plus every user-reported metric (alloc gates, E23
// speedup, hierarchy depths).
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     int64              `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func recordOf(name string, fn func(*testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     r.Extra,
	}
}

func writeBenchJSON(t *testing.T, path string, records []benchRecord) {
	t.Helper()
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", path, len(records))
}

// TestWriteBenchJSON materializes the machine-readable benchmark
// artifacts: BENCH_E22.json (the per-level allocation gates for the
// unweighted and weighted hierarchy engines), BENCH_E23.json (the
// incremental-update-vs-rebuild experiment), BENCH_E24.json (the
// snapshot-load-vs-text-parse experiment), and BENCH_E25.json (the
// zero-alloc batched query-serving experiment: queries/sec, allocs/query,
// p50/p99 latency). Gated behind MPX_BENCH_JSON so ordinary test runs
// stay fast; CI sets it and uploads the files. Each wrapped benchmark
// keeps its own hard gate (alloc ceilings, the ≥3× and ≥10× speedup
// floors, the 0-allocs/query serving gate), so a regression fails this
// test rather than just shifting a number in the artifact.
func TestWriteBenchJSON(t *testing.T) {
	if os.Getenv("MPX_BENCH_JSON") == "" {
		t.Skip("set MPX_BENCH_JSON=1 to run the gate benchmarks and write BENCH_E22.json / BENCH_E23.json / BENCH_E24.json / BENCH_E25.json")
	}
	writeBenchJSON(t, "BENCH_E22.json", []benchRecord{
		recordOf("E22HierarchyAllocGate", BenchmarkE22HierarchyAllocGate),
		recordOf("E22WeightedHierarchyAllocGate", BenchmarkE22WeightedHierarchyAllocGate),
	})
	writeBenchJSON(t, "BENCH_E23.json", []benchRecord{
		recordOf("E23IncrementalUpdate", BenchmarkE23IncrementalUpdate),
		recordOf("E23RebuildBaseline", BenchmarkE23RebuildBaseline),
	})
	writeBenchJSON(t, "BENCH_E24.json", []benchRecord{
		recordOf("E24SnapshotLoad", BenchmarkE24SnapshotLoad),
		recordOf("E24TextParseBaseline", BenchmarkE24TextParseBaseline),
	})
	writeBenchJSON(t, "BENCH_E25.json", []benchRecord{
		recordOf("E25QueryThroughput", BenchmarkE25QueryThroughput),
		recordOf("E25QueryLatency", BenchmarkE25QueryLatency),
	})
}
