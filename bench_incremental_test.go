package mpx_bench

import (
	"testing"
	"time"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/xrand"
)

// e23Setup builds the E23 workload: a ≥100k-vertex grid, a persistent
// hierarchy over it, and a batch of ~500 intra-cluster non-tree edges of
// level 0 — edges whose deletion (and re-insertion) provably preserves
// every level's partition fixpoint, so an Update only refreshes level 0
// and splices everything above it. The batch touches ≤1% of the vertices.
func e23Setup(b *testing.B) (*graph.Graph, hier.Config, *hier.Hierarchy, []graph.Edge) {
	b.Helper()
	g := graph.Grid2D(350, 300) // 105000 vertices
	cfg := hier.Config{
		Beta:           0.15,
		Seed:           3,
		Workers:        8,
		Pool:           benchPool,
		NeedEdgeOrig:   true,
		TrackVertexMap: true,
	}
	// Recover level 0's decomposition exactly as the hierarchy derives it
	// (seed mixed with the level index) to classify edges.
	d0, err := core.Partition(g, cfg.Beta, core.Options{
		Seed: xrand.Mix(cfg.Seed, 0), Workers: cfg.Workers, Pool: benchPool,
	})
	if err != nil {
		b.Fatal(err)
	}
	var batch []graph.Edge
	for _, e := range g.Edges() {
		if d0.Center[e.U] == d0.Center[e.V] && d0.Parent[e.U] != e.V && d0.Parent[e.V] != e.U {
			batch = append(batch, e)
			if len(batch) == 500 {
				break
			}
		}
	}
	if len(batch) < 500 {
		b.Fatalf("only %d intra non-tree edges found", len(batch))
	}
	if maxDirty := g.NumVertices() / 100; 2*len(batch) > maxDirty {
		b.Fatalf("batch may touch %d vertices, above the 1%% budget %d", 2*len(batch), maxDirty)
	}
	h, err := hier.BuildHierarchy(cfg, g, nil)
	if err != nil {
		b.Fatal(err)
	}
	return g, cfg, h, batch
}

// checkE23Stats asserts the damage-frontier contract the E23 experiment is
// about: the batch re-derives nothing, refreshes exactly level 0, and
// splices every level above it.
func checkE23Stats(b *testing.B, us hier.UpdateStats, levels, n int) {
	b.Helper()
	if us.Rederived != 0 || us.Refreshed != 1 || us.Reused != levels-1 {
		b.Fatalf("update did not stop at the damage frontier: %+v (levels=%d)", us, levels)
	}
	if us.DirtyVertices > n/100 {
		b.Fatalf("batch dirtied %d vertices, above the 1%% budget %d", us.DirtyVertices, n/100)
	}
}

// BenchmarkE23IncrementalUpdate is the incremental-vs-rebuild experiment:
// batched edge updates touching ≤1% of the vertices of a 105k-vertex grid,
// applied through Hierarchy.Update (alternating delete/re-insert of the
// same intra-cluster edge set, so the hierarchy returns to a known state
// every two batches). It asserts the reuse stats per batch and fails
// unless Update beats a from-scratch BuildHierarchy by ≥3× wall-clock;
// the measured speedup is reported as a metric (and lands in
// BENCH_E23.json via the JSON harness).
func BenchmarkE23IncrementalUpdate(b *testing.B) {
	g, cfg, h, batch := e23Setup(b)
	levels := h.Levels()
	n := g.NumVertices()

	del := graph.Batch{Delete: batch}
	ins := graph.Batch{Insert: batch}

	// Explicit wall-clock comparison, amortized over delete+insert pairs.
	const trials = 3
	start := time.Now()
	for t := 0; t < trials; t++ {
		for _, bb := range []graph.Batch{del, ins} {
			us, err := h.Update(bb, nil)
			if err != nil {
				b.Fatal(err)
			}
			checkE23Stats(b, us, levels, n)
		}
	}
	updatePerOp := time.Since(start) / (2 * trials)
	start = time.Now()
	for t := 0; t < 2*trials; t++ {
		if _, err := hier.BuildHierarchy(cfg, g, nil); err != nil {
			b.Fatal(err)
		}
	}
	rebuildPerOp := time.Since(start) / (2 * trials)
	speedup := float64(rebuildPerOp) / float64(updatePerOp)
	if speedup < 3 {
		b.Fatalf("incremental update is only %.2fx faster than rebuild (update %v, rebuild %v); want >= 3x",
			speedup, updatePerOp, rebuildPerOp)
	}

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb := del
		if i%2 == 1 {
			bb = ins
		}
		us, err := h.Update(bb, nil)
		if err != nil {
			b.Fatal(err)
		}
		checkE23Stats(b, us, levels, n)
	}
	b.StopTimer()
	// ResetTimer wipes user metrics, so report after the timed loop.
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(levels), "levels")
}

// BenchmarkE23RebuildBaseline is the comparison arm: the same hierarchy
// built from scratch (what every batch would cost without Update).
func BenchmarkE23RebuildBaseline(b *testing.B) {
	g := graph.Grid2D(350, 300)
	cfg := hier.Config{
		Beta:           0.15,
		Seed:           3,
		Workers:        8,
		Pool:           benchPool,
		NeedEdgeOrig:   true,
		TrackVertexMap: true,
	}
	b.ReportAllocs()
	var levels int
	for i := 0; i < b.N; i++ {
		h, err := hier.BuildHierarchy(cfg, g, nil)
		if err != nil {
			b.Fatal(err)
		}
		levels = h.Levels()
	}
	b.ReportMetric(float64(levels), "levels")
}
