package mpx_bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mpx/internal/graph"
	"mpx/internal/graph/snapshot"
)

// e24Files materializes the E24 workload once per process: a ~1M-edge
// GNM graph written both as DIMACS text and as a binary CSR snapshot,
// in a temp directory cleaned up by the test framework.
var e24 struct {
	dimacs, snap string
	fingerprint  uint64
}

func e24Setup(b *testing.B) (dimacsPath, snapPath string) {
	b.Helper()
	if e24.dimacs != "" {
		return e24.dimacs, e24.snap
	}
	g := graph.GNM(200000, 1000000, 24)
	dir, err := os.MkdirTemp("", "mpx-e24-")
	if err != nil {
		b.Fatal(err)
	}
	// The process owns the dir for its lifetime; benchmarks share it.
	dimacsPath = filepath.Join(dir, "g.col")
	f, err := os.Create(dimacsPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteDIMACS(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	snapPath = filepath.Join(dir, "g.mpxsnap")
	if err := snapshot.WriteFile(snapPath, g, nil); err != nil {
		b.Fatal(err)
	}
	e24.dimacs, e24.snap, e24.fingerprint = dimacsPath, snapPath, g.Fingerprint()
	return dimacsPath, snapPath
}

// BenchmarkE24SnapshotLoad is the snapshot-store experiment: loading a
// ~1M-edge graph from the binary CSR snapshot (memory-mapped, zero-copy)
// versus parsing the same graph from DIMACS text. It verifies both paths
// produce the identical graph (fingerprint) and fails unless the snapshot
// load is ≥10× faster wall-clock; the measured speedup is reported as a
// metric and lands in BENCH_E24.json via the JSON harness.
func BenchmarkE24SnapshotLoad(b *testing.B) {
	dimacsPath, snapPath := e24Setup(b)

	// Explicit wall-clock gate, independent of b.N, like E23: the best of
	// a few trials per arm so a cold page cache or a GC pause on one trial
	// doesn't decide the verdict.
	const trials = 3
	best := func(f func() error) time.Duration {
		b.Helper()
		bestD := time.Duration(1<<63 - 1)
		for t := 0; t < trials; t++ {
			start := time.Now()
			if err := f(); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	loadTime := best(func() error {
		s, err := snapshot.Load(snapPath)
		if err != nil {
			return err
		}
		if s.Fingerprint() != e24.fingerprint {
			b.Fatalf("snapshot fingerprint %016x, want %016x", s.Fingerprint(), e24.fingerprint)
		}
		return s.Close()
	})
	parseTime := best(func() error {
		o, err := graph.OpenAny(dimacsPath)
		if err != nil {
			return err
		}
		if o.Graph.Fingerprint() != e24.fingerprint {
			b.Fatalf("parsed fingerprint %016x, want %016x", o.Graph.Fingerprint(), e24.fingerprint)
		}
		return o.Close()
	})
	speedup := float64(parseTime) / float64(loadTime)
	if speedup < 10 {
		b.Fatalf("snapshot load is only %.2fx faster than text parse (load %v, parse %v); want >= 10x",
			speedup, loadTime, parseTime)
	}

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := snapshot.Load(snapPath)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// ResetTimer wipes user metrics, so report after the timed loop.
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(parseTime.Nanoseconds()), "parse-ns")
	b.ReportMetric(float64(loadTime.Nanoseconds()), "load-ns")
}

// BenchmarkE24TextParseBaseline is the comparison arm: the same graph
// parsed from DIMACS text through the same OpenAny entry point the CLI
// uses.
func BenchmarkE24TextParseBaseline(b *testing.B) {
	dimacsPath, _ := e24Setup(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := graph.OpenAny(dimacsPath)
		if err != nil {
			b.Fatal(err)
		}
		if o.Graph.Fingerprint() != e24.fingerprint {
			b.Fatal("parsed graph fingerprint changed")
		}
		if err := o.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
