// Package mpx_bench is the root benchmark harness: one benchmark per
// experiment id in DESIGN.md (the paper's Figure 1 plus every proved
// guarantee turned into a measured table). Each benchmark exercises the
// computational core of its experiment and reports the headline quality
// metric via b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the performance side of EXPERIMENTS.md.
package mpx_bench

import (
	"fmt"
	"runtime"
	"testing"

	"mpx/internal/apps/blocks"
	"mpx/internal/apps/connectivity"
	"mpx/internal/apps/embedding"
	"mpx/internal/apps/lowstretch"
	"mpx/internal/apps/separator"
	"mpx/internal/apps/solver"
	"mpx/internal/apps/spanner"
	"mpx/internal/core"
	"mpx/internal/expt"
	"mpx/internal/frontier"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// benchGrid is shared by several benchmarks; built once.
var benchGrid = graph.Grid2D(250, 250)

// benchPool is the single persistent worker pool every benchmark run
// executes on — constructed once per process, exactly as cmd/mpx does.
var benchPool = parallel.NewPool(0)

// BenchmarkE1Figure1 decomposes the Figure 1 grid (scaled to 250x250) at
// each of the paper's six β values.
func BenchmarkE1Figure1(b *testing.B) {
	for _, beta := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			var clusters int
			for i := 0; i < b.N; i++ {
				d, err := core.Partition(benchGrid, beta, core.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				clusters = d.NumClusters()
			}
			b.ReportMetric(float64(clusters), "clusters")
		})
	}
}

// BenchmarkE2Diameter measures partitioning across the experiment families
// and reports the radius/(ln n / β) ratio.
func BenchmarkE2Diameter(b *testing.B) {
	families := map[string]*graph.Graph{
		"grid":      graph.Grid2D(200, 200),
		"gnm":       graph.GNM(40000, 160000, 1),
		"rmat":      graph.RMAT(15, 160000, 2),
		"hypercube": graph.Hypercube(15),
	}
	for name, g := range families {
		b.Run(name, func(b *testing.B) {
			var maxRad int32
			for i := 0; i < b.N; i++ {
				d, err := core.Partition(g, 0.1, core.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				maxRad = d.MaxRadius()
			}
			b.ReportMetric(float64(maxRad), "maxRadius")
		})
	}
}

// BenchmarkE3CutFraction reports the measured cut/β ratio per β.
func BenchmarkE3CutFraction(b *testing.B) {
	for _, beta := range []float64{0.02, 0.1, 0.5} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				d, err := core.Partition(benchGrid, beta, core.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				frac = d.CutFraction()
			}
			b.ReportMetric(frac/beta, "cut/beta")
		})
	}
}

// BenchmarkE4MaxShift benchmarks the shift-generation substrate (Lemma 4.2
// studies these values).
func BenchmarkE4MaxShift(b *testing.B) {
	const n = 1 << 17
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shifts := core.GenerateShifts(n, 0.1, uint64(i), core.ShiftExponential)
		_ = shifts[n-1]
	}
}

// BenchmarkE5DepthWork reports rounds (depth proxy) and relaxed/m (work
// proxy) across β.
func BenchmarkE5DepthWork(b *testing.B) {
	for _, beta := range []float64{0.05, 0.2} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			var rounds int
			var workRatio float64
			for i := 0; i < b.N; i++ {
				d, err := core.Partition(benchGrid, beta, core.Options{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = d.Rounds
				workRatio = float64(d.Relaxed) / float64(benchGrid.NumEdges())
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(workRatio, "relaxed/m")
		})
	}
}

// BenchmarkE6Workers sweeps the worker count over the high-diameter grid
// and the low-diameter gnm family (single-core hosts measure
// synchronization overhead; multi-core hosts measure speedup). All runs
// share benchPool, so the sweep isolates the logical worker count from
// pool construction. The gnm-smallbeta case runs β=0.01, where the
// shift-plan radix sort dominates the serial fraction — it is the workload
// the pool-parallel sortByFrac passes are gated on.
func BenchmarkE6Workers(b *testing.B) {
	gnm := graph.GNM(40000, 160000, 1)
	families := []struct {
		name string
		g    *graph.Graph
		beta float64
	}{
		{"grid", benchGrid, 0.1},
		{"gnm", gnm, 0.1},
		{"gnm-smallbeta", gnm, 0.01},
	}
	for _, fam := range families {
		for _, w := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Partition(fam.g, fam.beta, core.Options{Seed: 1, Workers: w, Pool: benchPool}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE7Baselines compares the three decomposition algorithms on one
// workload.
func BenchmarkE7Baselines(b *testing.B) {
	g := graph.GNM(50000, 200000, 3)
	b.Run("mpx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Partition(g, 0.1, core.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mpx-sequential-ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PartitionSequential(g, 0.1, core.Options{Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ballgrow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BallGrowing(g, 0.1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PartitionIterative(g, 0.1, uint64(i), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8TieBreak compares the Section 5 tie-breaking variants.
func BenchmarkE8TieBreak(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"fractional", core.Options{TieBreak: core.TieFractional}},
		{"permutation", core.Options{TieBreak: core.TiePermutation}},
		{"quantile-shifts", core.Options{ShiftSource: core.ShiftQuantile}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := v.opts
				opts.Seed = uint64(i)
				if _, err := core.Partition(benchGrid, 0.1, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Weighted benchmarks the weighted shifted-Dijkstra extension.
func BenchmarkE9Weighted(b *testing.B) {
	wg := graph.RandomWeights(graph.Grid2D(150, 150), 1, 10, 5)
	var cut float64
	for i := 0; i < b.N; i++ {
		d, err := core.PartitionWeighted(wg, 0.1, core.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		cut = d.CutWeightFraction()
	}
	b.ReportMetric(cut, "cutWeightFrac")
}

// BenchmarkE10Blocks benchmarks the iterated block decomposition.
func BenchmarkE10Blocks(b *testing.B) {
	g := graph.Torus2D(120, 120)
	var nblocks int
	for i := 0; i < b.N; i++ {
		bd, err := blocks.Decompose(g, 0.5, uint64(i), 0)
		if err != nil {
			b.Fatal(err)
		}
		nblocks = bd.NumBlocks()
	}
	b.ReportMetric(float64(nblocks), "blocks")
}

// BenchmarkE11Spanner benchmarks spanner construction (without the
// stretch-measurement BFS sampling).
func BenchmarkE11Spanner(b *testing.B) {
	g0 := graph.RoadNetwork(150, 150, 0.85, 80, 7)
	g, _ := graph.LargestComponent(g0)
	var size int64
	for i := 0; i < b.N; i++ {
		s, err := spanner.Build(g, 0.1, core.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		size = s.Size()
	}
	b.ReportMetric(float64(size)/float64(g.NumEdges()), "keptFrac")
}

// BenchmarkE12LowStretch benchmarks the AKPW-style tree construction plus
// exact stretch evaluation.
func BenchmarkE12LowStretch(b *testing.B) {
	g := graph.Grid2D(100, 100)
	var mean float64
	for i := 0; i < b.N; i++ {
		tr, err := lowstretch.Build(g, 0.2, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		mean = tr.Stretch().Mean
	}
	b.ReportMetric(mean, "meanStretch")
}

// BenchmarkE19Direction sweeps the Partition traversal modes — push-only
// against the Beamer-switching hybrid (and pull-only for reference) — on
// the high-diameter grid (where the hybrid must not lose) and the
// low-diameter gnm/rmat/hypercube families (where dense pull rounds win).
func BenchmarkE19Direction(b *testing.B) {
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid2D(250, 250)},
		{"gnm", graph.GNM(60000, 240000, 1)},
		{"rmat", graph.RMAT(16, 240000, 2)},
		{"hypercube", graph.Hypercube(16)},
	}
	modes := []struct {
		name string
		dir  core.Direction
	}{
		{"push", core.DirectionForcePush},
		{"hybrid", core.DirectionAuto},
		{"pull", core.DirectionForcePull},
	}
	for _, fam := range families {
		for _, mode := range modes {
			b.Run(fam.name+"/"+mode.name, func(b *testing.B) {
				var relaxed int64
				for i := 0; i < b.N; i++ {
					d, err := core.Partition(fam.g, 0.1,
						core.Options{Seed: 1, Direction: mode.dir})
					if err != nil {
						b.Fatal(err)
					}
					relaxed = d.Relaxed
				}
				b.ReportMetric(float64(relaxed)/float64(fam.g.NumEdges()), "relaxed/m")
			})
		}
	}
}

// maxSteadyAllocsPerRound is the allocation-regression gate for E20: a
// steady-state round's only garbage is the handful of loop closures
// submitted to the pool (every O(n) buffer is owned by the Traversal /
// pool scratch), so the per-round allocation count must stay a small
// constant. The measured baseline is ~3.4 allocs and ~2.7 KB per round;
// the gates are hard ceilings with modest headroom, not loose tolerances —
// an accidental per-round O(n) buffer shows up as tens of kilobytes per
// round and fails the bytes gate immediately.
const (
	maxSteadyAllocsPerRound = 6
	maxSteadyBytesPerRound  = 4096
)

// Weighted-round gates for E20's weighted variant. A weighted partition
// call unavoidably allocates its O(n) result and setup arrays once, which
// amortize over its hundreds of buckets/rounds; the per-round remainder is
// the submitted closures plus that amortized setup. An O(n) buffer
// allocated per bucket round (the regression this guards against — e.g.
// the pull cohort or frontier bitmap losing its reuse) costs ~100 KB/round
// on this workload and blows the bytes gate by an order of magnitude.
const (
	maxWeightedAllocsPerRound = 12
	maxWeightedBytesPerRound  = 24576
)

// BenchmarkE20RoundOverhead measures the fixed overhead of one
// steady-state synchronous round: a frontier BFS over the gnm family with
// a persistent Traversal and the shared pool, reporting allocations and
// bytes per round and failing the run if either regresses past the gate.
func BenchmarkE20RoundOverhead(b *testing.B) {
	g := graph.GNM(60000, 240000, 1)
	n := g.NumVertices()
	tr := frontier.NewTraversal(g)
	opts := frontier.Options{Workers: 8, Pool: benchPool}
	visited := parallel.NewBitset(n)
	dist := make([]int32, n)
	var depth int32
	cond := func(u uint32) bool { return !visited.GetAtomic(u) }
	update := func(src, dst uint32) bool {
		if visited.TrySetAtomic(dst) {
			dist[dst] = depth
			return true
		}
		return false
	}
	runBFS := func() int {
		parallel.Fill(0, dist, -1)
		visited.Reset(0)
		depth = 0
		dist[0] = 0
		visited.Set(0)
		// NewSubset takes ownership of the id slice (Recycle reuses it as
		// compaction scratch), so each run hands over a fresh one.
		front := frontier.NewSubset(n, []uint32{0})
		rounds := 0
		for !front.IsEmpty() {
			depth++
			next := tr.EdgeMap(front, cond, update, opts)
			tr.Recycle(front)
			front = next
			rounds++
		}
		tr.Recycle(front)
		return rounds
	}
	runBFS() // size every piece of scratch before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		totalRounds += runBFS()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	allocsPerRound := float64(after.Mallocs-before.Mallocs) / float64(totalRounds)
	bytesPerRound := float64(after.TotalAlloc-before.TotalAlloc) / float64(totalRounds)
	b.ReportMetric(allocsPerRound, "allocs/round")
	b.ReportMetric(bytesPerRound, "B/round")
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
	if allocsPerRound > maxSteadyAllocsPerRound {
		b.Fatalf("steady-state rounds allocate %.1f objects/round (gate %d): per-round scratch is leaking",
			allocsPerRound, maxSteadyAllocsPerRound)
	}
	if bytesPerRound > maxSteadyBytesPerRound {
		b.Fatalf("steady-state rounds allocate %.0f B/round (gate %d): an O(n) per-round buffer is back",
			bytesPerRound, maxSteadyBytesPerRound)
	}
}

// BenchmarkE20WeightedRoundOverhead is the weighted companion of E20: it
// measures allocations per Δ-stepping bucket round across whole
// PartitionWeightedParallel calls (auto direction, so push and pull rounds
// both execute) and fails the run when a per-round O(n) allocation sneaks
// back into the relaxation/pull/cohort machinery.
func BenchmarkE20WeightedRoundOverhead(b *testing.B) {
	wg := graph.RandomWeights(graph.Grid2D(120, 120), 1, 10, 3)
	opts := core.Options{Seed: 1, Workers: 8, Pool: benchPool}
	run := func() int {
		d, err := core.PartitionWeightedParallel(wg, 0.1, 0, opts)
		if err != nil {
			b.Fatal(err)
		}
		return d.Rounds
	}
	run() // warm the pool and the allocator size classes before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		totalRounds += run()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	allocsPerRound := float64(after.Mallocs-before.Mallocs) / float64(totalRounds)
	bytesPerRound := float64(after.TotalAlloc-before.TotalAlloc) / float64(totalRounds)
	b.ReportMetric(allocsPerRound, "allocs/round")
	b.ReportMetric(bytesPerRound, "B/round")
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
	if allocsPerRound > maxWeightedAllocsPerRound {
		b.Fatalf("weighted rounds allocate %.1f objects/round (gate %d): per-round scratch is leaking",
			allocsPerRound, maxWeightedAllocsPerRound)
	}
	if bytesPerRound > maxWeightedBytesPerRound {
		b.Fatalf("weighted rounds allocate %.0f B/round (gate %d): an O(n) per-round buffer is back",
			bytesPerRound, maxWeightedBytesPerRound)
	}
}

// BenchmarkE21WeightedDirection is the weighted analogue of the E19
// sweep: push-only against the Beamer-switching hybrid (and pull-only for
// reference) on the high-diameter grid (where the hybrid must not lose)
// and the low-diameter gnm family (where dense buckets favor pull).
func BenchmarkE21WeightedDirection(b *testing.B) {
	families := []struct {
		name string
		wg   *graph.WeightedGraph
	}{
		{"grid", graph.RandomWeights(graph.Grid2D(150, 150), 1, 10, 5)},
		{"gnm", graph.RandomWeights(graph.GNM(40000, 160000, 1), 1, 10, 5)},
	}
	modes := []struct {
		name string
		dir  core.Direction
	}{
		{"push", core.DirectionForcePush},
		{"hybrid", core.DirectionAuto},
		{"pull", core.DirectionForcePull},
	}
	for _, fam := range families {
		for _, mode := range modes {
			b.Run(fam.name+"/"+mode.name, func(b *testing.B) {
				var rounds int
				for i := 0; i < b.N; i++ {
					d, err := core.PartitionWeightedParallel(fam.wg, 0.1, 0,
						core.Options{Seed: 1, Workers: 8, Pool: benchPool, Direction: mode.dir})
					if err != nil {
						b.Fatal(err)
					}
					rounds = d.Rounds
				}
				b.ReportMetric(float64(rounds), "rounds")
			})
		}
	}
}

// BenchmarkE22Apps sweeps the hierarchy applications — the AKPW low-stretch
// tree and the Linial–Saks block decomposition, both running on the
// internal/hier engine — over the grid and gnm families at workers
// 1/2/4/8, all on the shared process pool.
func BenchmarkE22Apps(b *testing.B) {
	families := []struct {
		name string
		g    *graph.Graph
		beta float64
	}{
		{"grid", graph.Grid2D(160, 160), 0.2},
		{"gnm", graph.GNM(30000, 120000, 1), 0.3},
	}
	for _, fam := range families {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("lowstretch/%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var levels int
				for i := 0; i < b.N; i++ {
					tr, err := lowstretch.BuildPool(benchPool, fam.g, fam.beta, 1, w, core.DirectionAuto)
					if err != nil {
						b.Fatal(err)
					}
					levels = tr.Levels
				}
				b.ReportMetric(float64(levels), "levels")
			})
			b.Run(fmt.Sprintf("blocks/%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var nblocks int
				for i := 0; i < b.N; i++ {
					bd, err := blocks.DecomposePool(benchPool, fam.g, 0.5, 1, 0, w, core.DirectionAuto)
					if err != nil {
						b.Fatal(err)
					}
					nblocks = bd.NumBlocks()
				}
				b.ReportMetric(float64(nblocks), "blocks")
			})
		}
	}
}

// maxHierAllocsPerLevel is the allocation-regression gate for E22: one
// steady-state hierarchy level allocates only its results (the quotient
// CSR, the quotient map, the annotation table, Partition's output arrays)
// plus submitted pool closures and Partition's start-time buckets — a
// bounded count, independent of m. Measured baseline is ~390 allocs/level
// on the gnm workload; the gate is a hard ceiling with modest headroom.
// The retired map-based contraction paths (lowstretch's per-level
// map[key]annEdge rebuild, ContractClusters' map[uint32]uint32 +
// FromEdgesDedup) allocated O(m) objects per level and blow this gate by
// two orders of magnitude.
const maxHierAllocsPerLevel = 600

// BenchmarkE22HierarchyAllocGate measures allocations per hierarchy level
// across whole low-stretch-tree builds (the deepest engine user: contract
// mode with edge annotations) and fails the run if the per-level count
// regresses toward O(m) map churn.
func BenchmarkE22HierarchyAllocGate(b *testing.B) {
	g := graph.GNM(30000, 120000, 1)
	run := func() int {
		tr, err := lowstretch.BuildPool(benchPool, g, 0.3, 1, 8, core.DirectionAuto)
		if err != nil {
			b.Fatal(err)
		}
		return tr.Levels
	}
	run() // warm the pool and allocator size classes before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	totalLevels := 0
	for i := 0; i < b.N; i++ {
		totalLevels += run()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	allocsPerLevel := float64(after.Mallocs-before.Mallocs) / float64(totalLevels)
	b.ReportMetric(allocsPerLevel, "allocs/level")
	b.ReportMetric(float64(totalLevels)/float64(b.N), "levels")
	if allocsPerLevel > maxHierAllocsPerLevel {
		b.Fatalf("hierarchy levels allocate %.0f objects/level (gate %d): an O(m) per-level rebuild is back",
			allocsPerLevel, maxHierAllocsPerLevel)
	}
}

// maxWeightedHierAllocsPerLevel is the allocation-regression gate for the
// WEIGHTED hierarchy: one steady-state weighted level allocates its
// results (the weighted quotient CSR including the summed-weight array,
// the quotient map, the annotation table, the weighted partition's output
// and Δ-stepping buckets) plus submitted pool closures — a bounded count,
// independent of m. Measured baseline is ~160 allocs/level on the gnm
// workload; the gate is a hard ceiling with modest headroom. A per-level
// O(m) rebuild (e.g. a map-based weight merge in the contraction) blows it
// by orders of magnitude.
const maxWeightedHierAllocsPerLevel = 400

// BenchmarkE22WeightedHierarchyAllocGate is the weighted twin of the E22
// gate: allocations per hierarchy level across whole AKPW weighted
// low-stretch builds (weighted engine, contract mode, edge annotations,
// weight-class schedules), failing the run on regression toward O(m)
// per-level churn.
func BenchmarkE22WeightedHierarchyAllocGate(b *testing.B) {
	g := graph.GNM(30000, 120000, 1)
	wg := graph.RandomWeights(g, 1, 8, 2)
	run := func() int {
		tr, err := lowstretch.BuildWeightedPool(benchPool, wg, 0.3, 1, 8, core.DirectionAuto)
		if err != nil {
			b.Fatal(err)
		}
		return tr.Levels
	}
	run() // warm the pool and allocator size classes before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	totalLevels := 0
	for i := 0; i < b.N; i++ {
		totalLevels += run()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	allocsPerLevel := float64(after.Mallocs-before.Mallocs) / float64(totalLevels)
	b.ReportMetric(allocsPerLevel, "allocs/level")
	b.ReportMetric(float64(totalLevels)/float64(b.N), "levels")
	if allocsPerLevel > maxWeightedHierAllocsPerLevel {
		b.Fatalf("weighted hierarchy levels allocate %.0f objects/level (gate %d): an O(m) per-level rebuild is back",
			allocsPerLevel, maxWeightedHierAllocsPerLevel)
	}
}

// BenchmarkE22WeightedApps sweeps the weighted hierarchy applications —
// the true AKPW tree and the weighted block decomposition — over the
// weighted grid and gnm families at workers 1/2/4/8.
func BenchmarkE22WeightedApps(b *testing.B) {
	families := []struct {
		name string
		wg   *graph.WeightedGraph
		beta float64
	}{
		{"grid", graph.RandomWeights(graph.Grid2D(160, 160), 1, 8, 3), 0.2},
		{"gnm", graph.RandomWeights(graph.GNM(30000, 120000, 1), 1, 8, 3), 0.3},
	}
	for _, fam := range families {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("lowstretch/%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var levels int
				for i := 0; i < b.N; i++ {
					tr, err := lowstretch.BuildWeightedPool(benchPool, fam.wg, fam.beta, 1, w, core.DirectionAuto)
					if err != nil {
						b.Fatal(err)
					}
					levels = tr.Levels
				}
				b.ReportMetric(float64(levels), "levels")
			})
			b.Run(fmt.Sprintf("blocks/%s/workers=%d", fam.name, w), func(b *testing.B) {
				b.ReportAllocs()
				var nblocks int
				for i := 0; i < b.N; i++ {
					bd, err := blocks.DecomposeWeightedPool(benchPool, fam.wg, 0.5, 1, 0, w, core.DirectionAuto)
					if err != nil {
						b.Fatal(err)
					}
					nblocks = bd.NumBlocks()
				}
				b.ReportMetric(float64(nblocks), "blocks")
			})
		}
	}
}

// BenchmarkExperimentHarness runs the full experiment suite end to end at
// test scale (integration smoke at benchmark cadence).
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := expt.Config{Scale: 0.01, Seed: 1, Trials: 1}
	for i := 0; i < b.N; i++ {
		for _, id := range expt.IDs() {
			if _, err := expt.Run(id, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE13Lemma44 benchmarks one Monte-Carlo round of the Lemma 4.4
// event probability (the paper's key partition lemma).
func BenchmarkE13Lemma44(b *testing.B) {
	d := make([]float64, 1000)
	for i := 0; i < b.N; i++ {
		_ = core.Lemma44Probability(d, 0.1, 1, 100, uint64(i))
	}
}

// BenchmarkE14Solver benchmarks the SDD-solver pipeline: low-stretch tree
// construction plus one tree-preconditioned CG solve.
func BenchmarkE14Solver(b *testing.B) {
	g := graph.Grid2D(60, 60)
	l := solver.NewLaplacian(g)
	rhs := make([]float64, g.NumVertices())
	var sum float64
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
		sum += rhs[i]
	}
	for i := range rhs {
		rhs[i] -= sum / float64(len(rhs))
	}
	var iters int
	for i := 0; i < b.N; i++ {
		tr, err := lowstretch.Build(g, 0.2, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		ts, err := solver.NewTreeSolver(g.NumVertices(), tr.Edges)
		if err != nil {
			b.Fatal(err)
		}
		_, res := solver.PCG(l, ts, rhs, 1e-8, 10000)
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "pcgIters")
}

// BenchmarkE15WeightedParallel benchmarks the delta-stepping weighted
// partition (the Section 6 parallel-depth exploration).
func BenchmarkE15WeightedParallel(b *testing.B) {
	wg := graph.RandomWeights(graph.Grid2D(120, 120), 1, 10, 3)
	var rounds int
	for i := 0; i < b.N; i++ {
		d, err := core.PartitionWeightedParallel(wg, 0.1, 0, core.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = d.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE16Embedding benchmarks the hierarchical tree-metric embedding.
func BenchmarkE16Embedding(b *testing.B) {
	g := graph.Grid2D(50, 50)
	for i := 0; i < b.N; i++ {
		if _, err := embedding.Build(g, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17Separator benchmarks balanced separator extraction.
func BenchmarkE17Separator(b *testing.B) {
	g := graph.Grid2D(100, 100)
	var size int
	for i := 0; i < b.N; i++ {
		r, err := separator.Find(g, 0, 2.0/3, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		size = len(r.Separator)
	}
	b.ReportMetric(float64(size), "sepSize")
}

// BenchmarkE18Connectivity benchmarks LDD-contraction connectivity against
// the sequential BFS labeling.
func BenchmarkE18Connectivity(b *testing.B) {
	g := graph.RMAT(15, 200000, 5)
	b.Run("ldd-contraction", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			r, err := connectivity.ComponentsPool(benchPool, g, 0.4, uint64(i), 0, core.DirectionAuto)
			if err != nil {
				b.Fatal(err)
			}
			rounds = r.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("sequential-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = graph.ConnectedComponents(g)
		}
	})
}
