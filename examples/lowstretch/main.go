// Lowstretch builds AKPW-style low-stretch spanning trees on grids using
// the paper's Partition as the decomposition step, and compares average
// edge stretch against plain BFS trees — the tree-embedding application
// that motivates the paper (parallel SDD solvers).
package main

import (
	"fmt"
	"log"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/graph"
)

func main() {
	fmt.Printf("%12s %8s %15s %16s %12s\n", "graph", "n", "bfsMeanStretch", "akpwMeanStretch", "improvement")
	for _, side := range []int{32, 64, 128, 192} {
		g := graph.Grid2D(side, side)
		bfsTree, err := lowstretch.BFSTree(g)
		if err != nil {
			log.Fatal(err)
		}
		akpw, err := lowstretch.Build(g, 0.2, 5)
		if err != nil {
			log.Fatal(err)
		}
		b, l := bfsTree.Stretch(), akpw.Stretch()
		fmt.Printf("%12s %8d %15.2f %16.2f %11.2fx\n",
			fmt.Sprintf("grid%dx%d", side, side), g.NumVertices(), b.Mean, l.Mean, b.Mean/l.Mean)
	}
	fmt.Println("\nBFS-tree stretch grows ~sqrt(n); the decomposition hierarchy keeps it nearly flat.")
}
