// Gridviz reproduces the paper's Figure 1 at a chosen scale: it decomposes
// a square grid under the six β values of the figure, writes one PNG panel
// per β, and prints the quantitative shape (clusters up, radius down as β
// grows). It also prints a small ASCII rendering so the cluster geometry is
// visible without an image viewer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/render"
)

func main() {
	side := flag.Int("side", 250, "grid side length (paper: 1000)")
	out := flag.String("out", ".", "output directory for PNG panels")
	flag.Parse()

	g := graph.Grid2D(*side, *side)
	fmt.Printf("decomposing %dx%d grid (n=%d, m=%d)\n\n", *side, *side, g.NumVertices(), g.NumEdges())
	fmt.Printf("%8s %9s %10s %12s\n", "beta", "clusters", "maxRadius", "cutFraction")
	for i, beta := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1} {
		d, err := core.Partition(g, beta, core.Options{Seed: uint64(i) + 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8g %9d %10d %12.4f\n", beta, d.NumClusters(), d.MaxRadius(), d.CutFraction())
		path := fmt.Sprintf("%s/grid_beta_%g.png", *out, beta)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := render.GridPNG(f, d.Center, *side, *side, 1); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	// A glanceable panel: 20x60 grid at beta=0.1 as ASCII.
	small := graph.Grid2D(20, 60)
	d, err := core.Partition(small, 0.1, core.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n20x60 grid at beta=0.1 (one letter per cluster):\n\n%s", render.GridASCII(d.Center, 20, 60))
}
