// Solver demonstrates the application the paper targets: solving graph
// Laplacian (SDD) systems with tree-preconditioned conjugate gradient,
// where the preconditioner tree is the low-stretch spanning tree built
// over the paper's Partition. Lower stretch => fewer PCG iterations.
package main

import (
	"fmt"
	"log"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/apps/solver"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

func main() {
	fmt.Printf("%10s %8s %8s %12s %13s\n", "grid", "n", "cg", "bfs-tree-pcg", "akpw-tree-pcg")
	for _, side := range []int{30, 50, 80, 120} {
		g := graph.Grid2D(side, side)
		l := solver.NewLaplacian(g)

		// Random right-hand side, projected onto 1-perp.
		b := make([]float64, g.NumVertices())
		var sum float64
		for i := range b {
			b[i] = xrand.Uniform01(9, uint64(i)) - 0.5
			sum += b[i]
		}
		for i := range b {
			b[i] -= sum / float64(len(b))
		}

		akpw, err := lowstretch.Build(g, 0.2, 7)
		if err != nil {
			log.Fatal(err)
		}
		bfsTree, err := lowstretch.BFSTree(g)
		if err != nil {
			log.Fatal(err)
		}
		tsA, err := solver.NewTreeSolver(g.NumVertices(), akpw.Edges)
		if err != nil {
			log.Fatal(err)
		}
		tsB, err := solver.NewTreeSolver(g.NumVertices(), bfsTree.Edges)
		if err != nil {
			log.Fatal(err)
		}
		_, cg := solver.CG(l, b, 1e-8, 100*side)
		_, pb := solver.PCG(l, tsB, b, 1e-8, 100*side)
		_, pa := solver.PCG(l, tsA, b, 1e-8, 100*side)
		fmt.Printf("%10s %8d %8d %12d %13d\n",
			fmt.Sprintf("%dx%d", side, side), g.NumVertices(),
			cg.Iterations, pb.Iterations, pa.Iterations)
	}
	fmt.Println("\nPCG iterations track sqrt(total tree stretch): the low-stretch tree")
	fmt.Println("(built over the paper's decomposition) beats the BFS tree, widening with n.")
}
