// Spanner builds sparse spanners of a synthetic road network from
// low-diameter decompositions and reports the size/stretch trade-off across
// β — the application of the paper's introduction (Cohen's spanners).
package main

import (
	"fmt"
	"log"

	"mpx/internal/apps/spanner"
	"mpx/internal/core"
	"mpx/internal/graph"
)

func main() {
	// Synthetic road network: a 300x300 grid with 15% of streets removed
	// and a handful of highway shortcuts, largest connected component.
	raw := graph.RoadNetwork(300, 300, 0.85, 150, 7)
	g, _ := graph.LargestComponent(raw)
	fmt.Printf("road network: n=%d m=%d\n\n", g.NumVertices(), g.NumEdges())

	fmt.Printf("%8s %14s %10s %12s %11s\n", "beta", "spannerEdges", "keptFrac", "meanStretch", "maxStretch")
	for _, beta := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		s, err := spanner.Build(g, beta, core.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		st := s.MeasureStretch(40, 3)
		fmt.Printf("%8g %14d %10.3f %12.2f %11.0f\n",
			beta, s.Size(), float64(s.Size())/float64(g.NumEdges()), st.Mean, st.Max)
	}
	fmt.Println("\nlower beta => sparser spanner but longer detours: the O(log n / beta) trade-off")
}
