// Connectivity runs the work-efficient parallel connected-components
// algorithm built on the paper's decomposition (Shun-Dhulipala-Blelloch):
// repeated Partition + contraction, with geometric edge decay per round.
package main

import (
	"fmt"
	"log"

	"mpx/internal/apps/connectivity"
	"mpx/internal/graph"
)

func main() {
	for _, wl := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 500x500", graph.Grid2D(500, 500)},
		{"rmat scale 16", graph.RMAT(16, 500000, 7)},
		{"gnm sparse", graph.GNM(200000, 240000, 3)},
		{"small world", graph.WattsStrogatz(100000, 3, 0.05, 5)},
	} {
		r, err := connectivity.Components(wl.g, 0.4, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s n=%-7d m=%-7d components=%-6d rounds=%d edges/round=%v\n",
			wl.name, wl.g.NumVertices(), wl.g.NumEdges(), r.Components, r.Rounds, r.EdgesPerRound)
	}
	fmt.Println("\nEach round decomposes (beta=0.4) and contracts; only cut edges survive,")
	fmt.Println("so the edge count decays geometrically: O(m) total work, O(log n) rounds.")
}
