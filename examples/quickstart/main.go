// Quickstart: decompose a graph with the paper's algorithm and inspect the
// guarantees — a minimal tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"

	"mpx/internal/core"
	"mpx/internal/graph"
)

func main() {
	// A 200x200 grid: n = 40,000 vertices, m = 79,600 edges.
	g := graph.Grid2D(200, 200)

	// Partition with beta = 0.05: every piece gets strong diameter
	// O(log n / beta) and at most ~beta*m edges cross between pieces.
	d, err := core.Partition(g, 0.05, core.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	n := float64(g.NumVertices())
	fmt.Printf("graph:        n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("clusters:     %d\n", d.NumClusters())
	fmt.Printf("max radius:   %d   (ln(n)/beta = %.0f)\n", d.MaxRadius(), math.Log(n)/0.05)
	fmt.Printf("cut fraction: %.4f (beta = 0.05)\n", d.CutFraction())
	fmt.Printf("BFS rounds:   %d   (depth proxy)\n", d.Rounds)

	// Every vertex knows its center, its distance to it, and its parent in
	// the cluster's shortest-path tree.
	v := uint32(12345)
	fmt.Printf("vertex %d: center=%d dist=%d parent=%d\n",
		v, d.Center[v], d.Dist[v], d.Parent[v])

	// Validate re-checks all invariants in O(m): pieces are connected,
	// recorded distances are the true in-piece distances, radii respect the
	// shift certificates.
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validation:   OK")
}
