// Blocks computes a Linial–Saks style block decomposition of a skewed
// power-law (RMAT) graph by iterating the paper's (1/2, O(log n))
// decomposition, showing the geometric decay of edges per block.
package main

import (
	"fmt"
	"log"
	"math"

	"mpx/internal/apps/blocks"
	"mpx/internal/graph"
)

func main() {
	g0 := graph.RMAT(15, 200000, 13)
	g, _ := graph.LargestComponent(g0)
	fmt.Printf("rmat graph: n=%d m=%d  (log2 m = %.1f)\n\n", g.NumVertices(), g.NumEdges(),
		math.Log2(float64(g.NumEdges())))

	bd, err := blocks.Decompose(g, 0.5, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %10s %10s %10s\n", "block", "edges", "clusters", "maxRadius")
	for i, b := range bd.Blocks {
		fmt.Printf("%6d %10d %10d %10d\n", i, len(b.Edges), b.Clusters, b.MaxComponentRadius)
	}
	fmt.Printf("\n%d blocks cover all %d edges; every block component has O(log n) diameter.\n",
		bd.NumBlocks(), bd.EdgeCount())
}
