package mpx_bench

import (
	"runtime"
	"sort"
	"testing"
	"time"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/oracle"
	"mpx/internal/xrand"
)

// maxE25AllocsPerQuery is the E25 hard gate: the batched oracle serving
// path must not allocate per query. The budget tolerates only the O(1)
// bookkeeping of the pool fan-out amortized over a whole batch (a few
// objects across tens of thousands of queries), not any per-query or
// per-element allocation.
const maxE25AllocsPerQuery = 0.01

// e25Setup builds the E25 serving fixture once per benchmark: a ~90k-vertex
// grid, its low-stretch tree and decomposition hierarchy, and the two
// read-only oracles over them — the structures a query server would hold
// resident between requests.
func e25Setup(b *testing.B) (*oracle.DistanceOracle, *oracle.MembershipOracle, int) {
	b.Helper()
	g := graph.Grid2D(300, 300)
	inc, err := lowstretch.BuildIncrementalPoolCtx(nil, benchPool, g, 0.15, 3, 8, core.DirectionAuto)
	if err != nil {
		b.Fatal(err)
	}
	do := oracle.NewDistance(inc.Tree(), benchPool, 8)
	mo := oracle.NewMembership(inc.Hierarchy(), benchPool, 8)
	if mo.Levels() == 0 {
		b.Fatal("hierarchy has no levels")
	}
	return do, mo, g.NumVertices()
}

// e25Workload generates the fixed query mix the throughput and latency
// benchmarks replay: q distance pairs, q/2 cluster-of vertices and q/2
// same-cluster pairs, all uniform random, plus the caller-owned out slices
// the batch APIs fill (allocated here, before measurement starts).
func e25Workload(q, n, levels int, seed uint64) (dPairs, sPairs []oracle.Pair, cVerts []uint32, dOut []int32, cOut []uint32, sOut []bool, level int) {
	rng := xrand.NewSplitMix64(seed)
	dPairs = make([]oracle.Pair, q)
	for i := range dPairs {
		dPairs[i] = oracle.Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	sPairs = make([]oracle.Pair, q/2)
	for i := range sPairs {
		sPairs[i] = oracle.Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	cVerts = make([]uint32, q/2)
	for i := range cVerts {
		cVerts[i] = uint32(rng.Intn(n))
	}
	return dPairs, sPairs, cVerts,
		make([]int32, q), make([]uint32, q/2), make([]bool, q/2),
		rng.Intn(levels)
}

// BenchmarkE25QueryThroughput is the batched serving arm of the E25
// experiment: replay a fixed 100k-query mix (50% tree distance, 25%
// cluster-of, 25% same-cluster) through the zero-alloc batch APIs into
// caller-owned out slices, on the shared pool. It reports queries/sec and
// allocs/query, and fails the run outright if the steady state allocates
// more than maxE25AllocsPerQuery — the zero-alloc contract is a gate, not
// a trend line.
func BenchmarkE25QueryThroughput(b *testing.B) {
	do, mo, n := e25Setup(b)
	const q = 50000
	dPairs, sPairs, cVerts, dOut, cOut, sOut, level := e25Workload(q, n, mo.Levels(), 7)
	perIter := len(dPairs) + len(sPairs) + len(cVerts)

	serve := func() {
		do.DistBatch(dPairs, dOut)
		mo.ClusterBatch(level, cVerts, cOut)
		mo.SameClusterBatch(level, sPairs, sOut)
	}
	serve() // size pool-internal scratch before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		serve()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&after)

	totalQueries := float64(perIter) * float64(b.N)
	allocsPerQuery := float64(after.Mallocs-before.Mallocs) / totalQueries
	b.ReportMetric(allocsPerQuery, "allocs/query")
	b.ReportMetric(totalQueries/elapsed.Seconds(), "qps")
	b.ReportMetric(float64(perIter), "queries/op")
	if allocsPerQuery > maxE25AllocsPerQuery {
		b.Fatalf("batched serving allocates %.4f objects/query (gate %g): the zero-alloc batch path is leaking",
			allocsPerQuery, maxE25AllocsPerQuery)
	}
}

// BenchmarkE25QueryLatency is the point-query arm: scalar oracle calls
// timed in blocks of 128 (one clock read per block, so timer overhead does
// not swamp a tens-of-ns query), reporting p50 and p99 per-query latency
// in nanoseconds alongside the scalar queries/sec rate.
func BenchmarkE25QueryLatency(b *testing.B) {
	do, mo, n := e25Setup(b)
	const q = 50000
	dPairs, sPairs, cVerts, _, _, _, level := e25Workload(q, n, mo.Levels(), 7)

	const block = 128
	var sink int64
	samples := make([]float64, 0, b.N)
	di, ci, si := 0, 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		for j := 0; j < block; j++ {
			switch j % 4 {
			case 0, 1:
				p := dPairs[di]
				sink += int64(do.Dist(p.U, p.V))
				di = (di + 1) % len(dPairs)
			case 2:
				sink += int64(mo.ClusterOf(cVerts[ci], level))
				ci = (ci + 1) % len(cVerts)
			default:
				p := sPairs[si]
				if mo.SameCluster(p.U, p.V, level) {
					sink++
				}
				si = (si + 1) % len(sPairs)
			}
		}
		samples = append(samples, float64(time.Since(t0).Nanoseconds())/block)
	}
	b.StopTimer()
	if sink == 0 && b.N > 8 {
		b.Fatal("checksum is zero; the query loop was elided")
	}
	sort.Float64s(samples)
	pct := func(p float64) float64 { return samples[int(p*float64(len(samples)-1))] }
	var total float64
	for _, s := range samples {
		total += s
	}
	avgNs := total / float64(len(samples))
	b.ReportMetric(pct(0.50), "p50_ns")
	b.ReportMetric(pct(0.99), "p99_ns")
	b.ReportMetric(1e9/avgNs, "qps")
}
