module mpx

go 1.24
