// Command mpxd is the long-running decomposition service: an HTTP daemon
// over the graph registry, the hierarchy engines, and the query oracles
// of internal/server (API in docs/mpxd.md).
//
//	mpxd -addr 127.0.0.1:8080 -max-builds 4 -build-timeout 2m
//
// Endpoints (all under /v1): POST /graphs registers an uploaded graph
// (any CLI-supported format) keyed by content fingerprint; POST
// /graphs/{fp}/build runs a decomposition (responses are cached — every
// build is bit-deterministic in its request tuple); POST
// /graphs/{fp}/query serves batched distance and cluster-membership
// queries; DELETE /graphs/{fp} evicts. SIGINT/SIGTERM drain in-flight
// work, refuse new requests, and exit cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpx/internal/parallel"
	"mpx/internal/server"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus process concerns: it serves until ctx is cancelled or
// a signal arrives, then drains and returns the exit code. Tests drive it
// with a cancellable context and an in-memory stdout.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpxd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = fs.Int("workers", 0, "logical workers per request (0 = GOMAXPROCS); never changes result bits")
		maxBuilds    = fs.Int("max-builds", 2, "in-flight build budget; excess builds get 429 + Retry-After")
		buildTimeout = fs.Duration("build-timeout", 0, "per-build deadline (0 = none); timed-out builds return a typed 503 with no partial state")
		maxBody      = fs.Int64("max-body", 1<<30, "graph upload size cap in bytes")
		spool        = fs.String("spool", "", "spool dir for uploaded graphs (empty = owned temp dir)")
		drain        = fs.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight work")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mpxd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *drain <= 0 {
		fmt.Fprintln(stderr, "mpxd: -drain must be a positive duration")
		return 2
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := parallel.NewPool(0)
	defer pool.Close()
	srv, err := server.New(server.Config{
		Pool:           pool,
		Workers:        *workers,
		MaxBuilds:      *maxBuilds,
		BuildTimeout:   *buildTimeout,
		MaxUploadBytes: *maxBody,
		SpoolDir:       *spool,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mpxd:", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "mpxd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "mpxd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "mpxd:", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "mpxd: shutdown requested; draining in-flight work")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Refuse new application work first (in-flight builds finish), then
	// close the listener and wait for the HTTP layer to write out the
	// responses.
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "mpxd: drain incomplete:", err)
		hs.Close()
		return 1
	}
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "mpxd: drain incomplete:", err)
		return 1
	}
	fmt.Fprintln(stdout, "mpxd: drained; exiting")
	return 0
}
