package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// notifyWriter captures run's stdout and signals each full line, so the
// test can read the listen address while the daemon is live.
type notifyWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func newNotifyWriter() *notifyWriter {
	return &notifyWriter{lines: make(chan string, 16)}
}

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, rest, ok := strings.Cut(w.buf.String(), "\n")
		if !ok {
			break
		}
		w.buf.Reset()
		w.buf.WriteString(rest)
		select {
		case w.lines <- line:
		default:
		}
	}
	return len(p), nil
}

func waitLine(t *testing.T, w *notifyWriter, prefix string) string {
	t.Helper()
	for {
		select {
		case line := <-w.lines:
			if strings.HasPrefix(line, prefix) {
				return line
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("no %q line within 10s", prefix)
		}
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, walks
// register → build → query over real TCP, then cancels the context (the
// signal path) and requires a clean drain: exit code 0.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stdout := newNotifyWriter()
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-max-builds", "1"}, stdout, &stderr)
	}()

	line := waitLine(t, stdout, "mpxd: listening on ")
	base := "http://" + strings.TrimPrefix(line, "mpxd: listening on ")

	post := func(path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s response: %v", path, err)
		}
		return resp.StatusCode, data
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	const dimacs = "p sp 4 3\na 1 2 1.0\na 2 3 2.0\na 3 4 4.0\n"
	code, body := post("/v1/graphs", []byte(dimacs))
	if code != http.StatusCreated {
		t.Fatalf("register: status %d, body %s", code, body)
	}
	var reg struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("register response: %v (%s)", err, body)
	}

	code, body = post("/v1/graphs/"+reg.Fingerprint+"/build",
		[]byte(`{"app":"lowstretch","beta":0.5,"seed":1}`))
	if code != http.StatusOK {
		t.Fatalf("build: status %d, body %s", code, body)
	}
	code, body = post("/v1/graphs/"+reg.Fingerprint+"/query",
		[]byte(`{"app":"lowstretch","beta":0.5,"seed":1,"op":"dist","pairs":[[0,3]]}`))
	if code != http.StatusOK {
		t.Fatalf("query: status %d, body %s", code, body)
	}
	var q struct {
		Dists []int32 `json:"dists"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatalf("query response: %v (%s)", err, body)
	}
	if len(q.Dists) != 1 || q.Dists[0] != 3 {
		t.Fatalf("dist(0,3) on a 4-path = %v, want [3]", q.Dists)
	}

	cancel()
	waitLine(t, stdout, "mpxd: drained")
	select {
	case exit := <-done:
		if exit != 0 {
			t.Fatalf("run exited %d, stderr: %s", exit, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after cancel; stderr: %s", stderr.String())
	}
}

// TestRunFlagErrors pins the CLI contract: usage errors exit 2 without
// ever binding a socket; an unusable address exits 1.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"positional args", []string{"graph.mpxsnap"}, 2},
		{"nonpositive drain", []string{"-drain", "-1s"}, 2},
		{"unusable address", []string{"-addr", "256.256.256.256:1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(context.Background(), tc.args, &stdout, &stderr); got != tc.exit {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Fatal("error exit with empty stderr")
			}
		})
	}
}
