// Command mpx runs a low-diameter decomposition — or any of the
// decomposition-hierarchy applications built on it — on a generated or
// loaded graph and reports its quality, optionally rendering grid
// decompositions to PNG.
//
// Usage examples:
//
//	mpx -gen grid -rows 200 -cols 200 -beta 0.05 -png out.png
//	mpx -gen gnm -n 100000 -m 400000 -beta 0.1 -algo ballgrow
//	mpx -in graph.txt -beta 0.02 -seed 7 -validate
//	mpx -in big.gr -snapshot-out big.mpxsnap          (convert once, then)
//	mpx -in big.mpxsnap -beta 0.1                     (mmap-loaded CSR snapshot)
//	mpx -app lowstretch -gen grid -rows 150 -cols 150 -beta 0.2 -workers 8
//	mpx -app connectivity -gen rmat -scale 15 -m 200000 -beta 0.4 -direction pull
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mpx/internal/apps/blocks"
	"mpx/internal/apps/connectivity"
	"mpx/internal/apps/embedding"
	"mpx/internal/apps/lowstretch"
	"mpx/internal/apps/separator"
	"mpx/internal/apps/spanner"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/graph/snapshot"
	"mpx/internal/hier"
	"mpx/internal/parallel"
	"mpx/internal/render"
	"mpx/internal/stats"
)

func main() {
	var (
		gen       = flag.String("gen", "grid", "generator: grid|torus|path|cycle|tree|hypercube|gnm|rmat|pa|road (ignored with -in)")
		rows      = flag.Int("rows", 100, "grid/torus/road rows")
		cols      = flag.Int("cols", 100, "grid/torus/road cols")
		n         = flag.Int("n", 10000, "vertex count for path/cycle/tree/gnm/pa")
		m         = flag.Int64("m", 40000, "edge count for gnm/rmat")
		scale     = flag.Int("scale", 14, "rmat/hypercube scale (n = 2^scale)")
		in        = flag.String("in", "", "read graph from file instead of generating; format auto-detected (CSR snapshot, binary, DIMACS, edge list)")
		dimacs    = flag.Bool("dimacs", false, "force DIMACS parsing of the -in file (bypass format auto-detection)")
		snapOut   = flag.String("snapshot-out", "", "write the loaded or generated graph (weighted under -weighted) as a binary CSR snapshot to this path, then run normally")
		beta      = flag.Float64("beta", 0.1, "decomposition parameter in (0,1)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		app       = flag.String("app", "partition", "workload: partition|connectivity|spanner|lowstretch|blocks|separator|embedding")
		algo      = flag.String("algo", "mpx", "algorithm: mpx|seq|exact|ballgrow|iterative|weighted|weighted-par (partition app only)")
		wmax      = flag.Float64("wmax", 4, "max edge weight for weighted algorithms (U(1,wmax))")
		weighted  = flag.Bool("weighted", false, "run the hierarchy app on a weighted graph: U(1,wmax) random weights, or the file's arc weights with -in -dimacs (lowstretch|blocks|embedding)")
		tie       = flag.String("tie", "fractional", "tie-break: fractional|permutation")
		direction = flag.String("direction", "auto", "partition traversal: auto|push|pull (mpx and weighted-par algorithms)")
		pngPath   = flag.String("png", "", "write cluster coloring PNG (grid generators only)")
		validate  = flag.Bool("validate", false, "run full O(m) decomposition validation")
		updates   = flag.String("updates", "", "replay a batched edge-update trace against an incrementally maintained app (lowstretch|blocks|embedding); see cmd/mpx/updates.go for the format")
		queries   = flag.String("queries", "", "serve a distance/cluster-membership query trace from the built lowstretch structures, or \"synth:N\" for N synthetic queries; see cmd/mpx/queries.go for the format")
		qbatch    = flag.Int("qbatch", 1024, "batch size for -queries synth:N workloads (file traces carry their own batch structure)")
		timeout   = flag.Duration("timeout", 0, "overall deadline (e.g. 30s); cancels any algorithm (parallel or serial) at its next round/poll boundary and exits non-zero, discarding partial work (0 = none)")
	)
	flag.Parse()

	// Explicitly set flags that the selected mode would silently ignore are
	// hard errors: a flag that does nothing is almost always a typo'd run.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// Enumerated flags are validated up front and exit with the valid set: a
	// typo like "-tie perm" must not silently change results by falling back
	// to a default.
	tieBreaks := map[string]core.TieBreak{
		"fractional":  core.TieFractional,
		"permutation": core.TiePermutation,
	}
	directions := map[string]core.Direction{
		"auto": core.DirectionAuto,
		"push": core.DirectionForcePush,
		"pull": core.DirectionForcePull,
	}
	validAlgos := map[string]bool{
		"mpx": true, "seq": true, "exact": true, "ballgrow": true,
		"iterative": true, "weighted": true, "weighted-par": true,
	}
	validApps := map[string]bool{
		"partition": true, "connectivity": true, "spanner": true, "lowstretch": true,
		"blocks": true, "separator": true, "embedding": true,
	}
	tieBreak, ok := tieBreaks[*tie]
	if !ok {
		fmt.Fprintf(os.Stderr, "mpx: unknown -tie value %q (valid: fractional, permutation)\n", *tie)
		os.Exit(2)
	}
	dir, ok := directions[*direction]
	if !ok {
		fmt.Fprintf(os.Stderr, "mpx: unknown -direction value %q (valid: auto, push, pull)\n", *direction)
		os.Exit(2)
	}
	if !validAlgos[*algo] {
		fmt.Fprintf(os.Stderr, "mpx: unknown -algo value %q (valid: mpx, seq, exact, ballgrow, iterative, weighted, weighted-par)\n", *algo)
		os.Exit(2)
	}
	if !validApps[*app] {
		fmt.Fprintf(os.Stderr, "mpx: unknown -app value %q (valid: partition, connectivity, spanner, lowstretch, blocks, separator, embedding)\n", *app)
		os.Exit(2)
	}
	// -weighted must never be dropped silently: the partition app selects
	// its weighted algorithms via -algo.
	if *weighted && *app == "partition" {
		fmt.Fprintln(os.Stderr, "mpx: -weighted applies to hierarchy apps (lowstretch, blocks, embedding); for -app partition use -algo weighted or weighted-par")
		os.Exit(2)
	}
	if *in != "" {
		for _, name := range []string{"gen", "rows", "cols", "n", "m", "scale"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "mpx: -%s shapes a generated graph and is ignored with -in; remove one of them\n", name)
				os.Exit(2)
			}
		}
	}
	if explicit["algo"] && *app != "partition" {
		fmt.Fprintf(os.Stderr, "mpx: -algo applies only to -app partition (got -app %s)\n", *app)
		os.Exit(2)
	}
	if *pngPath != "" && *app != "partition" {
		fmt.Fprintln(os.Stderr, "mpx: -png renders a single decomposition and applies only to -app partition")
		os.Exit(2)
	}
	if *updates != "" {
		switch *app {
		case "lowstretch", "blocks", "embedding":
		default:
			fmt.Fprintf(os.Stderr, "mpx: -updates supports apps lowstretch, blocks and embedding (got -app %s)\n", *app)
			os.Exit(2)
		}
		if *weighted {
			fmt.Fprintln(os.Stderr, "mpx: -updates replays unweighted hierarchies; drop -weighted")
			os.Exit(2)
		}
		if *validate {
			fmt.Fprintln(os.Stderr, "mpx: -validate applies to -app partition, not -updates replays")
			os.Exit(2)
		}
	}
	if *queries != "" {
		if *app != "lowstretch" {
			fmt.Fprintf(os.Stderr, "mpx: -queries serves the lowstretch tree and hierarchy; use -app lowstretch (got -app %s)\n", *app)
			os.Exit(2)
		}
		if *weighted {
			fmt.Fprintln(os.Stderr, "mpx: -queries serves unweighted structures; drop -weighted")
			os.Exit(2)
		}
		if *updates != "" {
			fmt.Fprintln(os.Stderr, "mpx: -queries and -updates are separate modes; pick one")
			os.Exit(2)
		}
		if *validate {
			fmt.Fprintln(os.Stderr, "mpx: -validate applies to -app partition, not -queries serving")
			os.Exit(2)
		}
		if *qbatch <= 0 {
			fmt.Fprintln(os.Stderr, "mpx: -qbatch must be positive")
			os.Exit(2)
		}
	}
	if explicit["qbatch"] && !strings.HasPrefix(*queries, "synth:") {
		fmt.Fprintln(os.Stderr, "mpx: -qbatch shapes -queries synth:N workloads only; file traces carry their own batch structure")
		os.Exit(2)
	}
	if explicit["timeout"] && *timeout <= 0 {
		fmt.Fprintln(os.Stderr, "mpx: -timeout must be a positive duration (e.g. 30s)")
		os.Exit(2)
	}
	// Every -algo — the parallel engines AND the serial baselines — polls
	// the deadline context (round boundaries for the parallel engines, key
	// advances or settle cadences for the serial references), so -timeout
	// applies uniformly; no algo silently ignores it.

	// ctx carries the -timeout deadline into every engine below; nil (the
	// engines' "never cancelled") when no deadline was requested.
	var ctx context.Context
	if *timeout > 0 {
		tctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = tctx
	}

	// Weighted hierarchy apps build their graph once (a weighted DIMACS
	// file is parsed a single time, weights included) and run before the
	// unweighted path.
	if *weighted {
		wg, closer, fromFile, err := loadWeightedGraph(*in, *dimacs, *gen, *rows, *cols, *n, *m, *scale, *wmax, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpx:", err)
			os.Exit(1)
		}
		if closer != nil {
			defer closer.Close()
		}
		if *snapOut != "" {
			writeSnapshotOut(*snapOut, nil, wg)
		}
		pool := parallel.NewPool(0)
		defer pool.Close()
		if err := runWeightedApp(ctx, *app, pool, wg, *beta, *seed, *workers, dir, *wmax, fromFile); err != nil {
			fail(err, *timeout)
		}
		return
	}

	g, gridRows, gridCols, closer, err := buildGraph(*in, *dimacs, *gen, *rows, *cols, *n, *m, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpx:", err)
		os.Exit(1)
	}
	if closer != nil {
		defer closer.Close()
	}
	if *snapOut != "" {
		writeSnapshotOut(*snapOut, g, nil)
	}
	// One persistent worker pool serves the whole run; every parallel round
	// of every algorithm below executes on it.
	pool := parallel.NewPool(0)
	defer pool.Close()
	opts := core.Options{Ctx: ctx, Seed: *seed, Workers: *workers, TieBreak: tieBreak, Direction: dir, Pool: pool}

	if *queries != "" {
		if err := runQueries(ctx, pool, g, *beta, *seed, *workers, dir, *queries, *qbatch); err != nil {
			fail(err, *timeout)
		}
		return
	}

	if *updates != "" {
		f, err := os.Open(*updates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpx:", err)
			os.Exit(1)
		}
		batches, err := parseUpdateTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpx:", err)
			os.Exit(1)
		}
		if err := runUpdates(ctx, *app, pool, g, *beta, *seed, *workers, dir, batches); err != nil {
			fail(err, *timeout)
		}
		return
	}

	if *app != "partition" {
		if err := runApp(ctx, *app, pool, g, *beta, *seed, *workers, dir, opts); err != nil {
			fail(err, *timeout)
		}
		return
	}

	if *algo == "weighted" || *algo == "weighted-par" {
		wg := graph.RandomWeights(g, 1, *wmax, *seed)
		var wd *core.WeightedDecomposition
		if *algo == "weighted" {
			wd, err = core.PartitionWeighted(wg, *beta, opts)
		} else {
			wd, err = core.PartitionWeightedParallel(wg, *beta, 0, opts)
		}
		if err != nil {
			fail(err, *timeout)
		}
		fmt.Printf("graph: n=%d m=%d (weights U(1,%g))\n", g.NumVertices(), g.NumEdges(), *wmax)
		if *algo == "weighted-par" {
			fmt.Printf("decomposition: beta=%g clusters=%d rounds=%d direction=%s\n",
				*beta, wd.NumClusters(), wd.Rounds, dir)
		} else {
			fmt.Printf("decomposition: beta=%g clusters=%d rounds=%d\n", *beta, wd.NumClusters(), wd.Rounds)
		}
		fmt.Printf("radius: max=%.2f (deltaMax=%.2f)\n", wd.MaxRadius(), wd.DeltaMax)
		fmt.Printf("cut: weightFraction=%.4f edgeFraction=%.4f\n",
			wd.CutWeightFraction(), wd.CutEdgeFraction())
		if *validate {
			if err := wd.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "mpx: VALIDATION FAILED:", err)
				os.Exit(1)
			}
			fmt.Println("validation: OK")
		}
		return
	}

	var d *core.Decomposition
	switch *algo {
	case "mpx":
		d, err = core.Partition(g, *beta, opts)
	case "seq":
		d, err = core.PartitionSequential(g, *beta, opts)
	case "exact":
		d, err = core.PartitionExact(g, *beta, opts)
	case "ballgrow":
		d, err = core.BallGrowingCtx(ctx, g, *beta, *seed)
	case "iterative":
		d, err = core.PartitionIterativeCtx(ctx, g, *beta, *seed, *workers)
	default:
		panic("unreachable: -algo validated against validAlgos above")
	}
	if err != nil {
		fail(err, *timeout)
	}

	report(g, d, *beta)
	if *validate {
		if *algo == "ballgrow" || *algo == "iterative" {
			d.Shifts = nil // baselines have no shift certificates
		}
		if err := d.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "mpx: VALIDATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("validation: OK (pieces connected, distances exact, radius within shift bound)")
	}
	if *pngPath != "" {
		if gridRows == 0 {
			fmt.Fprintln(os.Stderr, "mpx: -png requires a grid-shaped generator")
			os.Exit(1)
		}
		f, err := os.Create(*pngPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpx:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := render.GridPNG(f, d.Center, gridRows, gridCols, 1); err != nil {
			fmt.Fprintln(os.Stderr, "mpx:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *pngPath)
	}
}

// fail prints err and exits non-zero. A -timeout deadline gets a dedicated
// message so a cancelled run is unambiguous in logs and scripts.
func fail(err error, timeout time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mpx: timed out after %v (-timeout): cancelled at an engine boundary, partial work discarded\n", timeout)
	} else {
		fmt.Fprintln(os.Stderr, "mpx:", err)
	}
	os.Exit(1)
}

// buildGraph loads (-in, any supported format via graph.OpenAny) or
// generates the input graph. The io.Closer, when non-nil, owns resources
// backing the graph — a snapshot's memory mapping — and must outlive
// every use of it.
func buildGraph(in string, dimacs bool, gen string, rows, cols, n int, m int64, scale int, seed uint64) (*graph.Graph, int, int, io.Closer, error) {
	if in != "" {
		if dimacs {
			f, err := os.Open(in)
			if err != nil {
				return nil, 0, 0, nil, err
			}
			defer f.Close()
			g, err := graph.ReadDIMACS(f)
			return g, 0, 0, nil, err
		}
		o, err := graph.OpenAny(in)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		return o.Graph, 0, 0, o, nil
	}
	g, rows2, cols2, err := generateGraph(gen, rows, cols, n, m, scale, seed)
	return g, rows2, cols2, nil, err
}

func generateGraph(gen string, rows, cols, n int, m int64, scale int, seed uint64) (*graph.Graph, int, int, error) {
	switch gen {
	case "grid":
		return graph.Grid2D(rows, cols), rows, cols, nil
	case "torus":
		return graph.Torus2D(rows, cols), rows, cols, nil
	case "road":
		return graph.RoadNetwork(rows, cols, 0.85, rows, seed), rows, cols, nil
	case "path":
		return graph.Path(n), 0, 0, nil
	case "cycle":
		return graph.Cycle(n), 0, 0, nil
	case "tree":
		return graph.BinaryTree(n), 0, 0, nil
	case "hypercube":
		return graph.Hypercube(scale), 0, 0, nil
	case "gnm":
		return graph.GNM(n, m, seed), 0, 0, nil
	case "rmat":
		return graph.RMAT(scale, m, seed), 0, 0, nil
	case "pa":
		return graph.PreferentialAttachment(n, 3, seed), 0, 0, nil
	default:
		return nil, 0, 0, fmt.Errorf("unknown generator %q", gen)
	}
}

// loadWeightedGraph builds the weighted input in one pass: a source that
// carries weights (a weighted snapshot, or a DIMACS file — auto-detected
// or forced with -dimacs) keeps them, parsed exactly once; every other
// source builds the unweighted graph and lifts it with deterministic
// U(1, wmax) weights from the seed. The io.Closer, when non-nil, owns the
// graph's backing resources (see buildGraph).
func loadWeightedGraph(in string, dimacs bool, gen string, rows, cols, n int, m int64, scale int, wmax float64, seed uint64) (wg *graph.WeightedGraph, closer io.Closer, fromFile bool, err error) {
	if in != "" {
		if dimacs {
			f, err := os.Open(in)
			if err != nil {
				return nil, nil, false, err
			}
			defer f.Close()
			wg, err := graph.ReadDIMACSWeighted(f)
			return wg, nil, true, err
		}
		o, err := graph.OpenAny(in)
		if err != nil {
			return nil, nil, false, err
		}
		if o.Weighted != nil {
			return o.Weighted, o, true, nil
		}
		if wmax < 1 {
			o.Close()
			return nil, nil, false, fmt.Errorf("-wmax must be >= 1, got %g", wmax)
		}
		return graph.RandomWeights(o.Graph, 1, wmax, seed), o, false, nil
	}
	if wmax < 1 {
		return nil, nil, false, fmt.Errorf("-wmax must be >= 1, got %g", wmax)
	}
	g, _, _, err := generateGraph(gen, rows, cols, n, m, scale, seed)
	if err != nil {
		return nil, nil, false, err
	}
	return graph.RandomWeights(g, 1, wmax, seed), nil, false, nil
}

// writeSnapshotOut writes the -snapshot-out artifact and reports the
// content fingerprint — the registry/cache key a serving layer would use.
func writeSnapshotOut(path string, g *graph.Graph, wg *graph.WeightedGraph) {
	if err := snapshot.WriteFile(path, g, wg); err != nil {
		fmt.Fprintln(os.Stderr, "mpx:", err)
		os.Exit(1)
	}
	fp := uint64(0)
	kind := "unweighted"
	if wg != nil {
		fp, kind = wg.Fingerprint(), "weighted"
	} else {
		fp = g.Fingerprint()
	}
	fmt.Printf("snapshot: wrote %s (%s) fingerprint=%016x\n", path, kind, fp)
}

// runWeightedApp drives the weighted variant of a hierarchy application —
// the true AKPW low-stretch tree, the weighted Linial–Saks blocks, or the
// weighted tree-metric embedding — printing the per-level weighted
// hierarchy statistics.
func runWeightedApp(ctx context.Context, app string, pool *parallel.Pool, wg *graph.WeightedGraph, beta float64, seed uint64, workers int, dir core.Direction, wmax float64, fromFile bool) error {
	if fromFile {
		fmt.Printf("graph: n=%d m=%d (weighted input)\n", wg.NumVertices(), wg.NumEdges())
	} else {
		fmt.Printf("graph: n=%d m=%d (weights U(1,%g))\n", wg.NumVertices(), wg.NumEdges(), wmax)
	}
	switch app {
	case "lowstretch":
		tr, err := lowstretch.BuildWeightedPoolCtx(ctx, pool, wg, beta, seed, workers, dir)
		if err != nil {
			return err
		}
		st := tr.Stretch()
		fmt.Printf("lowstretch: levels=%d classes=%d treeEdges=%d meanStretch=%.2f maxStretch=%.2f direction=%s\n",
			tr.Levels, len(tr.ClassHistogram), len(tr.Edges), st.Mean, st.Max, dir)
		printHierStats(tr.Stats)
	case "blocks":
		bd, err := blocks.DecomposeWeightedPoolCtx(ctx, pool, wg, beta, seed, 0, workers, dir)
		if err != nil {
			return err
		}
		fmt.Printf("blocks: blocks=%d edges=%d direction=%s\n", bd.NumBlocks(), bd.EdgeCount(), dir)
		printHierStats(bd.Stats)
	case "embedding":
		tr, err := embedding.BuildWeightedPoolCtx(ctx, pool, wg, 0, seed, workers, dir)
		if err != nil {
			return err
		}
		dist := tr.MeasureDistortion(200, seed)
		fmt.Printf("embedding: levels=%d meanDistortion=%.2f maxDistortion=%.2f dominatedFrac=%.3f direction=%s\n",
			tr.Levels, dist.MeanDistortion, dist.MaxDistortion, dist.DominatedFrac, dir)
		printHierStats(tr.Stats)
	default:
		return fmt.Errorf("-weighted supports apps lowstretch, blocks and embedding (got %q)", app)
	}
	return nil
}

// runApp drives one of the hierarchy applications on the shared process
// pool, honoring -beta, -seed, -workers and -direction, and prints the
// per-level hierarchy statistics the internal/hier engine records.
func runApp(ctx context.Context, app string, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction, opts core.Options) error {
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	switch app {
	case "connectivity":
		r, err := connectivity.ComponentsPoolCtx(ctx, pool, g, beta, seed, workers, dir)
		if err != nil {
			return err
		}
		fmt.Printf("connectivity: components=%d rounds=%d direction=%s\n", r.Components, r.Rounds, dir)
		printHierStats(r.Stats)
	case "spanner":
		s, err := spanner.Build(g, beta, opts)
		if err != nil {
			return err
		}
		fmt.Printf("spanner: edges=%d keptFrac=%.4f tree=%d bridges=%d direction=%s\n",
			s.Size(), float64(s.Size())/float64(g.NumEdges()), s.TreeEdges, s.BridgeEdges, dir)
		d := s.Decomposition
		printHierStats([]hier.LevelStat{{
			Level: 0, N: g.NumVertices(), M: g.NumEdges(),
			Clusters: d.NumClusters(), CutEdges: d.CutEdges(),
			CutFraction: d.CutFraction(), QuotientN: d.NumClusters(),
		}})
	case "lowstretch":
		tr, err := lowstretch.BuildPoolCtx(ctx, pool, g, beta, seed, workers, dir)
		if err != nil {
			return err
		}
		st := tr.Stretch()
		fmt.Printf("lowstretch: levels=%d treeEdges=%d meanStretch=%.2f maxStretch=%d direction=%s\n",
			tr.Levels, len(tr.Edges), st.Mean, st.Max, dir)
		printHierStats(tr.Stats)
	case "blocks":
		bd, err := blocks.DecomposePoolCtx(ctx, pool, g, beta, seed, 0, workers, dir)
		if err != nil {
			return err
		}
		fmt.Printf("blocks: blocks=%d edges=%d direction=%s\n", bd.NumBlocks(), bd.EdgeCount(), dir)
		printHierStats(bd.Stats)
	case "separator":
		r, err := separator.FindPoolCtx(ctx, pool, g, beta, 2.0/3, seed, workers, dir)
		if err != nil {
			return err
		}
		fmt.Printf("separator: size=%d |A|=%d |B|=%d balance=%.3f beta=%g pieces=%d direction=%s\n",
			len(r.Separator), len(r.SideA), len(r.SideB), r.Balance, r.Beta, r.Pieces, dir)
		printHierStats(r.Stats)
	case "embedding":
		tr, err := embedding.BuildPoolCtx(ctx, pool, g, 0, seed, workers, dir)
		if err != nil {
			return err
		}
		dist := tr.MeasureDistortion(200, seed)
		fmt.Printf("embedding: levels=%d meanDistortion=%.2f maxDistortion=%.2f dominatedFrac=%.3f direction=%s\n",
			tr.Levels, dist.MeanDistortion, dist.MaxDistortion, dist.DominatedFrac, dir)
		printHierStats(tr.Stats)
	default:
		panic("unreachable: -app validated against validApps above")
	}
	return nil
}

// printHierStats reports the hierarchy shape: per level, the graph sizes
// entering the level, the piece count, the cut fraction passed onward, and
// the quotient size the next level runs on. Weighted levels add the weight
// structure (total and cut weight, weighted radius, Δ-stepping rounds).
func printHierStats(stats []hier.LevelStat) {
	for _, st := range stats {
		if st.Weighted {
			fmt.Printf("level %d: n=%d m=%d clusters=%d cut=%d cutFrac=%.4f totalW=%.3g cutW=%.3g cutWFrac=%.4f maxR=%.2f rounds=%d -> n'=%d\n",
				st.Level, st.N, st.M, st.Clusters, st.CutEdges, st.CutFraction,
				st.TotalWeight, st.CutWeight, st.CutWeightFraction, st.WMaxRadius, st.Rounds, st.QuotientN)
			continue
		}
		fmt.Printf("level %d: n=%d m=%d clusters=%d cut=%d cutFrac=%.4f -> n'=%d\n",
			st.Level, st.N, st.M, st.Clusters, st.CutEdges, st.CutFraction, st.QuotientN)
	}
}

func report(g *graph.Graph, d *core.Decomposition, beta float64) {
	radii := make([]float64, 0)
	for _, r := range d.Radii() {
		radii = append(radii, float64(r))
	}
	sum := stats.Summarize(radii)
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("decomposition: beta=%g clusters=%d rounds=%d relaxed=%d\n",
		beta, d.NumClusters(), d.Rounds, d.Relaxed)
	fmt.Printf("radius: max=%d p95=%.0f median=%.0f\n", d.MaxRadius(), sum.P95, sum.P50)
	fmt.Printf("cut: edges=%d fraction=%.4f (beta=%g)\n", d.CutEdges(), d.CutFraction(), beta)
}
