package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"mpx/internal/apps/blocks"
	"mpx/internal/apps/embedding"
	"mpx/internal/apps/lowstretch"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// parseUpdateTrace reads a batch trace for -updates: one edge operation per
// line — "+ u v" (insert), "+ u v w" (weighted insert), "- u v" (delete) —
// with batches separated by blank lines or a "---" line, and "#" starting
// a comment. Malformed lines fail with their line number; a trace may not
// mix weighted and unweighted inserts within one batch (graph.Batch
// requires InsertW to cover every insert or none).
func parseUpdateTrace(r io.Reader) ([]graph.Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var batches []graph.Batch
	var cur graph.Batch
	flush := func() {
		if cur.Len() > 0 {
			batches = append(batches, cur)
			cur = graph.Batch{}
		}
	}
	parseVertex := func(lineNo int, s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("trace line %d: bad vertex %q: %v", lineNo, s, err)
		}
		return uint32(v), nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || (len(fields) == 1 && fields[0] == "---") {
			flush()
			continue
		}
		switch fields[0] {
		case "+":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("trace line %d: insert is \"+ u v\" or \"+ u v w\", got %d fields", lineNo, len(fields))
			}
			u, err := parseVertex(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			if len(fields) == 4 {
				if len(cur.InsertW) != len(cur.Insert) {
					return nil, fmt.Errorf("trace line %d: batch mixes weighted and unweighted inserts", lineNo)
				}
				w, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad weight %q: %v", lineNo, fields[3], err)
				}
				if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
					return nil, fmt.Errorf("trace line %d: weight %q is not a finite positive number", lineNo, fields[3])
				}
				cur.InsertW = append(cur.InsertW, w)
			} else if len(cur.InsertW) > 0 {
				return nil, fmt.Errorf("trace line %d: batch mixes weighted and unweighted inserts", lineNo)
			}
			cur.Insert = append(cur.Insert, graph.Edge{U: u, V: v})
		case "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: delete is \"- u v\", got %d fields", lineNo, len(fields))
			}
			u, err := parseVertex(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			cur.Delete = append(cur.Delete, graph.Edge{U: u, V: v})
		default:
			return nil, fmt.Errorf("trace line %d: unknown op %q (want \"+\", \"-\", \"---\" or a comment)", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %v", lineNo+1, err)
	}
	flush()
	if len(batches) == 0 {
		return nil, fmt.Errorf("trace: no batches (every line is blank or a comment)")
	}
	return batches, nil
}

// runUpdates replays a batch trace against an incrementally maintained
// application, printing per-batch reuse statistics — the -updates mode.
// The maintained structure is bit-identical after every batch to a
// from-scratch build on the updated graph (the incremental contract), so
// the final summary line matches a plain run on the final graph.
func runUpdates(ctx context.Context, app string, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction, batches []graph.Batch) error {
	for i, b := range batches {
		if len(b.InsertW) > 0 {
			return fmt.Errorf("trace batch %d has weighted inserts; -updates replays unweighted hierarchies (drop the weight column)", i)
		}
	}
	fmt.Printf("graph: n=%d m=%d batches=%d\n", g.NumVertices(), g.NumEdges(), len(batches))
	switch app {
	case "lowstretch":
		inc, err := lowstretch.BuildIncrementalPoolCtx(ctx, pool, g, beta, seed, workers, dir)
		if err != nil {
			return err
		}
		for i, b := range batches {
			us, err := inc.UpdateCtx(ctx, b)
			if err != nil {
				return fmt.Errorf("batch %d: %v", i, err)
			}
			fmt.Printf("batch %d: %s treeEdges=%d\n", i, us, len(inc.Tree().Edges))
		}
		tr := inc.Tree()
		st := tr.Stretch()
		fmt.Printf("lowstretch: levels=%d treeEdges=%d meanStretch=%.2f maxStretch=%d direction=%s\n",
			tr.Levels, len(tr.Edges), st.Mean, st.Max, dir)
		printHierStats(tr.Stats)
	case "blocks":
		inc, err := blocks.BuildIncrementalPoolCtx(ctx, pool, g, beta, seed, 0, workers, dir)
		if err != nil {
			return err
		}
		for i, b := range batches {
			us, err := inc.UpdateCtx(ctx, b)
			if err != nil {
				return fmt.Errorf("batch %d: %v", i, err)
			}
			fmt.Printf("batch %d: %s blocks=%d\n", i, us, inc.Decomposition().NumBlocks())
		}
		bd := inc.Decomposition()
		fmt.Printf("blocks: blocks=%d edges=%d direction=%s\n", bd.NumBlocks(), bd.EdgeCount(), dir)
		printHierStats(bd.Stats)
	case "embedding":
		inc, err := embedding.BuildIncrementalPoolCtx(ctx, pool, g, 0, seed, workers, dir)
		if err != nil {
			return err
		}
		for i, b := range batches {
			us, err := inc.UpdateCtx(ctx, b)
			if err != nil {
				return fmt.Errorf("batch %d: %v", i, err)
			}
			fmt.Printf("batch %d: update{levels=%d repartitioned=%d refined=%d reused=%d}\n",
				i, us.Levels, us.Repartitioned, us.Refined, us.Reused)
		}
		tr := inc.Tree()
		dist := tr.MeasureDistortion(200, seed)
		fmt.Printf("embedding: levels=%d meanDistortion=%.2f maxDistortion=%.2f dominatedFrac=%.3f direction=%s\n",
			tr.Levels, dist.MeanDistortion, dist.MaxDistortion, dist.DominatedFrac, dir)
		printHierStats(tr.Stats)
	default:
		return fmt.Errorf("-updates supports apps lowstretch, blocks and embedding (got %q)", app)
	}
	return nil
}
