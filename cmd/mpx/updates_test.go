package main

import (
	"strings"
	"testing"

	"mpx/internal/graph"
)

func TestParseUpdateTrace(t *testing.T) {
	trace := `
# warm-up batch
+ 0 5
- 1 2   # inline comment
+ 3 4

---
- 7 8
+ 9 10
`
	batches, err := parseUpdateTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	b0 := batches[0]
	wantIns := []graph.Edge{{U: 0, V: 5}, {U: 3, V: 4}}
	wantDel := []graph.Edge{{U: 1, V: 2}}
	if len(b0.Insert) != len(wantIns) || len(b0.Delete) != len(wantDel) {
		t.Fatalf("batch 0 = %+v", b0)
	}
	for i := range wantIns {
		if b0.Insert[i] != wantIns[i] {
			t.Fatalf("batch 0 insert %d = %v, want %v", i, b0.Insert[i], wantIns[i])
		}
	}
	if b0.Delete[0] != wantDel[0] {
		t.Fatalf("batch 0 delete = %v", b0.Delete[0])
	}
	if b0.InsertW != nil {
		t.Fatal("unweighted trace produced InsertW")
	}
	b1 := batches[1]
	if len(b1.Insert) != 1 || len(b1.Delete) != 1 || b1.Insert[0] != (graph.Edge{U: 9, V: 10}) {
		t.Fatalf("batch 1 = %+v", b1)
	}
}

func TestParseUpdateTraceWeighted(t *testing.T) {
	batches, err := parseUpdateTrace(strings.NewReader("+ 1 2 3.5\n+ 4 5 0.25\n- 6 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("got %d batches", len(batches))
	}
	b := batches[0]
	if len(b.InsertW) != 2 || b.InsertW[0] != 3.5 || b.InsertW[1] != 0.25 {
		t.Fatalf("weights = %v", b.InsertW)
	}
}

func TestParseUpdateTraceErrors(t *testing.T) {
	cases := []struct {
		name, trace, wantSub string
	}{
		{"bad op", "* 1 2\n", "line 1: unknown op"},
		{"short insert", "+ 1\n", "line 1: insert"},
		{"long delete", "- 1 2 3\n", "line 1: delete"},
		{"bad vertex", "+ 1 x\n", `line 1: bad vertex "x"`},
		{"negative vertex", "+ -1 2\n", `line 1: bad vertex "-1"`},
		{"bad weight", "+ 1 2 heavy\n", `line 1: bad weight "heavy"`},
		{"nan weight", "+ 1 2 NaN\n", `line 1: weight "NaN" is not a finite positive number`},
		{"inf weight", "+ 1 2 +Inf\n", `line 1: weight "+Inf" is not a finite positive number`},
		{"zero weight", "+ 1 2 0\n", `line 1: weight "0" is not a finite positive number`},
		{"negative weight", "+ 1 2 -1.5\n", `line 1: weight "-1.5" is not a finite positive number`},
		{"mixed weights", "+ 1 2\n+ 3 4 1.5\n", "line 2: batch mixes weighted and unweighted"},
		{"mixed weights reversed", "+ 1 2 1.5\n+ 3 4\n", "line 2: batch mixes weighted and unweighted"},
		{"empty", "# nothing\n\n---\n", "no batches"},
		{"line numbers after comments", "# one\n# two\n\n- 1 2 3\n", "line 4: delete"},
	}
	for _, tc := range cases {
		_, err := parseUpdateTrace(strings.NewReader(tc.trace))
		if err == nil {
			t.Fatalf("%s: parse succeeded, want error containing %q", tc.name, tc.wantSub)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestRunUpdatesReplay smoke-tests the replay driver end to end on every
// supported app: the incremental structures absorb the trace without error
// (bit-identity itself is gated by the app-level incremental suites).
func TestRunUpdatesReplay(t *testing.T) {
	trace := "+ 0 30\n- 0 1\n---\n+ 2 40\n+ 0 1\n- 5 6\n"
	batches, err := parseUpdateTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"lowstretch", "blocks", "embedding"} {
		g := graph.Grid2D(12, 12)
		if err := runUpdates(nil, app, nil, g, 0.3, 1, 2, 0, batches); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
	g := graph.Grid2D(8, 8)
	if err := runUpdates(nil, "partition", nil, g, 0.3, 1, 2, 0, batches); err == nil {
		t.Fatal("unsupported app must error")
	}
	weightedBatch, err := parseUpdateTrace(strings.NewReader("+ 1 2 4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runUpdates(nil, "lowstretch", nil, g, 0.3, 1, 2, 0, weightedBatch); err == nil {
		t.Fatal("weighted trace must error on unweighted replay")
	}
}
