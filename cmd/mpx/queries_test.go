package main

import (
	"strings"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/oracle"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/core"
)

func TestParseQueryTrace(t *testing.T) {
	in := `
# warm-up batch
d 0 5
c 1 3   # trailing comment
s 2 4 9
---
d 7 7
`
	batches, err := parseQueryTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	want0 := []query{
		{op: 'd', u: 0, v: 5},
		{op: 'c', level: 1, u: 3},
		{op: 's', level: 2, u: 4, v: 9},
	}
	if len(batches[0]) != len(want0) {
		t.Fatalf("batch 0 has %d queries, want %d", len(batches[0]), len(want0))
	}
	for i, q := range want0 {
		if batches[0][i] != q {
			t.Fatalf("batch 0 query %d = %+v, want %+v", i, batches[0][i], q)
		}
	}
	if len(batches[1]) != 1 || batches[1][0] != (query{op: 'd', u: 7, v: 7}) {
		t.Fatalf("batch 1 = %+v", batches[1])
	}
}

// TestParseQueryTraceHostile feeds the parser malformed traces: each must
// fail with an error naming the offending line, never panic, never be
// silently accepted.
func TestParseQueryTraceHostile(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "no queries"},
		{"comments-only", "# nothing\n\n# here\n", "no queries"},
		{"separators-only", "---\n---\n", "no queries"},
		{"unknown-op", "q 1 2\n", `line 1`},
		{"distance-arity", "d 1\n", "line 1"},
		{"distance-extra-field", "d 1 2 3\n", "line 1"},
		{"cluster-arity", "c 1\n", "line 1"},
		{"same-arity", "s 1 2\n", "line 1"},
		{"negative-vertex", "d -1 2\n", "bad vertex"},
		{"vertex-overflow", "d 4294967296 0\n", "bad vertex"},
		{"float-vertex", "d 1.5 2\n", "bad vertex"},
		{"negative-level", "c -1 2\n", "bad level"},
		{"bad-level", "s x 1 2\n", "bad level"},
		{"error-line-number", "d 0 1\n\nd 2\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batches, err := parseQueryTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted hostile trace: %+v", batches)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSynthQueriesDeterministic pins the synthetic generator: same seed →
// identical workload, batches sized as requested, every query in range.
func TestSynthQueriesDeterministic(t *testing.T) {
	a := synthQueries(1000, 256, 500, 3, 42)
	b := synthQueries(1000, 256, 500, 3, 42)
	if len(a) != 4 {
		t.Fatalf("got %d batches, want 4 (256+256+256+232)", len(a))
	}
	total := 0
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d: %d vs %d queries", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch %d query %d differs across same-seed runs", i, j)
			}
			q := a[i][j]
			if q.u >= 500 || (q.op != 'c' && q.v >= 500) || q.level >= 3 {
				t.Fatalf("batch %d query %d out of range: %+v", i, j, q)
			}
		}
		total += len(a[i])
	}
	if total != 1000 {
		t.Fatalf("generated %d queries, want 1000", total)
	}
	if c := synthQueries(1000, 256, 500, 3, 43); len(c[0]) > 0 && c[0][0] == a[0][0] && c[0][1] == a[0][1] && c[0][2] == a[0][2] {
		t.Fatal("different seeds produced an identical workload prefix")
	}
}

// TestServeBatchMatchesScalar replays a mixed batch through serveBatch and
// checks its checksums against scalar oracle calls — the driver's batch
// path and the scalar API must agree.
func TestServeBatchMatchesScalar(t *testing.T) {
	g := graph.Grid2D(20, 20)
	inc, err := lowstretch.BuildIncrementalPoolCtx(nil, nil, g, 0.25, 3, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	do := oracle.NewDistance(inc.Tree(), nil, 2)
	mo := oracle.NewMembership(inc.Hierarchy(), nil, 2)
	batches := synthQueries(5000, 777, g.NumVertices(), mo.Levels(), 11)

	var sc queryScratch
	var distSum, sameCount int64
	var clusterXor uint32
	for i, b := range batches {
		if err := serveBatch(b, do, mo, &sc, &distSum, &sameCount, &clusterXor); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	var wantDist, wantSame int64
	var wantXor uint32
	for _, b := range batches {
		for _, q := range b {
			switch q.op {
			case 'd':
				wantDist += int64(do.Dist(q.u, q.v))
			case 'c':
				wantXor ^= mo.ClusterOf(q.u, q.level)
			case 's':
				if mo.SameCluster(q.u, q.v, q.level) {
					wantSame++
				}
			}
		}
	}
	if distSum != wantDist || sameCount != wantSame || clusterXor != wantXor {
		t.Fatalf("batch checksums (dist=%d same=%d xor=%08x) != scalar (dist=%d same=%d xor=%08x)",
			distSum, sameCount, clusterXor, wantDist, wantSame, wantXor)
	}

	// Out-of-range queries are rejected with the query index, not served.
	bad := []query{{op: 'd', u: uint32(g.NumVertices()), v: 0}}
	if err := serveBatch(bad, do, mo, &sc, &distSum, &sameCount, &clusterXor); err == nil || !strings.Contains(err.Error(), "query 0") {
		t.Fatalf("out-of-range vertex: err=%v", err)
	}
	bad = []query{{op: 's', level: mo.Levels(), u: 0, v: 1}}
	if err := serveBatch(bad, do, mo, &sc, &distSum, &sameCount, &clusterXor); err == nil || !strings.Contains(err.Error(), "level") {
		t.Fatalf("out-of-range level: err=%v", err)
	}
}
