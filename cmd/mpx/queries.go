package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/oracle"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// query is one point query of a -queries trace.
type query struct {
	op    byte // 'd' = distance, 'c' = cluster id, 's' = same cluster
	level int  // 'c'/'s' only
	u, v  uint32
}

// parseQueryTrace reads a query trace for -queries: one query per line —
// "d u v" (tree distance), "c l v" (cluster id of v at level l), or
// "s l u v" (same-cluster at level l) — with batches separated by blank
// lines or a "---" line, and "#" starting a comment. Each batch is served
// through the oracle batch APIs as one unit. Malformed lines fail with
// their line number; vertex ids and levels are range-checked against the
// built structures by the runner, not the parser.
func parseQueryTrace(r io.Reader) ([][]query, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var batches [][]query
	var cur []query
	flush := func() {
		if len(cur) > 0 {
			batches = append(batches, cur)
			cur = nil
		}
	}
	parseVertex := func(lineNo int, s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("trace line %d: bad vertex %q: %v", lineNo, s, err)
		}
		return uint32(v), nil
	}
	parseLevel := func(lineNo int, s string) (int, error) {
		l, err := strconv.ParseUint(s, 10, 31)
		if err != nil {
			return 0, fmt.Errorf("trace line %d: bad level %q: %v", lineNo, s, err)
		}
		return int(l), nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || (len(fields) == 1 && fields[0] == "---") {
			flush()
			continue
		}
		switch fields[0] {
		case "d":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: distance query is \"d u v\", got %d fields", lineNo, len(fields))
			}
			u, err := parseVertex(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			cur = append(cur, query{op: 'd', u: u, v: v})
		case "c":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: cluster query is \"c l v\", got %d fields", lineNo, len(fields))
			}
			l, err := parseLevel(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			cur = append(cur, query{op: 'c', level: l, u: v})
		case "s":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace line %d: same-cluster query is \"s l u v\", got %d fields", lineNo, len(fields))
			}
			l, err := parseLevel(lineNo, fields[1])
			if err != nil {
				return nil, err
			}
			u, err := parseVertex(lineNo, fields[2])
			if err != nil {
				return nil, err
			}
			v, err := parseVertex(lineNo, fields[3])
			if err != nil {
				return nil, err
			}
			cur = append(cur, query{op: 's', level: l, u: u, v: v})
		default:
			return nil, fmt.Errorf("trace line %d: unknown query op %q (want \"d\", \"c\", \"s\", \"---\" or a comment)", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %v", lineNo+1, err)
	}
	flush()
	if len(batches) == 0 {
		return nil, fmt.Errorf("trace: no queries (every line is blank or a comment)")
	}
	return batches, nil
}

// synthQueries generates a deterministic synthetic workload: count queries
// in batches of batch — a 50/25/25 mix of distance, cluster-id and
// same-cluster queries over uniform random vertices and levels.
func synthQueries(count, batch, n, levels int, seed uint64) [][]query {
	rng := xrand.NewSplitMix64(seed)
	var batches [][]query
	for count > 0 {
		sz := batch
		if sz > count {
			sz = count
		}
		b := make([]query, sz)
		for i := range b {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			switch rng.Intn(4) {
			case 0, 1:
				b[i] = query{op: 'd', u: u, v: v}
			case 2:
				b[i] = query{op: 'c', level: rng.Intn(levels), u: u}
			default:
				b[i] = query{op: 's', level: rng.Intn(levels), u: u, v: v}
			}
		}
		batches = append(batches, b)
		count -= sz
	}
	return batches
}

// queryScratch holds the reusable per-batch buffers of the replay loop:
// after the first batch, serving allocates nothing per query (the E25
// contract).
type queryScratch struct {
	dPairs, sPairs []oracle.Pair
	dIdx, cIdx     []int
	sIdx, cVerts   []uint32
	dOut           []int32
	cOut           []uint32
	sOut           []bool
}

// serveBatch splits one batch by op, runs the three oracle batch APIs, and
// folds the answers into checksums (so results are observable and the
// work cannot be elided). Returns an error on out-of-range vertices or
// levels, identifying the offending query.
func serveBatch(b []query, do *oracle.DistanceOracle, mo *oracle.MembershipOracle, sc *queryScratch, distSum *int64, sameCount *int64, clusterXor *uint32) error {
	n := mo.NumVertices()
	levels := mo.Levels()
	sc.dPairs, sc.sPairs = sc.dPairs[:0], sc.sPairs[:0]
	sc.cVerts = sc.cVerts[:0]
	sc.dIdx, sc.cIdx = sc.dIdx[:0], sc.cIdx[:0]
	sc.sIdx = sc.sIdx[:0]
	for i, q := range b {
		if int(q.u) >= n || (q.op != 'c' && int(q.v) >= n) {
			return fmt.Errorf("query %d: vertex out of range (n=%d)", i, n)
		}
		switch q.op {
		case 'd':
			sc.dPairs = append(sc.dPairs, oracle.Pair{U: q.u, V: q.v})
		case 'c':
			if q.level >= levels {
				return fmt.Errorf("query %d: level %d out of range (levels=%d)", i, q.level, levels)
			}
			sc.cVerts = append(sc.cVerts, q.u)
			sc.cIdx = append(sc.cIdx, q.level)
		case 's':
			if q.level >= levels {
				return fmt.Errorf("query %d: level %d out of range (levels=%d)", i, q.level, levels)
			}
			sc.sPairs = append(sc.sPairs, oracle.Pair{U: q.u, V: q.v})
			sc.sIdx = append(sc.sIdx, uint32(q.level))
		}
	}
	if len(sc.dPairs) > 0 {
		if cap(sc.dOut) < len(sc.dPairs) {
			sc.dOut = make([]int32, len(sc.dPairs))
		}
		do.DistBatch(sc.dPairs, sc.dOut[:len(sc.dPairs)])
		for _, d := range sc.dOut[:len(sc.dPairs)] {
			*distSum += int64(d)
		}
	}
	// Cluster/same-cluster batches are per-level; serve each level's run
	// contiguously (traces and the synthetic generator mix levels freely,
	// so group by level index here).
	if len(sc.cVerts) > 0 {
		if cap(sc.cOut) < len(sc.cVerts) {
			sc.cOut = make([]uint32, len(sc.cVerts))
		}
		for lo := 0; lo < len(sc.cVerts); {
			hi := lo + 1
			for hi < len(sc.cVerts) && sc.cIdx[hi] == sc.cIdx[lo] {
				hi++
			}
			mo.ClusterBatch(sc.cIdx[lo], sc.cVerts[lo:hi], sc.cOut[lo:hi])
			lo = hi
		}
		for _, c := range sc.cOut[:len(sc.cVerts)] {
			*clusterXor ^= c
		}
	}
	if len(sc.sPairs) > 0 {
		if cap(sc.sOut) < len(sc.sPairs) {
			sc.sOut = make([]bool, len(sc.sPairs))
		}
		for lo := 0; lo < len(sc.sPairs); {
			hi := lo + 1
			for hi < len(sc.sPairs) && sc.sIdx[hi] == sc.sIdx[lo] {
				hi++
			}
			mo.SameClusterBatch(int(sc.sIdx[lo]), sc.sPairs[lo:hi], sc.sOut[lo:hi])
			lo = hi
		}
		for _, s := range sc.sOut[:len(sc.sPairs)] {
			if s {
				*sameCount++
			}
		}
	}
	return nil
}

// runQueries is the -queries mode: build the low-stretch tree and its
// hierarchy once, wrap them in oracles, replay the query batches, and
// report throughput and per-batch latency percentiles. Queries never
// mutate the structures, so the replay is a pure read workload — the
// serving shape of the E25 experiment.
func runQueries(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction, spec string, qbatch int) error {
	inc, err := lowstretch.BuildIncrementalPoolCtx(ctx, pool, g, beta, seed, workers, dir)
	if err != nil {
		return err
	}
	do := oracle.NewDistance(inc.Tree(), pool, workers)
	mo := oracle.NewMembership(inc.Hierarchy(), pool, workers)
	fmt.Printf("graph: n=%d m=%d levels=%d\n", g.NumVertices(), g.NumEdges(), mo.Levels())

	var batches [][]query
	if rest, ok := strings.CutPrefix(spec, "synth:"); ok {
		count, err := strconv.Atoi(rest)
		if err != nil || count <= 0 {
			return fmt.Errorf("-queries synth:N needs a positive query count, got %q", rest)
		}
		if mo.Levels() == 0 {
			return fmt.Errorf("-queries: the hierarchy has no levels (empty graph); nothing to query")
		}
		batches = synthQueries(count, qbatch, g.NumVertices(), mo.Levels(), seed)
	} else {
		f, err := os.Open(spec)
		if err != nil {
			return err
		}
		batches, err = parseQueryTrace(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	var sc queryScratch
	var distSum, sameCount int64
	var clusterXor uint32
	total := 0
	lat := make([]float64, 0, len(batches))
	start := time.Now()
	for i, b := range batches {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t0 := time.Now()
		if err := serveBatch(b, do, mo, &sc, &distSum, &sameCount, &clusterXor); err != nil {
			return fmt.Errorf("batch %d: %v", i, err)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
		total += len(b)
	}
	elapsed := time.Since(start)

	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	qps := float64(total) / elapsed.Seconds()
	fmt.Printf("queries: total=%d batches=%d elapsed=%v qps=%.0f\n", total, len(batches), elapsed.Round(time.Microsecond), qps)
	fmt.Printf("latency: batchP50=%s batchP99=%s\n",
		time.Duration(pct(0.50)).Round(time.Nanosecond), time.Duration(pct(0.99)).Round(time.Nanosecond))
	fmt.Printf("answers: distSum=%d sameCluster=%d clusterXor=%08x\n", distSum, sameCount, clusterXor)
	return nil
}
