package main

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseUpdateTrace hammers the -updates trace parser with arbitrary
// input: it must never panic, and every batch it accepts must satisfy the
// graph.Batch invariants the replay driver assumes — InsertW either empty
// or covering every insert, and every weight finite and positive.
func FuzzParseUpdateTrace(f *testing.F) {
	f.Add("+ 0 5\n- 1 2\n---\n+ 3 4 2.5\n")
	f.Add("# comment only\n")
	f.Add("+ 1 2 NaN\n")
	f.Add("+ 1 2 +Inf\n")
	f.Add("+ 1 2 -0\n")
	f.Add("+ 1 2\n+ 3 4 1.5\n")
	f.Add("- 4294967295 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		batches, err := parseUpdateTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, b := range batches {
			if b.Len() == 0 {
				t.Fatalf("batch %d is empty", i)
			}
			if len(b.InsertW) != 0 && len(b.InsertW) != len(b.Insert) {
				t.Fatalf("batch %d: %d weights for %d inserts", i, len(b.InsertW), len(b.Insert))
			}
			for _, w := range b.InsertW {
				if !(w > 0) || math.IsInf(w, 0) {
					t.Fatalf("batch %d: parser accepted weight %v", i, w)
				}
			}
		}
	})
}
