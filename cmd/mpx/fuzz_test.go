package main

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseUpdateTrace hammers the -updates trace parser with arbitrary
// input: it must never panic, and every batch it accepts must satisfy the
// graph.Batch invariants the replay driver assumes — InsertW either empty
// or covering every insert, and every weight finite and positive.
func FuzzParseUpdateTrace(f *testing.F) {
	f.Add("+ 0 5\n- 1 2\n---\n+ 3 4 2.5\n")
	f.Add("# comment only\n")
	f.Add("+ 1 2 NaN\n")
	f.Add("+ 1 2 +Inf\n")
	f.Add("+ 1 2 -0\n")
	f.Add("+ 1 2\n+ 3 4 1.5\n")
	f.Add("- 4294967295 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		batches, err := parseUpdateTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, b := range batches {
			if b.Len() == 0 {
				t.Fatalf("batch %d is empty", i)
			}
			if len(b.InsertW) != 0 && len(b.InsertW) != len(b.Insert) {
				t.Fatalf("batch %d: %d weights for %d inserts", i, len(b.InsertW), len(b.Insert))
			}
			for _, w := range b.InsertW {
				if !(w > 0) || math.IsInf(w, 0) {
					t.Fatalf("batch %d: parser accepted weight %v", i, w)
				}
			}
		}
	})
}

// FuzzParseQueryTrace hammers the -queries trace parser with arbitrary
// input: it must never panic, and every batch it accepts must be non-empty
// and contain only the three known query ops with non-negative levels.
func FuzzParseQueryTrace(f *testing.F) {
	f.Add("d 0 5\nc 1 3\ns 2 4 9\n---\nd 7 7\n")
	f.Add("# comment only\n")
	f.Add("d 4294967295 0\n")
	f.Add("d 4294967296 0\n")
	f.Add("c -1 2\n")
	f.Add("s 1 2\n")
	f.Add("q 1 2\n")
	f.Add("---\n\n---\n")
	f.Fuzz(func(t *testing.T, in string) {
		batches, err := parseQueryTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		if len(batches) == 0 {
			t.Fatal("accepted a trace with zero batches")
		}
		for i, b := range batches {
			if len(b) == 0 {
				t.Fatalf("batch %d is empty", i)
			}
			for j, q := range b {
				if q.op != 'd' && q.op != 'c' && q.op != 's' {
					t.Fatalf("batch %d query %d: parser produced op %q", i, j, q.op)
				}
				if q.level < 0 {
					t.Fatalf("batch %d query %d: negative level %d", i, j, q.level)
				}
			}
		}
	})
}
