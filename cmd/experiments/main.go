// Command experiments runs the reproduction experiment suite (E1–E12 from
// DESIGN.md) and prints markdown tables suitable for EXPERIMENTS.md.
//
//	experiments                 # run everything at full scale
//	experiments -run E3 -scale 0.1
//	experiments -out results/   # also write Figure 1 PNGs + CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpx/internal/expt"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		trials  = flag.Int("trials", 0, "trials per data point (0 = default)")
		out     = flag.String("out", "", "directory for artifacts (PNGs, CSVs)")
	)
	flag.Parse()

	ids := expt.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	cfg := expt.Config{Scale: *scale, Seed: *seed, Workers: *workers, Trials: *trials, OutDir: *out}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := expt.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(res)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			csvPath := filepath.Join(*out, strings.ToLower(res.ID)+".csv")
			if err := os.WriteFile(csvPath, []byte(res.Table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
