// Command figures regenerates the paper's Figure 1: PNG panels of a
// 1000x1000 grid decomposed under β ∈ {0.002, 0.005, 0.01, 0.02, 0.05,
// 0.1}, plus the quantitative panel table.
//
//	figures -out figures/          # full 1000x1000 panels
//	figures -out figures/ -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"mpx/internal/expt"
)

func main() {
	var (
		out   = flag.String("out", "figures", "output directory for PNG panels")
		scale = flag.Float64("scale", 1.0, "grid scale (1.0 = the paper's 1000x1000)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	res, err := expt.Run("E1", expt.Config{Scale: *scale, Seed: *seed, OutDir: *out})
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	for _, a := range res.Artifacts {
		fmt.Println("wrote", a)
	}
}
