package connectivity

import (
	"testing"
	"testing/quick"

	"mpx/internal/core"
	"mpx/internal/graph"
)

func assertMatchesBFSLabels(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	want, count := graph.ConnectedComponents(g)
	if r.Components != count {
		t.Fatalf("components: got %d want %d", r.Components, count)
	}
	// Labels must induce the same partition: same-component iff same label.
	for v := 1; v < g.NumVertices(); v++ {
		sameWant := want[v] == want[0]
		sameGot := r.Label[v] == r.Label[0]
		if sameWant != sameGot {
			t.Fatalf("vertex %d grouping disagrees with BFS", v)
		}
	}
	// Canonical labels: the label is the smallest member of the component.
	for v := 0; v < g.NumVertices(); v++ {
		if r.Label[v] > uint32(v) {
			t.Fatalf("label[%d]=%d exceeds vertex id (not canonical)", v, r.Label[v])
		}
	}
}

func TestComponentsConnected(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Grid2D(25, 25),
		graph.Cycle(100),
		graph.Complete(30),
		graph.Hypercube(8),
	} {
		r, err := Components(g, 0.4, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if r.Components != 1 {
			t.Errorf("%v: %d components", g, r.Components)
		}
		for _, l := range r.Label {
			if l != 0 {
				t.Fatalf("connected graph should label everything 0")
			}
		}
	}
}

func TestComponentsDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}, {U: 6, V: 7}, {U: 7, V: 8}}
	g, err := graph.FromEdges(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Components(g, 0.4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBFSLabels(t, g, r)
	if r.Components != 5 { // {0,1,2},{3},{4,5},{6,7,8},{9}
		t.Errorf("components=%d want 5", r.Components)
	}
}

func TestComponentsEdgeDecay(t *testing.T) {
	g := graph.Torus2D(40, 40)
	r, err := Components(g, 0.4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds < 2 {
		t.Skip("converged in one round; nothing to check")
	}
	// Geometric decay overall: the last round should see far fewer edges
	// than the first (expected factor beta per round).
	first := r.EdgesPerRound[0]
	last := r.EdgesPerRound[len(r.EdgesPerRound)-1]
	if last*2 > first {
		t.Errorf("edge decay too slow: first %d last %d (%v)", first, last, r.EdgesPerRound)
	}
}

func TestComponentsQuickAgainstBFS(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		n := 40
		edges := make([]graph.Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, graph.Edge{U: uint32(raw[i]) % uint32(n), V: uint32(raw[i+1]) % uint32(n)})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			return false
		}
		r, err := Components(g, 0.4, seed, 2)
		if err != nil {
			return false
		}
		want, count := graph.ConnectedComponents(g)
		if r.Components != count {
			return false
		}
		// Partition agreement via label-pair sampling over all vertices.
		repr := map[int32]uint32{}
		for v := 0; v < n; v++ {
			if prev, ok := repr[want[v]]; ok {
				if r.Label[v] != prev {
					return false
				}
			} else {
				repr[want[v]] = r.Label[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComponentsRejectsBadBeta(t *testing.T) {
	if _, err := Components(graph.Path(4), 0, 0, 1); err == nil {
		t.Error("expected error")
	}
}

func TestComponentsEmptyAndEdgeless(t *testing.T) {
	empty, _ := graph.FromEdges(0, nil)
	r, err := Components(empty, 0.4, 0, 1)
	if err != nil || r.Components != 0 {
		t.Errorf("empty: %+v err=%v", r, err)
	}
	iso, _ := graph.FromEdges(5, nil)
	r, err = Components(iso, 0.4, 0, 1)
	if err != nil || r.Components != 5 || r.Rounds != 0 {
		t.Errorf("edgeless: %+v err=%v", r, err)
	}
}

// TestComponentsPoolDirectionsBitIdentical: labels, round counts and
// per-round edge counts must be bit-identical at workers 1/2/8 and under
// push/pull/auto, like every other hierarchy app.
func TestComponentsPoolDirectionsBitIdentical(t *testing.T) {
	gs := map[string]*graph.Graph{
		"grid": graph.Grid2D(16, 19),
		"gnm":  graph.GNM(600, 1500, 5),
	}
	for name, g := range gs {
		base, err := ComponentsPool(nil, g, 0.4, 1, 1, core.DirectionForcePush)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesBFSLabels(t, g, base)
		dirs := []core.Direction{core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto}
		for _, dir := range dirs {
			for _, w := range []int{1, 2, 8} {
				r, err := ComponentsPool(nil, g, 0.4, 1, w, dir)
				if err != nil {
					t.Fatal(err)
				}
				if r.Rounds != base.Rounds {
					t.Fatalf("%s dir=%v workers=%d: rounds %d want %d", name, dir, w, r.Rounds, base.Rounds)
				}
				for i := range base.Label {
					if r.Label[i] != base.Label[i] {
						t.Fatalf("%s dir=%v workers=%d: Label[%d] differs", name, dir, w, i)
					}
				}
				for i := range base.EdgesPerRound {
					if r.EdgesPerRound[i] != base.EdgesPerRound[i] {
						t.Fatalf("%s dir=%v workers=%d: EdgesPerRound[%d] differs", name, dir, w, i)
					}
				}
			}
		}
	}
}
