// Package connectivity implements work-efficient parallel connected
// components by repeated low-diameter decomposition and contraction — the
// algorithm of Shun, Dhulipala and Blelloch (2014), which uses exactly the
// paper's Partition as its inner routine.
//
// Each round decomposes the current graph with a constant β, contracts
// every piece to a super-vertex, and recurses on the quotient graph (only
// the O(βm) cut edges survive contraction, so the edge count decays
// geometrically and the total work is O(m) in expectation with O(polylog)
// rounds). Labels are propagated back down through the contraction maps.
package connectivity

import (
	"context"
	"errors"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Result carries component labels and the round structure of the run.
type Result struct {
	// Label[v] is the component id of v (the smallest original vertex in
	// the component, so labels are canonical).
	Label []uint32
	// Components is the number of connected components.
	Components int
	// Rounds is the number of decompose-and-contract rounds executed.
	Rounds int
	// EdgesPerRound records the surviving edge count entering each round
	// (the geometric decay that makes the algorithm work-efficient).
	EdgesPerRound []int64
	// Stats summarizes each contraction level (sizes, clusters, cut).
	Stats []hier.LevelStat
}

// Components computes connected components via LDD contraction with the
// given β per round (beta in (0,1); 0.4 is the conventional constant),
// running on the shared parallel.Default() pool.
func Components(g *graph.Graph, beta float64, seed uint64, workers int) (*Result, error) {
	return ComponentsPool(nil, g, beta, seed, workers, core.DirectionAuto)
}

// ComponentsPool is Components on an explicit persistent worker pool (nil
// means parallel.Default()) with an explicit traversal direction: the
// decompose-and-contract rounds run on the internal/hier engine, so every
// Partition, the parallel graph.ContractClustersPool contraction, and the
// original→quotient vertex relabeling all execute on the same pool
// instance with reused scratch.
func ComponentsPool(pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Result, error) {
	return ComponentsPoolCtx(nil, pool, g, beta, seed, workers, dir)
}

// ComponentsPoolCtx is ComponentsPool with a cancellation context (nil
// means never cancelled), polled at contraction-round and partition-round
// boundaries; a cancelled run returns (nil, ctx.Err()) with no partial
// labeling.
func ComponentsPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Result, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	n := g.NumVertices()
	res := &Result{Label: make([]uint32, n)}
	if n == 0 {
		return res, nil
	}
	hres, err := hier.Run(hier.Config{
		Ctx:            ctx,
		Beta:           beta,
		Seed:           seed,
		Workers:        workers,
		Pool:           pool,
		Direction:      dir,
		TrackVertexMap: true,
	}, g, nil)
	if err == hier.ErrMaxLevels {
		return nil, errors.New("connectivity: contraction failed to converge")
	}
	if err != nil {
		return nil, err
	}
	res.Rounds = hres.Levels
	res.Stats = hres.Stats
	for _, st := range hres.Stats {
		res.EdgesPerRound = append(res.EdgesPerRound, st.M)
	}
	// Canonicalize: label = smallest original vertex per final super-vertex.
	// Every final super-vertex is one component, so the relabel table is a
	// plain slice keyed by quotient id — no map churn on the hot exit path.
	cur := hres.OrigMap
	nq := hres.Final.NumVertices()
	smallest := make([]uint32, nq)
	for v := n - 1; v >= 0; v-- {
		smallest[cur[v]] = uint32(v)
	}
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			res.Label[v] = smallest[cur[v]]
		}
	})
	res.Components = nq
	return res, nil
}
