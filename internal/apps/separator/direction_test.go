package separator

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// fingerprint hashes the full separator output, including the pinned
// orderings of all three vertex sets.
func fingerprint(r *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	for _, s := range [][]uint32{r.Separator, r.SideA, r.SideB} {
		put32(uint32(len(s)))
		for _, v := range s {
			put32(v)
		}
	}
	put64(math.Float64bits(r.Balance))
	put64(math.Float64bits(r.Beta))
	put32(uint32(r.Pieces))
	return h.Sum64()
}

var allDirections = []core.Direction{
	core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto,
}

// TestFindPoolDirectionsBitIdentical: separator extraction must be
// bit-identical at workers 1/2/8 and under push/pull/auto, on the fixed-β
// and the auto-tuning (β retry) paths.
func TestFindPoolDirectionsBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		beta float64
	}{
		{"grid", graph.Grid2D(20, 22), 0.3},
		{"gnm", graph.GNM(500, 800, 3), 0.5},
		{"grid-autotune", graph.Grid2D(24, 24), 0},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 42} {
			base, err := FindPool(nil, tc.g, tc.beta, 2.0/3, seed, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					r, err := FindPool(nil, tc.g, tc.beta, 2.0/3, seed, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(r); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							tc.name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestFindGolden pins one fixed separator to a golden fingerprint across
// directions and worker counts.
func TestFindGolden(t *testing.T) {
	const golden = uint64(0x5bf539e6e3a21c23)
	g := graph.Grid2D(20, 20)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			r, err := FindPool(nil, g, 0.3, 2.0/3, 2, w, dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(r); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}

// TestFindOutputOrderingPinned is the regression test for the output
// contract: all three vertex sets come back sorted by ascending vertex id
// — the ordering downstream consumers may rely on — and repeated runs
// (including the auto-tune retry path, which reuses one scratch set
// across β attempts) reproduce it exactly.
func TestFindOutputOrderingPinned(t *testing.T) {
	g := graph.Grid2D(24, 24)
	// β=0 auto-tunes: the first attempts produce one giant piece and fail
	// the balance bound, so the retry loop reuses the scratch repeatedly
	// before succeeding.
	r, err := Find(g, 0, 0.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Beta <= 0.01 {
		t.Fatalf("auto-tune did not retry (winning beta %g); test needs the retry path", r.Beta)
	}
	for name, s := range map[string][]uint32{"Separator": r.Separator, "SideA": r.SideA, "SideB": r.SideB} {
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				t.Fatalf("%s not strictly ascending at %d: %d then %d", name, i, s[i-1], s[i])
			}
		}
	}
	want := fingerprint(r)
	for run := 0; run < 3; run++ {
		again, err := FindPool(nil, g, 0, 0.6, 7, 8, core.DirectionForcePull)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(again) != want {
			t.Fatalf("run %d: retry path not reproducible", run)
		}
	}
}
