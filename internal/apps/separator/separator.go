// Package separator computes balanced vertex separators from low-diameter
// decompositions — the application the paper's Section 2 cites for
// unweighted decompositions ("efficiently computing separators in
// minor-free graphs [23, 28]; our algorithm can be directly substituted
// into these algorithms").
//
// The scheme: decompose with a diameter target tied to the balance
// requirement, merge pieces greedily into two sides of roughly equal size,
// and take one endpoint of every edge crossing between the sides as the
// separator. On planar-like inputs (grids, road networks) the decomposition
// cuts O(βm) edges, giving separators of size O(√n · polylog) when β is
// chosen near 1/√n — within a polylog of the optimal planar √n bound, the
// gap the shallow-minor machinery of [23] closes.
//
// Decomposition and piece bookkeeping run as pooled kernels on the shared
// parallel.Pool: piece sizes accumulate into a slice indexed by center,
// piece ordering is a pool radix sort on packed (size, center) keys, and
// one scratch set is reused across every β retry of the auto-tuning loop.
// Output ordering is pinned: Separator, SideA and SideB are each sorted by
// ascending vertex id, and for a fixed (g, beta, seed) the result is
// bit-identical at every worker count and traversal direction.
package separator

import (
	"context"
	"errors"
	"sync/atomic"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Result is a balanced vertex separator.
type Result struct {
	// Separator vertices; removing them disconnects SideA from SideB.
	// Sorted by ascending vertex id, as are SideA and SideB.
	Separator []uint32
	// SideA and SideB are the two balanced vertex sets (excluding the
	// separator).
	SideA, SideB []uint32
	// Balance is max(|A|,|B|) / (|A|+|B|); <= maxImbalance by construction.
	Balance float64
	// Beta is the decomposition parameter used.
	Beta float64
	// Pieces is the number of decomposition pieces merged.
	Pieces int
	// Stats summarizes the winning decomposition (one level).
	Stats []hier.LevelStat
}

// findScratch owns the buffers splitPieces reuses across the β retries of
// one Find call: the auto-tuning loop used to rebuild (and stdlib-sort) a
// fresh piece table per retry.
type findScratch struct {
	counts  []int64  // per center: piece size
	centers []uint32 // cluster centers, ascending
	keys    []uint64 // packed (n-size, center) piece ordering keys
	keyTmp  []uint64 // radix ping-pong
	side    []int8   // per center: assigned side (0 or 1)
	inSep   []bool   // per vertex: separator membership
}

// Find computes a balanced separator: no side exceeds maxImbalance (in
// (0.5, 1), e.g. 2/3) of the non-separator vertices. beta controls the
// decomposition granularity; pass 0 to auto-tune (doubling until pieces are
// small enough to balance). Runs on the shared default pool.
func Find(g *graph.Graph, beta float64, maxImbalance float64, seed uint64) (*Result, error) {
	return FindPool(nil, g, beta, maxImbalance, seed, 0, core.DirectionAuto)
}

// FindPool is Find on an explicit persistent worker pool (nil means
// parallel.Default()) with an explicit logical worker count and traversal
// direction.
func FindPool(pool *parallel.Pool, g *graph.Graph, beta, maxImbalance float64, seed uint64, workers int, dir core.Direction) (*Result, error) {
	return FindPoolCtx(nil, pool, g, beta, maxImbalance, seed, workers, dir)
}

// FindPoolCtx is FindPool with a cancellation context (nil means never
// cancelled), polled at partition-round boundaries and between β retries
// of the auto-tuning loop; a cancelled run returns (nil, ctx.Err()) with
// no partial separator.
func FindPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta, maxImbalance float64, seed uint64, workers int, dir core.Direction) (*Result, error) {
	if maxImbalance <= 0.5 || maxImbalance >= 1 {
		return nil, errors.New("separator: maxImbalance must lie in (0.5, 1)")
	}
	n := g.NumVertices()
	if n == 0 {
		return &Result{Beta: beta}, nil
	}
	betas := []float64{beta}
	if beta <= 0 {
		betas = nil
		for b := 0.01; b < 1; b *= 2 {
			betas = append(betas, b)
		}
	}
	sc := &findScratch{}
	var lastErr error
	for _, b := range betas {
		d, err := core.Partition(g, b, core.Options{
			Ctx:       ctx,
			Seed:      seed,
			Workers:   workers,
			Pool:      pool,
			Direction: dir,
		})
		if err != nil {
			return nil, err
		}
		res, err := splitPieces(pool, workers, g, d, maxImbalance, sc)
		if err != nil {
			lastErr = err
			continue // pieces too large at this beta; try finer
		}
		res.Beta = b
		cut := hier.CutEdgesOnPool(pool, workers, g, d.Center)
		st := hier.LevelStat{
			Level: 0, N: n, M: g.NumEdges(),
			Clusters: res.Pieces, CutEdges: cut, QuotientN: res.Pieces,
		}
		if st.M > 0 {
			st.CutFraction = float64(cut) / float64(st.M)
		}
		res.Stats = []hier.LevelStat{st}
		return res, nil
	}
	if lastErr == nil {
		lastErr = errors.New("separator: no beta produced balanceable pieces")
	}
	return nil, lastErr
}

// splitPieces greedily assigns decomposition pieces (largest first) to the
// lighter of two sides, then extracts the separator from the crossing
// edges. Piece sizes, the (size desc, center asc) piece order, and the
// crossing scan are pooled kernels over reused scratch.
func splitPieces(pool *parallel.Pool, workers int, g *graph.Graph, d *core.Decomposition, maxImbalance float64, sc *findScratch) (*Result, error) {
	n := g.NumVertices()
	center := d.Center
	sc.counts = parallel.Grow(sc.counts, n)
	counts := sc.counts
	parallel.FillPool(pool, workers, counts, 0)
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			atomic.AddInt64(&counts[center[v]], 1)
		}
	})
	sc.centers = pool.PackInto(workers, n, func(v int) bool {
		return center[v] == uint32(v)
	}, sc.centers)
	centers := sc.centers
	k := len(centers)
	// Largest-first greedy order, ties by center id: ascending packed
	// (n-size, center) keys sort exactly like the old stdlib
	// (size desc, center asc) comparator, with the size recoverable from
	// the key — no per-retry piece structs.
	sc.keys = parallel.Grow(sc.keys, k)
	keys := sc.keys
	pool.ForRange(workers, k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := centers[i]
			keys[i] = uint64(int64(n)-counts[c])<<32 | uint64(c)
		}
	})
	sc.keyTmp = parallel.Grow(sc.keyTmp, k)
	pool.SortUint64(workers, keys, sc.keyTmp)
	if float64(n-int(keys[0]>>32)) > maxImbalance*float64(n) {
		return nil, errors.New("separator: a single piece exceeds the balance bound")
	}
	sc.side = parallel.Grow(sc.side, n)
	side := sc.side // indexed by center; every center is assigned below
	sizeA, sizeB := 0, 0
	for _, key := range keys {
		c := uint32(key)
		s := n - int(key>>32)
		if sizeA <= sizeB {
			side[c] = 0
			sizeA += s
		} else {
			side[c] = 1
			sizeB += s
		}
	}
	// Separator: for each crossing edge, take the side-A endpoint (any
	// vertex cover of the crossing edges works; one-sided selection keeps
	// it simple and deterministic). Each vertex writes only its own slot,
	// so the scan is race-free.
	sc.inSep = parallel.Grow(sc.inSep, n)
	inSep := sc.inSep
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			in := false
			if side[center[v]] == 0 {
				for _, u := range g.Neighbors(uint32(v)) {
					if side[center[u]] == 1 {
						in = true
						break
					}
				}
			}
			inSep[v] = in
		}
	})
	res := &Result{Pieces: k}
	remA, remB := 0, 0
	for v := 0; v < n; v++ {
		switch {
		case inSep[v]:
			res.Separator = append(res.Separator, uint32(v))
		case side[center[v]] == 0:
			res.SideA = append(res.SideA, uint32(v))
			remA++
		default:
			res.SideB = append(res.SideB, uint32(v))
			remB++
		}
	}
	total := remA + remB
	if total > 0 {
		bigger := remA
		if remB > bigger {
			bigger = remB
		}
		res.Balance = float64(bigger) / float64(total)
	}
	if res.Balance > maxImbalance {
		return nil, errors.New("separator: greedy split exceeded the balance bound")
	}
	return res, nil
}

// Verify checks that removing the separator disconnects SideA from SideB:
// no edge joins a SideA vertex to a SideB vertex.
func Verify(g *graph.Graph, r *Result) error {
	side := make([]int8, g.NumVertices())
	for _, v := range r.SideA {
		side[v] = 1
	}
	for _, v := range r.SideB {
		side[v] = 2
	}
	for _, v := range r.Separator {
		side[v] = 3
	}
	for v := 0; v < g.NumVertices(); v++ {
		if side[v] == 0 {
			return errors.New("separator: vertex not assigned to any part")
		}
		if side[v] != 1 {
			continue
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if side[u] == 2 {
				return errors.New("separator: SideA adjacent to SideB")
			}
		}
	}
	return nil
}
