// Package separator computes balanced vertex separators from low-diameter
// decompositions — the application the paper's Section 2 cites for
// unweighted decompositions ("efficiently computing separators in
// minor-free graphs [23, 28]; our algorithm can be directly substituted
// into these algorithms").
//
// The scheme: decompose with a diameter target tied to the balance
// requirement, merge pieces greedily into two sides of roughly equal size,
// and take one endpoint of every edge crossing between the sides as the
// separator. On planar-like inputs (grids, road networks) the decomposition
// cuts O(βm) edges, giving separators of size O(√n · polylog) when β is
// chosen near 1/√n — within a polylog of the optimal planar √n bound, the
// gap the shallow-minor machinery of [23] closes.
package separator

import (
	"errors"
	"sort"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// Result is a balanced vertex separator.
type Result struct {
	// Separator vertices; removing them disconnects SideA from SideB.
	Separator []uint32
	// SideA and SideB are the two balanced vertex sets (excluding the
	// separator).
	SideA, SideB []uint32
	// Balance is max(|A|,|B|) / (|A|+|B|); <= maxImbalance by construction.
	Balance float64
	// Beta is the decomposition parameter used.
	Beta float64
	// Pieces is the number of decomposition pieces merged.
	Pieces int
}

// Find computes a balanced separator: no side exceeds maxImbalance (in
// (0.5, 1), e.g. 2/3) of the non-separator vertices. beta controls the
// decomposition granularity; pass 0 to auto-tune (doubling until pieces are
// small enough to balance).
func Find(g *graph.Graph, beta float64, maxImbalance float64, seed uint64) (*Result, error) {
	if maxImbalance <= 0.5 || maxImbalance >= 1 {
		return nil, errors.New("separator: maxImbalance must lie in (0.5, 1)")
	}
	n := g.NumVertices()
	if n == 0 {
		return &Result{Beta: beta}, nil
	}
	betas := []float64{beta}
	if beta <= 0 {
		betas = nil
		for b := 0.01; b < 1; b *= 2 {
			betas = append(betas, b)
		}
	}
	var lastErr error
	for _, b := range betas {
		d, err := core.Partition(g, b, core.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		res, err := splitPieces(g, d, maxImbalance)
		if err != nil {
			lastErr = err
			continue // pieces too large at this beta; try finer
		}
		res.Beta = b
		return res, nil
	}
	if lastErr == nil {
		lastErr = errors.New("separator: no beta produced balanceable pieces")
	}
	return nil, lastErr
}

// splitPieces greedily assigns decomposition pieces (largest first) to the
// lighter of two sides, then extracts the separator from the crossing
// edges.
func splitPieces(g *graph.Graph, d *core.Decomposition, maxImbalance float64) (*Result, error) {
	n := g.NumVertices()
	sizes := d.ClusterSizes()
	type piece struct {
		center uint32
		size   int
	}
	pieces := make([]piece, 0, len(sizes))
	for c, s := range sizes {
		pieces = append(pieces, piece{c, s})
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].size != pieces[j].size {
			return pieces[i].size > pieces[j].size
		}
		return pieces[i].center < pieces[j].center
	})
	if float64(pieces[0].size) > maxImbalance*float64(n) {
		return nil, errors.New("separator: a single piece exceeds the balance bound")
	}
	sideOf := make(map[uint32]int, len(pieces))
	sizeA, sizeB := 0, 0
	for _, p := range pieces {
		if sizeA <= sizeB {
			sideOf[p.center] = 0
			sizeA += p.size
		} else {
			sideOf[p.center] = 1
			sizeB += p.size
		}
	}
	// Separator: for each crossing edge, take the side-A endpoint (any
	// vertex cover of the crossing edges works; one-sided selection keeps
	// it simple and deterministic).
	inSep := make([]bool, n)
	for v := 0; v < n; v++ {
		sv := sideOf[d.Center[v]]
		for _, u := range g.Neighbors(uint32(v)) {
			if sideOf[d.Center[u]] != sv && sv == 0 {
				inSep[v] = true
			}
		}
	}
	res := &Result{Pieces: len(pieces)}
	remA, remB := 0, 0
	for v := 0; v < n; v++ {
		switch {
		case inSep[v]:
			res.Separator = append(res.Separator, uint32(v))
		case sideOf[d.Center[v]] == 0:
			res.SideA = append(res.SideA, uint32(v))
			remA++
		default:
			res.SideB = append(res.SideB, uint32(v))
			remB++
		}
	}
	total := remA + remB
	if total > 0 {
		bigger := remA
		if remB > bigger {
			bigger = remB
		}
		res.Balance = float64(bigger) / float64(total)
	}
	if res.Balance > maxImbalance {
		return nil, errors.New("separator: greedy split exceeded the balance bound")
	}
	return res, nil
}

// Verify checks that removing the separator disconnects SideA from SideB:
// no edge joins a SideA vertex to a SideB vertex.
func Verify(g *graph.Graph, r *Result) error {
	side := make([]int8, g.NumVertices())
	for _, v := range r.SideA {
		side[v] = 1
	}
	for _, v := range r.SideB {
		side[v] = 2
	}
	for _, v := range r.Separator {
		side[v] = 3
	}
	for v := 0; v < g.NumVertices(); v++ {
		if side[v] == 0 {
			return errors.New("separator: vertex not assigned to any part")
		}
		if side[v] != 1 {
			continue
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if side[u] == 2 {
				return errors.New("separator: SideA adjacent to SideB")
			}
		}
	}
	return nil
}
