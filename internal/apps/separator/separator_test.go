package separator

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func TestFindOnGrid(t *testing.T) {
	g := graph.Grid2D(30, 30)
	r, err := Find(g, 0, 2.0/3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Balance > 2.0/3 {
		t.Errorf("balance %g exceeds 2/3", r.Balance)
	}
	if len(r.Separator) == 0 {
		t.Error("empty separator on a connected grid")
	}
	// Shape guard: separator should be O(sqrt(n) polylog), far below n.
	n := float64(g.NumVertices())
	if float64(len(r.Separator)) > 8*math.Sqrt(n)*math.Log(n) {
		t.Errorf("separator size %d too large for a grid (n=%d)", len(r.Separator), int(n))
	}
}

func TestFindExplicitBeta(t *testing.T) {
	g := graph.Grid2D(20, 20)
	r, err := Find(g, 0.3, 2.0/3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Beta != 0.3 {
		t.Errorf("beta %g", r.Beta)
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestFindRejectsBadImbalance(t *testing.T) {
	g := graph.Path(10)
	for _, mi := range []float64{0.5, 1.0, 0, -1} {
		if _, err := Find(g, 0.2, mi, 0); err == nil {
			t.Errorf("maxImbalance=%g: expected error", mi)
		}
	}
}

func TestFindFailsWhenPieceTooLarge(t *testing.T) {
	// With tiny beta on a small graph a single piece holds everything and
	// no balanced split exists at that beta; auto-tuning escalates, an
	// explicit beta errors.
	g := graph.Complete(20)
	if _, err := Find(g, 0.01, 0.6, 1); err == nil {
		t.Error("expected failure with one giant piece at explicit tiny beta")
	}
}

func TestFindEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	r, err := Find(g, 0.2, 0.66, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Separator) != 0 {
		t.Error("empty graph separator should be empty")
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	bad := &Result{SideA: []uint32{0, 1}, SideB: []uint32{2, 3}}
	if err := Verify(g, bad); err == nil {
		t.Error("expected adjacency violation")
	}
	missing := &Result{SideA: []uint32{0}, SideB: []uint32{3}, Separator: []uint32{1}}
	if err := Verify(g, missing); err == nil {
		t.Error("expected unassigned-vertex violation")
	}
}

func TestSeparatorOnRoadNetwork(t *testing.T) {
	g0 := graph.RoadNetwork(40, 40, 0.85, 20, 5)
	g, _ := graph.LargestComponent(g0)
	r, err := Find(g, 0, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	if r.Balance > 0.7 {
		t.Errorf("balance %g", r.Balance)
	}
}

func TestSeparatorDisconnectedGraph(t *testing.T) {
	g, err := graph.FromEdges(8, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}})
	if err != nil {
		t.Fatal(err)
	}
	r, errF := Find(g, 0.5, 0.6, 1)
	if errF != nil {
		t.Fatal(errF)
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
	// Disconnected components balance without any separator vertices.
	if r.Balance > 0.6 {
		t.Errorf("balance %g", r.Balance)
	}
}
