package blocks

import (
	"hash/fnv"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// fingerprint hashes the complete block structure: per block the edge
// sequence, component radius bound and contributing cluster count.
func fingerprint(bd *Decomposition) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put32(uint32(len(bd.Blocks)))
	for _, b := range bd.Blocks {
		put32(uint32(len(b.Edges)))
		put32(uint32(b.MaxComponentRadius))
		put32(uint32(b.Clusters))
		for _, e := range b.Edges {
			put32(e.U)
			put32(e.V)
		}
	}
	return h.Sum64()
}

var allDirections = []core.Direction{
	core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto,
}

// TestDecomposePoolDirectionsBitIdentical: the Linial–Saks iteration on
// the engine's residual mode must produce bit-identical blocks at workers
// 1/2/8 and under push/pull/auto.
func TestDecomposePoolDirectionsBitIdentical(t *testing.T) {
	gs := map[string]*graph.Graph{
		"grid": graph.Grid2D(16, 20),
		"gnm":  graph.GNM(400, 1400, 7),
	}
	for name, g := range gs {
		for _, seed := range []uint64{1, 42} {
			base, err := DecomposePool(nil, g, 0.5, seed, 0, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					bd, err := DecomposePool(nil, g, 0.5, seed, 0, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(bd); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestDecomposeGolden pins one fixed decomposition to a golden
// fingerprint across every direction and worker count.
func TestDecomposeGolden(t *testing.T) {
	const golden = uint64(0x77c84a23e69d6b2c)
	g := graph.Torus2D(14, 15)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			bd, err := DecomposePool(nil, g, 0.5, 5, 0, w, dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(bd); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}
