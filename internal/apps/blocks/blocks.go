// Package blocks implements the Linial–Saks style block decomposition the
// paper describes in Section 2: partition the edges of a graph into
// O(log n) blocks so that every connected component within a block has
// diameter O(log n).
//
// It is obtained by iterating a (1/2, O(log n)) low-diameter decomposition:
// each iteration runs Partition with β = 1/2 on the still-unassigned edges,
// assigns all intra-cluster edges to the current block (every cluster's BFS
// tree lands in the block, so block components coincide with clusters and
// inherit their diameter bound), and passes the cut edges to the next
// iteration. Since at most half the edges are cut in expectation, the
// expected number of blocks is O(log m).
//
// The iteration is the internal/hier engine's residual mode: every level's
// Partition, intra/cut classification and residual-graph rebuild execute
// as pooled kernels on the shared parallel.Pool, and output is
// bit-identical across worker counts and traversal directions.
package blocks

import (
	"context"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Block is one edge class of the decomposition.
type Block struct {
	// Edges are the original-graph edges assigned to this block.
	Edges []graph.Edge
	// MaxComponentRadius bounds the radius of every connected component of
	// the block subgraph (measured from the cluster centers of the LDD that
	// produced the block).
	MaxComponentRadius int32
	// Clusters is the number of LDD clusters that contributed edges.
	Clusters int
}

// Decomposition is a partition of the edge set into blocks.
type Decomposition struct {
	G      *graph.Graph
	Blocks []Block
	Beta   float64
	// Stats summarizes each decomposition level (sizes, clusters, cut).
	Stats []hier.LevelStat
}

// Decompose computes a block decomposition of g using β (1/2 gives the
// classical guarantee) and the given seed, on the shared default pool.
// maxIters caps the iteration count defensively; 0 means 4·log2(m)+8.
func Decompose(g *graph.Graph, beta float64, seed uint64, maxIters int) (*Decomposition, error) {
	return DecomposePool(nil, g, beta, seed, maxIters, 0, core.DirectionAuto)
}

// DecomposePool is Decompose on an explicit persistent worker pool (nil
// means parallel.Default()) with an explicit logical worker count and
// traversal direction. For a fixed (g, beta, seed) the blocks are
// bit-identical at every worker count and direction.
func DecomposePool(pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*Decomposition, error) {
	return DecomposePoolCtx(nil, pool, g, beta, seed, maxIters, workers, dir)
}

// DecomposePoolCtx is DecomposePool with a cancellation context (nil means
// never cancelled), polled at level and partition-round boundaries; a
// cancelled run returns (nil, ctx.Err()) with no partial decomposition.
func DecomposePoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	bd := &Decomposition{G: g, Beta: beta}
	if maxIters <= 0 {
		maxIters = 8
		for m := g.NumEdges(); m > 0; m >>= 1 {
			maxIters += 4
		}
	}
	centerSeen := parallel.NewBitset(g.NumVertices())
	res, err := hier.Run(hier.Config{
		Ctx:       ctx,
		Beta:      beta,
		Seed:      seed,
		Workers:   workers,
		Pool:      pool,
		Direction: dir,
		MaxLevels: maxIters,
		Residual:  true,
		NeedIntra: true,
	}, g, func(lv *hier.Level) error {
		if len(lv.IntraEdges) == 0 {
			return nil
		}
		blk := Block{
			Edges:              append([]graph.Edge(nil), lv.IntraEdges...),
			MaxComponentRadius: lv.D.MaxRadius(),
			Clusters:           distinctCenters(pool, workers, lv.IntraEdges, lv.D.Center, centerSeen),
		}
		bd.Blocks = append(bd.Blocks, blk)
		return nil
	})
	if err == hier.ErrMaxLevels {
		return nil, core.ErrBeta // β left edges uncovered within the cap; defensive
	}
	if err != nil {
		return nil, err
	}
	bd.Stats = res.Stats
	return bd, nil
}

// distinctCenters counts the clusters that contributed an edge to the
// current block: the number of distinct centers over the intra edges'
// endpoints. Marking is an idempotent atomic bit set, so the count is
// deterministic at any worker count.
func distinctCenters(pool *parallel.Pool, workers int, intra []graph.Edge, center []uint32, seen *parallel.Bitset) int {
	// Bitset.Reset fills on the default pool; route the clear through the
	// caller's pool like every other kernel here.
	parallel.FillPool(pool, workers, seen.Words(), 0)
	return int(pool.ReduceInt64(workers, len(intra), func(i int) int64 {
		if seen.TrySetAtomic(center[intra[i].U]) {
			return 1
		}
		return 0
	}))
}

// NumBlocks returns the number of non-empty blocks.
func (bd *Decomposition) NumBlocks() int { return len(bd.Blocks) }

// EdgeCount returns the total edges across blocks (must equal m).
func (bd *Decomposition) EdgeCount() int64 {
	var total int64
	for _, b := range bd.Blocks {
		total += int64(len(b.Edges))
	}
	return total
}

// ComponentDiameters computes, per block, the exact diameter of every
// connected component of the block subgraph (all-pairs BFS within each
// component; intended for verification at test scale).
func (bd *Decomposition) ComponentDiameters() [][]int32 {
	out := make([][]int32, len(bd.Blocks))
	for i, b := range bd.Blocks {
		sub, err := graph.FromEdges(bd.G.NumVertices(), b.Edges)
		if err != nil {
			panic(err)
		}
		labels, count := graph.ConnectedComponents(sub)
		// Skip singleton components (isolated vertices of the block).
		memberOf := make([][]uint32, count)
		for v, l := range labels {
			memberOf[l] = append(memberOf[l], uint32(v))
		}
		var diams []int32
		for _, members := range memberOf {
			if len(members) < 2 {
				continue
			}
			var diam int32
			for _, s := range members {
				dist := bfsWithin(sub, s)
				for _, v := range members {
					if dist[v] > diam {
						diam = dist[v]
					}
				}
			}
			diams = append(diams, diam)
		}
		out[i] = diams
	}
	return out
}

func bfsWithin(g *graph.Graph, s uint32) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []uint32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
