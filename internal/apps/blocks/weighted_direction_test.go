package blocks

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// wfingerprint hashes the complete weighted block structure: per block the
// exact edge sequence, the cluster count, and the weighted component
// radius bits.
func wfingerprint(bd *WeightedDecomposition) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	put32(uint32(len(bd.Blocks)))
	for _, b := range bd.Blocks {
		put32(uint32(len(b.Edges)))
		put32(uint32(b.Clusters))
		put64(math.Float64bits(b.MaxComponentRadius))
		for _, e := range b.Edges {
			put32(e.U)
			put32(e.V)
		}
	}
	return h.Sum64()
}

func weightedDirectionGraphs() map[string]*graph.WeightedGraph {
	return map[string]*graph.WeightedGraph{
		"grid": graph.RandomWeights(graph.Grid2D(18, 22), 1, 4, 13),
		"gnm":  graph.RandomWeights(graph.GNM(500, 2000, 11), 0.5, 6, 7),
	}
}

// TestDecomposeWeightedPoolDirectionsBitIdentical: the weighted block
// structure must be bit-identical at workers 1/2/8 × push/pull/auto.
func TestDecomposeWeightedPoolDirectionsBitIdentical(t *testing.T) {
	dirs := []core.Direction{core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto}
	for name, wg := range weightedDirectionGraphs() {
		for _, seed := range []uint64{1, 42} {
			base, err := DecomposeWeightedPool(nil, wg, 0.5, seed, 0, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := wfingerprint(base)
			for _, dir := range dirs {
				for _, w := range []int{1, 2, 8} {
					bd, err := DecomposeWeightedPool(nil, wg, 0.5, seed, 0, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := wfingerprint(bd); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestDecomposeWeightedGolden pins one fixed weighted decomposition to a
// golden fingerprint. Update the constant only with an intentional,
// documented change to the weighted engine or partition.
func TestDecomposeWeightedGolden(t *testing.T) {
	const golden = uint64(0x0889c292b8140c9e)
	wg := graph.RandomWeights(graph.Grid2D(13, 17), 1, 3, 3)
	for _, w := range []int{1, 2, 8} {
		bd, err := DecomposeWeightedPool(nil, wg, 0.5, 5, 0, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		if got := wfingerprint(bd); got != golden {
			t.Fatalf("workers=%d: fingerprint %#x want %#x", w, got, golden)
		}
	}
}

// TestDecomposeWeightedCoversEdges checks the partition-of-edges contract:
// every original edge lands in exactly one block.
func TestDecomposeWeightedCoversEdges(t *testing.T) {
	wg := graph.RandomWeights(graph.GNM(400, 1500, 3), 1, 8, 9)
	bd, err := DecomposeWeightedPool(nil, wg, 0.5, 2, 0, 4, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	if bd.EdgeCount() != wg.NumEdges() {
		t.Fatalf("blocks cover %d edges, want %d", bd.EdgeCount(), wg.NumEdges())
	}
	seen := make(map[uint64]bool)
	for _, b := range bd.Blocks {
		if len(b.Edges) == 0 {
			t.Fatal("empty block emitted")
		}
		if b.Clusters <= 0 || b.MaxComponentRadius < 0 {
			t.Fatalf("block has clusters=%d radius=%g", b.Clusters, b.MaxComponentRadius)
		}
		for _, e := range b.Edges {
			a, c := e.U, e.V
			if a > c {
				a, c = c, a
			}
			key := uint64(a)<<32 | uint64(c)
			if seen[key] {
				t.Fatalf("edge {%d,%d} assigned to two blocks", e.U, e.V)
			}
			seen[key] = true
		}
	}
}
