package blocks

import (
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

func decompsEqual(t *testing.T, tag string, got, want *Decomposition) {
	t.Helper()
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%s: %d blocks, want %d", tag, len(got.Blocks), len(want.Blocks))
	}
	for i := range want.Blocks {
		gb, wb := &got.Blocks[i], &want.Blocks[i]
		if gb.MaxComponentRadius != wb.MaxComponentRadius || gb.Clusters != wb.Clusters {
			t.Fatalf("%s: block %d meta (%d,%d), want (%d,%d)", tag, i,
				gb.MaxComponentRadius, gb.Clusters, wb.MaxComponentRadius, wb.Clusters)
		}
		if len(gb.Edges) != len(wb.Edges) {
			t.Fatalf("%s: block %d has %d edges, want %d", tag, i, len(gb.Edges), len(wb.Edges))
		}
		for j := range wb.Edges {
			if gb.Edges[j] != wb.Edges[j] {
				t.Fatalf("%s: block %d edge %d differs", tag, i, j)
			}
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d stats, want %d", tag, len(got.Stats), len(want.Stats))
	}
	for l := range want.Stats {
		if got.Stats[l] != want.Stats[l] {
			t.Fatalf("%s: Stats[%d] = %+v, want %+v", tag, l, got.Stats[l], want.Stats[l])
		}
	}
}

// TestIncrementalMatchesRebuild drives random batches through
// Incremental.Update and requires the maintained block decomposition to be
// bit-identical to DecomposePool on the updated graph (same explicit
// iteration cap) at every step — including the edge-partition invariant.
func TestIncrementalMatchesRebuild(t *testing.T) {
	base := graph.Grid2D(16, 14)
	const beta, seed, maxIters = 0.5, 7, 80
	for _, w := range []int{1, 4} {
		inc, err := BuildIncrementalPool(nil, base, beta, seed, maxIters, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		fresh0, err := DecomposePool(nil, base, beta, seed, maxIters, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		decompsEqual(t, "initial", inc.Decomposition(), fresh0)

		cur := base
		for step := uint64(0); step < 4; step++ {
			var b graph.Batch
			n := uint64(cur.NumVertices())
			for i := 0; i < 6; i++ {
				b.Insert = append(b.Insert, graph.Edge{
					U: uint32(xrand.Mix(step, uint64(i)*2+1) % n),
					V: uint32(xrand.Mix(step, uint64(i)*2+2) % n),
				})
			}
			edges := cur.Edges()
			for i := 0; i < 5; i++ {
				b.Delete = append(b.Delete, edges[xrand.Mix(step, 0x1b+uint64(i))%uint64(len(edges))])
			}
			us, err := inc.Update(b)
			if err != nil {
				t.Fatalf("w=%d step %d: %v", w, step, err)
			}
			cur, _, err = graph.ApplyBatch(cur, b)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := DecomposePool(nil, cur, beta, seed, maxIters, w, core.DirectionAuto)
			if err != nil {
				t.Fatal(err)
			}
			decompsEqual(t, "updated", inc.Decomposition(), fresh)
			if got := inc.Decomposition().EdgeCount(); got != cur.NumEdges() {
				t.Fatalf("step %d: blocks cover %d edges, graph has %d", step, got, cur.NumEdges())
			}
			if us.Levels != inc.h.Levels() {
				t.Fatalf("step %d: stats levels %d, hierarchy has %d", step, us.Levels, inc.h.Levels())
			}
		}
	}
}

// TestIncrementalNoOp checks the splice fast path at the app layer.
func TestIncrementalNoOp(t *testing.T) {
	base := graph.Grid2D(12, 12)
	inc, err := BuildIncremental(base, 0.5, 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	before := len(inc.Decomposition().Blocks)
	us, err := inc.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if us.Reused != us.Levels || us.Refreshed+us.Rederived != 0 {
		t.Fatalf("no-op batch: %+v", us)
	}
	if len(inc.Decomposition().Blocks) != before {
		t.Fatal("no-op batch changed the block list")
	}
}
