package blocks

import (
	"context"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Incremental is a block decomposition maintained under batched edge
// updates: a persistent residual-mode hier.Hierarchy plus one retained
// Block per level (nil where the level contributed no intra edges). An
// Update recomputes blocks only for levels the hierarchy re-derived or
// refreshed; spliced levels keep their Block verbatim. The maintained
// Decomposition is bit-identical to DecomposePool on the updated graph
// with the same parameters (including the same explicit maxIters — pass it
// explicitly when comparing, since the 0 default is resolved against the
// graph handed to the initial build). Not safe for concurrent use.
type Incremental struct {
	h          *hier.Hierarchy
	dec        *Decomposition
	pool       *parallel.Pool
	workers    int
	centerSeen *parallel.Bitset
	// perLevel[l] is level l's block, nil when the level had no intra
	// edges; Blocks is rebuilt from it after every update.
	perLevel []*Block
}

// BuildIncremental constructs an updatable block decomposition on the
// shared default pool; see BuildIncrementalPool.
func BuildIncremental(g *graph.Graph, beta float64, seed uint64, maxIters int) (*Incremental, error) {
	return BuildIncrementalPool(nil, g, beta, seed, maxIters, 0, core.DirectionAuto)
}

// BuildIncrementalPool is DecomposePool retaining the hierarchy for
// incremental maintenance.
func BuildIncrementalPool(pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*Incremental, error) {
	return BuildIncrementalPoolCtx(nil, pool, g, beta, seed, maxIters, workers, dir)
}

// BuildIncrementalPoolCtx is BuildIncrementalPool with a cancellation
// context (nil means never cancelled) covering the initial build; per-call
// update deadlines go through UpdateCtx.
func BuildIncrementalPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*Incremental, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	if maxIters <= 0 {
		maxIters = 8
		for m := g.NumEdges(); m > 0; m >>= 1 {
			maxIters += 4
		}
	}
	inc := &Incremental{
		dec:        &Decomposition{G: g, Beta: beta},
		pool:       pool,
		workers:    workers,
		centerSeen: parallel.NewBitset(g.NumVertices()),
	}
	h, err := hier.BuildHierarchy(hier.Config{
		Ctx:       ctx,
		Beta:      beta,
		Seed:      seed,
		Workers:   workers,
		Pool:      pool,
		Direction: dir,
		MaxLevels: maxIters,
		Residual:  true,
		NeedIntra: true,
	}, g, inc.capture)
	if err == hier.ErrMaxLevels {
		return nil, core.ErrBeta // β left edges uncovered within the cap; defensive
	}
	if err != nil {
		return nil, err
	}
	inc.h = h
	inc.rebuildBlocks()
	return inc, nil
}

// Decomposition returns the maintained block decomposition. The pointer
// stays valid across updates; Update mutates it in place.
func (inc *Incremental) Decomposition() *Decomposition { return inc.dec }

// Update applies b to the underlying graph, re-deriving exactly the
// residual levels whose inputs changed and recomputing only their blocks.
// An error leaves the structure inconsistent; discard it.
func (inc *Incremental) Update(b graph.Batch) (hier.UpdateStats, error) {
	return inc.UpdateCtx(nil, b)
}

// UpdateCtx is Update with a per-call cancellation context (nil means
// never cancelled). A cancellation or contained panic before the
// hierarchy commits leaves the structure untouched and the batch safely
// retryable; an error after commit leaves it inconsistent — discard it.
func (inc *Incremental) UpdateCtx(ctx context.Context, b graph.Batch) (hier.UpdateStats, error) {
	us, err := inc.h.UpdateCtx(ctx, b, inc.capture)
	if err == hier.ErrMaxLevels {
		return us, core.ErrBeta
	}
	if err != nil {
		return us, err
	}
	if levels := inc.h.Levels(); len(inc.perLevel) > levels {
		inc.perLevel = inc.perLevel[:levels]
	}
	inc.rebuildBlocks()
	return us, nil
}

// capture recomputes one level's block — the visit callback for both the
// initial build and every update.
func (inc *Incremental) capture(lv *hier.Level) error {
	for len(inc.perLevel) <= lv.Index {
		inc.perLevel = append(inc.perLevel, nil)
	}
	if len(lv.IntraEdges) == 0 {
		inc.perLevel[lv.Index] = nil
		return nil
	}
	inc.perLevel[lv.Index] = &Block{
		Edges:              append([]graph.Edge(nil), lv.IntraEdges...),
		MaxComponentRadius: lv.D.MaxRadius(),
		Clusters:           distinctCenters(inc.pool, inc.workers, lv.IntraEdges, lv.D.Center, inc.centerSeen),
	}
	return nil
}

func (inc *Incremental) rebuildBlocks() {
	inc.dec.G = inc.h.Graph()
	inc.dec.Stats = inc.h.Result().Stats
	inc.dec.Blocks = inc.dec.Blocks[:0]
	for _, blk := range inc.perLevel {
		if blk != nil {
			inc.dec.Blocks = append(inc.dec.Blocks, *blk)
		}
	}
}
