package blocks

// Weighted block decomposition: the same Linial–Saks iteration on a
// weighted graph, riding the hierarchy engine's weighted residual mode.
// Each level runs the weighted partition with β = 1/2 (in units of inverse
// weighted distance, so pieces have weighted radius O(log n / β)), assigns
// intra-cluster edges to the current block, and recurses on the weighted
// residual graph (graph.CutWeightedSubgraphPool keeps original weights).
// Since the weighted partition cuts an edge of weight w with probability
// O(βw), the expected weight leaving each level is a constant fraction —
// the weighted analogue of the halving argument.

import (
	"context"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// WeightedBlock is one edge class of a weighted decomposition.
type WeightedBlock struct {
	// Edges are the original-graph edges assigned to this block.
	Edges []graph.Edge
	// MaxComponentRadius bounds the WEIGHTED radius of every connected
	// component of the block subgraph, measured from the cluster centers
	// of the weighted LDD that produced the block.
	MaxComponentRadius float64
	// Clusters is the number of LDD clusters that contributed edges.
	Clusters int
}

// WeightedDecomposition is a partition of a weighted graph's edge set into
// blocks.
type WeightedDecomposition struct {
	G      *graph.WeightedGraph
	Blocks []WeightedBlock
	Beta   float64
	// Stats summarizes each decomposition level, including the weighted
	// per-level fields.
	Stats []hier.LevelStat
}

// DecomposeWeighted computes a weighted block decomposition on the shared
// default pool; see DecomposeWeightedPool.
func DecomposeWeighted(wg *graph.WeightedGraph, beta float64, seed uint64, maxIters int) (*WeightedDecomposition, error) {
	return DecomposeWeightedPool(nil, wg, beta, seed, maxIters, 0, core.DirectionAuto)
}

// DecomposeWeightedPool is the weighted block decomposition on an explicit
// persistent worker pool (nil means parallel.Default()) with an explicit
// logical worker count and traversal direction. β is in units of inverse
// weighted distance: pass beta/wtypical to cluster at scale wtypical.
// maxIters caps the iteration count defensively; 0 means 4·log2(m)+8,
// and each iteration's β shrinks geometrically once the default cap is
// half exhausted, so heavy residual edges are always eventually absorbed.
// For a fixed (wg, beta, seed) the blocks are bit-identical at every
// worker count and direction.
func DecomposeWeightedPool(pool *parallel.Pool, wg *graph.WeightedGraph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*WeightedDecomposition, error) {
	return DecomposeWeightedPoolCtx(nil, pool, wg, beta, seed, maxIters, workers, dir)
}

// DecomposeWeightedPoolCtx is DecomposeWeightedPool with a cancellation
// context (nil means never cancelled), polled at level and Δ-stepping
// round boundaries; a cancelled run returns (nil, ctx.Err()) with no
// partial decomposition.
func DecomposeWeightedPoolCtx(ctx context.Context, pool *parallel.Pool, wg *graph.WeightedGraph, beta float64, seed uint64, maxIters, workers int, dir core.Direction) (*WeightedDecomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	bd := &WeightedDecomposition{G: wg, Beta: beta}
	if maxIters <= 0 {
		maxIters = 8
		for m := wg.NumEdges(); m > 0; m >>= 1 {
			maxIters += 4
		}
	}
	// A flat β can stall on weighted graphs (levels where every edge is
	// heavier than the shift scale cut everything forever). Past the
	// halfway point the schedule halves β per level, which grows the
	// cluster radius geometrically and forces the residual to drain.
	relax := maxIters / 2
	betaAt := func(level int, _ *graph.WeightedGraph) float64 {
		b := beta
		if level > relax {
			b = beta / float64(uint64(1)<<uint(min(level-relax, 60)))
		}
		if b < 1e-12 {
			b = 1e-12
		}
		return b
	}
	centerSeen := parallel.NewBitset(wg.NumVertices())
	res, err := hier.RunWeighted(hier.Config{
		Ctx:       ctx,
		WBetaAt:   betaAt,
		Seed:      seed,
		Workers:   workers,
		Pool:      pool,
		Direction: dir,
		MaxLevels: maxIters,
		Residual:  true,
		NeedIntra: true,
	}, wg, func(lv *hier.Level) error {
		if len(lv.IntraEdges) == 0 {
			return nil
		}
		blk := WeightedBlock{
			Edges:              append([]graph.Edge(nil), lv.IntraEdges...),
			MaxComponentRadius: lv.WD.MaxRadius(),
			Clusters:           distinctCenters(pool, workers, lv.IntraEdges, lv.WD.Center, centerSeen),
		}
		bd.Blocks = append(bd.Blocks, blk)
		return nil
	})
	if err == hier.ErrMaxLevels {
		return nil, core.ErrBeta // residual failed to drain within the cap; defensive
	}
	if err != nil {
		return nil, err
	}
	bd.Stats = res.Stats
	return bd, nil
}

// NumBlocks returns the number of non-empty blocks.
func (bd *WeightedDecomposition) NumBlocks() int { return len(bd.Blocks) }

// EdgeCount returns the total edges across blocks (must equal m).
func (bd *WeightedDecomposition) EdgeCount() int64 {
	var total int64
	for _, b := range bd.Blocks {
		total += int64(len(b.Edges))
	}
	return total
}
