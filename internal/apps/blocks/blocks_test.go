package blocks

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func TestDecomposePartitionsEdges(t *testing.T) {
	g := graph.Grid2D(20, 20)
	bd, err := Decompose(g, 0.5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.EdgeCount() != g.NumEdges() {
		t.Errorf("blocks hold %d edges, graph has %d", bd.EdgeCount(), g.NumEdges())
	}
	// Every edge in exactly one block.
	seen := make(map[graph.Edge]int)
	for _, b := range bd.Blocks {
		for _, e := range b.Edges {
			seen[e]++
		}
	}
	for e, c := range seen {
		if c != 1 {
			t.Errorf("edge %v appears %d times", e, c)
		}
	}
}

func TestDecomposeBlockCountLogarithmic(t *testing.T) {
	g := graph.Grid2D(40, 40)
	bd, err := Decompose(g, 0.5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4*math.Log2(float64(g.NumEdges())) + 8
	if float64(bd.NumBlocks()) > bound {
		t.Errorf("%d blocks exceeds %g", bd.NumBlocks(), bound)
	}
	if bd.NumBlocks() < 1 {
		t.Error("expected at least one block")
	}
}

func TestDecomposeComponentDiameters(t *testing.T) {
	g := graph.Grid2D(15, 15)
	bd, err := Decompose(g, 0.5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	diams := bd.ComponentDiameters()
	n := float64(g.NumVertices())
	bound := int32(12*math.Log(n)/0.5) + 2
	for bi, ds := range diams {
		for _, d := range ds {
			if d > bound {
				t.Errorf("block %d: component diameter %d exceeds %d", bi, d, bound)
			}
			// Component diameter is also at most twice the recorded radius.
			if d > 2*bd.Blocks[bi].MaxComponentRadius {
				t.Errorf("block %d: diameter %d exceeds 2x radius %d",
					bi, d, bd.Blocks[bi].MaxComponentRadius)
			}
		}
	}
}

func TestDecomposeGeometricEdgeDecay(t *testing.T) {
	// With beta = 1/2 the expected cut is half the edges; check the block
	// sizes decay overall (first block holds more than the average).
	g := graph.Torus2D(30, 30)
	bd, err := Decompose(g, 0.5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Blocks) < 2 {
		t.Skip("single block; nothing to compare")
	}
	first := len(bd.Blocks[0].Edges)
	avg := float64(bd.EdgeCount()) / float64(bd.NumBlocks())
	if float64(first) < avg {
		t.Errorf("first block %d below average %g — decay shape broken", first, avg)
	}
}

func TestDecomposeRejectsBadBeta(t *testing.T) {
	if _, err := Decompose(graph.Path(4), 0, 0, 0); err == nil {
		t.Error("expected error")
	}
}

func TestDecomposeEdgelessGraph(t *testing.T) {
	g, _ := graph.FromEdges(5, nil)
	bd, err := Decompose(g, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bd.NumBlocks() != 0 {
		t.Errorf("edgeless graph: %d blocks", bd.NumBlocks())
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	g := graph.GNM(150, 500, 9)
	a, err := Decompose(g, 0.5, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(g, 0.5, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", a.NumBlocks(), b.NumBlocks())
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Edges) != len(b.Blocks[i].Edges) {
			t.Fatalf("block %d sizes differ", i)
		}
	}
}
