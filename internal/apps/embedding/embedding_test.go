package embedding

import (
	"testing"

	"mpx/internal/graph"
)

func TestBuildBasicShape(t *testing.T) {
	g := graph.Grid2D(15, 15)
	tr, err := Build(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Levels < 3 {
		t.Errorf("expected several levels, got %d", tr.Levels)
	}
}

func TestDistProperties(t *testing.T) {
	g := graph.Grid2D(12, 12)
	tr, err := Build(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Identity, symmetry, positivity.
	if tr.Dist(5, 5) != 0 {
		t.Error("Dist(v,v) != 0")
	}
	for u := uint32(0); u < 12; u++ {
		for v := u + 1; v < 24; v += 3 {
			a, b := tr.Dist(u, v), tr.Dist(v, u)
			if a != b {
				t.Fatalf("asymmetric: Dist(%d,%d)=%g Dist(%d,%d)=%g", u, v, a, v, u, b)
			}
			if a <= 0 {
				t.Fatalf("non-positive distance for distinct vertices: %g", a)
			}
		}
	}
}

func TestTreeMetricUltrametricInequality(t *testing.T) {
	// Hierarchical trees give an ultrametric-like bound:
	// Dist(u,w) <= max(Dist(u,v), Dist(v,w)) for all triples, because
	// separation levels satisfy sep(u,w) >= min(sep(u,v), sep(v,w)).
	g := graph.GNM(60, 180, 3)
	tr, err := Build(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 20; u++ {
		for v := uint32(20); v < 40; v += 2 {
			for w := uint32(40); w < 60; w += 3 {
				duw := tr.Dist(u, w)
				duv, dvw := tr.Dist(u, v), tr.Dist(v, w)
				max := duv
				if dvw > max {
					max = dvw
				}
				if duw > max+1e-9 {
					t.Fatalf("ultrametric violated: d(%d,%d)=%g > max(%g,%g)", u, w, duw, duv, dvw)
				}
			}
		}
	}
}

func TestMeasureDistortionDominates(t *testing.T) {
	g := graph.Grid2D(20, 20)
	tr, err := Build(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.MeasureDistortion(100, 7)
	if st.Pairs != 100 {
		t.Fatalf("sampled %d pairs", st.Pairs)
	}
	if st.DominatedFrac < 0.99 {
		t.Errorf("tree metric dominates only %.2f of pairs", st.DominatedFrac)
	}
	if st.MeanDistortion < 1 {
		t.Errorf("mean distortion %g below 1", st.MeanDistortion)
	}
	// Polylog shape guard: distortion should not be anywhere near n.
	if st.MaxDistortion > 200 {
		t.Errorf("max distortion %g absurd for 400-vertex grid", st.MaxDistortion)
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty, _ := graph.FromEdges(0, nil)
	if _, err := Build(empty, 0, 0); err != nil {
		t.Fatal(err)
	}
	single, _ := graph.FromEdges(1, nil)
	tr, err := Build(single, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := tr.MeasureDistortion(10, 1); st.Pairs != 0 {
		t.Error("no pairs to sample on a single vertex")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := graph.Torus2D(10, 10)
	a, err := Build(g, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 100; u += 7 {
		for v := uint32(1); v < 100; v += 11 {
			if a.Dist(u, v) != b.Dist(u, v) {
				t.Fatalf("nondeterministic embedding at (%d,%d)", u, v)
			}
		}
	}
}
