package embedding

import (
	"context"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// Incremental is a tree-metric embedding maintained under batched edge
// updates. Unlike the contraction hierarchies, every embedding level
// partitions the SAME base graph (at a halving diameter target), so the
// damage model is per-level independent: a level re-partitions only when
// core's O(batch) fixpoint check rejects the batch, and re-refines its
// piece assignment only when its own partition or the parent level's
// assignment moved. The maintained Tree is bit-identical to BuildPool on
// the updated graph with the same parameters — with diam0 pinned at build
// time: the initial diameter target is resolved once (the 0 default reads
// the pseudo-diameter of the ORIGINAL graph) and kept across updates, so
// compare against BuildPool with that explicit diam0. Not safe for
// concurrent use.
type Incremental struct {
	t       *Tree
	parts   []levelPartition
	pool    *parallel.Pool
	workers int
	dir     core.Direction
	seed    uint64
	scratch *hier.RefineScratch
}

// UpdateStats reports how much of the embedding an Update reused.
type UpdateStats struct {
	// Levels is the number of partition levels (the leaf level excluded).
	Levels int
	// Repartitioned counts levels whose Partition was re-run.
	Repartitioned int
	// Refined counts levels whose partition was verified unchanged but
	// whose piece refinement re-ran because the parent assignment moved.
	Refined int
	// Reused counts levels that skipped both.
	Reused int
}

// BuildIncremental constructs an updatable embedding on the shared default
// pool; see BuildIncrementalPool.
func BuildIncremental(g *graph.Graph, diam0 float64, seed uint64) (*Incremental, error) {
	return BuildIncrementalPool(nil, g, diam0, seed, 0, core.DirectionAuto)
}

// BuildIncrementalPool is BuildPool retaining the per-level decompositions
// for incremental maintenance.
func BuildIncrementalPool(pool *parallel.Pool, g *graph.Graph, diam0 float64, seed uint64, workers int, dir core.Direction) (*Incremental, error) {
	return BuildIncrementalPoolCtx(nil, pool, g, diam0, seed, workers, dir)
}

// BuildIncrementalPoolCtx is BuildIncrementalPool with a cancellation
// context (nil means never cancelled) covering the initial build; per-call
// update deadlines go through UpdateCtx.
func BuildIncrementalPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, diam0 float64, seed uint64, workers int, dir core.Direction) (*Incremental, error) {
	diam0 = resolveDiam0(g, diam0)
	t, parts, err := buildTree(ctx, pool, g, diam0, seed, workers, dir, true)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		t:       t,
		parts:   parts,
		pool:    pool,
		workers: workers,
		dir:     dir,
		seed:    seed,
		scratch: &hier.RefineScratch{},
	}, nil
}

// Tree returns the maintained embedding. The pointer stays valid across
// updates; Update mutates it in place.
func (inc *Incremental) Tree() *Tree { return inc.t }

// Update applies b to the base graph and refreshes the embedding level by
// level: each level re-partitions only if the batch broke its fixpoint,
// re-refines only if its inputs moved (refinement stops propagating as
// soon as a recomputed assignment comes out unchanged), and always
// refreshes its M-dependent stats. An error leaves the structure
// inconsistent; discard it.
func (inc *Incremental) Update(b graph.Batch) (UpdateStats, error) {
	return inc.UpdateCtx(nil, b)
}

// UpdateCtx is Update with a per-call cancellation context (nil means
// never cancelled), polled at every level boundary and inside each
// re-partition. Unlike the contraction hierarchies, the embedding refreshes
// its levels in place, so a cancellation that strikes after the first level
// committed leaves the structure inconsistent exactly like any other
// Update error — discard it.
func (inc *Incremental) UpdateCtx(ctx context.Context, b graph.Batch) (UpdateStats, error) {
	t := inc.t
	newG, ar, err := graph.ApplyBatch(t.G, b)
	if err != nil {
		return UpdateStats{}, err
	}
	us := UpdateStats{Levels: len(inc.parts)}
	if ar.Unchanged() {
		us.Reused = len(inc.parts)
		return us, nil
	}
	n := newG.NumVertices()
	ins, del := ar.Inserted, ar.Deleted
	assignChanged := false
	for l := range inc.parts {
		if err := ctxErr(ctx); err != nil {
			return us, err
		}
		lp := &inc.parts[l]
		verified := lp.d.UnchangedUnder(ins, del)
		if verified {
			lp.d.G = newG
		} else {
			d, err := core.Partition(newG, lp.beta, core.Options{
				Ctx:       ctx,
				Seed:      xrand.Mix(inc.seed, uint64(l)),
				Workers:   inc.workers,
				Pool:      inc.pool,
				Direction: inc.dir,
			})
			if err != nil {
				return us, err
			}
			lp.d = d
			us.Repartitioned++
		}
		if !verified || assignChanged {
			assign := make([]uint32, n)
			if l == 0 {
				inc.pool.ForRange(inc.workers, n, func(lo, hi int) {
					copy(assign[lo:hi], lp.d.Center[lo:hi])
				})
			} else {
				hier.RefineAssignment(inc.pool, inc.workers, t.assignment[l-1], lp.d.Center, assign, inc.scratch)
			}
			if uint32sEqual(assign, t.assignment[l]) {
				assignChanged = false // converged; stop propagating
			} else {
				t.assignment[l] = assign
				assignChanged = true
			}
			if verified {
				us.Refined++
			}
		} else {
			us.Reused++
		}
		// Stats depend on the edge set, so they always refresh.
		st := &t.Stats[l]
		st.M = newG.NumEdges()
		st.Clusters = lp.d.NumClusters()
		st.CutEdges = hier.CutEdgesOnPool(inc.pool, inc.workers, newG, lp.d.Center)
		st.CutFraction = 0
		if st.M > 0 {
			st.CutFraction = float64(st.CutEdges) / float64(st.M)
		}
	}
	t.G = newG
	return us, nil
}

func uint32sEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
