package embedding

// Weighted tree-metric embeddings: the Bartal/FRT-style recursive
// decomposition on weighted graphs. Level i decomposes the whole graph
// with a WEIGHTED diameter target Δ/2^i (β = Θ(log n / target), in units
// of inverse weighted distance, driving core.PartitionWeightedParallel),
// refines against the previous level with the same sort-based
// hier.RefineAssignment kernel, and the decomposition tree with edge
// length proportional to the level target is a dominating tree metric for
// the weighted shortest-path metric.

import (
	"context"
	"math"

	"mpx/internal/bfs"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// WeightedTree is a hierarchical decomposition tree over the vertices of a
// weighted graph.
type WeightedTree struct {
	// G is the embedded weighted graph.
	G *graph.WeightedGraph
	// Levels is the depth of the hierarchy.
	Levels int
	// Stats summarizes each decomposition level, including the weighted
	// per-level fields.
	Stats []hier.LevelStat
	// assignment[l][v] is the piece id containing v at level l; level 0 is
	// the coarsest.
	assignment [][]uint32
	// length[l] is the tree edge length between level l and l+1 nodes.
	length []float64
}

// BuildWeighted constructs the weighted hierarchy on the shared default
// pool; see BuildWeightedPool.
func BuildWeighted(wg *graph.WeightedGraph, diam0 float64, seed uint64) (*WeightedTree, error) {
	return BuildWeightedPool(nil, wg, diam0, seed, 0, core.DirectionAuto)
}

// BuildWeightedPool constructs the weighted hierarchy with initial
// weighted diameter target diam0 (pass 0 to use the hop pseudo-diameter
// times the maximum edge weight, a cheap upper bound) halving per level
// until it drops under the lightest edge weight, on an explicit persistent
// worker pool (nil means parallel.Default()). For a fixed (wg, diam0,
// seed) the embedding is bit-identical at every worker count and
// direction.
func BuildWeightedPool(pool *parallel.Pool, wg *graph.WeightedGraph, diam0 float64, seed uint64, workers int, dir core.Direction) (*WeightedTree, error) {
	return BuildWeightedPoolCtx(nil, pool, wg, diam0, seed, workers, dir)
}

// BuildWeightedPoolCtx is BuildWeightedPool with a cancellation context
// (nil means never cancelled), polled at every level and Δ-stepping round
// boundary; a cancelled build returns (nil, ctx.Err()) with no partial
// tree.
func BuildWeightedPoolCtx(ctx context.Context, pool *parallel.Pool, wg *graph.WeightedGraph, diam0 float64, seed uint64, workers int, dir core.Direction) (*WeightedTree, error) {
	n := wg.NumVertices()
	t := &WeightedTree{G: wg}
	if n == 0 {
		return t, nil
	}
	wmin, wmax := hier.WeightRangeOnPool(pool, workers, wg)
	if math.IsInf(wmin, 1) { // edgeless: a single leaf level
		wmin, wmax = 1, 1
	}
	if diam0 <= 0 {
		diam0 = float64(bfs.PseudoDiameter(wg.Unweighted(), 0)) * wmax
		if diam0 < wmin {
			diam0 = wmin
		}
	}
	logn := math.Log(float64(n) + 1)
	totalW := hier.TotalWeightOnPool(pool, workers, wg) // the graph is fixed across levels

	refineScratch := &hier.RefineScratch{}
	target := diam0
	level := 0
	for target >= wmin {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		beta := math.Min(0.9, 2*logn/target)
		d, err := core.PartitionWeightedParallel(wg, beta, 1/beta, core.Options{
			Ctx:       ctx,
			Seed:      xrand.Mix(seed, uint64(level)),
			Workers:   workers,
			Pool:      pool,
			Direction: dir,
		})
		if err != nil {
			return nil, err
		}
		assign := make([]uint32, n)
		if level == 0 {
			pool.ForRange(workers, n, func(lo, hi int) {
				copy(assign[lo:hi], d.Center[lo:hi])
			})
		} else {
			hier.RefineAssignment(pool, workers, t.assignment[level-1], d.Center, assign, refineScratch)
		}
		cut := hier.CutEdgesOnPool(pool, workers, wg.Unweighted(), d.Center)
		st := hier.LevelStat{
			Level: level, N: n, M: wg.NumEdges(),
			Clusters: d.NumClusters(), CutEdges: cut, QuotientN: n,
			Weighted:    true,
			TotalWeight: totalW,
			CutWeight:   hier.CutWeightOnPool(pool, workers, wg, d.Center),
			Rounds:      d.Rounds,
		}
		st.WMaxRadius, _ = pool.MaxFloat64(workers, n, func(i int) float64 { return d.Dist[i] })
		if st.M > 0 {
			st.CutFraction = float64(cut) / float64(st.M)
		}
		if totalW > 0 {
			st.CutWeightFraction = st.CutWeight / totalW
		}
		t.Stats = append(t.Stats, st)
		t.assignment = append(t.assignment, assign)
		t.length = append(t.length, target)
		level++
		target /= 2
		if level > 80 {
			break
		}
	}
	// Final level: every vertex its own leaf. The last Partition level's
	// pieces still have weighted radius up to ~ln n / 0.9 · (scale wmin),
	// so the leaf edge carries length (ln n + 1)·wmin to keep the tree
	// metric dominating for pairs that only separate here.
	leaf := make([]uint32, n)
	for v := range leaf {
		leaf[v] = uint32(v)
	}
	t.assignment = append(t.assignment, leaf)
	t.length = append(t.length, (logn+1)*wmin)
	t.Levels = len(t.assignment)
	return t, nil
}

// Dist returns the tree-metric distance between u and v: twice the sum of
// level lengths below their lowest common level of agreement.
func (t *WeightedTree) Dist(u, v uint32) float64 {
	if u == v {
		return 0
	}
	sep := -1
	for l := 0; l < t.Levels; l++ {
		if t.assignment[l][u] != t.assignment[l][v] {
			sep = l
			break
		}
	}
	if sep == -1 {
		return 0
	}
	var sum float64
	for l := sep; l < t.Levels; l++ {
		sum += t.length[l]
	}
	return 2 * sum
}

// MeasureDistortion samples vertex pairs within one component and compares
// tree distance to the true weighted shortest-path distance
// (bfs.DijkstraWeighted per sampled source; measurement only). The sample
// budget is bounded by attempts, so sparse or disconnected graphs — where
// most sampled pairs are unreachable — return however many pairs were
// found instead of spinning.
func (t *WeightedTree) MeasureDistortion(pairs int, seed uint64) DistortionStats {
	n := t.G.NumVertices()
	if n < 2 || pairs <= 0 {
		return DistortionStats{}
	}
	rng := xrand.NewSplitMix64(seed)
	var st DistortionStats
	var sum float64
	dominated := 0
	for attempts := 0; st.Pairs < pairs && attempts < 4*pairs; attempts += 8 {
		u := uint32(rng.Intn(n))
		dist := bfs.DijkstraWeighted(t.G, u)
		for k := 0; k < 8 && st.Pairs < pairs; k++ {
			v := uint32(rng.Intn(n))
			if v == u || math.IsInf(dist[v], 1) {
				continue
			}
			dg := dist[v]
			dt := t.Dist(u, v)
			distortion := dt / dg
			sum += distortion
			if distortion > st.MaxDistortion {
				st.MaxDistortion = distortion
			}
			if dt >= dg*(1-1e-9) {
				dominated++
			}
			st.Pairs++
		}
	}
	if st.Pairs == 0 {
		return st
	}
	st.MeanDistortion = sum / float64(st.Pairs)
	st.DominatedFrac = float64(dominated) / float64(st.Pairs)
	return st
}
