package embedding

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// wfingerprint hashes the complete weighted embedding: every level's full
// assignment and the IEEE bits of every level length.
func wfingerprint(t *WeightedTree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	put32(uint32(t.Levels))
	for l, assign := range t.assignment {
		put64(math.Float64bits(t.length[l]))
		for _, a := range assign {
			put32(a)
		}
	}
	return h.Sum64()
}

func weightedDirectionGraphs() map[string]*graph.WeightedGraph {
	return map[string]*graph.WeightedGraph{
		"grid": graph.RandomWeights(graph.Grid2D(15, 18), 1, 4, 13),
		"gnm":  graph.RandomWeights(graph.GNM(400, 1600, 11), 0.5, 6, 7),
	}
}

// TestBuildWeightedPoolDirectionsBitIdentical: the weighted embedding must
// be bit-identical at workers 1/2/8 × push/pull/auto.
func TestBuildWeightedPoolDirectionsBitIdentical(t *testing.T) {
	dirs := []core.Direction{core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto}
	for name, wg := range weightedDirectionGraphs() {
		for _, seed := range []uint64{1, 42} {
			base, err := BuildWeightedPool(nil, wg, 0, seed, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := wfingerprint(base)
			for _, dir := range dirs {
				for _, w := range []int{1, 2, 8} {
					tr, err := BuildWeightedPool(nil, wg, 0, seed, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := wfingerprint(tr); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestBuildWeightedGolden pins one fixed weighted embedding to a golden
// fingerprint. Update the constant only with an intentional, documented
// change to the weighted partition or refinement.
func TestBuildWeightedGolden(t *testing.T) {
	const golden = uint64(0xa12329a3fbbfe948)
	wg := graph.RandomWeights(graph.Grid2D(12, 13), 1, 3, 3)
	for _, w := range []int{1, 2, 8} {
		tr, err := BuildWeightedPool(nil, wg, 0, 5, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		if got := wfingerprint(tr); got != golden {
			t.Fatalf("workers=%d: fingerprint %#x want %#x", w, got, golden)
		}
	}
}

// TestBuildWeightedDominates checks the tree-metric contract on the
// weighted shortest-path metric: sampled tree distances dominate true
// weighted distances, and refinement is monotone (pieces only split).
func TestBuildWeightedDominates(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(14, 14), 1, 5, 9)
	tr, err := BuildWeightedPool(nil, wg, 0, 4, 4, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.MeasureDistortion(300, 17)
	if st.Pairs == 0 {
		t.Fatal("no pairs sampled")
	}
	if st.DominatedFrac < 1 {
		t.Fatalf("tree metric dominates only %.3f of sampled pairs", st.DominatedFrac)
	}
	if math.IsNaN(st.MeanDistortion) || st.MeanDistortion < 1-1e-9 {
		t.Fatalf("mean distortion %g out of range", st.MeanDistortion)
	}
	// Monotone refinement: same piece at level l+1 implies same piece at l.
	for l := 1; l < tr.Levels; l++ {
		prev, cur := tr.assignment[l-1], tr.assignment[l]
		rep := make(map[uint32]uint32)
		for v := range cur {
			if r, ok := rep[cur[v]]; ok {
				if prev[r] != prev[v] {
					t.Fatalf("level %d: piece %d spans two level-%d pieces", l, cur[v], l-1)
				}
			} else {
				rep[cur[v]] = uint32(v)
			}
		}
	}
}
