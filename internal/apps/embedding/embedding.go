// Package embedding builds hierarchical tree-metric embeddings of
// unweighted graphs by recursive low-diameter decomposition — the Bartal /
// FRT style application the paper's Section 2 relates its partition scheme
// to ("similar approaches have been used ... for the Bartal trees"; the
// random permutation view "is perhaps closer to the use of random
// permutations in the optimal tree-metric embedding algorithm [16]").
//
// Level i decomposes every current piece with a diameter target Δ/2^i
// (choosing β = Θ(log n / target)); the decomposition tree with edge length
// proportional to the level target is a dominating tree metric whose
// expected distortion the E16 experiment measures. With strong-diameter
// pieces from Partition the construction stays nearly-linear work — the
// property the paper emphasizes against quadratic weak-diameter schemes.
package embedding

import (
	"context"
	"math"

	"mpx/internal/bfs"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// Tree is a hierarchical decomposition tree over the vertices of a graph.
type Tree struct {
	// G is the embedded graph.
	G *graph.Graph
	// Levels is the depth of the hierarchy.
	Levels int
	// Stats summarizes each decomposition level (sizes, clusters, cut).
	Stats []hier.LevelStat
	// parent[l][v] is the piece id (center, in level-l numbering of the
	// original ids) containing v at level l; level 0 is the coarsest.
	assignment [][]uint32
	// length[l] is the tree edge length between level l and l+1 nodes.
	length []float64
}

// Build constructs the hierarchy with initial diameter target diam0 (pass
// 0 to use the graph's pseudo-diameter) halving per level, on the shared
// default pool.
func Build(g *graph.Graph, diam0 float64, seed uint64) (*Tree, error) {
	return BuildPool(nil, g, diam0, seed, 0, core.DirectionAuto)
}

// BuildPool is Build on an explicit persistent worker pool (nil means
// parallel.Default()) with an explicit logical worker count and traversal
// direction: every level's Partition runs on the pool, and the per-level
// piece refinement is the hier.RefineAssignment sort-based kernel instead
// of a composite-key map. For a fixed (g, diam0, seed) the embedding is
// bit-identical at every worker count and direction.
func BuildPool(pool *parallel.Pool, g *graph.Graph, diam0 float64, seed uint64, workers int, dir core.Direction) (*Tree, error) {
	t, _, err := buildTree(nil, pool, g, diam0, seed, workers, dir, false)
	return t, err
}

// BuildPoolCtx is BuildPool with a cancellation context (nil means never
// cancelled), polled at every level and partition-round boundary; a
// cancelled build returns (nil, ctx.Err()) with no partial tree.
func BuildPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, diam0 float64, seed uint64, workers int, dir core.Direction) (*Tree, error) {
	t, _, err := buildTree(ctx, pool, g, diam0, seed, workers, dir, false)
	return t, err
}

// ctxErr polls ctx at a level boundary; a nil ctx is never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// levelPartition is what the incremental embedding retains per partition
// level: the decomposition (whose shift plan powers the O(batch) fixpoint
// check) and the β the level was built with.
type levelPartition struct {
	d    *core.Decomposition
	beta float64
}

// resolveDiam0 applies Build's diameter default: the graph's
// pseudo-diameter, floored at 1.
func resolveDiam0(g *graph.Graph, diam0 float64) float64 {
	if diam0 <= 0 {
		diam0 = float64(bfs.PseudoDiameter(g, 0))
		if diam0 < 1 {
			diam0 = 1
		}
	}
	return diam0
}

// buildTree is the shared level loop behind BuildPool and
// BuildIncrementalPool; retain additionally returns the per-level
// decompositions for incremental maintenance.
func buildTree(ctx context.Context, pool *parallel.Pool, g *graph.Graph, diam0 float64, seed uint64, workers int, dir core.Direction, retain bool) (*Tree, []levelPartition, error) {
	n := g.NumVertices()
	t := &Tree{G: g}
	if n == 0 {
		return t, nil, nil
	}
	diam0 = resolveDiam0(g, diam0)
	logn := math.Log(float64(n) + 1)

	// current[v] = piece id of v at the previous level; coarsest level is a
	// single pseudo-piece per connected component, realized by decomposing
	// the whole graph with the full diameter target.
	var parts []levelPartition
	refineScratch := &hier.RefineScratch{}
	target := diam0
	level := 0
	for target >= 1 {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		beta := math.Min(0.9, 2*logn/target)
		d, err := core.Partition(g, beta, core.Options{
			Ctx:       ctx,
			Seed:      xrand.Mix(seed, uint64(level)),
			Workers:   workers,
			Pool:      pool,
			Direction: dir,
		})
		if err != nil {
			return nil, nil, err
		}
		// Refine against the previous level: a piece may not span two
		// parent pieces, so the effective piece id is the composite key
		// (parent piece, new center) canonicalized to its smallest member
		// vertex so ids stay stable.
		assign := make([]uint32, n)
		if level == 0 {
			pool.ForRange(workers, n, func(lo, hi int) {
				copy(assign[lo:hi], d.Center[lo:hi])
			})
		} else {
			hier.RefineAssignment(pool, workers, t.assignment[level-1], d.Center, assign, refineScratch)
		}
		cut := hier.CutEdgesOnPool(pool, workers, g, d.Center)
		st := hier.LevelStat{
			Level: level, N: n, M: g.NumEdges(),
			Clusters: d.NumClusters(), CutEdges: cut, QuotientN: n,
		}
		if st.M > 0 {
			st.CutFraction = float64(cut) / float64(st.M)
		}
		t.Stats = append(t.Stats, st)
		t.assignment = append(t.assignment, assign)
		t.length = append(t.length, target)
		if retain {
			parts = append(parts, levelPartition{d: d, beta: beta})
		}
		level++
		target /= 2
		if level > 60 {
			break
		}
	}
	// Final level: every vertex its own leaf. Pieces at the last Partition
	// level still have radius up to ~δ_max(β=0.9) ≈ ln n, so the leaf edge
	// carries length ln(n)+1 to keep the tree metric dominating for pairs
	// that only separate here (the O(log n) bottom term every tree
	// embedding of an unweighted graph pays).
	leaf := make([]uint32, n)
	for v := range leaf {
		leaf[v] = uint32(v)
	}
	t.assignment = append(t.assignment, leaf)
	t.length = append(t.length, logn+1)
	t.Levels = len(t.assignment)
	return t, parts, nil
}

// Dist returns the tree-metric distance between u and v: twice the sum of
// level lengths below their lowest common level of agreement.
func (t *Tree) Dist(u, v uint32) float64 {
	if u == v {
		return 0
	}
	// Find the first level where they separate.
	sep := -1
	for l := 0; l < t.Levels; l++ {
		if t.assignment[l][u] != t.assignment[l][v] {
			sep = l
			break
		}
	}
	if sep == -1 {
		return 0
	}
	var sum float64
	for l := sep; l < t.Levels; l++ {
		sum += t.length[l]
	}
	return 2 * sum
}

// DistortionStats summarizes measured distortion over sampled vertex pairs.
type DistortionStats struct {
	Pairs          int
	MeanDistortion float64
	MaxDistortion  float64
	// DominatedFrac is the fraction of sampled pairs with
	// dist_T >= dist_G (tree metrics must dominate; measured to verify).
	DominatedFrac float64
}

// MeasureDistortion samples vertex pairs within one component and compares
// tree distance to true graph distance. The sample budget is bounded by
// attempts, so sparse or disconnected graphs — where most sampled pairs
// are unreachable — return however many pairs were found instead of
// spinning (an edgeless graph used to hang here).
func (t *Tree) MeasureDistortion(pairs int, seed uint64) DistortionStats {
	n := t.G.NumVertices()
	if n < 2 || pairs <= 0 {
		return DistortionStats{}
	}
	rng := xrand.NewSplitMix64(seed)
	var st DistortionStats
	var sum float64
	dominated := 0
	for attempts := 0; st.Pairs < pairs && attempts < 4*pairs; attempts += 8 {
		u := uint32(rng.Intn(n))
		dist := bfs.Sequential(t.G, u)
		// Sample a handful of targets per BFS to amortize its cost.
		for k := 0; k < 8 && st.Pairs < pairs; k++ {
			v := uint32(rng.Intn(n))
			if v == u || dist[v] == bfs.Unreached {
				continue
			}
			dg := float64(dist[v])
			dt := t.Dist(u, v)
			distortion := dt / dg
			sum += distortion
			if distortion > st.MaxDistortion {
				st.MaxDistortion = distortion
			}
			if dt >= dg-1e-9 {
				dominated++
			}
			st.Pairs++
		}
	}
	if st.Pairs == 0 {
		return st
	}
	st.MeanDistortion = sum / float64(st.Pairs)
	st.DominatedFrac = float64(dominated) / float64(st.Pairs)
	return st
}
