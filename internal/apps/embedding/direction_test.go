package embedding

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// fingerprint hashes the full hierarchy: every level's assignment array
// and edge length.
func fingerprint(t *Tree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	put32(uint32(t.Levels))
	for l, assign := range t.assignment {
		put64(math.Float64bits(t.length[l]))
		for _, a := range assign {
			put32(a)
		}
	}
	return h.Sum64()
}

var allDirections = []core.Direction{
	core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto,
}

// TestBuildPoolDirectionsBitIdentical: the hierarchical embedding must be
// bit-identical at workers 1/2/8 and under push/pull/auto — Partition is,
// and the sort-based RefineAssignment kernel is deterministic.
func TestBuildPoolDirectionsBitIdentical(t *testing.T) {
	gs := map[string]*graph.Graph{
		"grid": graph.Grid2D(15, 18),
		"gnm":  graph.GNM(400, 1600, 13),
	}
	for name, g := range gs {
		for _, seed := range []uint64{1, 42} {
			base, err := BuildPool(nil, g, 0, seed, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					tr, err := BuildPool(nil, g, 0, seed, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(tr); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestBuildGolden pins one fixed embedding to a golden fingerprint across
// directions and worker counts.
func TestBuildGolden(t *testing.T) {
	const golden = uint64(0x3026ae0c7e15c16c)
	g := graph.Grid2D(12, 14)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			tr, err := BuildPool(nil, g, 0, 5, w, dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(tr); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}
