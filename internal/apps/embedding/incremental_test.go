package embedding

import (
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

func embeddingsEqual(t *testing.T, tag string, got, want *Tree) {
	t.Helper()
	if got.Levels != want.Levels {
		t.Fatalf("%s: Levels = %d, want %d", tag, got.Levels, want.Levels)
	}
	for l := range want.assignment {
		for v := range want.assignment[l] {
			if got.assignment[l][v] != want.assignment[l][v] {
				t.Fatalf("%s: assignment[%d][%d] = %d, want %d", tag, l, v,
					got.assignment[l][v], want.assignment[l][v])
			}
		}
	}
	for l := range want.length {
		if math.Float64bits(got.length[l]) != math.Float64bits(want.length[l]) {
			t.Fatalf("%s: length[%d] differs", tag, l)
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d stats, want %d", tag, len(got.Stats), len(want.Stats))
	}
	for l := range want.Stats {
		if got.Stats[l] != want.Stats[l] {
			t.Fatalf("%s: Stats[%d] = %+v, want %+v", tag, l, got.Stats[l], want.Stats[l])
		}
	}
}

// TestIncrementalMatchesRebuild drives random batches through
// Incremental.Update and requires the maintained embedding to be
// bit-identical to BuildPool on the updated graph with the same pinned
// diam0.
func TestIncrementalMatchesRebuild(t *testing.T) {
	base := graph.Grid2D(15, 13)
	const diam0, seed = 28.0, 11
	for _, w := range []int{1, 4} {
		inc, err := BuildIncrementalPool(nil, base, diam0, seed, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		fresh0, err := BuildPool(nil, base, diam0, seed, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		embeddingsEqual(t, "initial", inc.Tree(), fresh0)

		cur := base
		for step := uint64(0); step < 4; step++ {
			var b graph.Batch
			n := uint64(cur.NumVertices())
			for i := 0; i < 6; i++ {
				b.Insert = append(b.Insert, graph.Edge{
					U: uint32(xrand.Mix(step, uint64(i)*2+1) % n),
					V: uint32(xrand.Mix(step, uint64(i)*2+2) % n),
				})
			}
			edges := cur.Edges()
			for i := 0; i < 4; i++ {
				b.Delete = append(b.Delete, edges[xrand.Mix(step, 0xe4b+uint64(i))%uint64(len(edges))])
			}
			us, err := inc.Update(b)
			if err != nil {
				t.Fatalf("w=%d step %d: %v", w, step, err)
			}
			if us.Repartitioned+us.Refined+us.Reused != us.Levels {
				t.Fatalf("step %d: inconsistent stats %+v", step, us)
			}
			cur, _, err = graph.ApplyBatch(cur, b)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := BuildPool(nil, cur, diam0, seed, w, core.DirectionAuto)
			if err != nil {
				t.Fatal(err)
			}
			embeddingsEqual(t, "updated", inc.Tree(), fresh)

			// The tree metric itself must agree on sampled pairs.
			gs := inc.Tree().MeasureDistortion(64, 5)
			ws := fresh.MeasureDistortion(64, 5)
			if gs != ws {
				t.Fatalf("step %d: distortion %+v, want %+v", step, gs, ws)
			}
		}
	}
}

// TestIncrementalNoOp checks the reuse fast path: a batch with no
// effective change reuses every level; deleting an edge that no level's
// fixpoint depends on re-partitions nothing (levels may still re-refine or
// merely refresh stats).
func TestIncrementalNoOp(t *testing.T) {
	base := graph.Grid2D(20, 19)
	inc, err := BuildIncrementalPool(nil, base, 24, 2, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	us, err := inc.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if us.Reused != us.Levels || us.Repartitioned+us.Refined != 0 {
		t.Fatalf("no-op batch: %+v", us)
	}

	// Find an edge that is a non-tree intra edge for EVERY level's
	// decomposition: deleting it must not re-partition any level.
	var target *graph.Edge
	for _, e := range inc.Tree().G.Edges() {
		safe := true
		for _, lp := range inc.parts {
			d := lp.d
			if d.Center[e.U] != d.Center[e.V] || d.Parent[e.U] == e.V || d.Parent[e.V] == e.U {
				safe = false
				break
			}
		}
		if safe {
			e := e
			target = &e
			break
		}
	}
	if target == nil {
		t.Skip("no universally safe edge on this instance")
	}
	us, err = inc.Update(graph.Batch{Delete: []graph.Edge{*target}})
	if err != nil {
		t.Fatal(err)
	}
	if us.Repartitioned != 0 {
		t.Fatalf("universally safe delete re-partitioned: %+v", us)
	}
}
