package solver

import (
	"context"
	"errors"
	"testing"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/graph"
	"mpx/internal/parallel/faultpool"
	"mpx/internal/xrand"
)

func buildWeightedFixture(t *testing.T) (*WeightedLaplacian, *WeightedTreeSolver, []float64) {
	t.Helper()
	g := graph.Grid2D(20, 20)
	wg := graph.RandomWeights(g, 1, 4, 3)
	tr, err := lowstretch.BuildWeighted(wg, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewWeightedTreeSolver(wg.NumVertices(), tr.Edges)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.NewSplitMix64(9)
	b := make([]float64, wg.NumVertices())
	for i := range b {
		b[i] = rng.Float64() - 0.5
	}
	return NewWeightedLaplacian(wg), ts, b
}

// TestSolverBitIdenticalToOneShot pins the reusable Solver to the one-shot
// functions: same x vector bit for bit, same Result, on first use and
// after many reuses with different right-hand sides.
func TestSolverBitIdenticalToOneShot(t *testing.T) {
	l, ts, b := buildWeightedFixture(t)
	s := NewWeightedSolver(l, ts, 1e-8, 400)
	rng := xrand.NewSplitMix64(77)
	for iter := 0; iter < 5; iter++ {
		want, wres := WeightedPCG(l, ts, b, 1e-8, 400)
		got, gres := s.Solve(b)
		if gres != wres {
			t.Fatalf("iter %d: Result %+v != one-shot %+v", iter, gres, wres)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: x[%d]=%v != one-shot %v", iter, i, got[i], want[i])
			}
		}
		// New rhs for the next round so reuse actually exercises dirty
		// scratch.
		for i := range b {
			b[i] = rng.Float64() - 0.5
		}
	}

	// Plain-CG arm (nil preconditioner) on the unweighted operator.
	g := graph.Grid2D(15, 15)
	ul := NewLaplacian(g)
	ub := make([]float64, ul.Dim())
	for i := range ub {
		ub[i] = rng.Float64() - 0.5
	}
	us := NewSolver(ul, nil, 1e-8, 300)
	want, wres := CG(ul, ub, 1e-8, 300)
	got, gres := us.Solve(ub)
	if gres != wres {
		t.Fatalf("CG Result %+v != one-shot %+v", gres, wres)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CG x[%d]=%v != one-shot %v", i, got[i], want[i])
		}
	}
}

// TestSolverSteadyStateAllocs is the repeated-solve gate of the E25
// satellite: after the first Solve, further Solves allocate nothing.
func TestSolverSteadyStateAllocs(t *testing.T) {
	l, ts, b := buildWeightedFixture(t)
	s := NewWeightedSolver(l, ts, 1e-8, 400)
	s.Solve(b) // warm-up (lazy runtime state, if any)
	if allocs := testing.AllocsPerRun(10, func() { s.Solve(b) }); allocs != 0 {
		t.Fatalf("steady-state Solve allocates %.1f objects/solve, want 0", allocs)
	}
}

// TestSolverCtxCancellation pins the CG-loop poll: a context cancelled at
// the first iteration boundary aborts the solve with context.Canceled,
// and the solver stays reusable afterwards with bit-identical output.
func TestSolverCtxCancellation(t *testing.T) {
	l, ts, b := buildWeightedFixture(t)
	s := NewWeightedSolver(l, ts, 1e-10, 400)
	want, wres := WeightedPCG(l, ts, b, 1e-10, 400)
	if wres.Iterations < 2 {
		t.Fatalf("fixture converges in %d iterations; cannot cancel mid-solve", wres.Iterations)
	}

	cc := faultpool.CancelAtCheck(1)
	x, _, err := s.SolveCtx(cc, b)
	if !errors.Is(err, context.Canceled) || x != nil {
		t.Fatalf("cancel at first iteration: x=%v err=%v, want nil + context.Canceled", x, err)
	}

	// Mid-solve cancellation.
	x, _, err = s.SolveCtx(faultpool.CancelAtCheck(wres.Iterations/2+1), b)
	if !errors.Is(err, context.Canceled) || x != nil {
		t.Fatalf("mid-solve cancel: x=%v err=%v, want nil + context.Canceled", x, err)
	}

	// The solver must remain reusable and exact after aborted solves.
	got, gres := s.Solve(b)
	if gres != wres {
		t.Fatalf("post-cancel Result %+v != baseline %+v", gres, wres)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-cancel x[%d] diverged", i)
		}
	}

	// A never-tripping polling context changes nothing.
	got2, gres2, err := s.SolveCtx(faultpool.CancelAtCheck(1<<30), b)
	if err != nil {
		t.Fatal(err)
	}
	if gres2 != wres {
		t.Fatalf("polled Result %+v != baseline %+v", gres2, wres)
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("polled x[%d] diverged", i)
		}
	}
}
