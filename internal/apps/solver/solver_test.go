package solver

import (
	"math"
	"testing"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// denseSolve solves L x = b for a small Laplacian by Gaussian elimination
// with the last row/column pinned to break the nullspace; used as an
// oracle.
func denseSolve(g *graph.Graph, b []float64) []float64 {
	n := g.NumVertices()
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for v := 0; v < n; v++ {
		a[v][v] = float64(g.Degree(uint32(v)))
		for _, u := range g.Neighbors(uint32(v)) {
			a[v][u] -= 1
		}
		a[v][n] = b[v]
	}
	// Pin x[n-1] = 0: replace last equation.
	for j := 0; j <= n; j++ {
		a[n-1][j] = 0
	}
	a[n-1][n-1] = 1
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if a[col][col] == 0 {
			continue
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] / a[col][col]
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n] / a[i][i]
	}
	// Shift to mean zero for comparison with CG solutions.
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	for i := range x {
		x[i] -= mean
	}
	return x
}

func randomRHS(n int, seed uint64) []float64 {
	b := make([]float64, n)
	var sum float64
	for i := range b {
		b[i] = xrand.Uniform01(seed, uint64(i)) - 0.5
		sum += b[i]
	}
	for i := range b {
		b[i] -= sum / float64(n)
	}
	return b
}

func TestLaplacianApply(t *testing.T) {
	g := graph.Path(3) // L = [[1,-1,0],[-1,2,-1],[0,-1,1]]
	l := NewLaplacian(g)
	x := []float64{1, 2, 4}
	out := make([]float64, 3)
	l.Apply(x, out)
	want := []float64{-1, -1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Lx[%d]=%g want %g", i, out[i], want[i])
		}
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	g := graph.GNM(50, 150, 3)
	l := NewLaplacian(g)
	ones := make([]float64, 50)
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, 50)
	l.Apply(ones, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("L*1 nonzero at %d: %g", i, v)
		}
	}
}

func TestTreeSolverExact(t *testing.T) {
	// Solve on several trees and verify L_T y = r exactly.
	trees := []*graph.Graph{
		graph.Path(20),
		graph.Star(15),
		graph.BinaryTree(31),
		graph.Caterpillar(8, 2),
	}
	for gi, g := range trees {
		ts, err := NewTreeSolver(g.NumVertices(), g.Edges())
		if err != nil {
			t.Fatalf("tree %d: %v", gi, err)
		}
		r := randomRHS(g.NumVertices(), uint64(gi)+1)
		y := make([]float64, g.NumVertices())
		ts.Solve(r, y)
		l := NewLaplacian(g)
		out := make([]float64, g.NumVertices())
		l.Apply(y, out)
		for i := range out {
			if math.Abs(out[i]-r[i]) > 1e-9 {
				t.Fatalf("tree %d: (L_T y)[%d]=%g want %g", gi, i, out[i], r[i])
			}
		}
	}
}

func TestTreeSolverRejectsBadInput(t *testing.T) {
	if _, err := NewTreeSolver(4, []graph.Edge{{U: 0, V: 1}}); err == nil {
		t.Error("expected non-spanning error")
	}
	// Right edge count but disconnected (cycle + isolated): 3 edges, 4 vertices.
	bad := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
	if _, err := NewTreeSolver(4, bad); err == nil {
		t.Error("expected connectivity error")
	}
	if _, err := NewTreeSolver(2, []graph.Edge{{U: 0, V: 7}}); err == nil {
		t.Error("expected range error")
	}
}

func TestCGMatchesDenseOracle(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(5, 6),
		graph.Cycle(12),
		graph.GNM(25, 60, 9),
	}
	for gi, g := range graphs {
		l := NewLaplacian(g)
		b := randomRHS(g.NumVertices(), uint64(gi)+11)
		x, res := CG(l, b, 1e-10, 10*g.NumVertices())
		if !res.Converged {
			t.Fatalf("graph %d: CG did not converge (res %g)", gi, res.Residual)
		}
		oracle := denseSolve(g, b)
		for i := range x {
			if math.Abs(x[i]-oracle[i]) > 1e-6 {
				t.Fatalf("graph %d: x[%d]=%g oracle %g", gi, i, x[i], oracle[i])
			}
		}
	}
}

func TestPCGMatchesCGSolution(t *testing.T) {
	g := graph.Grid2D(10, 10)
	l := NewLaplacian(g)
	b := randomRHS(g.NumVertices(), 5)
	tree, err := lowstretch.Build(g, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTreeSolver(g.NumVertices(), tree.Edges)
	if err != nil {
		t.Fatal(err)
	}
	x1, r1 := CG(l, b, 1e-9, 2000)
	x2, r2 := PCG(l, ts, b, 1e-9, 2000)
	if !r1.Converged || !r2.Converged {
		t.Fatalf("convergence: cg=%v pcg=%v", r1, r2)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-5 {
			t.Fatalf("solutions differ at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestLowStretchTreePreconditionsBetterThanBFSTree(t *testing.T) {
	// The point of the pipeline: PCG iteration count scales with the square
	// root of the tree's TOTAL stretch, so the low-stretch tree (built over
	// Partition) converges in measurably fewer iterations than a BFS tree.
	// (Tree-only preconditioning does not beat plain CG on grids — the full
	// solver adds sampled off-tree edges for that; see package doc.)
	// Measured on this seed: side 40 grid, AKPW 224 vs BFS 320 iterations.
	g := graph.Grid2D(40, 40)
	l := NewLaplacian(g)
	b := randomRHS(g.NumVertices(), 17)
	akpw, err := lowstretch.Build(g, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	bfsTree, err := lowstretch.BFSTree(g)
	if err != nil {
		t.Fatal(err)
	}
	tsA, err := NewTreeSolver(g.NumVertices(), akpw.Edges)
	if err != nil {
		t.Fatal(err)
	}
	tsB, err := NewTreeSolver(g.NumVertices(), bfsTree.Edges)
	if err != nil {
		t.Fatal(err)
	}
	_, pa := PCG(l, tsA, b, 1e-8, 20000)
	_, pb := PCG(l, tsB, b, 1e-8, 20000)
	if !pa.Converged || !pb.Converged {
		t.Fatalf("convergence: akpw=%+v bfs=%+v", pa, pb)
	}
	if pa.Iterations >= pb.Iterations {
		t.Errorf("AKPW-tree PCG iterations %d not below BFS-tree PCG %d",
			pa.Iterations, pb.Iterations)
	}
}

func TestSolveEmptyAndTrivial(t *testing.T) {
	empty, _ := graph.FromEdges(0, nil)
	l := NewLaplacian(empty)
	x, res := CG(l, nil, 1e-9, 10)
	if len(x) != 0 || !res.Converged {
		t.Error("empty solve broken")
	}
	ts, err := NewTreeSolver(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts.Solve(nil, nil)

	// Zero RHS converges immediately.
	g := graph.Path(5)
	x, res = CG(NewLaplacian(g), make([]float64, 5), 1e-9, 10)
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero rhs: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero rhs must give zero solution")
		}
	}
}

func TestResidualNorm(t *testing.T) {
	g := graph.Grid2D(6, 6)
	l := NewLaplacian(g)
	b := randomRHS(36, 3)
	x, _ := CG(l, b, 1e-10, 1000)
	if rn := ResidualNorm(l, x, b); rn > 1e-8 {
		t.Errorf("residual %g", rn)
	}
}
