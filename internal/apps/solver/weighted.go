package solver

// Weighted SDD machinery: the Laplacian of a weighted graph (weights as
// conductances, L = D_w − A_w) and the exact O(n) tree solver for weighted
// spanning trees — the pieces that let the tree-preconditioned CG pipeline
// run on the weighted low-stretch trees the AKPW hierarchy now produces.
//
// Both are written so that at unit weights they perform the exact float
// operations of their unweighted counterparts: WeightedLaplacian.Apply
// accumulates the weighted degree as a sum of the incident weights (a sum
// of 1.0s is exactly the integer degree) and subtracts w·x[u] terms
// (1.0·x[u] is exactly x[u]), and WeightedTreeSolver divides subtree sums
// by the edge weight (S/1.0 is exactly S). The unit-weight equivalence
// tests pin this bit for bit.

import (
	"errors"
	"math"

	"mpx/internal/graph"
)

// WeightedLaplacian is the linear operator L = D_w − A_w of a weighted
// graph, with edge weights acting as conductances.
type WeightedLaplacian struct {
	g *graph.WeightedGraph
}

// NewWeightedLaplacian wraps a weighted graph as its Laplacian operator.
func NewWeightedLaplacian(wg *graph.WeightedGraph) *WeightedLaplacian {
	return &WeightedLaplacian{g: wg}
}

// Dim returns the number of variables (vertices).
func (l *WeightedLaplacian) Dim() int { return l.g.NumVertices() }

// Apply computes out = L·x.
func (l *WeightedLaplacian) Apply(x, out []float64) {
	for v := 0; v < l.g.NumVertices(); v++ {
		nbrs, ws := l.g.Neighbors(uint32(v))
		var wdeg float64
		for _, w := range ws {
			wdeg += w
		}
		s := wdeg * x[v]
		for i, u := range nbrs {
			s -= ws[i] * x[u]
		}
		out[v] = s
	}
}

// WeightedTreeSolver solves L_T y = r exactly in O(n) for the Laplacian of
// a weighted spanning tree T (weights as conductances). The right-hand
// side must sum to zero; the returned solution is normalized to mean zero.
type WeightedTreeSolver struct {
	n       int
	parent  []int32   // parent vertex in the rooted tree, -1 for the root
	parentW []float64 // weight of the edge to the parent
	order   []int32   // vertices in BFS order from the root (parents first)
}

// NewWeightedTreeSolver roots the given weighted spanning tree. The edges
// must form a spanning tree of n vertices with positive weights.
func NewWeightedTreeSolver(n int, edges []graph.WeightedEdge) (*WeightedTreeSolver, error) {
	if len(edges) != n-1 && n > 0 {
		return nil, errors.New("solver: edge set is not a spanning tree")
	}
	type arc struct {
		to int32
		w  float64
	}
	adj := make([][]arc, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, errors.New("solver: tree edge out of range")
		}
		if !(e.W > 0) || math.IsInf(e.W, 0) {
			return nil, errors.New("solver: tree edge weight must be positive and finite")
		}
		adj[e.U] = append(adj[e.U], arc{to: int32(e.V), w: e.W})
		adj[e.V] = append(adj[e.V], arc{to: int32(e.U), w: e.W})
	}
	ts := &WeightedTreeSolver{
		n:       n,
		parent:  make([]int32, n),
		parentW: make([]float64, n),
		order:   make([]int32, 0, n),
	}
	for i := range ts.parent {
		ts.parent[i] = -2 // unvisited
	}
	if n == 0 {
		return ts, nil
	}
	ts.parent[0] = -1
	ts.order = append(ts.order, 0)
	for head := 0; head < len(ts.order); head++ {
		v := ts.order[head]
		for _, a := range adj[v] {
			if ts.parent[a.to] == -2 {
				ts.parent[a.to] = v
				ts.parentW[a.to] = a.w
				ts.order = append(ts.order, a.to)
			}
		}
	}
	if len(ts.order) != n {
		return nil, errors.New("solver: tree is not connected")
	}
	return ts, nil
}

// Solve computes y with L_T y = r into out. Two passes: subtree sums
// upward, then potentials downward — the current through the edge to the
// parent is the subtree sum, so the potential drop across it is
// S/w (conductance w); finally shift to mean zero.
func (ts *WeightedTreeSolver) Solve(r, out []float64) {
	n := ts.n
	if n == 0 {
		return
	}
	s := out // reuse out as scratch: filled in reverse BFS order
	copy(s, r)
	for i := n - 1; i >= 1; i-- {
		v := ts.order[i]
		s[ts.parent[v]] += s[v]
	}
	root := ts.order[0]
	s[root] = 0
	for i := 1; i < n; i++ {
		v := ts.order[i]
		s[v] = s[ts.parent[v]] + s[v]/ts.parentW[v]
	}
	var mean float64
	for _, y := range s {
		mean += y
	}
	mean /= float64(n)
	for i := range s {
		s[i] -= mean
	}
}

// WeightedPCG runs conjugate gradient on the weighted Laplacian
// preconditioned by exact weighted tree solves.
func WeightedPCG(l *WeightedLaplacian, ts *WeightedTreeSolver, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcgOp(l.Apply, l.Dim(), b, tol, maxIter, ts.Solve)
}

// WeightedCG runs unpreconditioned conjugate gradient on the weighted
// Laplacian.
func WeightedCG(l *WeightedLaplacian, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcgOp(l.Apply, l.Dim(), b, tol, maxIter, nil)
}

// NewWeightedSolver builds a reusable solver over the weighted Laplacian,
// preconditioned by exact weighted tree solves (ts nil = plain CG). See
// Solver: repeated Solves reuse all scratch and are bit-identical to
// WeightedPCG/WeightedCG.
func NewWeightedSolver(l *WeightedLaplacian, ts *WeightedTreeSolver, tol float64, maxIter int) *Solver {
	var pre func(r, z []float64)
	if ts != nil {
		pre = ts.Solve
	}
	return newSolver(l.Apply, l.Dim(), tol, maxIter, pre)
}
