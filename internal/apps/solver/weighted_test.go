package solver

import (
	"math"
	"testing"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// unitWeights lifts g to a weighted graph with every weight exactly 1.
func unitWeights(g *graph.Graph) *graph.WeightedGraph {
	return graph.RandomWeights(g, 1, 1, 0)
}

func randomVec(n int, seed uint64) []float64 {
	rng := xrand.NewSplitMix64(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

// TestWeightedLaplacianUnitEquivalence: at unit weights the weighted
// Laplacian must perform the exact float operations of the unweighted one
// — the weighted degree is a sum of 1.0s (exactly the integer degree) and
// each subtracted term is 1.0·x[u] (exactly x[u]) — so Apply agrees bit
// for bit.
func TestWeightedLaplacianUnitEquivalence(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid": graph.Grid2D(17, 19),
		"gnm":  graph.GNM(800, 3200, 7),
	} {
		wg := unitWeights(g)
		lu := NewLaplacian(g)
		lw := NewWeightedLaplacian(wg)
		if lu.Dim() != lw.Dim() {
			t.Fatal("dimension mismatch")
		}
		x := randomVec(g.NumVertices(), 3)
		outU := make([]float64, len(x))
		outW := make([]float64, len(x))
		lu.Apply(x, outU)
		lw.Apply(x, outW)
		for v := range outU {
			if math.Float64bits(outU[v]) != math.Float64bits(outW[v]) {
				t.Fatalf("%s: L·x diverges at %d: %g vs %g", name, v, outU[v], outW[v])
			}
		}
	}
}

// TestWeightedTreeSolverUnitEquivalence: at unit weights the weighted tree
// solve divides subtree sums by 1.0 (exact), so it must agree bit for bit
// with TreeSolver.
func TestWeightedTreeSolverUnitEquivalence(t *testing.T) {
	g := graph.Grid2D(15, 16)
	tr, err := lowstretch.Build(g, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	tsU, err := NewTreeSolver(n, tr.Edges)
	if err != nil {
		t.Fatal(err)
	}
	wedges := make([]graph.WeightedEdge, len(tr.Edges))
	for i, e := range tr.Edges {
		wedges[i] = graph.WeightedEdge{U: e.U, V: e.V, W: 1}
	}
	tsW, err := NewWeightedTreeSolver(n, wedges)
	if err != nil {
		t.Fatal(err)
	}
	r := randomVec(n, 9)
	var mean float64
	for _, v := range r {
		mean += v
	}
	mean /= float64(n)
	for i := range r {
		r[i] -= mean
	}
	outU := make([]float64, n)
	outW := make([]float64, n)
	tsU.Solve(r, outU)
	tsW.Solve(r, outW)
	for v := range outU {
		if math.Float64bits(outU[v]) != math.Float64bits(outW[v]) {
			t.Fatalf("tree solve diverges at %d: %g vs %g", v, outU[v], outW[v])
		}
	}
}

// TestWeightedPCGUnitEquivalence: the full preconditioned solve agrees bit
// for bit with the unweighted pipeline at unit weights (same operator,
// same preconditioner, same generic kernel).
func TestWeightedPCGUnitEquivalence(t *testing.T) {
	g := graph.Grid2D(14, 14)
	wg := unitWeights(g)
	tr, err := lowstretch.Build(g, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	tsU, err := NewTreeSolver(n, tr.Edges)
	if err != nil {
		t.Fatal(err)
	}
	wedges := make([]graph.WeightedEdge, len(tr.Edges))
	for i, e := range tr.Edges {
		wedges[i] = graph.WeightedEdge{U: e.U, V: e.V, W: 1}
	}
	tsW, err := NewWeightedTreeSolver(n, wedges)
	if err != nil {
		t.Fatal(err)
	}
	b := randomVec(n, 21)
	xU, resU := PCG(NewLaplacian(g), tsU, b, 1e-8, 400)
	xW, resW := WeightedPCG(NewWeightedLaplacian(wg), tsW, b, 1e-8, 400)
	if resU.Iterations != resW.Iterations || resU.Converged != resW.Converged {
		t.Fatalf("PCG runs diverge: %+v vs %+v", resU, resW)
	}
	for v := range xU {
		if math.Float64bits(xU[v]) != math.Float64bits(xW[v]) {
			t.Fatalf("solution diverges at %d: %g vs %g", v, xU[v], xW[v])
		}
	}
}

// TestWeightedPCGSolvesWeightedSystem: end-to-end weighted pipeline — an
// AKPW weighted low-stretch tree preconditioning the weighted Laplacian it
// was built from — must converge to a small residual.
func TestWeightedPCGSolvesWeightedSystem(t *testing.T) {
	g := graph.Grid2D(16, 16)
	wg := graph.RandomWeights(g, 1, 6, 5)
	tr, err := lowstretch.BuildWeighted(wg, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	ts, err := NewWeightedTreeSolver(n, tr.Edges)
	if err != nil {
		t.Fatal(err)
	}
	l := NewWeightedLaplacian(wg)
	b := randomVec(n, 31)
	x, res := WeightedPCG(l, ts, b, 1e-8, 2000)
	if !res.Converged {
		t.Fatalf("weighted PCG did not converge: %+v", res)
	}
	// Independent residual check.
	out := make([]float64, n)
	l.Apply(x, out)
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	var rr, bb float64
	for i := range out {
		d := out[i] - (b[i] - mean)
		rr += d * d
		bb += (b[i] - mean) * (b[i] - mean)
	}
	if math.Sqrt(rr/bb) > 1e-6 {
		t.Fatalf("residual %g too large", math.Sqrt(rr/bb))
	}
}
