// Package solver implements the application the paper names as its target:
// solving symmetric diagonally dominant (SDD) linear systems — here graph
// Laplacians — with tree-preconditioned conjugate gradient, where the
// preconditioner tree comes from the decomposition hierarchy (a low-stretch
// spanning tree built over Partition).
//
// The pipeline reproduced: Partition → AKPW-style low-stretch tree →
// O(n)-time exact tree solves as the preconditioner inside PCG. The
// classical support-theory bound says the PCG iteration count scales with
// the square root of the tree's total stretch, which is exactly the
// quantity the low-diameter decomposition improves — so a better
// decomposition is measurably a better solver (experiment E14: the
// low-stretch tree needs ~40% fewer iterations than a BFS tree, and the
// gap widens with n).
//
// Honest scope note: a bare tree preconditioner does not beat plain CG on
// grids (total stretch ≈ m·polylog exceeds κ(L) ≈ n there); the full
// nearly-linear solvers of the literature augment the tree with sampled
// off-tree edges and recurse. This package implements the tree stage —
// the part the paper's decomposition feeds — and measures exactly that.
package solver

import (
	"context"
	"errors"
	"math"

	"mpx/internal/graph"
)

// ctxErr polls ctx inside the CG iteration loop; a nil ctx is never
// cancelled. As in core, the poll calls ctx.Err() directly so
// fault-injection contexts that trip on the Nth poll observe every
// iteration boundary.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Laplacian is the linear operator L = D − A of an unweighted graph.
type Laplacian struct {
	g *graph.Graph
}

// NewLaplacian wraps a graph as its Laplacian operator.
func NewLaplacian(g *graph.Graph) *Laplacian { return &Laplacian{g: g} }

// Dim returns the number of variables (vertices).
func (l *Laplacian) Dim() int { return l.g.NumVertices() }

// Apply computes out = L·x.
func (l *Laplacian) Apply(x, out []float64) {
	offsets := l.g.Offsets()
	adj := l.g.Adjacency()
	for v := 0; v < l.g.NumVertices(); v++ {
		s := float64(offsets[v+1]-offsets[v]) * x[v]
		for i := offsets[v]; i < offsets[v+1]; i++ {
			s -= x[adj[i]]
		}
		out[v] = s
	}
}

// TreeSolver solves L_T y = r exactly in O(n) for the Laplacian of a
// spanning tree T, the preconditioner of PCG. The right-hand side must sum
// to zero (Laplacians are singular with nullspace 1); the returned solution
// is normalized to mean zero.
type TreeSolver struct {
	n      int
	parent []int32 // parent vertex in the rooted tree, -1 for the root
	order  []int32 // vertices in BFS order from the root (parents first)
}

// NewTreeSolver roots the given spanning tree. The edges must form a
// spanning tree of n vertices (connected, acyclic).
func NewTreeSolver(n int, edges []graph.Edge) (*TreeSolver, error) {
	if len(edges) != n-1 && n > 0 {
		return nil, errors.New("solver: edge set is not a spanning tree")
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, errors.New("solver: tree edge out of range")
		}
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	ts := &TreeSolver{
		n:      n,
		parent: make([]int32, n),
		order:  make([]int32, 0, n),
	}
	for i := range ts.parent {
		ts.parent[i] = -2 // unvisited
	}
	if n == 0 {
		return ts, nil
	}
	ts.parent[0] = -1
	ts.order = append(ts.order, 0)
	for head := 0; head < len(ts.order); head++ {
		v := ts.order[head]
		for _, u := range adj[v] {
			if ts.parent[u] == -2 {
				ts.parent[u] = v
				ts.order = append(ts.order, u)
			}
		}
	}
	if len(ts.order) != n {
		return nil, errors.New("solver: tree is not connected")
	}
	return ts, nil
}

// Solve computes y with L_T y = r (r must be orthogonal to the all-ones
// vector up to fp error) into out. Two passes: subtree sums upward, then
// potentials downward; finally shift to mean zero.
func (ts *TreeSolver) Solve(r, out []float64) {
	n := ts.n
	if n == 0 {
		return
	}
	// Upward: S[v] = sum of r over the subtree of v.
	s := out // reuse out as scratch: filled in reverse BFS order
	copy(s, r)
	for i := n - 1; i >= 1; i-- {
		v := ts.order[i]
		s[ts.parent[v]] += s[v]
	}
	// Downward: y[child] = y[parent] + S[child] (unit edge weights).
	// Overwrite s in BFS order — parents are finalized before children, and
	// s[v] is consumed exactly when v is visited.
	root := ts.order[0]
	s[root] = 0
	for i := 1; i < n; i++ {
		v := ts.order[i]
		s[v] = s[ts.parent[v]] + s[v]
	}
	// Normalize to mean zero.
	var mean float64
	for _, y := range s {
		mean += y
	}
	mean /= float64(n)
	for i := range s {
		s[i] -= mean
	}
}

// Result reports a solve.
type Result struct {
	Iterations int
	Residual   float64 // final ||Lx − b|| / ||b||
	Converged  bool
}

// CG runs (unpreconditioned) conjugate gradient on L x = b, with b
// projected onto 1-perp. It stops when the relative residual drops below
// tol or after maxIter iterations.
func CG(l *Laplacian, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcg(l, b, tol, maxIter, nil)
}

// PCG runs conjugate gradient preconditioned by exact tree solves.
func PCG(l *Laplacian, ts *TreeSolver, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcg(l, b, tol, maxIter, ts)
}

func pcg(l *Laplacian, b []float64, tol float64, maxIter int, pre *TreeSolver) ([]float64, Result) {
	var solve func(r, z []float64)
	if pre != nil {
		solve = pre.Solve
	}
	return pcgOp(l.Apply, l.Dim(), b, tol, maxIter, solve)
}

// pcgOp is the operator-generic PCG kernel shared by the unweighted and
// weighted Laplacians: apply computes out = L·x and pre (nil for plain CG)
// solves the preconditioner system into z. It allocates fresh scratch per
// call; repeated-solve callers use the reusable Solver instead (identical
// float operations, zero steady-state allocations).
func pcgOp(apply func(x, out []float64), n int, b []float64, tol float64, maxIter int, pre func(r, z []float64)) ([]float64, Result) {
	s := newSolver(apply, n, tol, maxIter, pre)
	x, res, _ := s.solve(nil, b)
	return x, res
}

// Solver is a reusable PCG solver: the preconditioner-as-a-service shape,
// where one operator serves many right-hand sides and a per-solve
// allocation would be a per-request allocation. All scratch vectors (x,
// projected rhs, residual, preconditioned residual, search direction,
// L·p) are hoisted into the object, so a steady-state Solve allocates
// nothing. The float operations are exactly those of CG/PCG/WeightedPCG —
// results are bit-identical. Not safe for concurrent use; create one
// Solver per goroutine.
type Solver struct {
	apply   func(x, out []float64)
	pre     func(r, z []float64) // nil = plain CG
	n       int
	tol     float64
	maxIter int

	x, rhs, r, z, p, lp []float64
}

// NewSolver builds a reusable solver for L x = b over the unweighted
// Laplacian, preconditioned by exact tree solves (ts nil = plain CG).
func NewSolver(l *Laplacian, ts *TreeSolver, tol float64, maxIter int) *Solver {
	var pre func(r, z []float64)
	if ts != nil {
		pre = ts.Solve
	}
	return newSolver(l.Apply, l.Dim(), tol, maxIter, pre)
}

func newSolver(apply func(x, out []float64), n int, tol float64, maxIter int, pre func(r, z []float64)) *Solver {
	return &Solver{
		apply: apply, pre: pre, n: n, tol: tol, maxIter: maxIter,
		x: make([]float64, n), rhs: make([]float64, n), r: make([]float64, n),
		z: make([]float64, n), p: make([]float64, n), lp: make([]float64, n),
	}
}

// Solve runs PCG on b. The returned solution slice is owned by the Solver
// and valid until the next Solve; copy it to retain. Bit-identical to the
// one-shot CG/PCG/WeightedPCG on the same operator and b.
func (s *Solver) Solve(b []float64) ([]float64, Result) {
	x, res, _ := s.solve(nil, b)
	return x, res
}

// SolveCtx is Solve with a cancellation context (nil means never
// cancelled), polled at every CG iteration — the uniform deadline shape a
// serving layer needs. A cancelled solve returns (nil, Result{}, ctx.Err())
// and the solver remains reusable.
func (s *Solver) SolveCtx(ctx context.Context, b []float64) ([]float64, Result, error) {
	return s.solve(ctx, b)
}

func (s *Solver) solve(ctx context.Context, b []float64) ([]float64, Result, error) {
	n := s.n
	x := s.x
	for i := range x {
		x[i] = 0
	}
	if n == 0 {
		return x, Result{Converged: true}, nil
	}
	// Project b onto the range of L (orthogonal complement of 1).
	rhs := s.rhs
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	for i := range rhs {
		rhs[i] = b[i] - mean
	}
	bNorm := norm(rhs)
	if bNorm == 0 {
		return x, Result{Converged: true}, nil
	}

	r := s.r
	copy(r, rhs)
	z := s.z
	applyPre := func() {
		if s.pre == nil {
			copy(z, r)
		} else {
			s.pre(r, z)
		}
	}
	applyPre()
	p := s.p
	copy(p, z)
	lp := s.lp
	rz := dot(r, z)
	res := Result{}
	for res.Iterations = 0; res.Iterations < s.maxIter; res.Iterations++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, Result{}, cerr
		}
		if norm(r)/bNorm < s.tol {
			res.Converged = true
			break
		}
		s.apply(p, lp)
		plp := dot(p, lp)
		if plp <= 0 {
			break // numerical breakdown (p in nullspace)
		}
		alpha := rz / plp
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * lp[i]
		}
		applyPre()
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Residual = norm(r) / bNorm
	if res.Residual < s.tol {
		res.Converged = true
	}
	return x, res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

// ResidualNorm returns ||L x − b||₂ after projecting b; a convenience for
// tests and experiments.
func ResidualNorm(l *Laplacian, x, b []float64) float64 {
	n := l.Dim()
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, n)
	l.Apply(x, out)
	var s float64
	for i := range out {
		d := out[i] - (b[i] - mean)
		s += d * d
	}
	return math.Sqrt(s)
}
