// Package solver implements the application the paper names as its target:
// solving symmetric diagonally dominant (SDD) linear systems — here graph
// Laplacians — with tree-preconditioned conjugate gradient, where the
// preconditioner tree comes from the decomposition hierarchy (a low-stretch
// spanning tree built over Partition).
//
// The pipeline reproduced: Partition → AKPW-style low-stretch tree →
// O(n)-time exact tree solves as the preconditioner inside PCG. The
// classical support-theory bound says the PCG iteration count scales with
// the square root of the tree's total stretch, which is exactly the
// quantity the low-diameter decomposition improves — so a better
// decomposition is measurably a better solver (experiment E14: the
// low-stretch tree needs ~40% fewer iterations than a BFS tree, and the
// gap widens with n).
//
// Honest scope note: a bare tree preconditioner does not beat plain CG on
// grids (total stretch ≈ m·polylog exceeds κ(L) ≈ n there); the full
// nearly-linear solvers of the literature augment the tree with sampled
// off-tree edges and recurse. This package implements the tree stage —
// the part the paper's decomposition feeds — and measures exactly that.
package solver

import (
	"errors"
	"math"

	"mpx/internal/graph"
)

// Laplacian is the linear operator L = D − A of an unweighted graph.
type Laplacian struct {
	g *graph.Graph
}

// NewLaplacian wraps a graph as its Laplacian operator.
func NewLaplacian(g *graph.Graph) *Laplacian { return &Laplacian{g: g} }

// Dim returns the number of variables (vertices).
func (l *Laplacian) Dim() int { return l.g.NumVertices() }

// Apply computes out = L·x.
func (l *Laplacian) Apply(x, out []float64) {
	offsets := l.g.Offsets()
	adj := l.g.Adjacency()
	for v := 0; v < l.g.NumVertices(); v++ {
		s := float64(offsets[v+1]-offsets[v]) * x[v]
		for i := offsets[v]; i < offsets[v+1]; i++ {
			s -= x[adj[i]]
		}
		out[v] = s
	}
}

// TreeSolver solves L_T y = r exactly in O(n) for the Laplacian of a
// spanning tree T, the preconditioner of PCG. The right-hand side must sum
// to zero (Laplacians are singular with nullspace 1); the returned solution
// is normalized to mean zero.
type TreeSolver struct {
	n      int
	parent []int32 // parent vertex in the rooted tree, -1 for the root
	order  []int32 // vertices in BFS order from the root (parents first)
}

// NewTreeSolver roots the given spanning tree. The edges must form a
// spanning tree of n vertices (connected, acyclic).
func NewTreeSolver(n int, edges []graph.Edge) (*TreeSolver, error) {
	if len(edges) != n-1 && n > 0 {
		return nil, errors.New("solver: edge set is not a spanning tree")
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, errors.New("solver: tree edge out of range")
		}
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	ts := &TreeSolver{
		n:      n,
		parent: make([]int32, n),
		order:  make([]int32, 0, n),
	}
	for i := range ts.parent {
		ts.parent[i] = -2 // unvisited
	}
	if n == 0 {
		return ts, nil
	}
	ts.parent[0] = -1
	ts.order = append(ts.order, 0)
	for head := 0; head < len(ts.order); head++ {
		v := ts.order[head]
		for _, u := range adj[v] {
			if ts.parent[u] == -2 {
				ts.parent[u] = v
				ts.order = append(ts.order, u)
			}
		}
	}
	if len(ts.order) != n {
		return nil, errors.New("solver: tree is not connected")
	}
	return ts, nil
}

// Solve computes y with L_T y = r (r must be orthogonal to the all-ones
// vector up to fp error) into out. Two passes: subtree sums upward, then
// potentials downward; finally shift to mean zero.
func (ts *TreeSolver) Solve(r, out []float64) {
	n := ts.n
	if n == 0 {
		return
	}
	// Upward: S[v] = sum of r over the subtree of v.
	s := out // reuse out as scratch: filled in reverse BFS order
	copy(s, r)
	for i := n - 1; i >= 1; i-- {
		v := ts.order[i]
		s[ts.parent[v]] += s[v]
	}
	// Downward: y[child] = y[parent] + S[child] (unit edge weights).
	// Overwrite s in BFS order — parents are finalized before children, and
	// s[v] is consumed exactly when v is visited.
	root := ts.order[0]
	s[root] = 0
	for i := 1; i < n; i++ {
		v := ts.order[i]
		s[v] = s[ts.parent[v]] + s[v]
	}
	// Normalize to mean zero.
	var mean float64
	for _, y := range s {
		mean += y
	}
	mean /= float64(n)
	for i := range s {
		s[i] -= mean
	}
}

// Result reports a solve.
type Result struct {
	Iterations int
	Residual   float64 // final ||Lx − b|| / ||b||
	Converged  bool
}

// CG runs (unpreconditioned) conjugate gradient on L x = b, with b
// projected onto 1-perp. It stops when the relative residual drops below
// tol or after maxIter iterations.
func CG(l *Laplacian, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcg(l, b, tol, maxIter, nil)
}

// PCG runs conjugate gradient preconditioned by exact tree solves.
func PCG(l *Laplacian, ts *TreeSolver, b []float64, tol float64, maxIter int) ([]float64, Result) {
	return pcg(l, b, tol, maxIter, ts)
}

func pcg(l *Laplacian, b []float64, tol float64, maxIter int, pre *TreeSolver) ([]float64, Result) {
	var solve func(r, z []float64)
	if pre != nil {
		solve = pre.Solve
	}
	return pcgOp(l.Apply, l.Dim(), b, tol, maxIter, solve)
}

// pcgOp is the operator-generic PCG kernel shared by the unweighted and
// weighted Laplacians: apply computes out = L·x and pre (nil for plain CG)
// solves the preconditioner system into z.
func pcgOp(apply func(x, out []float64), n int, b []float64, tol float64, maxIter int, pre func(r, z []float64)) ([]float64, Result) {
	x := make([]float64, n)
	if n == 0 {
		return x, Result{Converged: true}
	}
	// Project b onto the range of L (orthogonal complement of 1).
	rhs := make([]float64, n)
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	for i := range rhs {
		rhs[i] = b[i] - mean
	}
	bNorm := norm(rhs)
	if bNorm == 0 {
		return x, Result{Converged: true}
	}

	r := make([]float64, n)
	copy(r, rhs)
	z := make([]float64, n)
	applyPre := func() {
		if pre == nil {
			copy(z, r)
		} else {
			pre(r, z)
		}
	}
	applyPre()
	p := make([]float64, n)
	copy(p, z)
	lp := make([]float64, n)
	rz := dot(r, z)
	res := Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if norm(r)/bNorm < tol {
			res.Converged = true
			break
		}
		apply(p, lp)
		plp := dot(p, lp)
		if plp <= 0 {
			break // numerical breakdown (p in nullspace)
		}
		alpha := rz / plp
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * lp[i]
		}
		applyPre()
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Residual = norm(r) / bNorm
	if res.Residual < tol {
		res.Converged = true
	}
	return x, res
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}

// ResidualNorm returns ||L x − b||₂ after projecting b; a convenience for
// tests and experiments.
func ResidualNorm(l *Laplacian, x, b []float64) float64 {
	n := l.Dim()
	var mean float64
	for _, v := range b {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, n)
	l.Apply(x, out)
	var s float64
	for i := range out {
		d := out[i] - (b[i] - mean)
		s += d * d
	}
	return math.Sqrt(s)
}
