package lowstretch

import (
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// legacySparse rebuilds the LCA sparse table exactly as the pre-flattening
// [][]uint32 implementation did: one row slice per level, serial min-scan.
// The flattened stride-indexed table must carry the identical values —
// this is the bit-identity contract of the E25 refactor (golden tree
// fingerprints are untouched because the tree itself never changes; this
// test pins the index layout change itself).
func legacySparse(euler []uint32, depth []int32) [][]uint32 {
	m := len(euler)
	if m == 0 {
		return nil
	}
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	sparse := make([][]uint32, levels)
	sparse[0] = make([]uint32, m)
	copy(sparse[0], euler)
	for k := 1; k < levels; k++ {
		span := 1 << k
		row := make([]uint32, m-span+1)
		prev := sparse[k-1]
		for i := range row {
			a, b := prev[i], prev[i+span/2]
			if depth[a] <= depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		sparse[k] = row
	}
	return sparse
}

// legacyLCA answers an LCA query against the legacy row-slice table with
// the original loop-computed log.
func legacyLCA(t *Tree, sparse [][]uint32, u, v uint32) uint32 {
	a, b := t.order[u], t.order[v]
	if a > b {
		a, b = b, a
	}
	span := int(b - a + 1)
	k := 0
	for 1<<(k+1) <= span {
		k++
	}
	x, y := sparse[k][a], sparse[k][int(b)-(1<<k)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

func checkFlatAgainstLegacy(t *testing.T, tr *Tree, seed uint64) {
	t.Helper()
	ref := legacySparse(tr.euler, tr.depth)
	m := len(tr.euler)
	if tr.sstride != m {
		t.Fatalf("sstride=%d, euler length %d", tr.sstride, m)
	}
	if len(ref) > 0 && len(tr.sparse) != len(ref)*m {
		t.Fatalf("flat table has %d entries, want %d rows x stride %d", len(tr.sparse), len(ref), m)
	}
	for k, row := range ref {
		flat := tr.sparse[k*m : k*m+len(row)]
		for i := range row {
			if flat[i] != row[i] {
				t.Fatalf("row %d entry %d: flat=%d legacy=%d", k, i, flat[i], row[i])
			}
		}
	}
	// Query cross-check on random pairs: the bits.Len-based k and flat
	// indexing must answer exactly what the legacy table answered.
	n := tr.G.NumVertices()
	rng := xrand.NewSplitMix64(seed)
	for q := 0; q < 2000; q++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if tr.comp[u] != tr.comp[v] {
			continue
		}
		if got, want := tr.LCA(u, v), legacyLCA(tr, ref, u, v); got != want {
			t.Fatalf("LCA(%d,%d)=%d, legacy=%d", u, v, got, want)
		}
	}
}

func TestFlattenedSparseTableBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid2D(40, 37)},
		{"gnm", graph.GNM(3000, 9000, 7)},
		{"path", graph.Path(513)},
		{"forest", graph.GNM(800, 500, 3)}, // disconnected: multiple components
		{"single", graph.Path(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := BuildPool(nil, tc.g, 0.2, 5, 4, core.DirectionAuto)
			if err != nil {
				t.Fatal(err)
			}
			checkFlatAgainstLegacy(t, tr, 11)
		})
	}
}

func TestFlattenedSparseTableWeightedBitIdentical(t *testing.T) {
	g := graph.GNM(2000, 6000, 9)
	wg := graph.RandomWeights(g, 1, 16, 4)
	tr, err := BuildWeightedPool(nil, wg, 0.3, 2, 4, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	ref := legacySparse(tr.euler, tr.depth)
	m := len(tr.euler)
	for k, row := range ref {
		flat := tr.sparse[k*m : k*m+len(row)]
		for i := range row {
			if flat[i] != row[i] {
				t.Fatalf("weighted row %d entry %d: flat=%d legacy=%d", k, i, flat[i], row[i])
			}
		}
	}
	// LCA parity through the public query path.
	rng := xrand.NewSplitMix64(13)
	n := tr.G.NumVertices()
	for q := 0; q < 2000; q++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if tr.comp[u] != tr.comp[v] {
			continue
		}
		a, b := tr.order[u], tr.order[v]
		if a > b {
			a, b = b, a
		}
		span := int(b - a + 1)
		k := 0
		for 1<<(k+1) <= span {
			k++
		}
		x, y := ref[k][a], ref[k][int(b)-(1<<k)+1]
		want := x
		if tr.depth[y] < tr.depth[x] {
			want = y
		}
		if got := tr.LCA(u, v); got != want {
			t.Fatalf("weighted LCA(%d,%d)=%d, legacy=%d", u, v, got, want)
		}
	}
}

// TestSparseRebuildAtWorkerCounts pins the parallel row sweeps: the flat
// table is bit-identical at workers 1/2/8 (each row element depends only
// on the previous row, so the block decomposition cannot matter — this
// guards against someone introducing cross-element state).
func TestSparseRebuildAtWorkerCounts(t *testing.T) {
	g := graph.Grid2D(50, 31)
	var ref []uint32
	for _, w := range []int{1, 2, 8} {
		tr, err := BuildPool(nil, g, 0.15, 3, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]uint32(nil), tr.sparse...)
			continue
		}
		if len(tr.sparse) != len(ref) {
			t.Fatalf("workers=%d: table length %d, want %d", w, len(tr.sparse), len(ref))
		}
		for i := range ref {
			if tr.sparse[i] != ref[i] {
				t.Fatalf("workers=%d: table diverges at %d", w, i)
			}
		}
	}
}
