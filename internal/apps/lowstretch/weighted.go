package lowstretch

// This file is the true AKPW construction the unweighted Build
// approximates: Alon–Karp–Peleg–West low-stretch spanning trees of
// WEIGHTED graphs. AKPW is fundamentally a weighted scheme — edges are
// bucketed into geometric weight classes and the graph is contracted level
// by level at a geometrically growing distance scale, so each level's
// decomposition clusters the edges of the next class while heavier classes
// ride along as cut edges. Here the bucketing feeds the weighted hierarchy
// engine directly: the class histogram fixes the level count, the per-level
// β schedule shrinks geometrically with the class scale (β_l in units of
// inverse weighted distance), and the Δ-stepping bucket width rides the
// same schedule. Every level runs core.PartitionWeightedParallel; each
// cluster's shortest-path tree lands in the forest mapped back to original
// edges through the engine's annotations; clusters contract with summed
// edge weights (graph.ContractWeightedClustersPool).

import (
	"context"
	"errors"
	"math"
	"math/bits"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// akpwClassGrowth is the geometric growth factor y of the AKPW weight
// classes: class c holds edges with weight in [wmin·y^c, wmin·y^(c+1)),
// and level l of the hierarchy clusters at distance scale wmin·y^l/β.
const akpwClassGrowth = 4.0

// WeightedTree is a spanning forest of a weighted graph with O(1) LCA and
// weighted tree-distance queries.
type WeightedTree struct {
	// G is the original weighted graph.
	G *graph.WeightedGraph
	// Edges are the tree edges with their original weights.
	Edges []graph.WeightedEdge
	// Levels is the number of decompose-and-contract levels used.
	Levels int
	// Stats summarizes each hierarchy level, including the weighted
	// per-level fields.
	Stats []hier.LevelStat
	// ClassHistogram counts the original edges per AKPW weight class
	// (class c = weights in [MinWeight·y^c, MinWeight·y^(c+1)), y = 4).
	ClassHistogram []int64
	// MinWeight is the lightest edge weight, the base of the class scale.
	MinWeight float64

	depth  []int32
	wdepth []float64 // weighted depth from the component root
	order  []int32
	euler  []uint32
	// sparse is the flattened LCA sparse table (see Tree.sparse): row k at
	// sparse[k*sstride : k*sstride + len(euler) - (1<<k) + 1].
	sparse  []uint32
	sstride int
	comp    []int32

	// pool/workers drive the parallel index build; nil means
	// parallel.Default(). Queries never touch the pool.
	pool    *parallel.Pool
	workers int
}

// BuildWeighted constructs an AKPW low-stretch spanning forest of wg on
// the shared default pool; see BuildWeightedPool.
func BuildWeighted(wg *graph.WeightedGraph, beta float64, seed uint64) (*WeightedTree, error) {
	return BuildWeightedPool(nil, wg, beta, seed, 0, core.DirectionAuto)
}

// BuildWeightedPool constructs an AKPW low-stretch spanning forest of wg
// with base decomposition parameter beta, on an explicit persistent worker
// pool (nil means parallel.Default()) with an explicit logical worker
// count and traversal direction. beta is interpreted at the lightest
// weight class: level l decomposes with β_l = beta/(wmin·y^l) (clamped
// into the valid (0, 1) range), so cluster radii grow by the class factor
// y per level — the AKPW progression. For a fixed (wg, beta, seed) the
// forest is bit-identical at every worker count and direction.
func BuildWeightedPool(pool *parallel.Pool, wg *graph.WeightedGraph, beta float64, seed uint64, workers int, dir core.Direction) (*WeightedTree, error) {
	return BuildWeightedPoolCtx(nil, pool, wg, beta, seed, workers, dir)
}

// BuildWeightedPoolCtx is BuildWeightedPool with a cancellation context
// (nil means never cancelled), polled at level and Δ-stepping round
// boundaries; a cancelled build returns (nil, ctx.Err()) with no partial
// forest.
func BuildWeightedPoolCtx(ctx context.Context, pool *parallel.Pool, wg *graph.WeightedGraph, beta float64, seed uint64, workers int, dir core.Direction) (*WeightedTree, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	t := &WeightedTree{G: wg, pool: pool, workers: workers}
	n := wg.NumVertices()
	if n == 0 {
		return t, nil
	}
	if wg.NumEdges() == 0 {
		return t, t.index()
	}

	// Weight-class bucketing: per-vertex min/max reduce, then a pooled
	// per-class histogram over the upper arcs. The histogram pins the class
	// count, which bounds the level count the schedule needs.
	wmin, wmax := hier.WeightRangeOnPool(pool, workers, wg)
	t.MinWeight = wmin
	numClasses := 1
	if wmax > wmin {
		numClasses = int(math.Floor(math.Log(wmax/wmin)/math.Log(akpwClassGrowth))) + 1
	}
	t.ClassHistogram = classHistogramOnPool(pool, workers, wg, wmin, numClasses)

	// Levels: enough to walk every class plus the O(log n) contraction tail
	// within the final class.
	maxLevels := numClasses + 1
	for m := int64(n); m > 0; m >>= 1 {
		maxLevels += 2
	}
	maxLevels += 16

	res, err := hier.RunWeighted(hier.Config{
		Ctx: ctx,
		WBetaAt: func(level int, _ *graph.WeightedGraph) float64 {
			return clampBeta(beta / (wmin * math.Pow(akpwClassGrowth, float64(level))))
		},
		// Δ follows the level scale: bucket width = mean shift = 1/β_l.
		Seed:         seed,
		Workers:      workers,
		Pool:         pool,
		Direction:    dir,
		MaxLevels:    maxLevels,
		NeedEdgeOrig: true,
	}, wg, func(lv *hier.Level) error {
		// Per-cluster shortest-path-tree edges -> original tree edges.
		for v := 0; v < lv.G.NumVertices(); v++ {
			p := lv.WD.Parent[v]
			if p == uint32(v) {
				continue
			}
			e := lv.OrigEdge(uint32(v), p)
			w, ok := wg.Weight(e.U, e.V)
			if !ok {
				return errors.New("lowstretch: annotation produced a non-edge")
			}
			t.Edges = append(t.Edges, graph.WeightedEdge{U: e.U, V: e.V, W: w})
		}
		return nil
	})
	if err == hier.ErrMaxLevels {
		return nil, errors.New("lowstretch: weighted contraction failed to converge")
	}
	if err != nil {
		return nil, err
	}
	t.Levels = res.Levels
	t.Stats = res.Stats
	return t, t.index()
}

// clampBeta forces a schedule value into PartitionWeightedParallel's valid
// open interval: huge scales clamp to a near-1 β (singleton-ish clusters,
// the level passes the class through), tiny ones to a floor that still
// yields one giant cluster.
func clampBeta(b float64) float64 {
	const lo, hi = 1e-12, 0.95
	if b > hi {
		return hi
	}
	if b < lo {
		return lo
	}
	return b
}

// classHistogramOnPool counts undirected edges per weight class with a
// per-worker histogram merge in (class, worker) order — deterministic
// integer sums.
func classHistogramOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph, wmin float64, numClasses int) []int64 {
	n := wg.NumVertices()
	w := parallel.Workers(workers, n)
	local := make([]int64, w*numClasses)
	logY := math.Log(akpwClassGrowth)
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		h := local[k*numClasses : (k+1)*numClasses]
		for v := lo; v < hi; v++ {
			nbrs, ws := wg.Neighbors(uint32(v))
			for i, u := range nbrs {
				if uint32(v) >= u {
					continue
				}
				c := 0
				if ws[i] > wmin {
					c = int(math.Floor(math.Log(ws[i]/wmin) / logY))
				}
				if c >= numClasses {
					c = numClasses - 1
				}
				h[c]++
			}
		}
	})
	hist := make([]int64, numClasses)
	for k := 0; k < w; k++ {
		for c := 0; c < numClasses; c++ {
			hist[c] += local[k*numClasses+c]
		}
	}
	return hist
}

// index builds depth arrays (hop and weighted), the Euler tour and the
// sparse table for O(1) LCA queries, and verifies the edge set is a
// spanning forest.
func (t *WeightedTree) index() error {
	n := t.G.NumVertices()
	if n == 0 {
		return nil
	}
	// CSR-style forest adjacency with aligned weights.
	offs := make([]int64, n+1)
	for _, e := range t.Edges {
		offs[e.U+1]++
		offs[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	flat := make([]uint32, offs[n])
	flatW := make([]float64, offs[n])
	cursor := make([]int64, n)
	for _, e := range t.Edges {
		flat[offs[e.U]+cursor[e.U]] = e.V
		flatW[offs[e.U]+cursor[e.U]] = e.W
		cursor[e.U]++
		flat[offs[e.V]+cursor[e.V]] = e.U
		flatW[offs[e.V]+cursor[e.V]] = e.W
		cursor[e.V]++
	}
	t.depth = make([]int32, n)
	t.wdepth = make([]float64, n)
	t.order = make([]int32, n)
	t.comp = make([]int32, n)
	for i := range t.order {
		t.order[i] = -1
		t.comp[i] = -1
	}
	t.euler = t.euler[:0]
	comp := int32(0)
	type frame struct {
		v    uint32
		next int
	}
	for root := 0; root < n; root++ {
		if t.order[root] != -1 {
			continue
		}
		stack := []frame{{uint32(root), 0}}
		t.depth[root] = 0
		t.wdepth[root] = 0
		t.comp[root] = comp
		t.order[root] = int32(len(t.euler))
		t.euler = append(t.euler, uint32(root))
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < int(offs[f.v+1]-offs[f.v]) {
				i := offs[f.v] + int64(f.next)
				u := flat[i]
				f.next++
				if t.order[u] != -1 {
					continue
				}
				t.depth[u] = t.depth[f.v] + 1
				t.wdepth[u] = t.wdepth[f.v] + flatW[i]
				t.comp[u] = comp
				t.order[u] = int32(len(t.euler))
				t.euler = append(t.euler, u)
				stack = append(stack, frame{u, 0})
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					t.euler = append(t.euler, stack[len(stack)-1].v)
				}
			}
		}
		comp++
	}
	// The DFS loop starts from every still-unvisited vertex, so every
	// vertex is reached by construction; the forest invariant is the edge
	// count per component (acyclic + spanning).
	if len(t.Edges) != n-int(comp) {
		return errors.New("lowstretch: weighted edge set is not a spanning forest")
	}
	t.buildSparse()
	return nil
}

// buildSparse fills the flattened sparse table exactly as Tree.buildSparse
// does: one backing allocation, each row a parallel elementwise depth-min
// sweep over the previous row, bit-identical to the serial construction.
func (t *WeightedTree) buildSparse() {
	m := len(t.euler)
	t.sstride = m
	if m == 0 {
		t.sparse = t.sparse[:0]
		return
	}
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	if cap(t.sparse) < levels*m {
		t.sparse = make([]uint32, levels*m)
	}
	t.sparse = t.sparse[:levels*m]
	copy(t.sparse[:m], t.euler)
	depth := t.depth
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		prev := t.sparse[(k-1)*m : k*m]
		row := t.sparse[k*m : k*m+m-2*half+1]
		t.pool.ForRange(t.workers, len(row), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := prev[i], prev[i+half]
				if depth[a] <= depth[b] {
					row[i] = a
				} else {
					row[i] = b
				}
			}
		})
	}
}

// LCA returns the lowest common ancestor of u and v, which must lie in the
// same component.
func (t *WeightedTree) LCA(u, v uint32) uint32 {
	a, b := t.order[u], t.order[v]
	if a > b {
		a, b = b, a
	}
	k := bits.Len32(uint32(b-a+1)) - 1
	base := k * t.sstride
	x, y := t.sparse[base+int(a)], t.sparse[base+int(b)-(1<<k)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

// Dist returns the weighted tree distance between u and v, or -1 if they
// lie in different components.
func (t *WeightedTree) Dist(u, v uint32) float64 {
	if t.comp[u] != t.comp[v] {
		return -1
	}
	l := t.LCA(u, v)
	return t.wdepth[u] + t.wdepth[v] - 2*t.wdepth[l]
}

// WeightedStretchStats summarizes edge stretch over the whole edge set:
// for every original edge {u, v} of weight w, its stretch is the weighted
// tree distance divided by w.
type WeightedStretchStats struct {
	Edges int64
	Mean  float64
	Max   float64
	Total float64
}

// Stretch computes exact weighted stretch statistics over every original
// edge using O(1) LCA queries.
func (t *WeightedTree) Stretch() WeightedStretchStats {
	var st WeightedStretchStats
	for v := 0; v < t.G.NumVertices(); v++ {
		nbrs, ws := t.G.Neighbors(uint32(v))
		for i, u := range nbrs {
			if uint32(v) >= u {
				continue
			}
			d := t.Dist(uint32(v), u)
			if d < 0 {
				continue // different components cannot happen for real edges
			}
			s := d / ws[i]
			st.Edges++
			st.Total += s
			if s > st.Max {
				st.Max = s
			}
		}
	}
	if st.Edges > 0 {
		st.Mean = st.Total / float64(st.Edges)
	}
	return st
}
