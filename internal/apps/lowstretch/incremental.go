package lowstretch

import (
	"context"
	"errors"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Incremental is a low-stretch spanning forest maintained under batched
// edge updates. It owns a persistent hier.Hierarchy plus the per-level
// tree-edge segments, so an Update only recomputes the segments of levels
// the hierarchy actually re-derived or refreshed — spliced levels keep
// their edges verbatim — and skips the O(n log n) LCA index rebuild
// entirely when the tree came out unchanged. The maintained Tree is
// bit-identical to BuildPool on the updated graph with the same
// parameters. Not safe for concurrent use.
type Incremental struct {
	h    *hier.Hierarchy
	tree *Tree
	// segs[l] holds level l's tree edges in original coordinates, in the
	// same order BuildPool's visit callback emits them.
	segs [][]graph.Edge
	// edgesChanged is set by the capture callback whenever a re-visited
	// level's segment differs from the retained one.
	edgesChanged bool
}

// BuildIncremental constructs an updatable low-stretch forest on the shared
// default pool; see BuildIncrementalPool.
func BuildIncremental(g *graph.Graph, beta float64, seed uint64) (*Incremental, error) {
	return BuildIncrementalPool(nil, g, beta, seed, 0, core.DirectionAuto)
}

// BuildIncrementalPool is BuildPool retaining the hierarchy for incremental
// maintenance: the initial Tree is bit-identical to BuildPool's, and every
// subsequent Update leaves Tree bit-identical to BuildPool on the updated
// graph.
func BuildIncrementalPool(pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Incremental, error) {
	return BuildIncrementalPoolCtx(nil, pool, g, beta, seed, workers, dir)
}

// BuildIncrementalPoolCtx is BuildIncrementalPool with a cancellation
// context (nil means never cancelled) covering the initial build; per-call
// update deadlines go through UpdateCtx.
func BuildIncrementalPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Incremental, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	inc := &Incremental{tree: &Tree{G: g, pool: pool, workers: workers}}
	h, err := hier.BuildHierarchy(hier.Config{
		Ctx:          ctx,
		Beta:         beta,
		Seed:         seed,
		Workers:      workers,
		Pool:         pool,
		Direction:    dir,
		NeedEdgeOrig: true,
	}, g, inc.capture)
	if err == hier.ErrMaxLevels {
		return nil, errors.New("lowstretch: contraction failed to converge")
	}
	if err != nil {
		return nil, err
	}
	inc.h = h
	if err := inc.rebuildTree(); err != nil {
		return nil, err
	}
	return inc, nil
}

// Tree returns the maintained spanning forest. The pointer stays valid
// across updates; Update mutates it in place.
func (inc *Incremental) Tree() *Tree { return inc.tree }

// Hierarchy exposes the retained decompose-and-contract hierarchy the tree
// is derived from, so query layers (oracle.MembershipOracle, cmd/mpx
// -queries) can export cluster maps from the same build that produced the
// tree. Mutating it directly (its own Update) desynchronizes the Tree; go
// through Incremental.Update instead.
func (inc *Incremental) Hierarchy() *hier.Hierarchy { return inc.h }

// Update applies b to the underlying graph and re-derives exactly the
// hierarchy levels whose inputs changed, splicing the retained tree-edge
// segments of every reused level. The LCA index is rebuilt only when the
// edge set actually moved. An error leaves the structure inconsistent;
// discard it.
func (inc *Incremental) Update(b graph.Batch) (hier.UpdateStats, error) {
	return inc.UpdateCtx(nil, b)
}

// UpdateCtx is Update with a per-call cancellation context (nil means
// never cancelled). A cancellation or contained panic that strikes before
// the hierarchy commits leaves the whole structure untouched (retry the
// batch freely — the underlying Hierarchy.UpdateCtx is all-or-nothing and
// no visits have been delivered); an error after commit, like every other
// Update error, leaves the structure inconsistent — discard it.
func (inc *Incremental) UpdateCtx(ctx context.Context, b graph.Batch) (hier.UpdateStats, error) {
	inc.edgesChanged = false
	us, err := inc.h.UpdateCtx(ctx, b, inc.capture)
	if err == hier.ErrMaxLevels {
		return us, errors.New("lowstretch: contraction failed to converge")
	}
	if err != nil {
		return us, err
	}
	if levels := inc.h.Levels(); len(inc.segs) > levels {
		inc.segs = inc.segs[:levels]
		inc.edgesChanged = true
	}
	return us, inc.rebuildTree()
}

// capture recomputes one level's tree-edge segment — the visit callback for
// both the initial build and every update.
func (inc *Incremental) capture(lv *hier.Level) error {
	for len(inc.segs) <= lv.Index {
		inc.segs = append(inc.segs, nil)
	}
	var seg []graph.Edge
	for v := 0; v < lv.G.NumVertices(); v++ {
		p := lv.D.Parent[v]
		if p == uint32(v) {
			continue
		}
		seg = append(seg, lv.OrigEdge(uint32(v), p))
	}
	if !segsEqual(seg, inc.segs[lv.Index]) {
		inc.edgesChanged = true
	}
	inc.segs[lv.Index] = seg
	return nil
}

// rebuildTree refreshes the maintained Tree from the hierarchy and the
// retained segments: graph/stats pointers always, the flattened edge list
// and the LCA index only when a segment moved.
func (inc *Incremental) rebuildTree() error {
	t := inc.tree
	t.G = inc.h.Graph()
	res := inc.h.Result()
	t.Levels = res.Levels
	t.Stats = res.Stats
	if !inc.edgesChanged && t.comp != nil {
		return nil
	}
	total := 0
	for _, seg := range inc.segs {
		total += len(seg)
	}
	t.Edges = t.Edges[:0]
	if cap(t.Edges) < total {
		t.Edges = make([]graph.Edge, 0, total)
	}
	for _, seg := range inc.segs {
		t.Edges = append(t.Edges, seg...)
	}
	return t.index()
}

func segsEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
