package lowstretch

import (
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

func treesIdentical(t *testing.T, tag string, got, want *Tree) {
	t.Helper()
	if got.Levels != want.Levels {
		t.Fatalf("%s: Levels = %d, want %d", tag, got.Levels, want.Levels)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: %d tree edges, want %d", tag, len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", tag, i, got.Edges[i], want.Edges[i])
		}
	}
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d stats, want %d", tag, len(got.Stats), len(want.Stats))
	}
	for l := range want.Stats {
		if got.Stats[l] != want.Stats[l] {
			t.Fatalf("%s: Stats[%d] = %+v, want %+v", tag, l, got.Stats[l], want.Stats[l])
		}
	}
	// The derived index must answer identically: spot-check depths, Euler
	// tour length and a stretch summary.
	for v := range want.depth {
		if got.depth[v] != want.depth[v] || got.comp[v] != want.comp[v] {
			t.Fatalf("%s: index differs at vertex %d", tag, v)
		}
	}
	if gs, ws := got.Stretch(), want.Stretch(); gs != ws {
		t.Fatalf("%s: stretch %+v, want %+v", tag, gs, ws)
	}
}

// TestIncrementalMatchesRebuild drives a chain of random batches through
// Incremental.Update and requires the maintained Tree to be bit-identical
// to BuildPool on the updated graph at every step.
func TestIncrementalMatchesRebuild(t *testing.T) {
	base := graph.Grid2D(18, 15)
	const beta, seed = 0.25, 9
	for _, w := range []int{1, 4} {
		inc, err := BuildIncrementalPool(nil, base, beta, seed, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		fresh0, err := BuildPool(nil, base, beta, seed, w, core.DirectionAuto)
		if err != nil {
			t.Fatal(err)
		}
		treesIdentical(t, "initial", inc.Tree(), fresh0)

		cur := base
		for step := uint64(0); step < 4; step++ {
			var b graph.Batch
			n := uint64(cur.NumVertices())
			for i := 0; i < 7; i++ {
				b.Insert = append(b.Insert, graph.Edge{
					U: uint32(xrand.Mix(step, uint64(i)*2+1) % n),
					V: uint32(xrand.Mix(step, uint64(i)*2+2) % n),
				})
			}
			edges := cur.Edges()
			for i := 0; i < 5; i++ {
				b.Delete = append(b.Delete, edges[xrand.Mix(step, 0xb10c+uint64(i))%uint64(len(edges))])
			}
			if _, err := inc.Update(b); err != nil {
				t.Fatalf("w=%d step %d: %v", w, step, err)
			}
			cur, _, err = graph.ApplyBatch(cur, b)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := BuildPool(nil, cur, beta, seed, w, core.DirectionAuto)
			if err != nil {
				t.Fatal(err)
			}
			treesIdentical(t, "updated", inc.Tree(), fresh)
		}
	}
}

// TestIncrementalSkipsIndexRebuild checks the fast path: an update that
// provably leaves the forest unchanged (deleting an intra non-tree edge)
// must not rebuild the LCA index, and a no-op batch must reuse every level.
func TestIncrementalSkipsIndexRebuild(t *testing.T) {
	base := graph.Grid2D(25, 24)
	inc, err := BuildIncrementalPool(nil, base, 0.2, 4, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	tr := inc.Tree()
	mark := &tr.order[0]

	us, err := inc.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if us.Reused != us.Levels || us.Refreshed+us.Rederived != 0 {
		t.Fatalf("no-op batch: %+v", us)
	}
	if &tr.order[0] != mark {
		t.Fatal("no-op batch rebuilt the index")
	}

	// An intra non-tree edge is in no cluster BFS tree and doesn't touch
	// the cut set: deleting it refreshes level 0 but leaves every tree
	// segment — and therefore the index — untouched. Recover level 0's
	// centers by replaying its partition (same seed derivation as the
	// hierarchy engine).
	d0, err := core.Partition(base, 0.2, core.Options{
		Seed: xrand.Mix(4, 0), Workers: 2, Direction: core.DirectionAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	var target *graph.Edge
	for _, e := range base.Edges() {
		if d0.Center[e.U] == d0.Center[e.V] && d0.Parent[e.U] != e.V && d0.Parent[e.V] != e.U {
			e := e
			target = &e
			break
		}
	}
	if target == nil {
		t.Fatal("no intra non-tree edge found")
	}
	us, err = inc.Update(graph.Batch{Delete: []graph.Edge{*target}})
	if err != nil {
		t.Fatal(err)
	}
	if us.Rederived != 0 {
		t.Fatalf("non-tree delete re-derived levels: %+v", us)
	}
	if &tr.order[0] != mark {
		t.Fatal("unchanged forest rebuilt the index")
	}
	updated, _, err := graph.ApplyBatch(base, graph.Batch{Delete: []graph.Edge{*target}})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildPool(nil, updated, 0.2, 4, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	treesIdentical(t, "non-tree delete", tr, fresh)
}
