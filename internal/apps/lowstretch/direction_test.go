package lowstretch

import (
	"hash/fnv"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// fingerprint hashes the complete forest output — level count and the
// exact tree edge sequence — with FNV-1a.
func fingerprint(t *Tree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put32(uint32(t.Levels))
	for _, e := range t.Edges {
		put32(e.U)
		put32(e.V)
	}
	return h.Sum64()
}

func directionGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid": graph.Grid2D(18, 22),
		"gnm":  graph.GNM(500, 2000, 11),
	}
}

var allDirections = []core.Direction{
	core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto,
}

// TestBuildPoolDirectionsBitIdentical is the hierarchy determinism proof
// for the low-stretch tree: the forest must be bit-identical at workers
// 1/2/8 and under push/pull/auto, because Partition is and every engine
// kernel (classification, contraction, annotation) is deterministic.
func TestBuildPoolDirectionsBitIdentical(t *testing.T) {
	for name, g := range directionGraphs() {
		for _, seed := range []uint64{1, 42} {
			base, err := BuildPool(nil, g, 0.25, seed, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					tr, err := BuildPool(nil, g, 0.25, seed, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(tr); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestBuildGolden pins one fixed construction to a golden fingerprint so
// silent cross-version drift of the hierarchy path fails loudly. Update
// the constant only with an intentional, documented change to the engine
// or to Partition's claim resolution.
func TestBuildGolden(t *testing.T) {
	const golden = uint64(0xc7493eeb9d15afe0)
	g := graph.Grid2D(13, 17)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			tr, err := BuildPool(nil, g, 0.3, 5, w, dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(tr); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}

// TestBuildMatchesBuildPool checks the compatibility wrapper stays the
// default-pool instantiation of the pooled path.
func TestBuildMatchesBuildPool(t *testing.T) {
	g := graph.GNM(300, 900, 3)
	a, err := Build(g, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPool(nil, g, 0.2, 9, 4, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("Build and BuildPool diverge")
	}
}
