package lowstretch

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// wfingerprint hashes the complete weighted forest output — level count
// and the exact tree edge sequence including each weight's IEEE bits.
func wfingerprint(t *WeightedTree) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	put32(uint32(t.Levels))
	for _, e := range t.Edges {
		put32(e.U)
		put32(e.V)
		put64(math.Float64bits(e.W))
	}
	return h.Sum64()
}

func weightedDirectionGraphs() map[string]*graph.WeightedGraph {
	return map[string]*graph.WeightedGraph{
		"grid": graph.RandomWeights(graph.Grid2D(18, 22), 1, 6, 13),
		"gnm":  graph.RandomWeights(graph.GNM(500, 2000, 11), 0.5, 8, 7),
	}
}

// TestBuildWeightedPoolDirectionsBitIdentical is the hierarchy determinism
// proof for the AKPW weighted tree: the forest must be bit-identical at
// workers 1/2/8 and under push/pull/auto, because the weighted partition
// is, the weighted contraction is bit-identical to its serial reference
// (including summed weight bits), and the annotation kernels are shared
// with the unweighted engine.
func TestBuildWeightedPoolDirectionsBitIdentical(t *testing.T) {
	for name, wg := range weightedDirectionGraphs() {
		for _, seed := range []uint64{1, 42} {
			base, err := BuildWeightedPool(nil, wg, 0.25, seed, 1, core.DirectionForcePush)
			if err != nil {
				t.Fatal(err)
			}
			want := wfingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					tr, err := BuildWeightedPool(nil, wg, 0.25, seed, w, dir)
					if err != nil {
						t.Fatal(err)
					}
					if got := wfingerprint(tr); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestBuildWeightedGolden pins one fixed weighted construction to a golden
// fingerprint so silent cross-version drift of the weighted hierarchy path
// fails loudly. Update the constant only with an intentional, documented
// change to the engine, the weighted partition, or the weighted
// contraction.
func TestBuildWeightedGolden(t *testing.T) {
	const golden = uint64(0x9518ea417ee2f264)
	wg := graph.RandomWeights(graph.Grid2D(13, 17), 1, 4, 3)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			tr, err := BuildWeightedPool(nil, wg, 0.3, 5, w, dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := wfingerprint(tr); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}

// TestBuildWeightedStretch checks the structural quality contract: the
// weighted tree spans, every tree edge is an original edge (stretch of a
// tree edge is exactly 1), and the mean stretch is finite and >= 1.
func TestBuildWeightedStretch(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(20, 20), 1, 5, 9)
	tr, err := BuildWeightedPool(nil, wg, 0.25, 4, 4, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != wg.NumVertices()-1 {
		t.Fatalf("tree has %d edges for connected n=%d", len(tr.Edges), wg.NumVertices())
	}
	for _, e := range tr.Edges {
		w, ok := wg.Weight(e.U, e.V)
		if !ok || math.Float64bits(w) != math.Float64bits(e.W) {
			t.Fatalf("tree edge {%d,%d} weight %g is not the original weight", e.U, e.V, e.W)
		}
		d := tr.Dist(e.U, e.V)
		if math.Abs(d-w) > 1e-12*math.Max(1, w) {
			t.Fatalf("tree distance %g across tree edge of weight %g", d, w)
		}
	}
	st := tr.Stretch()
	if st.Edges != wg.NumEdges() {
		t.Fatalf("stretch measured %d edges, want %d", st.Edges, wg.NumEdges())
	}
	if st.Mean < 1-1e-9 || math.IsInf(st.Mean, 0) || math.IsNaN(st.Mean) {
		t.Fatalf("mean stretch %g out of range", st.Mean)
	}
	if st.Max < 1-1e-9 {
		t.Fatalf("max stretch %g below 1", st.Max)
	}
}

// TestBuildWeightedUnitWeightsMatchHopStretch sanity-checks the unit-weight
// regime: with every weight 1 the weighted stretch of an edge equals its
// hop stretch, so the AKPW tree's mean stretch must stay in the same
// polylog ballpark the unweighted construction achieves.
func TestBuildWeightedUnitWeightsMatchHopStretch(t *testing.T) {
	g := graph.Grid2D(16, 16)
	wg := graph.RandomWeights(g, 1, 1, 1) // every weight exactly 1
	tr, err := BuildWeightedPool(nil, wg, 0.3, 7, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stretch()
	for _, e := range tr.Edges {
		if e.W != 1 {
			t.Fatalf("unit graph produced weight %g", e.W)
		}
	}
	// Hop distances are integers; weighted Dist must agree exactly on unit
	// weights.
	if d := tr.Dist(0, uint32(g.NumVertices()-1)); d != math.Trunc(d) {
		t.Fatalf("unit-weight tree distance %g is not integral", d)
	}
	if st.Mean > 100 {
		t.Fatalf("unit-weight mean stretch %g is far above the polylog ballpark", st.Mean)
	}
}

// TestBuildWeightedClassHistogram checks the AKPW bucketing metadata: the
// histogram covers every edge and the class count matches the weight
// range.
func TestBuildWeightedClassHistogram(t *testing.T) {
	wg := graph.RandomWeights(graph.GNM(300, 1200, 2), 1, 60, 5)
	tr, err := BuildWeightedPool(nil, wg, 0.3, 1, 2, core.DirectionAuto)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range tr.ClassHistogram {
		total += c
	}
	if total != wg.NumEdges() {
		t.Fatalf("class histogram covers %d edges, want %d", total, wg.NumEdges())
	}
	if tr.MinWeight < 1 || tr.MinWeight >= 60 {
		t.Fatalf("MinWeight %g outside the generator range", tr.MinWeight)
	}
	if len(tr.ClassHistogram) < 2 {
		t.Fatalf("a 60x weight range must span multiple classes, got %d", len(tr.ClassHistogram))
	}
}
