package lowstretch

import (
	"testing"

	"mpx/internal/bfs"
	"mpx/internal/graph"
)

func TestBuildSpanningTreeOnGrid(t *testing.T) {
	g := graph.Grid2D(20, 20)
	tr, err := Build(g, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != g.NumVertices()-1 {
		t.Errorf("tree has %d edges, want %d", len(tr.Edges), g.NumVertices()-1)
	}
	if tr.Levels < 1 {
		t.Error("expected at least one level")
	}
}

func TestTreeDistMatchesBFSOnTreeSubgraph(t *testing.T) {
	g := graph.Grid2D(10, 12)
	tr, err := Build(g, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := graph.FromEdges(g.NumVertices(), tr.Edges)
	if err != nil {
		t.Fatal(err)
	}
	// LCA-based Dist must equal BFS distance in the tree subgraph.
	for _, src := range []uint32{0, 17, 63} {
		dist := bfs.Sequential(sub, src)
		for v := 0; v < g.NumVertices(); v++ {
			if got := tr.Dist(src, uint32(v)); got != dist[v] {
				t.Fatalf("Dist(%d,%d)=%d, BFS says %d", src, v, got, dist[v])
			}
		}
	}
}

func TestStretchStatsSane(t *testing.T) {
	g := graph.Grid2D(25, 25)
	tr, err := Build(g, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stretch()
	if st.Edges != g.NumEdges() {
		t.Errorf("stretch over %d edges, want %d", st.Edges, g.NumEdges())
	}
	if st.Mean < 1 {
		t.Errorf("mean stretch %g below 1 (tree distance of an edge is >= 1)", st.Mean)
	}
	if int64(st.Max) > 2*int64(g.NumVertices()) {
		t.Errorf("max stretch %d absurd", st.Max)
	}
}

func TestBFSTreeBaseline(t *testing.T) {
	g := graph.Torus2D(20, 20)
	tr, err := BFSTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != g.NumVertices()-1 {
		t.Errorf("BFS tree has %d edges", len(tr.Edges))
	}
	st := tr.Stretch()
	if st.Mean < 1 {
		t.Errorf("mean %g", st.Mean)
	}
}

func TestLowStretchBeatsBFSOnGrid(t *testing.T) {
	// The classical motivating example: on a √n×√n grid a BFS tree has
	// average stretch Θ(√n) while the AKPW-style tree keeps the average
	// polylogarithmic. With this seed the gap is > 2x, so this is a robust
	// shape test (32x32 grid: BFS mean ≈ 16.5, AKPW mean ≈ 7.2).
	g := graph.Grid2D(32, 32)
	bfsTree, err := BFSTree(g)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Build(g, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, l := bfsTree.Stretch(), ls.Stretch()
	if l.Mean >= b.Mean {
		t.Errorf("low-stretch mean %g not better than BFS mean %g", l.Mean, b.Mean)
	}
}

func TestForestOnDisconnectedGraph(t *testing.T) {
	g, err := graph.FromEdges(7, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(g, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Spanning forest: n - #components edges. Components: {0,1,2},{3,4,5},{6}.
	if len(tr.Edges) != 4 {
		t.Errorf("forest has %d edges, want 4", len(tr.Edges))
	}
	if d := tr.Dist(0, 3); d != -1 {
		t.Errorf("cross-component Dist=%d, want -1", d)
	}
	if d := tr.Dist(0, 2); d != 2 {
		t.Errorf("Dist(0,2)=%d want 2", d)
	}
}

func TestBuildRejectsBadBeta(t *testing.T) {
	if _, err := Build(graph.Path(4), 1.5, 0); err == nil {
		t.Error("expected error")
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty, _ := graph.FromEdges(0, nil)
	if _, err := Build(empty, 0.3, 0); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	single, _ := graph.FromEdges(1, nil)
	tr, err := Build(single, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != 0 {
		t.Error("single vertex tree should have no edges")
	}
}

func TestLCASymmetricAndIdempotent(t *testing.T) {
	g := graph.BinaryTree(63)
	tr, err := Build(g, 0.4, 6)
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 63; u += 7 {
		for v := uint32(0); v < 63; v += 5 {
			if tr.LCA(u, v) != tr.LCA(v, u) {
				t.Fatalf("LCA not symmetric for (%d,%d)", u, v)
			}
		}
		if tr.LCA(u, u) != u {
			t.Fatalf("LCA(%d,%d) != %d", u, u, u)
		}
	}
}
