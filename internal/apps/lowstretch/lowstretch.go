// Package lowstretch builds low-stretch spanning trees with the
// decompose-and-contract scheme of Alon, Karp, Peleg and West (AKPW), using
// the paper's Partition as the decomposition step — the application the
// paper names as its main target (the tree-embedding pipeline behind the
// parallel SDD solvers of Blelloch et al.).
//
// Each level runs a low-diameter decomposition of the current (contracted)
// graph, adds every cluster's BFS tree to the spanning forest — mapped back
// to original edges — and contracts clusters into super-vertices. Because
// each level keeps only the O(β) fraction of cut edges, the hierarchy has
// O(log n / log(1/β))-ish depth and the resulting tree stretches an average
// edge by a polylog factor, versus the Θ(diameter) stretch a naive BFS tree
// can suffer.
//
// The decompose-and-contract loop runs on the internal/hier engine: every
// level's Partition, edge classification and contraction execute on the
// shared parallel.Pool, tree edges map back to original coordinates
// through the engine's edge annotations, and output is bit-identical
// across worker counts and traversal directions.
package lowstretch

import (
	"context"
	"errors"
	"math/bits"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Tree is a spanning forest of the original graph with LCA-based distance
// queries.
type Tree struct {
	// G is the original graph.
	G *graph.Graph
	// Edges are the tree edges (original vertex ids).
	Edges []graph.Edge
	// Levels is the number of decompose-and-contract levels used.
	Levels int
	// Stats summarizes each hierarchy level (sizes, clusters, cut).
	Stats []hier.LevelStat

	depth []int32
	order []int32 // first visit position of each vertex in the Euler tour
	euler []uint32
	// sparse is the LCA sparse table over euler positions (min by depth),
	// flattened into one stride-indexed backing array: row k occupies
	// sparse[k*sstride : k*sstride + len(euler) - (1<<k) + 1]. One flat
	// allocation and no per-row pointer chase on the query path — the
	// layout the high-QPS oracle batch kernels read.
	sparse  []uint32
	sstride int
	comp    []int32 // connected component labels (forest support)

	// pool/workers drive the parallel index build (each sparse-table row
	// is an independent elementwise min-scan over the previous row). A nil
	// pool means parallel.Default(); queries never touch the pool.
	pool    *parallel.Pool
	workers int
}

// Build constructs a low-stretch spanning forest of g with decomposition
// parameter beta at every level, on the shared default pool.
func Build(g *graph.Graph, beta float64, seed uint64) (*Tree, error) {
	return BuildPool(nil, g, beta, seed, 0, core.DirectionAuto)
}

// BuildPool is Build on an explicit persistent worker pool (nil means
// parallel.Default()) with an explicit logical worker count and traversal
// direction: every level of the decompose-and-contract hierarchy —
// Partition, edge classification, contraction, annotation — executes on
// the pool via the internal/hier engine. For a fixed (g, beta, seed) the
// resulting forest is bit-identical at every worker count and direction.
func BuildPool(pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Tree, error) {
	return BuildPoolCtx(nil, pool, g, beta, seed, workers, dir)
}

// BuildPoolCtx is BuildPool with a cancellation context (nil means never
// cancelled): ctx is polled at every hierarchy level and partition-round
// boundary, and a cancelled build returns (nil, ctx.Err()) with no partial
// tree. Panics escaping the pooled kernels surface as *parallel.PanicError
// errors; see docs/robustness.md.
func BuildPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, beta float64, seed uint64, workers int, dir core.Direction) (*Tree, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	t := &Tree{G: g, pool: pool, workers: workers}
	if g.NumVertices() == 0 {
		return t, nil
	}
	res, err := hier.Run(hier.Config{
		Ctx:          ctx,
		Beta:         beta,
		Seed:         seed,
		Workers:      workers,
		Pool:         pool,
		Direction:    dir,
		NeedEdgeOrig: true,
	}, g, func(lv *hier.Level) error {
		// Per-cluster BFS tree edges -> original tree edges.
		for v := 0; v < lv.G.NumVertices(); v++ {
			p := lv.D.Parent[v]
			if p == uint32(v) {
				continue
			}
			t.Edges = append(t.Edges, lv.OrigEdge(uint32(v), p))
		}
		return nil
	})
	if err == hier.ErrMaxLevels {
		return nil, errors.New("lowstretch: contraction failed to converge")
	}
	if err != nil {
		return nil, err
	}
	t.Levels = res.Levels
	t.Stats = res.Stats
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// BFSTree returns the baseline spanning forest: a plain BFS tree from the
// smallest vertex of each component. Used as the comparison arm of
// experiment E12.
func BFSTree(g *graph.Graph) (*Tree, error) {
	n := g.NumVertices()
	t := &Tree{G: g}
	visited := make([]bool, n)
	var queue []uint32
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], uint32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					t.Edges = append(t.Edges, graph.Edge{U: v, V: u})
					queue = append(queue, u)
				}
			}
		}
	}
	t.Levels = 1
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// index builds depth arrays, the Euler tour and the sparse table for O(1)
// LCA queries, and verifies the edge set is acyclic and spanning.
func (t *Tree) index() error {
	n := t.G.NumVertices()
	if n == 0 {
		return nil
	}
	// CSR-style forest adjacency: two flat allocations instead of O(n)
	// per-vertex append churn (the E22 alloc gate watches this path).
	offs := make([]int64, n+1)
	for _, e := range t.Edges {
		offs[e.U+1]++
		offs[e.V+1]++
	}
	for i := 0; i < n; i++ {
		offs[i+1] += offs[i]
	}
	flat := make([]uint32, offs[n])
	cursor := make([]int64, n)
	for _, e := range t.Edges {
		flat[offs[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
		flat[offs[e.V]+cursor[e.V]] = e.U
		cursor[e.V]++
	}
	adj := func(v uint32) []uint32 { return flat[offs[v]:offs[v+1]] }
	t.depth = make([]int32, n)
	t.order = make([]int32, n)
	t.comp = make([]int32, n)
	for i := range t.order {
		t.order[i] = -1
		t.comp[i] = -1
	}
	t.euler = t.euler[:0]
	comp := int32(0)
	visited := 0
	// Iterative DFS with an explicit stack; emits the Euler tour.
	type frame struct {
		v    uint32
		next int
	}
	for root := 0; root < n; root++ {
		if t.order[root] != -1 {
			continue
		}
		stack := []frame{{uint32(root), 0}}
		t.depth[root] = 0
		t.comp[root] = comp
		t.order[root] = int32(len(t.euler))
		t.euler = append(t.euler, uint32(root))
		visited++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(adj(f.v)) {
				u := adj(f.v)[f.next]
				f.next++
				if t.order[u] != -1 {
					continue
				}
				t.depth[u] = t.depth[f.v] + 1
				t.comp[u] = comp
				t.order[u] = int32(len(t.euler))
				t.euler = append(t.euler, u)
				visited++
				stack = append(stack, frame{u, 0})
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					t.euler = append(t.euler, stack[len(stack)-1].v)
				}
			}
		}
		comp++
	}
	if visited != n {
		return errors.New("lowstretch: tree does not span the graph")
	}
	// Tree edge count check: acyclic + spanning per component.
	if len(t.Edges) != n-int(comp) {
		return errors.New("lowstretch: edge set is not a spanning forest")
	}
	t.buildSparse()
	return nil
}

// buildSparse fills the flattened sparse table: row 0 is the Euler tour,
// row k the elementwise depth-min of row k-1 with itself shifted by
// 2^(k-1). Rows build in order, but every element of a row is independent,
// so each row is one parallel sweep on the pool — the index build is
// O(m log m) work at O(log m) additional depth, with a single backing
// allocation reused across rebuilds. Values are bit-identical to the
// serial per-row construction: the min-scan reads only the previous row.
func (t *Tree) buildSparse() {
	m := len(t.euler)
	t.sstride = m
	if m == 0 {
		t.sparse = t.sparse[:0]
		return
	}
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	if cap(t.sparse) < levels*m {
		t.sparse = make([]uint32, levels*m)
	}
	t.sparse = t.sparse[:levels*m]
	copy(t.sparse[:m], t.euler)
	depth := t.depth
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		prev := t.sparse[(k-1)*m : k*m]
		row := t.sparse[k*m : k*m+m-2*half+1]
		t.pool.ForRange(t.workers, len(row), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := prev[i], prev[i+half]
				if depth[a] <= depth[b] {
					row[i] = a
				} else {
					row[i] = b
				}
			}
		})
	}
}

// LCA returns the lowest common ancestor of u and v, which must lie in the
// same component.
func (t *Tree) LCA(u, v uint32) uint32 {
	a, b := t.order[u], t.order[v]
	if a > b {
		a, b = b, a
	}
	k := bits.Len32(uint32(b-a+1)) - 1
	base := k * t.sstride
	x, y := t.sparse[base+int(a)], t.sparse[base+int(b)-(1<<k)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

// Dist returns the tree distance between u and v, or -1 if they lie in
// different components.
func (t *Tree) Dist(u, v uint32) int32 {
	if t.comp[u] != t.comp[v] {
		return -1
	}
	l := t.LCA(u, v)
	return t.depth[u] + t.depth[v] - 2*t.depth[l]
}

// StretchStats summarizes edge stretch over the whole edge set: for every
// original edge {u,v}, its stretch is Dist(u,v) (the edge has length 1).
type StretchStats struct {
	Edges int64
	Mean  float64
	Max   int32
	Total float64
}

// Stretch computes exact stretch statistics over every original edge using
// O(1) LCA queries.
func (t *Tree) Stretch() StretchStats {
	var st StretchStats
	for v := 0; v < t.G.NumVertices(); v++ {
		for _, u := range t.G.Neighbors(uint32(v)) {
			if uint32(v) >= u {
				continue
			}
			d := t.Dist(uint32(v), u)
			if d < 0 {
				continue // different components cannot happen for real edges
			}
			st.Edges++
			st.Total += float64(d)
			if d > st.Max {
				st.Max = d
			}
		}
	}
	if st.Edges > 0 {
		st.Mean = st.Total / float64(st.Edges)
	}
	return st
}
