// Package lowstretch builds low-stretch spanning trees with the
// decompose-and-contract scheme of Alon, Karp, Peleg and West (AKPW), using
// the paper's Partition as the decomposition step — the application the
// paper names as its main target (the tree-embedding pipeline behind the
// parallel SDD solvers of Blelloch et al.).
//
// Each level runs a low-diameter decomposition of the current (contracted)
// graph, adds every cluster's BFS tree to the spanning forest — mapped back
// to original edges — and contracts clusters into super-vertices. Because
// each level keeps only the O(β) fraction of cut edges, the hierarchy has
// O(log n / log(1/β))-ish depth and the resulting tree stretches an average
// edge by a polylog factor, versus the Θ(diameter) stretch a naive BFS tree
// can suffer.
package lowstretch

import (
	"errors"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// Tree is a spanning forest of the original graph with LCA-based distance
// queries.
type Tree struct {
	// G is the original graph.
	G *graph.Graph
	// Edges are the tree edges (original vertex ids).
	Edges []graph.Edge
	// Levels is the number of decompose-and-contract levels used.
	Levels int

	depth  []int32
	order  []int32 // first visit position of each vertex in the Euler tour
	euler  []uint32
	sparse [][]uint32 // sparse table over euler positions, min by depth
	comp   []int32    // connected component labels (forest support)
}

// Build constructs a low-stretch spanning forest of g with decomposition
// parameter beta at every level.
func Build(g *graph.Graph, beta float64, seed uint64) (*Tree, error) {
	if beta <= 0 || beta >= 1 {
		return nil, core.ErrBeta
	}
	n := g.NumVertices()
	t := &Tree{G: g}
	if n == 0 {
		return t, nil
	}

	// Annotated contracted edge: endpoints in the current contracted graph
	// plus the original edge it represents.
	type annEdge struct {
		u, v         uint32
		origU, origV uint32
	}
	cur := make([]annEdge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		cur = append(cur, annEdge{e.U, e.V, e.U, e.V})
	}
	curN := n

	for level := 0; ; level++ {
		if len(cur) == 0 {
			break
		}
		if level > 64 {
			return nil, errors.New("lowstretch: contraction failed to converge")
		}
		// Dedup parallel contracted edges, keeping the first annotation.
		type key uint64
		rep := make(map[key]annEdge, len(cur))
		plain := make([]graph.Edge, 0, len(cur))
		for _, e := range cur {
			a, b := e.u, e.v
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			k := key(uint64(a)<<32 | uint64(b))
			if _, ok := rep[k]; !ok {
				rep[k] = e
				plain = append(plain, graph.Edge{U: a, V: b})
			}
		}
		if len(plain) == 0 {
			break
		}
		cg, err := graph.FromEdges(curN, plain)
		if err != nil {
			return nil, err
		}
		d, err := core.Partition(cg, beta, core.Options{Seed: xrand.Mix(seed, uint64(level))})
		if err != nil {
			return nil, err
		}
		t.Levels++
		// Per-cluster BFS tree edges -> original tree edges.
		for v := 0; v < curN; v++ {
			p := d.Parent[v]
			if p == uint32(v) {
				continue
			}
			a, b := p, uint32(v)
			if a > b {
				a, b = b, a
			}
			e := rep[key(uint64(a)<<32|uint64(b))]
			t.Edges = append(t.Edges, graph.Edge{U: e.origU, V: e.origV})
		}
		// Contract: super-vertex per cluster center, dense renumbering.
		remap := make(map[uint32]uint32)
		for v := 0; v < curN; v++ {
			c := d.Center[v]
			if _, ok := remap[c]; !ok {
				remap[c] = uint32(len(remap))
			}
		}
		var next []annEdge
		for _, e := range cur {
			cu, cv := d.Center[e.u], d.Center[e.v]
			if cu == cv {
				continue
			}
			next = append(next, annEdge{remap[cu], remap[cv], e.origU, e.origV})
		}
		cur = next
		curN = len(remap)
		if curN <= 1 {
			break
		}
	}
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// BFSTree returns the baseline spanning forest: a plain BFS tree from the
// smallest vertex of each component. Used as the comparison arm of
// experiment E12.
func BFSTree(g *graph.Graph) (*Tree, error) {
	n := g.NumVertices()
	t := &Tree{G: g}
	visited := make([]bool, n)
	var queue []uint32
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], uint32(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					t.Edges = append(t.Edges, graph.Edge{U: v, V: u})
					queue = append(queue, u)
				}
			}
		}
	}
	t.Levels = 1
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// index builds depth arrays, the Euler tour and the sparse table for O(1)
// LCA queries, and verifies the edge set is acyclic and spanning.
func (t *Tree) index() error {
	n := t.G.NumVertices()
	if n == 0 {
		return nil
	}
	adj := make([][]uint32, n)
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	t.depth = make([]int32, n)
	t.order = make([]int32, n)
	t.comp = make([]int32, n)
	for i := range t.order {
		t.order[i] = -1
		t.comp[i] = -1
	}
	t.euler = t.euler[:0]
	comp := int32(0)
	visited := 0
	// Iterative DFS with an explicit stack; emits the Euler tour.
	type frame struct {
		v    uint32
		next int
	}
	for root := 0; root < n; root++ {
		if t.order[root] != -1 {
			continue
		}
		stack := []frame{{uint32(root), 0}}
		t.depth[root] = 0
		t.comp[root] = comp
		t.order[root] = int32(len(t.euler))
		t.euler = append(t.euler, uint32(root))
		visited++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(adj[f.v]) {
				u := adj[f.v][f.next]
				f.next++
				if t.order[u] != -1 {
					continue
				}
				t.depth[u] = t.depth[f.v] + 1
				t.comp[u] = comp
				t.order[u] = int32(len(t.euler))
				t.euler = append(t.euler, u)
				visited++
				stack = append(stack, frame{u, 0})
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					t.euler = append(t.euler, stack[len(stack)-1].v)
				}
			}
		}
		comp++
	}
	if visited != n {
		return errors.New("lowstretch: tree does not span the graph")
	}
	// Tree edge count check: acyclic + spanning per component.
	if len(t.Edges) != n-int(comp) {
		return errors.New("lowstretch: edge set is not a spanning forest")
	}
	t.buildSparse()
	return nil
}

func (t *Tree) buildSparse() {
	m := len(t.euler)
	if m == 0 {
		return
	}
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	t.sparse = make([][]uint32, levels)
	t.sparse[0] = make([]uint32, m)
	copy(t.sparse[0], t.euler)
	for k := 1; k < levels; k++ {
		span := 1 << k
		row := make([]uint32, m-span+1)
		prev := t.sparse[k-1]
		for i := range row {
			a, b := prev[i], prev[i+span/2]
			if t.depth[a] <= t.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		t.sparse[k] = row
	}
}

// LCA returns the lowest common ancestor of u and v, which must lie in the
// same component.
func (t *Tree) LCA(u, v uint32) uint32 {
	a, b := t.order[u], t.order[v]
	if a > b {
		a, b = b, a
	}
	span := int(b - a + 1)
	k := 0
	for 1<<(k+1) <= span {
		k++
	}
	x, y := t.sparse[k][a], t.sparse[k][int(b)-(1<<k)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

// Dist returns the tree distance between u and v, or -1 if they lie in
// different components.
func (t *Tree) Dist(u, v uint32) int32 {
	if t.comp[u] != t.comp[v] {
		return -1
	}
	l := t.LCA(u, v)
	return t.depth[u] + t.depth[v] - 2*t.depth[l]
}

// StretchStats summarizes edge stretch over the whole edge set: for every
// original edge {u,v}, its stretch is Dist(u,v) (the edge has length 1).
type StretchStats struct {
	Edges int64
	Mean  float64
	Max   int32
	Total float64
}

// Stretch computes exact stretch statistics over every original edge using
// O(1) LCA queries.
func (t *Tree) Stretch() StretchStats {
	var st StretchStats
	for v := 0; v < t.G.NumVertices(); v++ {
		for _, u := range t.G.Neighbors(uint32(v)) {
			if uint32(v) >= u {
				continue
			}
			d := t.Dist(uint32(v), u)
			if d < 0 {
				continue // different components cannot happen for real edges
			}
			st.Edges++
			st.Total += float64(d)
			if d > st.Max {
				st.Max = d
			}
		}
	}
	if st.Edges > 0 {
		st.Mean = st.Total / float64(st.Edges)
	}
	return st
}
