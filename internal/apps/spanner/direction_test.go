package spanner

import (
	"hash/fnv"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// fingerprint hashes the complete spanner output: the exact edge set of H
// in canonical order plus the tree/bridge split.
func fingerprint(s *Spanner) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put32(uint32(s.TreeEdges))
	put32(uint32(s.BridgeEdges))
	for _, e := range s.H.Edges() {
		put32(e.U)
		put32(e.V)
	}
	return h.Sum64()
}

var allDirections = []core.Direction{
	core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto,
}

// TestBuildPoolDirectionsBitIdentical is the determinism suite the spanner
// never had: the spanner edge set must be bit-identical at workers 1/2/8
// and under push/pull/auto, because Partition is and the bridge selection
// is a pure integer minimum over packed keys.
func TestBuildPoolDirectionsBitIdentical(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid2D(18, 22),
		"gnm":  graph.GNM(500, 2000, 11),
	}
	for name, g := range graphs {
		for _, seed := range []uint64{1, 42} {
			base, err := Build(g, 0.25, core.Options{
				Seed: seed, Workers: 1, Direction: core.DirectionForcePush, Pool: pool,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(base)
			for _, dir := range allDirections {
				for _, w := range []int{1, 2, 8} {
					s, err := Build(g, 0.25, core.Options{
						Seed: seed, Workers: w, Direction: dir, Pool: pool,
					})
					if err != nil {
						t.Fatal(err)
					}
					if got := fingerprint(s); got != want {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x want %#x",
							name, seed, dir, w, got, want)
					}
				}
			}
		}
	}
}

// TestBuildGolden pins one fixed spanner construction to a golden
// fingerprint so silent cross-version drift fails loudly. Update the
// constant only with an intentional, documented change to Partition's
// claim resolution or the bridge selection.
func TestBuildGolden(t *testing.T) {
	const golden = uint64(0xa9b8c1e38d53fc6f)
	g := graph.Grid2D(13, 17)
	for _, dir := range allDirections {
		for _, w := range []int{1, 2, 8} {
			s, err := Build(g, 0.3, core.Options{Seed: 5, Workers: w, Direction: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(s); got != golden {
				t.Fatalf("dir=%v workers=%d: fingerprint %#x want %#x", dir, w, got, golden)
			}
		}
	}
}
