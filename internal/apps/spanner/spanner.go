// Package spanner builds sparse spanners from low-diameter decompositions,
// one of the classical applications the paper's introduction cites (Cohen,
// SICOMP 1998). A single decomposition level yields an O(log n / β)-stretch
// spanner consisting of the per-cluster BFS trees plus one representative
// edge for every adjacent cluster pair.
//
// For an intra-cluster edge the detour through the cluster center has
// length at most 2·radius; for an inter-cluster edge {u,v} the detour
// through the representative edge between the two clusters has length at
// most 4·radius + 1. With radius O(log n/β), the stretch is O(log n/β)
// while the spanner keeps at most (n − #clusters) + #clusterPairs edges.
package spanner

import (
	"fmt"
	"sort"

	"mpx/internal/bfs"
	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// Spanner is a subgraph H of G with bounded multiplicative stretch.
type Spanner struct {
	// G is the original graph.
	G *graph.Graph
	// H is the spanner subgraph on the same vertex set.
	H *graph.Graph
	// Decomposition is the LDD the spanner was built from.
	Decomposition *core.Decomposition
	// TreeEdges and BridgeEdges count the two edge classes.
	TreeEdges, BridgeEdges int64
}

// Build constructs a spanner from one decomposition with parameter beta.
func Build(g *graph.Graph, beta float64, opts core.Options) (*Spanner, error) {
	d, err := core.Partition(g, beta, opts)
	if err != nil {
		return nil, err
	}
	var edges []graph.Edge
	var treeEdges int64
	for v := 0; v < g.NumVertices(); v++ {
		if p := d.Parent[v]; p != uint32(v) {
			edges = append(edges, graph.Edge{U: p, V: uint32(v)})
			treeEdges++
		}
	}
	// One representative edge per unordered pair of adjacent clusters; the
	// lexicographically smallest such edge, for determinism. Cluster pairs
	// and edges are packed into uint64 keys so the per-pair minimum is a
	// plain integer min (uint64 order == lexicographic (U,V) order) and the
	// emission order is a closure-free sort of the packed pair keys — the
	// output never depends on Go map iteration order.
	bridges := make(map[uint64]uint64)
	for v := 0; v < g.NumVertices(); v++ {
		cv := d.Center[v]
		for _, u := range g.Neighbors(uint32(v)) {
			cu := d.Center[u]
			if cu == cv || uint32(v) > u {
				continue
			}
			a, b := cv, cu
			if a > b {
				a, b = b, a
			}
			pair := uint64(a)<<32 | uint64(b)
			packed := uint64(v)<<32 | uint64(u)
			if old, ok := bridges[pair]; !ok || packed < old {
				bridges[pair] = packed
			}
		}
	}
	pairs := make([]uint64, 0, len(bridges))
	for pair := range bridges {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	for _, pair := range pairs {
		packed := bridges[pair]
		edges = append(edges, graph.Edge{U: uint32(packed >> 32), V: uint32(packed)})
	}
	bridgeEdges := int64(len(bridges))
	h, err := graph.FromEdgesDedup(g.NumVertices(), edges)
	if err != nil {
		return nil, err
	}
	return &Spanner{
		G:             g,
		H:             h,
		Decomposition: d,
		TreeEdges:     treeEdges,
		BridgeEdges:   bridgeEdges,
	}, nil
}

// StretchStats summarizes measured stretch over sampled original edges.
type StretchStats struct {
	Samples int
	Mean    float64
	Max     float64
	// TheoryBound is the 4·radius+1 worst-case bound from the construction.
	TheoryBound float64
}

// MeasureStretch samples up to maxSamples original edges uniformly and
// measures their stretch in the spanner: dist_H(u,v) / dist_G(u,v) with
// dist_G(u,v) = 1 for an edge. Each sample costs one BFS on H.
func (s *Spanner) MeasureStretch(maxSamples int, seed uint64) StretchStats {
	edges := s.G.Edges()
	if len(edges) == 0 {
		return StretchStats{}
	}
	rng := xrand.NewSplitMix64(seed)
	idx := rng.Perm(len(edges))
	if maxSamples > len(idx) {
		maxSamples = len(idx)
	}
	stats := StretchStats{
		Samples:     maxSamples,
		TheoryBound: float64(4*s.Decomposition.MaxRadius() + 1),
	}
	var sum float64
	for i := 0; i < maxSamples; i++ {
		e := edges[idx[i]]
		dist := bfs.Sequential(s.H, e.U)
		st := float64(dist[e.V])
		if dist[e.V] == bfs.Unreached {
			// Spanners preserve connectivity; this would be a bug.
			panic(fmt.Sprintf("spanner: edge {%d,%d} disconnected in spanner", e.U, e.V))
		}
		sum += st
		if st > stats.Max {
			stats.Max = st
		}
	}
	stats.Mean = sum / float64(maxSamples)
	return stats
}

// Size returns the number of spanner edges.
func (s *Spanner) Size() int64 { return s.H.NumEdges() }
