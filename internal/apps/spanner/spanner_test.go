package spanner

import (
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

func TestBuildOnGrid(t *testing.T) {
	g := graph.Grid2D(25, 25)
	s, err := Build(g, 0.2, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() >= g.NumEdges() {
		t.Errorf("spanner has %d edges, original %d — no sparsification", s.Size(), g.NumEdges())
	}
	if !graph.IsConnected(s.H) {
		t.Error("spanner of a connected graph must be connected")
	}
	st := s.MeasureStretch(50, 7)
	if st.Max > st.TheoryBound {
		t.Errorf("measured stretch %g exceeds theory bound %g", st.Max, st.TheoryBound)
	}
	if st.Mean < 1 {
		t.Errorf("mean stretch %g below 1", st.Mean)
	}
}

func TestBuildPreservesConnectivityOnFamilies(t *testing.T) {
	cases := []*graph.Graph{
		graph.GNM(200, 800, 3),
		graph.Complete(40),
		graph.Hypercube(7),
		graph.RMAT(8, 1500, 9),
	}
	for gi, g0 := range cases {
		g, _ := graph.LargestComponent(g0)
		s, err := Build(g, 0.3, core.Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsConnected(s.H) {
			t.Errorf("graph %d: spanner disconnected", gi)
		}
		if s.Size() > g.NumEdges() {
			t.Errorf("graph %d: spanner larger than graph", gi)
		}
	}
}

func TestSpannerEdgeClassesAccount(t *testing.T) {
	g := graph.Grid2D(20, 20)
	s, err := Build(g, 0.25, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tree edges = n - #clusters; bridges at most cluster pairs; dedup can
	// only shrink the union.
	wantTree := int64(g.NumVertices() - s.Decomposition.NumClusters())
	if s.TreeEdges != wantTree {
		t.Errorf("tree edges %d want %d", s.TreeEdges, wantTree)
	}
	if s.Size() > s.TreeEdges+s.BridgeEdges {
		t.Errorf("size %d exceeds tree+bridge %d", s.Size(), s.TreeEdges+s.BridgeEdges)
	}
}

func TestSpannerSparserAtLowerBeta(t *testing.T) {
	g := graph.Torus2D(30, 30)
	lo, err := Build(g, 0.05, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Build(g, 0.5, core.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Lower beta -> fewer clusters -> fewer bridges (on bounded-degree
	// graphs the bridge count tracks cluster adjacency).
	if lo.BridgeEdges >= hi.BridgeEdges {
		t.Errorf("bridges: lo=%d hi=%d, expected growth with beta", lo.BridgeEdges, hi.BridgeEdges)
	}
}

func TestBuildRejectsBadBeta(t *testing.T) {
	if _, err := Build(graph.Path(4), 0, core.Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestSpannerEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(0, nil)
	s, err := Build(g, 0.2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Error("empty graph spanner should be empty")
	}
	if st := s.MeasureStretch(10, 1); st.Samples != 0 {
		t.Error("no samples expected")
	}
}
