package bfs

import (
	"testing"

	"mpx/internal/graph"
)

func BenchmarkSequentialGrid(b *testing.B) {
	g := graph.Grid2D(400, 400)
	b.SetBytes(g.NumArcs() * 4)
	for i := 0; i < b.N; i++ {
		_ = Sequential(g, 0)
	}
}

func BenchmarkParallelGrid(b *testing.B) {
	g := graph.Grid2D(400, 400)
	b.SetBytes(g.NumArcs() * 4)
	for i := 0; i < b.N; i++ {
		_ = Parallel(g, 0, 0)
	}
}

func BenchmarkDirectionOptimizingRMAT(b *testing.B) {
	g := graph.RMAT(16, 500000, 1)
	for i := 0; i < b.N; i++ {
		_ = DirectionOptimizing(g, 0, 0)
	}
}

func BenchmarkParallelRMAT(b *testing.B) {
	g := graph.RMAT(16, 500000, 1)
	for i := 0; i < b.N; i++ {
		_ = Parallel(g, 0, 0)
	}
}

func BenchmarkMultiSource(b *testing.B) {
	g := graph.Grid2D(400, 400)
	sources := make([]uint32, 100)
	for i := range sources {
		sources[i] = uint32(i * 1600)
	}
	for i := 0; i < b.N; i++ {
		_ = ParallelMulti(g, sources, 0)
	}
}

func BenchmarkDijkstraWeighted(b *testing.B) {
	wg := graph.RandomWeights(graph.Grid2D(200, 200), 1, 10, 1)
	for i := 0; i < b.N; i++ {
		_ = DijkstraWeighted(wg, 0)
	}
}
