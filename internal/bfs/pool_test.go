package bfs

import (
	"math"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// TestParallelMultiPoolDeterminism runs the level-synchronous BFS on one
// explicit pool at worker counts 1, 2 and 8; distances, round counts and
// relaxed-edge counters must match the sequential reference and each
// other at every count.
func TestParallelMultiPoolDeterminism(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid2D(50, 50),
		"gnm":  graph.GNM(4000, 16000, 9),
	}
	for name, g := range graphs {
		want := Sequential(g, 0)
		var refRounds int
		var refRelaxed int64
		for i, w := range []int{1, 2, 8} {
			res := ParallelMultiPool(pool, g, []uint32{0}, w)
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("%s workers=%d: dist[%d]=%d want %d", name, w, v, res.Dist[v], want[v])
				}
			}
			if i == 0 {
				refRounds, refRelaxed = res.Rounds, res.Relaxed
			} else if res.Rounds != refRounds || res.Relaxed != refRelaxed {
				t.Fatalf("%s workers=%d: rounds/relaxed %d/%d differ from %d/%d",
					name, w, res.Rounds, res.Relaxed, refRounds, refRelaxed)
			}
		}
	}
}

// TestDirectionOptimizingPoolMatches runs the hybrid BFS on an explicit
// pool and checks distances against the sequential reference across
// worker counts.
func TestDirectionOptimizingPoolMatches(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	for _, g := range []*graph.Graph{
		graph.Grid2D(40, 40),
		graph.GNM(5000, 40000, 13),
	} {
		want := Sequential(g, 0)
		for _, w := range []int{1, 2, 8} {
			res := DirectionOptimizingPool(pool, g, 0, w)
			for v := range want {
				if res.Dist[v] != want[v] {
					t.Fatalf("workers=%d: dist[%d]=%d want %d", w, v, res.Dist[v], want[v])
				}
			}
		}
	}
}

// TestDeltaSteppingPoolMatchesDijkstra checks the pool-threaded bucket
// relaxation against the Dijkstra oracle.
func TestDeltaSteppingPoolMatchesDijkstra(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	wg := graph.RandomWeights(graph.Grid2D(25, 25), 1, 8, 21)
	want := DijkstraWeighted(wg, 0)
	init := make([]float64, wg.NumVertices())
	for i := range init {
		init[i] = math.Inf(1)
	}
	init[0] = 0
	for _, w := range []int{1, 2, 8} {
		res := DeltaSteppingMultiPool(pool, wg, init, 0.5, w)
		for v, d := range want {
			if math.IsInf(d, 1) {
				continue
			}
			if diff := res.Dist[v] - d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("workers=%d: dist[%d]=%g want %g", w, v, res.Dist[v], d)
			}
		}
	}
}
