package bfs

import (
	"math"
	"testing"
	"testing/quick"

	"mpx/internal/graph"
)

func TestSequentialPath(t *testing.T) {
	g := graph.Path(5)
	dist := Sequential(g, 0)
	for i, d := range dist {
		if d != int32(i) {
			t.Errorf("dist[%d]=%d", i, d)
		}
	}
}

func TestSequentialUnreachable(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dist := Sequential(g, 0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Error("unreachable vertices must be Unreached")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(20, 20),
		graph.GNM(300, 900, 2),
		graph.BinaryTree(255),
		graph.RMAT(8, 1500, 3),
		graph.Cycle(100),
	}
	for gi, g := range graphs {
		for _, w := range []int{1, 2, 4} {
			seq := Sequential(g, 0)
			par := Parallel(g, 0, w)
			for v := range seq {
				if seq[v] != par.Dist[v] {
					t.Fatalf("graph %d workers %d: dist[%d] %d vs %d", gi, w, v, par.Dist[v], seq[v])
				}
			}
		}
	}
}

func TestParallelParentsAreTreeEdges(t *testing.T) {
	g := graph.Grid2D(15, 15)
	res := Parallel(g, 7, 3)
	for v := range res.Parent {
		if res.Dist[v] <= 0 {
			continue
		}
		p := res.Parent[v]
		if !g.HasEdge(p, uint32(v)) {
			t.Fatalf("parent edge {%d,%d} missing", p, v)
		}
		if res.Dist[v] != res.Dist[p]+1 {
			t.Fatalf("dist[%d]=%d but parent dist %d", v, res.Dist[v], res.Dist[p])
		}
	}
}

func TestParallelMultiSource(t *testing.T) {
	g := graph.Path(10)
	res := ParallelMulti(g, []uint32{0, 9}, 2)
	for v := 0; v < 10; v++ {
		want := int32(v)
		if o := int32(9 - v); o < want {
			want = o
		}
		if res.Dist[v] != want {
			t.Errorf("dist[%d]=%d want %d", v, res.Dist[v], want)
		}
	}
}

func TestParallelMultiDuplicateSources(t *testing.T) {
	g := graph.Path(5)
	res := ParallelMulti(g, []uint32{2, 2, 2}, 1)
	if res.Dist[2] != 0 || res.Dist[0] != 2 {
		t.Errorf("dup sources: %v", res.Dist)
	}
}

func TestDirectionOptimizingMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(50),   // dense: triggers bottom-up immediately
		graph.Grid2D(25, 25), // sparse: stays top-down
		graph.GNM(200, 2000, 4),
		graph.Star(500),
	}
	for gi, g := range graphs {
		seq := Sequential(g, 0)
		hyb := DirectionOptimizing(g, 0, 2)
		for v := range seq {
			if seq[v] != hyb.Dist[v] {
				t.Fatalf("graph %d: dist[%d] %d vs %d", gi, v, hyb.Dist[v], seq[v])
			}
		}
	}
}

func TestRoundsEqualsEccentricity(t *testing.T) {
	g := graph.Path(17)
	res := Parallel(g, 0, 1)
	// Rounds counts frontier expansions, including the final expansion that
	// discovers nothing: eccentricity 16 means 17 expansions.
	if res.Rounds != 17 {
		t.Errorf("rounds=%d want 17", res.Rounds)
	}
	ecc, reached := Eccentricity(g, 0)
	if ecc != 16 || reached != 17 {
		t.Errorf("ecc=%d reached=%d", ecc, reached)
	}
}

func TestPseudoDiameterExactOnTrees(t *testing.T) {
	g := graph.Path(31)
	if d := PseudoDiameter(g, 15); d != 30 {
		t.Errorf("path pseudo-diameter %d want 30", d)
	}
	tree := graph.BinaryTree(63)
	// Complete binary tree of height 5: diameter 10.
	if d := PseudoDiameter(tree, 0); d != 10 {
		t.Errorf("tree pseudo-diameter %d want 10", d)
	}
}

func TestRelaxedCountsAllArcs(t *testing.T) {
	g := graph.Grid2D(10, 10)
	res := Parallel(g, 0, 2)
	if res.Relaxed != g.NumArcs() {
		t.Errorf("relaxed %d want %d (connected graph scans every arc once)",
			res.Relaxed, g.NumArcs())
	}
}

func TestDijkstraWeightedMatchesBFSOnUnitWeights(t *testing.T) {
	base := graph.Grid2D(12, 12)
	var wedges []graph.WeightedEdge
	for _, e := range base.Edges() {
		wedges = append(wedges, graph.WeightedEdge{U: e.U, V: e.V, W: 1})
	}
	wg, err := graph.FromWeightedEdges(base.NumVertices(), wedges)
	if err != nil {
		t.Fatal(err)
	}
	bd := Sequential(base, 0)
	dd := DijkstraWeighted(wg, 0)
	for v := range bd {
		if float64(bd[v]) != dd[v] {
			t.Fatalf("dist[%d]: bfs %d dijkstra %g", v, bd[v], dd[v])
		}
	}
}

func TestDijkstraWeightedTriangleInequality(t *testing.T) {
	base := graph.GNM(100, 300, 8)
	wg := graph.RandomWeights(base, 1, 5, 2)
	dist := DijkstraWeighted(wg, 0)
	for v := 0; v < wg.NumVertices(); v++ {
		if math.IsInf(dist[v], 1) {
			continue
		}
		nbrs, ws := wg.Neighbors(uint32(v))
		for i, u := range nbrs {
			if dist[u] > dist[v]+ws[i]+1e-9 {
				t.Fatalf("triangle inequality violated at edge {%d,%d}", v, u)
			}
		}
	}
}

func TestParallelQuickProperty(t *testing.T) {
	// Parallel BFS distance from a random source on a random graph always
	// matches sequential BFS.
	f := func(seed uint64, srcRaw uint16) bool {
		g := graph.GNM(80, 160, seed%1000)
		src := uint32(srcRaw) % 80
		seq := Sequential(g, src)
		par := Parallel(g, src, 3)
		for v := range seq {
			if seq[v] != par.Dist[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDirectionOptimizingRelaxedBounded(t *testing.T) {
	// On low-diameter graphs (the regime the Beamer heuristic targets) the
	// work counter must stay within a small constant of the arc count. On
	// high-diameter graphs (grids) only correctness is guaranteed — the
	// bottom-up sweeps there can rescan unvisited vertices per level, which
	// is why the implementation switches back to top-down when the frontier
	// shrinks; assert the switch-back keeps the blowup bounded by the
	// diameter, not n.
	lowDiam := []*graph.Graph{
		graph.Complete(100),
		graph.Star(500),
		graph.GNM(300, 4000, 1),
	}
	for _, g := range lowDiam {
		res := DirectionOptimizing(g, 0, 2)
		if res.Relaxed > 3*g.NumArcs() {
			t.Errorf("%v: relaxed %d exceeds 3x arcs %d", g, res.Relaxed, g.NumArcs())
		}
	}
	grid := graph.Grid2D(30, 30)
	res := DirectionOptimizing(grid, 0, 2)
	diam := int64(PseudoDiameter(grid, 0))
	if res.Relaxed > grid.NumArcs()*diam {
		t.Errorf("grid: relaxed %d exceeds arcs*diameter %d", res.Relaxed, grid.NumArcs()*diam)
	}
}
