// Package bfs provides breadth-first-search routines over the CSR graph
// substrate: a sequential reference, a level-synchronous parallel top-down
// BFS with CAS-claimed frontiers, a direction-optimizing hybrid in the style
// of Beamer et al. (SC 2012, cited as [8] by the paper), and a multi-source
// BFS with per-source delayed start times — the primitive the paper's
// Section 5 reduces the Partition algorithm to.
package bfs

import (
	"context"
	"math"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// Unreached marks vertices not reached by a search.
const Unreached int32 = -1

// ctxErr polls ctx at a round boundary; a nil ctx is never cancelled. The
// poll calls ctx.Err() directly rather than selecting on Done() so
// fault-injection contexts that trip on the Nth poll observe every round.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Sequential computes BFS distances from source; dist[v] == Unreached for
// unreachable vertices.
func Sequential(g *graph.Graph, source uint32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[source] = 0
	queue := make([]uint32, 0, 64)
	queue = append(queue, source)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreached {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Result carries the output of a parallel search.
type Result struct {
	Dist    []int32  // per-vertex distance, Unreached if not visited
	Parent  []uint32 // per-vertex BFS parent (self for sources/unreached)
	Rounds  int      // number of synchronous rounds executed (depth proxy)
	Relaxed int64    // directed edges examined (work proxy)
}

// Parallel computes BFS distances from source using level-synchronous
// top-down expansion with atomic frontier claiming across the given number
// of workers. The visit order within a round is nondeterministic but the
// distances (and Rounds/Relaxed counters) are not.
func Parallel(g *graph.Graph, source uint32, workers int) *Result {
	return ParallelMulti(g, []uint32{source}, workers)
}

// ParallelMulti is Parallel from a set of simultaneous sources (all at
// distance 0). Parents are the claiming neighbor; for equal-distance claims
// the parent is scheduling-dependent but the distance is not.
func ParallelMulti(g *graph.Graph, sources []uint32, workers int) *Result {
	return ParallelMultiPool(nil, g, sources, workers)
}

// ParallelMultiPool is ParallelMulti executing its rounds on the given
// persistent worker pool (nil means parallel.Default()). Per-round scratch
// — the per-worker claim buffers and the double-buffered frontier — is
// allocated once and reused across every round, so a steady-state round
// performs no O(n) allocation.
func ParallelMultiPool(pool *parallel.Pool, g *graph.Graph, sources []uint32, workers int) *Result {
	n := g.NumVertices()
	res := &Result{
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	state := make([]int32, n) // 0 = unvisited, 1 = claimed; CAS target
	pool.ForRange(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res.Dist[i] = Unreached
			res.Parent[i] = uint32(i)
		}
	})
	frontier := make([]uint32, 0, len(sources))
	for _, s := range sources {
		if atomic.CompareAndSwapInt32(&state[s], 0, 1) {
			res.Dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	var sc expandScratch
	var relaxed int64
	depth := int32(0)
	for len(frontier) > 0 {
		depth++
		next := expandTopDown(g, frontier, state, res.Dist, res.Parent, depth, workers, &relaxed, &sc, pool)
		sc.next = frontier[:0] // old frontier becomes the next output buffer
		frontier = next
		res.Rounds++
	}
	res.Relaxed = relaxed
	return res
}

// expandScratch is the reusable round state of the level-synchronous
// loops: per-worker claim buffers and the output frontier double buffer.
type expandScratch struct {
	buffers [][]uint32
	next    []uint32
}

// expandTopDown claims all unvisited neighbors of the frontier at distance
// depth, returning the new frontier. Per-worker buffers are compacted with
// an offset scan and a parallel copy into the scratch's reused output
// buffer (in worker order, as before).
func expandTopDown(g *graph.Graph, frontier []uint32, state []int32,
	dist []int32, parent []uint32, depth int32, workers int, relaxed *int64,
	sc *expandScratch, pool *parallel.Pool) []uint32 {

	w := parallel.Workers(workers, len(frontier))
	if cap(sc.buffers) < w {
		sc.buffers = make([][]uint32, w)
	}
	buffers := sc.buffers[:w]
	nf := len(frontier)
	pool.Run(w, func(k int) {
		lo := k * nf / w
		hi := (k + 1) * nf / w
		buf := buffers[k][:0]
		var local int64
		for i := lo; i < hi; i++ {
			v := frontier[i]
			for _, u := range g.Neighbors(v) {
				local++
				if atomic.LoadInt32(&state[u]) == 0 &&
					atomic.CompareAndSwapInt32(&state[u], 0, 1) {
					dist[u] = depth
					parent[u] = v
					buf = append(buf, u)
				}
			}
		}
		buffers[k] = buf
		atomic.AddInt64(relaxed, local)
	})
	next := pool.Concat(workers, sc.next[:0], buffers)
	sc.next = nil
	return next
}

// DirectionOptimizing runs the Beamer-style hybrid BFS: top-down expansion
// while the frontier is small, switching to bottom-up sweeps when the
// frontier's outgoing arc count exceeds 1/alpha of the remaining arcs, and
// back to top-down once the frontier shrinks below n/beta (without the
// switch-back, high-diameter graphs pay O(n·diameter) bottom-up scans).
// alpha=15, beta=24 are the conventional settings. The frontier and claim
// bitmaps are bit-packed (parallel.Bitset, shared with the frontier
// package's dense subsets) and reused across rounds, so a bottom-up round
// costs O(n/64) words to reset rather than O(n) bools.
func DirectionOptimizing(g *graph.Graph, source uint32, workers int) *Result {
	return DirectionOptimizingPool(nil, g, source, workers)
}

// DirectionOptimizingPool is DirectionOptimizing executing its rounds on
// the given persistent worker pool (nil means parallel.Default()), with
// the frontier buffers and bitmaps reused across rounds.
func DirectionOptimizingPool(pool *parallel.Pool, g *graph.Graph, source uint32, workers int) *Result {
	res, _ := DirectionOptimizingPoolCtx(nil, pool, g, source, workers)
	return res
}

// DirectionOptimizingPoolCtx is DirectionOptimizingPool with cancellation:
// ctx (nil means never cancelled) is polled between rounds — never inside
// an expansion kernel — and a cancelled search returns (nil, ctx.Err())
// with no partial result.
func DirectionOptimizingPoolCtx(ctx context.Context, pool *parallel.Pool, g *graph.Graph, source uint32, workers int) (*Result, error) {
	const alpha = 15
	const betaDown = 24
	n := g.NumVertices()
	res := &Result{
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	for i := range res.Dist {
		res.Dist[i] = Unreached
		res.Parent[i] = uint32(i)
	}
	inFrontier := parallel.NewBitset(n)
	claimed := parallel.NewBitset(n)
	state := make([]int32, n)
	res.Dist[source] = 0
	state[source] = 1
	frontier := []uint32{source}
	var sc expandScratch
	remainingArcs := g.NumArcs()
	depth := int32(0)
	var relaxed int64
	bottomUp := false
	for len(frontier) > 0 {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		depth++
		res.Rounds++
		fr := frontier
		frontierArcs := pool.ReduceInt64(workers, len(fr), func(i int) int64 {
			return int64(g.Degree(fr[i]))
		})
		remainingArcs -= frontierArcs
		if bottomUp {
			// Return to top-down once the frontier is small again.
			bottomUp = len(frontier) >= n/betaDown
		} else {
			bottomUp = frontierArcs*alpha > remainingArcs
		}
		if bottomUp {
			// Bottom-up: every unvisited vertex scans its neighbors for a
			// frontier member. Side effects live outside the claim bitset's
			// member scan, so the sweep runs once with a plain parallel
			// loop; each vertex sets only its own bit (atomically, since
			// 64 vertices share a word).
			parallel.FillPool(pool, workers, inFrontier.Words(), 0)
			for _, v := range frontier {
				inFrontier.Set(v)
			}
			parallel.FillPool(pool, workers, claimed.Words(), 0)
			pool.ForRange(workers, n, func(lo, hi int) {
				var local int64
				for i := lo; i < hi; i++ {
					if state[i] != 0 {
						continue
					}
					for _, u := range g.Neighbors(uint32(i)) {
						local++
						if inFrontier.Get(u) {
							res.Dist[i] = depth
							res.Parent[i] = u
							claimed.SetAtomic(uint32(i))
							break
						}
					}
				}
				atomic.AddInt64(&relaxed, local)
			})
			next := claimed.MembersInto(pool, workers, frontier[:0])
			nx := next
			pool.ForRange(workers, len(nx), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					state[nx[i]] = 1
				}
			})
			frontier = next
		} else {
			next := expandTopDown(g, frontier, state, res.Dist, res.Parent, depth, workers, &relaxed, &sc, pool)
			sc.next = frontier[:0]
			frontier = next
		}
	}
	res.Relaxed = relaxed
	return res, nil
}

// Eccentricity returns max_v dist(source, v) over reached vertices, and the
// number reached.
func Eccentricity(g *graph.Graph, source uint32) (ecc int32, reached int) {
	dist := Sequential(g, source)
	for _, d := range dist {
		if d != Unreached {
			reached++
			if d > ecc {
				ecc = d
			}
		}
	}
	return ecc, reached
}

// PseudoDiameter estimates the diameter with the standard double-sweep
// heuristic: BFS from start, then BFS from the farthest vertex found. For
// trees the result is exact.
func PseudoDiameter(g *graph.Graph, start uint32) int32 {
	dist := Sequential(g, start)
	far := start
	var best int32
	for v, d := range dist {
		if d != Unreached && d > best {
			best = d
			far = uint32(v)
		}
	}
	dist = Sequential(g, far)
	best = 0
	for _, d := range dist {
		if d != Unreached && d > best {
			best = d
		}
	}
	return best
}

// DijkstraWeighted computes single-source shortest-path distances on a
// weighted graph with a binary heap; used as the oracle for the weighted
// partition tests. Unreachable vertices get +Inf.
func DijkstraWeighted(g *graph.WeightedGraph, source uint32) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	h := &floatHeap{}
	h.push(heapItem{0, source})
	for h.len() > 0 {
		it := h.pop()
		if it.key > dist[it.v] {
			continue
		}
		nbrs, ws := g.Neighbors(it.v)
		for i, u := range nbrs {
			if nd := it.key + ws[i]; nd < dist[u] {
				dist[u] = nd
				h.push(heapItem{nd, u})
			}
		}
	}
	return dist
}

type heapItem struct {
	key float64
	v   uint32
}

// floatHeap is a minimal binary min-heap on (key, v); container/heap is
// avoided to keep the hot loop allocation-free.
type floatHeap struct {
	items []heapItem
}

func (h *floatHeap) len() int { return len(h.items) }

func (h *floatHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].key <= h.items[i].key {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *floatHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].key < h.items[small].key {
			small = l
		}
		if r < last && h.items[r].key < h.items[small].key {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
