package bfs

import (
	"math"
	"testing"
	"testing/quick"

	"mpx/internal/graph"
)

func unitWeighted(g *graph.Graph) *graph.WeightedGraph {
	var wedges []graph.WeightedEdge
	for _, e := range g.Edges() {
		wedges = append(wedges, graph.WeightedEdge{U: e.U, V: e.V, W: 1})
	}
	wg, err := graph.FromWeightedEdges(g.NumVertices(), wedges)
	if err != nil {
		panic(err)
	}
	return wg
}

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	cases := []*graph.WeightedGraph{
		graph.RandomWeights(graph.Grid2D(20, 20), 1, 10, 1),
		graph.RandomWeights(graph.GNM(300, 900, 2), 0.5, 5, 3),
		graph.RandomWeights(graph.Cycle(100), 1, 2, 4),
		unitWeighted(graph.BinaryTree(127)),
	}
	for gi, wg := range cases {
		for _, delta := range []float64{0, 0.5, 2, 100} {
			for _, workers := range []int{1, 4} {
				want := DijkstraWeighted(wg, 0)
				got := DeltaStepping(wg, 0, delta, workers)
				for v := range want {
					if math.Abs(want[v]-got.Dist[v]) > 1e-9 &&
						!(math.IsInf(want[v], 1) && math.IsInf(got.Dist[v], 1)) {
						t.Fatalf("graph %d delta=%g workers=%d: dist[%d]=%g want %g",
							gi, delta, workers, v, got.Dist[v], want[v])
					}
				}
			}
		}
	}
}

func TestDeltaSteppingParentsConsistent(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(15, 15), 1, 5, 7)
	res := DeltaStepping(wg, 3, 0, 2)
	for v := range res.Parent {
		if math.IsInf(res.Dist[v], 1) || uint32(v) == 3 {
			continue
		}
		p := res.Parent[v]
		nbrs, ws := wg.Neighbors(p)
		found := false
		for i, u := range nbrs {
			if u == uint32(v) && math.Abs(res.Dist[p]+ws[i]-res.Dist[v]) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("vertex %d: parent %d does not explain dist %g", v, p, res.Dist[v])
		}
	}
}

func TestDeltaSteppingUnreachable(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.RandomWeights(g, 1, 2, 1)
	res := DeltaStepping(wg, 0, 0, 1)
	for v := 2; v < 5; v++ {
		if !math.IsInf(res.Dist[v], 1) {
			t.Errorf("vertex %d should be unreachable", v)
		}
		if res.Parent[v] != uint32(v) {
			t.Errorf("unreachable vertex %d has foreign parent", v)
		}
	}
}

func TestDeltaSteppingMultiSource(t *testing.T) {
	wg := unitWeighted(graph.Path(10))
	init := make([]float64, 10)
	for i := range init {
		init[i] = math.Inf(1)
	}
	init[0] = 0.5
	init[9] = 0
	res := DeltaSteppingMulti(wg, init, 1, 2)
	for v := 0; v < 10; v++ {
		want := math.Min(0.5+float64(v), float64(9-v))
		if math.Abs(res.Dist[v]-want) > 1e-9 {
			t.Errorf("dist[%d]=%g want %g", v, res.Dist[v], want)
		}
	}
}

func TestDeltaSteppingEmptyGraph(t *testing.T) {
	wg, err := graph.FromWeightedEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := DeltaSteppingMulti(wg, nil, 0, 1)
	if len(res.Dist) != 0 {
		t.Error("empty graph should give empty result")
	}
}

func TestDeltaSteppingNoSources(t *testing.T) {
	wg := unitWeighted(graph.Path(5))
	init := make([]float64, 5)
	for i := range init {
		init[i] = math.Inf(1)
	}
	res := DeltaSteppingMulti(wg, init, 1, 1)
	for v, d := range res.Dist {
		if !math.IsInf(d, 1) {
			t.Errorf("vertex %d reached without sources", v)
		}
	}
}

func TestDeltaSteppingQuickAgainstDijkstra(t *testing.T) {
	f := func(seed uint64, deltaRaw uint8) bool {
		g := graph.GNM(60, 150, seed%500)
		wg := graph.RandomWeights(g, 0.1, 4, seed)
		delta := 0.1 + float64(deltaRaw)/64
		a := DijkstraWeighted(wg, 0)
		b := DeltaStepping(wg, 0, delta, 3)
		for v := range a {
			if math.IsInf(a[v], 1) != math.IsInf(b.Dist[v], 1) {
				return false
			}
			if !math.IsInf(a[v], 1) && math.Abs(a[v]-b.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeltaSteppingRoundsScaleWithDelta(t *testing.T) {
	// Smaller delta => more buckets => more rounds (the depth/work knob).
	wg := graph.RandomWeights(graph.Grid2D(40, 40), 1, 4, 5)
	small := DeltaStepping(wg, 0, 0.5, 2)
	large := DeltaStepping(wg, 0, 50, 2)
	if small.Rounds <= large.Rounds {
		t.Errorf("rounds: delta=0.5 gives %d, delta=50 gives %d; expected more rounds at smaller delta",
			small.Rounds, large.Rounds)
	}
}

// TestDeltaSteppingSubUlpWeightsAcyclic is the regression test for the
// parent-cycle bug: when an edge weight is below half an ulp of the
// neighbor's distance, dist[u]+w rounds to dist[u] and adjacent vertices
// end with bit-identical distances — each explains the other exactly, so
// the parent resolution must break the tie (strictly decreasing
// (dist, id)) instead of building a 2-cycle.
func TestDeltaSteppingSubUlpWeightsAcyclic(t *testing.T) {
	wg, err := graph.FromWeightedEdges(4, []graph.WeightedEdge{
		{U: 0, V: 1, W: 1.0},
		{U: 1, V: 2, W: 1e-30},
		{U: 2, V: 3, W: 1e-30},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []Direction{DirectionPush, DirectionPull, DirectionAuto} {
		init := make([]float64, 4)
		for i := range init {
			init[i] = math.Inf(1)
		}
		init[0] = 0
		res := DeltaSteppingMultiPoolDir(nil, wg, init, 0, 2, dir)
		// Walk every parent chain; it must reach a self-parent within n steps.
		for v := range res.Parent {
			x, steps := uint32(v), 0
			for res.Parent[x] != x {
				x = res.Parent[x]
				if steps++; steps > len(res.Parent) {
					t.Fatalf("dir=%v: parent chain from %d cycles (parents=%v)", dir, v, res.Parent)
				}
			}
		}
		// Every non-source parent must still explain its child's distance.
		for v, p := range res.Parent {
			if uint32(v) == p {
				continue
			}
			if math.Float64bits(res.Dist[v]) != math.Float64bits(res.Dist[p]+edgeW(t, wg, p, uint32(v))) {
				t.Fatalf("dir=%v: parent %d does not explain dist of %d", dir, p, v)
			}
		}
	}
}

func edgeW(t *testing.T, wg *graph.WeightedGraph, u, v uint32) float64 {
	t.Helper()
	nbrs, ws := wg.Neighbors(u)
	for i, x := range nbrs {
		if x == v {
			return ws[i]
		}
	}
	t.Fatalf("no edge %d-%d", u, v)
	return 0
}
