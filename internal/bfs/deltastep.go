package bfs

import (
	"context"
	"math"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// Direction selects how the weighted bucket-relaxation rounds traverse the
// graph; it mirrors the unweighted partition's core.Direction. Push rounds
// relax the out-edges of the frontier through an atomic minimum on the
// IEEE distance bits; pull rounds have every unsettled vertex scan its own
// in-neighborhood for frontier members and take the minimum candidate
// distance itself (only the owner writes its word, so the round is
// race-free). Both directions drive the same monotone min-plus fixpoint,
// and the final (Dist, Parent) output is bit-identical across directions
// and worker counts — see docs/determinism.md for the argument.
type Direction int

const (
	// DirectionAuto switches per round with a Beamer-style heuristic:
	// push while the frontier's outgoing arcs are few, pull once they
	// rival the unsettled cohort's arcs, and back as the bucket drains.
	DirectionAuto Direction = iota
	// DirectionPush pins every round to top-down atomic-min relaxation.
	DirectionPush
	// DirectionPull pins every round to bottom-up neighborhood scans.
	DirectionPull
)

// Beamer-style switch constants for the weighted rounds, recalibrated like
// the unweighted partition's: a pull round pays the arcs of the whole
// unsettled cohort (it cannot early-exit the scan, the true minimum is
// needed), so it only wins once the frontier's arcs are a sizable fraction
// of the cohort's and the frontier itself is dense.
const (
	wpullEnter   = 2 // enter pull when frontierArcs*wpullEnter > unsettledArcs
	wpullKeep    = 4 // stay pulling while frontierArcs*wpullKeep > unsettledArcs
	wpullMinFrac = 8 // and only when the frontier holds > n/wpullMinFrac vertices
)

// DeltaStepping computes single-source shortest paths on a positively
// weighted graph with the Meyer–Sanders Δ-stepping algorithm: vertices are
// bucketed by ⌊dist/Δ⌋ and each bucket is settled by parallel relaxation
// rounds. It is the parallel engine behind the weighted partition
// experiment (the paper's Section 6 notes that parallel depth in the
// weighted setting is the open question — Δ-stepping is the standard
// practical answer, and the experiment measures its round count).
//
// delta <= 0 picks the common heuristic Δ = max weight / average degree,
// clamped to at least the minimum edge weight.
func DeltaStepping(g *graph.WeightedGraph, source uint32, delta float64, workers int) *WeightedResult {
	init := make([]float64, g.NumVertices())
	for i := range init {
		init[i] = math.Inf(1)
	}
	init[source] = 0
	return DeltaSteppingMulti(g, init, delta, workers)
}

// DeltaSteppingMulti is Δ-stepping from an implicit super-source: init[v]
// gives the starting distance of v (+Inf for non-sources). This is exactly
// the shifted-shortest-path primitive of the paper's Section 5 lifted to
// weighted graphs: PartitionWeightedParallel passes init[u] = δ_max − δ_u.
func DeltaSteppingMulti(g *graph.WeightedGraph, init []float64, delta float64, workers int) *WeightedResult {
	return DeltaSteppingMultiPool(nil, g, init, delta, workers)
}

// DeltaSteppingMultiPool is DeltaSteppingMulti with the bucket-relaxation
// rounds executing on the given persistent worker pool (nil means
// parallel.Default()) and automatic per-round direction switching; the
// per-worker relaxation buffers are reused across rounds.
func DeltaSteppingMultiPool(pool *parallel.Pool, g *graph.WeightedGraph, init []float64, delta float64, workers int) *WeightedResult {
	return DeltaSteppingMultiPoolDir(pool, g, init, delta, workers, DirectionAuto)
}

// DeltaSteppingMultiPoolDir is the full engine: Δ-stepping from the init
// distances with the given traversal Direction. Distances converge to the
// unique fixpoint of dist[v] = min(init[v], min_u dist[u]+w(u,v)) — every
// relaxation order reaches the same IEEE bit patterns because the float
// additions are identical and min never rounds — and parents are then
// recovered by a single deterministic pull pass (resolveParents), so the
// (Dist, Parent) output is bit-identical across directions and worker
// counts. The Rounds and Relaxed counters describe the schedule actually
// executed and may differ between directions.
func DeltaSteppingMultiPoolDir(pool *parallel.Pool, g *graph.WeightedGraph, init []float64, delta float64, workers int, dir Direction) *WeightedResult {
	res, _ := DeltaSteppingMultiPoolDirCtx(nil, pool, g, init, delta, workers, dir)
	return res
}

// DeltaSteppingMultiPoolDirCtx is DeltaSteppingMultiPoolDir with
// cancellation: ctx (nil means never cancelled) is polled between
// bucket-relaxation rounds — never inside a relaxation kernel — and a
// cancelled search returns (nil, ctx.Err()) with no partial result.
func DeltaSteppingMultiPoolDirCtx(ctx context.Context, pool *parallel.Pool, g *graph.WeightedGraph, init []float64, delta float64, workers int, dir Direction) (*WeightedResult, error) {
	n := g.NumVertices()
	res := &WeightedResult{
		Dist:   make([]float64, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return res, nil
	}
	minW, maxW := math.Inf(1), 0.0
	var arcs int64
	for v := 0; v < n; v++ {
		_, ws := g.Neighbors(uint32(v))
		for _, w := range ws {
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			arcs++
		}
	}
	if delta <= 0 {
		if arcs == 0 {
			delta = 1
		} else {
			avgDeg := float64(arcs) / float64(n)
			delta = maxW / math.Max(avgDeg, 1)
			if delta < minW {
				delta = minW
			}
		}
	}
	for i := range res.Dist {
		res.Dist[i] = init[i]
		res.Parent[i] = uint32(i)
	}

	// distBits holds the distance as atomically-updatable bits; positive
	// float64 ordering matches uint64 ordering of their IEEE bits.
	distBits := make([]uint64, n)
	for i := range distBits {
		distBits[i] = math.Float64bits(res.Dist[i])
	}

	bucketOf := func(d float64) int { return int(d / delta) }
	var buckets [][]uint32
	inBucket := make([]int32, n) // bucket index+1 the vertex was last queued in
	for v := 0; v < n; v++ {
		if !math.IsInf(init[v], 1) {
			b := bucketOf(init[v])
			for b >= len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[b] = append(buckets[b], uint32(v))
			inBucket[v] = int32(b) + 1
		}
	}
	if len(buckets) == 0 {
		return res, nil
	}

	relaxed := int64(0)
	sc := relaxScratch{cohortCur: -1, unsettledArcs: arcs, stamp: make([]int32, n)}
	push := func(v uint32, b int) {
		for b >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
	}
	pulling := false
	cur := 0
	for cur < len(buckets) {
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		// Settle bucket cur with relaxation rounds until it stops changing.
		frontier := buckets[cur]
		buckets[cur] = nil
		for len(frontier) > 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			res.Rounds++
			switch dir {
			case DirectionPush:
				pulling = false
			case DirectionPull:
				pulling = true
			default:
				// The arc count costs a reduction over the frontier, so it
				// is only computed when the cheap size gate leaves pull
				// reachable (or a pull streak needs its keep check); thin
				// frontiers stay on push for free.
				fr := frontier
				if pulling || len(fr) > n/wpullMinFrac {
					frontierArcs := pool.ReduceInt64(workers, len(fr), func(i int) int64 {
						return int64(g.Degree(fr[i]))
					})
					if pulling {
						pulling = frontierArcs*wpullKeep > sc.unsettledArcs
					} else {
						pulling = frontierArcs*wpullEnter > sc.unsettledArcs
					}
				} else {
					pulling = false
				}
			}
			if pulling {
				ensureCohort(pool, g, distBits, delta, cur, workers, &sc)
				frontier = pullFrontier(g, frontier, distBits, cur, workers,
					&relaxed, push, inBucket, bucketOf, &sc, pool)
			} else {
				frontier = relaxFrontier(g, frontier, distBits, cur, workers,
					&relaxed, push, inBucket, bucketOf, &sc, pool)
			}
		}
		cur++
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(distBits[v])
	}
	resolveParents(pool, g, init, res.Dist, res.Parent, workers)
	res.Relaxed = relaxed
	return res, nil
}

// WeightedResult is the output of a weighted parallel search.
type WeightedResult struct {
	Dist    []float64
	Parent  []uint32
	Rounds  int
	Relaxed int64
}

// enq records a distance improvement: vertex v now falls in bucket b.
type enq struct {
	v uint32
	b int
}

// relaxScratch is the reusable round state of the bucket relaxation:
// per-worker improvement buffers, the double-buffered same-bucket output
// frontier, the stamp array backing the allocation-free dedup, and the
// pull-side frontier bitmap and unsettled cohort.
type relaxScratch struct {
	buffers [][]enq
	same    [2][]uint32
	flip    int
	stamp   []int32
	epoch   int32
	// inFrontier is the bit-packed frontier membership map pull rounds scan
	// against (same parallel.Bitset the unweighted partition and the
	// frontier package's dense subsets build on).
	inFrontier *parallel.Bitset
	// cohort is the unsettled vertex list pull rounds iterate: every vertex
	// whose tentative distance falls in the current or a later bucket. It
	// only shrinks (when the bucket clock advances), so it is filtered, not
	// rebuilt, and double-buffered through cohortSpare.
	cohort        []uint32
	cohortSpare   []uint32
	cohortCur     int
	unsettledArcs int64
}

// collect merges the per-worker improvement buffers: improvements staying
// in (or before) the current bucket become the next same-bucket frontier
// (double-buffered against the one just consumed), later ones are enqueued
// into their buckets. Dedup is needed only after racing push rounds, where
// several proposers can improve one vertex in the same round; pull rounds
// append each vertex at most once (by its owner).
func (sc *relaxScratch) collect(buffers [][]enq, cur int, push func(uint32, int), inBucket []int32, needDedup bool) []uint32 {
	same := sc.same[sc.flip][:0]
	sc.flip ^= 1
	for _, buf := range buffers {
		for _, e := range buf {
			if e.b <= cur {
				// Still in (or before) the current bucket: re-relax now.
				same = append(same, e.v)
			} else if inBucket[e.v] != int32(e.b)+1 {
				inBucket[e.v] = int32(e.b) + 1
				push(e.v, e.b)
			}
		}
	}
	if needDedup {
		same = sc.dedup(same)
	}
	sc.same[sc.flip^1] = same[:0]
	return same
}

// dedup removes duplicate vertex ids with an epoch-stamped array (a vertex
// improved by several frontier members in one round appears once in the
// next round); no per-round allocation, unlike a map.
func (sc *relaxScratch) dedup(vs []uint32) []uint32 {
	if len(vs) < 2 {
		return vs
	}
	if sc.epoch == math.MaxInt32 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	out := vs[:0]
	for _, v := range vs {
		if sc.stamp[v] != sc.epoch {
			sc.stamp[v] = sc.epoch
			out = append(out, v)
		}
	}
	return out
}

// relaxFrontier is the push (top-down) round: it relaxes all edges out of
// the frontier, lowering target distances with CAS on the IEEE bits
// (order-preserving for non-negative floats). The relaxation is a fixpoint
// iteration, so races only cost extra rounds, never wrong distances;
// parents are not tracked here — they are recovered deterministically from
// the settled distances by resolveParents.
func relaxFrontier(g *graph.WeightedGraph, frontier []uint32, distBits []uint64,
	cur int, workers int, relaxed *int64,
	push func(uint32, int), inBucket []int32, bucketOf func(float64) int,
	sc *relaxScratch, pool *parallel.Pool) []uint32 {

	w := parallel.Workers(workers, len(frontier))
	if cap(sc.buffers) < w {
		sc.buffers = make([][]enq, w)
	}
	buffers := sc.buffers[:w]
	nf := len(frontier)
	pool.Run(w, func(k int) {
		lo := k * nf / w
		hi := (k + 1) * nf / w
		buf := buffers[k][:0]
		var local int64
		for i := lo; i < hi; i++ {
			v := frontier[i]
			dv := math.Float64frombits(atomic.LoadUint64(&distBits[v]))
			nbrs, ws := g.Neighbors(v)
			for j, u := range nbrs {
				local++
				nd := dv + ws[j]
				for {
					oldBits := atomic.LoadUint64(&distBits[u])
					if math.Float64frombits(oldBits) <= nd {
						break
					}
					if atomic.CompareAndSwapUint64(&distBits[u], oldBits, math.Float64bits(nd)) {
						buf = append(buf, enq{u, bucketOf(nd)})
						break
					}
				}
			}
		}
		buffers[k] = buf
		atomic.AddInt64(relaxed, local)
	})
	return sc.collect(buffers, cur, push, inBucket, true)
}

// pullFrontier is the pull (bottom-up) round: every vertex of the
// unsettled cohort scans its own neighborhood for frontier members and
// takes the minimum candidate distance serially — the same min the push
// round races through CAS, computed race-free because only the owning
// vertex writes its distance word. Frontier membership is a bit-packed
// parallel.Bitset reset in O(n/64).
func pullFrontier(g *graph.WeightedGraph, frontier []uint32, distBits []uint64,
	cur int, workers int, relaxed *int64,
	push func(uint32, int), inBucket []int32, bucketOf func(float64) int,
	sc *relaxScratch, pool *parallel.Pool) []uint32 {

	n := g.NumVertices()
	if sc.inFrontier == nil {
		sc.inFrontier = parallel.NewBitset(n)
	} else {
		parallel.FillPool(pool, workers, sc.inFrontier.Words(), 0)
	}
	inF := sc.inFrontier
	fr := frontier
	pool.ForRange(workers, len(fr), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			inF.SetAtomic(fr[i])
		}
	})
	cohort := sc.cohort
	w := parallel.Workers(workers, len(cohort))
	if cap(sc.buffers) < w {
		sc.buffers = make([][]enq, w)
	}
	buffers := sc.buffers[:w]
	nc := len(cohort)
	pool.Run(w, func(k int) {
		lo := k * nc / w
		hi := (k + 1) * nc / w
		buf := buffers[k][:0]
		var local int64
		for i := lo; i < hi; i++ {
			u := cohort[i]
			du := math.Float64frombits(atomic.LoadUint64(&distBits[u]))
			best := du
			nbrs, ws := g.Neighbors(u)
			for j, v := range nbrs {
				if !inF.Get(v) {
					continue
				}
				local++
				if cand := math.Float64frombits(atomic.LoadUint64(&distBits[v])) + ws[j]; cand < best {
					best = cand
				}
			}
			if best < du {
				atomic.StoreUint64(&distBits[u], math.Float64bits(best))
				buf = append(buf, enq{u, bucketOf(best)})
			}
		}
		buffers[k] = buf
		atomic.AddInt64(relaxed, local)
	})
	return sc.collect(buffers, cur, push, inBucket, false)
}

// ensureCohort (re)builds the pull cohort: the unsettled vertices, i.e.
// those whose current tentative distance falls in bucket cur or later
// (+Inf included). The unsettled set is stable within one bucket —
// settlement happens only when the bucket clock advances — so consecutive
// pull rounds (and push rounds in between) reuse the list; on a clock
// advance the previous cohort is filtered in place (it only ever shrinks),
// and the unsettled arc count driving the Beamer switch is refreshed.
func ensureCohort(pool *parallel.Pool, g *graph.WeightedGraph, distBits []uint64,
	delta float64, cur int, workers int, sc *relaxScratch) {

	unsettled := func(v uint32) bool {
		d := math.Float64frombits(distBits[v])
		return math.IsInf(d, 1) || int(d/delta) >= cur
	}
	switch {
	case sc.cohort == nil:
		sc.cohort = pool.PackInto(workers, len(distBits), func(i int) bool {
			return unsettled(uint32(i))
		}, sc.cohortSpare)
		sc.cohortSpare = nil
	case sc.cohortCur != cur:
		old := sc.cohort
		sc.cohort = pool.FilterUint32(workers, old, unsettled, sc.cohortSpare)
		sc.cohortSpare = old[:0]
	default:
		return
	}
	sc.cohortCur = cur
	co := sc.cohort
	sc.unsettledArcs = pool.ReduceInt64(workers, len(co), func(i int) int64 {
		return int64(g.Degree(co[i]))
	})
}

// resolveParents recovers the shortest-path forest from the settled
// distances in one deterministic pull pass: every reached non-source
// vertex v takes the minimum packed (candidate distance bits, proposer id)
// key over its in-neighborhood — candidate u proposes key
// (Float64bits(dist[u]+w(u,v)), u), compared lexicographically — and
// adopts the winner as parent when its candidate distance equals dist[v]
// bit-exactly. At the fixpoint such a witness normally exists (the winning
// relaxation computed dist[v] as dist[u]+w from u's final distance, the
// identical float expression).
//
// Acyclicity needs care in floating point: when an edge weight is below
// half an ulp of the neighbor's distance, dist[u]+w rounds to dist[u], so
// adjacent vertices can hold bit-equal distances and each would explain
// the other. A candidate is therefore admitted only if it is strictly
// closer than v, or bit-equal with a smaller id — parent chains then
// strictly decrease (dist, id) lexicographically, so the forest is
// acyclic; a vertex whose only witnesses are equal-distance higher ids
// keeps itself as parent (it roots its own tree, still a valid forest).
// Sources (init[v] == dist[v]) and unreached vertices parent themselves.
// Because the pass is a pure function of the deterministic distances,
// Parent is bit-identical across worker counts and traversal directions,
// which is what makes the weighted partition's center assignment
// deterministic by construction.
func resolveParents(pool *parallel.Pool, g *graph.WeightedGraph, init, dist []float64, parent []uint32, workers int) {
	n := g.NumVertices()
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			parent[v] = uint32(v)
			dv := dist[v]
			if math.IsInf(dv, 1) || init[v] == dv {
				continue // unreached, or the vertex's own start won
			}
			dvBits := math.Float64bits(dv)
			bestBits := ^uint64(0)
			bestU := uint32(v)
			nbrs, ws := g.Neighbors(uint32(v))
			for j, u := range nbrs {
				db := math.Float64bits(dist[u])
				if db > dvBits || (db == dvBits && u >= uint32(v)) {
					continue // would not strictly decrease (dist, id)
				}
				cb := math.Float64bits(dist[u] + ws[j])
				if cb < bestBits || (cb == bestBits && u < bestU) {
					bestBits, bestU = cb, u
				}
			}
			if bestBits == dvBits {
				parent[v] = bestU
			}
		}
	})
}
