package bfs

import (
	"math"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// DeltaStepping computes single-source shortest paths on a positively
// weighted graph with the Meyer–Sanders Δ-stepping algorithm: vertices are
// bucketed by ⌊dist/Δ⌋ and each bucket is settled by parallel relaxation
// rounds. It is the parallel engine behind the weighted partition
// experiment (the paper's Section 6 notes that parallel depth in the
// weighted setting is the open question — Δ-stepping is the standard
// practical answer, and the experiment measures its round count).
//
// delta <= 0 picks the common heuristic Δ = max weight / average degree,
// clamped to at least the minimum edge weight.
func DeltaStepping(g *graph.WeightedGraph, source uint32, delta float64, workers int) *WeightedResult {
	init := make([]float64, g.NumVertices())
	for i := range init {
		init[i] = math.Inf(1)
	}
	init[source] = 0
	return DeltaSteppingMulti(g, init, delta, workers)
}

// DeltaSteppingMulti is Δ-stepping from an implicit super-source: init[v]
// gives the starting distance of v (+Inf for non-sources). This is exactly
// the shifted-shortest-path primitive of the paper's Section 5 lifted to
// weighted graphs: PartitionWeightedParallel passes init[u] = δ_max − δ_u.
func DeltaSteppingMulti(g *graph.WeightedGraph, init []float64, delta float64, workers int) *WeightedResult {
	return DeltaSteppingMultiPool(nil, g, init, delta, workers)
}

// DeltaSteppingMultiPool is DeltaSteppingMulti with the bucket-relaxation
// rounds executing on the given persistent worker pool (nil means
// parallel.Default()); the per-worker relaxation buffers are reused across
// rounds.
func DeltaSteppingMultiPool(pool *parallel.Pool, g *graph.WeightedGraph, init []float64, delta float64, workers int) *WeightedResult {
	n := g.NumVertices()
	res := &WeightedResult{
		Dist:   make([]float64, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return res
	}
	minW, maxW := math.Inf(1), 0.0
	var arcs int64
	for v := 0; v < n; v++ {
		_, ws := g.Neighbors(uint32(v))
		for _, w := range ws {
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			arcs++
		}
	}
	if delta <= 0 {
		if arcs == 0 {
			delta = 1
		} else {
			avgDeg := float64(arcs) / float64(n)
			delta = maxW / math.Max(avgDeg, 1)
			if delta < minW {
				delta = minW
			}
		}
	}
	for i := range res.Dist {
		res.Dist[i] = init[i]
		res.Parent[i] = uint32(i)
	}

	// distBits holds the distance as atomically-updatable bits; positive
	// float64 ordering matches uint64 ordering of their IEEE bits.
	distBits := make([]uint64, n)
	for i := range distBits {
		distBits[i] = math.Float64bits(res.Dist[i])
	}
	parentW := make([]uint64, n)
	for i := range parentW {
		parentW[i] = uint64(i) // sources (and unreached) parent themselves
	}

	bucketOf := func(d float64) int { return int(d / delta) }
	var buckets [][]uint32
	inBucket := make([]int32, n) // bucket index+1 the vertex was last queued in
	for v := 0; v < n; v++ {
		if !math.IsInf(init[v], 1) {
			b := bucketOf(init[v])
			for b >= len(buckets) {
				buckets = append(buckets, nil)
			}
			buckets[b] = append(buckets[b], uint32(v))
			inBucket[v] = int32(b) + 1
		}
	}
	if len(buckets) == 0 {
		return res
	}

	relaxed := int64(0)
	var sc relaxScratch
	push := func(v uint32, b int) {
		for b >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
	}
	cur := 0
	for cur < len(buckets) {
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		// Settle bucket cur with light-edge rounds until it stops changing.
		frontier := buckets[cur]
		buckets[cur] = nil
		for len(frontier) > 0 {
			res.Rounds++
			next := relaxFrontier(g, frontier, distBits, parentW, delta, cur, workers, &relaxed,
				push, inBucket, bucketOf, &sc, pool)
			frontier = next
		}
		cur++
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = math.Float64frombits(atomic.LoadUint64(&distBits[v]))
		res.Parent[v] = uint32(atomic.LoadUint64(&parentW[v]))
		if math.IsInf(res.Dist[v], 1) {
			res.Parent[v] = uint32(v)
		}
	}
	res.Relaxed = relaxed
	return res
}

// WeightedResult is the output of a weighted parallel search.
type WeightedResult struct {
	Dist    []float64
	Parent  []uint32
	Rounds  int
	Relaxed int64
}

// enq records a distance improvement: vertex v now falls in bucket b.
type enq struct {
	v uint32
	b int
}

// relaxScratch is the reusable round state of the bucket relaxation:
// per-worker improvement buffers and the double-buffered same-bucket
// output frontier.
type relaxScratch struct {
	buffers [][]enq
	same    [2][]uint32
	flip    int
}

// relaxFrontier relaxes all edges out of the frontier, returning vertices
// whose new distance stays in bucket `cur` (they must be re-relaxed this
// bucket); vertices falling in later buckets are enqueued via push.
//
// Distances are lowered with CAS on the IEEE bits (order-preserving for
// non-negative floats). The relaxation is a fixpoint iteration, so races
// only cause extra rounds, never wrong distances; parents are written by
// the CAS winner and re-written on any later improvement, so the final
// parent matches the final distance.
func relaxFrontier(g *graph.WeightedGraph, frontier []uint32, distBits, parentW []uint64,
	delta float64, cur int, workers int, relaxed *int64,
	push func(uint32, int), inBucket []int32, bucketOf func(float64) int,
	sc *relaxScratch, pool *parallel.Pool) []uint32 {

	w := parallel.Workers(workers, len(frontier))
	if cap(sc.buffers) < w {
		sc.buffers = make([][]enq, w)
	}
	buffers := sc.buffers[:w]
	nf := len(frontier)
	pool.Run(w, func(k int) {
		lo := k * nf / w
		hi := (k + 1) * nf / w
		buf := buffers[k][:0]
		var local int64
		for i := lo; i < hi; i++ {
			v := frontier[i]
			dv := math.Float64frombits(atomic.LoadUint64(&distBits[v]))
			nbrs, ws := g.Neighbors(v)
			for j, u := range nbrs {
				local++
				nd := dv + ws[j]
				for {
					oldBits := atomic.LoadUint64(&distBits[u])
					if math.Float64frombits(oldBits) <= nd {
						break
					}
					if atomic.CompareAndSwapUint64(&distBits[u], oldBits, math.Float64bits(nd)) {
						atomic.StoreUint64(&parentW[u], uint64(v))
						buf = append(buf, enq{u, bucketOf(nd)})
						break
					}
				}
			}
		}
		buffers[k] = buf
		atomic.AddInt64(relaxed, local)
	})

	// The same-bucket output double-buffers against the frontier we just
	// read (which may be the previous round's output).
	same := sc.same[sc.flip][:0]
	sc.flip ^= 1
	for _, buf := range buffers {
		for _, e := range buf {
			if e.b <= cur {
				// Still in (or before) the current bucket: re-relax now.
				same = append(same, e.v)
			} else if inBucket[e.v] != int32(e.b)+1 {
				inBucket[e.v] = int32(e.b) + 1
				push(e.v, e.b)
			}
		}
	}
	same = dedup(same)
	sc.same[sc.flip^1] = same[:0]
	return same
}

// dedup removes duplicate vertex ids (a vertex improved by several frontier
// members in one round appears once in the next round).
func dedup(vs []uint32) []uint32 {
	if len(vs) < 2 {
		return vs
	}
	seen := make(map[uint32]struct{}, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}
