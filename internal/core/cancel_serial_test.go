package core

import (
	"context"
	"errors"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel/faultpool"
)

// The serial reference partitions poll Options.Ctx (key advances for the
// integer-round Dijkstra, a fixed settle cadence for the float ones) and
// the serial baselines poll an explicit ctx at their round boundaries —
// so -timeout and service deadlines apply to every -algo, not just the
// parallel engines. These tests pin the all-or-nothing contract: a
// cancelled run returns (nil, context.Canceled), a completed run under a
// never-tripping fault context is bit-identical to an uncancelled one.

func sameDecomp(a, b *Decomposition) bool {
	if len(a.Center) != len(b.Center) {
		return false
	}
	for i := range a.Center {
		if a.Center[i] != b.Center[i] || a.Dist[i] != b.Dist[i] || a.Parent[i] != b.Parent[i] {
			return false
		}
	}
	return true
}

func TestSerialPartitionsCancelAtFirstPoll(t *testing.T) {
	g := graph.Grid2D(40, 40)
	wg := graph.RandomWeights(g, 1, 4, 2)
	runs := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"sequential", func(ctx context.Context) error {
			d, err := PartitionSequential(g, 0.2, Options{Seed: 1, Ctx: ctx})
			if err == nil && d == nil {
				return errors.New("nil decomposition without error")
			}
			return err
		}},
		{"exact", func(ctx context.Context) error {
			_, err := PartitionExact(g, 0.2, Options{Seed: 1, Ctx: ctx})
			return err
		}},
		{"weighted-serial", func(ctx context.Context) error {
			_, err := PartitionWeighted(wg, 0.2, Options{Seed: 1, Ctx: ctx})
			return err
		}},
		{"ballgrow", func(ctx context.Context) error {
			_, err := BallGrowingCtx(ctx, g, 0.2, 1)
			return err
		}},
		{"iterative", func(ctx context.Context) error {
			_, err := PartitionIterativeCtx(ctx, g, 0.2, 1, 1)
			return err
		}},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			cc := faultpool.CancelAtCheck(1)
			if err := tc.run(cc); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancel at first poll: err=%v, want context.Canceled", err)
			}
			if cc.Polls() == 0 {
				t.Fatal("serial run never polled the context")
			}
		})
	}
}

// TestSerialPartitionsCancelMidRunAndRetry cancels each serial algorithm
// at a mid-run boundary, then retries uncancelled and checks the retry is
// bit-identical to a never-cancelled baseline (no state leaks between
// attempts — the functions stay pure).
func TestSerialPartitionsCancelMidRunAndRetry(t *testing.T) {
	g := graph.Grid2D(35, 30)
	base := func(ctx context.Context) (*Decomposition, error) {
		return PartitionSequential(g, 0.15, Options{Seed: 7, Ctx: ctx})
	}
	// Probe the boundary count, then cancel halfway.
	probe := faultpool.CancelAtCheck(1 << 30)
	want, err := base(probe)
	if err != nil {
		t.Fatal(err)
	}
	polls := probe.Polls()
	if polls < 2 {
		t.Fatalf("workload polls only %d times; cannot cancel mid-run", polls)
	}
	d, err := base(faultpool.CancelAtCheck(polls / 2))
	if !errors.Is(err, context.Canceled) || d != nil {
		t.Fatalf("mid-run cancel: d=%v err=%v, want nil + context.Canceled", d, err)
	}
	got, err := base(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecomp(got, want) {
		t.Fatal("retry after cancellation diverged from uncancelled baseline")
	}

	// Same shape for the serial baselines.
	wantBG, err := BallGrowingCtx(nil, g, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	probeBG := faultpool.CancelAtCheck(1 << 30)
	if _, err := BallGrowingCtx(probeBG, g, 0.2, 3); err != nil {
		t.Fatal(err)
	}
	if p := probeBG.Polls(); p >= 2 {
		if d, err := BallGrowingCtx(faultpool.CancelAtCheck(p/2), g, 0.2, 3); !errors.Is(err, context.Canceled) || d != nil {
			t.Fatalf("ballgrow mid-run cancel: d=%v err=%v", d, err)
		}
	}
	gotBG, err := BallGrowingCtx(nil, g, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecomp(gotBG, wantBG) {
		t.Fatal("ballgrow retry diverged")
	}

	wantIt, err := PartitionIterativeCtx(nil, g, 0.2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	probeIt := faultpool.CancelAtCheck(1 << 30)
	if _, err := PartitionIterativeCtx(probeIt, g, 0.2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if p := probeIt.Polls(); p >= 2 {
		if d, err := PartitionIterativeCtx(faultpool.CancelAtCheck(p/2), g, 0.2, 3, 1); !errors.Is(err, context.Canceled) || d != nil {
			t.Fatalf("iterative mid-run cancel: d=%v err=%v", d, err)
		}
	}
	gotIt, err := PartitionIterativeCtx(nil, g, 0.2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDecomp(gotIt, wantIt) {
		t.Fatal("iterative retry diverged")
	}
}

// TestSerialCancelNeverTrippedIsBitIdentical pins that merely passing a
// polling context (as -timeout always does now) changes nothing: outputs
// under a never-tripping fault context equal the nil-ctx outputs exactly.
func TestSerialCancelNeverTrippedIsBitIdentical(t *testing.T) {
	g := graph.GNM(1500, 5000, 3)
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context) (*Decomposition, error)
	}{
		{"sequential", func(ctx context.Context) (*Decomposition, error) {
			return PartitionSequential(g, 0.2, Options{Seed: 5, Ctx: ctx})
		}},
		{"exact", func(ctx context.Context) (*Decomposition, error) {
			return PartitionExact(g, 0.2, Options{Seed: 5, Ctx: ctx})
		}},
		{"ballgrow", func(ctx context.Context) (*Decomposition, error) {
			return BallGrowingCtx(ctx, g, 0.2, 5)
		}},
		{"iterative", func(ctx context.Context) (*Decomposition, error) {
			return PartitionIterativeCtx(ctx, g, 0.2, 5, 1)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.run(nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.run(faultpool.CancelAtCheck(1 << 30))
			if err != nil {
				t.Fatal(err)
			}
			if !sameDecomp(got, want) {
				t.Fatal("polling context changed the output")
			}
		})
	}
}
