package core

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func mustPartition(t *testing.T, g *graph.Graph, beta float64, opts Options) *Decomposition {
	t.Helper()
	d, err := Partition(g, beta, opts)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	return d
}

func TestPartitionRejectsBadBeta(t *testing.T) {
	g := graph.Path(4)
	for _, beta := range []float64{-1, 0, 1, 2} {
		if _, err := Partition(g, beta, Options{}); err == nil {
			t.Errorf("beta=%g: expected error", beta)
		}
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := mustPartition(t, g, 0.1, Options{})
	if d.NumVertices() != 0 || d.NumClusters() != 0 {
		t.Errorf("empty graph: got %d vertices, %d clusters", d.NumVertices(), d.NumClusters())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPartitionSingleVertex(t *testing.T) {
	g, err := graph.FromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := mustPartition(t, g, 0.1, Options{Seed: 7})
	if d.NumClusters() != 1 || d.Center[0] != 0 {
		t.Errorf("single vertex: clusters=%d center=%d", d.NumClusters(), d.Center[0])
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPartitionValidOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(200)},
		{"cycle", graph.Cycle(100)},
		{"grid", graph.Grid2D(20, 30)},
		{"torus", graph.Torus2D(12, 12)},
		{"complete", graph.Complete(40)},
		{"star", graph.Star(100)},
		{"tree", graph.BinaryTree(255)},
		{"hypercube", graph.Hypercube(8)},
		{"gnm", graph.GNM(300, 900, 11)},
		{"rmat", graph.RMAT(9, 2000, 5)},
		{"disconnected", mustFromEdges(t, 10, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})},
	}
	betas := []float64{0.05, 0.2, 0.5}
	for _, tc := range cases {
		for _, beta := range betas {
			d := mustPartition(t, tc.g, beta, Options{Seed: 42})
			if err := d.Validate(); err != nil {
				t.Errorf("%s beta=%g: %v", tc.name, beta, err)
			}
		}
	}
}

func mustFromEdges(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionMatchesSequentialReference(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(15, 17),
		graph.GNM(200, 600, 3),
		graph.Path(100),
		graph.RMAT(8, 1200, 9),
		graph.BinaryTree(127),
	}
	for gi, g := range graphs {
		for _, seed := range []uint64{0, 1, 99} {
			for _, tie := range []TieBreak{TieFractional, TiePermutation} {
				opts := Options{Seed: seed, TieBreak: tie, Workers: 4}
				par := mustPartition(t, g, 0.15, opts)
				seq, err := PartitionSequential(g, 0.15, opts)
				if err != nil {
					t.Fatal(err)
				}
				for v := range par.Center {
					if par.Center[v] != seq.Center[v] {
						t.Fatalf("graph %d seed %d tie %v: center mismatch at %d: par=%d seq=%d",
							gi, seed, tie, v, par.Center[v], seq.Center[v])
					}
					if par.Dist[v] != seq.Dist[v] {
						t.Fatalf("graph %d seed %d tie %v: dist mismatch at %d: par=%d seq=%d",
							gi, seed, tie, v, par.Dist[v], seq.Dist[v])
					}
					if par.Parent[v] != seq.Parent[v] {
						t.Fatalf("graph %d seed %d tie %v: parent mismatch at %d: par=%d seq=%d",
							gi, seed, tie, v, par.Parent[v], seq.Parent[v])
					}
				}
			}
		}
	}
}

func TestPartitionDeterministicAcrossWorkerCounts(t *testing.T) {
	g := graph.Grid2D(30, 40)
	base := mustPartition(t, g, 0.1, Options{Seed: 5, Workers: 1})
	for _, w := range []int{2, 3, 8} {
		d := mustPartition(t, g, 0.1, Options{Seed: 5, Workers: w})
		for v := range base.Center {
			if base.Center[v] != d.Center[v] || base.Dist[v] != d.Dist[v] {
				t.Fatalf("workers=%d: output differs at vertex %d", w, v)
			}
		}
	}
}

func TestPartitionMatchesExactFloatAlgorithm(t *testing.T) {
	// The integer-round implementation with fractional tie-breaking must
	// agree with the literal Algorithm 2 Dijkstra on real shifted distances
	// (fixed seeds; disagreement would need a float rounding anomaly).
	graphs := []*graph.Graph{
		graph.Grid2D(12, 12),
		graph.GNM(150, 400, 17),
		graph.Cycle(60),
	}
	for gi, g := range graphs {
		opts := Options{Seed: 1234, TieBreak: TieFractional}
		par := mustPartition(t, g, 0.2, opts)
		exact, err := PartitionExact(g, 0.2, opts)
		if err != nil {
			t.Fatal(err)
		}
		mismatch := 0
		for v := range par.Center {
			if par.Center[v] != exact.Center[v] {
				mismatch++
			}
		}
		if mismatch != 0 {
			t.Errorf("graph %d: %d/%d assignments differ from exact float algorithm",
				gi, mismatch, len(par.Center))
		}
	}
}

func TestPartitionRadiusBoundedByShift(t *testing.T) {
	g := graph.Grid2D(40, 40)
	d := mustPartition(t, g, 0.05, Options{Seed: 2})
	for v, c := range d.Center {
		if float64(d.Dist[v]) > d.Shifts[c] {
			t.Fatalf("vertex %d: dist %d > center shift %g", v, d.Dist[v], d.Shifts[c])
		}
	}
	if float64(d.MaxRadius()) > d.DeltaMax {
		t.Errorf("max radius %d exceeds delta max %g", d.MaxRadius(), d.DeltaMax)
	}
}

func TestPartitionCutFractionReasonable(t *testing.T) {
	// Corollary 4.5: expected cut fraction is O(β). With the midpoint
	// argument the constant is small; allow generous slack for a single
	// seed but catch order-of-magnitude regressions.
	g := graph.Grid2D(100, 100)
	for _, beta := range []float64{0.05, 0.1, 0.2} {
		d := mustPartition(t, g, beta, Options{Seed: 13})
		if cf := d.CutFraction(); cf > 4*beta {
			t.Errorf("beta=%g: cut fraction %g exceeds 4beta", beta, cf)
		}
	}
}

func TestPartitionDiameterBound(t *testing.T) {
	// Lemma 4.2: whp every shift (hence every piece radius) is at most
	// O(log n / β). Check radius <= 6 ln n / beta for a few seeds.
	g := graph.Grid2D(60, 60)
	n := float64(g.NumVertices())
	for _, seed := range []uint64{1, 2, 3} {
		for _, beta := range []float64{0.1, 0.3} {
			d := mustPartition(t, g, beta, Options{Seed: seed})
			bound := 6 * math.Log(n) / beta
			if float64(d.MaxRadius()) > bound {
				t.Errorf("seed=%d beta=%g: max radius %d exceeds %g", seed, beta, d.MaxRadius(), bound)
			}
		}
	}
}

func TestPartitionDisconnectedGraphClustersStayWithinComponents(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 6, V: 7}}
	g := mustFromEdges(t, 9, edges)
	labels, _ := graph.ConnectedComponents(g)
	d := mustPartition(t, g, 0.2, Options{Seed: 3})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, c := range d.Center {
		if labels[v] != labels[c] {
			t.Errorf("vertex %d in component %d assigned to center %d in component %d",
				v, labels[v], c, labels[c])
		}
	}
}

func TestPartitionMaxRadiusCap(t *testing.T) {
	g := graph.Path(500)
	d := mustPartition(t, g, 0.01, Options{Seed: 4, MaxRadius: 5})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := d.MaxRadius(); r > 5 {
		t.Errorf("max radius %d exceeds cap 5", r)
	}
}

func TestPartitionQuantileShifts(t *testing.T) {
	g := graph.Grid2D(25, 25)
	d := mustPartition(t, g, 0.1, Options{Seed: 6, ShiftSource: ShiftQuantile})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	seq, err := PartitionSequential(g, 0.1, Options{Seed: 6, ShiftSource: ShiftQuantile})
	if err != nil {
		t.Fatal(err)
	}
	for v := range d.Center {
		if d.Center[v] != seq.Center[v] {
			t.Fatalf("quantile shifts: parallel/sequential mismatch at %d", v)
		}
	}
}

func TestPartitionCoversAllBetas(t *testing.T) {
	g := graph.Grid2D(10, 10)
	for _, beta := range []float64{0.001, 0.01, 0.49, 0.9, 0.999} {
		d := mustPartition(t, g, beta, Options{Seed: 8})
		if err := d.Validate(); err != nil {
			t.Errorf("beta=%g: %v", beta, err)
		}
	}
}

func TestHighBetaProducesManyClusters(t *testing.T) {
	g := graph.Grid2D(50, 50)
	lo := mustPartition(t, g, 0.02, Options{Seed: 21})
	hi := mustPartition(t, g, 0.5, Options{Seed: 21})
	if lo.NumClusters() >= hi.NumClusters() {
		t.Errorf("expected fewer clusters at beta=0.02 (%d) than at 0.5 (%d)",
			lo.NumClusters(), hi.NumClusters())
	}
}

func TestDecompositionAccessors(t *testing.T) {
	g := graph.Grid2D(8, 8)
	d := mustPartition(t, g, 0.3, Options{Seed: 9})
	sizes := d.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumVertices() {
		t.Errorf("cluster sizes sum to %d, want %d", total, g.NumVertices())
	}
	if len(sizes) != d.NumClusters() {
		t.Errorf("NumClusters %d != len(ClusterSizes) %d", d.NumClusters(), len(sizes))
	}
	centers := d.Centers()
	if len(centers) != d.NumClusters() {
		t.Errorf("Centers length %d != NumClusters %d", len(centers), d.NumClusters())
	}
	members := d.Members()
	for c, vs := range members {
		if sizes[c] != len(vs) {
			t.Errorf("cluster %d: size %d != members %d", c, sizes[c], len(vs))
		}
	}
	radii := d.Radii()
	if len(radii) != d.NumClusters() {
		t.Errorf("Radii length %d != NumClusters %d", len(radii), d.NumClusters())
	}
	var maxR int32
	for _, r := range radii {
		if r > maxR {
			maxR = r
		}
	}
	if maxR != d.MaxRadius() {
		t.Errorf("max of Radii %d != MaxRadius %d", maxR, d.MaxRadius())
	}
	hist := d.SizeHistogram()
	if len(hist) != d.NumClusters() {
		t.Errorf("SizeHistogram length %d != NumClusters %d", len(hist), d.NumClusters())
	}
}

func TestStrongDiameterAtMostTwiceRadius(t *testing.T) {
	g := graph.Grid2D(15, 15)
	d := mustPartition(t, g, 0.15, Options{Seed: 10})
	diams := d.StrongDiameters()
	radii := d.Radii()
	for c, diam := range diams {
		if diam > 2*radii[c] {
			t.Errorf("cluster %d: strong diameter %d exceeds 2x radius %d", c, diam, radii[c])
		}
		if diam < radii[c] {
			t.Errorf("cluster %d: strong diameter %d below radius %d", c, diam, radii[c])
		}
	}
}
