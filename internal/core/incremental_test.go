package core

import (
	"testing"

	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// decompsIdentical compares the fixpoint output (Center, Dist, Parent)
// plus the round schedule of two decompositions bit for bit.
func decompsIdentical(a, b *Decomposition) bool {
	if len(a.Center) != len(b.Center) || a.Rounds != b.Rounds {
		return false
	}
	for i := range a.Center {
		if a.Center[i] != b.Center[i] || a.Dist[i] != b.Dist[i] || a.Parent[i] != b.Parent[i] {
			return false
		}
	}
	return true
}

// TestUnchangedUnderSoundness is the contract test for the incremental
// fixpoint check: whenever UnchangedUnder answers true for a random batch,
// re-partitioning the updated graph with the same options must reproduce
// the decomposition exactly. It also counts accepted batches to guard
// against a vacuous always-false implementation.
func TestUnchangedUnderSoundness(t *testing.T) {
	type workload struct {
		name string
		g    *graph.Graph
	}
	workloads := []workload{
		{"grid", graph.Grid2D(20, 17)},
		{"gnm", graph.GNM(300, 900, 11)},
		{"ws", graph.WattsStrogatz(260, 6, 0.1, 5)},
	}
	for _, wl := range workloads {
		for _, beta := range []float64{0.1, 0.4} {
			verified := 0
			for trial := uint64(0); trial < 40; trial++ {
				opts := Options{Seed: 0x5eed + trial}
				d, err := Partition(wl.g, beta, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !d.HasPlan() {
					t.Fatal("Partition did not retain its shift plan")
				}
				n := uint64(wl.g.NumVertices())
				var b graph.Batch
				edges := wl.g.Edges()
				if trial%2 == 0 {
					// Fully random batch: usually rejected; soundness is what
					// matters when it is not.
					for i := 0; i < 6; i++ {
						u := uint32(xrand.Mix(trial, uint64(i)*2+1) % n)
						v := uint32(xrand.Mix(trial, uint64(i)*2+2) % n)
						b.Insert = append(b.Insert, graph.Edge{U: u, V: v})
					}
					for i := 0; i < 4; i++ {
						b.Delete = append(b.Delete, edges[xrand.Mix(trial, 0x99+uint64(i))%uint64(len(edges))])
					}
				} else {
					// Deletes biased toward non-tree edges: mostly accepted,
					// exercising the accept-then-recheck path on every
					// workload and β.
					for i := 0; i < 8; i++ {
						e := edges[xrand.Mix(trial, 0x99+uint64(i))%uint64(len(edges))]
						if d.Parent[e.U] == e.V || d.Parent[e.V] == e.U {
							continue
						}
						b.Delete = append(b.Delete, e)
					}
				}
				updated, res, err := graph.ApplyBatch(wl.g, b)
				if err != nil {
					t.Fatal(err)
				}
				if !d.UnchangedUnder(res.Inserted, res.Deleted) {
					continue
				}
				verified++
				d2, err := Partition(updated, beta, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !decompsIdentical(d, d2) {
					t.Fatalf("%s beta=%g trial %d: UnchangedUnder accepted a batch that changed the partition (+%d/-%d edges)",
						wl.name, beta, trial, len(res.Inserted), len(res.Deleted))
				}
			}
			t.Logf("%s beta=%g: verified %d/40 random batches", wl.name, beta, verified)
		}
	}
}

// TestUnchangedUnderAcceptsSafeBatches pins the completeness side the E23
// bench depends on: deleting a non-tree (non-parent) edge, and
// re-inserting an edge whose proposal provably lost, must verify — and a
// support-edge delete must not.
func TestUnchangedUnderAcceptsSafeBatches(t *testing.T) {
	g := graph.Grid2D(30, 30)
	d, err := Partition(g, 0.2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var nonTree, tree []graph.Edge
	for _, e := range g.Edges() {
		if d.Parent[e.U] == e.V || d.Parent[e.V] == e.U {
			tree = append(tree, e)
		} else {
			nonTree = append(nonTree, e)
		}
	}
	if len(nonTree) == 0 || len(tree) == 0 {
		t.Fatal("degenerate decomposition: no tree/non-tree split")
	}
	del := nonTree[:10]
	if !d.UnchangedUnder(nil, del) {
		t.Fatal("deleting non-tree edges must verify")
	}
	// Re-inserting what was just deleted verifies against the
	// post-delete decomposition, which is bit-identical to d — its
	// proposals lost before, so they lose again.
	updated, res, err := graph.ApplyBatch(g, graph.Batch{Delete: del})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Partition(updated, 0.2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !decompsIdentical(d, d2) {
		t.Fatal("non-tree delete changed the partition (soundness bug)")
	}
	if !d2.UnchangedUnder(res.Deleted, nil) {
		t.Fatal("re-inserting previously losing edges must verify")
	}
	if d.UnchangedUnder(nil, tree[:1]) {
		t.Fatal("deleting a support edge must NOT verify")
	}
}

// TestUnchangedUnderRequiresPlan checks the guard rails: no plan or a
// capped radius disables the check.
func TestUnchangedUnderRequiresPlan(t *testing.T) {
	g := graph.Grid2D(8, 8)
	capped, err := Partition(g, 0.3, Options{Seed: 1, MaxRadius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if capped.HasPlan() {
		t.Fatal("capped run must not offer a plan")
	}
	if capped.UnchangedUnder(nil, nil) {
		t.Fatal("UnchangedUnder must refuse without a plan")
	}
	bare := &Decomposition{}
	if bare.HasPlan() || bare.UnchangedUnder(nil, nil) {
		t.Fatal("bare decomposition must refuse")
	}
}
