package core

import (
	"math"

	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// shiftPlan is everything derived from the random shifts before the BFS
// starts: start-time buckets, tie-breaking ranks, and the raw shifts for
// reporting and verification.
type shiftPlan struct {
	shifts   []float64 // δ_u
	deltaMax float64
	start    []float64 // s_u = δ_max − δ_u
	bucket   []int32   // ⌊s_u⌋: the BFS round at which u may start a cluster
	rank     []uint32  // tie-break rank; lower rank wins same-round claims
	buckets  [][]uint32
}

// GenerateShifts draws the per-vertex shifts for (seed, source, β) exactly
// as Partition does; exposed so experiments (E4: Lemma 4.2) can study the
// shift distribution in isolation.
func GenerateShifts(n int, beta float64, seed uint64, source ShiftSource) []float64 {
	shifts := make([]float64, n)
	switch source {
	case ShiftExponential:
		parallel.For(0, n, func(v int) {
			shifts[v] = xrand.Exp(seed, uint64(v), beta)
		})
	case ShiftQuantile:
		// Section 5: derive shifts from positions in a random permutation.
		// Position k of n receives the (k+½)/n quantile of Exp(β).
		rng := xrand.NewSplitMix64(seed)
		perm := rng.Perm32(n)
		for v := 0; v < n; v++ {
			q := (float64(perm[v]) + 0.5) / float64(n)
			shifts[v] = -math.Log(1-q) / beta
		}
	default:
		panic("core: unknown ShiftSource")
	}
	return shifts
}

// newShiftPlan prepares the plan for a partition run; every O(n) pass and
// the tie-break radix sort execute on the caller's pool.
func newShiftPlan(n int, beta float64, opts Options) *shiftPlan {
	p := &shiftPlan{
		shifts: GenerateShifts(n, beta, opts.Seed, opts.ShiftSource),
		start:  make([]float64, n),
		bucket: make([]int32, n),
		rank:   make([]uint32, n),
	}
	if n == 0 {
		return p
	}
	pool := opts.Pool
	p.deltaMax, _ = pool.MaxFloat64(opts.Workers, n, func(i int) float64 { return p.shifts[i] })

	fracs := make([]float64, n)
	pool.For(opts.Workers, n, func(v int) {
		s := p.deltaMax - p.shifts[v]
		p.start[v] = s
		b := math.Floor(s)
		p.bucket[v] = int32(b)
		fracs[v] = s - b
	})

	switch opts.TieBreak {
	case TieFractional:
		// Rank vertices by the fractional part of their start time; distinct
		// with probability 1, residual float ties broken by vertex id (the
		// paper's lexicographic rule for the zero-probability event).
		order := make([]uint32, n)
		for i := range order {
			order[i] = uint32(i)
		}
		sortByFrac(pool, opts.Workers, order, fracs)
		for r, v := range order {
			p.rank[v] = uint32(r)
		}
	case TiePermutation:
		// An independent uniform permutation; Section 5 observes the
		// fractional parts may be replaced by one.
		rng := xrand.NewSplitMix64(xrand.Mix(opts.Seed, 0x7065726d)) // "perm"
		perm := rng.Perm32(n)
		copy(p.rank, perm)
	default:
		panic("core: unknown TieBreak")
	}

	nBuckets := int(math.Floor(p.deltaMax)) + 1
	p.buckets = make([][]uint32, nBuckets)
	for v := 0; v < n; v++ {
		b := p.bucket[v]
		p.buckets[b] = append(p.buckets[b], uint32(v))
	}
	return p
}

// sortByFrac sorts vertex ids by (frac, id) ascending with a stable LSD
// radix sort on the IEEE bit patterns (order-preserving for the
// non-negative fracs). Stability plus the ascending initial id order
// realizes the lexicographic tie-break without any comparisons, and the
// byte-at-a-time passes stream sequentially instead of the random frac[]
// lookups a merge sort pays; passes whose byte is constant across all keys
// (the high exponent bytes, for fracs in [0,1)) are skipped outright.
//
// Large inputs run the passes on the pool: each pass counts bytes with one
// histogram per worker block, turns the histograms into per-(byte, worker)
// start offsets with an exclusive scan in (byte, worker) order, and
// scatters each block in order. Keys with equal bytes land ordered by
// (worker block, position within block) — exactly their pre-pass order —
// so every pass is the same stable counting sort the serial loop performs
// and the resulting ranks are identical at every worker count, including 1.
func sortByFrac(pool *parallel.Pool, workers int, order []uint32, frac []float64) {
	n := len(order)
	if n < 2 {
		return
	}
	keysA := make([]uint64, n)
	pool.ForRange(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keysA[i] = math.Float64bits(frac[order[i]])
		}
	})
	keysB := make([]uint64, n)
	idsB := make([]uint32, n)
	srcK, srcI := keysA, order
	dstK, dstI := keysB, idsB
	w := parallel.Workers(workers, n)
	if w == 1 || n < parallel.CompactCutoff {
		var count [256]int
		for shift := uint(0); shift < 64; shift += 8 {
			for b := range count {
				count[b] = 0
			}
			for _, k := range srcK {
				count[(k>>shift)&0xff]++
			}
			if count[(srcK[0]>>shift)&0xff] == n {
				continue // every key shares this byte; the pass is a no-op
			}
			pos := 0
			for b := 0; b < 256; b++ {
				c := count[b]
				count[b] = pos
				pos += c
			}
			for i, k := range srcK {
				b := (k >> shift) & 0xff
				j := count[b]
				count[b]++
				dstK[j] = k
				dstI[j] = srcI[i]
			}
			srcK, dstK = dstK, srcK
			srcI, dstI = dstI, srcI
		}
	} else {
		counts := make([]int, w*256)
		totals := make([]int, 256)
		for shift := uint(0); shift < 64; shift += 8 {
			sk := srcK
			pool.Run(w, func(k int) {
				lo, hi := k*n/w, (k+1)*n/w
				c := counts[k*256 : (k+1)*256]
				for b := range c {
					c[b] = 0
				}
				for _, key := range sk[lo:hi] {
					c[(key>>shift)&0xff]++
				}
			})
			for b := range totals {
				totals[b] = 0
			}
			for k := 0; k < w; k++ {
				c := counts[k*256 : (k+1)*256]
				for b := 0; b < 256; b++ {
					totals[b] += c[b]
				}
			}
			if totals[(sk[0]>>shift)&0xff] == n {
				continue // same skip rule as the serial passes
			}
			// Exclusive scan in (byte, worker) order: counts[k*256+b]
			// becomes the destination offset of worker k's first key
			// carrying byte b. The scan touches w*256 cells serially —
			// negligible next to the O(n) scatter.
			pos := 0
			for b := 0; b < 256; b++ {
				for k := 0; k < w; k++ {
					c := counts[k*256+b]
					counts[k*256+b] = pos
					pos += c
				}
			}
			si, dk, di := srcI, dstK, dstI
			pool.Run(w, func(k int) {
				lo, hi := k*n/w, (k+1)*n/w
				c := counts[k*256 : (k+1)*256]
				for i := lo; i < hi; i++ {
					key := sk[i]
					b := (key >> shift) & 0xff
					j := c[b]
					c[b]++
					dk[j] = key
					di[j] = si[i]
				}
			})
			srcK, dstK = dstK, srcK
			srcI, dstI = dstI, srcI
		}
	}
	if &srcI[0] != &order[0] {
		pool.ForRange(workers, n, func(lo, hi int) {
			copy(order[lo:hi], srcI[lo:hi])
		})
	}
}

// HarmonicNumber returns H_n = sum_{i=1..n} 1/i, the quantity Lemma 4.2
// compares E[δ_max]·β against.
func HarmonicNumber(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
