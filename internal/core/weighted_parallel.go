package core

import (
	"math"

	"mpx/internal/bfs"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// PartitionWeightedParallel is the parallel counterpart of
// PartitionWeighted, exploring the direction the paper's Section 6 leaves
// open ("the depth of the algorithm is harder to control since hop count is
// no longer closely related to diameter"). It runs the exponentially
// shifted shortest paths as a multi-source Δ-stepping (Meyer–Sanders) from
// an implicit super-source with arc lengths δ_max − δ_u.
//
// Like the unweighted Partition, the bucket-relaxation rounds are
// direction-optimizing: Options.Direction selects push (top-down atomic-min
// relaxation), pull (each unsettled vertex scans its own in-neighborhood
// over a bit-packed frontier), or per-round Beamer-style auto switching.
// The shifted distances converge to the same min-plus fixpoint in every
// mode and parents are resolved from them by a deterministic minimum over
// packed (distance bits, proposer) keys, so Center, Dist and Parent are
// bit-identical across directions and worker counts (docs/determinism.md).
//
// The decomposition quality matches PartitionWeighted exactly up to
// floating-point tie events (the assignment minimizes the same shifted
// distances); the Rounds counter exposes the empirical parallel depth that
// Section 6 asks about — experiment E15 sweeps it against Δ and the weight
// distribution, and E21 sweeps the traversal direction.
// Robustness: like Partition, Options.Ctx is polled between
// bucket-relaxation rounds (a cancelled call returns (nil, ctx.Err()) with
// no partial result) and panics escaping the round kernels are recovered
// into a *parallel.PanicError return.
func PartitionWeightedParallel(wg *graph.WeightedGraph, beta float64, delta float64, opts Options) (d *WeightedDecomposition, err error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, parallel.Recovered(r)
		}
	}()
	n := wg.NumVertices()
	d = &WeightedDecomposition{
		G:      wg,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]float64, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	pool := opts.Pool
	d.Shifts = GenerateShifts(n, beta, opts.Seed, opts.ShiftSource)
	d.DeltaMax, _ = pool.MaxFloat64(opts.Workers, n, func(i int) float64 { return d.Shifts[i] })

	init := make([]float64, n)
	pool.For(opts.Workers, n, func(v int) {
		init[v] = d.DeltaMax - d.Shifts[v]
	})
	// The bucket-relaxation rounds run on the same persistent pool, in the
	// traversal direction the caller selected; Ctx cancels between rounds.
	res, err := bfs.DeltaSteppingMultiPoolDirCtx(opts.Ctx, pool, wg, init, delta, opts.Workers, bfsDirection(opts.Direction))
	if err != nil {
		return nil, err
	}
	d.Rounds = res.Rounds

	// Every vertex is reached (its own start value is finite). Recover
	// centers by chasing parents to the forest roots; path lengths are
	// bounded by the piece radius and the chases are independent, so the
	// pass is cheap and parallel.
	d.Parent = res.Parent
	pool.For(opts.Workers, n, func(v int) {
		d.Center[v] = chaseRoot(res.Parent, uint32(v))
	})
	// Tree distances from the center: shifted distance minus the center's
	// start offset.
	pool.For(opts.Workers, n, func(v int) {
		c := d.Center[v]
		d.Dist[v] = res.Dist[v] - init[c]
		if d.Dist[v] < 0 {
			d.Dist[v] = 0 // guard fp wobble on the centers themselves
		}
	})
	return d, nil
}

// bfsDirection maps the package's Direction option onto the Δ-stepping
// engine's traversal mode.
func bfsDirection(d Direction) bfs.Direction {
	switch d {
	case DirectionForcePush:
		return bfs.DirectionPush
	case DirectionForcePull:
		return bfs.DirectionPull
	default:
		return bfs.DirectionAuto
	}
}

// chaseRoot follows parent pointers to the forest root.
func chaseRoot(parent []uint32, v uint32) uint32 {
	steps := 0
	for parent[v] != v {
		v = parent[v]
		steps++
		if steps > len(parent) {
			panic("core: parent pointers contain a cycle")
		}
	}
	return v
}

// Rounds reported by the weighted parallel partition depend on Δ; this
// helper returns the Meyer–Sanders default used when delta <= 0 is passed,
// exposed so experiments can report the Δ actually used.
func DefaultDelta(wg *graph.WeightedGraph) float64 {
	n := wg.NumVertices()
	if n == 0 {
		return 1
	}
	minW, maxW := math.Inf(1), 0.0
	var arcs int64
	for v := 0; v < n; v++ {
		_, ws := wg.Neighbors(uint32(v))
		for _, w := range ws {
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			arcs++
		}
	}
	if arcs == 0 {
		return 1
	}
	avgDeg := float64(arcs) / float64(n)
	delta := maxW / math.Max(avgDeg, 1)
	if delta < minW {
		delta = minW
	}
	return delta
}
