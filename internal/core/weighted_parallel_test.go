package core

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func TestWeightedParallelMatchesSequentialQuality(t *testing.T) {
	// Same shifts => same shifted-distance minimization => identical
	// assignment (up to fp ties, which fixed seeds make deterministic).
	base := graph.Grid2D(25, 25)
	wg := graph.RandomWeights(base, 1, 5, 11)
	opts := Options{Seed: 21}
	seq, err := PartitionWeighted(wg, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := PartitionWeightedParallel(wg, 0.1, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := 0
	for v := range seq.Center {
		if seq.Center[v] != par.Center[v] {
			mismatch++
		}
	}
	// Allow a tiny number of fp-tie divergences; none expected with these
	// seeds.
	if mismatch > 0 {
		t.Errorf("%d/%d center assignments differ between sequential and parallel weighted",
			mismatch, len(seq.Center))
	}
	if math.Abs(seq.CutWeightFraction()-par.CutWeightFraction()) > 1e-9 {
		t.Errorf("cut weight fractions differ: %g vs %g",
			seq.CutWeightFraction(), par.CutWeightFraction())
	}
}

func TestWeightedParallelValidates(t *testing.T) {
	wg := graph.RandomWeights(graph.GNM(400, 1200, 5), 0.5, 3, 9)
	d, err := PartitionWeightedParallel(wg, 0.15, 0, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if d.Rounds <= 0 {
		t.Error("expected positive round count")
	}
}

func TestWeightedParallelDeterministicAcrossWorkers(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(20, 20), 1, 3, 3)
	a, err := PartitionWeightedParallel(wg, 0.2, 1.0, Options{Seed: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionWeightedParallel(wg, 0.2, 1.0, Options{Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Center {
		if a.Center[v] != b.Center[v] {
			t.Fatalf("center mismatch at %d across worker counts", v)
		}
		if math.Abs(a.Dist[v]-b.Dist[v]) > 1e-9 {
			t.Fatalf("dist mismatch at %d across worker counts", v)
		}
	}
}

func TestWeightedParallelRejectsBadBeta(t *testing.T) {
	wg := graph.RandomWeights(graph.Path(4), 1, 2, 0)
	if _, err := PartitionWeightedParallel(wg, 0, 0, Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestWeightedParallelEmptyGraph(t *testing.T) {
	wg, err := graph.FromWeightedEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := PartitionWeightedParallel(wg, 0.1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClusters() != 0 {
		t.Error("empty graph decomposition should be empty")
	}
}

func TestDefaultDelta(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(10, 10), 2, 4, 1)
	d := DefaultDelta(wg)
	if d <= 0 {
		t.Errorf("DefaultDelta %g", d)
	}
	empty, _ := graph.FromWeightedEdges(0, nil)
	if DefaultDelta(empty) != 1 {
		t.Error("empty default should be 1")
	}
	isolated, _ := graph.FromWeightedEdges(3, nil)
	if DefaultDelta(isolated) != 1 {
		t.Error("edgeless default should be 1")
	}
}

func TestWeightedParallelRadiusBound(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(30, 30), 1, 2, 6)
	d, err := PartitionWeightedParallel(wg, 0.05, 0, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxRadius() > d.DeltaMax+1e-9 {
		t.Errorf("weighted radius %g exceeds delta max %g", d.MaxRadius(), d.DeltaMax)
	}
}
