package core

import (
	"fmt"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

func BenchmarkPartitionGridSizes(b *testing.B) {
	for _, side := range []int{100, 200, 400} {
		g := graph.Grid2D(side, side)
		b.Run(fmt.Sprintf("side=%d", side), func(b *testing.B) {
			b.SetBytes(g.NumArcs() * 4)
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, 0.1, Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPartitionBetaSweep(b *testing.B) {
	g := graph.Grid2D(200, 200)
	for _, beta := range []float64{0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, beta, Options{Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShiftPlan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = newShiftPlan(1<<17, 0.1, Options{Seed: uint64(i)})
	}
}

// BenchmarkSortByFrac isolates the shift-plan tie-break sort (the dominant
// serial fraction of small-β partitions after PR 2): workers=1 runs the
// serial skip-pass radix sort, higher counts the pool-parallel
// per-worker-histogram passes. Ranks are identical at every count (the
// property tests pin that); this measures the wall-clock side on
// multi-core hosts.
func BenchmarkSortByFrac(b *testing.B) {
	const n = 1 << 19
	pool := parallel.NewPool(0)
	defer pool.Close()
	frac := make([]float64, n)
	for i := range frac {
		frac[i] = xrand.Uniform01(7, uint64(i))
	}
	base := make([]uint32, n)
	for i := range base {
		base[i] = uint32(i)
	}
	order := make([]uint32, n)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(order, base)
				sortByFrac(pool, w, order, frac)
			}
		})
	}
}

func BenchmarkValidate(b *testing.B) {
	g := graph.Grid2D(200, 200)
	d, err := Partition(g, 0.1, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := d.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutEdges(b *testing.B) {
	g := graph.Grid2D(300, 300)
	d, err := Partition(g, 0.1, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = d.CutEdges()
	}
	_ = sink
}

func BenchmarkBallGrowingGrid(b *testing.B) {
	g := graph.Grid2D(200, 200)
	for i := 0; i < b.N; i++ {
		if _, err := BallGrowing(g, 0.1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionSequentialRef(b *testing.B) {
	g := graph.Grid2D(200, 200)
	for i := 0; i < b.N; i++ {
		if _, err := PartitionSequential(g, 0.1, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionWeightedGrid(b *testing.B) {
	wg := graph.RandomWeights(graph.Grid2D(150, 150), 1, 10, 1)
	for i := 0; i < b.N; i++ {
		if _, err := PartitionWeighted(wg, 0.1, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
