package core

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func TestBallGrowingValid(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(300)},
		{"grid", graph.Grid2D(30, 30)},
		{"gnm", graph.GNM(400, 1200, 7)},
		{"complete", graph.Complete(30)},
		{"tree", graph.BinaryTree(127)},
		{"disconnected", mustFromEdges(t, 8, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})},
	}
	for _, tc := range cases {
		for _, beta := range []float64{0.1, 0.3} {
			d, err := BallGrowing(tc.g, beta, 42)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			d.Shifts = nil // ball growing has no shifts; skip that check
			if err := d.Validate(); err != nil {
				t.Errorf("%s beta=%g: %v", tc.name, beta, err)
			}
		}
	}
}

func TestBallGrowingGuarantees(t *testing.T) {
	g := graph.Grid2D(60, 60)
	n := float64(g.NumVertices())
	for _, beta := range []float64{0.1, 0.2} {
		d, err := BallGrowing(g, beta, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Radius <= log_{1+beta}(2m) plus slack.
		bound := 3*math.Log(2*float64(g.NumEdges()))/math.Log(1+beta) + 2
		if float64(d.MaxRadius()) > bound {
			t.Errorf("beta=%g: radius %d exceeds bound %g", beta, d.MaxRadius(), bound)
		}
		// Cut <= 2 beta m plus generous slack for a single run.
		if cf := d.CutFraction(); cf > 4*beta {
			t.Errorf("beta=%g: cut fraction %g too high", beta, cf)
		}
		_ = n
	}
}

func TestBallGrowingRejectsBadBeta(t *testing.T) {
	g := graph.Path(4)
	for _, beta := range []float64{0, 1} {
		if _, err := BallGrowing(g, beta, 0); err == nil {
			t.Errorf("beta=%g: expected error", beta)
		}
	}
}

func TestBallGrowingEmptyAndSingleton(t *testing.T) {
	empty := mustFromEdges(t, 0, nil)
	if d, err := BallGrowing(empty, 0.1, 0); err != nil || d.NumClusters() != 0 {
		t.Errorf("empty: d=%v err=%v", d, err)
	}
	single := mustFromEdges(t, 1, nil)
	d, err := BallGrowing(single, 0.1, 0)
	if err != nil || d.NumClusters() != 1 {
		t.Errorf("single: clusters=%d err=%v", d.NumClusters(), err)
	}
}

func TestPartitionIterativeValid(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(200),
		graph.Grid2D(25, 25),
		graph.GNM(300, 800, 3),
	}
	for gi, g := range cases {
		d, err := PartitionIterative(g, 0.1, 5, 1)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		d.Shifts = nil
		if err := d.Validate(); err != nil {
			t.Errorf("graph %d: %v", gi, err)
		}
	}
}

func TestPartitionIterativeRejectsBadBeta(t *testing.T) {
	if _, err := PartitionIterative(graph.Path(4), 0, 0, 1); err == nil {
		t.Error("expected error for beta=0")
	}
}

func TestWeightedPartitionValid(t *testing.T) {
	base := graph.Grid2D(20, 20)
	wg := graph.RandomWeights(base, 1, 10, 99)
	for _, beta := range []float64{0.05, 0.2} {
		d, err := PartitionWeighted(wg, beta, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("beta=%g: %v", beta, err)
		}
		if d.MaxRadius() > d.DeltaMax {
			t.Errorf("beta=%g: weighted radius %g exceeds delta max %g", beta, d.MaxRadius(), d.DeltaMax)
		}
	}
}

func TestWeightedPartitionUnitWeightsMatchUnweightedQuality(t *testing.T) {
	// With all weights 1 the weighted algorithm is Algorithm 2 exactly, so
	// it must agree with PartitionExact vertex for vertex.
	base := graph.Grid2D(15, 15)
	edges := make([]graph.WeightedEdge, 0)
	for _, e := range base.Edges() {
		edges = append(edges, graph.WeightedEdge{U: e.U, V: e.V, W: 1})
	}
	wg, err := graph.FromWeightedEdges(base.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 31}
	wd, err := PartitionWeighted(wg, 0.15, opts)
	if err != nil {
		t.Fatal(err)
	}
	ud, err := PartitionExact(base, 0.15, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range wd.Center {
		if wd.Center[v] != ud.Center[v] {
			t.Fatalf("unit weights: center mismatch at %d: weighted=%d exact=%d",
				v, wd.Center[v], ud.Center[v])
		}
	}
}

func TestWeightedPartitionCutScalesWithBeta(t *testing.T) {
	base := graph.Grid2D(40, 40)
	wg := graph.RandomWeights(base, 1, 3, 7)
	lo, err := PartitionWeighted(wg, 0.02, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := PartitionWeighted(wg, 0.4, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if lo.CutEdgeFraction() >= hi.CutEdgeFraction() {
		t.Errorf("cut fraction should grow with beta: lo=%g hi=%g",
			lo.CutEdgeFraction(), hi.CutEdgeFraction())
	}
}

func TestWeightedPartitionRejectsBadBeta(t *testing.T) {
	wg := graph.RandomWeights(graph.Path(4), 1, 2, 0)
	if _, err := PartitionWeighted(wg, 1.5, Options{}); err == nil {
		t.Error("expected error for beta=1.5")
	}
}

func TestBaselinesCoverEveryVertexOnce(t *testing.T) {
	g := graph.GNM(250, 700, 19)
	bg, err := BallGrowing(g, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	it, err := PartitionIterative(g, 0.15, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Decomposition{bg, it} {
		total := 0
		for _, s := range d.ClusterSizes() {
			total += s
		}
		if total != g.NumVertices() {
			t.Errorf("cluster sizes sum to %d, want %d", total, g.NumVertices())
		}
	}
}
