package core

import (
	"context"
	"math"

	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// PartitionIterative is a decomposition in the style of Blelloch, Gupta,
// Koutis, Miller, Peng and Tangwongsan (SPAA 2011) — the algorithm the
// paper streamlines. It runs O(log n) iterations; iteration k samples each
// still-unassigned vertex as a center with probability ~2^k/n, grows
// uniformly-shifted BFS regions from the new centers over unassigned
// vertices for a bounded number of rounds, and keeps whatever was claimed.
// Any stragglers in the final iteration become singleton centers.
//
// This reproduces the two separated stages the paper merges (exponentially
// densifying center samples + shifted shortest paths to resolve overlap)
// and is the "previous algorithm" arm of experiment E7. Its guarantees
// carry extra log factors exactly as the paper describes — observable as a
// larger radius/cut constant in the measurements.
func PartitionIterative(g *graph.Graph, beta float64, seed uint64, workers int) (*Decomposition, error) {
	return PartitionIterativeCtx(nil, g, beta, seed, workers)
}

// PartitionIterativeCtx is PartitionIterative with a cancellation context
// (nil means never cancelled), polled at every sampling iteration and
// every BFS round within it. A cancelled run returns (nil, ctx.Err()) with
// no partial decomposition.
func PartitionIterativeCtx(ctx context.Context, g *graph.Graph, beta float64, seed uint64, workers int) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := g.NumVertices()
	d := &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
		d.Parent[i] = uint32(i)
	}
	iterations := int(math.Ceil(math.Log2(float64(n)))) + 1
	// Per-iteration radius budget: the [9]-style bound O(log n/β) split
	// across iterations, with a floor so early sparse samples make progress.
	budget := int32(math.Ceil(math.Log(float64(n)+1)/beta)) + 1
	perIter := budget/int32(iterations) + 1

	claimed := 0
	for k := 0; k < iterations && claimed < n; k++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		p := math.Exp2(float64(k)) / float64(n) * 4 // densifying sample
		if k == iterations-1 {
			p = 1.1 // final sweep: everyone unassigned becomes a center
		}
		// Sample new centers among unassigned vertices with a uniform random
		// start shift in [0, perIter) so simultaneous regions overlap little.
		type src struct {
			v     uint32
			shift int32
		}
		var srcs []src
		for v := 0; v < n; v++ {
			if level[v] != -1 {
				continue
			}
			if xrand.Uniform01(seed, uint64(k)<<40|uint64(v)) < p {
				sh := int32(xrand.Uniform01(seed^0xabcd, uint64(k)<<40|uint64(v)) * float64(perIter))
				srcs = append(srcs, src{uint32(v), sh})
			}
		}
		if len(srcs) == 0 {
			continue
		}
		// Delayed multi-source BFS over unassigned vertices, sequential
		// rounds (the baseline's cost model is not the point of E7; its
		// decomposition quality is).
		type item struct {
			v uint32
			c uint32
		}
		frontiers := make([][]item, perIter+1)
		for _, s := range srcs {
			frontiers[s.shift] = append(frontiers[s.shift], item{s.v, s.v})
		}
		for t := int32(0); t <= perIter; t++ {
			if cerr := ctxErr(ctx); cerr != nil {
				return nil, cerr
			}
			var next []item
			for _, it := range frontiers[t] {
				if level[it.v] != -1 {
					continue
				}
				level[it.v] = t
				d.Center[it.v] = it.c
				claimed++
				if it.v == it.c {
					d.Dist[it.v] = 0
					d.Parent[it.v] = it.v
				}
				for _, u := range g.Neighbors(it.v) {
					d.Relaxed++
					if level[u] == -1 {
						next = append(next, item{u, it.c})
						// Parent/dist provisionally recorded on claim below.
						_ = u
					}
				}
			}
			// Claim ordering within a round follows frontier order; record
			// parents when a vertex is first claimed.
			if t < perIter {
				// Attach parent/dist when items are consumed next round: we
				// need the proposer; rebuild next with proposers instead.
				frontiers[t+1] = append(frontiers[t+1], next...)
			}
			d.Rounds++
		}
		// Fix up Dist/Parent for vertices claimed via expansion this
		// iteration: recompute by BFS inside each new region from its
		// center (regions are connected by construction).
		fixDistances(g, d, level)
	}
	return d, nil
}

// fixDistances recomputes Dist/Parent as BFS trees from each center within
// its own piece, for all currently-claimed vertices.
func fixDistances(g *graph.Graph, d *Decomposition, level []int32) {
	n := g.NumVertices()
	seen := make([]bool, n)
	var queue []uint32
	for v := 0; v < n; v++ {
		if level[v] == -1 || d.Center[v] != uint32(v) {
			continue
		}
		c := uint32(v)
		queue = append(queue[:0], c)
		seen[c] = true
		d.Dist[c] = 0
		d.Parent[c] = c
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, u := range g.Neighbors(x) {
				if level[u] != -1 && !seen[u] && d.Center[u] == c {
					seen[u] = true
					d.Dist[u] = d.Dist[x] + 1
					d.Parent[u] = x
					queue = append(queue, u)
				}
			}
		}
	}
}
