package core

import (
	"context"

	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// BallGrowing is the classical sequential low-diameter decomposition the
// paper describes in its introduction: repeatedly grow a BFS ball from an
// unassigned vertex until the ball's boundary (arcs to unassigned vertices
// outside) is at most β times its residual volume (arcs from ball members
// to vertices not already carved into other balls), carve the ball off, and
// recurse on the remainder.
//
// Every growth step multiplies the volume by at least (1+β), so each piece
// has radius at most log_{1+β}(2m) = O(log m / β); summing the stopping
// condition over all balls bounds the cut edges by O(βm). These are the
// guarantees of Theorem 1.2 up to constants, but the pieces are found one
// after another — the Ω(n)-length sequential dependence chain that the
// paper's algorithm removes. BallGrowing is the sequential baseline of
// experiment E7.
func BallGrowing(g *graph.Graph, beta float64, seed uint64) (*Decomposition, error) {
	return BallGrowingCtx(nil, g, beta, seed)
}

// BallGrowingCtx is BallGrowing with a cancellation context (nil means
// never cancelled), polled at every ball-growth round — the serial analog
// of the parallel round boundary. A cancelled run returns (nil, ctx.Err())
// with no partial decomposition.
func BallGrowingCtx(ctx context.Context, g *graph.Graph, beta float64, seed uint64) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := g.NumVertices()
	d := &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	assigned := make([]bool, n)
	order := xrand.NewSplitMix64(seed).Perm32(n)

	ball := make([]uint32, 0, 64)
	for _, start := range order {
		if assigned[start] {
			continue
		}
		ball = ball[:0]
		ball = append(ball, start)
		assigned[start] = true
		d.Center[start] = start
		d.Dist[start] = 0
		d.Parent[start] = start

		// volume: arcs from ball members to vertices not carved into other
		// balls (i.e. in this ball or still unassigned).
		var volume int64
		for _, u := range g.Neighbors(start) {
			if !assigned[u] || d.Center[u] == start {
				volume++
			}
		}
		frontierLo, frontierHi := 0, 1
		radius := int32(0)
		for {
			if cerr := ctxErr(ctx); cerr != nil {
				return nil, cerr
			}
			// Boundary: arcs from the current frontier to unassigned
			// vertices. Older levels have none — their unassigned neighbors
			// were all absorbed when the next level was built.
			var boundary int64
			for i := frontierLo; i < frontierHi; i++ {
				for _, u := range g.Neighbors(ball[i]) {
					if !assigned[u] {
						boundary++
					}
				}
			}
			d.Relaxed += boundary
			if boundary <= int64(beta*float64(max64(volume, 1))) {
				break
			}
			// Absorb the next level.
			radius++
			for i := frontierLo; i < frontierHi; i++ {
				v := ball[i]
				for _, u := range g.Neighbors(v) {
					if !assigned[u] {
						assigned[u] = true
						d.Center[u] = start
						d.Dist[u] = radius
						d.Parent[u] = v
						ball = append(ball, u)
					}
				}
			}
			for i := frontierHi; i < len(ball); i++ {
				for _, u := range g.Neighbors(ball[i]) {
					if !assigned[u] || d.Center[u] == start {
						volume++
					}
				}
				d.Relaxed += int64(g.Degree(ball[i]))
			}
			frontierLo, frontierHi = frontierHi, len(ball)
			d.Rounds++
		}
	}
	return d, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
