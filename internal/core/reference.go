package core

import (
	"container/heap"
	"math"

	"mpx/internal/graph"
)

// PartitionSequential computes exactly the same decomposition as Partition
// (same Options semantics, bit-identical Center/Dist/Parent arrays) using a
// sequential multi-source Dijkstra over the lexicographic keys
// (⌊δ_max−δ_c⌋ + dist, rank(c), proposer). It exists as the oracle the
// parallel implementation is property-tested against.
func PartitionSequential(g *graph.Graph, beta float64, opts Options) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := g.NumVertices()
	d := &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	plan := newShiftPlan(n, beta, opts)
	d.Shifts = plan.shifts
	d.DeltaMax = plan.deltaMax

	type label struct {
		key      int64 // integer part of shifted distance
		rank     uint32
		proposer uint32
		settled  bool
	}
	labels := make([]label, n)
	for i := range labels {
		labels[i] = label{key: math.MaxInt64, rank: math.MaxUint32, proposer: math.MaxUint32}
	}
	h := &refHeap{}
	for v := 0; v < n; v++ {
		it := refItem{key: int64(plan.bucket[v]), rank: plan.rank[v], proposer: uint32(v), target: uint32(v)}
		labels[v] = label{key: it.key, rank: it.rank, proposer: it.proposer}
		heap.Push(h, it)
	}
	roundSeen := make(map[int64]struct{})
	lastKey := int64(math.MinInt64)
	for h.Len() > 0 {
		it := heap.Pop(h).(refItem)
		lb := &labels[it.target]
		if lb.settled || it.key != lb.key || it.rank != lb.rank || it.proposer != lb.proposer {
			continue
		}
		// A key advance is the serial analog of a parallel BFS round
		// boundary — the same poll cadence Partition uses, so -timeout and
		// fault-injection contexts observe serial runs too.
		if it.key != lastKey {
			lastKey = it.key
			if cerr := ctxErr(opts.Ctx); cerr != nil {
				return nil, cerr
			}
		}
		lb.settled = true
		roundSeen[it.key] = struct{}{}
		v := it.target
		if it.proposer == v && it.key == int64(plan.bucket[v]) {
			d.Center[v] = v
			d.Parent[v] = v
			d.Dist[v] = 0
		} else {
			c := d.Center[it.proposer]
			d.Center[v] = c
			d.Parent[v] = it.proposer
			d.Dist[v] = int32(it.key - int64(plan.bucket[c]))
		}
		if opts.MaxRadius > 0 && d.Dist[v] >= opts.MaxRadius {
			continue // capped tree: do not relax out of v
		}
		cand := refItem{key: it.key + 1, rank: plan.rank[d.Center[v]], proposer: v}
		for _, u := range g.Neighbors(v) {
			lu := &labels[u]
			if lu.settled {
				continue
			}
			if cand.key < lu.key ||
				(cand.key == lu.key && (cand.rank < lu.rank ||
					(cand.rank == lu.rank && cand.proposer < lu.proposer))) {
				lu.key, lu.rank, lu.proposer = cand.key, cand.rank, cand.proposer
				heap.Push(h, refItem{key: cand.key, rank: cand.rank, proposer: cand.proposer, target: u})
			}
		}
		d.Relaxed += int64(g.Degree(v))
	}
	// Depth proxy: distinct settled keys = non-empty BFS rounds of the
	// parallel run.
	d.Rounds = len(roundSeen)
	return d, nil
}

// refItem is a heap entry for the sequential reference.
type refItem struct {
	key      int64
	rank     uint32
	proposer uint32
	target   uint32
}

type refHeap struct {
	items []refItem
}

func (h *refHeap) Len() int { return len(h.items) }
func (h *refHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.key != b.key {
		return a.key < b.key
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.proposer < b.proposer
}
func (h *refHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *refHeap) Push(x interface{}) { h.items = append(h.items, x.(refItem)) }
func (h *refHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// PartitionExact is the literal Algorithm 2 of the paper run sequentially:
// assign every vertex v to the center u minimizing the real-valued shifted
// distance dist(u,v) − δ_u, ties broken lexicographically by center id. It
// is implemented as a Dijkstra from a super-source with arc lengths
// δ_max − δ_u (floating point). Used to cross-validate the integer-round
// implementation; with fractional tie-breaking the two agree exactly unless
// float addition rounds a fractional part across an integer boundary.
func PartitionExact(g *graph.Graph, beta float64, opts Options) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := g.NumVertices()
	d := &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	plan := newShiftPlan(n, beta, opts)
	d.Shifts = plan.shifts
	d.DeltaMax = plan.deltaMax

	type flabel struct {
		f       float64
		center  uint32
		settled bool
	}
	labels := make([]flabel, n)
	for i := range labels {
		labels[i] = flabel{f: math.Inf(1), center: math.MaxUint32}
	}
	h := &floatRefHeap{}
	for v := 0; v < n; v++ {
		labels[v] = flabel{f: plan.start[v], center: uint32(v)}
		heap.Push(h, floatRefItem{f: plan.start[v], center: uint32(v), proposer: uint32(v), target: uint32(v)})
	}
	settled := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(floatRefItem)
		lb := &labels[it.target]
		if lb.settled || it.f != lb.f || it.center != lb.center {
			continue
		}
		// Float keys have no integer rounds; poll on a fixed settle cadence
		// instead so long runs still observe cancellation.
		if settled%1024 == 0 {
			if cerr := ctxErr(opts.Ctx); cerr != nil {
				return nil, cerr
			}
		}
		settled++
		lb.settled = true
		v := it.target
		d.Center[v] = it.center
		d.Parent[v] = it.proposer
		if it.center == v {
			d.Dist[v] = 0
		} else {
			d.Dist[v] = d.Dist[it.proposer] + 1
		}
		nf := it.f + 1
		for _, u := range g.Neighbors(v) {
			lu := &labels[u]
			if lu.settled {
				continue
			}
			if nf < lu.f || (nf == lu.f && it.center < lu.center) {
				lu.f, lu.center = nf, it.center
				heap.Push(h, floatRefItem{f: nf, center: it.center, proposer: v, target: u})
			}
		}
	}
	return d, nil
}

type floatRefItem struct {
	f        float64
	center   uint32
	proposer uint32
	target   uint32
}

type floatRefHeap struct {
	items []floatRefItem
}

func (h *floatRefHeap) Len() int { return len(h.items) }
func (h *floatRefHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.f != b.f {
		return a.f < b.f
	}
	return a.center < b.center
}
func (h *floatRefHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *floatRefHeap) Push(x interface{}) { h.items = append(h.items, x.(floatRefItem)) }
func (h *floatRefHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
