package core

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

func TestTwoWithinCDegenerate(t *testing.T) {
	if TwoWithinC(nil, 0.1, 1, 0) || TwoWithinC([]float64{1}, 0.1, 1, 0) {
		t.Error("fewer than two values can never witness")
	}
}

func TestLemma44ProbabilityBound(t *testing.T) {
	// Lemma 4.4: Pr[within c] <= 1 - exp(-beta*c) < beta*c, for ANY base
	// values d_i. Check several adversarial bases.
	bases := [][]float64{
		make([]float64, 50),               // all equal: the hardest case
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},    // spread
		{0, 0.1, 0.2, 0.3, 100, 200, 300}, // mixed
	}
	const trials = 20000
	for bi, d := range bases {
		for _, bc := range []struct{ beta, c float64 }{{0.1, 1}, {0.05, 2}, {0.3, 0.5}} {
			p := Lemma44Probability(d, bc.beta, bc.c, trials, uint64(bi)*77+1)
			bound := bc.beta * bc.c
			// Allow 4-sigma sampling slack above the bound.
			slack := 4 * math.Sqrt(bound*(1-bound)/trials)
			if p > bound+slack {
				t.Errorf("base %d beta=%g c=%g: observed %g exceeds bound %g",
					bi, bc.beta, bc.c, p, bound)
			}
		}
	}
}

func TestLemma44TightForEqualBases(t *testing.T) {
	// With all d_i equal the bound is nearly achieved for large n:
	// probability -> 1 - exp(-beta*c). Check we are within noise of it.
	d := make([]float64, 200)
	beta, c := 0.1, 1.0
	const trials = 30000
	p := Lemma44Probability(d, beta, c, trials, 9)
	want := 1 - math.Exp(-beta*c)
	if math.Abs(p-want) > 0.01 {
		t.Errorf("equal-bases probability %g, want ~%g", p, want)
	}
}

func TestSubdivideEdges(t *testing.T) {
	g := graph.Cycle(5)
	sub, mids := SubdivideEdges(g)
	if sub.NumVertices() != 10 || sub.NumEdges() != 10 {
		t.Errorf("subdivision shape n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(mids) != 5 {
		t.Fatalf("mids %v", mids)
	}
	// Every midpoint has degree exactly 2, adjacent to the original
	// endpoints of its edge.
	edges := g.Edges()
	for i, w := range mids {
		if sub.Degree(w) != 2 {
			t.Errorf("midpoint %d degree %d", w, sub.Degree(w))
		}
		if !sub.HasEdge(w, edges[i].U) || !sub.HasEdge(w, edges[i].V) {
			t.Errorf("midpoint %d not adjacent to its endpoints", w)
		}
	}
	// Original vertices keep their degree.
	for v := uint32(0); v < 5; v++ {
		if sub.Degree(v) != g.Degree(v) {
			t.Errorf("vertex %d degree changed", v)
		}
	}
}

func TestMidpointWitnessLemma43(t *testing.T) {
	// Lemma 4.3: every cut edge must be witnessed (two shifted distances to
	// its midpoint within 1 of the minimum). The converse need not hold.
	graphs := []*graph.Graph{
		graph.Grid2D(8, 8),
		graph.Cycle(30),
		graph.GNM(40, 100, 5),
	}
	for gi, g := range graphs {
		for _, seed := range []uint64{1, 2, 3} {
			cut, witnessed, err := MidpointWitness(g, 0.3, seed, 2)
			if err != nil {
				t.Fatal(err)
			}
			cuts, wits := 0, 0
			for i := range cut {
				if cut[i] {
					cuts++
					if !witnessed[i] {
						t.Errorf("graph %d seed %d: edge %d cut but not witnessed — Lemma 4.3 violated",
							gi, seed, i)
					}
				}
				if witnessed[i] {
					wits++
				}
			}
			if wits < cuts {
				t.Errorf("graph %d: %d witnesses < %d cuts", gi, wits, cuts)
			}
		}
	}
}

func TestOrderStatisticGapsFact31(t *testing.T) {
	// Fact 3.1: X_(k+1) − X_(k) ~ Exp((n−k)·beta). Check the empirical mean
	// of each gap over many trials: E[gap_k] = 1/((n-k)*beta), where gap_0
	// is X_(1) with rate n*beta.
	const n, beta, trials = 10, 0.5, 20000
	sums := make([]float64, n)
	for t0 := 0; t0 < trials; t0++ {
		gaps := OrderStatisticGaps(n, beta, uint64(t0)*13+7)
		for i, g := range gaps {
			sums[i] += g
		}
	}
	for k := 0; k < n; k++ {
		mean := sums[k] / trials
		want := 1 / (float64(n-k) * beta)
		if math.Abs(mean-want)/want > 0.08 {
			t.Errorf("gap %d: mean %g want %g", k, mean, want)
		}
	}
}

func TestOrderStatisticGapsSumToMax(t *testing.T) {
	gaps := OrderStatisticGaps(100, 0.2, 42)
	var sum float64
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	shifts := GenerateShifts(100, 0.2, 42, ShiftExponential)
	var max float64
	for _, s := range shifts {
		if s > max {
			max = s
		}
	}
	if math.Abs(sum-max) > 1e-9 {
		t.Errorf("gaps sum %g != max %g", sum, max)
	}
}
