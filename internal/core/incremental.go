package core

import "mpx/internal/graph"

// This file is the incremental side of the partition: an O(batch)
// verification that an edge-update batch leaves the decomposition's
// fixpoint untouched, so the hierarchy engine (internal/hier) can reuse a
// level verbatim instead of re-deriving it.
//
// Soundness rests on three facts (docs/determinism.md §"Incremental
// re-derivation"):
//
//  1. The shift plan — shifts, δ_max, start buckets, tie-break ranks — is
//     a function of (n, β, seed, TieBreak, ShiftSource) ONLY. Edges never
//     enter its derivation, so a batch cannot change it.
//
//  2. The output (Center, Dist, Parent) is the unique fixpoint of the
//     round-synchronous claim recurrence: vertex w is claimed at round
//     level(w) = min(bucket[w], 1 + min over neighbors v of level(v))
//     by the minimum packed key (rank[Center[p]], p) among the round's
//     proposers p (its own self-proposal included when bucket[w] ==
//     level(w)). The fixpoint is independent of direction and schedule.
//
//  3. The recurrence is inductive over rounds: round t's claims depend
//     only on claims of rounds < t. An edge change therefore alters the
//     output iff it alters some vertex's proposal set at its claim round
//     in a way that moves the minimum — which is checkable per edge in
//     O(1) given the retained plan.
//
// Per edge {u, v} with claim rounds level(u) <= level(v):
//
//   - Delete: the edge carried a proposal only from u to v at round
//     level(u)+1 (adjacent vertices differ by at most one round, and
//     equal-round neighbors never propose to each other). That proposal
//     was the winner iff Parent[v] == u; removing a non-winning proposal
//     leaves every round's minimum — and hence the whole fixpoint —
//     unchanged. Symmetrically for Parent[u] == v.
//
//   - Insert: the new edge injects a proposal from u to v at round
//     level(u)+1. If level(v) > level(u)+1, v would now be claimed
//     earlier: changed. If level(v) == level(u)+1, the proposal key
//     (rank[Center[u]], u) joins v's claim-round candidate set: changed
//     iff it beats the incumbent winner key (rank[Center[v]], Parent[v])
//     (keys are unique — the proposer id is in the low bits). If
//     level(v) <= level(u), v is claimed no later than u, so the new
//     proposal arrives after v's claim round and changes nothing; u is
//     likewise unaffected since v's proposals reach it no earlier than
//     round level(u)+1.
//
// The check is exact for the cases it accepts and conservative overall:
// UnchangedUnder may answer false for a batch that happens to preserve
// the output (it never inspects beyond one step), but an answer of true
// guarantees bit-identical (Center, Dist, Parent) and an identical round
// schedule (Rounds) on the updated graph. Work counters (Relaxed) are
// schedule metrics, not fixpoint output, and do differ.

// HasPlan reports whether this decomposition retained its shift plan and
// is eligible for UnchangedUnder: built by the unweighted parallel
// Partition with no radius cap. Capped runs (Options.MaxRadius > 0) break
// the one-step argument — a capped tree's non-proposals depend on global
// distances — so they are excluded.
func (d *Decomposition) HasPlan() bool {
	return d.rank != nil && d.bucket != nil && d.maxRadius == 0
}

// claimLevel returns the BFS round at which v was claimed: its distance
// from its center plus the center's start round.
func (d *Decomposition) claimLevel(v uint32) int32 {
	return d.Dist[v] + d.bucket[d.Center[v]]
}

// winnerKey returns the packed (rank, proposer) key that won v's claim
// round. For centers Parent[v] == v, so the key is the self-proposal.
func (d *Decomposition) winnerKey(v uint32) uint64 {
	return uint64(d.rank[d.Center[v]])<<32 | uint64(d.Parent[v])
}

// UnchangedUnder reports whether applying the given effective edge
// changes (canonical inserts and deletes, as produced by
// graph.ApplyBatch) to d.G provably leaves the decomposition bit-identical:
// re-running Partition on the updated graph with the same (β, seed,
// options) would reproduce Center, Dist, Parent, Shifts, DeltaMax and
// Rounds exactly. A false answer means "could not verify in one step" —
// the caller must re-derive — never "definitely changed".
//
// Requires HasPlan; returns false otherwise. Self loops are ignored.
// Inserts must be absent from d.G and deletes present in it (pass
// ApplyResult's effective lists, not the raw batch).
func (d *Decomposition) UnchangedUnder(ins, del []graph.Edge) bool {
	if !d.HasPlan() {
		return false
	}
	for _, e := range del {
		if e.U == e.V {
			continue
		}
		// A deleted support (BFS-tree) edge removes its target's winning
		// proposal; anything else removed a loser or no proposal at all.
		if d.Parent[e.U] == e.V || d.Parent[e.V] == e.U {
			return false
		}
	}
	for _, e := range ins {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		lu, lv := d.claimLevel(u), d.claimLevel(v)
		if lu > lv {
			u, v = v, u
			lu, lv = lv, lu
		}
		if lv-lu >= 2 {
			return false // v would be claimed earlier through the new edge
		}
		if lv-lu == 1 {
			// u proposes to v at v's claim round; unchanged only if the
			// incumbent winner still holds the minimum key.
			if uint64(d.rank[d.Center[u]])<<32|uint64(u) < d.winnerKey(v) {
				return false
			}
		}
	}
	return true
}
