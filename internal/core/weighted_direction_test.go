package core

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

func mustPartitionWeighted(t *testing.T, wg *graph.WeightedGraph, beta float64, opts Options) *WeightedDecomposition {
	t.Helper()
	d, err := PartitionWeightedParallel(wg, beta, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// weightedDirectionGraphs are the cross-path determinism workloads: the
// high-diameter grid, the low-diameter gnm family, and a power-law graph
// (mirroring direction_test.go's unweighted trio).
func weightedDirectionGraphs() []struct {
	name string
	wg   *graph.WeightedGraph
} {
	return []struct {
		name string
		wg   *graph.WeightedGraph
	}{
		{"grid", graph.RandomWeights(graph.Grid2D(18, 22), 1, 6, 3)},
		{"gnm", graph.RandomWeights(graph.GNM(400, 1600, 11), 0.5, 4, 7)},
		{"powerlaw", graph.RandomWeights(graph.RMAT(9, 2600, 13), 1, 9, 5)},
	}
}

// TestWeightedDirectionsBitIdentical is the weighted tentpole determinism
// proof, mirroring TestPartitionDirectionsBitIdentical: push-only,
// pull-only and auto-switching weighted partitions must produce
// byte-identical Center/Parent arrays and bit-identical Dist arrays for
// fixed (graph, β, seed) at every worker count, because the shifted
// distances converge to one min-plus fixpoint in every mode and parents
// are resolved as the minimum packed (distance bits, proposer) key over
// those distances.
func TestWeightedDirectionsBitIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	seeds := []uint64{1, 42}
	for _, tc := range weightedDirectionGraphs() {
		for _, seed := range seeds {
			base := mustPartitionWeighted(t, tc.wg, 0.15,
				Options{Seed: seed, Workers: 1, Direction: DirectionForcePush})
			for _, dir := range []Direction{DirectionForcePush, DirectionForcePull, DirectionAuto} {
				for _, w := range workerCounts {
					d := mustPartitionWeighted(t, tc.wg, 0.15,
						Options{Seed: seed, Workers: w, Direction: dir})
					for v := range base.Center {
						if base.Center[v] != d.Center[v] {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Center[%d]=%d want %d",
								tc.name, seed, dir, w, v, d.Center[v], base.Center[v])
						}
						if math.Float64bits(base.Dist[v]) != math.Float64bits(d.Dist[v]) {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Dist[%d]=%x want %x",
								tc.name, seed, dir, w, v,
								math.Float64bits(d.Dist[v]), math.Float64bits(base.Dist[v]))
						}
						if base.Parent[v] != d.Parent[v] {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Parent[%d]=%d want %d",
								tc.name, seed, dir, w, v, d.Parent[v], base.Parent[v])
						}
					}
				}
			}
		}
	}
}

// weightedGolden hashes the full decomposition output (center, parent and
// the raw IEEE distance bits) with FNV-1a, the golden fingerprint the
// cross-version drift test pins.
func weightedGolden(d *WeightedDecomposition) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	for v := range d.Center {
		put32(d.Center[v])
		put32(d.Parent[v])
		put64(math.Float64bits(d.Dist[v]))
	}
	return h.Sum64()
}

// TestWeightedGoldenOutput pins one fixed (graph, β, seed) decomposition
// to a golden fingerprint, so silent cross-version drift of the weighted
// path (a changed float expression, a different tie rule) fails loudly
// even when the run stays internally consistent across workers and
// directions. Update the constant only with an intentional, documented
// change to the weighted claim resolution.
func TestWeightedGoldenOutput(t *testing.T) {
	const goldenWeighted = uint64(0x3f4c50e4eccdf7dd)
	wg := graph.RandomWeights(graph.Grid2D(12, 13), 1, 5, 9)
	for _, dir := range []Direction{DirectionForcePush, DirectionForcePull, DirectionAuto} {
		for _, w := range []int{1, 2, 8} {
			d := mustPartitionWeighted(t, wg, 0.2, Options{Seed: 5, Workers: w, Direction: dir})
			if got := weightedGolden(d); got != goldenWeighted {
				t.Fatalf("dir=%v workers=%d: golden fingerprint %#x, want %#x", dir, w, got, goldenWeighted)
			}
		}
	}
}

// TestWeightedPullValidates runs the pull engine through the structural
// validator across graph families and β values.
func TestWeightedPullValidates(t *testing.T) {
	cases := []struct {
		name string
		wg   *graph.WeightedGraph
	}{
		{"path", graph.RandomWeights(graph.Path(200), 1, 3, 1)},
		{"cycle", graph.RandomWeights(graph.Cycle(100), 0.5, 2, 2)},
		{"grid", graph.RandomWeights(graph.Grid2D(15, 20), 1, 8, 3)},
		{"complete", graph.RandomWeights(graph.Complete(40), 1, 2, 4)},
		{"star", graph.RandomWeights(graph.Star(100), 1, 4, 5)},
	}
	for _, tc := range cases {
		for _, beta := range []float64{0.05, 0.2, 0.5} {
			d := mustPartitionWeighted(t, tc.wg, beta,
				Options{Seed: 42, Workers: 4, Direction: DirectionForcePull})
			if err := d.Validate(); err != nil {
				t.Errorf("%s beta=%g: %v", tc.name, beta, err)
			}
		}
	}
}

// TestWeightedPullMatchesSequential anchors the pull engine to the
// heap-based shifted-Dijkstra reference, not just to the push engine.
func TestWeightedPullMatchesSequential(t *testing.T) {
	wg := graph.RandomWeights(graph.Grid2D(25, 25), 1, 5, 11)
	opts := Options{Seed: 21, Workers: 4, Direction: DirectionForcePull}
	seq, err := PartitionWeighted(wg, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	par := mustPartitionWeighted(t, wg, 0.1, opts)
	for v := range seq.Center {
		if seq.Center[v] != par.Center[v] {
			t.Fatalf("pull vs sequential: Center[%d]=%d want %d", v, par.Center[v], seq.Center[v])
		}
		if math.Abs(seq.Dist[v]-par.Dist[v]) > 1e-9 {
			t.Fatalf("pull vs sequential: Dist[%d]=%g want %g", v, par.Dist[v], seq.Dist[v])
		}
	}
}

// TestWeightedDirectionsSharedPool reruns the bit-identity check with one
// explicit persistent pool shared by every run (the cmd/mpx deployment
// shape), catching any scratch-reuse state leaking between runs.
func TestWeightedDirectionsSharedPool(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	wg := graph.RandomWeights(graph.GNM(500, 2500, 17), 1, 6, 19)
	base := mustPartitionWeighted(t, wg, 0.1,
		Options{Seed: 2, Workers: 1, Direction: DirectionForcePush, Pool: pool})
	for _, dir := range []Direction{DirectionForcePull, DirectionAuto} {
		for _, w := range []int{2, 8} {
			d := mustPartitionWeighted(t, wg, 0.1,
				Options{Seed: 2, Workers: w, Direction: dir, Pool: pool})
			for v := range base.Center {
				if base.Center[v] != d.Center[v] || base.Parent[v] != d.Parent[v] ||
					math.Float64bits(base.Dist[v]) != math.Float64bits(d.Dist[v]) {
					t.Fatalf("dir=%v workers=%d: mismatch at vertex %d", dir, w, v)
				}
			}
		}
	}
}

// TestWeightedSubUlpWeightsNoCycle drives the sub-ulp regression through
// the full weighted partition: edges far below one ulp of the path length
// produce bit-equal neighbor distances, and the parent resolution must
// stay acyclic (chaseRoot panics on a cycle) and bit-identical across
// directions and worker counts.
func TestWeightedSubUlpWeightsNoCycle(t *testing.T) {
	var edges []graph.WeightedEdge
	for i := uint32(0); i < 49; i++ {
		w := 1.0
		if i%2 == 1 {
			w = 1e-30
		}
		edges = append(edges, graph.WeightedEdge{U: i, V: i + 1, W: w})
	}
	wg, err := graph.FromWeightedEdges(50, edges)
	if err != nil {
		t.Fatal(err)
	}
	base := mustPartitionWeighted(t, wg, 0.2,
		Options{Seed: 4, Workers: 1, Direction: DirectionForcePush})
	for _, dir := range []Direction{DirectionForcePush, DirectionForcePull, DirectionAuto} {
		for _, w := range []int{1, 2, 8} {
			d := mustPartitionWeighted(t, wg, 0.2, Options{Seed: 4, Workers: w, Direction: dir})
			for v := range base.Center {
				if base.Center[v] != d.Center[v] || base.Parent[v] != d.Parent[v] ||
					math.Float64bits(base.Dist[v]) != math.Float64bits(d.Dist[v]) {
					t.Fatalf("dir=%v workers=%d: mismatch at vertex %d", dir, w, v)
				}
			}
		}
	}
}
