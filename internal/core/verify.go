package core

import (
	"fmt"
)

// validationError reports a violated decomposition invariant.
type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }

func validationErrorf(format string, args ...interface{}) error {
	return &validationError{msg: "core: " + fmt.Sprintf(format, args...)}
}

// Validate checks every structural invariant of an unweighted
// decomposition. It is used by the test suite and (at reduced scale) by the
// experiment harness; Theorem 1.2's proof sketch notes the decomposition is
// verifiable in O(m) work, which is what this does:
//
//  1. every vertex has a center and the center belongs to its own piece;
//  2. parent pointers form per-piece trees rooted at the centers, with
//     Dist increasing by exactly 1 along tree edges (so pieces are
//     connected — Lemma 4.1);
//  3. Dist[v] equals the true distance from the center *within the piece*
//     (checked by an in-piece BFS), certifying the strong-diameter bound;
//  4. when shifts are present, Dist[v] ≤ δ_center (the Lemma 4.2 radius
//     argument) and the piece radius bound MaxRadius ≥ Dist[v] holds.
func (d *Decomposition) Validate() error {
	n := d.NumVertices()
	if n == 0 {
		return nil
	}
	if d.G == nil || d.G.NumVertices() != n {
		return validationErrorf("graph/decomposition size mismatch")
	}
	for v := 0; v < n; v++ {
		c := d.Center[v]
		if int(c) >= n {
			return validationErrorf("vertex %d assigned to out-of-range center %d", v, c)
		}
		if d.Center[c] != c {
			return validationErrorf("center %d of vertex %d is not its own center", c, v)
		}
		p := d.Parent[v]
		if uint32(v) == c {
			if p != uint32(v) {
				return validationErrorf("center %d has parent %d", v, p)
			}
			if d.Dist[v] != 0 {
				return validationErrorf("center %d has nonzero dist %d", v, d.Dist[v])
			}
			continue
		}
		if d.Dist[v] <= 0 {
			return validationErrorf("non-center %d has dist %d", v, d.Dist[v])
		}
		if d.Center[p] != c {
			return validationErrorf("parent %d of vertex %d lies in a different piece", p, v)
		}
		if d.Dist[v] != d.Dist[p]+1 {
			return validationErrorf("dist of %d (%d) not parent dist+1 (%d)", v, d.Dist[v], d.Dist[p])
		}
		if !d.G.HasEdge(p, uint32(v)) {
			return validationErrorf("tree edge {%d,%d} not in graph", p, v)
		}
		if d.Shifts != nil {
			if float64(d.Dist[v]) > d.Shifts[c] {
				return validationErrorf("vertex %d at dist %d exceeds center %d's shift %g",
					v, d.Dist[v], c, d.Shifts[c])
			}
		}
	}
	// In-piece BFS distances must match Dist exactly: the claimed tree
	// distance is the true within-piece distance (Lemma 4.1).
	if err := d.checkInPieceDistances(); err != nil {
		return err
	}
	return nil
}

// checkInPieceDistances runs, per piece, a BFS from the center restricted
// to the piece and compares against Dist.
func (d *Decomposition) checkInPieceDistances() error {
	n := d.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []uint32
	for c0 := 0; c0 < n; c0++ {
		c := uint32(c0)
		if d.Center[c] != c {
			continue
		}
		queue = append(queue[:0], c)
		dist[c] = 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range d.G.Neighbors(v) {
				if d.Center[u] == c && dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] == -1 {
			return validationErrorf("vertex %d unreachable from its center within its piece", v)
		}
		if dist[v] != d.Dist[v] {
			return validationErrorf("vertex %d: in-piece distance %d != recorded %d", v, dist[v], d.Dist[v])
		}
	}
	return nil
}

// StrongDiameters computes the exact strong diameter of every piece by
// running an all-pairs BFS inside each piece. Cost is O(size · edges) per
// piece — use on moderate graphs (tests, small experiments); large-scale
// experiments report Radii instead, exactly as the paper does (the radius
// 2-approximates the strong diameter).
func (d *Decomposition) StrongDiameters() map[uint32]int32 {
	members := d.Members()
	out := make(map[uint32]int32, len(members))
	n := d.NumVertices()
	dist := make([]int32, n)
	var queue []uint32
	for c, vs := range members {
		var diam int32
		for _, s := range vs {
			for _, v := range vs {
				dist[v] = -1
			}
			dist[s] = 0
			queue = append(queue[:0], s)
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, u := range d.G.Neighbors(v) {
					if d.Center[u] == c && dist[u] == -1 {
						dist[u] = dist[v] + 1
						queue = append(queue, u)
					}
				}
			}
			for _, v := range vs {
				if dist[v] > diam {
					diam = dist[v]
				}
			}
		}
		out[c] = diam
	}
	return out
}

// BoundaryVertices returns the vertices with at least one neighbor in a
// different piece.
func (d *Decomposition) BoundaryVertices() []uint32 {
	var out []uint32
	for v := 0; v < d.NumVertices(); v++ {
		c := d.Center[v]
		for _, u := range d.G.Neighbors(uint32(v)) {
			if d.Center[u] != c {
				out = append(out, uint32(v))
				break
			}
		}
	}
	return out
}
