package core

import (
	"fmt"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// samePartition fails the test unless the two decompositions are
// bit-identical in every assignment field.
func samePartition(t *testing.T, label string, a, b *Decomposition) {
	t.Helper()
	for v := range a.Center {
		if a.Center[v] != b.Center[v] || a.Dist[v] != b.Dist[v] || a.Parent[v] != b.Parent[v] {
			t.Fatalf("%s: vertex %d differs: center %d/%d dist %d/%d parent %d/%d",
				label, v, a.Center[v], b.Center[v], a.Dist[v], b.Dist[v], a.Parent[v], b.Parent[v])
		}
	}
}

// TestPartitionPoolDeterminism runs Partition on one explicit pool at
// worker counts 1, 2 and 8 in every traversal direction and requires
// bit-identical decompositions — the pool scheduler must not leak physical
// scheduling into results.
func TestPartitionPoolDeterminism(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid2D(60, 60),
		"gnm":  graph.GNM(5000, 20000, 7),
	}
	dirs := []Direction{DirectionAuto, DirectionForcePush, DirectionForcePull}
	for name, g := range graphs {
		for _, dir := range dirs {
			var ref *Decomposition
			for _, w := range []int{1, 2, 8} {
				d, err := Partition(g, 0.1, Options{Seed: 42, Workers: w, Pool: pool, Direction: dir})
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = d
					continue
				}
				samePartition(t, fmt.Sprintf("%s dir=%v workers=%d", name, dir, w), ref, d)
			}
		}
	}
}

// TestPartitionPoolReuseAcrossRuns reuses one pool for many consecutive
// partitions (the cmd/mpx and benchmark-harness pattern) and checks each
// run matches a fresh default-pool run: no scratch or scheduler state may
// bleed between runs.
func TestPartitionPoolReuseAcrossRuns(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	g := graph.GNM(4000, 16000, 3)
	for seed := uint64(0); seed < 5; seed++ {
		got, err := Partition(g, 0.15, Options{Seed: seed, Workers: 8, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Partition(g, 0.15, Options{Seed: seed, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		samePartition(t, fmt.Sprintf("seed=%d", seed), want, got)
		if err := got.Validate(); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
