package core

import (
	"testing"
	"testing/quick"

	"mpx/internal/graph"
)

// randomGraph builds a small random graph from fuzz bytes: every pair of
// consecutive bytes is an edge mod n.
func randomGraph(raw []byte, n int) *graph.Graph {
	edges := make([]graph.Edge, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		edges = append(edges, graph.Edge{
			U: uint32(raw[i]) % uint32(n),
			V: uint32(raw[i+1]) % uint32(n),
		})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestQuickPartitionAlwaysValid(t *testing.T) {
	f := func(raw []byte, seed uint64, betaRaw uint8) bool {
		n := 40
		g := randomGraph(raw, n)
		beta := 0.02 + float64(betaRaw)/255*0.9 // (0.02, 0.92)
		d, err := Partition(g, beta, Options{Seed: seed})
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		g := randomGraph(raw, 30)
		opts := Options{Seed: seed, Workers: 3}
		par, err := Partition(g, 0.2, opts)
		if err != nil {
			return false
		}
		seq, err := PartitionSequential(g, 0.2, opts)
		if err != nil {
			return false
		}
		for v := range par.Center {
			if par.Center[v] != seq.Center[v] || par.Dist[v] != seq.Dist[v] ||
				par.Parent[v] != seq.Parent[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickClusterCountBounds(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		g := randomGraph(raw, 50)
		_, comps := graph.ConnectedComponents(g)
		d, err := Partition(g, 0.3, Options{Seed: seed})
		if err != nil {
			return false
		}
		k := d.NumClusters()
		// At least one piece per component; at most one per vertex.
		return k >= comps && k <= g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickValidityUnderRelabeling(t *testing.T) {
	// Relabeling the graph must not break anything (the algorithm may
	// behave differently — ids feed tie-breaks — but output stays valid).
	f := func(raw []byte, seed uint64) bool {
		g := randomGraph(raw, 35)
		perm := graph.RandomPermutation(35, seed)
		pg, err := graph.Permute(g, perm)
		if err != nil {
			return false
		}
		d, err := Partition(pg, 0.25, Options{Seed: seed})
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickBallGrowingAlwaysValid(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		g := randomGraph(raw, 40)
		d, err := BallGrowing(g, 0.25, seed)
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickWeightedPartitionAlwaysValid(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		g := randomGraph(raw, 30)
		wg := graph.RandomWeights(g, 0.5, 3, seed)
		d, err := PartitionWeighted(wg, 0.2, Options{Seed: seed})
		if err != nil {
			return false
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHarmonicNumber(t *testing.T) {
	if HarmonicNumber(1) != 1 {
		t.Error("H_1")
	}
	// The literal is folded with exact constant arithmetic; compare with
	// tolerance against the float accumulation.
	if h := HarmonicNumber(4); h < 2.083333333 || h > 2.083333334 {
		t.Errorf("H_4 = %v", h)
	}
	if HarmonicNumber(0) != 0 {
		t.Error("H_0")
	}
}

func TestTieBreakAndShiftSourceStrings(t *testing.T) {
	if TieFractional.String() != "fractional" || TiePermutation.String() != "permutation" {
		t.Error("TieBreak strings")
	}
	if ShiftExponential.String() != "exponential" || ShiftQuantile.String() != "quantile" {
		t.Error("ShiftSource strings")
	}
	if TieBreak(9).String() == "" || ShiftSource(9).String() == "" {
		t.Error("unknown enum strings must be non-empty")
	}
}

func TestDecompositionStringer(t *testing.T) {
	g := graph.Path(5)
	d, err := Partition(g, 0.3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := d.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestCutEdgesParallelMatchesSerial(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Grid2D(30, 30),
		graph.RMAT(10, 5000, 3),
	} {
		d, err := Partition(g, 0.2, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			if got, want := d.CutEdgesParallel(w), d.CutEdges(); got != want {
				t.Errorf("workers=%d: parallel cut %d != serial %d", w, got, want)
			}
		}
	}
}
