package core

import (
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// unclaimed is the sentinel claim word; any real proposal (rank<<32|vertex,
// both below 2^32-1) compares smaller.
const unclaimed = ^uint64(0)

// Direction-switch constants in the style of Beamer et al. (SC 2012 — the
// paper's ref [8]), recalibrated for claim resolution: unlike BFS
// bottom-up, which stops at the first frontier parent, a pull round must
// scan each unclaimed vertex's whole neighborhood to find the true minimum
// key, so its cost is the full unexplored arc count. Pull therefore pays
// only once the unexplored arcs fall below a small multiple of the frontier
// arcs (the multiple buys back push's atomic-CAS and scattered-write
// overhead), with a wider exit band as hysteresis.
const (
	pullEnter = 2 // enter pull when frontierArcs*pullEnter > remainingArcs
	pullKeep  = 4 // stay pulling while frontierArcs*pullKeep > remainingArcs
	// pullMinFrac gates entry on frontierArcs > n/pullMinFrac: building the
	// unclaimed cohort costs a fixed O(n) pack, which a thin frontier (the
	// slow wavefront of a high-diameter grid) can never pay back.
	pullMinFrac = 8
)

// partitionScratch owns every piece of per-round state the BFS reuses, so
// a steady-state round allocates nothing beyond the submitted closures:
// per-worker claim/open buffers, their offset scans and arc counters, and
// the double-buffered frontier and pull-cohort lists.
type partitionScratch struct {
	claimBufs [][]uint32
	openBufs  [][]uint32
	arcs      []int64
	offs      []int
	openOffs  []int
	// frontSpare is the buffer the next round's newly-claimed list is
	// compacted into; after each round the dead frontier's buffer takes its
	// place (classic double buffering). cohortSpare plays the same role for
	// the pull cohort.
	frontSpare  []uint32
	cohortSpare []uint32
}

func (sc *partitionScratch) ensure(w int) {
	if cap(sc.claimBufs) < w {
		sc.claimBufs = make([][]uint32, w)
		sc.openBufs = make([][]uint32, w)
		sc.arcs = make([]int64, w)
		sc.offs = make([]int, w+1)
		sc.openOffs = make([]int, w+1)
	}
}

// Partition computes a (β, O(log n/β)) decomposition of g — the paper's
// Algorithm 1/2. Every vertex u draws δ_u ~ Exp(β); v joins the cluster of
// the center minimizing dist(u,v) − δ_u, with same-round ties broken by the
// shift fractional parts (or an explicit permutation, per Options).
//
// The implementation is the Section 5 reduction to a single multi-source
// BFS: vertex u may start a cluster at round ⌊δ_max − δ_u⌋, claims are
// resolved per round by a minimum over (rank(center), proposer) keys, and
// each round is expanded with level-synchronous parallelism. Rounds run in
// one of two directions: push (frontier vertices propose to unclaimed
// neighbors, racing through an atomic minimum) or pull (each unclaimed
// vertex serially scans its own neighborhood and takes the minimum key —
// race-free by construction). Both directions resolve every claim to the
// same minimum over the same proposal set, so the output is bit-identical
// across directions and deterministic for fixed (graph, β, seed) at any
// worker count. Options.Direction selects push, pull, or automatic
// per-round Beamer switching.
//
// Every round executes on the persistent worker pool (Options.Pool) and
// reuses the partitionScratch buffers: frontier compaction is an offset
// scan over per-worker buffer lengths plus a parallel copy, and the
// frontier arc count for the Beamer switch is accumulated inside the claim
// kernel, so steady-state rounds perform no O(n) allocation and no extra
// frontier pass.
//
// Expected cost matches Theorem 1.2: O(m) work and O(log²n/β) depth — here
// realized as O((log n/β) · rounds) with each round a constant number of
// parallel primitives.
//
// Robustness: Options.Ctx is polled between rounds; a cancelled call
// returns (nil, ctx.Err()) with no partial result. A panic inside a round
// kernel (contained by the pool, or raised on the serial path) is
// recovered here and returned as a *parallel.PanicError; the pool and its
// scratch stay reusable either way. See docs/robustness.md.
func Partition(g *graph.Graph, beta float64, opts Options) (d *Decomposition, err error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, parallel.Recovered(r)
		}
	}()
	n := g.NumVertices()
	d = &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}

	plan := newShiftPlan(n, beta, opts)
	d.Shifts = plan.shifts
	d.DeltaMax = plan.deltaMax
	d.rank = plan.rank
	d.bucket = plan.bucket
	d.maxRadius = opts.MaxRadius

	pool := opts.Pool
	claim := make([]uint64, n)
	level := make([]int32, n)
	pool.ForRange(opts.Workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			claim[i] = unclaimed
			level[i] = -1
			d.Parent[i] = uint32(i)
		}
	})

	packed := func(v uint32) uint64 {
		return uint64(plan.rank[v])<<32 | uint64(v)
	}

	sc := &partitionScratch{}
	var frontier []uint32
	var pullList []uint32  // unclaimed cohort, valid only across pull rounds
	var frontierArcs int64 // outgoing arcs of the current frontier
	remainingArcs := g.NumArcs()
	pulling := false
	var relaxed int64
	t := int32(0)
	maxBucket := int32(len(plan.buckets) - 1)
	for {
		// Cancellation point: between rounds only, so no round is ever
		// left partially resolved.
		if cerr := ctxErr(opts.Ctx); cerr != nil {
			return nil, cerr
		}
		// Fast-forward the clock over empty rounds (no frontier, no pending
		// centers until a later bucket).
		if len(frontier) == 0 {
			next := t
			for next <= maxBucket && len(plan.buckets[next]) == 0 {
				next++
			}
			if next > maxBucket {
				break
			}
			t = next
		}
		var bucket []uint32
		if t <= maxBucket {
			bucket = plan.buckets[t]
		}

		// Direction decision; the inputs (frontier size, arc counts) are
		// deterministic, so the push/pull schedule is too.
		switch opts.Direction {
		case DirectionForcePush:
			pulling = false
		case DirectionForcePull:
			pulling = true
		default:
			if pulling {
				pulling = frontierArcs*pullKeep > remainingArcs
			} else {
				pulling = frontierArcs*pullEnter > remainingArcs &&
					frontierArcs > int64(n)/pullMinFrac
			}
		}

		var newly []uint32
		var newArcs int64
		if pulling {
			// The pull cohort is the unclaimed vertex list, kept filtered
			// across consecutive pull rounds so each round costs
			// O(|unclaimed| + arcs(unclaimed)), not O(n). Push rounds claim
			// vertices without maintaining it, so it is rebuilt on re-entry.
			if pullList == nil {
				pullList = pool.PackInto(opts.Workers, n, func(i int) bool {
					return level[i] == -1
				}, sc.cohortSpare)
				sc.cohortSpare = nil
			}
			oldCohort := pullList
			newly, pullList, newArcs = runRoundPull(g, plan, claim, level, d.Center, d.Dist, t, opts, packed, &relaxed, pullList, sc)
			// The dead cohort buffer becomes the next round's compaction
			// target for the open remainder.
			sc.cohortSpare = oldCohort[:0]
		} else {
			if pullList != nil {
				// Leaving pull: the cohort buffer returns to the spare slot.
				if sc.cohortSpare == nil {
					sc.cohortSpare = pullList[:0]
				}
				pullList = nil
			}
			newly, newArcs = runRound(g, frontier, bucket, claim, level, d.Center, d.Dist, opts, packed, &relaxed, sc)
		}

		// Resolution: finalize every vertex claimed this round. Claim words
		// are stable now (barrier above), so plain reads are safe.
		pool.ForRange(opts.Workers, len(newly), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w := newly[i]
				proposer := uint32(claim[w])
				level[w] = t
				if proposer == w {
					d.Center[w] = w
					d.Parent[w] = w
					d.Dist[w] = 0
				} else {
					c := d.Center[proposer]
					d.Center[w] = c
					d.Parent[w] = proposer
					d.Dist[w] = t - plan.bucket[c]
				}
			}
		})
		// The newly claimed vertices are the next frontier and leave the
		// unexplored set; their arc count was accumulated inside the round
		// kernel, so no extra frontier pass is needed.
		frontierArcs = newArcs
		remainingArcs -= newArcs
		// Double-buffer swap: the dead frontier's storage becomes the next
		// round's compaction target.
		sc.frontSpare = frontier[:0]
		frontier = newly
		d.Rounds++
		t++
	}
	d.Relaxed = relaxed
	return d, nil
}

// runRound is the push (top-down) round: it gathers self-proposals from
// this round's start bucket and expansion proposals from the previous
// frontier, resolving them with an atomic minimum per target vertex. It
// returns the set of vertices claimed this round (each exactly once,
// appended by the proposer that first transitioned the claim word away from
// the sentinel) together with their summed out-degree, compacted from the
// per-worker buffers by an offset scan and a parallel copy into the
// scratch's reused output buffer.
func runRound(g *graph.Graph, frontier, bucket []uint32, claim []uint64,
	level []int32, center []uint32, dist []int32, opts Options,
	packed func(uint32) uint64, relaxed *int64, sc *partitionScratch) (newly []uint32, newArcs int64) {

	work := len(frontier) + len(bucket)
	w := parallel.Workers(opts.Workers, work)
	sc.ensure(w)
	bufs := sc.claimBufs[:w]
	arcs := sc.arcs[:w]
	offsets := g.Offsets()
	pool := opts.Pool
	nf, nb := len(frontier), len(bucket)
	pool.Run(w, func(k int) {
		flo, fhi := k*nf/w, (k+1)*nf/w
		blo, bhi := k*nb/w, (k+1)*nb/w
		buf := bufs[k][:0]
		var local, claimedArcs int64
		// Self-proposals: unclaimed vertices whose start time falls in
		// this round propose themselves as centers.
		for i := blo; i < bhi; i++ {
			u := bucket[i]
			if level[u] == -1 {
				if first := proposeMin(&claim[u], packed(u)); first {
					buf = append(buf, u)
					claimedArcs += offsets[u+1] - offsets[u]
				}
			}
		}
		// Expansion proposals: frontier vertices offer their cluster to
		// unclaimed neighbors.
		for i := flo; i < fhi; i++ {
			v := frontier[i]
			if opts.MaxRadius > 0 && dist[v] >= opts.MaxRadius {
				continue // tree capped; stragglers self-start later
			}
			p := packed(center[v])
			for _, u := range g.Neighbors(v) {
				local++
				if level[u] != -1 {
					continue
				}
				if first := proposeMin(&claim[u], p&^0xffffffff|uint64(v)); first {
					buf = append(buf, u)
					claimedArcs += offsets[u+1] - offsets[u]
				}
			}
		}
		bufs[k] = buf
		arcs[k] = claimedArcs
		atomic.AddInt64(relaxed, local)
	})
	for k := 0; k < w; k++ {
		newArcs += arcs[k]
	}
	out := pool.Concat(opts.Workers, sc.frontSpare[:0], bufs)
	sc.frontSpare = nil
	return out, newArcs
}

// runRoundPull is the pull (bottom-up) round: every vertex of the
// unclaimed cohort scans its own neighborhood for round-(t−1) frontier
// members plus its own self-proposal (when its start bucket is t) and takes
// the minimum packed (rank, proposer) key serially. Only the owning vertex
// writes its claim word, so the round is race-free, and the minimum it
// computes is over exactly the proposal set the push round would race
// through an atomic minimum — the resulting claim words, and therefore the
// decomposition, are bit-identical. The cohort splits into the claimed set
// (returned as the next frontier, with its summed out-degree) and the
// still-open remainder (the next round's cohort); both preserve the
// cohort's vertex order and are compacted scan-and-copy style into reused
// buffers.
func runRoundPull(g *graph.Graph, plan *shiftPlan, claim []uint64,
	level []int32, center []uint32, dist []int32, t int32, opts Options,
	packed func(uint32) uint64, relaxed *int64, cohort []uint32,
	sc *partitionScratch) (newly, rest []uint32, newArcs int64) {

	// prev identifies frontier members by their claim round. It is -1 on
	// the very first round (t == 0), where unclaimed vertices also carry
	// level -1 — scanning neighbors there would mistake every unclaimed
	// vertex for a frontier member, so the scan is skipped entirely (the
	// frontier is empty at t == 0 by construction).
	prev := t - 1
	scanNeighbors := prev >= 0
	w := parallel.Workers(opts.Workers, len(cohort))
	sc.ensure(w)
	claimedBufs := sc.claimBufs[:w]
	openBufs := sc.openBufs[:w]
	arcs := sc.arcs[:w]
	offs := sc.offs[:w+1]
	openOffs := sc.openOffs[:w+1]
	offsets := g.Offsets()
	pool := opts.Pool
	nc := len(cohort)
	pool.Run(w, func(k int) {
		lo, hi := k*nc/w, (k+1)*nc/w
		claimedBuf := claimedBufs[k][:0]
		openBuf := openBufs[k][:0]
		var local, claimedArcs int64
		for i := lo; i < hi; i++ {
			u := cohort[i]
			best := unclaimed
			if plan.bucket[u] == t {
				best = packed(u)
			}
			if scanNeighbors {
				for _, v := range g.Neighbors(u) {
					local++
					if level[v] != prev {
						continue // not a current-frontier member
					}
					if opts.MaxRadius > 0 && dist[v] >= opts.MaxRadius {
						continue // tree capped; matches the push-side skip
					}
					if p := packed(center[v])&^0xffffffff | uint64(v); p < best {
						best = p
					}
				}
			}
			if best != unclaimed {
				claim[u] = best
				claimedBuf = append(claimedBuf, u)
				claimedArcs += offsets[u+1] - offsets[u]
			} else {
				openBuf = append(openBuf, u)
			}
		}
		claimedBufs[k] = claimedBuf
		openBufs[k] = openBuf
		arcs[k] = claimedArcs
		atomic.AddInt64(relaxed, local)
	})
	offs[0], openOffs[0] = 0, 0
	for k := 0; k < w; k++ {
		offs[k+1] = offs[k] + len(claimedBufs[k])
		openOffs[k+1] = openOffs[k] + len(openBufs[k])
		newArcs += arcs[k]
	}
	claimedTotal, openTotal := offs[w], openOffs[w]
	newly = parallel.GrowUint32(sc.frontSpare, claimedTotal)
	sc.frontSpare = nil
	rest = parallel.GrowUint32(sc.cohortSpare, openTotal)
	sc.cohortSpare = nil
	if claimedTotal+openTotal < parallel.CompactCutoff || w == 1 {
		for k := 0; k < w; k++ {
			copy(newly[offs[k]:], claimedBufs[k])
			copy(rest[openOffs[k]:], openBufs[k])
		}
	} else {
		pool.Run(w, func(k int) {
			copy(newly[offs[k]:], claimedBufs[k])
			copy(rest[openOffs[k]:], openBufs[k])
		})
	}
	return newly, rest, newArcs
}

// proposeMin lowers *addr to v if smaller and reports whether this call was
// the first to move the word off the unclaimed sentinel (the signal to
// enqueue the target exactly once).
func proposeMin(addr *uint64, v uint64) (first bool) {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return old == unclaimed
		}
	}
}
