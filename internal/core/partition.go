package core

import (
	"sync"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// unclaimed is the sentinel claim word; any real proposal (rank<<32|vertex,
// both below 2^32-1) compares smaller.
const unclaimed = ^uint64(0)

// Partition computes a (β, O(log n/β)) decomposition of g — the paper's
// Algorithm 1/2. Every vertex u draws δ_u ~ Exp(β); v joins the cluster of
// the center minimizing dist(u,v) − δ_u, with same-round ties broken by the
// shift fractional parts (or an explicit permutation, per Options).
//
// The implementation is the Section 5 reduction to a single multi-source
// BFS: vertex u may start a cluster at round ⌊δ_max − δ_u⌋, claims are
// resolved per round by an atomic minimum on (rank(center), proposer), and
// each round is expanded with level-synchronous parallelism. The output is
// deterministic for fixed (graph, β, seed) at any worker count.
//
// Expected cost matches Theorem 1.2: O(m) work and O(log²n/β) depth — here
// realized as O((log n/β) · rounds) with each round a constant number of
// parallel primitives.
func Partition(g *graph.Graph, beta float64, opts Options) (*Decomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := g.NumVertices()
	d := &Decomposition{
		G:      g,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]int32, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}

	plan := newShiftPlan(n, beta, opts)
	d.Shifts = plan.shifts
	d.DeltaMax = plan.deltaMax

	claim := make([]uint64, n)
	level := make([]int32, n)
	parallel.ForRange(opts.Workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			claim[i] = unclaimed
			level[i] = -1
			d.Parent[i] = uint32(i)
		}
	})

	packed := func(v uint32) uint64 {
		return uint64(plan.rank[v])<<32 | uint64(v)
	}

	var frontier []uint32
	var relaxed int64
	t := int32(0)
	maxBucket := int32(len(plan.buckets) - 1)
	for {
		// Fast-forward the clock over empty rounds (no frontier, no pending
		// centers until a later bucket).
		if len(frontier) == 0 {
			next := t
			for next <= maxBucket && len(plan.buckets[next]) == 0 {
				next++
			}
			if next > maxBucket {
				break
			}
			t = next
		}
		var bucket []uint32
		if t <= maxBucket {
			bucket = plan.buckets[t]
		}

		newly := runRound(g, frontier, bucket, claim, level, d.Center, d.Dist, opts, packed, &relaxed)

		// Resolution: finalize every vertex claimed this round. Claim words
		// are stable now (barrier above), so plain reads are safe.
		parallel.ForRange(opts.Workers, len(newly), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w := newly[i]
				proposer := uint32(claim[w])
				level[w] = t
				if proposer == w {
					d.Center[w] = w
					d.Parent[w] = w
					d.Dist[w] = 0
				} else {
					c := d.Center[proposer]
					d.Center[w] = c
					d.Parent[w] = proposer
					d.Dist[w] = t - plan.bucket[c]
				}
			}
		})
		frontier = newly
		d.Rounds++
		t++
	}
	d.Relaxed = relaxed
	return d, nil
}

// runRound gathers self-proposals from this round's start bucket and
// expansion proposals from the previous frontier, resolving them with an
// atomic minimum per target vertex. It returns the set of vertices claimed
// this round (each exactly once, appended by the proposer that first
// transitioned the claim word away from the sentinel).
func runRound(g *graph.Graph, frontier, bucket []uint32, claim []uint64,
	level []int32, center []uint32, dist []int32, opts Options,
	packed func(uint32) uint64, relaxed *int64) []uint32 {

	work := len(frontier) + len(bucket)
	w := parallel.Workers(opts.Workers, work)
	buffers := make([][]uint32, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		flo := k * len(frontier) / w
		fhi := (k + 1) * len(frontier) / w
		blo := k * len(bucket) / w
		bhi := (k + 1) * len(bucket) / w
		go func(k, flo, fhi, blo, bhi int) {
			defer wg.Done()
			var buf []uint32
			var local int64
			// Self-proposals: unclaimed vertices whose start time falls in
			// this round propose themselves as centers.
			for i := blo; i < bhi; i++ {
				u := bucket[i]
				if level[u] == -1 {
					if first := proposeMin(&claim[u], packed(u)); first {
						buf = append(buf, u)
					}
				}
			}
			// Expansion proposals: frontier vertices offer their cluster to
			// unclaimed neighbors.
			for i := flo; i < fhi; i++ {
				v := frontier[i]
				if opts.MaxRadius > 0 && dist[v] >= opts.MaxRadius {
					continue // tree capped; stragglers self-start later
				}
				p := packed(center[v])
				for _, u := range g.Neighbors(v) {
					local++
					if level[u] != -1 {
						continue
					}
					if first := proposeMin(&claim[u], p&^0xffffffff|uint64(v)); first {
						buf = append(buf, u)
					}
				}
			}
			buffers[k] = buf
			atomic.AddInt64(relaxed, local)
		}(k, flo, fhi, blo, bhi)
	}
	wg.Wait()
	var total int
	for _, b := range buffers {
		total += len(b)
	}
	out := make([]uint32, 0, total)
	for _, b := range buffers {
		out = append(out, b...)
	}
	return out
}

// proposeMin lowers *addr to v if smaller and reports whether this call was
// the first to move the word off the unclaimed sentinel (the signal to
// enqueue the target exactly once).
func proposeMin(addr *uint64, v uint64) (first bool) {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return old == unclaimed
		}
	}
}
