package core

import (
	"testing"

	"mpx/internal/graph"
)

// TestPartitionDirectionsBitIdentical is the tentpole determinism proof:
// push-only, pull-only, and auto-switching Partition must produce
// byte-identical Center/Dist/Parent arrays for fixed (graph, β, seed) at
// every worker count, because all three resolve each claim to the same
// minimum packed (rank, proposer) key.
func TestPartitionDirectionsBitIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid2D(25, 30)},
		{"gnm", graph.GNM(400, 1600, 11)},
		{"rmat", graph.RMAT(9, 3000, 13)},
	}
	workerCounts := []int{1, 2, 8}
	seeds := []uint64{1, 42}
	for _, tc := range graphs {
		for _, seed := range seeds {
			base := mustPartition(t, tc.g, 0.15,
				Options{Seed: seed, Workers: 1, Direction: DirectionForcePush})
			for _, dir := range []Direction{DirectionForcePush, DirectionForcePull, DirectionAuto} {
				for _, w := range workerCounts {
					d := mustPartition(t, tc.g, 0.15,
						Options{Seed: seed, Workers: w, Direction: dir})
					for v := range base.Center {
						if base.Center[v] != d.Center[v] {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Center[%d]=%d want %d",
								tc.name, seed, dir, w, v, d.Center[v], base.Center[v])
						}
						if base.Dist[v] != d.Dist[v] {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Dist[%d]=%d want %d",
								tc.name, seed, dir, w, v, d.Dist[v], base.Dist[v])
						}
						if base.Parent[v] != d.Parent[v] {
							t.Fatalf("%s seed=%d dir=%v workers=%d: Parent[%d]=%d want %d",
								tc.name, seed, dir, w, v, d.Parent[v], base.Parent[v])
						}
					}
					if base.Rounds != d.Rounds {
						t.Fatalf("%s seed=%d dir=%v workers=%d: Rounds=%d want %d",
							tc.name, seed, dir, w, d.Rounds, base.Rounds)
					}
				}
			}
		}
	}
}

// TestPartitionPullValidOnFamilies runs the pull engine through the full
// structural validator on the same graph families the push engine is
// checked on.
func TestPartitionPullValidOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(200)},
		{"cycle", graph.Cycle(100)},
		{"grid", graph.Grid2D(20, 30)},
		{"complete", graph.Complete(40)},
		{"star", graph.Star(100)},
		{"hypercube", graph.Hypercube(8)},
		{"disconnected", mustFromEdges(t, 10, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}})},
	}
	for _, tc := range cases {
		for _, beta := range []float64{0.05, 0.2, 0.5} {
			d := mustPartition(t, tc.g, beta,
				Options{Seed: 42, Direction: DirectionForcePull})
			if err := d.Validate(); err != nil {
				t.Errorf("%s beta=%g: %v", tc.name, beta, err)
			}
		}
	}
}

// TestPartitionDirectionsWithOptions checks that the pull engine matches
// push under every option that feeds the claim resolution: tie-breaking
// mode, quantile shifts, and the MaxRadius tree cap.
func TestPartitionDirectionsWithOptions(t *testing.T) {
	g := graph.Grid2D(22, 22)
	variants := []Options{
		{Seed: 3, TieBreak: TiePermutation},
		{Seed: 3, ShiftSource: ShiftQuantile},
		{Seed: 3, MaxRadius: 4},
	}
	for _, base := range variants {
		push := base
		push.Direction = DirectionForcePush
		pull := base
		pull.Direction = DirectionForcePull
		pull.Workers = 4
		dp := mustPartition(t, g, 0.05, push)
		dq := mustPartition(t, g, 0.05, pull)
		for v := range dp.Center {
			if dp.Center[v] != dq.Center[v] || dp.Dist[v] != dq.Dist[v] || dp.Parent[v] != dq.Parent[v] {
				t.Fatalf("opts %+v: push/pull mismatch at vertex %d", base, v)
			}
		}
	}
}

// TestPartitionPullMatchesSequentialReference anchors the pull engine to
// the heap-based sequential reference, not just to the push engine.
func TestPartitionPullMatchesSequentialReference(t *testing.T) {
	g := graph.GNM(250, 900, 5)
	opts := Options{Seed: 17, Workers: 4, Direction: DirectionForcePull}
	par := mustPartition(t, g, 0.15, opts)
	seq, err := PartitionSequential(g, 0.15, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v := range par.Center {
		if par.Center[v] != seq.Center[v] || par.Dist[v] != seq.Dist[v] {
			t.Fatalf("pull vs sequential mismatch at vertex %d", v)
		}
	}
}
