package core

import (
	"math"
	"sort"
	"testing"

	"mpx/internal/graph"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// fracGen is one adversarial input family for the radix-sort property
// test: it fills a frac array of the requested size.
type fracGen struct {
	name string
	gen  func(n int, seed uint64) []float64
}

func sortFracGens() []fracGen {
	return []fracGen{
		{"uniform", func(n int, seed uint64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = xrand.Uniform01(seed, uint64(i))
			}
			return out
		}},
		{"duplicate-heavy", func(n int, seed uint64) []float64 {
			// Only 7 distinct values: every radix bucket is huge and the
			// stable tie-break carries the ordering.
			vals := [7]float64{0, 0.125, 0.25, 0.3, 0.5, 0.7, 0.9375}
			out := make([]float64, n)
			for i := range out {
				out[i] = vals[xrand.Mix(seed, uint64(i))%7]
			}
			return out
		}},
		{"all-equal", func(n int, seed uint64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = 0.4375
			}
			return out
		}},
		{"denormal", func(n int, seed uint64) []float64 {
			// Subnormals (and zero): the exponent bytes are all zero, so
			// only the low mantissa bytes discriminate — the exact regime
			// the skip-pass optimization must not mishandle.
			out := make([]float64, n)
			for i := range out {
				out[i] = math.SmallestNonzeroFloat64 * float64(xrand.Mix(seed, uint64(i))%1024)
			}
			return out
		}},
		{"denormal-mixed", func(n int, seed uint64) []float64 {
			out := make([]float64, n)
			for i := range out {
				switch xrand.Mix(seed, uint64(i)) % 3 {
				case 0:
					out[i] = 0
				case 1:
					out[i] = math.SmallestNonzeroFloat64 * float64(i%5)
				default:
					out[i] = xrand.Uniform01(seed, uint64(i))
				}
			}
			return out
		}},
		{"reverse-sorted", func(n int, seed uint64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(n-i) / float64(n+1)
			}
			return out
		}},
	}
}

// TestSortByFracMatchesSliceStable is the radix-sort property test: for
// every input family, size (straddling the serial/parallel cutoff) and
// worker count, the pool-parallel LSD radix sort must produce exactly the
// ranks sort.SliceStable assigns under the (frac, id) lexicographic order.
// Equality at workers 1, 2 and 8 on one shared pool also proves the ranks
// are independent of the block decomposition.
func TestSortByFracMatchesSliceStable(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	sizes := []int{3, 100, 2047, 2048, 6000}
	for _, g := range sortFracGens() {
		for _, n := range sizes {
			frac := g.gen(n, uint64(n)*0x9e37+1)
			want := make([]uint32, n)
			for i := range want {
				want[i] = uint32(i)
			}
			// The oracle: stable sort on frac alone; stability plus the
			// ascending initial id order realizes the (frac, id) rule.
			sort.SliceStable(want, func(a, b int) bool {
				return frac[want[a]] < frac[want[b]]
			})
			for _, w := range []int{1, 2, 8} {
				order := make([]uint32, n)
				for i := range order {
					order[i] = uint32(i)
				}
				sortByFrac(pool, w, order, frac)
				for i := range order {
					if order[i] != want[i] {
						t.Fatalf("%s n=%d workers=%d: order[%d]=%d want %d",
							g.name, n, w, i, order[i], want[i])
					}
				}
			}
		}
	}
}

// TestSortByFracRanksDriveDeterministicPartition pins the end-to-end
// consequence on a graph big enough (n > the serial cutoff) that the
// parallel radix path actually runs inside newShiftPlan: the fractional
// tie-break ranks feed the packed claim keys directly, so partitions must
// stay bit-identical across worker counts.
func TestSortByFracRanksDriveDeterministicPartition(t *testing.T) {
	g := graph.Grid2D(50, 60) // n=3000 > the 2048 serial cutoff
	base := mustPartition(t, g, 0.1, Options{Seed: 33, Workers: 1})
	for _, w := range []int{2, 8} {
		d := mustPartition(t, g, 0.1, Options{Seed: 33, Workers: w})
		for v := range base.Center {
			if base.Center[v] != d.Center[v] || base.Dist[v] != d.Dist[v] || base.Parent[v] != d.Parent[v] {
				t.Fatalf("workers=%d: partition diverges at vertex %d", w, v)
			}
		}
	}
}
