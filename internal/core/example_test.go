package core_test

import (
	"fmt"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// ExamplePartition shows the basic decomposition call and the two
// guarantees of Theorem 1.2.
func ExamplePartition() {
	g := graph.Grid2D(50, 50)
	d, err := core.Partition(g, 0.2, core.Options{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", d.Validate() == nil)
	fmt.Println("pieces cover all vertices:", len(d.Center) == g.NumVertices())
	fmt.Println("cut fraction below 4*beta:", d.CutFraction() < 0.8)
	// Output:
	// valid: true
	// pieces cover all vertices: true
	// cut fraction below 4*beta: true
}

// ExamplePartition_deterministic shows seed-determinism across worker
// counts.
func ExamplePartition_deterministic() {
	g := graph.Grid2D(20, 20)
	a, _ := core.Partition(g, 0.1, core.Options{Seed: 3, Workers: 1})
	b, _ := core.Partition(g, 0.1, core.Options{Seed: 3, Workers: 8})
	same := true
	for v := range a.Center {
		if a.Center[v] != b.Center[v] {
			same = false
		}
	}
	fmt.Println("identical at 1 and 8 workers:", same)
	// Output:
	// identical at 1 and 8 workers: true
}

// ExampleBallGrowing runs the classical sequential baseline.
func ExampleBallGrowing() {
	g := graph.Cycle(100)
	d, err := core.BallGrowing(g, 0.2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters cover cycle:", len(d.Center) == 100)
	fmt.Println("at least one piece:", d.NumClusters() >= 1)
	// Output:
	// clusters cover cycle: true
	// at least one piece: true
}

// ExamplePartitionWeighted decomposes a weighted graph (paper Section 6).
func ExamplePartitionWeighted() {
	wg := graph.RandomWeights(graph.Grid2D(15, 15), 1, 5, 2)
	d, err := core.PartitionWeighted(wg, 0.1, core.Options{Seed: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", d.Validate() == nil)
	fmt.Println("radius bounded by max shift:", d.MaxRadius() <= d.DeltaMax)
	// Output:
	// valid: true
	// radius bounded by max shift: true
}

// ExampleGenerateShifts draws the exponential shifts in isolation
// (Lemma 4.2 studies their maximum).
func ExampleGenerateShifts() {
	shifts := core.GenerateShifts(5, 0.5, 42, core.ShiftExponential)
	allPositive := true
	for _, s := range shifts {
		if s < 0 {
			allPositive = false
		}
	}
	fmt.Println("5 shifts, all non-negative:", len(shifts) == 5 && allPositive)
	// Output:
	// 5 shifts, all non-negative: true
}
