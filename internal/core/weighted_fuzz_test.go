package core

import (
	"math"
	"testing"

	"mpx/internal/graph"
)

// FuzzPartitionWeighted checks the structural invariants of the weighted
// parallel partition on arbitrary weighted graphs, traversal directions
// and worker counts: every vertex is claimed exactly once (Center is a
// total function into self-claiming centers), centers claim themselves,
// every cluster radius respects its center's shift bound, distances are
// never NaN/Inf, and the output is bit-identical to the workers=1 push
// run of the same instance.
func FuzzPartitionWeighted(f *testing.F) {
	f.Add(uint16(40), uint16(80), uint64(1), byte(20), byte(0))
	f.Add(uint16(3), uint16(1), uint64(7), byte(90), byte(1))
	f.Add(uint16(200), uint16(900), uint64(42), byte(5), byte(2))
	f.Add(uint16(64), uint16(0), uint64(3), byte(50), byte(5)) // edgeless
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed uint64, betaRaw, modeRaw byte) {
		n := int(nRaw%300) + 2
		maxM := int64(n) * int64(n-1) / 4
		if maxM < 1 {
			maxM = 1
		}
		m := int64(mRaw) % maxM
		g := graph.GNM(n, m, seed)
		wg := graph.RandomWeights(g, 0.25, 8, seed^0x9e3779b97f4a7c15)
		beta := 0.02 + float64(betaRaw%96)/100
		dir := []Direction{DirectionAuto, DirectionForcePush, DirectionForcePull}[modeRaw%3]
		workers := 1 + int(modeRaw%8)
		d, err := PartitionWeightedParallel(wg, beta, 0, Options{Seed: seed, Workers: workers, Direction: dir})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Center) != n || len(d.Dist) != n || len(d.Parent) != n {
			t.Fatalf("output arrays have wrong length for n=%d", n)
		}
		for v := 0; v < n; v++ {
			c := d.Center[v]
			if int(c) >= n {
				t.Fatalf("vertex %d claimed by out-of-range center %d", v, c)
			}
			if d.Center[c] != c {
				t.Fatalf("vertex %d claimed by %d, which is not its own center", v, c)
			}
			if uint32(v) == c && (d.Parent[v] != uint32(v) || d.Dist[v] != 0) {
				t.Fatalf("center %d has parent %d dist %g", v, d.Parent[v], d.Dist[v])
			}
			if math.IsNaN(d.Dist[v]) || math.IsInf(d.Dist[v], 0) {
				t.Fatalf("vertex %d has non-finite distance %g", v, d.Dist[v])
			}
			if d.Dist[v] < 0 {
				t.Fatalf("vertex %d has negative distance %g", v, d.Dist[v])
			}
			if d.Dist[v] > d.Shifts[c]+1e-9 {
				t.Fatalf("vertex %d at distance %g exceeds center %d's shift %g (radius bound)",
					v, d.Dist[v], c, d.Shifts[c])
			}
		}
		// Full structural validation: tree edges exist, distances are
		// consistent along parents.
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		// Cross-path determinism: the same instance at workers=1 push must
		// reproduce the output bit for bit.
		ref, err := PartitionWeightedParallel(wg, beta, 0,
			Options{Seed: seed, Workers: 1, Direction: DirectionForcePush})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if ref.Center[v] != d.Center[v] || ref.Parent[v] != d.Parent[v] ||
				math.Float64bits(ref.Dist[v]) != math.Float64bits(d.Dist[v]) {
				t.Fatalf("workers=%d dir=%v diverges from workers=1 push at vertex %d", workers, dir, v)
			}
		}
	})
}
