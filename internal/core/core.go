// Package core implements the paper's primary contribution: the parallel
// low-diameter decomposition of Miller, Peng and Xu (SPAA 2013), "Parallel
// Graph Decompositions Using Random Shifts".
//
// Given an undirected unweighted graph G and a parameter β, Partition
// draws an independent shift δ_u ~ Exp(β) for every vertex u and assigns
// each vertex v to the cluster of the center u minimizing the shifted
// distance dist(u,v) − δ_u (the paper's Algorithm 2). The result is a
// (β, O(log n / β)) decomposition with high probability: every piece has
// strong diameter O(log n / β) and at most a βm edges cross between pieces
// in expectation.
//
// The parallel implementation follows the paper's Section 5: a single
// multi-source BFS in which vertex u wakes up as a fresh center once the
// BFS clock passes δ_max − δ_u, with the fractional parts of the shifts
// acting as a random tie-breaking permutation among clusters whose claims
// arrive in the same round. For a fixed seed the output is identical at any
// worker count.
//
// The package also provides the sequential references and baselines the
// experiments compare against (exact shifted-Dijkstra references, classical
// sequential ball growing, an iterative-centers scheme in the style of
// Blelloch et al. 2011), and the weighted extension sketched in the paper's
// Section 6.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// ctxErr polls ctx at an engine boundary (between rounds or levels; never
// inside a claim kernel). A nil ctx is never cancelled. The poll calls
// ctx.Err() directly rather than selecting on Done() so fault-injection
// contexts that trip on the Nth poll observe every boundary.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// TieBreak selects how same-round (equal integer shifted distance) cluster
// claims are ordered.
type TieBreak int

const (
	// TieFractional ranks clusters by the fractional part of their start
	// time δ_max − δ_u — the paper's Algorithm 2 tie-break realized exactly.
	TieFractional TieBreak = iota
	// TiePermutation ranks clusters by an independent uniform random
	// permutation of the vertices, the substitution Section 5 argues is
	// equivalent.
	TiePermutation
)

func (t TieBreak) String() string {
	switch t {
	case TieFractional:
		return "fractional"
	case TiePermutation:
		return "permutation"
	default:
		return fmt.Sprintf("TieBreak(%d)", int(t))
	}
}

// ShiftSource selects how the per-vertex shift values are generated.
type ShiftSource int

const (
	// ShiftExponential draws δ_u i.i.d. from Exp(β) (the analyzed scheme).
	ShiftExponential ShiftSource = iota
	// ShiftQuantile assigns δ_u from the Exp(β) quantiles of a random
	// permutation position — the Section 5 suggestion of avoiding the
	// random-variate generation entirely: δ_u = F⁻¹((π(u)+½)/n).
	ShiftQuantile
)

func (s ShiftSource) String() string {
	switch s {
	case ShiftExponential:
		return "exponential"
	case ShiftQuantile:
		return "quantile"
	default:
		return fmt.Sprintf("ShiftSource(%d)", int(s))
	}
}

// Direction selects how Partition's BFS rounds traverse the graph.
type Direction int

const (
	// DirectionAuto switches per round between push (top-down) and pull
	// (bottom-up) with the Beamer alpha/beta heuristic — push while the
	// frontier's outgoing arcs are few, pull once they dominate the
	// unexplored arcs, and back again as the frontier drains.
	DirectionAuto Direction = iota
	// DirectionForcePush pins every round to top-down expansion (the
	// original atomic-min push engine).
	DirectionForcePush
	// DirectionForcePull pins every round to bottom-up scans (each
	// unclaimed vertex serially minimizes over its neighborhood).
	DirectionForcePull
)

func (d Direction) String() string {
	switch d {
	case DirectionAuto:
		return "auto"
	case DirectionForcePush:
		return "push"
	case DirectionForcePull:
		return "pull"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Options configure Partition. The zero value is valid: seed 0, GOMAXPROCS
// workers, fractional tie-breaking, exponential shifts, automatic traversal
// direction.
type Options struct {
	// Ctx, when non-nil, cancels a partition in flight. It is polled only
	// at round boundaries — never inside a claim kernel — so cancellation
	// cannot produce a partially-resolved round: a cancelled call returns
	// (nil, ctx.Err()) and nothing else, leaving all caller state
	// untouched. Nil means never cancelled.
	Ctx context.Context
	// Seed fixes all randomness. Two runs with the same seed, graph and β
	// produce identical decompositions at any worker count.
	Seed uint64
	// Workers caps logical parallelism (the deterministic block
	// decomposition of every round); <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Pool is the persistent worker pool every parallel round executes on;
	// nil means the shared parallel.Default() pool. Construct one pool per
	// process (cmd/mpx and the benchmark harness do) and pass it here so
	// no round pays goroutine spawn costs.
	Pool *parallel.Pool
	// TieBreak selects the same-round claim ordering.
	TieBreak TieBreak
	// ShiftSource selects the shift distribution.
	ShiftSource ShiftSource
	// Direction selects the per-round traversal mode, for both the
	// unweighted Partition and the weighted PartitionWeightedParallel.
	// Push and pull rounds resolve claims to the same minimum packed key
	// ((rank, proposer) for the unweighted BFS, (distance bits, proposer)
	// for the weighted Δ-stepping), so every mode produces the identical
	// decomposition; the choice only moves work between cache-friendly
	// dense scans and sparse expansions. See docs/determinism.md.
	Direction Direction
	// MaxRadius, when positive, aborts BFS trees at this distance from
	// their center; the proof of Theorem 1.2 notes the algorithm may be
	// stopped once a piece exceeds the O(log n/β) radius bound and retried.
	// Zero means no cap. Vertices beyond a capped tree start their own
	// clusters when their own start time arrives, so the output is still a
	// valid partition — only the shifted-distance optimality is truncated.
	MaxRadius int32
}

// Decomposition is the result of a partition of an unweighted graph.
type Decomposition struct {
	// G is the decomposed graph.
	G *graph.Graph
	// Beta is the β the decomposition was computed for.
	Beta float64
	// Center[v] is the id of the center whose cluster contains v;
	// Center[c] == c exactly for cluster centers.
	Center []uint32
	// Dist[v] is dist(Center[v], v) along the claimed BFS tree, which by
	// Lemma 4.1 is also the true within-piece distance to the center.
	Dist []int32
	// Parent[v] is the BFS-tree parent of v within its cluster (itself for
	// centers). The per-cluster trees are shortest-path trees from the
	// center (used by the spanner and low-stretch-tree applications).
	Parent []uint32
	// Shifts are the δ_u used; Shifts[v] is the shift of vertex v.
	Shifts []float64
	// DeltaMax is max_u δ_u.
	DeltaMax float64
	// Rounds is the number of synchronous BFS rounds executed — the PRAM
	// depth proxy reported by experiment E5.
	Rounds int
	// Relaxed is the number of directed edges examined — the work proxy.
	Relaxed int64

	// rank and bucket retain the shift plan's derived arrays (tie-break
	// ranks and start buckets). They are edge-independent — functions of
	// (n, β, seed, TieBreak, ShiftSource) only — and let UnchangedUnder
	// re-evaluate claim keys in O(1) per edge without re-deriving the plan.
	// Unweighted Partition always sets them (they alias plan storage that
	// is allocated regardless); other constructors leave them nil, which
	// disables the incremental check.
	rank   []uint32
	bucket []int32
	// maxRadius records Options.MaxRadius; UnchangedUnder is only sound
	// for uncapped runs.
	maxRadius int32
}

// ErrBeta reports a β outside the supported range (0, 1).
var ErrBeta = errors.New("core: beta must lie in (0, 1)")

// NumVertices returns the number of vertices of the decomposed graph.
func (d *Decomposition) NumVertices() int { return len(d.Center) }

// Centers returns the sorted list of cluster centers.
func (d *Decomposition) Centers() []uint32 {
	var cs []uint32
	for v, c := range d.Center {
		if uint32(v) == c {
			cs = append(cs, c)
		}
	}
	return cs
}

// NumClusters returns the number of pieces.
func (d *Decomposition) NumClusters() int {
	n := 0
	for v, c := range d.Center {
		if uint32(v) == c {
			n++
		}
	}
	return n
}

// ClusterSizes returns a map from center id to piece size.
func (d *Decomposition) ClusterSizes() map[uint32]int {
	sizes := make(map[uint32]int)
	for _, c := range d.Center {
		sizes[c]++
	}
	return sizes
}

// Members returns the vertices of each cluster keyed by center.
func (d *Decomposition) Members() map[uint32][]uint32 {
	members := make(map[uint32][]uint32)
	for v, c := range d.Center {
		members[c] = append(members[c], uint32(v))
	}
	return members
}

// Radii returns, per center, the eccentricity of the center within its
// piece (max Dist over members). The paper bounds the strong diameter by
// twice this radius and uses the radius itself as the diameter estimate.
func (d *Decomposition) Radii() map[uint32]int32 {
	radii := make(map[uint32]int32)
	for v, c := range d.Center {
		if r, ok := radii[c]; !ok || d.Dist[v] > r {
			radii[c] = d.Dist[v]
		}
	}
	return radii
}

// MaxRadius returns the largest piece radius (0 for empty graphs).
func (d *Decomposition) MaxRadius() int32 {
	var max int32
	for _, dist := range d.Dist {
		if dist > max {
			max = dist
		}
	}
	return max
}

// CutEdges counts the undirected edges whose endpoints lie in different
// pieces.
func (d *Decomposition) CutEdges() int64 {
	offsets := d.G.Offsets()
	adj := d.G.Adjacency()
	var cut int64
	for v := 0; v < d.G.NumVertices(); v++ {
		cv := d.Center[v]
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if d.Center[adj[i]] != cv {
				cut++
			}
		}
	}
	return cut / 2
}

// CutFraction returns CutEdges / m, the β-side quality measure; it returns
// 0 for edgeless graphs.
func (d *Decomposition) CutFraction() float64 {
	m := d.G.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(d.CutEdges()) / float64(m)
}

// SizeHistogram returns sorted piece sizes (ascending).
func (d *Decomposition) SizeHistogram() []int {
	sizes := d.ClusterSizes()
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// String summarizes the decomposition.
func (d *Decomposition) String() string {
	return fmt.Sprintf("decomposition{n=%d clusters=%d maxRadius=%d cut=%.4f beta=%g}",
		d.NumVertices(), d.NumClusters(), d.MaxRadius(), d.CutFraction(), d.Beta)
}

// CutEdgesParallel is CutEdges computed with a parallel reduction over the
// CSR arcs; used by the large experiment workloads. Result is identical to
// CutEdges.
func (d *Decomposition) CutEdgesParallel(workers int) int64 {
	offsets := d.G.Offsets()
	adj := d.G.Adjacency()
	arcs := parallel.ReduceInt64(workers, d.G.NumVertices(), func(v int) int64 {
		cv := d.Center[v]
		var c int64
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if d.Center[adj[i]] != cv {
				c++
			}
		}
		return c
	})
	return arcs / 2
}
