package core

import (
	"container/heap"
	"math"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// WeightedDecomposition is the result of PartitionWeighted.
type WeightedDecomposition struct {
	G        *graph.WeightedGraph
	Beta     float64
	Center   []uint32
	Dist     []float64 // weighted distance to the assigned center
	Parent   []uint32
	Shifts   []float64
	DeltaMax float64
	// Rounds is the number of parallel relaxation rounds executed when the
	// decomposition was computed by PartitionWeightedParallel (zero for the
	// sequential Dijkstra path) — the Section 6 depth measurement.
	Rounds int
}

// PartitionWeighted extends Partition to positively weighted graphs, the
// direction sketched in the paper's Section 6: the analysis of Section 4
// carries over verbatim (shifts are Exp(β), assignment minimizes
// dist_w(u,v) − δ_u), and an edge of weight w is cut with probability
// O(βw). The implementation is a shifted Dijkstra from an implicit
// super-source; it is sequential because, as the paper notes, hop count no
// longer bounds depth in the weighted setting.
//
// The returned pieces have weighted radius at most δ_max = O(log n / β) in
// expectation and the expected total weight of cut edges is O(β · Σ_e w_e).
func PartitionWeighted(wg *graph.WeightedGraph, beta float64, opts Options) (*WeightedDecomposition, error) {
	if beta <= 0 || beta >= 1 {
		return nil, ErrBeta
	}
	n := wg.NumVertices()
	d := &WeightedDecomposition{
		G:      wg,
		Beta:   beta,
		Center: make([]uint32, n),
		Dist:   make([]float64, n),
		Parent: make([]uint32, n),
	}
	if n == 0 {
		return d, nil
	}
	d.Shifts = GenerateShifts(n, beta, opts.Seed, opts.ShiftSource)
	d.DeltaMax, _ = parallel.MaxFloat64(opts.Workers, n, func(i int) float64 { return d.Shifts[i] })

	type wlabel struct {
		f       float64
		center  uint32
		settled bool
	}
	labels := make([]wlabel, n)
	h := &floatRefHeap{}
	for v := 0; v < n; v++ {
		start := d.DeltaMax - d.Shifts[v]
		labels[v] = wlabel{f: start, center: uint32(v)}
		heap.Push(h, floatRefItem{f: start, center: uint32(v), proposer: uint32(v), target: uint32(v)})
	}
	settled := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(floatRefItem)
		lb := &labels[it.target]
		if lb.settled || it.f != lb.f || it.center != lb.center {
			continue
		}
		// Serial Dijkstra has no round boundaries; poll Options.Ctx on a
		// fixed settle cadence so -timeout applies to -algo weighted too.
		if settled%1024 == 0 {
			if cerr := ctxErr(opts.Ctx); cerr != nil {
				return nil, cerr
			}
		}
		settled++
		lb.settled = true
		v := it.target
		d.Center[v] = it.center
		d.Parent[v] = it.proposer
		if it.center == v && it.proposer == v {
			d.Dist[v] = 0
		} else {
			// Weighted distance along the tree edge from the proposer.
			d.Dist[v] = d.Dist[it.proposer] + edgeWeight(wg, it.proposer, v)
		}
		nbrs, ws := wg.Neighbors(v)
		for i, u := range nbrs {
			lu := &labels[u]
			if lu.settled {
				continue
			}
			nf := it.f + ws[i]
			if nf < lu.f || (nf == lu.f && it.center < lu.center) {
				lu.f, lu.center = nf, it.center
				heap.Push(h, floatRefItem{f: nf, center: it.center, proposer: v, target: u})
			}
		}
	}
	return d, nil
}

// edgeWeight returns the weight of edge {u, v}; both directions carry the
// same weight by construction. It panics if the edge does not exist.
func edgeWeight(wg *graph.WeightedGraph, u, v uint32) float64 {
	nbrs, ws := wg.Neighbors(u)
	for i, x := range nbrs {
		if x == v {
			return ws[i]
		}
	}
	panic("core: edgeWeight on non-edge")
}

// NumClusters returns the number of pieces.
func (d *WeightedDecomposition) NumClusters() int {
	c := 0
	for v, ctr := range d.Center {
		if uint32(v) == ctr {
			c++
		}
	}
	return c
}

// MaxRadius returns the largest weighted distance from any vertex to its
// center.
func (d *WeightedDecomposition) MaxRadius() float64 {
	var max float64
	for _, x := range d.Dist {
		if x > max {
			max = x
		}
	}
	return max
}

// CutWeightFraction returns (total weight of cut edges) / (total weight of
// all edges), the weighted analogue of CutFraction.
func (d *WeightedDecomposition) CutWeightFraction() float64 {
	n := d.G.NumVertices()
	var cutW, totalW float64
	for v := 0; v < n; v++ {
		nbrs, ws := d.G.Neighbors(uint32(v))
		for i, u := range nbrs {
			if uint32(v) < u {
				totalW += ws[i]
				if d.Center[v] != d.Center[u] {
					cutW += ws[i]
				}
			}
		}
	}
	if totalW == 0 {
		return 0
	}
	return cutW / totalW
}

// CutEdgeFraction returns (number of cut edges) / m for the weighted
// decomposition.
func (d *WeightedDecomposition) CutEdgeFraction() float64 {
	n := d.G.NumVertices()
	var cut, m int64
	for v := 0; v < n; v++ {
		nbrs, _ := d.G.Neighbors(uint32(v))
		for _, u := range nbrs {
			if uint32(v) < u {
				m++
				if d.Center[v] != d.Center[u] {
					cut++
				}
			}
		}
	}
	if m == 0 {
		return 0
	}
	return float64(cut) / float64(m)
}

// Validate checks the structural invariants of a weighted decomposition:
// centers belong to their own pieces, tree edges exist, distances are
// consistent along parents, and every piece radius is at most the center's
// shift (the paper's Lemma 4.2 argument: dist(u,v) ≤ δ_u − δ_v ≤ δ_u).
func (d *WeightedDecomposition) Validate() error {
	const eps = 1e-9
	for v := range d.Center {
		c := d.Center[v]
		if d.Center[c] != c {
			return validationErrorf("weighted: center %d of vertex %d is not its own center", c, v)
		}
		p := d.Parent[v]
		if uint32(v) == c {
			if p != uint32(v) || d.Dist[v] != 0 {
				return validationErrorf("weighted: center %d has bad parent/dist", v)
			}
			continue
		}
		if d.Center[p] != c {
			return validationErrorf("weighted: parent %d of %d lies in another piece", p, v)
		}
		w := edgeWeight(d.G, p, uint32(v))
		if math.Abs(d.Dist[v]-(d.Dist[p]+w)) > eps {
			return validationErrorf("weighted: distance of %d inconsistent with parent", v)
		}
		if d.Dist[v] > d.Shifts[c]+eps {
			return validationErrorf("weighted: vertex %d at distance %g exceeds center shift %g",
				v, d.Dist[v], d.Shifts[c])
		}
	}
	return nil
}
