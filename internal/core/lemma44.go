package core

import (
	"sort"

	"mpx/internal/bfs"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// This file implements the probabilistic machinery behind the paper's key
// partition lemma (Lemma 4.4) so the experiment suite can measure it
// directly rather than only through the aggregate cut fraction:
//
//   Let d_1 <= ... <= d_n be arbitrary values and δ_1...δ_n independent
//   Exp(β). Then the probability that the smallest and second smallest
//   values of d_i − δ_i are within c of each other is at most O(βc).
//
// Lemma 4.3 connects this to edges: an edge uv with midpoint w can be cut
// only if two different centers have shifted distance to w within 1 of the
// minimum. SubdivideEdges builds the graph with explicit midpoints (each
// edge replaced by two half edges of length 1/2, scaled to integer length 1
// by doubling all lengths) so tests can exercise Lemma 4.3 verbatim.

// TwoWithinC draws δ_i ~ Exp(beta) for the given base values d_i and
// reports whether the two smallest shifted values d_i − δ_i lie within c of
// each other. One Bernoulli sample of the Lemma 4.4 event.
func TwoWithinC(d []float64, beta, c float64, seed uint64) bool {
	if len(d) < 2 {
		return false
	}
	best, second := 1e308, 1e308
	for i, di := range d {
		v := di - xrand.Exp(seed, uint64(i), beta)
		if v < best {
			second = best
			best = v
		} else if v < second {
			second = v
		}
	}
	return second-best <= c
}

// Lemma44Probability estimates Pr[second − best <= c] over the given trial
// count; the paper bounds it by 1 − exp(−βc) < βc.
func Lemma44Probability(d []float64, beta, c float64, trials int, seed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	hits := 0
	for t := 0; t < trials; t++ {
		if TwoWithinC(d, beta, c, xrand.Mix(seed, uint64(t))) {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// SubdivideEdges returns the graph in which every edge {u,v} is replaced by
// a path u—w—v through a fresh midpoint vertex w, plus the mapping from
// original edge index (in g.Edges() order) to its midpoint id. Distances in
// the subdivision are exactly twice the half-integer distances of the
// paper's midpoint argument (Lemma 4.3).
func SubdivideEdges(g *graph.Graph) (*graph.Graph, []uint32) {
	n := g.NumVertices()
	edges := g.Edges()
	sub := make([]graph.Edge, 0, 2*len(edges))
	mids := make([]uint32, len(edges))
	for i, e := range edges {
		w := uint32(n + i)
		mids[i] = w
		sub = append(sub, graph.Edge{U: e.U, V: w}, graph.Edge{U: w, V: e.V})
	}
	out, err := graph.FromEdges(n+len(edges), sub)
	if err != nil {
		panic(err) // construction is in-range by definition
	}
	return out, mids
}

// MidpointWitness reports, for each original edge, whether the Lemma 4.3
// necessary condition for being cut held in a given shift sample: at least
// two distinct vertices' shifted distances to the edge midpoint lie within
// 1 of the minimum. Distances are measured in the subdivided graph (where
// one original hop = two subdivided hops, so "within 1" becomes "within 2").
//
// It returns (cut, witnessed): whether each edge was actually cut by the
// decomposition with those shifts, and whether the condition held. Lemma
// 4.3 asserts cut[i] implies witnessed[i].
func MidpointWitness(g *graph.Graph, beta float64, seed uint64, workers int) (cut, witnessed []bool, err error) {
	d, err := Partition(g, beta, Options{Seed: seed, Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	edges := g.Edges()
	cut = make([]bool, len(edges))
	for i, e := range edges {
		cut[i] = d.Center[e.U] != d.Center[e.V]
	}

	// Shifted distances to midpoints, exactly: run a Dijkstra on the
	// subdivided graph from a super source with arc length 2*(δmax − δu) to
	// each original vertex u (doubling keeps integer+fraction structure but
	// floats are fine here: this is a measurement, not the algorithm).
	subG, mids := SubdivideEdges(g)
	wedges := make([]graph.WeightedEdge, 0, subG.NumEdges())
	for _, e := range subG.Edges() {
		wedges = append(wedges, graph.WeightedEdge{U: e.U, V: e.V, W: 1})
	}
	wsub, err := graph.FromWeightedEdges(subG.NumVertices(), wedges)
	if err != nil {
		return nil, nil, err
	}
	n := g.NumVertices()
	witnessed = make([]bool, len(edges))
	// For each midpoint we need the two smallest values of
	// 2*dist_G(u, w) − 2δ_u over all u, which takes one single-source pass
	// per vertex (O(nm) total): exact, so only run on moderate graphs.
	if int64(len(edges))*int64(n) > 400_000_000 {
		return nil, nil, errTooLargeForWitness
	}
	type two struct{ best, second float64 }
	acc := make([]two, len(mids))
	for i := range acc {
		acc[i] = two{1e308, 1e308}
	}
	for u := 0; u < n; u++ {
		dist := bfs.DijkstraWeighted(wsub, uint32(u))
		shift := 2 * d.Shifts[u]
		for i, w := range mids {
			v := dist[w] - shift
			if v < acc[i].best {
				acc[i].second = acc[i].best
				acc[i].best = v
			} else if v < acc[i].second {
				acc[i].second = v
			}
		}
	}
	for i := range mids {
		// "within 1" in original units = within 2 in doubled units.
		witnessed[i] = acc[i].second-acc[i].best <= 2
	}
	return cut, witnessed, nil
}

var errTooLargeForWitness = errorConst("core: graph too large for exact midpoint witness computation")

type errorConst string

func (e errorConst) Error() string { return string(e) }

// OrderStatisticGaps returns the gaps X_(k+1) − X_(k) of n i.i.d. Exp(beta)
// samples, the quantities Fact 3.1 says are independent exponentials with
// rates (n−k)·beta. Used by the E13 experiment to verify the fact the whole
// analysis rests on.
func OrderStatisticGaps(n int, beta float64, seed uint64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = xrand.Exp(seed, uint64(i), beta)
	}
	sort.Float64s(xs)
	gaps := make([]float64, n)
	gaps[0] = xs[0]
	for i := 1; i < n; i++ {
		gaps[i] = xs[i] - xs[i-1]
	}
	return gaps
}
