package core

import (
	"sync"
	"testing"

	"mpx/internal/graph"
)

// Stress and failure-injection tests: adversarial shapes for the round
// machinery, concurrent use, and resource-pressure scenarios.

func TestPartitionManyRoundsTinyBeta(t *testing.T) {
	// Tiny beta => huge shifts => thousands of rounds with long empty
	// stretches the clock must fast-forward over.
	g := graph.Path(50)
	d := mustPartition(t, g, 0.002, Options{Seed: 1})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumClusters() < 1 {
		t.Error("no clusters")
	}
}

func TestPartitionStarHighContention(t *testing.T) {
	// Every leaf proposes to the hub (or the hub to every leaf) in one
	// round: maximal CAS contention on a single claim word.
	g := graph.Star(20000)
	d := mustPartition(t, g, 0.3, Options{Seed: 2, Workers: 8})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCompleteGraphOneRoundClaimsAll(t *testing.T) {
	// Dense graph: one cluster typically absorbs everything within two
	// rounds; exercises the full-frontier path.
	g := graph.Complete(300)
	d := mustPartition(t, g, 0.05, Options{Seed: 3, Workers: 4})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.MaxRadius() > 2 {
		t.Errorf("complete-graph radius %d", d.MaxRadius())
	}
}

func TestPartitionConcurrentCallersShareGraph(t *testing.T) {
	// The graph is immutable; many concurrent Partition calls on the same
	// graph must not interfere. Run under -race in CI.
	g := graph.Grid2D(40, 40)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]*Decomposition, 8)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			d, err := Partition(g, 0.1, Options{Seed: 77, Workers: 2})
			outs[k], errs[k] = d, err
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", k, err)
		}
	}
	for k := 1; k < 8; k++ {
		for v := range outs[0].Center {
			if outs[0].Center[v] != outs[k].Center[v] {
				t.Fatalf("concurrent callers diverged at vertex %d", v)
			}
		}
	}
}

func TestPartitionIsolatedVertices(t *testing.T) {
	// Graph of only isolated vertices: everyone self-starts; the clock
	// fast-forwards across every bucket.
	g := mustFromEdges(t, 200, nil)
	d := mustPartition(t, g, 0.05, Options{Seed: 4})
	if d.NumClusters() != 200 {
		t.Errorf("clusters=%d want 200", d.NumClusters())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionExtremeWorkerCounts(t *testing.T) {
	g := graph.Grid2D(15, 15)
	base := mustPartition(t, g, 0.2, Options{Seed: 5, Workers: 1})
	for _, w := range []int{-1, 1000} {
		d := mustPartition(t, g, 0.2, Options{Seed: 5, Workers: w})
		for v := range base.Center {
			if d.Center[v] != base.Center[v] {
				t.Fatalf("workers=%d diverged", w)
			}
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	// Failure injection: corrupt each invariant and check Validate trips.
	g := graph.Grid2D(10, 10)
	fresh := func() *Decomposition {
		d := mustPartition(t, g, 0.2, Options{Seed: 6})
		return d
	}
	cases := []struct {
		name    string
		corrupt func(*Decomposition)
	}{
		{"foreign center", func(d *Decomposition) {
			for v, c := range d.Center {
				if uint32(v) != c {
					d.Center[v] = uint32(v) // fake self-center with nonzero dist
					if d.Dist[v] != 0 {
						return
					}
				}
			}
		}},
		{"bad dist", func(d *Decomposition) {
			for v := range d.Dist {
				if d.Dist[v] > 0 {
					d.Dist[v]++
					return
				}
			}
		}},
		{"bad parent", func(d *Decomposition) {
			for v, c := range d.Center {
				if uint32(v) != c && d.Dist[v] > 1 {
					d.Parent[v] = c // probably not adjacent
					if !d.G.HasEdge(c, uint32(v)) {
						return
					}
				}
			}
		}},
		{"center out of range", func(d *Decomposition) {
			d.Center[0] = uint32(d.NumVertices() + 5)
		}},
	}
	for _, tc := range cases {
		d := fresh()
		tc.corrupt(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted decomposition", tc.name)
		}
	}
}

func TestPartitionVeryHighBeta(t *testing.T) {
	// beta near 1: Exp(0.99) shifts have mean ~1, so pieces are small and
	// plentiful (with this seed, ~84 pieces on a 400-vertex grid vs ~30 at
	// beta=0.3).
	g := graph.Grid2D(20, 20)
	d := mustPartition(t, g, 0.99, Options{Seed: 7})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	mid := mustPartition(t, g, 0.3, Options{Seed: 7})
	if d.NumClusters() <= mid.NumClusters() {
		t.Errorf("beta=0.99 gives %d clusters, beta=0.3 gives %d; expected more at higher beta",
			d.NumClusters(), mid.NumClusters())
	}
}
