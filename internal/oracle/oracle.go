// Package oracle is the high-QPS query layer over prebuilt decomposition
// structures (experiment E25): tree-distance oracles over the low-stretch
// forests of internal/apps/lowstretch, and cluster-membership oracles over
// the persistent hierarchies of internal/hier.
//
// The package serves reads only — it never mutates the underlying
// structures, and every query is a pure function of the built structure,
// so results are bit-deterministic regardless of how batches are sharded
// (docs/determinism.md). All oracles are safe for any number of concurrent
// readers as long as nothing mutates the underlying Tree/Hierarchy; the
// MembershipOracle additionally owns a snapshot of the cluster maps, so it
// stays valid (answering as-of-construction) even while the source
// hierarchy is updated.
//
// Each oracle has a scalar API for point lookups and a batched API that
// shards the batch across the shared parallel.Pool into a caller-owned
// output slice. The batch APIs are the zero-alloc hot path: they allocate
// nothing per query (the only garbage is the O(1) closure handed to the
// pool, amortized over the batch — the E25 benchmarks gate this at 0
// allocs/query steady-state). See docs/queries.md.
package oracle

import (
	"mpx/internal/apps/lowstretch"
	"mpx/internal/hier"
	"mpx/internal/parallel"
)

// Pair is one (U, V) query of a distance or same-cluster batch.
type Pair struct {
	U, V uint32
}

// minBatchGrain is the smallest per-worker slice of a batch worth
// scheduling: below it, sharding overhead dominates the (tens of ns) query
// cost, so small batches run on the calling goroutine.
const minBatchGrain = 256

// shard splits n queries across the pool, calling body(lo, hi) per shard.
// Batches smaller than one grain run inline on the caller.
func shard(pool *parallel.Pool, workers, n int, body func(lo, hi int)) {
	if n == 0 {
		return
	}
	if n <= minBatchGrain {
		body(0, n)
		return
	}
	if w := (n + minBatchGrain - 1) / minBatchGrain; workers <= 0 || workers > w {
		workers = w
	}
	pool.ForRange(workers, n, body)
}

// DistanceOracle answers tree-distance queries over an unweighted
// low-stretch forest. The tree distance upper-bounds the graph distance
// and exceeds it only by the forest's stretch (polylog in expectation for
// the AKPW construction), so it doubles as a stretch-bounded approximate
// graph-distance oracle. Queries are O(1) via the flattened LCA index.
//
// The oracle holds the Tree by reference: it is safe for concurrent
// readers while the tree is not being mutated (no Incremental.Update in
// flight). Construction allocates nothing beyond the oracle header.
type DistanceOracle struct {
	t       *lowstretch.Tree
	pool    *parallel.Pool
	workers int
}

// NewDistance wraps t in a distance oracle. Batches shard on pool (nil
// means parallel.Default()) with at most workers logical workers (<= 0
// means GOMAXPROCS).
func NewDistance(t *lowstretch.Tree, pool *parallel.Pool, workers int) *DistanceOracle {
	return &DistanceOracle{t: t, pool: pool, workers: workers}
}

// Dist returns the tree distance between u and v, or -1 if they lie in
// different components of the forest.
func (o *DistanceOracle) Dist(u, v uint32) int32 { return o.t.Dist(u, v) }

// DistBatch answers pairs[i] into out[i] for every i, sharding the batch
// across the pool. out must have at least len(pairs) entries — the caller
// owns it, so steady-state serving reuses one buffer and the query path
// allocates nothing. Results are bit-identical to the scalar loop
//
//	for i, p := range pairs { out[i] = o.Dist(p.U, p.V) }
//
// at every worker count (each element is an independent pure lookup).
func (o *DistanceOracle) DistBatch(pairs []Pair, out []int32) {
	out = out[:len(pairs)]
	t := o.t
	shard(o.pool, o.workers, len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Dist(pairs[i].U, pairs[i].V)
		}
	})
}

// WeightedDistanceOracle is DistanceOracle over an AKPW weighted forest:
// weighted tree distance, an upper bound on weighted graph distance with
// the forest's stretch.
type WeightedDistanceOracle struct {
	t       *lowstretch.WeightedTree
	pool    *parallel.Pool
	workers int
}

// NewWeightedDistance wraps t in a weighted distance oracle; pool/workers
// as in NewDistance.
func NewWeightedDistance(t *lowstretch.WeightedTree, pool *parallel.Pool, workers int) *WeightedDistanceOracle {
	return &WeightedDistanceOracle{t: t, pool: pool, workers: workers}
}

// Dist returns the weighted tree distance between u and v, or -1 if they
// lie in different components.
func (o *WeightedDistanceOracle) Dist(u, v uint32) float64 { return o.t.Dist(u, v) }

// DistBatch is DistanceOracle.DistBatch for weighted distances: bit-
// identical to the scalar loop at every worker count, zero allocations per
// query into the caller-owned out.
func (o *WeightedDistanceOracle) DistBatch(pairs []Pair, out []float64) {
	out = out[:len(pairs)]
	t := o.t
	shard(o.pool, o.workers, len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Dist(pairs[i].U, pairs[i].V)
		}
	})
}

// MembershipOracle answers per-level cluster-membership queries over a
// decompose-and-contract hierarchy: which level-l cluster a base vertex
// belongs to, and whether two vertices share one. It snapshots the
// hierarchy's composed quotient maps (hier.Hierarchy.ClusterMaps) at
// construction — one flat uint32 array per level — so a query is a single
// array load and the oracle remains valid, answering as of construction,
// even while the source hierarchy is updated. Rebuild the oracle to
// observe an updated hierarchy.
type MembershipOracle struct {
	maps    [][]uint32
	pool    *parallel.Pool
	workers int
}

// NewMembership snapshots h's cluster structure into a membership oracle.
// Batches shard on pool (nil means parallel.Default()) with at most
// workers logical workers (<= 0 means GOMAXPROCS).
func NewMembership(h *hier.Hierarchy, pool *parallel.Pool, workers int) *MembershipOracle {
	return &MembershipOracle{maps: h.ClusterMaps(), pool: pool, workers: workers}
}

// Levels returns the number of hierarchy levels the oracle answers for;
// valid query levels are [0, Levels()).
func (o *MembershipOracle) Levels() int { return len(o.maps) }

// NumVertices returns the base-graph vertex count (0 for an empty
// hierarchy).
func (o *MembershipOracle) NumVertices() int {
	if len(o.maps) == 0 {
		return 0
	}
	return len(o.maps[0])
}

// ClusterOf returns the id of the level-level cluster containing v: the
// cluster's center vertex, in level-coordinate ids (original ids for
// residual hierarchies). Ids are comparable within a level only.
func (o *MembershipOracle) ClusterOf(v uint32, level int) uint32 { return o.maps[level][v] }

// SameCluster reports whether u and v lie in the same level-level cluster.
func (o *MembershipOracle) SameCluster(u, v uint32, level int) bool {
	row := o.maps[level]
	return row[u] == row[v]
}

// ClusterBatch answers ClusterOf(verts[i], level) into out[i], sharding
// across the pool into the caller-owned out (len(out) >= len(verts));
// bit-identical to the scalar loop at every worker count, zero allocations
// per query.
func (o *MembershipOracle) ClusterBatch(level int, verts []uint32, out []uint32) {
	out = out[:len(verts)]
	row := o.maps[level]
	shard(o.pool, o.workers, len(verts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = row[verts[i]]
		}
	})
}

// SameClusterBatch answers SameCluster(pairs[i].U, pairs[i].V, level) into
// out[i]; the same contract as ClusterBatch.
func (o *MembershipOracle) SameClusterBatch(level int, pairs []Pair, out []bool) {
	out = out[:len(pairs)]
	row := o.maps[level]
	shard(o.pool, o.workers, len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = row[pairs[i].U] == row[pairs[i].V]
		}
	})
}
