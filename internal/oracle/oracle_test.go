package oracle

import (
	"container/heap"
	"sync"
	"testing"

	"mpx/internal/apps/lowstretch"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/xrand"
)

// treeBFS is the serial reference for DistanceOracle: breadth-first search
// from src over the tree edges only.
func treeBFS(n int, edges []graph.Edge, src uint32) []int32 {
	adj := make([][]uint32, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []uint32{src}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range adj[v] {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

type pqItem struct {
	v uint32
	d float64
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// treeDijkstra is the serial reference for WeightedDistanceOracle:
// Dijkstra from src restricted to the tree edges.
func treeDijkstra(n int, edges []graph.WeightedEdge, src uint32) []float64 {
	type arc struct {
		to uint32
		w  float64
	}
	adj := make([][]arc, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], arc{e.V, e.W})
		adj[e.V] = append(adj[e.V], arc{e.U, e.W})
	}
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, a := range adj[it.v] {
			nd := it.d + a.w
			if dist[a.to] < 0 || nd < dist[a.to] {
				dist[a.to] = nd
				heap.Push(q, pqItem{a.to, nd})
			}
		}
	}
	return dist
}

func TestDistanceOracleMatchesTreeBFS(t *testing.T) {
	g := graph.GNM(1500, 5000, 17)
	tr, err := lowstretch.Build(g, 0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	o := NewDistance(tr, nil, 0)
	n := g.NumVertices()
	rng := xrand.NewSplitMix64(1)
	for s := 0; s < 6; s++ {
		src := uint32(rng.Intn(n))
		ref := treeBFS(n, tr.Edges, src)
		for v := 0; v < n; v++ {
			if got := o.Dist(src, uint32(v)); got != ref[v] {
				t.Fatalf("Dist(%d,%d)=%d, tree BFS=%d", src, v, got, ref[v])
			}
		}
	}
}

func TestWeightedDistanceOracleMatchesTreeDijkstra(t *testing.T) {
	g := graph.GNM(900, 3000, 23)
	wg := graph.RandomWeights(g, 1, 12, 6)
	tr, err := lowstretch.BuildWeighted(wg, 0.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	o := NewWeightedDistance(tr, nil, 0)
	n := wg.NumVertices()
	rng := xrand.NewSplitMix64(2)
	for s := 0; s < 4; s++ {
		src := uint32(rng.Intn(n))
		ref := treeDijkstra(n, tr.Edges, src)
		for v := 0; v < n; v++ {
			got := o.Dist(src, uint32(v))
			want := ref[v]
			// The oracle sums wdepth differences along the unique tree path;
			// Dijkstra sums the same weights in a different association
			// order, so allow relative float slack.
			if want < 0 || got < 0 {
				if want != got {
					t.Fatalf("Dist(%d,%d)=%g, tree Dijkstra=%g", src, v, got, want)
				}
				continue
			}
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9*(1+want) {
				t.Fatalf("Dist(%d,%d)=%g, tree Dijkstra=%g", src, v, got, want)
			}
		}
	}
}

func TestMembershipOracleMatchesQuotientWalk(t *testing.T) {
	g := graph.GNM(1000, 3500, 31)
	var centers, quots [][]uint32
	h, err := hier.BuildHierarchy(hier.Config{Beta: 0.25, Seed: 11}, g, func(lv *hier.Level) error {
		centers = append(centers, append([]uint32(nil), lv.Center()...))
		if lv.Quot != nil {
			quots = append(quots, append([]uint32(nil), lv.Quot...))
		} else {
			quots = append(quots, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	o := NewMembership(h, nil, 0)
	if o.Levels() != len(centers) {
		t.Fatalf("oracle has %d levels, hierarchy visited %d", o.Levels(), len(centers))
	}
	n := g.NumVertices()
	if o.NumVertices() != n {
		t.Fatalf("NumVertices=%d, want %d", o.NumVertices(), n)
	}
	for l := 0; l < o.Levels(); l++ {
		for v := 0; v < n; v++ {
			cur := uint32(v)
			for i := 0; i < l; i++ {
				cur = quots[i][cur]
			}
			want := centers[l][cur]
			if got := o.ClusterOf(uint32(v), l); got != want {
				t.Fatalf("ClusterOf(%d,%d)=%d, quotient walk=%d", v, l, got, want)
			}
		}
	}
	// SameCluster consistency on random pairs.
	rng := xrand.NewSplitMix64(3)
	for q := 0; q < 5000; q++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		l := rng.Intn(o.Levels())
		want := o.ClusterOf(u, l) == o.ClusterOf(v, l)
		if got := o.SameCluster(u, v, l); got != want {
			t.Fatalf("SameCluster(%d,%d,%d)=%v, ClusterOf says %v", u, v, l, got, want)
		}
	}
}

// randomPairs draws q pairs over [0, n).
func randomPairs(n, q int, seed uint64) []Pair {
	rng := xrand.NewSplitMix64(seed)
	pairs := make([]Pair, q)
	for i := range pairs {
		pairs[i] = Pair{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	return pairs
}

// TestBatchMatchesScalarAtWorkerCounts pins every batch API to its scalar
// loop at workers 1, 2 and 8, across batch sizes straddling the inline
// grain.
func TestBatchMatchesScalarAtWorkerCounts(t *testing.T) {
	g := graph.GNM(2000, 7000, 41)
	tr, err := lowstretch.Build(g, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.BuildHierarchy(hier.Config{Beta: 0.2, Seed: 9}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.RandomWeights(g, 1, 5, 1)
	wtr, err := lowstretch.BuildWeighted(wg, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for _, q := range []int{0, 1, 255, 256, 257, 10000} {
		pairs := randomPairs(n, q, uint64(q)+100)
		verts := make([]uint32, q)
		for i := range verts {
			verts[i] = pairs[i].U
		}
		for _, w := range []int{1, 2, 8} {
			do := NewDistance(tr, nil, w)
			wo := NewWeightedDistance(wtr, nil, w)
			mo := NewMembership(h, nil, w)

			dOut := make([]int32, q)
			do.DistBatch(pairs, dOut)
			for i, p := range pairs {
				if want := do.Dist(p.U, p.V); dOut[i] != want {
					t.Fatalf("q=%d w=%d DistBatch[%d]=%d, scalar=%d", q, w, i, dOut[i], want)
				}
			}

			fOut := make([]float64, q)
			wo.DistBatch(pairs, fOut)
			for i, p := range pairs {
				if want := wo.Dist(p.U, p.V); fOut[i] != want {
					t.Fatalf("q=%d w=%d weighted DistBatch[%d]=%g, scalar=%g", q, w, i, fOut[i], want)
				}
			}

			if mo.Levels() > 0 {
				lvl := mo.Levels() - 1
				cOut := make([]uint32, q)
				mo.ClusterBatch(lvl, verts, cOut)
				for i, v := range verts {
					if want := mo.ClusterOf(v, lvl); cOut[i] != want {
						t.Fatalf("q=%d w=%d ClusterBatch[%d]=%d, scalar=%d", q, w, i, cOut[i], want)
					}
				}
				sOut := make([]bool, q)
				mo.SameClusterBatch(lvl, pairs, sOut)
				for i, p := range pairs {
					if want := mo.SameCluster(p.U, p.V, lvl); sOut[i] != want {
						t.Fatalf("q=%d w=%d SameClusterBatch[%d]=%v, scalar=%v", q, w, i, sOut[i], want)
					}
				}
			}
		}
	}
}

// TestConcurrentReaders hammers one oracle set from many goroutines with
// no mutation in flight; run under -race this pins the concurrent-reader
// guarantee of docs/queries.md.
func TestConcurrentReaders(t *testing.T) {
	g := graph.Grid2D(60, 50)
	tr, err := lowstretch.Build(g, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.BuildHierarchy(hier.Config{Beta: 0.2, Seed: 5}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	do := NewDistance(tr, nil, 4)
	mo := NewMembership(h, nil, 4)
	n := g.NumVertices()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			pairs := randomPairs(n, 4096, seed)
			dOut := make([]int32, len(pairs))
			sOut := make([]bool, len(pairs))
			for iter := 0; iter < 10; iter++ {
				do.DistBatch(pairs, dOut)
				mo.SameClusterBatch(0, pairs, sOut)
				for i, p := range pairs {
					if dOut[i] != do.Dist(p.U, p.V) {
						t.Errorf("concurrent DistBatch diverged at %d", i)
						return
					}
					_ = sOut[i]
				}
			}
		}(uint64(r))
	}
	wg.Wait()
}

// TestMembershipSnapshotSurvivesUpdate pins the snapshot contract: an
// oracle built before a hierarchy update answers as of construction.
func TestMembershipSnapshotSurvivesUpdate(t *testing.T) {
	g := graph.Grid2D(25, 25)
	n := g.NumVertices()
	h, err := hier.BuildHierarchy(hier.Config{Beta: 0.25, Seed: 2}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := NewMembership(h, nil, 0)
	before := make([][]uint32, o.Levels())
	for l := range before {
		before[l] = make([]uint32, n)
		for v := 0; v < n; v++ {
			before[l][v] = o.ClusterOf(uint32(v), l)
		}
	}
	if _, err := h.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: uint32(n - 1)}}}, nil); err != nil {
		t.Fatal(err)
	}
	for l := range before {
		for v := 0; v < n; v++ {
			if o.ClusterOf(uint32(v), l) != before[l][v] {
				t.Fatalf("snapshot mutated by Update at level %d vertex %d", l, v)
			}
		}
	}
}
