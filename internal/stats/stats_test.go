package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std %g want %g", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Error("percentile edges wrong")
	}
	if Percentile(sorted, 0.5) != 25 {
		t.Errorf("p50 %g want 25", Percentile(sorted, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) {
				return true
			}
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if len(xs) > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	for i := range x {
		y[i] = 2 + 3*x[i]
	}
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-2) > 1e-9 || math.Abs(b-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit a=%g b=%g r2=%g", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, r2 := LinearFit([]float64{1}, []float64{2}); r2 != 0 {
		t.Error("short input should give r2=0")
	}
	a, b, _ := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3})
	if b != 0 || a != 2 {
		t.Errorf("constant-x fit a=%g b=%g", a, b)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("shape: %v %v", counts, edges)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total %d", total)
	}
	if c, _ := Histogram(nil, 3); c != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestHistogramConstantInput(t *testing.T) {
	counts, _ := Histogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant input mishandled: %v", counts)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	out := tb.String()
	if !strings.Contains(out, "| name") || !strings.Contains(out, "alpha") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("csv: %q", csv)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows %d", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow(0.123456789)
	if !strings.Contains(tb.CSV(), "0.1235") {
		t.Errorf("float not compacted: %s", tb.CSV())
	}
}
