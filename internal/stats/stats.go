// Package stats provides the small statistics and table-formatting toolkit
// used by the experiment harness: summary statistics, percentiles,
// histograms, least-squares fits and aligned text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary; it returns the zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var varsum float64
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varsum / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-th percentile (p in [0,1]) of a sorted sample
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit fits y = a + b·x by least squares and returns (a, b, r²).
func LinearFit(x, y []float64) (a, b, r2 float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	_ = n
	if sxx == 0 {
		return my, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// Histogram bins xs into nBins equal-width bins over [min, max] and returns
// counts plus the bin edges (len nBins+1).
func Histogram(xs []float64, nBins int) (counts []int, edges []float64) {
	if nBins < 1 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts = make([]int, nBins)
	edges = make([]float64, nBins+1)
	width := (hi - lo) / float64(nBins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	return counts, edges
}

// Table accumulates rows and renders them with aligned columns, markdown
// style; it is the output format of every experiment.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table as aligned markdown.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&sb, " %-*s |", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	sb.WriteString("|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteString("|")
	}
	sb.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (no quoting; callers use
// numeric and identifier-like cells only).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.header, ","))
	sb.WriteString("\n")
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }
