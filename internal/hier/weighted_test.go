package hier

import (
	"hash/fnv"
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// weightedRunFingerprint drives a weighted contract-mode hierarchy and
// hashes everything determinism guards: per level the quotient map, the
// centers, the IEEE bits of the weighted distances, and the tree edges
// mapped to original coordinates through the annotation machinery.
func weightedRunFingerprint(t *testing.T, wg *graph.WeightedGraph, beta float64, seed uint64, workers int, dir core.Direction) (uint64, int) {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(x uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
		h.Write(buf[:4])
	}
	put64 := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:8])
	}
	res, err := RunWeighted(Config{
		// Geometric AKPW-style schedule: halving β per level grows the
		// cluster radius ×2 per level, so the hierarchy always converges.
		WBetaAt:        func(level int, _ *graph.WeightedGraph) float64 { return beta / float64(uint64(1)<<uint(level)) },
		Seed:           seed,
		Workers:        workers,
		Direction:      dir,
		NeedEdgeOrig:   true,
		TrackVertexMap: true,
	}, wg, func(lv *Level) error {
		for _, q := range lv.Quot {
			put32(q)
		}
		for v := 0; v < lv.G.NumVertices(); v++ {
			put32(lv.WD.Center[v])
			put64(math.Float64bits(lv.WD.Dist[v]))
			if p := lv.WD.Parent[v]; p != uint32(v) {
				e := lv.OrigEdge(uint32(v), p)
				put32(e.U)
				put32(e.V)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.OrigMap {
		put32(v)
	}
	put32(uint32(res.Levels))
	return h.Sum64(), res.Levels
}

// TestRunWeightedMatchesSerialHierarchy replays the weighted hierarchy
// with a hand-rolled serial loop — workers=1 push partition plus the
// serial map-based weighted contraction — and requires the engine to match
// it level by level, bit for bit (graphs, weights, quotient maps).
func TestRunWeightedMatchesSerialHierarchy(t *testing.T) {
	g := graph.GNM(600, 2400, 7)
	wg := graph.RandomWeights(g, 1, 6, 3)
	const beta = 0.3
	const seed = uint64(11)

	type levelRec struct {
		wg   *graph.WeightedGraph
		quot []uint32
	}
	betaAt := func(level int) float64 { return beta / float64(uint64(1)<<uint(level)) }
	var want []levelRec
	cur := wg
	for level := 0; cur.NumEdges() > 0 && level < 64; level++ {
		wd, err := core.PartitionWeightedParallel(cur, betaAt(level), 1/betaAt(level), core.Options{
			Seed:      xrand.Mix(seed, uint64(level)),
			Workers:   1,
			Direction: core.DirectionForcePush,
		})
		if err != nil {
			t.Fatal(err)
		}
		next, quot, err := graph.ContractWeightedClusters(cur, wd.Center)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, levelRec{wg: cur, quot: quot})
		cur = next
	}

	level := 0
	_, err := RunWeighted(Config{
		WBetaAt: func(l int, _ *graph.WeightedGraph) float64 { return betaAt(l) },
		Seed:    seed, Workers: 8,
	}, wg, func(lv *Level) error {
		if level >= len(want) {
			t.Fatalf("engine ran more levels than the serial replay (%d)", len(want))
		}
		w := want[level]
		if !weightedEqual(lv.WG, w.wg) {
			t.Fatalf("level %d: weighted graph diverges from serial replay", level)
		}
		for v := range w.quot {
			if lv.Quot[v] != w.quot[v] {
				t.Fatalf("level %d: quot[%d] = %d want %d", level, v, lv.Quot[v], w.quot[v])
			}
		}
		level++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if level != len(want) {
		t.Fatalf("engine ran %d levels, serial replay ran %d", level, len(want))
	}
}

// weightedEqual compares weighted graphs bit for bit through the public
// accessors.
func weightedEqual(a, b *graph.WeightedGraph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		an, aw := a.Neighbors(uint32(v))
		bn, bw := b.Neighbors(uint32(v))
		if len(an) != len(bn) {
			return false
		}
		for i := range an {
			if an[i] != bn[i] || math.Float64bits(aw[i]) != math.Float64bits(bw[i]) {
				return false
			}
		}
	}
	return true
}

// TestRunWeightedDirectionsBitIdentical is the engine-level cross-path
// determinism proof for weighted hierarchies: workers 1/2/8 ×
// push/pull/auto must produce one fingerprint.
func TestRunWeightedDirectionsBitIdentical(t *testing.T) {
	graphs := map[string]*graph.WeightedGraph{
		"grid": graph.RandomWeights(graph.Grid2D(15, 20), 1, 4, 9),
		"gnm":  graph.RandomWeights(graph.GNM(400, 1600, 5), 0.5, 8, 2),
	}
	dirs := []core.Direction{core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto}
	for name, wg := range graphs {
		for _, seed := range []uint64{1, 23} {
			want, wantLevels := weightedRunFingerprint(t, wg, 0.35, seed, 1, core.DirectionForcePush)
			for _, dir := range dirs {
				for _, w := range []int{1, 2, 8} {
					got, levels := weightedRunFingerprint(t, wg, 0.35, seed, w, dir)
					if got != want || levels != wantLevels {
						t.Fatalf("%s seed=%d dir=%v workers=%d: fingerprint %#x (levels %d) want %#x (levels %d)",
							name, seed, dir, w, got, levels, want, wantLevels)
					}
				}
			}
		}
	}
}

// TestRunWeightedResidual checks the weighted residual mode: every level's
// next graph contains exactly the cut edges with their original weights,
// and intra edges partition the edge set across levels.
func TestRunWeightedResidual(t *testing.T) {
	g := graph.Grid2D(12, 14)
	wg := graph.RandomWeights(g, 1, 3, 4)
	var gotEdges int64
	res, err := RunWeighted(Config{
		Beta: 0.5, Seed: 3, Workers: 4, Residual: true, NeedIntra: true, MaxLevels: 200,
	}, wg, func(lv *Level) error {
		if lv.WG.NumVertices() != g.NumVertices() {
			t.Fatalf("residual level %d changed the vertex set", lv.Index)
		}
		for _, e := range lv.IntraEdges {
			w, ok := wg.Weight(e.U, e.V)
			if !ok || w <= 0 {
				t.Fatalf("intra edge {%d,%d} is not an original weighted edge", e.U, e.V)
			}
		}
		gotEdges += int64(len(lv.IntraEdges))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotEdges != wg.NumEdges() {
		t.Fatalf("intra edges across levels = %d, want all %d edges", gotEdges, wg.NumEdges())
	}
	if res.WFinal.NumEdges() != 0 {
		t.Fatalf("final residual graph still has %d edges", res.WFinal.NumEdges())
	}
}

// TestRunWeightedStats sanity-checks the weighted per-level stats: weight
// is conserved into the next level and fractions are in range.
func TestRunWeightedStats(t *testing.T) {
	wg := graph.RandomWeights(graph.GNM(500, 2000, 1), 1, 5, 8)
	res, err := RunWeighted(Config{
		WBetaAt: func(l int, _ *graph.WeightedGraph) float64 { return 0.3 / float64(uint64(1)<<uint(l)) },
		Seed:    2, Workers: 4,
	}, wg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Stats {
		if !st.Weighted {
			t.Fatalf("level %d: stats not marked weighted", i)
		}
		if st.CutWeight > st.TotalWeight*(1+1e-9) {
			t.Fatalf("level %d: cut weight %g exceeds total %g", i, st.CutWeight, st.TotalWeight)
		}
		if st.CutWeightFraction < 0 || st.CutWeightFraction > 1+1e-9 {
			t.Fatalf("level %d: cut weight fraction %g out of range", i, st.CutWeightFraction)
		}
		if i > 0 {
			prev := res.Stats[i-1]
			if relDiff(st.TotalWeight, prev.CutWeight) > 1e-9 {
				t.Fatalf("level %d: total weight %g != previous cut weight %g (conservation)",
					i, st.TotalWeight, prev.CutWeight)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}
