package hier

import (
	"mpx/internal/parallel"
)

// RefineScratch owns the buffers RefineAssignment reuses across levels.
type RefineScratch struct {
	keys   []uint64
	ids    []uint32
	keyTmp []uint64
	idTmp  []uint32
	bounds []uint32
}

// RefineAssignment intersects two piece assignments: assign[v] becomes the
// smallest vertex u with (prev[u], cur[u]) == (prev[v], cur[v]). This is
// the hierarchical-embedding refinement step — a piece of the new
// decomposition may not span two parent pieces, so the effective piece id
// is the canonical representative of the composite key — computed with a
// stable pool radix sort over packed (prev, cur) keys instead of a
// per-level map. Deterministic at every worker count; assign may alias
// neither prev nor cur.
func RefineAssignment(pool *parallel.Pool, workers int, prev, cur, assign []uint32, sc *RefineScratch) {
	n := len(prev)
	if len(cur) != n || len(assign) != n {
		panic("hier: RefineAssignment length mismatch")
	}
	if n == 0 {
		return
	}
	if sc == nil {
		sc = &RefineScratch{}
	}
	sc.keys = parallel.Grow(sc.keys, n)
	sc.ids = parallel.Grow(sc.ids, n)
	sc.keyTmp = parallel.Grow(sc.keyTmp, n)
	sc.idTmp = parallel.Grow(sc.idTmp, n)
	keys, ids := sc.keys, sc.ids
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			keys[v] = uint64(prev[v])<<32 | uint64(cur[v])
			ids[v] = uint32(v)
		}
	})
	// Stable sort of ascending ids → within each run of equal keys the
	// ids stay ascending, so each run's head is its smallest member.
	pool.SortPairs(workers, keys, ids, sc.keyTmp, sc.idTmp)
	sc.bounds = pool.PackInto(workers, n, func(i int) bool {
		return i == 0 || keys[i] != keys[i-1]
	}, sc.bounds)
	bounds := sc.bounds
	pool.For(workers, len(bounds), func(r int) {
		lo := int(bounds[r])
		hi := n
		if r+1 < len(bounds) {
			hi = int(bounds[r+1])
		}
		leader := ids[lo]
		for i := lo; i < hi; i++ {
			assign[ids[i]] = leader
		}
	})
}
