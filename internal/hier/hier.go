// Package hier is the parallel decompose-and-contract hierarchy engine:
// the recursive driver behind every multi-level application of the paper's
// Partition (AKPW-style low-stretch trees, Linial–Saks blocks, LDD
// connectivity, tree-metric embeddings, separators).
//
// Each level runs core.Partition on the shared parallel.Pool, classifies
// edges intra/cut with pooled kernels, and either contracts clusters into
// super-vertices (graph.ContractClustersPool — slice-based label
// compaction plus a pool radix sort on packed (qu, qv) keys) or keeps the
// vertex set and recurses on the residual cut subgraph
// (graph.CutSubgraphPool — the Linial–Saks iteration). The engine
// maintains original↔quotient vertex and edge mappings across levels and
// reuses every piece of scratch, so a steady-state level allocates a small
// constant number of objects sized O(cut edges) — never the O(m) per-level
// map rebuilds the serial app loops paid.
//
// Output is deterministic: Partition is bit-identical across worker counts
// and traversal directions, contraction and classification are
// deterministic pooled kernels, and the per-level seeds are derived by
// xrand.Mix(seed, level) — so every application built on the engine
// inherits bit-identical output at workers 1/2/8 × push/pull/auto. See
// docs/determinism.md.
package hier

import (
	"context"
	"errors"
	"sort"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// ctxErr polls ctx at a level boundary; a nil ctx is never cancelled. As
// in core, the poll calls ctx.Err() directly so fault-injection contexts
// that trip on the Nth poll observe every boundary.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ErrMaxLevels reports a hierarchy that did not converge (run out of edges
// or vertices) within Config.MaxLevels levels.
var ErrMaxLevels = errors.New("hier: hierarchy failed to converge within MaxLevels")

// Config configures a hierarchy run. The zero value decomposes with
// BetaAt/Beta unset, which is invalid — callers must set Beta or BetaAt.
type Config struct {
	// Ctx, when non-nil, cancels a hierarchy build or update in flight.
	// It is polled at level boundaries and forwarded into every per-level
	// Partition (which polls it between rounds). Cancellation is
	// all-or-nothing: a cancelled Run/Build returns ctx.Err() and no
	// result, a cancelled Hierarchy.Update returns ctx.Err() with the
	// hierarchy exactly as it was. Nil means never cancelled.
	Ctx context.Context
	// Beta is the per-level decomposition parameter (used when BetaAt is
	// nil).
	Beta float64
	// BetaAt, when non-nil, supplies a per-level β schedule (the embedding
	// halves its diameter target per level, for example).
	BetaAt func(level int, g *graph.Graph) float64
	// WBetaAt, when non-nil, supplies the per-level β schedule of a
	// weighted run (RunWeighted); β is in units of inverse weighted
	// distance there, so weighted schedules see the weighted graph. Nil
	// means the flat Beta.
	WBetaAt func(level int, wg *graph.WeightedGraph) float64
	// Delta is the Δ-stepping bucket width forwarded to every weighted
	// Partition call (<= 0 lets the engine pick its default). Δ shapes the
	// round schedule only — the output is a fixpoint independent of it.
	Delta float64
	// DeltaAt, when non-nil, supplies a per-level Δ schedule for weighted
	// runs (AKPW aligns Δ with the level's weight-class width).
	DeltaAt func(level int, wg *graph.WeightedGraph) float64
	// Seed fixes all randomness; level l decomposes with
	// xrand.Mix(Seed, l).
	Seed uint64
	// Workers caps logical parallelism of every kernel (<= 0 means
	// GOMAXPROCS), exactly as core.Options.Workers.
	Workers int
	// Pool is the persistent worker pool every level executes on; nil
	// means parallel.Default().
	Pool *parallel.Pool
	// Direction, TieBreak and ShiftSource are forwarded to every
	// Partition call.
	Direction   core.Direction
	TieBreak    core.TieBreak
	ShiftSource core.ShiftSource
	// MaxLevels caps the level count defensively; 0 means 64.
	MaxLevels int
	// Residual keeps the vertex set fixed and recurses on the cut-edge
	// subgraph (Linial–Saks blocks) instead of contracting clusters.
	Residual bool
	// TrackVertexMap maintains Result.OrigMap, the composition of the
	// per-level quotient maps (original vertex → final super-vertex).
	TrackVertexMap bool
	// NeedEdgeOrig maintains per-level original-edge annotations so
	// Level.OrigEdge can map any current edge back to an original edge
	// (low-stretch trees emit tree edges in original coordinates).
	NeedEdgeOrig bool
	// NeedIntra collects each level's intra-cluster edges (in original
	// coordinates when annotations are tracked) into Level.IntraEdges —
	// the block decomposition's per-level edge class.
	NeedIntra bool
}

func (c Config) maxLevels() int {
	if c.MaxLevels > 0 {
		return c.MaxLevels
	}
	return 64
}

func (c Config) betaAt(level int, g *graph.Graph) float64 {
	if c.BetaAt != nil {
		return c.BetaAt(level, g)
	}
	return c.Beta
}

func (c Config) wbetaAt(level int, wg *graph.WeightedGraph) float64 {
	if c.WBetaAt != nil {
		return c.WBetaAt(level, wg)
	}
	return c.Beta
}

func (c Config) deltaAt(level int, wg *graph.WeightedGraph) float64 {
	if c.DeltaAt != nil {
		return c.DeltaAt(level, wg)
	}
	return c.Delta
}

// LevelStat summarizes one hierarchy level for reporting (cmd/mpx -app
// prints these).
type LevelStat struct {
	Level       int
	N           int   // vertices entering the level
	M           int64 // edges entering the level
	Clusters    int   // decomposition pieces
	CutEdges    int64 // edges crossing pieces
	CutFraction float64
	QuotientN   int // vertices of the next level's graph

	// Weighted runs additionally record the level's weight structure.
	// These are measurements, not determinism-gated output: the block
	// reductions computing them depend on the logical worker count in
	// their last float bits, like Rounds depends on the schedule.
	Weighted          bool
	TotalWeight       float64 // sum of edge weights entering the level
	CutWeight         float64 // weight crossing pieces (== next level's total)
	CutWeightFraction float64
	WMaxRadius        float64 // largest weighted distance to an assigned center
	Rounds            int     // Δ-stepping relaxation rounds of the level
}

// Level is the per-level view handed to the visit callback. Slices alias
// engine scratch unless noted and are valid only during the callback.
type Level struct {
	// Index is the level number, 0 for the original graph.
	Index int
	// G is the graph decomposed at this level (the original graph at
	// level 0, a quotient or residual graph afterwards). In weighted runs
	// it is the unweighted view of WG, sharing its CSR storage.
	G *graph.Graph
	// D is the decomposition of G (nil in weighted runs; see WD).
	D *core.Decomposition
	// WG is the weighted graph decomposed at this level (weighted runs
	// only; nil otherwise).
	WG *graph.WeightedGraph
	// WD is the weighted decomposition of WG (weighted runs only).
	WD *core.WeightedDecomposition
	// Quot maps each vertex of G to its super-vertex in the next level's
	// graph (contract mode; nil in residual mode). Retained by the caller
	// freely — it is not scratch.
	Quot []uint32
	// NumQuot is the next level's vertex count.
	NumQuot int
	// IntraEdges are this level's intra-cluster edges in original
	// coordinates (Config.NeedIntra; aliases scratch — copy to retain).
	IntraEdges []graph.Edge

	eng  *Engine
	orig []graph.Edge // annotation per canonical edge rank of G; nil = identity
}

// OrigEdge returns the original-graph edge represented by the edge {a, b}
// of this level's graph. {a, b} must be an edge of Level.G. Requires
// Config.NeedEdgeOrig (level 0 works regardless: edges are their own
// originals).
func (lv *Level) OrigEdge(a, b uint32) graph.Edge {
	if a > b {
		a, b = b, a
	}
	if lv.orig == nil {
		return graph.Edge{U: a, V: b}
	}
	return lv.orig[lv.eng.edgeRank(lv.G, a, b)]
}

// Result is the outcome of a full hierarchy run.
type Result struct {
	// Levels is the number of decomposition levels executed.
	Levels int
	// Stats holds one entry per level.
	Stats []LevelStat
	// Final is the fully contracted (or fully residual) graph the run
	// stopped on: it has no edges unless the run errored.
	Final *graph.Graph
	// WFinal is the weighted final graph of a RunWeighted hierarchy (its
	// unweighted view is Final).
	WFinal *graph.WeightedGraph
	// OrigMap maps each original vertex to its vertex in Final
	// (Config.TrackVertexMap, contract mode).
	OrigMap []uint32
}

// Engine owns the reusable scratch of a hierarchy run. One engine may run
// many hierarchies; scratch persists across runs and levels.
type Engine struct {
	cfg Config
	sc  graph.ContractScratch

	// Edge-annotation scratch (NeedEdgeOrig / NeedIntra).
	cutKeys  []uint64
	cutVals  []uint32
	keyTmp   []uint64
	valTmp   []uint32
	cutOrig  []graph.Edge
	intra    []graph.Edge
	rankBase []int
	cutBase  []int

	// OrigEdge rank tables for the current level's graph.
	upperOff   []int64
	firstUpper []int32
	rankFor    *graph.Graph
}

// New returns an engine for the given configuration.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Run executes a full hierarchy with a fresh engine; see Engine.Run.
func Run(cfg Config, g *graph.Graph, visit func(*Level) error) (*Result, error) {
	return New(cfg).Run(g, visit)
}

// Run drives the hierarchy over g, invoking visit (which may be nil) once
// per level. It stops when the current graph has no edges, returning
// ErrMaxLevels (with partial Result) if the cap is hit first, and
// propagates any error from Partition or visit. The full derivation is
// computed before the first visit is delivered (the staged two-phase
// scheme of update.go): a cancellation (Config.Ctx) or a contained panic
// (*parallel.PanicError) therefore returns an error and no result, with
// no visit ever observed.
//
// Run is a thin wrapper over the persistent Hierarchy (update.go): it
// builds one, discards the retained per-level state, and returns the
// Result. Callers that want to maintain the hierarchy under edge updates
// use BuildHierarchy/Hierarchy.Update instead.
func (e *Engine) Run(g *graph.Graph, visit func(*Level) error) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, parallel.Recovered(r)
		}
	}()
	h := &Hierarchy{eng: e, res: &Result{}}
	if err := h.build(g, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h.res, err
		}
		return nil, err
	}
	return h.res, nil
}

// CutEdgesOnPool counts the undirected edges of g whose endpoints carry
// different labels, reducing on the given pool (Decomposition.
// CutEdgesParallel reduces on the default pool, which would bypass an
// explicit pool). Shared by the engine's per-level stats and the
// single-level applications (separator, embedding).
func CutEdgesOnPool(pool *parallel.Pool, workers int, g *graph.Graph, center []uint32) int64 {
	offsets := g.Offsets()
	adj := g.Adjacency()
	arcs := pool.ReduceInt64(workers, g.NumVertices(), func(v int) int64 {
		cv := center[v]
		var c int64
		for i := offsets[v]; i < offsets[v+1]; i++ {
			if center[adj[i]] != cv {
				c++
			}
		}
		return c
	})
	return arcs / 2
}

// annotateContraction computes the next level's original-edge annotations:
// for every edge of the quotient graph (in canonical (U, V) order), the
// annotation of the first cut edge of cur — in cur's canonical edge order
// — that contracts onto it. "First" is realized by a stable pool radix
// sort on the packed quotient-pair keys, so the choice is deterministic at
// every worker count.
func (e *Engine) annotateContraction(cur *graph.Graph, orig []graph.Edge, center, quot []uint32, next *graph.Graph) []graph.Edge {
	pool := e.cfg.Pool
	workers := e.cfg.Workers
	n := cur.NumVertices()
	w := parallel.Workers(workers, n)
	e.rankBase = parallel.Grow(e.rankBase, w+1)
	e.cutBase = parallel.Grow(e.cutBase, w+1)
	rankBase, cutBase := e.rankBase, e.cutBase
	offsets, adjacency := cur.Offsets(), cur.Adjacency()
	// Pass 1: per block, count upper arcs (canonical edge ranks) and cut
	// edges among them.
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		upper, cut := 0, 0
		for v := lo; v < hi; v++ {
			cv := center[v]
			for _, u := range adjacency[offsets[v]:offsets[v+1]] {
				if u <= uint32(v) {
					continue
				}
				upper++
				if center[u] != cv {
					cut++
				}
			}
		}
		rankBase[k+1] = upper
		cutBase[k+1] = cut
	})
	rankBase[0], cutBase[0] = 0, 0
	for k := 1; k <= w; k++ {
		rankBase[k] += rankBase[k-1]
		cutBase[k] += cutBase[k-1]
	}
	c := cutBase[w]
	e.cutKeys = parallel.Grow(e.cutKeys, c)
	e.cutVals = parallel.Grow(e.cutVals, c)
	e.cutOrig = parallel.Grow(e.cutOrig, c)
	cutKeys, cutVals, cutOrig := e.cutKeys, e.cutVals, e.cutOrig
	// Pass 2: emit each cut edge's quotient-pair key and its original-edge
	// annotation; the running upper-arc counter is exactly cur's canonical
	// edge rank, which indexes the current annotation table.
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		rank := rankBase[k]
		pos := cutBase[k]
		for v := lo; v < hi; v++ {
			cv := center[v]
			for _, u := range adjacency[offsets[v]:offsets[v+1]] {
				if u <= uint32(v) {
					continue
				}
				if center[u] != cv {
					qa, qb := quot[v], quot[u]
					if qa > qb {
						qa, qb = qb, qa
					}
					cutKeys[pos] = uint64(qa)<<32 | uint64(qb)
					if orig == nil {
						cutOrig[pos] = graph.Edge{U: uint32(v), V: u}
					} else {
						cutOrig[pos] = orig[rank]
					}
					cutVals[pos] = uint32(pos)
					pos++
				}
				rank++
			}
		}
	})
	e.keyTmp = parallel.Grow(e.keyTmp, c)
	e.valTmp = parallel.Grow(e.valTmp, c)
	pool.SortPairs(workers, cutKeys[:c], cutVals[:c], e.keyTmp, e.valTmp)

	// Runs of equal keys are the quotient edges in canonical order; the
	// stable sort put the first-collected (lowest current-edge-rank) cut
	// edge at each run's head. The dedup passes split the cut-edge range,
	// whose worker count can exceed the vertex-based w on dense tail
	// levels (c > n), so the offsets buffer is re-grown for wc.
	nextOrig := make([]graph.Edge, next.NumEdges())
	wc := parallel.Workers(workers, c)
	e.rankBase = parallel.Grow(e.rankBase, wc+1)
	dedupBase := e.rankBase
	pool.Run(wc, func(k int) {
		lo, hi := k*c/wc, (k+1)*c/wc
		cnt := 0
		for i := lo; i < hi; i++ {
			if i == 0 || cutKeys[i] != cutKeys[i-1] {
				cnt++
			}
		}
		dedupBase[k+1] = cnt
	})
	dedupBase[0] = 0
	for k := 1; k <= wc; k++ {
		dedupBase[k] += dedupBase[k-1]
	}
	if dedupBase[wc] != len(nextOrig) {
		panic("hier: quotient edge count mismatch between contraction and annotation")
	}
	pool.Run(wc, func(k int) {
		lo, hi := k*c/wc, (k+1)*c/wc
		pos := dedupBase[k]
		for i := lo; i < hi; i++ {
			if i == 0 || cutKeys[i] != cutKeys[i-1] {
				nextOrig[pos] = cutOrig[cutVals[i]]
				pos++
			}
		}
	})
	return nextOrig
}

// collectIntra gathers the intra-cluster edges of cur in canonical order,
// mapped to original coordinates through the current annotation table.
func (e *Engine) collectIntra(cur *graph.Graph, orig []graph.Edge, center []uint32) []graph.Edge {
	pool := e.cfg.Pool
	workers := e.cfg.Workers
	n := cur.NumVertices()
	w := parallel.Workers(workers, n)
	e.rankBase = parallel.Grow(e.rankBase, w+1)
	e.cutBase = parallel.Grow(e.cutBase, w+1)
	rankBase, intraBase := e.rankBase, e.cutBase
	offsets, adjacency := cur.Offsets(), cur.Adjacency()
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		upper, intra := 0, 0
		for v := lo; v < hi; v++ {
			cv := center[v]
			for _, u := range adjacency[offsets[v]:offsets[v+1]] {
				if u <= uint32(v) {
					continue
				}
				upper++
				if center[u] == cv {
					intra++
				}
			}
		}
		rankBase[k+1] = upper
		intraBase[k+1] = intra
	})
	rankBase[0], intraBase[0] = 0, 0
	for k := 1; k <= w; k++ {
		rankBase[k] += rankBase[k-1]
		intraBase[k] += intraBase[k-1]
	}
	e.intra = parallel.Grow(e.intra, intraBase[w])
	intra := e.intra
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		rank := rankBase[k]
		pos := intraBase[k]
		for v := lo; v < hi; v++ {
			cv := center[v]
			for _, u := range adjacency[offsets[v]:offsets[v+1]] {
				if u <= uint32(v) {
					continue
				}
				if center[u] == cv {
					if orig == nil {
						intra[pos] = graph.Edge{U: uint32(v), V: u}
					} else {
						intra[pos] = orig[rank]
					}
					pos++
				}
				rank++
			}
		}
	})
	return intra
}

// buildRank prepares the upper-triangular edge-rank tables OrigEdge
// queries against: upperOff[v] is the canonical rank of v's first upper
// edge and firstUpper[v] the adjacency index of v's first neighbor > v.
func (e *Engine) buildRank(g *graph.Graph) {
	if e.rankFor == g {
		return
	}
	pool := e.cfg.Pool
	workers := e.cfg.Workers
	n := g.NumVertices()
	e.upperOff = parallel.Grow(e.upperOff, n)
	e.firstUpper = parallel.Grow(e.firstUpper, n)
	upperOff, firstUpper := e.upperOff, e.firstUpper
	pool.For(workers, n, func(v int) {
		nb := g.Neighbors(uint32(v))
		i := sort.Search(len(nb), func(i int) bool { return nb[i] > uint32(v) })
		firstUpper[v] = int32(i)
		upperOff[v] = int64(len(nb) - i)
	})
	pool.ExclusiveScan(workers, upperOff[:n])
	e.rankFor = g
}

// edgeRank returns the canonical rank of edge {a, b} (a < b) of g.
func (e *Engine) edgeRank(g *graph.Graph, a, b uint32) int {
	if e.rankFor != g {
		panic("hier: OrigEdge called outside its level's visit callback")
	}
	nb := g.Neighbors(a)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= b })
	if i == len(nb) || nb[i] != b {
		panic("hier: OrigEdge on a non-edge")
	}
	return int(e.upperOff[a]) + i - int(e.firstUpper[a])
}
