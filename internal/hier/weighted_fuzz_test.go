package hier

import (
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

// FuzzHierWeighted checks the weighted hierarchy engine on arbitrary small
// weighted graphs, worker counts and traversal directions: the union of the
// per-level shortest-path-tree edges (mapped to original coordinates via
// the annotation machinery) must be a valid spanning structure of the
// original graph — acyclic, one tree per connected component, every edge a
// real original edge — and the whole run must be bit-identical to the
// workers=1 push schedule of the same instance (the weighted mirror of
// FuzzPartitionWeighted, one layer up).
func FuzzHierWeighted(f *testing.F) {
	f.Add(uint16(40), uint16(80), uint64(1), byte(20), byte(0))
	f.Add(uint16(3), uint16(1), uint64(7), byte(90), byte(1))
	f.Add(uint16(120), uint16(400), uint64(42), byte(5), byte(2))
	f.Add(uint16(64), uint16(0), uint64(3), byte(50), byte(5)) // edgeless
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed uint64, betaRaw, modeRaw byte) {
		n := int(nRaw%200) + 2
		maxM := int64(n) * int64(n-1) / 4
		if maxM < 1 {
			maxM = 1
		}
		m := int64(mRaw) % maxM
		g := graph.GNM(n, m, seed)
		wg := graph.RandomWeights(g, 0.25, 8, seed^0x9e3779b97f4a7c15)
		beta := 0.02 + float64(betaRaw%96)/100
		dir := []core.Direction{core.DirectionAuto, core.DirectionForcePush, core.DirectionForcePull}[modeRaw%3]
		workers := 1 + int(modeRaw%8)

		type runOut struct {
			levels  int
			edges   []graph.Edge
			origMap []uint32
			maxLv   bool
		}
		run := func(workers int, dir core.Direction) runOut {
			var out runOut
			res, err := RunWeighted(Config{
				// Geometric AKPW-style β schedule so the hierarchy converges
				// on every instance the fuzzer invents.
				WBetaAt: func(l int, _ *graph.WeightedGraph) float64 {
					return beta / float64(uint64(1)<<uint(l%60))
				},
				Seed:           seed,
				Workers:        workers,
				Direction:      dir,
				NeedEdgeOrig:   true,
				TrackVertexMap: true,
			}, wg, func(lv *Level) error {
				for v := 0; v < lv.G.NumVertices(); v++ {
					if p := lv.WD.Parent[v]; p != uint32(v) {
						out.edges = append(out.edges, lv.OrigEdge(uint32(v), p))
					}
				}
				return nil
			})
			if err == ErrMaxLevels {
				out.maxLv = true
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out.levels = res.Levels
			out.origMap = res.OrigMap
			return out
		}

		got := run(workers, dir)
		ref := run(1, core.DirectionForcePush)

		// Cross-path determinism: identical level count, tree edges,
		// original→final vertex map, and MaxLevels behavior.
		if got.maxLv != ref.maxLv || got.levels != ref.levels || len(got.edges) != len(ref.edges) {
			t.Fatalf("workers=%d dir=%v diverges from workers=1 push: levels %d/%v vs %d/%v, edges %d vs %d",
				workers, dir, got.levels, got.maxLv, ref.levels, ref.maxLv, len(got.edges), len(ref.edges))
		}
		for i := range got.edges {
			if got.edges[i] != ref.edges[i] {
				t.Fatalf("workers=%d dir=%v: tree edge %d is %v, workers=1 push has %v",
					workers, dir, i, got.edges[i], ref.edges[i])
			}
		}
		for v := range got.origMap {
			if got.origMap[v] != ref.origMap[v] {
				t.Fatalf("workers=%d dir=%v: origMap[%d] diverges", workers, dir, v)
			}
		}
		if got.maxLv {
			return // partial runs already proven bit-identical
		}

		// Valid spanning structure: every tree edge is a real original edge
		// with a positive finite weight, the edge set is acyclic
		// (union-find), and it spans exactly the connected components of g
		// (#edges == n - #components).
		parent := make([]int32, n)
		for i := range parent {
			parent[i] = int32(i)
		}
		var find func(int32) int32
		find = func(x int32) int32 {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range got.edges {
			w, ok := wg.Weight(e.U, e.V)
			if !ok || !(w > 0) || math.IsInf(w, 0) {
				t.Fatalf("tree edge {%d,%d} is not an original weighted edge", e.U, e.V)
			}
			ru, rv := find(int32(e.U)), find(int32(e.V))
			if ru == rv {
				t.Fatalf("tree edges contain a cycle through {%d,%d}", e.U, e.V)
			}
			parent[ru] = rv
		}
		_, comps := graph.ConnectedComponents(g)
		if len(got.edges) != n-comps {
			t.Fatalf("tree has %d edges for n=%d with %d components (not spanning)",
				len(got.edges), n, comps)
		}
	})
}
