package hier

import (
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// FuzzHierUpdate checks the incremental-maintenance contract on arbitrary
// small instances: build a hierarchy, apply a fuzzer-chosen batch of edge
// inserts and deletes through Hierarchy.Update, and require the result —
// stats, final graph, vertex map, and every retained level — to be
// bit-identical to a from-scratch build on the updated graph. This is the
// fuzz companion of TestHierarchyUpdateBitIdentical: the fuzzer explores
// batch shapes (no-ops, cut inserts, tree-edge deletes, total teardown)
// that the golden suite only samples.
func FuzzHierUpdate(f *testing.F) {
	f.Add(uint16(40), uint16(80), uint64(1), byte(20), byte(0), uint64(7), byte(6), byte(4))
	f.Add(uint16(3), uint16(1), uint64(7), byte(90), byte(1), uint64(0), byte(1), byte(1))
	f.Add(uint16(120), uint16(400), uint64(42), byte(5), byte(2), uint64(99), byte(12), byte(12))
	f.Add(uint16(64), uint16(0), uint64(3), byte(50), byte(5), uint64(5), byte(8), byte(0)) // edgeless base
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint16, seed uint64, betaRaw, modeRaw byte, batchSeed uint64, nInsRaw, nDelRaw byte) {
		n := int(nRaw%200) + 2
		maxM := int64(n) * int64(n-1) / 4
		if maxM < 1 {
			maxM = 1
		}
		m := int64(mRaw) % maxM
		g := graph.GNM(n, m, seed)
		beta := 0.02 + float64(betaRaw%96)/100
		dir := []core.Direction{core.DirectionAuto, core.DirectionForcePush, core.DirectionForcePull}[modeRaw%3]
		cfg := Config{
			Beta:           beta,
			Seed:           seed,
			Workers:        1 + int(modeRaw%8),
			Direction:      dir,
			NeedEdgeOrig:   modeRaw%2 == 0,
			NeedIntra:      modeRaw%4 < 2,
			Residual:       modeRaw%5 == 4,
			TrackVertexMap: modeRaw%2 == 0,
			MaxLevels:      64,
		}

		h, err := BuildHierarchy(cfg, g, nil)
		if err != nil && err != ErrMaxLevels {
			t.Fatal(err)
		}

		var b graph.Batch
		for i := 0; i < int(nInsRaw%16); i++ {
			u := uint32(xrand.Mix(batchSeed, uint64(i)*2+1) % uint64(n))
			v := uint32(xrand.Mix(batchSeed, uint64(i)*2+2) % uint64(n))
			b.Insert = append(b.Insert, graph.Edge{U: u, V: v})
		}
		if edges := g.Edges(); len(edges) > 0 {
			for i := 0; i < int(nDelRaw%16); i++ {
				b.Delete = append(b.Delete, edges[xrand.Mix(batchSeed, 0xde1+uint64(i))%uint64(len(edges))])
			}
		}

		_, uerr := h.Update(b, nil)
		updated, _, err := graph.ApplyBatch(g, b)
		if err != nil {
			t.Fatal(err)
		}
		fresh, ferr := BuildHierarchy(cfg, updated, nil)
		if (uerr != nil) != (ferr != nil) || (uerr == ErrMaxLevels) != (ferr == ErrMaxLevels) {
			t.Fatalf("error mismatch: update=%v fresh=%v", uerr, ferr)
		}
		if uerr != nil && uerr != ErrMaxLevels {
			return
		}

		requireHierIdentical(t, "fuzz", h, fresh)
	})
}
