package hier

import (
	"math"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	ao, bo := a.Offsets(), b.Offsets()
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	aa, ba := a.Adjacency(), b.Adjacency()
	if len(aa) != len(ba) {
		return false
	}
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	return true
}

func sameDecomp(a, b *core.Decomposition) bool {
	if len(a.Center) != len(b.Center) || a.Rounds != b.Rounds ||
		math.Float64bits(a.DeltaMax) != math.Float64bits(b.DeltaMax) {
		return false
	}
	for i := range a.Center {
		if a.Center[i] != b.Center[i] || a.Dist[i] != b.Dist[i] || a.Parent[i] != b.Parent[i] {
			return false
		}
	}
	return true
}

func sameWeightedDecomp(a, b *core.WeightedDecomposition) bool {
	if len(a.Center) != len(b.Center) || a.Rounds != b.Rounds ||
		math.Float64bits(a.DeltaMax) != math.Float64bits(b.DeltaMax) {
		return false
	}
	for i := range a.Center {
		if a.Center[i] != b.Center[i] || a.Parent[i] != b.Parent[i] ||
			math.Float64bits(a.Dist[i]) != math.Float64bits(b.Dist[i]) {
			return false
		}
	}
	return true
}

func sameWeightedGraph(a, b *graph.WeightedGraph) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	ae, be := a.WeightedEdges(), b.WeightedEdges()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i].U != be[i].U || ae[i].V != be[i].V ||
			math.Float64bits(ae[i].W) != math.Float64bits(be[i].W) {
			return false
		}
	}
	return true
}

// requireHierIdentical compares an updated hierarchy against a freshly
// built one on the same (updated) graph: Result scalars, per-level stats,
// final graph, OrigMap, and every retained level (input graph,
// decomposition, quotient map, annotation table) must be bit-identical.
func requireHierIdentical(t *testing.T, tag string, got, want *Hierarchy) {
	t.Helper()
	gr, wr := got.res, want.res
	if gr.Levels != wr.Levels {
		t.Fatalf("%s: Levels = %d, want %d", tag, gr.Levels, wr.Levels)
	}
	for l := range wr.Stats {
		if gr.Stats[l] != wr.Stats[l] {
			t.Fatalf("%s: Stats[%d] = %+v, want %+v", tag, l, gr.Stats[l], wr.Stats[l])
		}
	}
	if !sameGraph(gr.Final, wr.Final) {
		t.Fatalf("%s: Final graph differs", tag)
	}
	if (gr.OrigMap == nil) != (wr.OrigMap == nil) {
		t.Fatalf("%s: OrigMap presence differs", tag)
	}
	for v := range wr.OrigMap {
		if gr.OrigMap[v] != wr.OrigMap[v] {
			t.Fatalf("%s: OrigMap[%d] = %d, want %d", tag, v, gr.OrigMap[v], wr.OrigMap[v])
		}
	}
	if len(got.levels) != len(want.levels) {
		t.Fatalf("%s: retained %d levels, want %d", tag, len(got.levels), len(want.levels))
	}
	for l := range want.levels {
		gs, ws := &got.levels[l], &want.levels[l]
		if !sameGraph(gs.g, ws.g) {
			t.Fatalf("%s: level %d input graph differs", tag, l)
		}
		if (gs.d == nil) != (ws.d == nil) || (gs.wd == nil) != (ws.wd == nil) ||
			(gs.wg == nil) != (ws.wg == nil) {
			t.Fatalf("%s: level %d weighted/unweighted shape differs", tag, l)
		}
		if gs.d != nil && !sameDecomp(gs.d, ws.d) {
			t.Fatalf("%s: level %d decomposition differs", tag, l)
		}
		if gs.wd != nil && !sameWeightedDecomp(gs.wd, ws.wd) {
			t.Fatalf("%s: level %d weighted decomposition differs", tag, l)
		}
		if gs.wg != nil && !sameWeightedGraph(gs.wg, ws.wg) {
			t.Fatalf("%s: level %d weighted input graph differs", tag, l)
		}
		if (gs.quot == nil) != (ws.quot == nil) || gs.numQuot != ws.numQuot {
			t.Fatalf("%s: level %d quotient shape differs", tag, l)
		}
		for v := range ws.quot {
			if gs.quot[v] != ws.quot[v] {
				t.Fatalf("%s: level %d quot[%d] differs", tag, l, v)
			}
		}
		if !edgesEqual(gs.orig, ws.orig) {
			t.Fatalf("%s: level %d annotation table differs (len %d vs %d)", tag, l, len(gs.orig), len(ws.orig))
		}
	}
}

func randomHierBatch(g *graph.Graph, seed uint64, nIns, nDel int) graph.Batch {
	n := uint64(g.NumVertices())
	var b graph.Batch
	for i := 0; i < nIns; i++ {
		u := uint32(xrand.Mix(seed, uint64(i)*2+1) % n)
		v := uint32(xrand.Mix(seed, uint64(i)*2+2) % n)
		b.Insert = append(b.Insert, graph.Edge{U: u, V: v})
	}
	edges := g.Edges()
	for i := 0; i < nDel && len(edges) > 0; i++ {
		b.Delete = append(b.Delete, edges[xrand.Mix(seed, 0xde1+uint64(i))%uint64(len(edges))])
	}
	return b
}

// TestHierarchyUpdateBitIdentical is the golden incremental determinism
// suite: over contract and residual configs, workers 1/2/8 and
// push/pull/auto, a chain of random update batches applied through
// Hierarchy.Update must leave the hierarchy bit-identical to a
// from-scratch build on the updated graph at every step.
func TestHierarchyUpdateBitIdentical(t *testing.T) {
	dirs := []core.Direction{core.DirectionForcePush, core.DirectionForcePull, core.DirectionAuto}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"contract", Config{Beta: 0.22, Seed: 41, NeedEdgeOrig: true, NeedIntra: true, TrackVertexMap: true}},
		{"residual", Config{Beta: 0.45, Seed: 17, Residual: true, NeedIntra: true, MaxLevels: 24}},
	}
	base := graph.Grid2D(19, 16)
	for _, tc := range configs {
		for _, w := range []int{1, 2, 8} {
			for _, dir := range dirs {
				cfg := tc.cfg
				cfg.Workers = w
				cfg.Direction = dir
				h, err := BuildHierarchy(cfg, base, nil)
				if err != nil {
					t.Fatalf("%s w=%d dir=%v: build: %v", tc.name, w, dir, err)
				}
				cur := base
				for step := uint64(0); step < 4; step++ {
					b := randomHierBatch(cur, 0xabc*step+uint64(w)+uint64(dir)<<4, 8, 6)
					us, err := h.Update(b, nil)
					if err != nil {
						t.Fatalf("%s w=%d dir=%v step %d: update: %v", tc.name, w, dir, step, err)
					}
					cur, _, err = graph.ApplyBatch(cur, b)
					if err != nil {
						t.Fatal(err)
					}
					fresh, err := BuildHierarchy(cfg, cur, nil)
					if err != nil {
						t.Fatalf("%s w=%d dir=%v step %d: fresh build: %v", tc.name, w, dir, step, err)
					}
					if us.Levels != fresh.Levels() {
						t.Fatalf("%s w=%d dir=%v step %d: stats report %d levels, fresh has %d",
							tc.name, w, dir, step, us.Levels, fresh.Levels())
					}
					if us.Rederived+us.Refreshed+us.Reused > us.Levels+us.Rederived {
						t.Fatalf("%s step %d: inconsistent reuse stats %+v", tc.name, step, us)
					}
					requireHierIdentical(t, tc.name, h, fresh)
				}
			}
		}
	}
}

// TestHierarchyUpdateVisitMatchesFresh checks the visit contract: levels
// visited during Update present exactly the view a fresh build presents
// (tree edges via OrigEdge, intra lists), and unvisited levels' previously
// captured views are still the fresh ones.
func TestHierarchyUpdateVisitMatchesFresh(t *testing.T) {
	base := graph.Grid2D(14, 15)
	cfg := Config{Beta: 0.3, Seed: 7, Workers: 4, NeedEdgeOrig: true, NeedIntra: true}

	// capture returns the per-level app view: parent tree edges in original
	// coordinates plus a copy of the intra list.
	type levelView struct {
		tree  []graph.Edge
		intra []graph.Edge
	}
	capture := func(lv *Level) levelView {
		var view levelView
		d := lv.D
		for v := range d.Parent {
			p := d.Parent[v]
			if p != uint32(v) {
				view.tree = append(view.tree, lv.OrigEdge(uint32(v), p))
			}
		}
		view.intra = append([]graph.Edge(nil), lv.IntraEdges...)
		return view
	}

	views := map[int]levelView{}
	h, err := BuildHierarchy(cfg, base, func(lv *Level) error {
		views[lv.Index] = capture(lv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cur := base
	for step := uint64(0); step < 3; step++ {
		b := randomHierBatch(cur, 0x5e7+step, 6, 5)
		if _, err := h.Update(b, func(lv *Level) error {
			views[lv.Index] = capture(lv)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for l := h.Levels(); l < len(views); l++ {
			delete(views, l) // hierarchy shrank; stale views drop
		}
		cur, _, err = graph.ApplyBatch(cur, b)
		if err != nil {
			t.Fatal(err)
		}
		freshViews := map[int]levelView{}
		if _, err := BuildHierarchy(cfg, cur, func(lv *Level) error {
			freshViews[lv.Index] = capture(lv)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(views) != len(freshViews) {
			t.Fatalf("step %d: %d levels of views, fresh has %d", step, len(views), len(freshViews))
		}
		for l, fv := range freshViews {
			gv := views[l]
			if !edgesEqual(gv.tree, fv.tree) {
				t.Fatalf("step %d level %d: tree edges differ", step, l)
			}
			if !edgesEqual(gv.intra, fv.intra) {
				t.Fatalf("step %d level %d: intra edges differ", step, l)
			}
		}
	}
}

// TestHierarchyUpdateReuseStats pins the damage-frontier accounting on
// scenarios with known reuse: a no-op batch reuses everything; deleting a
// single intra non-tree edge refreshes only level 0; a batch failing the
// fixpoint check re-derives from level 0.
func TestHierarchyUpdateReuseStats(t *testing.T) {
	base := graph.Grid2D(40, 40)
	cfg := Config{Beta: 0.12, Seed: 5, Workers: 4, NeedEdgeOrig: true, TrackVertexMap: true}
	h, err := BuildHierarchy(cfg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	levels := h.Levels()
	if levels < 2 {
		t.Fatalf("want a multi-level hierarchy, got %d levels", levels)
	}

	// No-op batch: insert an existing edge.
	us, err := h.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: 1}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Reused != levels || us.Rederived != 0 || us.Refreshed != 0 {
		t.Fatalf("no-op batch: %+v", us)
	}

	// Single intra non-tree edge delete: level 0 refreshes, everything
	// above splices.
	d0 := h.levels[0].d
	var intraNonTree *graph.Edge
	for _, e := range h.Graph().Edges() {
		if d0.Center[e.U] == d0.Center[e.V] && d0.Parent[e.U] != e.V && d0.Parent[e.V] != e.U {
			e := e
			intraNonTree = &e
			break
		}
	}
	if intraNonTree == nil {
		t.Fatal("no intra non-tree edge found")
	}
	us, err = h.Update(graph.Batch{Delete: []graph.Edge{*intraNonTree}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Rederived != 0 || us.Refreshed != 1 || us.Reused != levels-1 {
		t.Fatalf("intra delete: %+v, want rederived=0 refreshed=1 reused=%d", us, levels-1)
	}

	// Deleting a tree (support) edge fails the fixpoint check at level 0:
	// everything re-derives.
	var treeEdge *graph.Edge
	d0 = h.levels[0].d
	for _, e := range h.Graph().Edges() {
		if d0.Parent[e.U] == e.V || d0.Parent[e.V] == e.U {
			e := e
			treeEdge = &e
			break
		}
	}
	if treeEdge == nil {
		t.Fatal("no tree edge found")
	}
	us, err = h.Update(graph.Batch{Delete: []graph.Edge{*treeEdge}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Refreshed != 0 || us.Reused != 0 || us.Rederived != us.Levels {
		t.Fatalf("tree delete: %+v, want full re-derivation", us)
	}
}

// TestHierarchyUpdateGrowShrink drives the level count both ways: deleting
// every edge empties the hierarchy, re-inserting them rebuilds it — both
// through Update, both bit-identical to fresh builds.
func TestHierarchyUpdateGrowShrink(t *testing.T) {
	base := graph.Grid2D(9, 9)
	cfg := Config{Beta: 0.3, Seed: 2, Workers: 2, NeedEdgeOrig: true, TrackVertexMap: true}
	h, err := BuildHierarchy(cfg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := base.Edges()
	us, err := h.Update(graph.Batch{Delete: all}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Levels != 0 || h.Levels() != 0 {
		t.Fatalf("deleting all edges left %d levels", h.Levels())
	}
	empty, err := graph.FromEdgesDedup(base.NumVertices(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildHierarchy(cfg, empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireHierIdentical(t, "shrink", h, fresh)

	us, err = h.Update(graph.Batch{Insert: all}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Levels == 0 || us.Rederived != us.Levels {
		t.Fatalf("regrow: %+v", us)
	}
	fresh, err = BuildHierarchy(cfg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireHierIdentical(t, "grow", h, fresh)
}

// TestHierarchyUpdateWeighted checks the conservative weighted path:
// updates (including pure reweights) re-derive everything and land
// bit-identical to a fresh weighted build.
func TestHierarchyUpdateWeighted(t *testing.T) {
	base := graph.RandomWeights(graph.Grid2D(12, 11), 1, 8, 3)
	cfg := Config{
		// Geometric AKPW-style schedule so the weighted hierarchy converges.
		WBetaAt:        func(level int, _ *graph.WeightedGraph) float64 { return 0.3 / float64(uint64(1)<<uint(level)) },
		Seed:           6,
		Workers:        4,
		NeedEdgeOrig:   true,
		TrackVertexMap: true,
	}
	h, err := BuildWeightedHierarchy(cfg, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.Batch{
		Insert:  []graph.Edge{{U: 0, V: 130}, {U: 0, V: 1}},
		InsertW: []float64{2.5, 7.75},
		Delete:  []graph.Edge{{U: 11, V: 12}},
	}
	us, err := h.Update(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Rederived != us.Levels || us.Reused != 0 {
		t.Fatalf("weighted update must re-derive everything: %+v", us)
	}
	updated, _, err := graph.ApplyBatchWeighted(base, b)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildWeightedHierarchy(cfg, updated, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireHierIdentical(t, "weighted", h, fresh)
	we := h.WeightedGraph().WeightedEdges()
	fe := fresh.WeightedGraph().WeightedEdges()
	if len(we) != len(fe) {
		t.Fatalf("weighted edge count %d vs %d", len(we), len(fe))
	}
	for i := range we {
		if we[i].U != fe[i].U || we[i].V != fe[i].V ||
			math.Float64bits(we[i].W) != math.Float64bits(fe[i].W) {
			t.Fatalf("weighted edge %d differs: %+v vs %+v", i, we[i], fe[i])
		}
	}

	// A pure no-op (re-upsert of identical bits) reuses everything.
	w01, _ := h.WeightedGraph().Weight(0, 1)
	us, err = h.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: 1}}, InsertW: []float64{w01}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if us.Reused != us.Levels || us.Rederived != 0 {
		t.Fatalf("weighted no-op: %+v", us)
	}
}
