package hier

// ClusterMaps exports the hierarchy's cluster structure as flat per-level
// lookup arrays for query serving: out[l][v] is the id of the level-l
// cluster containing base-graph vertex v, where the id is the cluster's
// center vertex in level-l graph coordinates (original ids in residual
// mode, whose levels keep the vertex set). The maps are computed by
// composing the retained quotient maps once, level by level, on the
// configured pool — O(levels · n) total, after which a membership query is
// a single array load.
//
// The returned arrays are freshly allocated (one flat backing block) and
// owned by the caller: they stay valid and immutable across subsequent
// Updates, but describe the hierarchy as of this call — re-export after an
// update to observe it. Values are pure integer map folds of retained
// state, hence bit-identical at every worker count.
func (h *Hierarchy) ClusterMaps() [][]uint32 {
	cfg := h.eng.cfg
	levels := len(h.levels)
	if levels == 0 {
		return nil
	}
	n0 := h.levels[0].g.NumVertices()
	out := make([][]uint32, levels)
	flat := make([]uint32, levels*n0)
	// cur[v] is base vertex v's representative in the CURRENT level's graph
	// coordinates; contract mode folds each level's quotient map into it,
	// residual mode keeps the identity (levels share the vertex set).
	cur := make([]uint32, n0)
	cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			cur[v] = uint32(v)
		}
	})
	for l := 0; l < levels; l++ {
		st := &h.levels[l]
		var center []uint32
		if st.wd != nil {
			center = st.wd.Center
		} else {
			center = st.d.Center
		}
		row := flat[l*n0 : (l+1)*n0 : (l+1)*n0]
		out[l] = row
		quot := st.quot
		cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				c := cur[v]
				row[v] = center[c]
				if quot != nil {
					cur[v] = quot[c]
				}
			}
		})
	}
	return out
}
