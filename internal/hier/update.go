package hier

import (
	"errors"
	"fmt"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// This file turns the one-shot decompose-and-contract driver into an
// online system: a persistent Hierarchy retains every level's input graph,
// decomposition, quotient map and annotation table, and Update applies a
// graph.Batch by re-deriving — never patching — exactly the levels whose
// inputs changed (the ROADMAP rule). The contract is strict bit-identity:
// after Update, the Hierarchy's Result, every retained level, and every
// value a visit callback observes are identical to a from-scratch build on
// the updated graph with the same Config.
//
// Three facts localize the damage (docs/determinism.md §"Incremental
// re-derivation" gives the full argument):
//
//   - Level l's partition is seeded xrand.Mix(Seed, l) and its shift plan
//     never reads edges, so a batch can only change level l's output
//     through level l's input graph, and
//     core.Decomposition.UnchangedUnder verifies in O(batch) whether the
//     partition fixpoint survived the change.
//
//   - With the partition verified, a batch whose edges are all
//     intra-cluster leaves the cut-edge set — and therefore the quotient
//     (or residual) graph AND the annotation representatives — untouched:
//     inserting or deleting edges never reorders the surviving edges in
//     canonical order, so "first cut edge per quotient pair" picks the
//     same representatives. Only the level's own M-dependent stats and
//     intra-edge list need refreshing.
//
//   - Otherwise the contraction is re-run (partition reuse is the
//     expensive part; contraction is a scan) and the CSR diff of the old
//     and new quotient graphs becomes the next level's batch. The quotient
//     numbering is stable because the label-compaction order depends only
//     on the (unchanged) center array.
//
// Weighted hierarchies take the conservative path: any effective weighted
// change re-derives every level (a weight change can move Δ-stepping
// distances anywhere). Bit-identity holds trivially; making the weighted
// fixpoint check incremental is an open ROADMAP item.

// levelState is everything the Hierarchy retains per level: the level's
// input graph (weighted view when applicable), its decomposition, the
// quotient map, and the annotation table that maps the input graph's
// canonical edges to original edges (nil = identity).
type levelState struct {
	g       *graph.Graph
	wg      *graph.WeightedGraph
	d       *core.Decomposition
	wd      *core.WeightedDecomposition
	quot    []uint32
	numQuot int
	orig    []graph.Edge
}

// Hierarchy is a persistent decompose-and-contract hierarchy: the result
// of a build plus everything needed to maintain it under edge updates.
// It is not safe for concurrent use.
type Hierarchy struct {
	eng      *Engine
	res      *Result
	levels   []levelState
	weighted bool
}

// UpdateStats reports how much of the hierarchy an Update reused.
type UpdateStats struct {
	// Levels is the level count after the update.
	Levels int
	// Rederived counts levels whose partition was re-run from scratch
	// (the damage frontier and everything above it).
	Rederived int
	// Refreshed counts levels below the frontier that were reprocessed
	// with their partition verified unchanged — stats, contraction, or
	// annotations recomputed, the O(n·rounds) partition skipped.
	Refreshed int
	// Reused counts levels spliced verbatim: no recomputation, no visit.
	Reused int
	// DirtyVertices is the number of base-graph vertices whose adjacency
	// the batch changed; InsEdges/DelEdges/ReweightedEdges are the
	// effective base-graph edge changes.
	DirtyVertices   int
	InsEdges        int
	DelEdges        int
	ReweightedEdges int
}

func (s UpdateStats) String() string {
	return fmt.Sprintf("update{levels=%d rederived=%d refreshed=%d reused=%d dirty=%d +%d/-%d/~%d}",
		s.Levels, s.Rederived, s.Refreshed, s.Reused, s.DirtyVertices, s.InsEdges, s.DelEdges, s.ReweightedEdges)
}

// BuildHierarchy builds a persistent unweighted hierarchy over g, invoking
// visit per level exactly as Run does. The returned Hierarchy owns the
// engine's scratch; keep it to call Update. On ErrMaxLevels the hierarchy
// is returned alongside the error (its partial levels are consistent);
// other errors return nil.
func BuildHierarchy(cfg Config, g *graph.Graph, visit func(*Level) error) (*Hierarchy, error) {
	h := &Hierarchy{eng: New(cfg), res: &Result{}}
	h.initOrigMap(g.NumVertices())
	if err := h.deriveFrom(0, g, nil, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h, err
		}
		return nil, err
	}
	return h, nil
}

// BuildWeightedHierarchy is BuildHierarchy for weighted graphs (the
// RunWeighted driver).
func BuildWeightedHierarchy(cfg Config, wg *graph.WeightedGraph, visit func(*Level) error) (*Hierarchy, error) {
	h := &Hierarchy{eng: New(cfg), res: &Result{}, weighted: true}
	h.initOrigMap(wg.NumVertices())
	if err := h.deriveWeightedFrom(0, wg, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h, err
		}
		return nil, err
	}
	return h, nil
}

// Result returns the hierarchy's current result. The same pointer stays
// valid across updates; Update mutates it in place.
func (h *Hierarchy) Result() *Result { return h.res }

// Levels returns the current level count.
func (h *Hierarchy) Levels() int { return h.res.Levels }

// Graph returns the current base graph (the updated one after Update).
func (h *Hierarchy) Graph() *graph.Graph {
	if len(h.levels) > 0 {
		return h.levels[0].g
	}
	return h.res.Final
}

// WeightedGraph returns the current weighted base graph (weighted
// hierarchies only; nil otherwise).
func (h *Hierarchy) WeightedGraph() *graph.WeightedGraph {
	if !h.weighted {
		return nil
	}
	if len(h.levels) > 0 {
		return h.levels[0].wg
	}
	return h.res.WFinal
}

func (h *Hierarchy) initOrigMap(n0 int) {
	cfg := h.eng.cfg
	if !cfg.TrackVertexMap {
		return
	}
	h.res.OrigMap = make([]uint32, n0)
	cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			h.res.OrigMap[v] = uint32(v)
		}
	})
}

// recomposeOrigMap rebuilds Result.OrigMap as the composition of every
// level's quotient map. Pure integer map folding in a fixed order — the
// values are identical to the per-level composition Run used to maintain.
func (h *Hierarchy) recomposeOrigMap() {
	cfg := h.eng.cfg
	if !cfg.TrackVertexMap || cfg.Residual || h.res.OrigMap == nil {
		return
	}
	om := h.res.OrigMap
	n0 := len(om)
	cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			om[v] = uint32(v)
		}
	})
	for i := range h.levels {
		quot := h.levels[i].quot
		cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				om[v] = quot[om[v]]
			}
		})
	}
}

// deriveFrom truncates the hierarchy to [0, start) and derives level start
// and everything above it from scratch: the loop body of the original
// one-shot Run, retaining per-level state as it goes. cur is the graph
// entering level start and orig its annotation table (nil = identity).
// Output is bit-identical to a full Run over the level range — each level
// partitions with xrand.Mix(Seed, level) and identical inputs.
func (h *Hierarchy) deriveFrom(start int, cur *graph.Graph, orig []graph.Edge, visit func(*Level) error) error {
	e := h.eng
	cfg := e.cfg
	pool := cfg.Pool
	h.levels = h.levels[:start]
	h.res.Stats = h.res.Stats[:start]
	h.res.Levels = start
	e.rankFor = nil
	for level := start; cur.NumEdges() > 0; level++ {
		if level >= cfg.maxLevels() {
			h.res.Final = cur
			h.recomposeOrigMap()
			return ErrMaxLevels
		}
		d, err := core.Partition(cur, cfg.betaAt(level, cur), core.Options{
			Seed:        xrand.Mix(cfg.Seed, uint64(level)),
			Workers:     cfg.Workers,
			Pool:        pool,
			TieBreak:    cfg.TieBreak,
			ShiftSource: cfg.ShiftSource,
			Direction:   cfg.Direction,
		})
		if err != nil {
			return err
		}
		n := cur.NumVertices()
		center := d.Center
		lv := Level{Index: level, G: cur, D: d, eng: e, orig: orig}

		// Classification + next level. Contract mode renumbers through the
		// quotient map; residual mode keeps vertex ids and drops intra
		// edges.
		var next *graph.Graph
		var nextOrig []graph.Edge
		if cfg.Residual {
			next, err = graph.CutSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return err
			}
			lv.NumQuot = n
		} else {
			var quot []uint32
			next, quot, err = graph.ContractClustersPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return err
			}
			lv.Quot = quot
			lv.NumQuot = next.NumVertices()
			if cfg.NeedEdgeOrig {
				nextOrig = e.annotateContraction(cur, orig, center, quot, next)
			}
		}
		if cfg.NeedIntra {
			lv.IntraEdges = e.collectIntra(cur, orig, center)
		}
		if cfg.NeedEdgeOrig && orig != nil {
			e.buildRank(cur)
		}

		// The contraction/residual rebuild already walked every arc and
		// recorded the cut-arc count; no second O(m) stats sweep.
		stat := LevelStat{
			Level:     level,
			N:         n,
			M:         cur.NumEdges(),
			CutEdges:  e.sc.CutArcs / 2,
			QuotientN: lv.NumQuot,
		}
		stat.Clusters = int(pool.ReduceInt64(cfg.Workers, n, func(v int) int64 {
			if center[v] == uint32(v) {
				return 1
			}
			return 0
		}))
		if stat.M > 0 {
			stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
		}

		if visit != nil {
			if err := visit(&lv); err != nil {
				return err
			}
		}
		h.levels = append(h.levels, levelState{
			g: cur, d: d, quot: lv.Quot, numQuot: lv.NumQuot, orig: orig,
		})
		h.res.Stats = append(h.res.Stats, stat)
		h.res.Levels++
		cur = next
		orig = nextOrig
	}
	h.res.Final = cur
	h.recomposeOrigMap()
	return nil
}

// deriveWeightedFrom is deriveFrom for weighted hierarchies: the loop body
// of the original RunWeighted, retaining per-level state.
func (h *Hierarchy) deriveWeightedFrom(start int, cur *graph.WeightedGraph, visit func(*Level) error) error {
	e := h.eng
	cfg := e.cfg
	pool := cfg.Pool
	h.levels = h.levels[:start]
	h.res.Stats = h.res.Stats[:start]
	h.res.Levels = start
	curU := cur.Unweighted()
	var orig []graph.Edge
	e.rankFor = nil
	for level := start; cur.NumEdges() > 0; level++ {
		if level >= cfg.maxLevels() {
			h.res.WFinal = cur
			h.res.Final = curU
			h.recomposeOrigMap()
			return ErrMaxLevels
		}
		beta := cfg.wbetaAt(level, cur)
		delta := cfg.deltaAt(level, cur)
		if delta <= 0 {
			// The Meyer–Sanders default (max weight / avg degree) matches the
			// WEIGHT scale, but shifted distances live on the SHIFT scale
			// Exp(β) — mean 1/β, range ~ln n/β. On AKPW schedules β shrinks
			// geometrically, so a weight-scale Δ would make the bucket count
			// (and the round count) explode exponentially with the level.
			// Δ = 1/β keeps it at ~ln n buckets per level at every scale.
			delta = 1 / beta
		}
		wd, err := core.PartitionWeightedParallel(cur, beta, delta, core.Options{
			Seed:        xrand.Mix(cfg.Seed, uint64(level)),
			Workers:     cfg.Workers,
			Pool:        pool,
			TieBreak:    cfg.TieBreak,
			ShiftSource: cfg.ShiftSource,
			Direction:   cfg.Direction,
		})
		if err != nil {
			return err
		}
		n := cur.NumVertices()
		center := wd.Center
		lv := Level{Index: level, G: curU, WG: cur, WD: wd, eng: e, orig: orig}

		var next *graph.WeightedGraph
		var nextOrig []graph.Edge
		if cfg.Residual {
			next, err = graph.CutWeightedSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return err
			}
			lv.NumQuot = n
		} else {
			var quot []uint32
			next, quot, err = graph.ContractWeightedClustersPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return err
			}
			lv.Quot = quot
			lv.NumQuot = next.NumVertices()
			if cfg.NeedEdgeOrig {
				nextOrig = e.annotateContraction(curU, orig, center, quot, next.Unweighted())
			}
		}
		if cfg.NeedIntra {
			lv.IntraEdges = e.collectIntra(curU, orig, center)
		}
		if cfg.NeedEdgeOrig && orig != nil {
			e.buildRank(curU)
		}

		stat := LevelStat{
			Level:       level,
			N:           n,
			M:           cur.NumEdges(),
			CutEdges:    e.sc.CutArcs / 2,
			QuotientN:   lv.NumQuot,
			Weighted:    true,
			TotalWeight: TotalWeightOnPool(pool, cfg.Workers, cur),
			Rounds:      wd.Rounds,
		}
		// Weighted contraction conserves cut weight exactly (parallel edges
		// sum), so the next graph's total IS this level's cut weight.
		stat.CutWeight = TotalWeightOnPool(pool, cfg.Workers, next)
		stat.WMaxRadius, _ = pool.MaxFloat64(cfg.Workers, n, func(i int) float64 { return wd.Dist[i] })
		stat.Clusters = int(pool.ReduceInt64(cfg.Workers, n, func(v int) int64 {
			if center[v] == uint32(v) {
				return 1
			}
			return 0
		}))
		if stat.M > 0 {
			stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
		}
		if stat.TotalWeight > 0 {
			stat.CutWeightFraction = stat.CutWeight / stat.TotalWeight
		}

		if visit != nil {
			if err := visit(&lv); err != nil {
				return err
			}
		}
		h.levels = append(h.levels, levelState{
			g: curU, wg: cur, wd: wd, quot: lv.Quot, numQuot: lv.NumQuot, orig: orig,
		})
		h.res.Stats = append(h.res.Stats, stat)
		h.res.Levels++
		cur = next
		curU = next.Unweighted()
		orig = nextOrig
	}
	h.res.WFinal = cur
	h.res.Final = curU
	h.recomposeOrigMap()
	return nil
}

// graphEntering returns the graph entering level l: the retained input
// graph for existing levels, the final graph past the top.
func (h *Hierarchy) graphEntering(l int) *graph.Graph {
	if l < len(h.levels) {
		return h.levels[l].g
	}
	return h.res.Final
}

// origEntering returns the annotation table entering level l (nil =
// identity; always nil past the top, where the final graph has no edges).
func (h *Hierarchy) origEntering(l int) []graph.Edge {
	if l < len(h.levels) {
		return h.levels[l].orig
	}
	return nil
}

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Update applies b to the hierarchy's base graph and re-derives exactly
// the levels whose inputs changed, walking the damage up through the
// quotient maps. visit (which may be nil) is invoked, in level order, for
// every level whose observable state changed — re-derived levels AND
// refreshed levels — with exactly the Level view a from-scratch build
// would present; spliced levels are not visited. After Update, the
// Hierarchy and its Result are bit-identical to a from-scratch build on
// the updated graph.
//
// The per-level decision is:
//
//   - effective batch empty and annotations unchanged → splice the level
//     and everything above it (reused verbatim);
//   - core's UnchangedUnder rejects the batch (or the level's graph ran
//     out of edges) → re-derive this level and everything above it;
//   - verified, batch all intra-cluster → refresh stats/intra in place,
//     next level unchanged;
//   - verified, batch touches cut edges → re-run the contraction, diff
//     the quotient CSRs, and propagate the diff as the next level's batch.
//
// An error (from a kernel or a visit callback) leaves the hierarchy in an
// inconsistent state; discard it.
func (h *Hierarchy) Update(b graph.Batch, visit func(*Level) error) (UpdateStats, error) {
	if h.weighted {
		return h.updateWeighted(b, visit)
	}
	newG, ar, err := graph.ApplyBatch(h.Graph(), b)
	if err != nil {
		return UpdateStats{}, err
	}
	us := UpdateStats{
		DirtyVertices: len(ar.Dirty),
		InsEdges:      len(ar.Inserted),
		DelEdges:      len(ar.Deleted),
	}
	if ar.Unchanged() {
		us.Levels = h.res.Levels
		us.Reused = h.res.Levels
		return us, nil
	}

	e := h.eng
	cfg := e.cfg
	pool := cfg.Pool
	cur := newG
	ins, del := ar.Inserted, ar.Deleted
	var origIn []graph.Edge
	annotChanged := false

	for l := 0; ; l++ {
		if l >= len(h.levels) || len(ins)+len(del) > 0 && cur.NumEdges() == 0 {
			// Past the old top (new levels to grow), or this level's graph
			// lost its last edge (levels above it disappear): both are full
			// re-derivations from here.
			err := h.deriveFrom(l, cur, origIn, visit)
			us.Rederived = h.res.Levels - l
			us.Levels = h.res.Levels
			return us, err
		}
		st := &h.levels[l]
		if len(ins)+len(del) > 0 && !st.d.UnchangedUnder(ins, del) {
			err := h.deriveFrom(l, cur, origIn, visit)
			us.Rederived = h.res.Levels - l
			us.Levels = h.res.Levels
			return us, err
		}

		// Partition verified unchanged (or the batch is annotation-only).
		us.Refreshed++
		graphChanged := len(ins)+len(del) > 0
		st.g = cur
		st.d.G = cur
		st.orig = origIn
		center := st.d.Center
		stat := &h.res.Stats[l]

		allIntra := true
		for _, ed := range ins {
			if center[ed.U] != center[ed.V] {
				allIntra = false
				break
			}
		}
		if allIntra {
			for _, ed := range del {
				if center[ed.U] != center[ed.V] {
					allIntra = false
					break
				}
			}
		}

		var next *graph.Graph
		var nextOrig []graph.Edge
		var nextIns, nextDel []graph.Edge
		nextAnnotChanged := false
		if graphChanged && !allIntra {
			// Cut structure changed: re-run the contraction (no partition!)
			// and diff the quotient graphs to get the next level's batch.
			if cfg.Residual {
				next, err = graph.CutSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
				if err != nil {
					return us, err
				}
			} else {
				var quot []uint32
				next, quot, err = graph.ContractClustersPool(pool, cfg.Workers, cur, center, &e.sc)
				if err != nil {
					return us, err
				}
				// The compaction order depends only on the center array, so
				// the numbering is stable; guard the invariant the splice
				// logic stands on.
				if next.NumVertices() != st.numQuot {
					return us, fmt.Errorf("hier: quotient numbering shifted under a verified partition (level %d: %d -> %d vertices)",
						l, st.numQuot, next.NumVertices())
				}
				st.quot = quot
				if cfg.NeedEdgeOrig {
					nextOrig = e.annotateContraction(cur, origIn, center, quot, next)
				}
			}
			stat.M = cur.NumEdges()
			stat.CutEdges = e.sc.CutArcs / 2
			stat.CutFraction = 0
			if stat.M > 0 {
				stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
			}
			oldNext := h.graphEntering(l + 1)
			var equal bool
			nextIns, nextDel, equal = graph.DiffCSR(oldNext, next)
			if equal {
				next = oldNext // bit-identical; keep the retained pointer
			}
			if cfg.NeedEdgeOrig {
				if old := h.origEntering(l + 1); edgesEqual(nextOrig, old) {
					nextOrig = old
				} else {
					nextAnnotChanged = true
				}
			}
		} else {
			// Intra-only (or annotation-only) change: the cut-edge set is
			// untouched, so the next graph and the annotation
			// representatives are provably identical; only M-dependent
			// stats move.
			if graphChanged {
				stat.M = cur.NumEdges()
				stat.CutFraction = 0
				if stat.M > 0 {
					stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
				}
			}
			next = h.graphEntering(l + 1)
			nextOrig = h.origEntering(l + 1)
			if cfg.NeedEdgeOrig && annotChanged && !cfg.Residual {
				// The table entering this level changed, so the values its
				// cut-edge representatives carry may change even though the
				// representatives themselves are fixed.
				fresh := e.annotateContraction(cur, origIn, center, st.quot, next)
				if edgesEqual(fresh, nextOrig) {
					// converged; keep the old table
				} else {
					nextOrig = fresh
					nextAnnotChanged = true
				}
			}
		}

		// Re-present the refreshed level to the caller, exactly as a fresh
		// build would.
		lv := Level{Index: l, G: cur, D: st.d, Quot: st.quot, NumQuot: st.numQuot, eng: e, orig: origIn}
		if cfg.NeedIntra {
			lv.IntraEdges = e.collectIntra(cur, origIn, center)
		}
		if cfg.NeedEdgeOrig && origIn != nil {
			e.buildRank(cur)
		}
		if visit != nil {
			if err := visit(&lv); err != nil {
				return us, err
			}
		}

		if len(nextIns)+len(nextDel) == 0 && !nextAnnotChanged {
			// Damage absorbed: everything above is reused verbatim.
			us.Reused = h.res.Levels - l - 1
			us.Levels = h.res.Levels
			return us, nil
		}
		cur = next
		ins, del = nextIns, nextDel
		origIn = nextOrig
		annotChanged = nextAnnotChanged
	}
}

// updateWeighted is the conservative weighted path: any effective change
// re-derives the whole hierarchy on the updated weighted graph (bit-
// identity is then trivial). The weighted Δ-stepping fixpoint check is an
// open ROADMAP item.
func (h *Hierarchy) updateWeighted(b graph.Batch, visit func(*Level) error) (UpdateStats, error) {
	newWG, ar, err := graph.ApplyBatchWeighted(h.WeightedGraph(), b)
	if err != nil {
		return UpdateStats{}, err
	}
	us := UpdateStats{
		DirtyVertices:   len(ar.Dirty),
		InsEdges:        len(ar.Inserted),
		DelEdges:        len(ar.Deleted),
		ReweightedEdges: len(ar.Reweighted),
	}
	if ar.Unchanged() {
		us.Levels = h.res.Levels
		us.Reused = h.res.Levels
		return us, nil
	}
	err = h.deriveWeightedFrom(0, newWG, visit)
	us.Rederived = h.res.Levels
	us.Levels = h.res.Levels
	return us, err
}
