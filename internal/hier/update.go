package hier

import (
	"context"
	"errors"
	"fmt"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// This file turns the one-shot decompose-and-contract driver into an
// online system: a persistent Hierarchy retains every level's input graph,
// decomposition, quotient map and annotation table, and Update applies a
// graph.Batch by re-deriving — never patching — exactly the levels whose
// inputs changed (the ROADMAP rule). The contract is strict bit-identity:
// after Update, the Hierarchy's Result, every retained level, and every
// value a visit callback observes are identical to a from-scratch build on
// the updated graph with the same Config.
//
// Three facts localize the damage (docs/determinism.md §"Incremental
// re-derivation" gives the full argument):
//
//   - Level l's partition is seeded xrand.Mix(Seed, l) and its shift plan
//     never reads edges, so a batch can only change level l's output
//     through level l's input graph, and
//     core.Decomposition.UnchangedUnder verifies in O(batch) whether the
//     partition fixpoint survived the change.
//
//   - With the partition verified, a batch whose edges are all
//     intra-cluster leaves the cut-edge set — and therefore the quotient
//     (or residual) graph AND the annotation representatives — untouched:
//     inserting or deleting edges never reorders the surviving edges in
//     canonical order, so "first cut edge per quotient pair" picks the
//     same representatives. Only the level's own M-dependent stats and
//     intra-edge list need refreshing.
//
//   - Otherwise the contraction is re-run (partition reuse is the
//     expensive part; contraction is a scan) and the CSR diff of the old
//     and new quotient graphs becomes the next level's batch. The quotient
//     numbering is stable because the label-compaction order depends only
//     on the (unchanged) center array.
//
// Weighted hierarchies take the conservative path: any effective weighted
// change re-derives every level (a weight change can move Δ-stepping
// distances anywhere). Bit-identity holds trivially; making the weighted
// fixpoint check incremental is an open ROADMAP item.
//
// Every derivation runs in two phases (docs/robustness.md): a pure compute
// phase (computeLevels / the staged Update walk) that reads the live
// hierarchy but never mutates it and delivers no visits, and a commit
// phase that installs the staged state and only then replays the visit
// callbacks. Cancellation (Config.Ctx, polled at level and round
// boundaries) and contained panics therefore abort before commit: the
// hierarchy, its Result and the engine stay exactly as they were, and the
// same Update can simply be retried.

// levelState is everything the Hierarchy retains per level: the level's
// input graph (weighted view when applicable), its decomposition, the
// quotient map, and the annotation table that maps the input graph's
// canonical edges to original edges (nil = identity).
type levelState struct {
	g       *graph.Graph
	wg      *graph.WeightedGraph
	d       *core.Decomposition
	wd      *core.WeightedDecomposition
	quot    []uint32
	numQuot int
	orig    []graph.Edge
}

// Hierarchy is a persistent decompose-and-contract hierarchy: the result
// of a build plus everything needed to maintain it under edge updates.
// It is not safe for concurrent use.
type Hierarchy struct {
	eng      *Engine
	res      *Result
	levels   []levelState
	weighted bool
}

// UpdateStats reports how much of the hierarchy an Update reused.
type UpdateStats struct {
	// Levels is the level count after the update.
	Levels int
	// Rederived counts levels whose partition was re-run from scratch
	// (the damage frontier and everything above it).
	Rederived int
	// Refreshed counts levels below the frontier that were reprocessed
	// with their partition verified unchanged — stats, contraction, or
	// annotations recomputed, the O(n·rounds) partition skipped.
	Refreshed int
	// Reused counts levels spliced verbatim: no recomputation, no visit.
	Reused int
	// DirtyVertices is the number of base-graph vertices whose adjacency
	// the batch changed; InsEdges/DelEdges/ReweightedEdges are the
	// effective base-graph edge changes.
	DirtyVertices   int
	InsEdges        int
	DelEdges        int
	ReweightedEdges int
}

func (s UpdateStats) String() string {
	return fmt.Sprintf("update{levels=%d rederived=%d refreshed=%d reused=%d dirty=%d +%d/-%d/~%d}",
		s.Levels, s.Rederived, s.Refreshed, s.Reused, s.DirtyVertices, s.InsEdges, s.DelEdges, s.ReweightedEdges)
}

// BuildHierarchy builds a persistent unweighted hierarchy over g, invoking
// visit per level exactly as Run does. The returned Hierarchy owns the
// engine's scratch; keep it to call Update. On ErrMaxLevels the hierarchy
// is returned alongside the error (its partial levels are consistent);
// other errors — including Config.Ctx cancellation and contained panics —
// return nil.
func BuildHierarchy(cfg Config, g *graph.Graph, visit func(*Level) error) (h *Hierarchy, err error) {
	defer func() {
		if r := recover(); r != nil {
			h, err = nil, parallel.Recovered(r)
		}
	}()
	h = &Hierarchy{eng: New(cfg), res: &Result{}}
	if err := h.build(g, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h, err
		}
		return nil, err
	}
	return h, nil
}

// BuildWeightedHierarchy is BuildHierarchy for weighted graphs (the
// RunWeighted driver).
func BuildWeightedHierarchy(cfg Config, wg *graph.WeightedGraph, visit func(*Level) error) (h *Hierarchy, err error) {
	defer func() {
		if r := recover(); r != nil {
			h, err = nil, parallel.Recovered(r)
		}
	}()
	h = &Hierarchy{eng: New(cfg), res: &Result{}, weighted: true}
	if err := h.buildWeighted(wg, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h, err
		}
		return nil, err
	}
	return h, nil
}

// Result returns the hierarchy's current result. The same pointer stays
// valid across updates; Update mutates it in place (at commit time only).
func (h *Hierarchy) Result() *Result { return h.res }

// Levels returns the current level count.
func (h *Hierarchy) Levels() int { return h.res.Levels }

// Graph returns the current base graph (the updated one after Update).
func (h *Hierarchy) Graph() *graph.Graph {
	if len(h.levels) > 0 {
		return h.levels[0].g
	}
	return h.res.Final
}

// WeightedGraph returns the current weighted base graph (weighted
// hierarchies only; nil otherwise).
func (h *Hierarchy) WeightedGraph() *graph.WeightedGraph {
	if !h.weighted {
		return nil
	}
	if len(h.levels) > 0 {
		return h.levels[0].wg
	}
	return h.res.WFinal
}

func (h *Hierarchy) initOrigMap(n0 int) {
	cfg := h.eng.cfg
	if !cfg.TrackVertexMap {
		return
	}
	h.res.OrigMap = make([]uint32, n0)
	cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			h.res.OrigMap[v] = uint32(v)
		}
	})
}

// recomposeOrigMap rebuilds Result.OrigMap as the composition of every
// level's quotient map. Pure integer map folding in a fixed order — the
// values are identical to the per-level composition Run used to maintain.
func (h *Hierarchy) recomposeOrigMap() {
	cfg := h.eng.cfg
	if !cfg.TrackVertexMap || cfg.Residual || h.res.OrigMap == nil {
		return
	}
	om := h.res.OrigMap
	n0 := len(om)
	cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			om[v] = uint32(v)
		}
	})
	for i := range h.levels {
		quot := h.levels[i].quot
		cfg.Pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				om[v] = quot[om[v]]
			}
		})
	}
}

// build derives the full unweighted hierarchy over g, installs it, and
// replays the visits. The shared body of Run and BuildHierarchy.
func (h *Hierarchy) build(g *graph.Graph, visit func(*Level) error) error {
	cfg := h.eng.cfg
	h.initOrigMap(g.NumVertices())
	lvls, stats, final, derr := h.eng.computeLevels(cfg.Ctx, 0, g, nil)
	if derr != nil && !errors.Is(derr, ErrMaxLevels) {
		return derr
	}
	h.levels = lvls
	h.res.Stats = stats
	h.res.Levels = len(lvls)
	h.res.Final = final
	h.recomposeOrigMap()
	if verr := h.replayVisits(0, len(lvls), visit); verr != nil {
		return verr
	}
	return derr
}

// buildWeighted is build for weighted hierarchies.
func (h *Hierarchy) buildWeighted(wg *graph.WeightedGraph, visit func(*Level) error) error {
	cfg := h.eng.cfg
	h.initOrigMap(wg.NumVertices())
	lvls, stats, final, wfinal, derr := h.eng.computeWeightedLevels(cfg.Ctx, 0, wg)
	if derr != nil && !errors.Is(derr, ErrMaxLevels) {
		return derr
	}
	h.levels = lvls
	h.res.Stats = stats
	h.res.Levels = len(lvls)
	h.res.Final = final
	h.res.WFinal = wfinal
	h.recomposeOrigMap()
	if verr := h.replayVisits(0, len(lvls), visit); verr != nil {
		return verr
	}
	return derr
}

// computeLevels derives levels start, start+1, ... for the graph cur
// entering level start (orig its annotation table; nil = identity). It is
// the pure compute phase of every unweighted build and update: it reads
// only the engine's configuration and scratch, never touches a Hierarchy,
// and delivers no visits — staged levels are installed and presented to
// the caller only after the whole derivation succeeds. ctx is polled at
// every level boundary and forwarded into each level's Partition (which
// polls it between rounds). On ErrMaxLevels the levels computed so far are
// returned alongside the error (they are consistent and installable); any
// other error returns nothing.
func (e *Engine) computeLevels(ctx context.Context, start int, cur *graph.Graph, orig []graph.Edge) ([]levelState, []LevelStat, *graph.Graph, error) {
	cfg := e.cfg
	pool := cfg.Pool
	var lvls []levelState
	var stats []LevelStat
	for level := start; cur.NumEdges() > 0; level++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, nil, nil, cerr
		}
		if level >= cfg.maxLevels() {
			return lvls, stats, cur, ErrMaxLevels
		}
		d, err := core.Partition(cur, cfg.betaAt(level, cur), core.Options{
			Ctx:         ctx,
			Seed:        xrand.Mix(cfg.Seed, uint64(level)),
			Workers:     cfg.Workers,
			Pool:        pool,
			TieBreak:    cfg.TieBreak,
			ShiftSource: cfg.ShiftSource,
			Direction:   cfg.Direction,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		n := cur.NumVertices()
		center := d.Center
		st := levelState{g: cur, d: d, orig: orig}

		// Classification + next level. Contract mode renumbers through the
		// quotient map; residual mode keeps vertex ids and drops intra
		// edges.
		var next *graph.Graph
		var nextOrig []graph.Edge
		if cfg.Residual {
			next, err = graph.CutSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, nil, nil, err
			}
			st.numQuot = n
		} else {
			var quot []uint32
			next, quot, err = graph.ContractClustersPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, nil, nil, err
			}
			st.quot = quot
			st.numQuot = next.NumVertices()
			if cfg.NeedEdgeOrig {
				nextOrig = e.annotateContraction(cur, orig, center, quot, next)
			}
		}

		// The contraction/residual rebuild already walked every arc and
		// recorded the cut-arc count; no second O(m) stats sweep.
		stat := LevelStat{
			Level:     level,
			N:         n,
			M:         cur.NumEdges(),
			CutEdges:  e.sc.CutArcs / 2,
			QuotientN: st.numQuot,
		}
		stat.Clusters = int(pool.ReduceInt64(cfg.Workers, n, func(v int) int64 {
			if center[v] == uint32(v) {
				return 1
			}
			return 0
		}))
		if stat.M > 0 {
			stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
		}

		lvls = append(lvls, st)
		stats = append(stats, stat)
		cur = next
		orig = nextOrig
	}
	return lvls, stats, cur, nil
}

// computeWeightedLevels is computeLevels for weighted hierarchies: the
// pure compute phase of RunWeighted and the weighted Update.
func (e *Engine) computeWeightedLevels(ctx context.Context, start int, cur *graph.WeightedGraph) ([]levelState, []LevelStat, *graph.Graph, *graph.WeightedGraph, error) {
	cfg := e.cfg
	pool := cfg.Pool
	var lvls []levelState
	var stats []LevelStat
	curU := cur.Unweighted()
	var orig []graph.Edge
	for level := start; cur.NumEdges() > 0; level++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, nil, nil, nil, cerr
		}
		if level >= cfg.maxLevels() {
			return lvls, stats, curU, cur, ErrMaxLevels
		}
		beta := cfg.wbetaAt(level, cur)
		delta := cfg.deltaAt(level, cur)
		if delta <= 0 {
			// The Meyer–Sanders default (max weight / avg degree) matches the
			// WEIGHT scale, but shifted distances live on the SHIFT scale
			// Exp(β) — mean 1/β, range ~ln n/β. On AKPW schedules β shrinks
			// geometrically, so a weight-scale Δ would make the bucket count
			// (and the round count) explode exponentially with the level.
			// Δ = 1/β keeps it at ~ln n buckets per level at every scale.
			delta = 1 / beta
		}
		wd, err := core.PartitionWeightedParallel(cur, beta, delta, core.Options{
			Ctx:         ctx,
			Seed:        xrand.Mix(cfg.Seed, uint64(level)),
			Workers:     cfg.Workers,
			Pool:        pool,
			TieBreak:    cfg.TieBreak,
			ShiftSource: cfg.ShiftSource,
			Direction:   cfg.Direction,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		n := cur.NumVertices()
		center := wd.Center
		st := levelState{g: curU, wg: cur, wd: wd, orig: orig}

		var next *graph.WeightedGraph
		var nextOrig []graph.Edge
		if cfg.Residual {
			next, err = graph.CutWeightedSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			st.numQuot = n
		} else {
			var quot []uint32
			next, quot, err = graph.ContractWeightedClustersPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			st.quot = quot
			st.numQuot = next.NumVertices()
			if cfg.NeedEdgeOrig {
				nextOrig = e.annotateContraction(curU, orig, center, quot, next.Unweighted())
			}
		}

		stat := LevelStat{
			Level:       level,
			N:           n,
			M:           cur.NumEdges(),
			CutEdges:    e.sc.CutArcs / 2,
			QuotientN:   st.numQuot,
			Weighted:    true,
			TotalWeight: TotalWeightOnPool(pool, cfg.Workers, cur),
			Rounds:      wd.Rounds,
		}
		// Weighted contraction conserves cut weight exactly (parallel edges
		// sum), so the next graph's total IS this level's cut weight.
		stat.CutWeight = TotalWeightOnPool(pool, cfg.Workers, next)
		stat.WMaxRadius, _ = pool.MaxFloat64(cfg.Workers, n, func(i int) float64 { return wd.Dist[i] })
		stat.Clusters = int(pool.ReduceInt64(cfg.Workers, n, func(v int) int64 {
			if center[v] == uint32(v) {
				return 1
			}
			return 0
		}))
		if stat.M > 0 {
			stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
		}
		if stat.TotalWeight > 0 {
			stat.CutWeightFraction = stat.CutWeight / stat.TotalWeight
		}

		lvls = append(lvls, st)
		stats = append(stats, stat)
		cur = next
		curU = next.Unweighted()
		orig = nextOrig
	}
	return lvls, stats, curU, cur, nil
}

// replayVisits presents levels [from, to) to visit in order, reconstructing
// exactly the Level view an interleaved build would have shown: the
// scratch-aliasing pieces (IntraEdges, the OrigEdge rank tables) are
// recomputed per level from the retained state. Runs strictly after
// commit, so a visit error (or panic) can no longer leave the hierarchy
// inconsistent — only the caller's own per-level state is partial.
func (h *Hierarchy) replayVisits(from, to int, visit func(*Level) error) error {
	if visit == nil {
		return nil
	}
	e := h.eng
	cfg := e.cfg
	e.rankFor = nil
	for l := from; l < to; l++ {
		st := &h.levels[l]
		lv := Level{
			Index: l, G: st.g, D: st.d, WG: st.wg, WD: st.wd,
			Quot: st.quot, NumQuot: st.numQuot, eng: e, orig: st.orig,
		}
		center := lv.Center()
		if cfg.NeedIntra {
			lv.IntraEdges = e.collectIntra(st.g, st.orig, center)
		}
		if cfg.NeedEdgeOrig && st.orig != nil {
			e.buildRank(st.g)
		}
		if err := visit(&lv); err != nil {
			return err
		}
	}
	return nil
}

// graphEntering returns the graph entering level l: the retained input
// graph for existing levels, the final graph past the top.
func (h *Hierarchy) graphEntering(l int) *graph.Graph {
	if l < len(h.levels) {
		return h.levels[l].g
	}
	return h.res.Final
}

// origEntering returns the annotation table entering level l (nil =
// identity; always nil past the top, where the final graph has no edges).
func (h *Hierarchy) origEntering(l int) []graph.Edge {
	if l < len(h.levels) {
		return h.levels[l].orig
	}
	return nil
}

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dfixG is a deferred d.G pointer swing for a refreshed level: the
// Decomposition object is shared between the live and the staged level
// state, so pointing it at the updated input graph may only happen at
// commit time.
type dfixG struct {
	d *core.Decomposition
	g *graph.Graph
}

// Update applies b to the hierarchy's base graph and re-derives exactly
// the levels whose inputs changed, walking the damage up through the
// quotient maps. visit (which may be nil) is invoked, in level order, for
// every level whose observable state changed — re-derived levels AND
// refreshed levels — with exactly the Level view a from-scratch build
// would present; spliced levels are not visited. After Update, the
// Hierarchy and its Result are bit-identical to a from-scratch build on
// the updated graph.
//
// The per-level decision is:
//
//   - effective batch empty and annotations unchanged → splice the level
//     and everything above it (reused verbatim);
//   - core's UnchangedUnder rejects the batch (or the level's graph ran
//     out of edges) → re-derive this level and everything above it;
//   - verified, batch all intra-cluster → refresh stats/intra in place,
//     next level unchanged;
//   - verified, batch touches cut edges → re-run the contraction, diff
//     the quotient CSRs, and propagate the diff as the next level's batch.
//
// Update is all-or-nothing: the walk stages every change (copied level
// and stat arrays, deferred pointer fixups) and commits only once the
// whole derivation has succeeded. On cancellation (Config.Ctx, polled at
// level and partition-round boundaries), a contained panic
// (*parallel.PanicError), or any kernel error, Update returns a zero
// UpdateStats and the error with the hierarchy, its Result and the engine
// untouched — retrying the same batch is safe. Visits are replayed only
// after commit, so an error from a visit callback leaves the hierarchy
// consistent in its updated state; only the caller's own per-level state
// is partial and should be rebuilt. ErrMaxLevels likewise commits the
// (consistent) truncated hierarchy, exactly as BuildHierarchy does.
func (h *Hierarchy) Update(b graph.Batch, visit func(*Level) error) (UpdateStats, error) {
	return h.UpdateCtx(h.eng.cfg.Ctx, b, visit)
}

// UpdateCtx is Update with a per-call cancellation context overriding
// Config.Ctx (nil means never cancelled) — the shape a long-running
// service needs, where one persistent hierarchy serves many requests each
// carrying its own deadline. The all-or-nothing contract is identical.
func (h *Hierarchy) UpdateCtx(ctx context.Context, b graph.Batch, visit func(*Level) error) (us UpdateStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			us, err = UpdateStats{}, parallel.Recovered(r)
		}
	}()
	if h.weighted {
		return h.updateWeighted(ctx, b, visit)
	}
	newG, ar, err := graph.ApplyBatch(h.Graph(), b)
	if err != nil {
		return UpdateStats{}, err
	}
	us = UpdateStats{
		DirtyVertices: len(ar.Dirty),
		InsEdges:      len(ar.Inserted),
		DelEdges:      len(ar.Deleted),
	}
	if ar.Unchanged() {
		us.Levels = h.res.Levels
		us.Reused = h.res.Levels
		return us, nil
	}

	e := h.eng
	cfg := e.cfg
	pool := cfg.Pool

	// Staged state: struct copies of the level and stat arrays. The walk
	// below mutates only these copies (plus the deferred d.G fixups); the
	// live hierarchy is read, never written, until commit.
	nlv := append([]levelState(nil), h.levels...)
	nst := append([]LevelStat(nil), h.res.Stats...)
	var dfix []dfixG
	final := h.res.Final
	rederived := false
	visitEnd := 0
	var derr error // nil or ErrMaxLevels once staged

	cur := newG
	ins, del := ar.Inserted, ar.Deleted
	var origIn []graph.Edge
	annotChanged := false

	for l := 0; ; l++ {
		if cerr := ctxErr(ctx); cerr != nil {
			return UpdateStats{}, cerr
		}
		rederive := l >= len(h.levels) || len(ins)+len(del) > 0 && cur.NumEdges() == 0
		if !rederive && len(ins)+len(del) > 0 && !h.levels[l].d.UnchangedUnder(ins, del) {
			rederive = true
		}
		if rederive {
			// Past the old top (new levels to grow), this level's graph lost
			// its last edge (levels above it disappear), or the partition
			// fixpoint did not survive: full re-derivation from here.
			lvls, stats, fin, cerr := e.computeLevels(ctx, l, cur, origIn)
			if cerr != nil && !errors.Is(cerr, ErrMaxLevels) {
				return UpdateStats{}, cerr
			}
			derr = cerr
			nlv = append(nlv[:l], lvls...)
			nst = append(nst[:l], stats...)
			final = fin
			us.Rederived = len(lvls)
			rederived = true
			visitEnd = len(nlv)
			break
		}

		// Partition verified unchanged (or the batch is annotation-only).
		us.Refreshed++
		graphChanged := len(ins)+len(del) > 0
		nlv[l].g = cur
		nlv[l].orig = origIn
		dfix = append(dfix, dfixG{d: nlv[l].d, g: cur})
		center := nlv[l].d.Center
		stat := &nst[l]

		allIntra := true
		for _, ed := range ins {
			if center[ed.U] != center[ed.V] {
				allIntra = false
				break
			}
		}
		if allIntra {
			for _, ed := range del {
				if center[ed.U] != center[ed.V] {
					allIntra = false
					break
				}
			}
		}

		var next *graph.Graph
		var nextOrig []graph.Edge
		var nextIns, nextDel []graph.Edge
		nextAnnotChanged := false
		if graphChanged && !allIntra {
			// Cut structure changed: re-run the contraction (no partition!)
			// and diff the quotient graphs to get the next level's batch.
			if cfg.Residual {
				next, err = graph.CutSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
				if err != nil {
					return UpdateStats{}, err
				}
			} else {
				var quot []uint32
				next, quot, err = graph.ContractClustersPool(pool, cfg.Workers, cur, center, &e.sc)
				if err != nil {
					return UpdateStats{}, err
				}
				// The compaction order depends only on the center array, so
				// the numbering is stable; guard the invariant the splice
				// logic stands on.
				if next.NumVertices() != nlv[l].numQuot {
					return UpdateStats{}, fmt.Errorf("hier: quotient numbering shifted under a verified partition (level %d: %d -> %d vertices)",
						l, nlv[l].numQuot, next.NumVertices())
				}
				nlv[l].quot = quot
				if cfg.NeedEdgeOrig {
					nextOrig = e.annotateContraction(cur, origIn, center, quot, next)
				}
			}
			stat.M = cur.NumEdges()
			stat.CutEdges = e.sc.CutArcs / 2
			stat.CutFraction = 0
			if stat.M > 0 {
				stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
			}
			oldNext := h.graphEntering(l + 1)
			var equal bool
			nextIns, nextDel, equal = graph.DiffCSR(oldNext, next)
			if equal {
				next = oldNext // bit-identical; keep the retained pointer
			}
			if cfg.NeedEdgeOrig {
				if old := h.origEntering(l + 1); edgesEqual(nextOrig, old) {
					nextOrig = old
				} else {
					nextAnnotChanged = true
				}
			}
		} else {
			// Intra-only (or annotation-only) change: the cut-edge set is
			// untouched, so the next graph and the annotation
			// representatives are provably identical; only M-dependent
			// stats move.
			if graphChanged {
				stat.M = cur.NumEdges()
				stat.CutFraction = 0
				if stat.M > 0 {
					stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
				}
			}
			next = h.graphEntering(l + 1)
			nextOrig = h.origEntering(l + 1)
			if cfg.NeedEdgeOrig && annotChanged && !cfg.Residual {
				// The table entering this level changed, so the values its
				// cut-edge representatives carry may change even though the
				// representatives themselves are fixed.
				fresh := e.annotateContraction(cur, origIn, center, nlv[l].quot, next)
				if edgesEqual(fresh, nextOrig) {
					// converged; keep the old table
				} else {
					nextOrig = fresh
					nextAnnotChanged = true
				}
			}
		}

		visitEnd = l + 1
		if len(nextIns)+len(nextDel) == 0 && !nextAnnotChanged {
			// Damage absorbed: everything above is reused verbatim.
			us.Reused = h.res.Levels - l - 1
			break
		}
		cur = next
		ins, del = nextIns, nextDel
		origIn = nextOrig
		annotChanged = nextAnnotChanged
	}

	// Commit: land the deferred pointer fixups and install the staged
	// arrays, then — and only then — replay the visits.
	for _, f := range dfix {
		f.d.G = f.g
	}
	h.levels = nlv
	h.res.Stats = nst
	h.res.Levels = len(nlv)
	h.res.Final = final
	if rederived {
		h.recomposeOrigMap()
	}
	us.Levels = h.res.Levels
	if verr := h.replayVisits(0, visitEnd, visit); verr != nil && derr == nil {
		return us, verr
	}
	return us, derr
}

// updateWeighted is the conservative weighted path: any effective change
// re-derives the whole hierarchy on the updated weighted graph (bit-
// identity is then trivial), staged and committed with the same
// all-or-nothing contract as the unweighted Update. The weighted
// Δ-stepping fixpoint check is an open ROADMAP item.
func (h *Hierarchy) updateWeighted(ctx context.Context, b graph.Batch, visit func(*Level) error) (UpdateStats, error) {
	newWG, ar, err := graph.ApplyBatchWeighted(h.WeightedGraph(), b)
	if err != nil {
		return UpdateStats{}, err
	}
	us := UpdateStats{
		DirtyVertices:   len(ar.Dirty),
		InsEdges:        len(ar.Inserted),
		DelEdges:        len(ar.Deleted),
		ReweightedEdges: len(ar.Reweighted),
	}
	if ar.Unchanged() {
		us.Levels = h.res.Levels
		us.Reused = h.res.Levels
		return us, nil
	}
	lvls, stats, final, wfinal, derr := h.eng.computeWeightedLevels(ctx, 0, newWG)
	if derr != nil && !errors.Is(derr, ErrMaxLevels) {
		return UpdateStats{}, derr
	}
	h.levels = lvls
	h.res.Stats = stats
	h.res.Levels = len(lvls)
	h.res.Final = final
	h.res.WFinal = wfinal
	h.recomposeOrigMap()
	us.Rederived = h.res.Levels
	us.Levels = h.res.Levels
	if verr := h.replayVisits(0, len(lvls), visit); verr != nil && derr == nil {
		return us, verr
	}
	return us, derr
}
