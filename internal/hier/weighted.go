package hier

import (
	"math"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/parallel"
	"mpx/internal/xrand"
)

// This file is the weighted mode of the hierarchy engine: the same
// decompose-and-contract driver with core.PartitionWeightedParallel as the
// per-level decomposition and the weighted contraction/residual kernels
// (graph.ContractWeightedClustersPool, graph.CutWeightedSubgraphPool) as
// the per-level rebuild — the layer that runs AKPW end to end on weighted
// graphs. Contraction SUMS the weights of parallel cut edges into the
// quotient arc, so total edge weight is conserved level by level, and the
// per-level β/Δ schedules (Config.WBetaAt / Config.DeltaAt) realize the
// AKPW weight-class progression: β shrinks geometrically so each level
// clusters at the next weight scale.
//
// Determinism composes exactly as in the unweighted engine: the weighted
// partition is bit-identical across workers and push/pull/auto
// (docs/determinism.md), the weighted contraction is bit-identical to its
// serial reference including every summed weight bit (stable sort + fixed
// run-sum order), and the annotation/classification kernels are shared
// with the unweighted engine verbatim — they read only the CSR structure
// and the center labels, never the weights or the schedule.

// Center returns the per-vertex center assignment of this level's
// decomposition — WD.Center in weighted runs, D.Center otherwise.
func (lv *Level) Center() []uint32 {
	if lv.WD != nil {
		return lv.WD.Center
	}
	return lv.D.Center
}

// RunWeighted executes a full weighted hierarchy with a fresh engine; see
// Engine.RunWeighted.
func RunWeighted(cfg Config, wg *graph.WeightedGraph, visit func(*Level) error) (*Result, error) {
	return New(cfg).RunWeighted(wg, visit)
}

// RunWeighted drives the weighted hierarchy over wg, invoking visit (which
// may be nil) once per level. Per level it runs
// core.PartitionWeightedParallel with the configured β/Δ schedules, then
// contracts clusters through graph.ContractWeightedClustersPool (summing
// parallel edge weights) or rebuilds the weighted residual graph
// (Config.Residual). Vertex maps, edge annotations and intra-edge
// collection behave exactly as in Run; Level.G is the unweighted view of
// Level.WG so OrigEdge works unchanged. Output is bit-identical at every
// worker count and traversal direction for a fixed (wg, config).
func (e *Engine) RunWeighted(wg *graph.WeightedGraph, visit func(*Level) error) (*Result, error) {
	cfg := e.cfg
	pool := cfg.Pool
	res := &Result{}
	n0 := wg.NumVertices()
	if cfg.TrackVertexMap {
		res.OrigMap = make([]uint32, n0)
		pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				res.OrigMap[v] = uint32(v)
			}
		})
	}
	cur := wg
	curU := wg.Unweighted()
	var orig []graph.Edge
	e.rankFor = nil
	for level := 0; cur.NumEdges() > 0; level++ {
		if level >= cfg.maxLevels() {
			res.WFinal = cur
			res.Final = curU
			return res, ErrMaxLevels
		}
		beta := cfg.wbetaAt(level, cur)
		delta := cfg.deltaAt(level, cur)
		if delta <= 0 {
			// The Meyer–Sanders default (max weight / avg degree) matches the
			// WEIGHT scale, but shifted distances live on the SHIFT scale
			// Exp(β) — mean 1/β, range ~ln n/β. On AKPW schedules β shrinks
			// geometrically, so a weight-scale Δ would make the bucket count
			// (and the round count) explode exponentially with the level.
			// Δ = 1/β keeps it at ~ln n buckets per level at every scale.
			delta = 1 / beta
		}
		wd, err := core.PartitionWeightedParallel(cur, beta, delta, core.Options{
			Seed:        xrand.Mix(cfg.Seed, uint64(level)),
			Workers:     cfg.Workers,
			Pool:        pool,
			TieBreak:    cfg.TieBreak,
			ShiftSource: cfg.ShiftSource,
			Direction:   cfg.Direction,
		})
		if err != nil {
			return nil, err
		}
		n := cur.NumVertices()
		center := wd.Center
		lv := Level{Index: level, G: curU, WG: cur, WD: wd, eng: e, orig: orig}

		var next *graph.WeightedGraph
		var nextOrig []graph.Edge
		if cfg.Residual {
			next, err = graph.CutWeightedSubgraphPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, err
			}
			lv.NumQuot = n
		} else {
			var quot []uint32
			next, quot, err = graph.ContractWeightedClustersPool(pool, cfg.Workers, cur, center, &e.sc)
			if err != nil {
				return nil, err
			}
			lv.Quot = quot
			lv.NumQuot = next.NumVertices()
			if cfg.NeedEdgeOrig {
				nextOrig = e.annotateContraction(curU, orig, center, quot, next.Unweighted())
			}
		}
		if cfg.NeedIntra {
			lv.IntraEdges = e.collectIntra(curU, orig, center)
		}
		if cfg.NeedEdgeOrig && orig != nil {
			e.buildRank(curU)
		}

		stat := LevelStat{
			Level:       level,
			N:           n,
			M:           cur.NumEdges(),
			CutEdges:    e.sc.CutArcs / 2,
			QuotientN:   lv.NumQuot,
			Weighted:    true,
			TotalWeight: TotalWeightOnPool(pool, cfg.Workers, cur),
			Rounds:      wd.Rounds,
		}
		// Weighted contraction conserves cut weight exactly (parallel edges
		// sum), so the next graph's total IS this level's cut weight.
		stat.CutWeight = TotalWeightOnPool(pool, cfg.Workers, next)
		stat.WMaxRadius, _ = pool.MaxFloat64(cfg.Workers, n, func(i int) float64 { return wd.Dist[i] })
		stat.Clusters = int(pool.ReduceInt64(cfg.Workers, n, func(v int) int64 {
			if center[v] == uint32(v) {
				return 1
			}
			return 0
		}))
		if stat.M > 0 {
			stat.CutFraction = float64(stat.CutEdges) / float64(stat.M)
		}
		if stat.TotalWeight > 0 {
			stat.CutWeightFraction = stat.CutWeight / stat.TotalWeight
		}

		if visit != nil {
			if err := visit(&lv); err != nil {
				return nil, err
			}
		}
		res.Stats = append(res.Stats, stat)
		res.Levels++
		if cfg.TrackVertexMap && !cfg.Residual {
			quot := lv.Quot
			pool.ForRange(cfg.Workers, n0, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					res.OrigMap[v] = quot[res.OrigMap[v]]
				}
			})
		}
		cur = next
		curU = next.Unweighted()
		orig = nextOrig
	}
	res.WFinal = cur
	res.Final = curU
	return res, nil
}

// TotalWeightOnPool sums the undirected edge weights of wg as a pooled
// block reduction (each arc contributes half its weight twice). The last
// float bits depend on the block layout, i.e. on the worker count — use it
// for stats, never for determinism-gated output. Shared by the engine's
// per-level stats and the weighted applications.
func TotalWeightOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph) float64 {
	return pool.ReduceFloat64(workers, wg.NumVertices(), func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		var s float64
		for _, x := range ws {
			s += x
		}
		return s
	}) / 2
}

// WeightRangeOnPool returns the minimum and maximum edge weight of wg as
// pooled per-vertex reductions (+Inf / -Inf on an edgeless graph). Exact:
// min/max are order-independent.
func WeightRangeOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph) (wmin, wmax float64) {
	n := wg.NumVertices()
	wmax, _ = pool.MaxFloat64(workers, n, func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		m := math.Inf(-1)
		for _, w := range ws {
			if w > m {
				m = w
			}
		}
		return m
	})
	negMin, _ := pool.MaxFloat64(workers, n, func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		m := math.Inf(-1)
		for _, w := range ws {
			if -w > m {
				m = -w
			}
		}
		return m
	})
	return -negMin, wmax
}

// CutWeightOnPool sums the weight of the edges of wg whose endpoints carry
// different labels, reducing on the given pool — the weighted analogue of
// CutEdgesOnPool, shared by the single-level weighted applications. Stats
// only: block-reduction float order depends on the worker count.
func CutWeightOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph, center []uint32) float64 {
	return pool.ReduceFloat64(workers, wg.NumVertices(), func(v int) float64 {
		nbrs, ws := wg.Neighbors(uint32(v))
		cv := center[v]
		var s float64
		for i, u := range nbrs {
			if center[u] != cv {
				s += ws[i]
			}
		}
		return s
	}) / 2
}
