package hier

import (
	"errors"
	"math"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// This file is the weighted mode of the hierarchy engine: the same
// decompose-and-contract driver with core.PartitionWeightedParallel as the
// per-level decomposition and the weighted contraction/residual kernels
// (graph.ContractWeightedClustersPool, graph.CutWeightedSubgraphPool) as
// the per-level rebuild — the layer that runs AKPW end to end on weighted
// graphs. Contraction SUMS the weights of parallel cut edges into the
// quotient arc, so total edge weight is conserved level by level, and the
// per-level β/Δ schedules (Config.WBetaAt / Config.DeltaAt) realize the
// AKPW weight-class progression: β shrinks geometrically so each level
// clusters at the next weight scale.
//
// Determinism composes exactly as in the unweighted engine: the weighted
// partition is bit-identical across workers and push/pull/auto
// (docs/determinism.md), the weighted contraction is bit-identical to its
// serial reference including every summed weight bit (stable sort + fixed
// run-sum order), and the annotation/classification kernels are shared
// with the unweighted engine verbatim — they read only the CSR structure
// and the center labels, never the weights or the schedule.

// Center returns the per-vertex center assignment of this level's
// decomposition — WD.Center in weighted runs, D.Center otherwise.
func (lv *Level) Center() []uint32 {
	if lv.WD != nil {
		return lv.WD.Center
	}
	return lv.D.Center
}

// RunWeighted executes a full weighted hierarchy with a fresh engine; see
// Engine.RunWeighted.
func RunWeighted(cfg Config, wg *graph.WeightedGraph, visit func(*Level) error) (*Result, error) {
	return New(cfg).RunWeighted(wg, visit)
}

// RunWeighted drives the weighted hierarchy over wg, invoking visit (which
// may be nil) once per level. Per level it runs
// core.PartitionWeightedParallel with the configured β/Δ schedules, then
// contracts clusters through graph.ContractWeightedClustersPool (summing
// parallel edge weights) or rebuilds the weighted residual graph
// (Config.Residual). Vertex maps, edge annotations and intra-edge
// collection behave exactly as in Run; Level.G is the unweighted view of
// Level.WG so OrigEdge works unchanged. Output is bit-identical at every
// worker count and traversal direction for a fixed (wg, config).
//
// Like Run, this is a thin wrapper over the persistent Hierarchy
// (update.go); BuildWeightedHierarchy retains the per-level state for
// incremental maintenance. Cancellation and panic containment follow
// Run's contract: the derivation is staged before any visit is delivered.
func (e *Engine) RunWeighted(wg *graph.WeightedGraph, visit func(*Level) error) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, parallel.Recovered(r)
		}
	}()
	h := &Hierarchy{eng: e, res: &Result{}, weighted: true}
	if err := h.buildWeighted(wg, visit); err != nil {
		if errors.Is(err, ErrMaxLevels) {
			return h.res, err
		}
		return nil, err
	}
	return h.res, nil
}

// TotalWeightOnPool sums the undirected edge weights of wg as a pooled
// block reduction (each arc contributes half its weight twice). The last
// float bits depend on the block layout, i.e. on the worker count — use it
// for stats, never for determinism-gated output. Shared by the engine's
// per-level stats and the weighted applications.
func TotalWeightOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph) float64 {
	return pool.ReduceFloat64(workers, wg.NumVertices(), func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		var s float64
		for _, x := range ws {
			s += x
		}
		return s
	}) / 2
}

// WeightRangeOnPool returns the minimum and maximum edge weight of wg as
// pooled per-vertex reductions (+Inf / -Inf on an edgeless graph). Exact:
// min/max are order-independent.
func WeightRangeOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph) (wmin, wmax float64) {
	n := wg.NumVertices()
	wmax, _ = pool.MaxFloat64(workers, n, func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		m := math.Inf(-1)
		for _, w := range ws {
			if w > m {
				m = w
			}
		}
		return m
	})
	negMin, _ := pool.MaxFloat64(workers, n, func(v int) float64 {
		_, ws := wg.Neighbors(uint32(v))
		m := math.Inf(-1)
		for _, w := range ws {
			if -w > m {
				m = -w
			}
		}
		return m
	})
	return -negMin, wmax
}

// CutWeightOnPool sums the weight of the edges of wg whose endpoints carry
// different labels, reducing on the given pool — the weighted analogue of
// CutEdgesOnPool, shared by the single-level weighted applications. Stats
// only: block-reduction float order depends on the worker count.
func CutWeightOnPool(pool *parallel.Pool, workers int, wg *graph.WeightedGraph, center []uint32) float64 {
	return pool.ReduceFloat64(workers, wg.NumVertices(), func(v int) float64 {
		nbrs, ws := wg.Neighbors(uint32(v))
		cv := center[v]
		var s float64
		for i, u := range nbrs {
			if center[u] != cv {
				s += ws[i]
			}
		}
		return s
	}) / 2
}
