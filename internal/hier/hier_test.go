package hier

import (
	"math/rand"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/xrand"
)

// serialLevel mirrors one engine level with the serial primitives the
// engine replaced: Partition, then map-based ContractClusters.
func serialHierarchy(t *testing.T, g *graph.Graph, beta float64, seed uint64) (levels []*graph.Graph, decs []*core.Decomposition, maps [][]uint32) {
	t.Helper()
	cur := g
	for level := 0; cur.NumEdges() > 0; level++ {
		if level > 64 {
			t.Fatal("serial hierarchy did not converge")
		}
		d, err := core.Partition(cur, beta, core.Options{Seed: xrand.Mix(seed, uint64(level))})
		if err != nil {
			t.Fatal(err)
		}
		q, quot, err := graph.ContractClusters(cur, d.Center)
		if err != nil {
			t.Fatal(err)
		}
		levels = append(levels, cur)
		decs = append(decs, d)
		maps = append(maps, quot)
		cur = q
	}
	levels = append(levels, cur)
	return
}

// TestRunMatchesSerialHierarchy drives the engine in contract mode and
// checks every level against the serial reference loop: same graphs, same
// decompositions, same quotient maps, same stats, same final vertex map.
func TestRunMatchesSerialHierarchy(t *testing.T) {
	gs := map[string]*graph.Graph{
		"grid": graph.Grid2D(17, 23),
		"gnm":  graph.GNM(600, 2400, 3),
	}
	for name, g := range gs {
		wantLevels, wantDecs, wantMaps := serialHierarchy(t, g, 0.25, 9)
		for _, w := range []int{1, 2, 8} {
			var got []*Level
			var gotQuots [][]uint32
			res, err := Run(Config{Beta: 0.25, Seed: 9, Workers: w, TrackVertexMap: true}, g,
				func(lv *Level) error {
					got = append(got, &Level{Index: lv.Index, G: lv.G, D: lv.D, NumQuot: lv.NumQuot})
					gotQuots = append(gotQuots, lv.Quot)
					return nil
				})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if res.Levels != len(wantDecs) {
				t.Fatalf("%s workers=%d: %d levels, want %d", name, w, res.Levels, len(wantDecs))
			}
			for l, lv := range got {
				want := wantLevels[l]
				if lv.G.NumVertices() != want.NumVertices() || lv.G.NumEdges() != want.NumEdges() {
					t.Fatalf("%s workers=%d level %d: graph %v want %v", name, w, l, lv.G, want)
				}
				for v := range wantDecs[l].Center {
					if lv.D.Center[v] != wantDecs[l].Center[v] {
						t.Fatalf("%s workers=%d level %d: Center[%d] differs", name, w, l, v)
					}
				}
				for v, q := range wantMaps[l] {
					if gotQuots[l][v] != q {
						t.Fatalf("%s workers=%d level %d: quot[%d]=%d want %d", name, w, l, v, gotQuots[l][v], q)
					}
				}
				st := res.Stats[l]
				if st.CutEdges != wantDecs[l].CutEdges() {
					t.Fatalf("%s level %d: stat cut=%d want %d", name, l, st.CutEdges, wantDecs[l].CutEdges())
				}
				if st.Clusters != wantDecs[l].NumClusters() {
					t.Fatalf("%s level %d: stat clusters=%d want %d", name, l, st.Clusters, wantDecs[l].NumClusters())
				}
			}
			// Final vertex map = composition of the serial quotient maps.
			cur := make([]uint32, g.NumVertices())
			for v := range cur {
				cur[v] = uint32(v)
			}
			for _, quot := range wantMaps {
				for v := range cur {
					cur[v] = quot[cur[v]]
				}
			}
			for v := range cur {
				if res.OrigMap[v] != cur[v] {
					t.Fatalf("%s workers=%d: OrigMap[%d]=%d want %d", name, w, v, res.OrigMap[v], cur[v])
				}
			}
			if res.Final.NumEdges() != 0 {
				t.Fatalf("%s: final graph still has %d edges", name, res.Final.NumEdges())
			}
		}
	}
}

// TestOrigEdgeAnnotations checks the edge-annotation invariant on every
// level: OrigEdge of any current edge {a, b} must return an original edge
// whose endpoints contract exactly onto a and b under the composed
// quotient maps.
func TestOrigEdgeAnnotations(t *testing.T) {
	g := graph.Grid2D(19, 21)
	n := g.NumVertices()
	cur := make([]uint32, n) // original vertex -> current-level vertex
	for v := range cur {
		cur[v] = uint32(v)
	}
	_, err := Run(Config{Beta: 0.3, Seed: 4, Workers: 8, NeedEdgeOrig: true}, g,
		func(lv *Level) error {
			for a := 0; a < lv.G.NumVertices(); a++ {
				for _, b := range lv.G.Neighbors(uint32(a)) {
					if uint32(a) > b {
						continue
					}
					e := lv.OrigEdge(uint32(a), b)
					ca, cb := cur[e.U], cur[e.V]
					if ca > cb {
						ca, cb = cb, ca
					}
					if ca != uint32(a) || cb != b {
						t.Fatalf("level %d: OrigEdge(%d,%d) = {%d,%d}, endpoints contract to {%d,%d}",
							lv.Index, a, b, e.U, e.V, ca, cb)
					}
				}
			}
			for v := range cur {
				cur[v] = lv.Quot[cur[v]]
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestResidualMatchesSerial drives the engine in residual mode against the
// serial Linial–Saks iteration: per level, same graph, same intra edge
// class, geometric termination.
func TestResidualMatchesSerial(t *testing.T) {
	g := graph.Torus2D(20, 24)
	remaining := g.Edges()
	level := 0
	res, err := Run(Config{Beta: 0.5, Seed: 7, Workers: 4, Residual: true, NeedIntra: true, MaxLevels: 100}, g,
		func(lv *Level) error {
			sub, err := graph.FromEdges(g.NumVertices(), remaining)
			if err != nil {
				t.Fatal(err)
			}
			if lv.G.NumEdges() != sub.NumEdges() {
				t.Fatalf("level %d: %d edges want %d", level, lv.G.NumEdges(), sub.NumEdges())
			}
			d, err := core.Partition(sub, 0.5, core.Options{Seed: xrand.Mix(7, uint64(level))})
			if err != nil {
				t.Fatal(err)
			}
			var wantIntra, next []graph.Edge
			for _, e := range remaining {
				if d.Center[e.U] == d.Center[e.V] {
					wantIntra = append(wantIntra, e)
				} else {
					next = append(next, e)
				}
			}
			if len(lv.IntraEdges) != len(wantIntra) {
				t.Fatalf("level %d: %d intra edges want %d", level, len(lv.IntraEdges), len(wantIntra))
			}
			for i, e := range wantIntra {
				if lv.IntraEdges[i] != e {
					t.Fatalf("level %d: intra[%d]=%v want %v", level, i, lv.IntraEdges[i], e)
				}
			}
			remaining = next
			level++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 0 || res.Final.NumEdges() != 0 {
		t.Fatalf("residual run left %d edges", len(remaining))
	}
}

// TestOrigEdgeDenseTinyLevel is the regression test for the annotation
// dedup passes on levels with more cut edges than vertices and more
// workers than vertices (a complete tail quotient): the dedup offsets are
// sized by the cut-edge worker count, which exceeds the vertex-based one
// there — this used to index out of range inside a pool worker.
func TestOrigEdgeDenseTinyLevel(t *testing.T) {
	g := graph.Complete(7) // n=7, m=21: c can exceed n at high beta
	for seed := uint64(0); seed < 20; seed++ {
		_, err := Run(Config{Beta: 0.98, Seed: seed, Workers: 8, NeedEdgeOrig: true, NeedIntra: true}, g,
			func(lv *Level) error {
				for a := 0; a < lv.G.NumVertices(); a++ {
					for _, b := range lv.G.Neighbors(uint32(a)) {
						if uint32(a) < b {
							lv.OrigEdge(uint32(a), b)
						}
					}
				}
				return nil
			})
		if err != nil && err != ErrMaxLevels {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRunMaxLevels checks the defensive cap errors out rather than looping.
func TestRunMaxLevels(t *testing.T) {
	g := graph.Grid2D(30, 30)
	_, err := Run(Config{Beta: 0.2, Seed: 1, MaxLevels: 1}, g, nil)
	if err != ErrMaxLevels {
		t.Fatalf("err = %v, want ErrMaxLevels", err)
	}
}

// TestRefineAssignmentMatchesMap checks the sort-based refinement against
// the serial composite-key map at several worker counts.
func TestRefineAssignmentMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sc := &RefineScratch{}
	for _, n := range []int{1, 2, 97, 5000} {
		prev := make([]uint32, n)
		cur := make([]uint32, n)
		for v := 0; v < n; v++ {
			prev[v] = uint32(rng.Intn(1 + n/3))
			cur[v] = uint32(rng.Intn(1 + n/5))
		}
		type key struct{ a, b uint32 }
		repr := make(map[key]uint32)
		want := make([]uint32, n)
		for v := 0; v < n; v++ {
			k := key{prev[v], cur[v]}
			if _, ok := repr[k]; !ok {
				repr[k] = uint32(v)
			}
		}
		for v := 0; v < n; v++ {
			want[v] = repr[key{prev[v], cur[v]}]
		}
		for _, w := range []int{1, 2, 8} {
			assign := make([]uint32, n)
			RefineAssignment(nil, w, prev, cur, assign, sc)
			for v := 0; v < n; v++ {
				if assign[v] != want[v] {
					t.Fatalf("n=%d workers=%d: assign[%d]=%d want %d", n, w, v, assign[v], want[v])
				}
			}
		}
	}
}
