package hier

import (
	"testing"

	"mpx/internal/graph"
)

// clusterRef walks the retained per-level state the way a visit callback
// sees it: vertex v's level-l cluster id is center_l applied to v's image
// under the quotient maps of levels 0..l-1. This is the reference the
// flat ClusterMaps export must reproduce exactly.
func clusterRef(centers [][]uint32, quots [][]uint32, l int, v uint32) uint32 {
	cur := v
	for i := 0; i < l; i++ {
		if quots[i] != nil {
			cur = quots[i][cur]
		}
	}
	return centers[l][cur]
}

func captureLevels(t *testing.T, cfg Config, g *graph.Graph) (*Hierarchy, [][]uint32, [][]uint32) {
	t.Helper()
	var centers, quots [][]uint32
	h, err := BuildHierarchy(cfg, g, func(lv *Level) error {
		centers = append(centers, append([]uint32(nil), lv.Center()...))
		if lv.Quot != nil {
			quots = append(quots, append([]uint32(nil), lv.Quot...))
		} else {
			quots = append(quots, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, centers, quots
}

func checkClusterMaps(t *testing.T, h *Hierarchy, centers, quots [][]uint32, n int) {
	t.Helper()
	maps := h.ClusterMaps()
	if len(maps) != len(centers) {
		t.Fatalf("ClusterMaps returned %d levels, hierarchy visited %d", len(maps), len(centers))
	}
	for l := range maps {
		if len(maps[l]) != n {
			t.Fatalf("level %d map has %d entries, want %d", l, len(maps[l]), n)
		}
		for v := 0; v < n; v++ {
			want := clusterRef(centers, quots, l, uint32(v))
			if maps[l][v] != want {
				t.Fatalf("level %d vertex %d: ClusterMaps=%d, quotient walk=%d", l, v, maps[l][v], want)
			}
		}
	}
}

func TestClusterMapsMatchQuotientWalk(t *testing.T) {
	g := graph.GNM(1200, 4000, 21)
	n := g.NumVertices()
	for _, residual := range []bool{false, true} {
		name := "contract"
		if residual {
			name = "residual"
		}
		t.Run(name, func(t *testing.T) {
			h, centers, quots := captureLevels(t, Config{Beta: 0.25, Seed: 3, Residual: residual}, g)
			checkClusterMaps(t, h, centers, quots, n)
		})
	}
}

func TestClusterMapsWeighted(t *testing.T) {
	g := graph.GNM(800, 2600, 5)
	wg := graph.RandomWeights(g, 1, 8, 2)
	n := g.NumVertices()
	var centers, quots [][]uint32
	h, err := BuildWeightedHierarchy(Config{
		WBetaAt: func(l int, _ *graph.WeightedGraph) float64 { return 0.3 / float64(uint64(1)<<uint(l)) },
		Seed:    9,
	}, wg, func(lv *Level) error {
		centers = append(centers, append([]uint32(nil), lv.Center()...))
		if lv.Quot != nil {
			quots = append(quots, append([]uint32(nil), lv.Quot...))
		} else {
			quots = append(quots, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkClusterMaps(t, h, centers, quots, n)
}

// TestClusterMapsWorkerInvariance pins the pooled fold: the exported maps
// are bit-identical at workers 1, 2 and 8.
func TestClusterMapsWorkerInvariance(t *testing.T) {
	g := graph.Grid2D(40, 35)
	var ref [][]uint32
	for _, w := range []int{1, 2, 8} {
		h, _, _ := captureLevels(t, Config{Beta: 0.2, Seed: 7, Workers: w}, g)
		maps := h.ClusterMaps()
		if ref == nil {
			ref = maps
			continue
		}
		if len(maps) != len(ref) {
			t.Fatalf("workers=%d: %d levels, want %d", w, len(maps), len(ref))
		}
		for l := range ref {
			for v := range ref[l] {
				if maps[l][v] != ref[l][v] {
					t.Fatalf("workers=%d level %d vertex %d: %d != %d", w, l, v, maps[l][v], ref[l][v])
				}
			}
		}
	}
}

// TestClusterMapsSurviveUpdate pins the ownership contract: maps exported
// before an Update keep their (stale) values, and a fresh export reflects
// the updated hierarchy.
func TestClusterMapsSurviveUpdate(t *testing.T) {
	g := graph.Grid2D(30, 30)
	n := g.NumVertices()
	h, _, _ := captureLevels(t, Config{Beta: 0.2, Seed: 13}, g)
	old := h.ClusterMaps()
	snapshot := make([][]uint32, len(old))
	for l := range old {
		snapshot[l] = append([]uint32(nil), old[l]...)
	}
	if _, err := h.Update(graph.Batch{Insert: []graph.Edge{{U: 0, V: uint32(n - 1)}}}, nil); err != nil {
		t.Fatal(err)
	}
	for l := range old {
		for v := range old[l] {
			if old[l][v] != snapshot[l][v] {
				t.Fatalf("exported map mutated by Update at level %d vertex %d", l, v)
			}
		}
	}
	// Fresh export must agree with a from-scratch build on the updated graph.
	var centers, quots [][]uint32
	h2, err := BuildHierarchy(Config{Beta: 0.2, Seed: 13}, h.Graph(), func(lv *Level) error {
		centers = append(centers, append([]uint32(nil), lv.Center()...))
		if lv.Quot != nil {
			quots = append(quots, append([]uint32(nil), lv.Quot...))
		} else {
			quots = append(quots, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = h2
	fresh := h.ClusterMaps()
	checkClusterMaps(t, h, centers, quots, n)
	if len(fresh) != len(centers) {
		t.Fatalf("fresh export has %d levels, from-scratch build %d", len(fresh), len(centers))
	}
}
