package render

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"mpx/internal/core"
	"mpx/internal/graph"
)

func TestGridPNGDecodes(t *testing.T) {
	g := graph.Grid2D(12, 16)
	d, err := core.Partition(g, 0.2, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GridPNG(&buf, d.Center, 12, 16, 1); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 16 || b.Dy() != 12 {
		t.Errorf("image is %dx%d, want 16x12", b.Dx(), b.Dy())
	}
}

func TestGridPNGSizeMismatch(t *testing.T) {
	if err := GridPNG(&bytes.Buffer{}, make([]uint32, 5), 2, 3, 0); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestClusterColorsDistinctAndDeterministic(t *testing.T) {
	a := ClusterColor(7, 1)
	b := ClusterColor(7, 1)
	if a != b {
		t.Error("color not deterministic")
	}
	seen := map[[3]uint8]int{}
	for c := uint32(0); c < 200; c++ {
		col := ClusterColor(c, 1)
		seen[[3]uint8{col.R, col.G, col.B}]++
		if col.A != 255 {
			t.Fatal("alpha must be opaque")
		}
	}
	if len(seen) < 190 {
		t.Errorf("only %d distinct colors among 200 clusters", len(seen))
	}
}

func TestSameClusterSamePixelColor(t *testing.T) {
	assignment := []uint32{0, 0, 1, 1}
	var buf bytes.Buffer
	if err := GridPNG(&buf, assignment, 2, 2, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.At(0, 0) != img.At(1, 0) {
		t.Error("same cluster, different colors")
	}
	if img.At(0, 0) == img.At(0, 1) {
		t.Error("different clusters, same color")
	}
}

func TestGridASCII(t *testing.T) {
	assignment := []uint32{5, 5, 9, 9, 5, 9}
	out := GridASCII(assignment, 2, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 3 {
		t.Fatalf("bad shape: %q", out)
	}
	if lines[0][0] != lines[0][1] || lines[0][0] == lines[0][2] {
		t.Errorf("cluster lettering wrong: %q", out)
	}
	// Vertex 4 (row 1, col 1) is cluster 5 like vertex 0.
	if lines[1][1] != lines[0][0] {
		t.Errorf("cluster letter not stable across rows: %q", out)
	}
}
