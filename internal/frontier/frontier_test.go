package frontier

import (
	"sync/atomic"
	"testing"

	"mpx/internal/bfs"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

func TestSubsetBasics(t *testing.T) {
	s := NewSubset(10, []uint32{1, 4, 7})
	if s.Len() != 3 || s.IsEmpty() {
		t.Error("len/empty wrong")
	}
	if !s.Contains(4) || s.Contains(5) {
		t.Error("contains wrong")
	}
	vs := s.Vertices()
	if len(vs) != 3 {
		t.Errorf("vertices %v", vs)
	}
}

func TestDenseSubset(t *testing.T) {
	bitmap := parallel.NewBitset(8)
	bitmap.Set(2)
	bitmap.Set(6)
	s := NewDenseSubset(bitmap)
	if s.Len() != 2 || !s.Contains(2) || s.Contains(3) {
		t.Error("dense subset wrong")
	}
	vs := s.Vertices()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 6 {
		t.Errorf("vertices %v", vs)
	}
}

// TestDenseSubsetSpansWords checks the bit-packed representation across
// word boundaries (members in different uint64 words, including bit 63/64).
func TestDenseSubsetSpansWords(t *testing.T) {
	bitmap := parallel.NewBitset(200)
	want := []uint32{0, 63, 64, 127, 128, 199}
	for _, v := range want {
		bitmap.Set(v)
	}
	s := NewDenseSubset(bitmap)
	if s.Len() != len(want) {
		t.Fatalf("Len=%d want %d", s.Len(), len(want))
	}
	vs := s.Vertices()
	for i, v := range want {
		if vs[i] != v {
			t.Fatalf("Vertices[%d]=%d want %d", i, vs[i], v)
		}
		if !s.Contains(v) {
			t.Errorf("Contains(%d)=false", v)
		}
	}
	if s.Contains(1) || s.Contains(65) || s.Contains(198) {
		t.Error("phantom members")
	}
}

// TestEdgeMapDenseMatchesSparse runs the same traversal through the
// bit-packed dense path and the sparse path and demands identical admitted
// sets — the cross-check for the packed-bitmap pull engine.
func TestEdgeMapDenseMatchesSparse(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(11, 13),
		graph.GNM(300, 1200, 7),
		graph.Star(150),
		graph.Hypercube(7),
	}
	for gi, g := range graphs {
		n := g.NumVertices()
		frontMembers := make([]uint32, 0, n/3)
		for v := 0; v < n; v += 3 {
			frontMembers = append(frontMembers, uint32(v))
		}
		run := func(opts Options) map[uint32]bool {
			visited := make([]int32, n)
			for _, v := range frontMembers {
				visited[v] = 1
			}
			out := EdgeMap(g, NewSubset(n, append([]uint32(nil), frontMembers...)),
				func(u uint32) bool { return atomic.LoadInt32(&visited[u]) == 0 },
				func(src, dst uint32) bool {
					return atomic.CompareAndSwapInt32(&visited[dst], 0, 1)
				}, opts)
			set := make(map[uint32]bool, out.Len())
			for _, v := range out.Vertices() {
				set[v] = true
			}
			return set
		}
		sparse := run(Options{ForceSparse: true, Workers: 4})
		dense := run(Options{ForceDense: true, Workers: 4})
		if len(sparse) != len(dense) {
			t.Fatalf("graph %d: sparse admitted %d, dense admitted %d", gi, len(sparse), len(dense))
		}
		for v := range sparse {
			if !dense[v] {
				t.Fatalf("graph %d: vertex %d admitted by sparse but not dense", gi, v)
			}
		}
	}
}

// TestTraversalReuseAcrossRounds drives a full BFS through one Traversal
// (scratch reused every round, dense bitmaps recycled) and checks the
// result against the allocating one-shot path.
func TestTraversalReuseAcrossRounds(t *testing.T) {
	g := graph.GNM(500, 3000, 9)
	want := bfs.Sequential(g, 0)
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 4, Threshold: 1}, // force dense rounds early
	} {
		got := BFS(g, 0, opts)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("opts %+v: dist[%d]=%d want %d", opts, v, got[v], want[v])
			}
		}
	}
}

func TestBFSMatchesReferenceBothDirections(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(15, 15),
		graph.Complete(40),
		graph.GNM(200, 700, 3),
		graph.Star(100),
	}
	for gi, g := range graphs {
		want := bfs.Sequential(g, 0)
		for _, opts := range []Options{
			{Workers: 2},
			{Workers: 2, ForceSparse: true},
			{Workers: 2, ForceDense: true},
			{Workers: 1, Threshold: 1},
		} {
			got := BFS(g, 0, opts)
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("graph %d opts %+v: dist[%d]=%d want %d", gi, opts, v, got[v], want[v])
				}
			}
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := graph.Path(5)
	out := EdgeMap(g, NewSubset(5, nil), func(uint32) bool { return true },
		func(a, b uint32) bool { return true }, Options{})
	if !out.IsEmpty() {
		t.Error("empty frontier must map to empty")
	}
}

func TestEdgeMapAdmitsEachTargetOnce(t *testing.T) {
	// Star: every leaf reaches the center; the center must be admitted once.
	g := graph.Star(50)
	leaves := make([]uint32, 49)
	for i := range leaves {
		leaves[i] = uint32(i + 1)
	}
	var updates int64
	out := EdgeMap(g, NewSubset(50, leaves),
		func(u uint32) bool { return u == 0 },
		func(src, dst uint32) bool {
			atomic.AddInt64(&updates, 1)
			return true
		}, Options{ForceSparse: true, Workers: 4})
	if out.Len() != 1 || !out.Contains(0) {
		t.Errorf("output %v", out.Vertices())
	}
	if updates != 49 {
		t.Errorf("update called %d times, want 49", updates)
	}
}

func TestEdgeMapCondFilters(t *testing.T) {
	g := graph.Path(6)
	out := EdgeMap(g, NewSubset(6, []uint32{2}),
		func(u uint32) bool { return u == 3 }, // only allow 3
		func(src, dst uint32) bool { return true },
		Options{ForceSparse: true})
	if out.Len() != 1 || !out.Contains(3) {
		t.Errorf("cond filtering broken: %v", out.Vertices())
	}
}

func TestVertexMapAndFilter(t *testing.T) {
	s := NewSubset(20, []uint32{3, 6, 9, 12})
	var sum int64
	VertexMap(s, 2, func(v uint32) { atomic.AddInt64(&sum, int64(v)) })
	if sum != 30 {
		t.Errorf("VertexMap sum %d", sum)
	}
	f := VertexFilter(s, func(v uint32) bool { return v%2 == 0 })
	if f.Len() != 2 || !f.Contains(6) || !f.Contains(12) {
		t.Errorf("filter %v", f.Vertices())
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist := BFS(g, 0, Options{})
	if dist[2] != -1 || dist[4] != -1 {
		t.Error("unreachable vertices must stay -1")
	}
	if dist[1] != 1 {
		t.Errorf("dist[1]=%d", dist[1])
	}
}

func BenchmarkEdgeMapSparseVsDense(b *testing.B) {
	g := graph.Complete(800)
	half := make([]uint32, 400)
	for i := range half {
		half[i] = uint32(i)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"sparse", Options{ForceSparse: true}},
		{"dense", Options{ForceDense: true}},
		{"auto", Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			visited := make([]int32, g.NumVertices())
			for i := 0; i < b.N; i++ {
				for j := range visited {
					visited[j] = 0
				}
				front := NewSubset(g.NumVertices(), half)
				EdgeMap(g, front,
					func(u uint32) bool { return atomic.LoadInt32(&visited[u]) == 0 },
					func(src, dst uint32) bool {
						return atomic.CompareAndSwapInt32(&visited[dst], 0, 1)
					}, mode.opts)
			}
		})
	}
}

func BenchmarkFrontierBFSvsLowLevel(b *testing.B) {
	g := graph.Grid2D(200, 200)
	b.Run("frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = BFS(g, 0, Options{})
		}
	})
	b.Run("lowlevel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bfs.Parallel(g, 0, 0)
		}
	})
}

// TestVertexFilterPoolMatchesSerial checks the pool-backed filter against
// the serial definition on a subset large enough to take the parallel
// compaction path, at several worker counts and on an explicit pool.
func TestVertexFilterPoolMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	n := 10000
	ids := make([]uint32, 0, n/2)
	for v := 0; v < n; v += 2 {
		ids = append(ids, uint32(v))
	}
	s := NewSubset(n, ids)
	keep := func(v uint32) bool { return v%6 == 0 }
	var want []uint32
	for _, v := range ids {
		if keep(v) {
			want = append(want, v)
		}
	}
	for _, w := range []int{1, 2, 8} {
		f := VertexFilterPool(s, keep, Options{Workers: w, Pool: pool})
		got := f.Vertices()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: kept %d, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", w, i, got[i], want[i])
			}
		}
	}
}
