package frontier

import (
	"sync/atomic"
	"testing"

	"mpx/internal/bfs"
	"mpx/internal/graph"
)

func TestSubsetBasics(t *testing.T) {
	s := NewSubset(10, []uint32{1, 4, 7})
	if s.Len() != 3 || s.IsEmpty() {
		t.Error("len/empty wrong")
	}
	if !s.Contains(4) || s.Contains(5) {
		t.Error("contains wrong")
	}
	vs := s.Vertices()
	if len(vs) != 3 {
		t.Errorf("vertices %v", vs)
	}
}

func TestDenseSubset(t *testing.T) {
	bitmap := make([]bool, 8)
	bitmap[2], bitmap[6] = true, true
	s := NewDenseSubset(bitmap)
	if s.Len() != 2 || !s.Contains(2) || s.Contains(3) {
		t.Error("dense subset wrong")
	}
	vs := s.Vertices()
	if len(vs) != 2 || vs[0] != 2 || vs[1] != 6 {
		t.Errorf("vertices %v", vs)
	}
}

func TestBFSMatchesReferenceBothDirections(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Grid2D(15, 15),
		graph.Complete(40),
		graph.GNM(200, 700, 3),
		graph.Star(100),
	}
	for gi, g := range graphs {
		want := bfs.Sequential(g, 0)
		for _, opts := range []Options{
			{Workers: 2},
			{Workers: 2, ForceSparse: true},
			{Workers: 2, ForceDense: true},
			{Workers: 1, Threshold: 1},
		} {
			got := BFS(g, 0, opts)
			for v := range want {
				if want[v] != got[v] {
					t.Fatalf("graph %d opts %+v: dist[%d]=%d want %d", gi, opts, v, got[v], want[v])
				}
			}
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := graph.Path(5)
	out := EdgeMap(g, NewSubset(5, nil), func(uint32) bool { return true },
		func(a, b uint32) bool { return true }, Options{})
	if !out.IsEmpty() {
		t.Error("empty frontier must map to empty")
	}
}

func TestEdgeMapAdmitsEachTargetOnce(t *testing.T) {
	// Star: every leaf reaches the center; the center must be admitted once.
	g := graph.Star(50)
	leaves := make([]uint32, 49)
	for i := range leaves {
		leaves[i] = uint32(i + 1)
	}
	var updates int64
	out := EdgeMap(g, NewSubset(50, leaves),
		func(u uint32) bool { return u == 0 },
		func(src, dst uint32) bool {
			atomic.AddInt64(&updates, 1)
			return true
		}, Options{ForceSparse: true, Workers: 4})
	if out.Len() != 1 || !out.Contains(0) {
		t.Errorf("output %v", out.Vertices())
	}
	if updates != 49 {
		t.Errorf("update called %d times, want 49", updates)
	}
}

func TestEdgeMapCondFilters(t *testing.T) {
	g := graph.Path(6)
	out := EdgeMap(g, NewSubset(6, []uint32{2}),
		func(u uint32) bool { return u == 3 }, // only allow 3
		func(src, dst uint32) bool { return true },
		Options{ForceSparse: true})
	if out.Len() != 1 || !out.Contains(3) {
		t.Errorf("cond filtering broken: %v", out.Vertices())
	}
}

func TestVertexMapAndFilter(t *testing.T) {
	s := NewSubset(20, []uint32{3, 6, 9, 12})
	var sum int64
	VertexMap(s, 2, func(v uint32) { atomic.AddInt64(&sum, int64(v)) })
	if sum != 30 {
		t.Errorf("VertexMap sum %d", sum)
	}
	f := VertexFilter(s, func(v uint32) bool { return v%2 == 0 })
	if f.Len() != 2 || !f.Contains(6) || !f.Contains(12) {
		t.Errorf("filter %v", f.Vertices())
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist := BFS(g, 0, Options{})
	if dist[2] != -1 || dist[4] != -1 {
		t.Error("unreachable vertices must stay -1")
	}
	if dist[1] != 1 {
		t.Errorf("dist[1]=%d", dist[1])
	}
}

func BenchmarkEdgeMapSparseVsDense(b *testing.B) {
	g := graph.Complete(800)
	half := make([]uint32, 400)
	for i := range half {
		half[i] = uint32(i)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"sparse", Options{ForceSparse: true}},
		{"dense", Options{ForceDense: true}},
		{"auto", Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			visited := make([]int32, g.NumVertices())
			for i := 0; i < b.N; i++ {
				for j := range visited {
					visited[j] = 0
				}
				front := NewSubset(g.NumVertices(), half)
				EdgeMap(g, front,
					func(u uint32) bool { return atomic.LoadInt32(&visited[u]) == 0 },
					func(src, dst uint32) bool {
						return atomic.CompareAndSwapInt32(&visited[dst], 0, 1)
					}, mode.opts)
			}
		})
	}
}

func BenchmarkFrontierBFSvsLowLevel(b *testing.B) {
	g := graph.Grid2D(200, 200)
	b.Run("frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = BFS(g, 0, Options{})
		}
	})
	b.Run("lowlevel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bfs.Parallel(g, 0, 0)
		}
	})
}
