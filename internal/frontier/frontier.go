// Package frontier is a Ligra-style frontier-parallel graph-processing
// layer (Shun & Blelloch 2013, the paper's reference [26] for practical
// parallel BFS): vertex subsets with automatic sparse/dense representation
// switching and an EdgeMap that picks top-down (sparse) or bottom-up
// (dense) traversal by frontier size. Dense subsets are bit-packed
// (parallel.Bitset), the same bitset type the low-level hybrid BFS and the
// decomposition engine build on — the traversal machinery is shared across
// the three, and this package's EdgeMap is cross-tested against them.
//
// All rounds execute on a persistent parallel.Pool (Options.Pool, nil
// meaning the shared default), and a Traversal held across rounds owns
// every piece of per-round scratch — output buffers, claim bitsets,
// recycled Subset shells — so a steady-state round performs no O(n)
// allocation: frontier compaction is an offset scan plus a parallel copy
// into a pre-sized reused buffer.
package frontier

import (
	"math/bits"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// Subset is a set of vertices of a fixed-size universe, stored sparse
// (id list) or dense (bit-packed bitmap) depending on size.
type Subset struct {
	n      int
	sparse []uint32 // valid when dense == nil
	dense  *parallel.Bitset
	count  int
	// arcs caches the summed out-degree of the members (the Beamer
	// direction-switch statistic); valid when arcsOK. EdgeMap fills it
	// incrementally while building its output so the next round's switch
	// decision costs nothing.
	arcs   int64
	arcsOK bool
}

// NewSubset builds a sparse subset from ids (not copied; caller yields
// ownership). Duplicate ids must not be passed.
func NewSubset(n int, ids []uint32) *Subset {
	return &Subset{n: n, sparse: ids, count: len(ids)}
}

// NewDenseSubset builds a dense subset from a bit-packed bitmap (ownership
// yielded).
func NewDenseSubset(bitmap *parallel.Bitset) *Subset {
	return &Subset{n: bitmap.Len(), dense: bitmap, count: bitmap.Count(0)}
}

// Len returns the subset size.
func (s *Subset) Len() int { return s.count }

// IsEmpty reports whether the subset is empty.
func (s *Subset) IsEmpty() bool { return s.count == 0 }

// Contains reports membership.
func (s *Subset) Contains(v uint32) bool {
	if s.dense != nil {
		return s.dense.Get(v)
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices materializes the member list (sorted for dense subsets, in
// insertion order for sparse ones).
func (s *Subset) Vertices() []uint32 {
	if s.dense == nil {
		out := make([]uint32, len(s.sparse))
		copy(out, s.sparse)
		return out
	}
	return s.dense.Members(make([]uint32, 0, s.count))
}

// ArcCount returns the summed out-degree of the members, computing and
// caching it on first use. Subsets built by EdgeMap carry the count from
// construction, so the hot path never rescans a frontier.
func (s *Subset) ArcCount(g *graph.Graph, workers int) int64 {
	return s.arcCount(g, nil, workers)
}

func (s *Subset) arcCount(g *graph.Graph, pool *parallel.Pool, workers int) int64 {
	if s.arcsOK {
		return s.arcs
	}
	var arcs int64
	if s.dense != nil {
		offsets := g.Offsets()
		words := s.dense.Words()
		arcs = pool.ReduceInt64(workers, len(words), func(wi int) int64 {
			w := words[wi]
			base := uint32(wi) << 6
			var local int64
			for ; w != 0; w &= w - 1 {
				v := base + uint32(bits.TrailingZeros64(w))
				local += offsets[v+1] - offsets[v]
			}
			return local
		})
	} else {
		arcs = pool.ReduceInt64(workers, len(s.sparse), func(i int) int64 {
			return int64(g.Degree(s.sparse[i]))
		})
	}
	s.arcs = arcs
	s.arcsOK = true
	return arcs
}

// toBitset returns the bit-packed view, building it into scratch (reset
// first) if the subset is sparse. scratch may be nil.
func (s *Subset) toBitset(scratch *parallel.Bitset, pool *parallel.Pool, workers int) *parallel.Bitset {
	if s.dense != nil {
		return s.dense
	}
	if scratch == nil || scratch.Len() != s.n {
		scratch = parallel.NewBitset(s.n)
	} else {
		parallel.FillPool(pool, workers, scratch.Words(), 0)
	}
	for _, v := range s.sparse {
		scratch.Set(v)
	}
	return scratch
}

// Options tune EdgeMap.
type Options struct {
	// Workers caps logical parallelism (the deterministic block
	// decomposition); <= 0 means GOMAXPROCS.
	Workers int
	// Pool is the persistent worker pool rounds execute on; nil means the
	// shared parallel.Default() pool. Construct one pool per run and pass
	// it everywhere — workers are reused across every round of every loop.
	Pool *parallel.Pool
	// Threshold is the Beamer direction-switch ratio; frontier out-degree
	// above arcs/Threshold triggers the dense sweep. 0 means 20.
	Threshold int64
	// ForceSparse / ForceDense pin the traversal direction (for tests).
	ForceSparse, ForceDense bool
}

// Traversal carries the reusable scratch state for a frontier loop over one
// graph: the claim bitset that deduplicates sparse admissions, a spare dense
// bitmap and a spare sparse buffer recycled between rounds, recycled Subset
// shells, the per-worker output buffers, and their offset/arc-count arrays.
// Reusing a Traversal across EdgeMap rounds removes the per-round O(n)
// allocations the one-shot entry point pays: a steady-state round allocates
// nothing beyond the submitted closures.
type Traversal struct {
	g           *graph.Graph
	claimed     *parallel.Bitset // dedup for sparse rounds; cleared per-member
	front       *parallel.Bitset // sparse->dense conversion scratch
	spare       *parallel.Bitset // next dense output, recycled via Recycle
	spareSparse []uint32         // next sparse output buffer, recycled via Recycle
	buffers     [][]uint32       // per-worker sparse output buffers
	arcCounts   []int64          // per-worker admitted-arc counters
	offs        []int            // per-worker output offsets (scan of buffer lengths)
	memberBuf   []uint32         // dense-frontier member materialization scratch
	freeSubs    []*Subset        // recycled Subset shells
}

// NewTraversal allocates scratch for frontier loops over g.
func NewTraversal(g *graph.Graph) *Traversal {
	return &Traversal{g: g, claimed: parallel.NewBitset(g.NumVertices())}
}

// Recycle hands a dead subset's buffers back for reuse by later rounds:
// its dense bitmap or sparse id buffer, and the Subset shell itself. Call
// it on the previous frontier once EdgeMap has produced the next one; the
// subset must not be used afterwards.
func (t *Traversal) Recycle(s *Subset) {
	if s == nil {
		return
	}
	if s.dense != nil {
		if t.spare == nil && s.dense != t.front {
			t.spare = s.dense
		}
	} else if s.sparse != nil && t.spareSparse == nil {
		t.spareSparse = s.sparse[:0]
	}
	*s = Subset{}
	if len(t.freeSubs) < 4 {
		t.freeSubs = append(t.freeSubs, s)
	}
}

// takeSubset returns a recycled Subset shell, or a fresh one.
func (t *Traversal) takeSubset() *Subset {
	if n := len(t.freeSubs); n > 0 {
		s := t.freeSubs[n-1]
		t.freeSubs = t.freeSubs[:n-1]
		return s
	}
	return &Subset{}
}

// membersView returns the member list without copying when possible: the
// backing id slice for sparse subsets, a reused materialization buffer for
// dense ones. The caller must not modify or retain the view.
func (t *Traversal) membersView(s *Subset, pool *parallel.Pool, workers int) []uint32 {
	if s.dense == nil {
		return s.sparse
	}
	t.memberBuf = s.dense.MembersInto(pool, workers, t.memberBuf)
	return t.memberBuf
}

// EdgeMap applies update(src, dst) over all edges out of the frontier whose
// target passes cond(dst). update returns true when dst should join the
// output frontier; it must be atomic/idempotent (it may race on dense
// sweeps exactly as in Ligra). The returned subset contains each admitted
// target exactly once.
func (t *Traversal) EdgeMap(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	if front.IsEmpty() {
		s := t.takeSubset()
		s.n = g.NumVertices()
		return s
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 20
	}
	frontierArcs := front.arcCount(g, opts.Pool, opts.Workers)
	useDense := !opts.ForceSparse &&
		(opts.ForceDense || frontierArcs > g.NumArcs()/threshold)
	if useDense {
		return t.edgeMapDense(front, cond, update, opts)
	}
	return t.edgeMapSparse(front, cond, update, opts)
}

// EdgeMap is the one-shot entry point: it allocates fresh scratch per call.
// Loops should hold a Traversal instead.
func EdgeMap(g *graph.Graph, front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {
	return NewTraversal(g).EdgeMap(front, cond, update, opts)
}

// edgeMapSparse walks out-edges of frontier members (top-down). Admissions
// are deduplicated with an atomic claim on the shared bitset. The output
// frontier is compacted with an offset scan over the per-worker buffer
// lengths and a parallel copy into one pre-sized reused buffer; the claim
// bits are cleared in the same parallel pass (O(out), not O(n)).
func (t *Traversal) edgeMapSparse(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	pool := opts.Pool
	members := t.membersView(front, pool, opts.Workers)
	w := parallel.Workers(opts.Workers, len(members))
	if cap(t.buffers) < w {
		t.buffers = make([][]uint32, w)
		t.arcCounts = make([]int64, w)
		t.offs = make([]int, w+1)
	}
	buffers := t.buffers[:w]
	arcCounts := t.arcCounts[:w]
	offs := t.offs[:w+1]
	claimed := t.claimed
	offsets := g.Offsets()
	nm := len(members)
	pool.Run(w, func(k int) {
		lo := k * nm / w
		hi := (k + 1) * nm / w
		buf := buffers[k][:0]
		var arcs int64
		for i := lo; i < hi; i++ {
			v := members[i]
			for _, u := range g.Neighbors(v) {
				if !cond(u) {
					continue
				}
				if update(v, u) {
					// Deduplicate output admission with an atomic claim.
					if claimed.TrySetAtomic(u) {
						buf = append(buf, u)
						arcs += offsets[u+1] - offsets[u]
					}
				}
			}
		}
		buffers[k] = buf
		arcCounts[k] = arcs
	})
	var outArcs int64
	offs[0] = 0
	for k, b := range buffers {
		offs[k+1] = offs[k] + len(b)
		outArcs += arcCounts[k]
	}
	total := offs[w]
	out := t.spareSparse
	t.spareSparse = nil
	out = parallel.GrowUint32(out, total)
	if total < parallel.CompactCutoff || w == 1 {
		for k, b := range buffers {
			copy(out[offs[k]:], b)
			// Reset the claim bits so the next round starts clean.
			for _, u := range b {
				claimed.Clear(u)
			}
		}
	} else {
		pool.Run(w, func(k int) {
			copy(out[offs[k]:], buffers[k])
			for _, u := range buffers[k] {
				claimed.ClearAtomic(u)
			}
		})
	}
	s := t.takeSubset()
	s.n = g.NumVertices()
	s.sparse = out
	s.count = total
	s.arcs, s.arcsOK = outArcs, true
	return s
}

// edgeMapDense scans all vertices, pulling from frontier members
// (bottom-up); each passing vertex probes its own neighborhood. The output
// bitmap comes from the recycled spare when one is available.
func (t *Traversal) edgeMapDense(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	pool := opts.Pool
	n := g.NumVertices()
	bitmap := front.toBitset(t.front, pool, opts.Workers)
	if front.dense == nil {
		t.front = bitmap // keep the conversion scratch for reuse
	}
	out := t.spare
	if out == nil || out.Len() != n {
		out = parallel.NewBitset(n)
	} else {
		parallel.FillPool(pool, opts.Workers, out.Words(), 0)
	}
	t.spare = nil
	offsets := g.Offsets()
	var outArcs int64
	var outCount int64
	pool.ForRange(opts.Workers, n, func(lo, hi int) {
		var arcs int64
		var count int64
		for v := lo; v < hi; v++ {
			u := uint32(v)
			if !cond(u) {
				continue
			}
			for _, src := range g.Neighbors(u) {
				if bitmap.Get(src) && update(src, u) {
					out.SetAtomic(u)
					arcs += offsets[u+1] - offsets[u]
					count++
					break
				}
			}
		}
		atomic.AddInt64(&outArcs, arcs)
		atomic.AddInt64(&outCount, count)
	})
	s := t.takeSubset()
	s.n = n
	s.dense = out
	s.count = int(outCount)
	s.arcs, s.arcsOK = outArcs, true
	return s
}

// VertexMap applies f to every member of the subset in parallel.
func VertexMap(s *Subset, workers int, f func(uint32)) {
	members := s.Vertices()
	parallel.For(workers, len(members), func(i int) { f(members[i]) })
}

// VertexFilter returns the members for which keep returns true, in member
// order. It runs on the shared default pool; use VertexFilterPool to pick
// the pool and worker count. keep may be invoked twice per member and
// concurrently (the parallel two-pass compaction), so it must be pure and
// safe for concurrent use.
func VertexFilter(s *Subset, keep func(uint32) bool) *Subset {
	return VertexFilterPool(s, keep, Options{})
}

// VertexFilterPool is VertexFilter on the given pool: the members are
// compacted with the same two-pass count/scan/copy the frontier rounds
// use (parallel.FilterUint32), so the output order is identical at every
// worker count — and keep carries the same purity/concurrency contract.
// The weighted Δ-stepping engine filters its unsettled pull cohort
// through the same primitive.
func VertexFilterPool(s *Subset, keep func(uint32) bool, opts Options) *Subset {
	pool := opts.Pool
	if pool == nil {
		pool = parallel.Default()
	}
	out := pool.FilterUint32(opts.Workers, s.Vertices(), keep, nil)
	return NewSubset(s.n, out)
}

// BFS computes distances from source using EdgeMap — the canonical Ligra
// program, kept as the executable specification the low-level BFS in
// package bfs is cross-tested against.
func BFS(g *graph.Graph, source uint32, opts Options) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	visited := parallel.NewBitset(n)
	dist[source] = 0
	visited.Set(source)
	tr := NewTraversal(g)
	front := NewSubset(n, []uint32{source})
	depth := int32(0)
	for !front.IsEmpty() {
		depth++
		d := depth
		next := tr.EdgeMap(front,
			func(u uint32) bool { return !visited.GetAtomic(u) },
			func(src, dst uint32) bool {
				if visited.TrySetAtomic(dst) {
					dist[dst] = d
					return true
				}
				return false
			}, opts)
		tr.Recycle(front)
		front = next
	}
	return dist
}
