// Package frontier is a Ligra-style frontier-parallel graph-processing
// layer (Shun & Blelloch 2013, the paper's reference [26] for practical
// parallel BFS): vertex subsets with automatic sparse/dense representation
// switching and an EdgeMap that picks top-down (sparse) or bottom-up
// (dense) traversal by frontier size. The BFS and decomposition loops in
// this repository inline their traversals for performance; this package
// provides the same machinery as a reusable abstraction and is
// cross-tested against them.
package frontier

import (
	"sync"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// Subset is a set of vertices of a fixed-size universe, stored sparse
// (id list) or dense (bitmap) depending on size.
type Subset struct {
	n      int
	sparse []uint32 // valid when dense == nil
	dense  []bool
	count  int
}

// NewSubset builds a sparse subset from ids (not copied; caller yields
// ownership). Duplicate ids must not be passed.
func NewSubset(n int, ids []uint32) *Subset {
	return &Subset{n: n, sparse: ids, count: len(ids)}
}

// NewDenseSubset builds a dense subset from a bitmap (ownership yielded).
func NewDenseSubset(bitmap []bool) *Subset {
	count := 0
	for _, b := range bitmap {
		if b {
			count++
		}
	}
	return &Subset{n: len(bitmap), dense: bitmap, count: count}
}

// Len returns the subset size.
func (s *Subset) Len() int { return s.count }

// IsEmpty reports whether the subset is empty.
func (s *Subset) IsEmpty() bool { return s.count == 0 }

// Contains reports membership.
func (s *Subset) Contains(v uint32) bool {
	if s.dense != nil {
		return s.dense[v]
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices materializes the member list (sorted for dense subsets, in
// insertion order for sparse ones).
func (s *Subset) Vertices() []uint32 {
	if s.dense == nil {
		out := make([]uint32, len(s.sparse))
		copy(out, s.sparse)
		return out
	}
	out := make([]uint32, 0, s.count)
	for v, in := range s.dense {
		if in {
			out = append(out, uint32(v))
		}
	}
	return out
}

// toDense returns the bitmap view, building it if needed.
func (s *Subset) toDense() []bool {
	if s.dense != nil {
		return s.dense
	}
	d := make([]bool, s.n)
	for _, v := range s.sparse {
		d[v] = true
	}
	return d
}

// Options tune EdgeMap.
type Options struct {
	// Workers caps parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Threshold is the Beamer direction-switch ratio; frontier out-degree
	// above arcs/Threshold triggers the dense sweep. 0 means 20.
	Threshold int64
	// ForceSparse / ForceDense pin the traversal direction (for tests).
	ForceSparse, ForceDense bool
}

// EdgeMap applies update(src, dst) over all edges out of the frontier whose
// target passes cond(dst). update returns true when dst should join the
// output frontier; it must be atomic/idempotent (it may race on dense
// sweeps exactly as in Ligra). The returned subset contains each admitted
// target exactly once.
func EdgeMap(g *graph.Graph, front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	if front.IsEmpty() {
		return NewSubset(g.NumVertices(), nil)
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 20
	}
	var frontierArcs int64
	for _, v := range front.Vertices() {
		frontierArcs += int64(g.Degree(v))
	}
	useDense := !opts.ForceSparse &&
		(opts.ForceDense || frontierArcs > g.NumArcs()/threshold)
	if useDense {
		return edgeMapDense(g, front, cond, update, opts)
	}
	return edgeMapSparse(g, front, cond, update, opts)
}

// edgeMapSparse walks out-edges of frontier members (top-down).
func edgeMapSparse(g *graph.Graph, front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	members := front.Vertices()
	w := parallel.Workers(opts.Workers, len(members))
	buffers := make([][]uint32, w)
	claimed := make([]int32, g.NumVertices())
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * len(members) / w
		hi := (k + 1) * len(members) / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var buf []uint32
			for i := lo; i < hi; i++ {
				v := members[i]
				for _, u := range g.Neighbors(v) {
					if !cond(u) {
						continue
					}
					if update(v, u) {
						// Deduplicate output admission with a CAS claim.
						if atomic.CompareAndSwapInt32(&claimed[u], 0, 1) {
							buf = append(buf, u)
						}
					}
				}
			}
			buffers[k] = buf
		}(k, lo, hi)
	}
	wg.Wait()
	var total int
	for _, b := range buffers {
		total += len(b)
	}
	out := make([]uint32, 0, total)
	for _, b := range buffers {
		out = append(out, b...)
	}
	return NewSubset(g.NumVertices(), out)
}

// edgeMapDense scans all vertices, pulling from frontier members
// (bottom-up); each passing vertex probes its own neighborhood.
func edgeMapDense(g *graph.Graph, front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	bitmap := front.toDense()
	n := g.NumVertices()
	out := make([]bool, n)
	parallel.ForRange(opts.Workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			u := uint32(v)
			if !cond(u) {
				continue
			}
			for _, src := range g.Neighbors(u) {
				if bitmap[src] && update(src, u) {
					out[v] = true
					break
				}
			}
		}
	})
	return NewDenseSubset(out)
}

// VertexMap applies f to every member of the subset in parallel.
func VertexMap(s *Subset, workers int, f func(uint32)) {
	members := s.Vertices()
	parallel.For(workers, len(members), func(i int) { f(members[i]) })
}

// VertexFilter returns the members for which keep returns true.
func VertexFilter(s *Subset, keep func(uint32) bool) *Subset {
	var out []uint32
	for _, v := range s.Vertices() {
		if keep(v) {
			out = append(out, v)
		}
	}
	return NewSubset(s.n, out)
}

// BFS computes distances from source using EdgeMap — the canonical Ligra
// program, kept as the executable specification the low-level BFS in
// package bfs is cross-tested against.
func BFS(g *graph.Graph, source uint32, opts Options) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	visited := make([]int32, n)
	dist[source] = 0
	visited[source] = 1
	front := NewSubset(n, []uint32{source})
	depth := int32(0)
	for !front.IsEmpty() {
		depth++
		d := depth
		front = EdgeMap(g, front,
			func(u uint32) bool { return atomic.LoadInt32(&visited[u]) == 0 },
			func(src, dst uint32) bool {
				if atomic.CompareAndSwapInt32(&visited[dst], 0, 1) {
					dist[dst] = d
					return true
				}
				return false
			}, opts)
	}
	return dist
}
