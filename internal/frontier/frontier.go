// Package frontier is a Ligra-style frontier-parallel graph-processing
// layer (Shun & Blelloch 2013, the paper's reference [26] for practical
// parallel BFS): vertex subsets with automatic sparse/dense representation
// switching and an EdgeMap that picks top-down (sparse) or bottom-up
// (dense) traversal by frontier size. Dense subsets are bit-packed
// (parallel.Bitset), the same bitset type the low-level hybrid BFS and the
// decomposition engine build on — the traversal machinery is shared across
// the three, and this package's EdgeMap is cross-tested against them.
package frontier

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// Subset is a set of vertices of a fixed-size universe, stored sparse
// (id list) or dense (bit-packed bitmap) depending on size.
type Subset struct {
	n      int
	sparse []uint32 // valid when dense == nil
	dense  *parallel.Bitset
	count  int
	// arcs caches the summed out-degree of the members (the Beamer
	// direction-switch statistic); valid when arcsOK. EdgeMap fills it
	// incrementally while building its output so the next round's switch
	// decision costs nothing.
	arcs   int64
	arcsOK bool
}

// NewSubset builds a sparse subset from ids (not copied; caller yields
// ownership). Duplicate ids must not be passed.
func NewSubset(n int, ids []uint32) *Subset {
	return &Subset{n: n, sparse: ids, count: len(ids)}
}

// NewDenseSubset builds a dense subset from a bit-packed bitmap (ownership
// yielded).
func NewDenseSubset(bitmap *parallel.Bitset) *Subset {
	return &Subset{n: bitmap.Len(), dense: bitmap, count: bitmap.Count(0)}
}

// Len returns the subset size.
func (s *Subset) Len() int { return s.count }

// IsEmpty reports whether the subset is empty.
func (s *Subset) IsEmpty() bool { return s.count == 0 }

// Contains reports membership.
func (s *Subset) Contains(v uint32) bool {
	if s.dense != nil {
		return s.dense.Get(v)
	}
	for _, u := range s.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// Vertices materializes the member list (sorted for dense subsets, in
// insertion order for sparse ones).
func (s *Subset) Vertices() []uint32 {
	if s.dense == nil {
		out := make([]uint32, len(s.sparse))
		copy(out, s.sparse)
		return out
	}
	return s.dense.Members(make([]uint32, 0, s.count))
}

// ArcCount returns the summed out-degree of the members, computing and
// caching it on first use. Subsets built by EdgeMap carry the count from
// construction, so the hot path never rescans a frontier.
func (s *Subset) ArcCount(g *graph.Graph, workers int) int64 {
	if s.arcsOK {
		return s.arcs
	}
	var arcs int64
	if s.dense != nil {
		offsets := g.Offsets()
		words := s.dense.Words()
		arcs = parallel.ReduceInt64(workers, len(words), func(wi int) int64 {
			w := words[wi]
			base := uint32(wi) << 6
			var local int64
			for ; w != 0; w &= w - 1 {
				v := base + uint32(bits.TrailingZeros64(w))
				local += offsets[v+1] - offsets[v]
			}
			return local
		})
	} else {
		arcs = parallel.ReduceInt64(workers, len(s.sparse), func(i int) int64 {
			return int64(g.Degree(s.sparse[i]))
		})
	}
	s.arcs = arcs
	s.arcsOK = true
	return arcs
}

// toBitset returns the bit-packed view, building it into scratch (reset
// first) if the subset is sparse. scratch may be nil.
func (s *Subset) toBitset(scratch *parallel.Bitset, workers int) *parallel.Bitset {
	if s.dense != nil {
		return s.dense
	}
	if scratch == nil || scratch.Len() != s.n {
		scratch = parallel.NewBitset(s.n)
	} else {
		scratch.Reset(workers)
	}
	for _, v := range s.sparse {
		scratch.Set(v)
	}
	return scratch
}

// Options tune EdgeMap.
type Options struct {
	// Workers caps parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// Threshold is the Beamer direction-switch ratio; frontier out-degree
	// above arcs/Threshold triggers the dense sweep. 0 means 20.
	Threshold int64
	// ForceSparse / ForceDense pin the traversal direction (for tests).
	ForceSparse, ForceDense bool
}

// Traversal carries the reusable scratch state for a frontier loop over one
// graph: the claim bitset that deduplicates sparse admissions, a spare dense
// bitmap recycled between dense rounds, and the per-worker output buffers.
// Reusing a Traversal across EdgeMap rounds removes the per-round O(n)
// allocations the one-shot entry point pays.
type Traversal struct {
	g       *graph.Graph
	claimed *parallel.Bitset // dedup for sparse rounds; cleared per-member
	front   *parallel.Bitset // sparse->dense conversion scratch
	spare   *parallel.Bitset // next dense output, recycled via Recycle
	buffers [][]uint32       // per-worker sparse output buffers
}

// NewTraversal allocates scratch for frontier loops over g.
func NewTraversal(g *graph.Graph) *Traversal {
	return &Traversal{g: g, claimed: parallel.NewBitset(g.NumVertices())}
}

// Recycle hands a dead subset's dense bitmap back for reuse by the next
// dense round. Call it on the previous frontier once EdgeMap has produced
// the next one; the subset must not be used afterwards.
func (t *Traversal) Recycle(s *Subset) {
	if s != nil && s.dense != nil && t.spare == nil && s.dense != t.front {
		t.spare = s.dense
	}
}

// EdgeMap applies update(src, dst) over all edges out of the frontier whose
// target passes cond(dst). update returns true when dst should join the
// output frontier; it must be atomic/idempotent (it may race on dense
// sweeps exactly as in Ligra). The returned subset contains each admitted
// target exactly once.
func (t *Traversal) EdgeMap(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	if front.IsEmpty() {
		return NewSubset(g.NumVertices(), nil)
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 20
	}
	frontierArcs := front.ArcCount(g, opts.Workers)
	useDense := !opts.ForceSparse &&
		(opts.ForceDense || frontierArcs > g.NumArcs()/threshold)
	if useDense {
		return t.edgeMapDense(front, cond, update, opts)
	}
	return t.edgeMapSparse(front, cond, update, opts)
}

// EdgeMap is the one-shot entry point: it allocates fresh scratch per call.
// Loops should hold a Traversal instead.
func EdgeMap(g *graph.Graph, front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {
	return NewTraversal(g).EdgeMap(front, cond, update, opts)
}

// edgeMapSparse walks out-edges of frontier members (top-down). Admissions
// are deduplicated with an atomic claim on the shared bitset, which is
// cleared per admitted member afterwards (O(out), not O(n)).
func (t *Traversal) edgeMapSparse(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	members := front.Vertices()
	w := parallel.Workers(opts.Workers, len(members))
	if cap(t.buffers) < w {
		t.buffers = make([][]uint32, w)
	}
	buffers := t.buffers[:w]
	claimed := t.claimed
	offsets := g.Offsets()
	arcCounts := make([]int64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * len(members) / w
		hi := (k + 1) * len(members) / w
		go func(k, lo, hi int) {
			defer wg.Done()
			buf := buffers[k][:0]
			var arcs int64
			for i := lo; i < hi; i++ {
				v := members[i]
				for _, u := range g.Neighbors(v) {
					if !cond(u) {
						continue
					}
					if update(v, u) {
						// Deduplicate output admission with an atomic claim.
						if claimed.TrySetAtomic(u) {
							buf = append(buf, u)
							arcs += offsets[u+1] - offsets[u]
						}
					}
				}
			}
			buffers[k] = buf
			arcCounts[k] = arcs
		}(k, lo, hi)
	}
	wg.Wait()
	var total int
	var outArcs int64
	for k, b := range buffers {
		total += len(b)
		outArcs += arcCounts[k]
	}
	out := make([]uint32, 0, total)
	for _, b := range buffers {
		out = append(out, b...)
		// Reset the claim bits so the next round starts clean.
		for _, u := range b {
			claimed.Clear(u)
		}
	}
	s := NewSubset(g.NumVertices(), out)
	s.arcs, s.arcsOK = outArcs, true
	return s
}

// edgeMapDense scans all vertices, pulling from frontier members
// (bottom-up); each passing vertex probes its own neighborhood. The output
// bitmap comes from the recycled spare when one is available.
func (t *Traversal) edgeMapDense(front *Subset, cond func(uint32) bool,
	update func(src, dst uint32) bool, opts Options) *Subset {

	g := t.g
	n := g.NumVertices()
	bitmap := front.toBitset(t.front, opts.Workers)
	if front.dense == nil {
		t.front = bitmap // keep the conversion scratch for reuse
	}
	out := t.spare
	if out == nil || out.Len() != n {
		out = parallel.NewBitset(n)
	} else {
		out.Reset(opts.Workers)
	}
	t.spare = nil
	offsets := g.Offsets()
	var outArcs int64
	parallel.ForRange(opts.Workers, n, func(lo, hi int) {
		var arcs int64
		for v := lo; v < hi; v++ {
			u := uint32(v)
			if !cond(u) {
				continue
			}
			for _, src := range g.Neighbors(u) {
				if bitmap.Get(src) && update(src, u) {
					out.SetAtomic(u)
					arcs += offsets[u+1] - offsets[u]
					break
				}
			}
		}
		atomic.AddInt64(&outArcs, arcs)
	})
	s := NewDenseSubset(out)
	s.arcs, s.arcsOK = outArcs, true
	return s
}

// VertexMap applies f to every member of the subset in parallel.
func VertexMap(s *Subset, workers int, f func(uint32)) {
	members := s.Vertices()
	parallel.For(workers, len(members), func(i int) { f(members[i]) })
}

// VertexFilter returns the members for which keep returns true.
func VertexFilter(s *Subset, keep func(uint32) bool) *Subset {
	var out []uint32
	for _, v := range s.Vertices() {
		if keep(v) {
			out = append(out, v)
		}
	}
	return NewSubset(s.n, out)
}

// BFS computes distances from source using EdgeMap — the canonical Ligra
// program, kept as the executable specification the low-level BFS in
// package bfs is cross-tested against.
func BFS(g *graph.Graph, source uint32, opts Options) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	visited := parallel.NewBitset(n)
	dist[source] = 0
	visited.Set(source)
	tr := NewTraversal(g)
	front := NewSubset(n, []uint32{source})
	depth := int32(0)
	for !front.IsEmpty() {
		depth++
		d := depth
		next := tr.EdgeMap(front,
			func(u uint32) bool { return !visited.GetAtomic(u) },
			func(src, dst uint32) bool {
				if visited.TrySetAtomic(dst) {
					dist[dst] = d
					return true
				}
				return false
			}, opts)
		tr.Recycle(front)
		front = next
	}
	return dist
}
