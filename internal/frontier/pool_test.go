package frontier

import (
	"testing"

	"mpx/internal/bfs"
	"mpx/internal/graph"
	"mpx/internal/parallel"
)

// TestBFSPoolDeterminism runs the EdgeMap-based BFS on one explicit pool
// at worker counts 1, 2 and 8, in both forced directions and the
// automatic switch, and requires the distances to match the sequential
// reference every time.
func TestBFSPoolDeterminism(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	graphs := map[string]*graph.Graph{
		"grid": graph.Grid2D(50, 50),
		"gnm":  graph.GNM(4000, 16000, 5),
	}
	for name, g := range graphs {
		want := bfs.Sequential(g, 0)
		for _, w := range []int{1, 2, 8} {
			for _, mode := range []Options{
				{Workers: w, Pool: pool},
				{Workers: w, Pool: pool, ForceSparse: true},
				{Workers: w, Pool: pool, ForceDense: true},
			} {
				got := BFS(g, 0, mode)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s workers=%d opts=%+v: dist[%d]=%d want %d",
							name, w, mode, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestTraversalPoolReuse drives one Traversal through many consecutive
// BFS runs on the same pool; the recycled buffers and Subset shells must
// not leak state between runs.
func TestTraversalPoolReuse(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	g := graph.Grid2D(40, 40)
	n := g.NumVertices()
	tr := NewTraversal(g)
	opts := Options{Workers: 8, Pool: pool}
	for run := 0; run < 4; run++ {
		source := uint32(run * 41)
		want := bfs.Sequential(g, source)
		visited := parallel.NewBitset(n)
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[source] = 0
		visited.Set(source)
		front := NewSubset(n, []uint32{source})
		for depth := int32(1); !front.IsEmpty(); depth++ {
			d := depth
			next := tr.EdgeMap(front,
				func(u uint32) bool { return !visited.GetAtomic(u) },
				func(src, dst uint32) bool {
					if visited.TrySetAtomic(dst) {
						dist[dst] = d
						return true
					}
					return false
				}, opts)
			tr.Recycle(front)
			front = next
		}
		tr.Recycle(front)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("run %d (source %d): dist[%d]=%d want %d", run, source, v, dist[v], want[v])
			}
		}
	}
}

// TestEdgeMapPoolMatchesOneShot checks the Traversal-scratch path against
// the allocate-fresh entry point on a frontier large enough to take the
// scan-based parallel compaction path.
func TestEdgeMapPoolMatchesOneShot(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	g := graph.GNM(6000, 60000, 11)
	n := g.NumVertices()
	// A frontier of every even vertex produces a compaction larger than
	// the serial cutoff.
	var ids []uint32
	for v := 0; v < n; v += 2 {
		ids = append(ids, uint32(v))
	}
	for _, w := range []int{1, 2, 8} {
		tr := NewTraversal(g)
		got := tr.EdgeMap(NewSubset(n, append([]uint32(nil), ids...)),
			func(u uint32) bool { return u%2 == 1 },
			func(src, dst uint32) bool { return true },
			Options{Workers: w, Pool: pool, ForceSparse: true})
		want := EdgeMap(g, NewSubset(n, append([]uint32(nil), ids...)),
			func(u uint32) bool { return u%2 == 1 },
			func(src, dst uint32) bool { return true },
			Options{Workers: w, ForceSparse: true})
		if got.Len() != want.Len() {
			t.Fatalf("w=%d: %d admitted vs %d", w, got.Len(), want.Len())
		}
		gm, wm := got.Vertices(), want.Vertices()
		gotSet := make(map[uint32]bool, len(gm))
		for _, v := range gm {
			gotSet[v] = true
		}
		for _, v := range wm {
			if !gotSet[v] {
				t.Fatalf("w=%d: vertex %d missing from pool-path output", w, v)
			}
		}
	}
}
