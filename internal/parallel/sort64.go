package parallel

// Pool-parallel LSD radix sorts on uint64 keys. These are the sorting
// substrate of the hierarchy engine: quotient-edge keys are packed into 64
// bits ((qu << 32) | qv), so deduplicating and ordering contracted edges is
// a byte-at-a-time radix sort instead of a comparison sort — the same
// shift-plan discipline core.sortByFrac established for the tie-break
// ranks, generalized to raw integer keys and to stable (key, payload)
// record sorts.
//
// Both sorts are deterministic at every worker count: each pass counts
// bytes with one histogram per contiguous worker block, turns the
// histograms into per-(byte, worker) start offsets with an exclusive scan
// in (byte, worker) order, and scatters the blocks in order, so keys with
// equal bytes land exactly in their pre-pass order. Every pass is
// therefore the same stable counting sort the serial loop performs, and
// the output is identical at workers 1, 2, 8, ... Passes whose byte is
// constant across all keys are skipped outright (for packed (qu, qv) keys
// of a small quotient graph most of the eight passes skip).

// sortGrain is the input size below which the radix passes run serially;
// it matches the shared CompactCutoff so the whole stack switches to
// parallel execution at one size.
const sortGrain = CompactCutoff

// SortUint64 sorts keys ascending in place. scratch must be nil or have
// length >= len(keys); passing a reused buffer makes steady-state calls
// allocation-free. The contents of scratch are unspecified afterwards.
func (p *Pool) SortUint64(workers int, keys []uint64, scratch []uint64) {
	p = p.orDefault()
	n := len(keys)
	if n < 2 {
		return
	}
	if len(scratch) < n {
		scratch = make([]uint64, n)
	}
	radixSort64(p, workers, keys, scratch[:n], nil, nil)
}

// SortPairs stably sorts the records (keys[i], vals[i]) by key ascending,
// permuting both slices in place; records with equal keys keep their
// original relative order. keyScratch/valScratch must be nil or at least
// len(keys) long. len(vals) must equal len(keys); a mismatch panics with
// "parallel: SortPairs key/value length mismatch" (a silent truncation
// would desynchronize keys from their payloads).
func (p *Pool) SortPairs(workers int, keys []uint64, vals []uint32, keyScratch []uint64, valScratch []uint32) {
	p = p.orDefault()
	n := len(keys)
	if len(vals) != n {
		panic("parallel: SortPairs key/value length mismatch")
	}
	if n < 2 {
		return
	}
	if len(keyScratch) < n {
		keyScratch = make([]uint64, n)
	}
	if len(valScratch) < n {
		valScratch = make([]uint32, n)
	}
	radixSort64(p, workers, keys, keyScratch[:n], vals, valScratch[:n])
}

// radixSort64 runs the shared LSD passes. vals may be nil (key-only sort).
// The sorted sequence always ends up back in keys/vals: the pass parity is
// tracked and a final parallel copy runs only when the ping-pong ended in
// the scratch buffers.
func radixSort64(p *Pool, workers int, keys, keyTmp []uint64, vals, valTmp []uint32) {
	n := len(keys)
	srcK, dstK := keys, keyTmp
	srcV, dstV := vals, valTmp
	w := Workers(workers, n)
	if w == 1 || n < sortGrain {
		var count [256]int
		for shift := uint(0); shift < 64; shift += 8 {
			for b := range count {
				count[b] = 0
			}
			for _, k := range srcK {
				count[(k>>shift)&0xff]++
			}
			if count[(srcK[0]>>shift)&0xff] == n {
				continue // every key shares this byte; the pass is a no-op
			}
			pos := 0
			for b := 0; b < 256; b++ {
				c := count[b]
				count[b] = pos
				pos += c
			}
			if srcV == nil {
				for _, k := range srcK {
					b := (k >> shift) & 0xff
					dstK[count[b]] = k
					count[b]++
				}
			} else {
				for i, k := range srcK {
					b := (k >> shift) & 0xff
					j := count[b]
					count[b]++
					dstK[j] = k
					dstV[j] = srcV[i]
				}
			}
			srcK, dstK = dstK, srcK
			srcV, dstV = dstV, srcV
		}
	} else {
		counts := make([]int, w*256)
		totals := make([]int, 256)
		for shift := uint(0); shift < 64; shift += 8 {
			sk := srcK
			p.Run(w, func(k int) {
				lo, hi := k*n/w, (k+1)*n/w
				c := counts[k*256 : (k+1)*256]
				for b := range c {
					c[b] = 0
				}
				for _, key := range sk[lo:hi] {
					c[(key>>shift)&0xff]++
				}
			})
			for b := range totals {
				totals[b] = 0
			}
			for k := 0; k < w; k++ {
				c := counts[k*256 : (k+1)*256]
				for b := 0; b < 256; b++ {
					totals[b] += c[b]
				}
			}
			if totals[(sk[0]>>shift)&0xff] == n {
				continue // same skip rule as the serial passes
			}
			// Exclusive scan in (byte, worker) order: counts[k*256+b]
			// becomes the destination offset of worker k's first key
			// carrying byte b.
			pos := 0
			for b := 0; b < 256; b++ {
				for k := 0; k < w; k++ {
					c := counts[k*256+b]
					counts[k*256+b] = pos
					pos += c
				}
			}
			sv, dk, dv := srcV, dstK, dstV
			p.Run(w, func(k int) {
				lo, hi := k*n/w, (k+1)*n/w
				c := counts[k*256 : (k+1)*256]
				if sv == nil {
					for i := lo; i < hi; i++ {
						key := sk[i]
						b := (key >> shift) & 0xff
						dk[c[b]] = key
						c[b]++
					}
				} else {
					for i := lo; i < hi; i++ {
						key := sk[i]
						b := (key >> shift) & 0xff
						j := c[b]
						c[b]++
						dk[j] = key
						dv[j] = sv[i]
					}
				}
			})
			srcK, dstK = dstK, srcK
			srcV, dstV = dstV, srcV
		}
	}
	if &srcK[0] != &keys[0] {
		p.ForRange(workers, n, func(lo, hi int) {
			copy(keys[lo:hi], srcK[lo:hi])
			if vals != nil {
				copy(vals[lo:hi], srcV[lo:hi])
			}
		})
	}
}

// Grow returns s with length n, reusing the backing array when capacity
// allows — the generic companion of GrowUint32 for scratch buffers of any
// element type. New capacity is not zeroed beyond Go's allocation zeroing.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
