// Package parallel provides the PRAM-style primitives the decomposition
// algorithms are written against: parallel for-loops over index ranges,
// blocked reductions, prefix sums (scans), stream packing, and small atomic
// helpers.
//
// All primitives take an explicit worker count so callers can sweep
// parallelism in experiments; workers <= 0 means runtime.GOMAXPROCS(0).
// Every primitive is deterministic: its result never depends on goroutine
// scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 become
// GOMAXPROCS, and the count is never larger than n (no idle spinners for
// tiny inputs).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// serialCutoff is the range size below which forking goroutines costs more
// than it saves; loops this small run inline.
const serialCutoff = 2048

// For runs body(i) for every i in [0, n) using the given number of workers.
// The index space is split into contiguous blocks, one per worker, so body
// benefits from cache locality over CSR arrays.
func For(workers, n int, body func(i int)) {
	ForRange(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange splits [0, n) into one contiguous block per worker and runs
// body(lo, hi) on each block concurrently.
func ForRange(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs body(i) for i in [0, n) with dynamic chunk scheduling:
// workers repeatedly grab chunks of the given size from a shared counter.
// Use it when per-index cost is highly skewed (e.g. per-vertex work
// proportional to degree on power-law graphs). chunk <= 0 picks a default.
func ForDynamic(workers, n, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if chunk <= 0 {
		chunk = 256
	}
	if w == 1 || n < serialCutoff {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ReduceInt64 computes the sum over i in [0, n) of f(i) using a blocked
// tree-free reduction (per-worker partials, then a serial combine).
func ReduceInt64(workers, n int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]int64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partial[k] = s
		}(k, lo, hi)
	}
	wg.Wait()
	var s int64
	for _, p := range partial {
		s += p
	}
	return s
}

// ReduceFloat64 is ReduceInt64 for float64 values. The combine order is
// fixed (worker index order) so results are deterministic for a fixed
// worker count.
func ReduceFloat64(workers, n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]float64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partial[k] = s
		}(k, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// MaxFloat64 returns the maximum of f(i) over [0, n) and the smallest index
// attaining it. n must be >= 1.
func MaxFloat64(workers, n int, f func(i int) float64) (max float64, argmax int) {
	if n <= 0 {
		panic("parallel: MaxFloat64 over empty range")
	}
	w := Workers(workers, n)
	type pair struct {
		v float64
		i int
	}
	if w == 1 || n < serialCutoff {
		best := pair{f(0), 0}
		for i := 1; i < n; i++ {
			if v := f(i); v > best.v {
				best = pair{v, i}
			}
		}
		return best.v, best.i
	}
	partial := make([]pair, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			best := pair{f(lo), lo}
			for i := lo + 1; i < hi; i++ {
				if v := f(i); v > best.v {
					best = pair{v, i}
				}
			}
			partial[k] = best
		}(k, lo, hi)
	}
	wg.Wait()
	best := partial[0]
	for _, p := range partial[1:] {
		if p.v > best.v {
			best = p
		}
	}
	return best.v, best.i
}

// ExclusiveScan replaces data with its exclusive prefix sum and returns the
// total. The scan is computed with the classic two-pass blocked algorithm:
// per-block sums, serial scan of block sums, then per-block local scans.
func ExclusiveScan(workers int, data []int64) int64 {
	n := len(data)
	if n == 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var run int64
		for i := 0; i < n; i++ {
			v := data[i]
			data[i] = run
			run += v
		}
		return run
	}
	blockSum := make([]int64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			blockSum[k] = s
		}(k, lo, hi)
	}
	wg.Wait()
	var run int64
	for k := 0; k < w; k++ {
		v := blockSum[k]
		blockSum[k] = run
		run += v
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			local := blockSum[k]
			for i := lo; i < hi; i++ {
				v := data[i]
				data[i] = local
				local += v
			}
		}(k, lo, hi)
	}
	wg.Wait()
	return run
}

// Pack returns the values v in [0, n) (in increasing order) for which
// keep(v) is true. It is the parallel filter used to build BFS frontiers.
func Pack(workers, n int, keep func(i int) bool) []uint32 {
	if n <= 0 {
		return nil
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var out []uint32
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	counts := make([]int64, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			var c int64
			for i := lo; i < hi; i++ {
				if keep(i) {
					c++
				}
			}
			counts[k] = c
		}(k, lo, hi)
	}
	wg.Wait()
	total := ExclusiveScan(1, counts)
	out := make([]uint32, total)
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			pos := counts[k]
			for i := lo; i < hi; i++ {
				if keep(i) {
					out[pos] = uint32(i)
					pos++
				}
			}
		}(k, lo, hi)
	}
	wg.Wait()
	return out
}

// Fill sets every element of data to v in parallel.
func Fill[T any](workers int, data []T, v T) {
	ForRange(workers, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = v
		}
	})
}

// MinUint64 atomically lowers *addr to v if v is smaller, returning true if
// the store happened. This is the atomic-min used to resolve same-round
// cluster claims deterministically.
func MinUint64(addr *uint64, v uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return true
		}
	}
}
