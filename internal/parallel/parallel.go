// Package parallel provides the PRAM-style primitives the decomposition
// algorithms are written against: parallel for-loops over index ranges,
// blocked reductions, prefix sums (scans), stream packing, and small atomic
// helpers.
//
// All primitives execute on a persistent worker pool (Pool) instead of
// spawning goroutines per call: the package-level functions run on the
// shared Default() pool, and every primitive is also a method on *Pool for
// callers that construct their own. A pool's workers are started once,
// park on a channel between submissions, and are woken only when a loop is
// submitted; the submitting goroutine always participates, so loops
// complete even on a closed pool and nested submission cannot deadlock.
// See the Pool type for the scheduling model and lifecycle.
//
// All primitives take an explicit worker count so callers can sweep
// parallelism in experiments; workers <= 0 means runtime.GOMAXPROCS(0).
// The worker count fixes the logical block decomposition (and therefore
// the result), not the physical parallelism: which pool worker executes a
// block is unspecified. Every primitive is deterministic — its result
// never depends on goroutine scheduling.
package parallel

import (
	"runtime"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 become
// GOMAXPROCS, and the count is never larger than n (no idle spinners for
// tiny inputs).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// serialCutoff is the range size below which submitting to the pool costs
// more than it saves; loops this small run inline.
const serialCutoff = 2048

// CompactCutoff is the shared work-size threshold below which round loops
// (frontier/BFS/partition compaction copies) run inline rather than on the
// pool. It equals the primitive serial cutoff so the whole stack switches
// to parallel execution at one size.
const CompactCutoff = serialCutoff

// For runs body(i) for every i in [0, n) using the given number of workers
// on the default pool. The index space is split into contiguous blocks, one
// per worker, so body benefits from cache locality over CSR arrays.
func For(workers, n int, body func(i int)) {
	Default().For(workers, n, body)
}

// ForRange splits [0, n) into one contiguous block per worker and runs
// body(lo, hi) on each block concurrently on the default pool.
func ForRange(workers, n int, body func(lo, hi int)) {
	Default().ForRange(workers, n, body)
}

// ForDynamic runs body(i) for i in [0, n) with dynamic chunk scheduling:
// workers repeatedly grab chunks of the given size from a shared counter.
// Use it when per-index cost is highly skewed (e.g. per-vertex work
// proportional to degree on power-law graphs). chunk <= 0 picks a default.
func ForDynamic(workers, n, chunk int, body func(i int)) {
	Default().ForDynamic(workers, n, chunk, body)
}

// ReduceInt64 computes the sum over i in [0, n) of f(i) using a blocked
// tree-free reduction (per-worker partials, then a serial combine).
func ReduceInt64(workers, n int, f func(i int) int64) int64 {
	return Default().ReduceInt64(workers, n, f)
}

// ReduceFloat64 is ReduceInt64 for float64 values. The combine order is
// fixed (worker index order) so results are deterministic for a fixed
// worker count.
func ReduceFloat64(workers, n int, f func(i int) float64) float64 {
	return Default().ReduceFloat64(workers, n, f)
}

// MaxFloat64 returns the maximum of f(i) over [0, n) and the smallest index
// attaining it. n must be >= 1.
func MaxFloat64(workers, n int, f func(i int) float64) (max float64, argmax int) {
	return Default().MaxFloat64(workers, n, f)
}

// ExclusiveScan replaces data with its exclusive prefix sum and returns the
// total. The scan is computed with the classic two-pass blocked algorithm:
// per-block sums, serial scan of block sums, then per-block local scans.
func ExclusiveScan(workers int, data []int64) int64 {
	return Default().ExclusiveScan(workers, data)
}

// Pack returns the values v in [0, n) (in increasing order) for which
// keep(v) is true. It is the parallel filter used to build BFS frontiers.
func Pack(workers, n int, keep func(i int) bool) []uint32 {
	return Default().Pack(workers, n, keep)
}

// Fill sets every element of data to v in parallel on the default pool.
func Fill[T any](workers int, data []T, v T) {
	FillPool(Default(), workers, data, v)
}

// MinUint64 atomically lowers *addr to v if v is smaller, returning true if
// the store happened. This is the atomic-min used to resolve same-round
// cluster claims deterministically.
func MinUint64(addr *uint64, v uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return true
		}
	}
}
