package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100)=%d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8,3)=%d, want 3", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Errorf("Workers(-1,0)=%d, want 1", w)
	}
	if w := Workers(4, 100); w != 4 {
		t.Errorf("Workers(4,100)=%d, want 4", w)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 100, 5000} {
		for _, w := range []int{1, 2, 7} {
			hits := make([]int32, n)
			For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestForRangeBlocksPartition(t *testing.T) {
	n := 10000
	var total int64
	ForRange(4, n, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Errorf("blocks cover %d of %d", total, n)
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 3000, 10000} {
		hits := make([]int32, n)
		ForDynamic(4, n, 100, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestReduceInt64MatchesSerial(t *testing.T) {
	f := func(vals []int64) bool {
		var want int64
		for _, v := range vals {
			want += v
		}
		got := ReduceInt64(3, len(vals), func(i int) int64 { return vals[i] })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceFloat64Small(t *testing.T) {
	got := ReduceFloat64(2, 4, func(i int) float64 { return float64(i) })
	if got != 6 {
		t.Errorf("got %g want 6", got)
	}
}

func TestReduceLargeParallelPath(t *testing.T) {
	n := 100000
	got := ReduceInt64(8, n, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Errorf("got %d want %d", got, want)
	}
}

func TestMaxFloat64(t *testing.T) {
	vals := []float64{3, 1, 9, 2, 9, 4}
	max, arg := MaxFloat64(2, len(vals), func(i int) float64 { return vals[i] })
	if max != 9 || arg != 2 {
		t.Errorf("got (%g,%d), want (9,2)", max, arg)
	}
}

func TestMaxFloat64LargeParallel(t *testing.T) {
	n := 50000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64((i * 7919) % n)
	}
	max, arg := MaxFloat64(4, n, func(i int) float64 { return vals[i] })
	if max != float64(n-1) {
		t.Errorf("max=%g want %d", max, n-1)
	}
	if vals[arg] != max {
		t.Errorf("argmax inconsistent")
	}
}

func TestMaxFloat64PanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MaxFloat64(1, 0, func(int) float64 { return 0 })
}

func TestExclusiveScanMatchesSerial(t *testing.T) {
	f := func(vals []int64) bool {
		a := make([]int64, len(vals))
		copy(a, vals)
		b := make([]int64, len(vals))
		copy(b, vals)
		var run int64
		for i := range a {
			v := a[i]
			a[i] = run
			run += v
		}
		total := ExclusiveScan(4, b)
		if total != run {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExclusiveScanLarge(t *testing.T) {
	n := 100000
	data := make([]int64, n)
	for i := range data {
		data[i] = 1
	}
	total := ExclusiveScan(8, data)
	if total != int64(n) {
		t.Errorf("total %d want %d", total, n)
	}
	for i, v := range data {
		if v != int64(i) {
			t.Fatalf("data[%d]=%d want %d", i, v, i)
		}
	}
}

func TestPackMatchesSerialFilter(t *testing.T) {
	for _, n := range []int{0, 1, 999, 50000} {
		keep := func(i int) bool { return i%3 == 0 }
		got := Pack(4, n, keep)
		var want []uint32
		for i := 0; i < n; i++ {
			if keep(i) {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d elements, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: element %d: got %d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestFill(t *testing.T) {
	data := make([]int32, 30000)
	Fill(4, data, int32(-7))
	for i, v := range data {
		if v != -7 {
			t.Fatalf("data[%d]=%d", i, v)
		}
	}
}

func TestMinUint64(t *testing.T) {
	var x uint64 = 100
	if !MinUint64(&x, 50) || x != 50 {
		t.Errorf("MinUint64 to 50 failed: x=%d", x)
	}
	if MinUint64(&x, 60) || x != 50 {
		t.Errorf("MinUint64 raised value: x=%d", x)
	}
	if MinUint64(&x, 50) {
		t.Error("MinUint64 equal value should not store")
	}
}

func TestMinUint64Concurrent(t *testing.T) {
	var x uint64 = 1 << 62
	done := make(chan struct{})
	for k := 0; k < 8; k++ {
		go func(k int) {
			for i := 0; i < 1000; i++ {
				MinUint64(&x, uint64(k*1000+i))
			}
			done <- struct{}{}
		}(k)
	}
	for k := 0; k < 8; k++ {
		<-done
	}
	if atomic.LoadUint64(&x) != 0 {
		t.Errorf("concurrent min should reach 0, got %d", x)
	}
}
