// Chaos suite: drives deterministic faults (panics, cancellations, delays)
// into the pool/engine stack at every injection point the harness can
// reach, and asserts the robustness contract of docs/robustness.md under
// -race at workers 1, 2 and 8: no deadlock, errors surface typed, the pool
// stays reusable, failed updates leave the hierarchy bit-identical, and a
// clean retry after any injected fault reproduces the golden fingerprints
// bit for bit.
package faultpool_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"testing"
	"time"

	"mpx/internal/core"
	"mpx/internal/graph"
	"mpx/internal/hier"
	"mpx/internal/parallel"
	"mpx/internal/parallel/faultpool"
)

var chaosWorkers = []int{1, 2, 8}

// hashU32s / hashI64s / hashF64s feed arrays into a fingerprint.
func hashU32s(h hash.Hash64, xs []uint32) {
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], x)
		h.Write(b[:])
	}
}

func hashI64s(h hash.Hash64, xs []int64) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		h.Write(b[:])
	}
}

func hashF64s(h hash.Hash64, xs []float64) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
}

func hashI32s(h hash.Hash64, xs []int32) {
	var b [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		h.Write(b[:])
	}
}

func hashGraph(h hash.Hash64, g *graph.Graph) {
	if g == nil {
		h.Write([]byte{0})
		return
	}
	hashI64s(h, g.Offsets())
	hashU32s(h, g.Adjacency())
}

// fpDecomp fingerprints every determinism-gated field of an unweighted
// decomposition.
func fpDecomp(d *core.Decomposition) uint64 {
	h := fnv.New64a()
	hashU32s(h, d.Center)
	hashI32s(h, d.Dist)
	hashU32s(h, d.Parent)
	fmt.Fprintf(h, "rounds=%d", d.Rounds)
	return h.Sum64()
}

func fpWeightedDecomp(d *core.WeightedDecomposition) uint64 {
	h := fnv.New64a()
	hashU32s(h, d.Center)
	hashF64s(h, d.Dist)
	hashU32s(h, d.Parent)
	fmt.Fprintf(h, "rounds=%d", d.Rounds)
	return h.Sum64()
}

// fpHier fingerprints a hierarchy's observable state: level count,
// per-level stats, the base graph, the final graph, and the vertex map.
func fpHier(hr *hier.Hierarchy) uint64 {
	h := fnv.New64a()
	res := hr.Result()
	fmt.Fprintf(h, "levels=%d;", res.Levels)
	for _, st := range res.Stats {
		fmt.Fprintf(h, "%+v;", st)
	}
	hashGraph(h, hr.Graph())
	hashGraph(h, res.Final)
	hashU32s(h, res.OrigMap)
	return h.Sum64()
}

func chaosGraph() *graph.Graph { return graph.GNM(240, 720, 0xC0FFEE) }

func partitionOpts(pool *parallel.Pool, workers int, ctx context.Context) core.Options {
	return core.Options{Ctx: ctx, Seed: 42, Workers: workers, Pool: pool}
}

// mustPartition runs a clean partition and fails the test on error.
func mustPartition(t *testing.T, g *graph.Graph, pool *parallel.Pool, workers int) *core.Decomposition {
	t.Helper()
	d, err := core.Partition(g, 0.25, partitionOpts(pool, workers, nil))
	if err != nil {
		t.Fatalf("clean Partition: %v", err)
	}
	return d
}

// TestPartitionCancelAtEveryRound cancels an unweighted partition at every
// round boundary in turn: each cancelled call must return (nil,
// context.Canceled), and a clean retry on the same pool must reproduce the
// golden fingerprint bit for bit.
func TestPartitionCancelAtEveryRound(t *testing.T) {
	g := chaosGraph()
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()
			golden := fpDecomp(mustPartition(t, g, pool, w))

			// Probe the boundary count: a never-tripping CheckCtx counts
			// the polls a full run performs.
			probe := faultpool.CancelAtCheck(1 << 40)
			if _, err := core.Partition(g, 0.25, partitionOpts(pool, w, probe)); err != nil {
				t.Fatalf("probe run: %v", err)
			}
			polls := probe.Polls()
			if polls < 2 {
				t.Fatalf("expected multiple boundary polls, got %d", polls)
			}

			for n := 1; n <= polls; n++ {
				ctx := faultpool.CancelAtCheck(n)
				d, err := core.Partition(g, 0.25, partitionOpts(pool, w, ctx))
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d: err = %v, want context.Canceled", n, err)
				}
				if d != nil {
					t.Fatalf("cancel at poll %d: got partial decomposition", n)
				}
			}

			if fp := fpDecomp(mustPartition(t, g, pool, w)); fp != golden {
				t.Fatalf("retry after %d cancellations: fingerprint %#x != golden %#x", polls, fp, golden)
			}
		})
	}
}

// TestPartitionPanicAtBoundary injects a panic through the context's Err()
// at a round boundary — a poisoned request object — and requires it to be
// contained into a *parallel.PanicError with the pool left reusable.
func TestPartitionPanicAtBoundary(t *testing.T) {
	g := chaosGraph()
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()
			golden := fpDecomp(mustPartition(t, g, pool, w))

			for _, n := range []int{1, 2, 3} {
				ctx := faultpool.PanicAtCheck(n)
				d, err := core.Partition(g, 0.25, partitionOpts(pool, w, ctx))
				var pe *parallel.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("panic at poll %d: err = %v, want *parallel.PanicError", n, err)
				}
				if !errors.Is(err, faultpool.ErrInjected) {
					t.Fatalf("panic at poll %d: error does not unwrap to ErrInjected: %v", n, err)
				}
				if d != nil {
					t.Fatalf("panic at poll %d: got partial decomposition", n)
				}
			}

			if fp := fpDecomp(mustPartition(t, g, pool, w)); fp != golden {
				t.Fatalf("retry after boundary panics: fingerprint mismatch")
			}
		})
	}
}

// TestWeightedPartitionCancelAtEveryRound is the weighted analogue:
// Δ-stepping bucket rounds are the boundaries.
func TestWeightedPartitionCancelAtEveryRound(t *testing.T) {
	g := chaosGraph()
	wg := graph.RandomWeights(g, 0.1, 1.0, 7)
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()

			run := func(ctx context.Context) (*core.WeightedDecomposition, error) {
				return core.PartitionWeightedParallel(wg, 0.25, 0.5, partitionOpts(pool, w, ctx))
			}
			d0, err := run(nil)
			if err != nil {
				t.Fatalf("clean weighted partition: %v", err)
			}
			golden := fpWeightedDecomp(d0)

			probe := faultpool.CancelAtCheck(1 << 40)
			if _, err := run(probe); err != nil {
				t.Fatalf("probe run: %v", err)
			}
			polls := probe.Polls()
			if polls < 2 {
				t.Fatalf("expected multiple boundary polls, got %d", polls)
			}

			step := 1
			if polls > 40 {
				step = polls / 40
			}
			for n := 1; n <= polls; n += step {
				ctx := faultpool.CancelAtCheck(n)
				d, err := run(ctx)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d: err = %v, want context.Canceled", n, err)
				}
				if d != nil {
					t.Fatalf("cancel at poll %d: got partial decomposition", n)
				}
			}

			d1, err := run(nil)
			if err != nil {
				t.Fatalf("retry: %v", err)
			}
			if fp := fpWeightedDecomp(d1); fp != golden {
				t.Fatalf("retry after cancellations: fingerprint %#x != golden %#x", fp, golden)
			}
		})
	}
}

// TestPoolPanicInjectionRetry panics at sampled pool submissions — both on
// the submitting goroutine (Submit hook) and inside a job slot (Slot hook)
// — during a partition. The engine boundary must surface a typed error,
// and after Clear a retry on the same pool must be bit-identical.
func TestPoolPanicInjectionRetry(t *testing.T) {
	g := chaosGraph()
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()
			base := pool.SubmitCount()
			faultpool.Observe(pool) // submissions are numbered only under a hook
			golden := fpDecomp(mustPartition(t, g, pool, w))
			faultpool.Clear(pool)
			total := pool.SubmitCount() - base
			if total < 1 {
				t.Fatalf("partition made no pool submissions")
			}

			samples := []int64{1, total / 2, total}
			for _, n := range samples {
				if n < 1 {
					continue
				}
				for _, mode := range []string{"submit", "slot"} {
					if mode == "submit" {
						faultpool.PanicAtSubmission(pool, n)
					} else {
						faultpool.PanicAtSlot(pool, n, 0)
					}
					d, err := core.Partition(g, 0.25, partitionOpts(pool, w, nil))
					faultpool.Clear(pool)
					var pe *parallel.PanicError
					if !errors.As(err, &pe) {
						t.Fatalf("%s fault at submission %d: err = %v, want *parallel.PanicError", mode, n, err)
					}
					if !errors.Is(err, faultpool.ErrInjected) {
						t.Fatalf("%s fault at submission %d: error does not unwrap to ErrInjected: %v", mode, n, err)
					}
					if d != nil {
						t.Fatalf("%s fault at submission %d: got partial decomposition", mode, n)
					}
					if fp := fpDecomp(mustPartition(t, g, pool, w)); fp != golden {
						t.Fatalf("%s fault at submission %d: retry fingerprint mismatch", mode, n)
					}
				}
			}
		})
	}
}

// TestDelayInjectionDeterminism perturbs the schedule (a sleep inside
// every slot of a sampled submission) and requires bit-identical output —
// the determinism contract holds under arbitrary slot interleavings.
func TestDelayInjectionDeterminism(t *testing.T) {
	g := chaosGraph()
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()
			base := pool.SubmitCount()
			faultpool.Observe(pool)
			golden := fpDecomp(mustPartition(t, g, pool, w))
			faultpool.Clear(pool)
			total := pool.SubmitCount() - base

			for _, n := range []int64{1, total / 2, total} {
				if n < 1 {
					continue
				}
				faultpool.DelayAtSubmission(pool, n, 2*time.Millisecond)
				d, err := core.Partition(g, 0.25, partitionOpts(pool, w, nil))
				faultpool.Clear(pool)
				if err != nil {
					t.Fatalf("delay at submission %d: %v", n, err)
				}
				if fp := fpDecomp(d); fp != golden {
					t.Fatalf("delay at submission %d: fingerprint %#x != golden %#x", n, fp, golden)
				}
			}
		})
	}
}

func hierConfig(pool *parallel.Pool, workers int, ctx context.Context) hier.Config {
	return hier.Config{
		Ctx:            ctx,
		Beta:           0.3,
		Seed:           11,
		Workers:        workers,
		Pool:           pool,
		TrackVertexMap: true,
		NeedEdgeOrig:   true,
	}
}

// TestHierarchyBuildCancel cancels a hierarchy build at every boundary
// poll (level boundaries plus the partition rounds inside each level):
// every cancelled build returns (nil, context.Canceled), and a clean build
// afterwards matches the golden fingerprint.
func TestHierarchyBuildCancel(t *testing.T) {
	g := chaosGraph()
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()

			h0, err := hier.BuildHierarchy(hierConfig(pool, w, nil), g, nil)
			if err != nil {
				t.Fatalf("clean build: %v", err)
			}
			golden := fpHier(h0)

			probe := faultpool.CancelAtCheck(1 << 40)
			if _, err := hier.BuildHierarchy(hierConfig(pool, w, probe), g, nil); err != nil {
				t.Fatalf("probe build: %v", err)
			}
			polls := probe.Polls()
			if polls < 2 {
				t.Fatalf("expected multiple boundary polls, got %d", polls)
			}

			step := 1
			if polls > 40 {
				step = polls / 40
			}
			for n := 1; n <= polls; n += step {
				ctx := faultpool.CancelAtCheck(n)
				h, err := hier.BuildHierarchy(hierConfig(pool, w, ctx), g, nil)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d: err = %v, want context.Canceled", n, err)
				}
				if h != nil {
					t.Fatalf("cancel at poll %d: got partial hierarchy", n)
				}
			}

			h1, err := hier.BuildHierarchy(hierConfig(pool, w, nil), g, nil)
			if err != nil {
				t.Fatalf("retry build: %v", err)
			}
			if fp := fpHier(h1); fp != golden {
				t.Fatalf("retry after cancellations: fingerprint %#x != golden %#x", fp, golden)
			}
		})
	}
}

// chaosBatch is the update the hierarchy fault tests apply: a handful of
// inserts that cross existing cluster structure plus one deletion of a
// known-present edge, forcing a multi-level re-derivation.
func chaosBatch(g *graph.Graph) graph.Batch {
	// Delete the first edge of the adjacency; insert edges between far
	// apart vertex ids (GNM(240, ...) almost surely lacks them; duplicates
	// are dropped by ApplyBatch as no-ops, which is fine — the batch stays
	// non-empty because of the deletion).
	adj := g.Adjacency()
	offs := g.Offsets()
	var del graph.Edge
	for v := 0; v < g.NumVertices(); v++ {
		if offs[v+1] > offs[v] {
			del = graph.Edge{U: uint32(v), V: adj[offs[v]]}
			break
		}
	}
	return graph.Batch{
		Insert: []graph.Edge{{U: 1, V: 238}, {U: 3, V: 235}, {U: 5, V: 231}},
		Delete: []graph.Edge{del},
	}
}

// TestHierarchyUpdateCancelUntouched cancels Hierarchy.UpdateCtx at every
// boundary poll in turn and asserts the all-or-nothing contract: zero
// UpdateStats, context.Canceled, and the live hierarchy bit-identical to
// its pre-update fingerprint. A clean retry must then succeed and match a
// from-scratch build on the updated graph bit for bit.
func TestHierarchyUpdateCancelUntouched(t *testing.T) {
	g := chaosGraph()
	b := chaosBatch(g)
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()

			h, err := hier.BuildHierarchy(hierConfig(pool, w, nil), g, nil)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			before := fpHier(h)

			// Probe the boundary count of this exact update on a scratch
			// copy of the hierarchy.
			probeH, err := hier.BuildHierarchy(hierConfig(pool, w, nil), g, nil)
			if err != nil {
				t.Fatalf("probe build: %v", err)
			}
			probe := faultpool.CancelAtCheck(1 << 40)
			if _, err := probeH.UpdateCtx(probe, b, nil); err != nil {
				t.Fatalf("probe update: %v", err)
			}
			polls := probe.Polls()
			if polls < 2 {
				t.Fatalf("expected multiple boundary polls, got %d", polls)
			}

			step := 1
			if polls > 40 {
				step = polls / 40
			}
			for n := 1; n <= polls; n += step {
				ctx := faultpool.CancelAtCheck(n)
				us, err := h.UpdateCtx(ctx, b, nil)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancel at poll %d: err = %v, want context.Canceled", n, err)
				}
				if us != (hier.UpdateStats{}) {
					t.Fatalf("cancel at poll %d: non-zero UpdateStats %+v", n, us)
				}
				if fp := fpHier(h); fp != before {
					t.Fatalf("cancel at poll %d: hierarchy mutated (%#x != %#x)", n, fp, before)
				}
			}

			// Clean retry commits; it must equal a from-scratch build on the
			// updated graph.
			if _, err := h.UpdateCtx(nil, b, nil); err != nil {
				t.Fatalf("retry update: %v", err)
			}
			newG, _, err := graph.ApplyBatch(g, b)
			if err != nil {
				t.Fatalf("ApplyBatch: %v", err)
			}
			fresh, err := hier.BuildHierarchy(hierConfig(pool, w, nil), newG, nil)
			if err != nil {
				t.Fatalf("fresh build: %v", err)
			}
			if got, want := fpHier(h), fpHier(fresh); got != want {
				t.Fatalf("post-retry hierarchy %#x != from-scratch build %#x", got, want)
			}
		})
	}
}

// TestHierarchyUpdatePanicUntouched drives panics into an update both
// through the context (boundary poll) and through the pool (slot fault)
// and asserts the same untouched-on-failure contract, including that the
// pool and the hierarchy absorb a clean retry afterwards.
func TestHierarchyUpdatePanicUntouched(t *testing.T) {
	g := chaosGraph()
	b := chaosBatch(g)
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()

			h, err := hier.BuildHierarchy(hierConfig(pool, w, nil), g, nil)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			before := fpHier(h)

			// Context-poll panic at a level boundary.
			us, err := h.UpdateCtx(faultpool.PanicAtCheck(2), b, nil)
			var pe *parallel.PanicError
			if !errors.As(err, &pe) || !errors.Is(err, faultpool.ErrInjected) {
				t.Fatalf("boundary panic: err = %v, want injected *parallel.PanicError", err)
			}
			if us != (hier.UpdateStats{}) {
				t.Fatalf("boundary panic: non-zero UpdateStats %+v", us)
			}
			if fp := fpHier(h); fp != before {
				t.Fatalf("boundary panic: hierarchy mutated")
			}

			// Pool slot panic inside one of the update's kernels.
			faultpool.PanicAtSlot(pool, 2, 0)
			us, err = h.UpdateCtx(nil, b, nil)
			faultpool.Clear(pool)
			if !errors.As(err, &pe) || !errors.Is(err, faultpool.ErrInjected) {
				t.Fatalf("slot panic: err = %v, want injected *parallel.PanicError", err)
			}
			if us != (hier.UpdateStats{}) {
				t.Fatalf("slot panic: non-zero UpdateStats %+v", us)
			}
			if fp := fpHier(h); fp != before {
				t.Fatalf("slot panic: hierarchy mutated")
			}

			// Clean retry on the same pool and hierarchy.
			if _, err := h.UpdateCtx(nil, b, nil); err != nil {
				t.Fatalf("retry update: %v", err)
			}
			newG, _, err := graph.ApplyBatch(g, b)
			if err != nil {
				t.Fatalf("ApplyBatch: %v", err)
			}
			fresh, err := hier.BuildHierarchy(hierConfig(pool, w, nil), newG, nil)
			if err != nil {
				t.Fatalf("fresh build: %v", err)
			}
			if got, want := fpHier(h), fpHier(fresh); got != want {
				t.Fatalf("post-retry hierarchy %#x != from-scratch build %#x", got, want)
			}
		})
	}
}

// TestWeightedHierarchyCancel cancels a weighted hierarchy build and
// update; the weighted path re-derives from scratch, so the untouched
// contract is the whole guarantee.
func TestWeightedHierarchyCancel(t *testing.T) {
	g := chaosGraph()
	wgr := graph.RandomWeights(g, 0.1, 1.0, 7)
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			pool := parallel.NewPool(w)
			defer pool.Close()

			cfg := hierConfig(pool, w, nil)
			cfg.NeedEdgeOrig = false // weighted annotations follow the same path; keep the workload lean
			// Weighted β is in units of inverse weighted distance; a flat β
			// does not converge — use the AKPW halving schedule.
			cfg.WBetaAt = func(l int, _ *graph.WeightedGraph) float64 { return 0.3 / float64(uint64(1)<<uint(l)) }
			h, err := hier.BuildWeightedHierarchy(cfg, wgr, nil)
			if err != nil {
				t.Fatalf("weighted build: %v", err)
			}
			before := fpHier(h)

			// Cancelled build returns nothing.
			ccfg := cfg
			ccfg.Ctx = faultpool.CancelAtCheck(2)
			if hc, err := hier.BuildWeightedHierarchy(ccfg, wgr, nil); !errors.Is(err, context.Canceled) || hc != nil {
				t.Fatalf("cancelled weighted build: h=%v err=%v", hc, err)
			}

			// Cancelled update leaves the hierarchy untouched.
			b := graph.Batch{Insert: []graph.Edge{{U: 1, V: 238}}, InsertW: []float64{0.5}}
			us, err := h.UpdateCtx(faultpool.CancelAtCheck(2), b, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled weighted update: err = %v", err)
			}
			if us != (hier.UpdateStats{}) {
				t.Fatalf("cancelled weighted update: non-zero UpdateStats %+v", us)
			}
			if fp := fpHier(h); fp != before {
				t.Fatalf("cancelled weighted update: hierarchy mutated")
			}

			// Clean retry succeeds.
			if _, err := h.UpdateCtx(nil, b, nil); err != nil {
				t.Fatalf("weighted retry: %v", err)
			}
		})
	}
}
