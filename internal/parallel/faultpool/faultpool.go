// Package faultpool is deterministic fault-injection test support for the
// pool/engine stack (docs/robustness.md). It has two halves:
//
//   - Pool hooks (PanicAtSubmission, PanicAtSlot, DelayAtSubmission) that
//     install a parallel.FaultHook firing at the Nth Run submission — the
//     way the chaos suite drives a panic or a schedule perturbation into
//     an arbitrary kernel of a partition or hierarchy build without
//     touching engine code.
//
//   - Poll-counting contexts (CancelAtCheck, PanicAtCheck) whose Err()
//     trips at the Nth boundary poll. The engines poll ctx.Err() exactly
//     once per round/level boundary, so "cancel at the Nth check" is
//     "cancel at the Nth boundary" — injection lands precisely between
//     rounds, never inside a claim kernel.
//
// Both halves are deterministic for a fixed workload: submission sequence
// numbers and boundary polls do not depend on scheduling (the submitting
// goroutine numbers submissions; boundary polls are serial engine code),
// so a fault injected at N lands at the same place every run.
//
// This package is imported by tests only; nothing in it is used by
// production code.
package faultpool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mpx/internal/parallel"
)

// ErrInjected is the panic value the injection hooks throw, wrapped so
// tests can assert errors.Is(err, ErrInjected) on the surfaced
// *parallel.PanicError.
var ErrInjected = errors.New("faultpool: injected fault")

// PanicAtSubmission installs a hook on p that panics with ErrInjected on
// the submitting goroutine at the start of the nth Run submission
// (1-based, counted from installation). The panic escapes Run directly —
// before any job state exists — exercising the engine-boundary recovery
// of the caller.
func PanicAtSubmission(p *parallel.Pool, n int64) {
	base := p.SubmitCount()
	p.SetFaultHook(&parallel.FaultHook{
		Submit: func(seq int64, slots int) {
			if seq == base+n {
				panic(fmt.Errorf("%w: submission %d", ErrInjected, n))
			}
		},
	})
}

// PanicAtSlot installs a hook on p that panics with ErrInjected inside
// slot `slot` of the nth Run submission, on whichever goroutine (worker or
// helping submitter) executes it — exercising the in-slot containment
// path: the panic must surface on the submitter as a *parallel.PanicError
// with the pool left fully reusable.
func PanicAtSlot(p *parallel.Pool, n int64, slot int) {
	base := p.SubmitCount()
	p.SetFaultHook(&parallel.FaultHook{
		Slot: func(seq int64, k int) {
			if seq == base+n && k == slot {
				panic(fmt.Errorf("%w: submission %d slot %d", ErrInjected, n, slot))
			}
		},
	})
}

// DelayAtSubmission installs a hook on p that sleeps d inside every slot
// of the nth Run submission — a pure schedule perturbation (slots complete
// in a different interleaving) under which all determinism-gated output
// must stay bit-identical.
func DelayAtSubmission(p *parallel.Pool, n int64, d time.Duration) {
	base := p.SubmitCount()
	p.SetFaultHook(&parallel.FaultHook{
		Slot: func(seq int64, k int) {
			if seq == base+n {
				time.Sleep(d)
			}
		},
	})
}

// Observe installs an empty hook on p. The pool numbers submissions only
// while a hook is installed (an unhooked pool pays nothing on the submit
// path), so a probe run under Observe is how tests measure a workload's
// submission count via Pool.SubmitCount before sizing injection points.
func Observe(p *parallel.Pool) { p.SetFaultHook(&parallel.FaultHook{}) }

// Clear uninstalls any hook from p.
func Clear(p *parallel.Pool) { p.SetFaultHook(nil) }

// CheckCtx is a context.Context whose cancellation is defined by poll
// count, not wall clock: Err() returns nil for the first n-1 calls and
// trips on the nth. Because the engines poll Err() exactly once per
// round/level boundary, CheckCtx turns "the Nth boundary" into a
// deterministic injection point. It deliberately has no Done channel —
// the engines' boundary polls are the only cancellation points, which is
// exactly the property under test.
type CheckCtx struct {
	n      int64
	polls  atomic.Int64
	panics bool
}

// CancelAtCheck returns a context whose Err() reports context.Canceled
// from the nth poll (1-based) onward. n <= 0 cancels on the first poll.
func CancelAtCheck(n int) *CheckCtx { return &CheckCtx{n: int64(n)} }

// PanicAtCheck returns a context whose Err() panics with ErrInjected at
// the nth poll (1-based) and every later one — modelling a poisoned
// request object; the engine boundaries must contain it like any other
// panic.
func PanicAtCheck(n int) *CheckCtx { return &CheckCtx{n: int64(n), panics: true} }

// Polls returns how many times Err() has been called — the probe tests
// use to size n to a workload's boundary count.
func (c *CheckCtx) Polls() int { return int(c.polls.Load()) }

// Err counts the poll and trips at the configured one.
func (c *CheckCtx) Err() error {
	if p := c.polls.Add(1); p >= c.n {
		if c.panics {
			panic(fmt.Errorf("%w: boundary poll %d", ErrInjected, p))
		}
		return context.Canceled
	}
	return nil
}

// Deadline implements context.Context: no deadline.
func (c *CheckCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// Done implements context.Context. The nil channel never fires; see the
// type comment.
func (c *CheckCtx) Done() <-chan struct{} { return nil }

// Value implements context.Context: no values.
func (c *CheckCtx) Value(any) any { return nil }
