package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolPrimitivesMatchSerial checks every pool primitive against its
// serial result at worker counts 1, 2 and 8, on sizes straddling the
// serial cutoff.
func TestPoolPrimitivesMatchSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, serialCutoff - 1, serialCutoff + 1, 50000} {
		for _, w := range []int{1, 2, 8} {
			hits := make([]int32, n)
			p.For(w, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("For n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}

			var covered int64
			p.ForRange(w, n, func(lo, hi int) { atomic.AddInt64(&covered, int64(hi-lo)) })
			if covered != int64(n) {
				t.Fatalf("ForRange n=%d w=%d covered %d", n, w, covered)
			}

			Fill(w, hits, 0)
			p.ForDynamic(w, n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("ForDynamic n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}

			got := p.ReduceInt64(w, n, func(i int) int64 { return int64(i) })
			if want := int64(n) * int64(n-1) / 2; got != want {
				t.Fatalf("ReduceInt64 n=%d w=%d: got %d want %d", n, w, got, want)
			}

			gotF := p.ReduceFloat64(w, n, func(i int) float64 { return 1 })
			if gotF != float64(n) {
				t.Fatalf("ReduceFloat64 n=%d w=%d: got %g", n, w, gotF)
			}

			if n > 0 {
				max, arg := p.MaxFloat64(w, n, func(i int) float64 { return float64(i % 1024) })
				wantMax := float64((n - 1) % 1024)
				if n > 1024 {
					wantMax = 1023
				}
				if max != wantMax || int(max) != arg%1024 {
					t.Fatalf("MaxFloat64 n=%d w=%d: got (%g,%d)", n, w, max, arg)
				}
			}

			data := make([]int64, n)
			for i := range data {
				data[i] = 1
			}
			if total := p.ExclusiveScan(w, data); total != int64(n) {
				t.Fatalf("ExclusiveScan n=%d w=%d total %d", n, w, total)
			}
			for i, v := range data {
				if v != int64(i) {
					t.Fatalf("ExclusiveScan n=%d w=%d: data[%d]=%d", n, w, i, v)
				}
			}

			packed := p.Pack(w, n, func(i int) bool { return i%3 == 0 })
			if want := (n + 2) / 3; len(packed) != want {
				t.Fatalf("Pack n=%d w=%d: %d elements want %d", n, w, len(packed), want)
			}
			for i, v := range packed {
				if v != uint32(3*i) {
					t.Fatalf("Pack n=%d w=%d: packed[%d]=%d", n, w, i, v)
				}
			}
		}
	}
}

// TestPoolPackIntoReusesBuffer verifies that PackInto reuses a buffer of
// sufficient capacity and still produces the exact filter output.
func TestPoolPackIntoReusesBuffer(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 30000
	buf := make([]uint32, 0, n)
	for iter := 0; iter < 3; iter++ {
		out := p.PackInto(4, n, func(i int) bool { return i%2 == 0 }, buf)
		if len(out) != n/2 {
			t.Fatalf("iter %d: got %d want %d", iter, len(out), n/2)
		}
		if cap(buf) > 0 && &out[0] != &buf[:1][0] {
			t.Fatalf("iter %d: PackInto did not reuse the buffer", iter)
		}
		buf = out[:0]
	}
}

// TestPoolConcat checks scan-based concatenation against a serial append,
// including buffer reuse.
func TestPoolConcat(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	bufs := make([][]uint32, 7)
	next := uint32(0)
	for k := range bufs {
		for j := 0; j < 1000*k; j++ {
			bufs[k] = append(bufs[k], next)
			next++
		}
	}
	dst := p.Concat(8, nil, bufs)
	if len(dst) != int(next) {
		t.Fatalf("got %d elements want %d", len(dst), next)
	}
	for i, v := range dst {
		if v != uint32(i) {
			t.Fatalf("dst[%d]=%d", i, v)
		}
	}
	// Reuse: concatenating into the same backing array must not allocate a
	// new one.
	dst2 := p.Concat(8, dst[:0], bufs)
	if &dst2[0] != &dst[0] {
		t.Error("Concat did not reuse dst's backing array")
	}
}

// TestPoolReuseAcrossRuns runs many consecutive loops on one pool and
// checks the persistent workers neither leak nor die: goroutine count
// stays flat and results stay exact.
func TestPoolReuseAcrossRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Warm up so the workers exist before the baseline count.
	p.For(4, 10000, func(int) {})
	base := runtime.NumGoroutine()
	for iter := 0; iter < 200; iter++ {
		got := p.ReduceInt64(4, 10000, func(i int) int64 { return 1 })
		if got != 10000 {
			t.Fatalf("iter %d: got %d", iter, got)
		}
	}
	if g := runtime.NumGoroutine(); g > base+4 {
		t.Errorf("goroutines grew from %d to %d across 200 runs", base, g)
	}
}

// TestPoolNestedAndConcurrentSubmission stresses the scheduler shape the
// round loops produce: multiple goroutines submitting concurrently, with
// loop bodies that themselves submit nested loops to the same pool. Run
// under -race in CI.
func TestPoolNestedAndConcurrentSubmission(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 12000
	want := int64(n) * int64(n-1) / 2
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				var total int64
				p.ForRange(3, n, func(lo, hi int) {
					// Nested submission from inside a running slot; the
					// inner range is large enough to take the parallel path.
					s := p.ReduceInt64(2, hi-lo, func(i int) int64 { return int64(lo + i) })
					atomic.AddInt64(&total, s)
				})
				if total != want {
					t.Errorf("nested sum: got %d want %d", total, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolClosedStillCompletes verifies primitives stay correct after
// Close: the submitter drains every slot itself.
func TestPoolClosedStillCompletes(t *testing.T) {
	p := NewPool(2)
	p.Close()
	// Give the workers a moment to exit so the test exercises the
	// no-helpers path deterministically.
	time.Sleep(10 * time.Millisecond)
	for iter := 0; iter < 10; iter++ {
		got := p.ReduceInt64(4, 10000, func(i int) int64 { return int64(i) })
		if want := int64(10000) * 9999 / 2; got != want {
			t.Fatalf("closed pool: got %d want %d", got, want)
		}
	}
}

// TestPoolNilReceiverUsesDefault checks the nil-pool convention every
// Options plumbing relies on.
func TestPoolNilReceiverUsesDefault(t *testing.T) {
	var p *Pool
	got := p.ReduceInt64(4, 5000, func(i int) int64 { return 2 })
	if got != 10000 {
		t.Fatalf("nil pool: got %d", got)
	}
	if p.Size() != Default().Size() {
		t.Errorf("nil pool size %d, default %d", p.Size(), Default().Size())
	}
}

// TestPoolDeterministicResults verifies the slot decomposition (not the
// physical scheduling) fixes results: repeated runs at each worker count
// produce bit-identical outputs for order-sensitive primitives.
func TestPoolDeterministicResults(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	n := 40000
	for _, w := range []int{1, 2, 8} {
		var first []uint32
		for rep := 0; rep < 5; rep++ {
			got := p.Pack(w, n, func(i int) bool { return i%7 == 3 })
			if rep == 0 {
				first = got
				continue
			}
			if len(got) != len(first) {
				t.Fatalf("w=%d rep=%d: length %d vs %d", w, rep, len(got), len(first))
			}
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("w=%d rep=%d: element %d differs", w, rep, i)
				}
			}
		}
	}
}

// TestBitsetMembersIntoMatchesMembers checks the parallel member scan
// against the serial one on a universe large enough for the parallel path.
func TestBitsetMembersIntoMatchesMembers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	n := serialCutoff * 64 * 2 // enough words for the parallel path
	b := NewBitset(n)
	for i := 0; i < n; i += 17 {
		b.Set(uint32(i))
	}
	want := b.Members(nil)
	for _, w := range []int{1, 2, 8} {
		got := b.MembersInto(p, w, nil)
		if len(got) != len(want) {
			t.Fatalf("w=%d: %d members want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("w=%d: member %d: got %d want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestBitsetClearAtomic checks the atomic clear against plain Clear.
func TestBitsetClearAtomic(t *testing.T) {
	b := NewBitset(128)
	for i := uint32(0); i < 128; i++ {
		b.Set(i)
	}
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := uint32(k); i < 128; i += 4 {
				b.ClearAtomic(i)
			}
		}(k)
	}
	wg.Wait()
	if got := b.Count(1); got != 0 {
		t.Errorf("%d bits survived concurrent ClearAtomic", got)
	}
}
