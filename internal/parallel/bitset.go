package parallel

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a bit-packed vertex set over a fixed universe [0, n), backed by
// []uint64 words. Compared with a []bool bitmap it touches 8x less memory
// per sweep and clears in O(n/64) word stores, which is what makes dense
// (bottom-up) traversal rounds profitable. Concurrent writers must use the
// atomic methods; reads concurrent with plain writes are the caller's
// responsibility, exactly as with a []bool bitmap.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set (plain read).
func (b *Bitset) Get(i uint32) bool {
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// Set sets bit i without synchronization. Safe only when no other goroutine
// touches the same word.
func (b *Bitset) Set(i uint32) {
	b.words[i>>6] |= 1 << (i & 63)
}

// Clear clears bit i without synchronization.
func (b *Bitset) Clear(i uint32) {
	b.words[i>>6] &^= 1 << (i & 63)
}

// SetAtomic sets bit i with an atomic OR, safe under concurrent writers to
// the same word.
func (b *Bitset) SetAtomic(i uint32) {
	atomic.OrUint64(&b.words[i>>6], 1<<(i&63))
}

// TrySetAtomic sets bit i atomically and reports whether this call flipped
// it (false when the bit was already set). It is the bit-packed equivalent
// of the CAS claim on an int32 array.
func (b *Bitset) TrySetAtomic(i uint32) bool {
	mask := uint64(1) << (i & 63)
	return atomic.OrUint64(&b.words[i>>6], mask)&mask == 0
}

// ClearAtomic clears bit i with an atomic AND, safe under concurrent
// writers to the same word (the parallel claim-reset path).
func (b *Bitset) ClearAtomic(i uint32) {
	atomic.AndUint64(&b.words[i>>6], ^(uint64(1) << (i & 63)))
}

// GetAtomic reports bit i with an atomic load.
func (b *Bitset) GetAtomic(i uint32) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(i&63)) != 0
}

// Reset clears every bit in parallel: O(n/64) word stores.
func (b *Bitset) Reset(workers int) {
	Fill(workers, b.words, 0)
}

// Count returns the number of set bits using a parallel popcount reduction.
func (b *Bitset) Count(workers int) int {
	return int(ReduceInt64(workers, len(b.words), func(i int) int64 {
		return int64(bits.OnesCount64(b.words[i]))
	}))
}

// Words exposes the backing word array (length (n+63)/64) for word-at-a-
// time consumers like parallel reductions; bit i lives at words[i>>6] bit
// i&63.
func (b *Bitset) Words() []uint64 { return b.words }

// Members appends the set bits (ascending) to out and returns it; pass nil
// to allocate. The scan skips zero words, so sparse sets materialize fast.
func (b *Bitset) Members(out []uint32) []uint32 {
	for wi, w := range b.words {
		base := uint32(wi) << 6
		for w != 0 {
			out = append(out, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// MembersInto is Members on a worker pool (nil p means Default): a
// two-pass parallel count/scan/write over word blocks. The output is
// identical to Members at every worker count; out is reused when its
// capacity suffices.
func (b *Bitset) MembersInto(p *Pool, workers int, out []uint32) []uint32 {
	nw := len(b.words)
	w := Workers(workers, nw)
	if w == 1 || nw < serialCutoff {
		return b.Members(out[:0])
	}
	p = p.orDefault()
	counts := make([]int64, w)
	p.Run(w, func(k int) {
		lo, hi := k*nw/w, (k+1)*nw/w
		var c int64
		for wi := lo; wi < hi; wi++ {
			c += int64(bits.OnesCount64(b.words[wi]))
		}
		counts[k] = c
	})
	var run int64
	for k := 0; k < w; k++ {
		v := counts[k]
		counts[k] = run
		run += v
	}
	out = GrowUint32(out[:0], int(run))
	p.Run(w, func(k int) {
		lo, hi := k*nw/w, (k+1)*nw/w
		pos := counts[k]
		for wi := lo; wi < hi; wi++ {
			word := b.words[wi]
			base := uint32(wi) << 6
			for ; word != 0; word &= word - 1 {
				out[pos] = base + uint32(bits.TrailingZeros64(word))
				pos++
			}
		}
	})
	return out
}

// ForEachWord calls body(wordIndex, word) for every nonzero word in
// parallel blocks; used for dense sweeps that want word-at-a-time access.
func (b *Bitset) ForEachWord(workers int, body func(wi int, w uint64)) {
	ForRange(workers, len(b.words), func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			if w := b.words[wi]; w != 0 {
				body(wi, w)
			}
		}
	})
}
