package parallel

// FaultHook instruments a pool for deterministic fault-injection tests
// (internal/parallel/faultpool). Both callbacks may be nil. A hook may
// panic (exercising the slot-panic containment path), sleep (exercising
// schedule perturbation), or cancel a context it captured. Production code
// never installs a hook; with no hook installed the only cost on the
// submission path is one atomic pointer load.
type FaultHook struct {
	// Submit runs on the submitting goroutine at the start of every Run
	// call (including the serial slots<=1 fast path), before any job state
	// is touched — a panic here propagates out of Run directly. seq is the
	// 1-based submission sequence number of the pool.
	Submit func(seq int64, slots int)
	// Slot runs on the executing goroutine (a pool worker or the helping
	// submitter) immediately before each slot body. A panic here is
	// captured exactly like a panic in the slot body itself.
	Slot func(seq int64, slot int)
}

// SetFaultHook installs h on the pool (nil uninstalls). Test support only:
// hooks observe every submission, so an installed hook serializes nothing
// but sees everything. Safe for concurrent use with running submissions —
// in-flight jobs may or may not observe a hook swap.
func (p *Pool) SetFaultHook(h *FaultHook) {
	p.orDefault().hook.Store(h)
}

// SubmitCount returns the number of Run submissions the pool has performed
// while a fault hook was installed (the seq values hooks observe). It is
// the probe fault-injection tests use to size their injection points.
func (p *Pool) SubmitCount() int64 {
	return p.orDefault().submitSeq.Load()
}
