package parallel

import (
	"math/rand"
	"sort"
	"testing"
)

func sort64Inputs() map[string][]uint64 {
	rng := rand.New(rand.NewSource(7))
	random := make([]uint64, 5000)
	for i := range random {
		random[i] = rng.Uint64()
	}
	dupHeavy := make([]uint64, 5000)
	for i := range dupHeavy {
		dupHeavy[i] = uint64(rng.Intn(7)) << 32
	}
	sorted := make([]uint64, 3000)
	for i := range sorted {
		sorted[i] = uint64(i) * 3
	}
	reversed := make([]uint64, 3000)
	for i := range reversed {
		reversed[i] = uint64(len(reversed) - i)
	}
	allEqual := make([]uint64, 2500)
	for i := range allEqual {
		allEqual[i] = 0xdeadbeefcafe
	}
	packed := make([]uint64, 4000)
	for i := range packed {
		packed[i] = uint64(rng.Intn(50))<<32 | uint64(rng.Intn(50))
	}
	return map[string][]uint64{
		"random": random, "dupHeavy": dupHeavy, "sorted": sorted,
		"reversed": reversed, "allEqual": allEqual, "packedPairs": packed,
	}
}

// TestSortUint64MatchesStdlib checks the key-only sort against sort.Slice
// at several worker counts, including inputs small enough for the serial
// path and large enough for the parallel passes.
func TestSortUint64MatchesStdlib(t *testing.T) {
	for name, input := range sort64Inputs() {
		want := append([]uint64(nil), input...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range []int{1, 2, 8} {
			got := append([]uint64(nil), input...)
			Default().SortUint64(w, got, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: got[%d]=%#x want %#x", name, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSortPairsStable checks that records with equal keys keep their
// original relative order (the property the hierarchy engine's
// representative-edge selection depends on) and that keys and payloads
// move together, at workers 1/2/8.
func TestSortPairsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 100, sortGrain - 1, sortGrain * 3} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(9)) << 40 // few distinct keys -> long equal runs
		}
		for _, w := range []int{1, 2, 8} {
			k := append([]uint64(nil), keys...)
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i)
			}
			Default().SortPairs(w, k, v, nil, nil)
			for i := 1; i < n; i++ {
				if k[i-1] > k[i] {
					t.Fatalf("n=%d workers=%d: keys unsorted at %d", n, w, i)
				}
				if k[i-1] == k[i] && v[i-1] >= v[i] {
					t.Fatalf("n=%d workers=%d: stability violated at %d (%d then %d)", n, w, i, v[i-1], v[i])
				}
			}
			for i := range k {
				if k[i] != keys[v[i]] {
					t.Fatalf("n=%d workers=%d: payload %d detached from key", n, w, i)
				}
			}
		}
	}
}

// TestSortUint64WorkerIndependent pins bit-identical output across worker
// counts on one fixed input (sortedness alone would mask a nondeterministic
// but still-sorted permutation of payloads).
func TestSortPairsWorkerIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := sortGrain * 2
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(64)) << 32
	}
	baseK := append([]uint64(nil), keys...)
	baseV := make([]uint32, n)
	for i := range baseV {
		baseV[i] = uint32(i)
	}
	Default().SortPairs(1, baseK, baseV, nil, nil)
	for _, w := range []int{2, 3, 8, 16} {
		k := append([]uint64(nil), keys...)
		v := make([]uint32, n)
		for i := range v {
			v[i] = uint32(i)
		}
		Default().SortPairs(w, k, v, nil, nil)
		for i := range k {
			if k[i] != baseK[i] || v[i] != baseV[i] {
				t.Fatalf("workers=%d diverges from workers=1 at %d", w, i)
			}
		}
	}
}

// TestSortUint64ScratchReuse checks that an undersized scratch is replaced
// rather than trusted, and that a reused scratch buffer produces the same
// result as a fresh one.
func TestSortUint64ScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scratch := make([]uint64, 0, 8)
	valScratch := make([]uint32, 0, 8)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() >> uint(rng.Intn(40))
		}
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i)
		}
		scratch = Grow(scratch, n)
		valScratch = Grow(valScratch, n)
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		Default().SortPairs(4, keys, vals, scratch, valScratch)
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("trial %d: keys[%d]=%#x want %#x", trial, i, keys[i], want[i])
			}
		}
	}
}
