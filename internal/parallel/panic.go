package parallel

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic captured inside a pool job slot (or at an engine
// containment boundary) and surfaced to the submitting goroutine as a
// typed value. Without this containment a panic inside a For/Reduce body
// executing on a pool worker would crash the whole process — worker
// goroutines have no caller to recover on — or, were it swallowed, strand
// the submitter in Wait forever. Instead the faulting slot records the
// first panic (with its stack), the job drains normally so the pool and
// its recycled descriptors stay fully usable, and Run re-panics with the
// *PanicError on the submitter, where ordinary defer/recover applies. The
// engine entry points (core.Partition, hier.Run/Update, ...) recover it
// into an error return.
type PanicError struct {
	// Value is the original value passed to panic.
	Value any
	// Stack is the stack of the goroutine that panicked, captured at
	// recover time (the innermost faulting slot for nested submissions).
	Stack []byte
}

// Error formats the panic value; the captured stack is available via
// e.Stack for diagnostics.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in pool job: %v", e.Value)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As chains
// (panic(err) is a common idiom); nil when the value is not an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered wraps a recovered panic value into a *PanicError, preserving
// an already-wrapped one (so a panic that crossed several pool layers
// keeps the innermost stack). It is the helper the engine containment
// boundaries use:
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = parallel.Recovered(r)
//		}
//	}()
func Recovered(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}
