package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recoverPanicError runs f and returns the *PanicError it panicked with,
// failing the test if f returned normally or panicked with something else.
func recoverPanicError(t *testing.T, f func()) *PanicError {
	t.Helper()
	var pe *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a panic, got normal return")
			}
			var ok bool
			pe, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("expected *PanicError, got %T: %v", r, r)
			}
		}()
		f()
	}()
	return pe
}

// TestRunPanicContained checks that a panic in one slot body surfaces on
// the submitter as a *PanicError with the faulting stack, and that the
// remaining slots are skipped while the job still drains completely.
func TestRunPanicContained(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var ran atomic.Int64
		pe := recoverPanicError(t, func() {
			p.Run(64, func(k int) {
				if k == 7 {
					panic("boom in slot 7")
				}
				ran.Add(1)
			})
		})
		if pe.Value != "boom in slot 7" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if !strings.Contains(pe.Error(), "boom in slot 7") {
			t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
		}
		if ran.Load() >= 64 {
			t.Fatalf("workers=%d: all 64 slots ran despite panic", workers)
		}
		// The pool must be fully reusable afterwards: descriptors recycle
		// with the panic record cleared, workers are still parked.
		for rep := 0; rep < 3; rep++ {
			var n atomic.Int64
			p.Run(128, func(k int) { n.Add(1) })
			if n.Load() != 128 {
				t.Fatalf("workers=%d rep=%d: reused pool ran %d/128 slots", workers, rep, n.Load())
			}
		}
		p.Close()
	}
}

// TestRunPanicSerialPath checks that the slots<=1 fast path propagates the
// body's panic unwrapped (no job machinery is involved), as documented.
func TestRunPanicSerialPath(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		if _, ok := r.(*PanicError); ok {
			t.Fatalf("serial path should panic unwrapped, got *PanicError")
		}
		if r != "serial boom" {
			t.Fatalf("panic value = %v", r)
		}
	}()
	p.Run(1, func(k int) { panic("serial boom") })
}

// TestRunPanicFirstWins checks that when several slots panic, exactly one
// PanicError is recorded and surfaced.
func TestRunPanicFirstWins(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	pe := recoverPanicError(t, func() {
		p.Run(32, func(k int) { panic(fmt.Sprintf("slot %d", k)) })
	})
	if !strings.HasPrefix(pe.Value.(string), "slot ") {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

// TestRunPanicNested checks that a panic escaping a nested submission keeps
// the innermost *PanicError (and its stack) across both pool layers.
func TestRunPanicNested(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	pe := recoverPanicError(t, func() {
		p.Run(4, func(outer int) {
			p.Run(8, func(inner int) {
				if outer == 1 && inner == 3 {
					panic("nested boom")
				}
			})
		})
	})
	if pe.Value != "nested boom" {
		t.Fatalf("nested panic value = %v (wrapped instead of preserved?)", pe.Value)
	}
}

// TestPanicErrorUnwrap checks that panicking with an error threads through
// errors.Is on the surfaced PanicError.
func TestPanicErrorUnwrap(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	sentinel := errors.New("sentinel failure")
	pe := recoverPanicError(t, func() {
		p.Run(16, func(k int) {
			if k == 5 {
				panic(sentinel)
			}
		})
	})
	if !errors.Is(pe, sentinel) {
		t.Fatalf("errors.Is(pe, sentinel) = false; Value = %v", pe.Value)
	}
}

// TestRunPanicPrimitives checks that panics inside the higher-level
// primitives (For, ForDynamic, ReduceInt64) are contained the same way and
// leave the primitives reusable.
func TestRunPanicPrimitives(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	recoverPanicError(t, func() {
		p.For(8, 10000, func(i int) {
			if i == 9999 {
				panic("for boom")
			}
		})
	})
	recoverPanicError(t, func() {
		p.ForDynamic(8, 10000, 64, func(i int) {
			if i == 5000 {
				panic("dyn boom")
			}
		})
	})
	got := p.ReduceInt64(8, 10000, func(i int) int64 { return 1 })
	if got != 10000 {
		t.Fatalf("ReduceInt64 after contained panics = %d", got)
	}
}

// TestPoolCloseRacedWithSubmissions closes the pool while submitters are
// mid-flight and checks every Run still completes all of its slots; under
// -race this also exercises the drain hand-off ordering. Regression test
// for hand-offs enqueued after Close's drain already ran.
func TestPoolCloseRacedWithSubmissions(t *testing.T) {
	for rep := 0; rep < 20; rep++ {
		p := NewPool(4)
		const submitters = 8
		var done atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for it := 0; it < 50; it++ {
					var n atomic.Int64
					p.Run(16, func(k int) { n.Add(1) })
					if n.Load() != 16 {
						t.Errorf("run completed %d/16 slots", n.Load())
						return
					}
					done.Add(1)
				}
			}()
		}
		close(start)
		runtime.Gosched()
		time.Sleep(time.Duration(rep%5) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()
		if done.Load() != submitters*50 {
			t.Fatalf("rep %d: %d/%d runs completed", rep, done.Load(), submitters*50)
		}
	}
}

// TestMaxFloat64EmptyRangePanics pins the documented precondition panic.
func TestMaxFloat64EmptyRangePanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("MaxFloat64 n=%d: expected panic", n)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "empty range") {
					t.Fatalf("MaxFloat64 n=%d: panic = %v", n, r)
				}
			}()
			p.MaxFloat64(2, n, func(i int) float64 { return 0 })
		}()
	}
}

// TestSortPairsLengthMismatchPanics pins the documented precondition panic.
func TestSortPairsLengthMismatchPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SortPairs: expected panic on length mismatch")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "length mismatch") {
			t.Fatalf("SortPairs: panic = %v", r)
		}
	}()
	p.SortPairs(2, make([]uint64, 4), make([]uint32, 3), nil, nil)
}

// TestFaultHookObservesSubmissions checks the fault-injection hook fires on
// every submission (including the serial fast path), numbers them, and that
// a hook panic in a slot is contained like a slot-body panic.
func TestFaultHookObservesSubmissions(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var submits, slots atomic.Int64
	p.SetFaultHook(&FaultHook{
		Submit: func(seq int64, n int) { submits.Add(1) },
		Slot:   func(seq int64, k int) { slots.Add(1) },
	})
	p.Run(1, func(k int) {})  // serial fast path
	p.Run(16, func(k int) {}) // pooled path
	if submits.Load() != 2 {
		t.Fatalf("Submit hook fired %d times, want 2", submits.Load())
	}
	if slots.Load() != 17 {
		t.Fatalf("Slot hook fired %d times, want 17", slots.Load())
	}
	if p.SubmitCount() != 2 {
		t.Fatalf("SubmitCount = %d, want 2", p.SubmitCount())
	}

	p.SetFaultHook(&FaultHook{
		Slot: func(seq int64, k int) {
			if k == 3 {
				panic("hook boom")
			}
		},
	})
	pe := recoverPanicError(t, func() { p.Run(8, func(k int) {}) })
	if pe.Value != "hook boom" {
		t.Fatalf("hook panic value = %v", pe.Value)
	}
	p.SetFaultHook(nil)
	var n atomic.Int64
	p.Run(8, func(k int) { n.Add(1) })
	if n.Load() != 8 {
		t.Fatalf("pool not reusable after hook uninstall: %d/8", n.Load())
	}
}
