package parallel

import (
	"sync/atomic"
	"testing"
)

const benchN = 1 << 20

func BenchmarkForWorkers1(b *testing.B)  { benchFor(b, 1) }
func BenchmarkForWorkers4(b *testing.B)  { benchFor(b, 4) }
func BenchmarkForWorkers16(b *testing.B) { benchFor(b, 16) }

func benchFor(b *testing.B, workers int) {
	data := make([]int64, benchN)
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		ForRange(workers, benchN, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j]++
			}
		})
	}
}

func BenchmarkForDynamic(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		var local int64
		ForDynamic(4, 100000, 512, func(j int) {
			atomic.AddInt64(&local, 1)
		})
		sink = local
	}
	_ = sink
}

func BenchmarkReduceInt64(b *testing.B) {
	data := make([]int64, benchN)
	for i := range data {
		data[i] = int64(i)
	}
	b.SetBytes(benchN * 8)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = ReduceInt64(4, benchN, func(j int) int64 { return data[j] })
	}
	_ = sink
}

func BenchmarkExclusiveScan(b *testing.B) {
	data := make([]int64, benchN)
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		for j := range data {
			data[j] = 1
		}
		ExclusiveScan(4, data)
	}
}

func BenchmarkPack(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Pack(4, benchN, func(j int) bool { return j%3 == 0 })
	}
}

func BenchmarkMinUint64Uncontended(b *testing.B) {
	var x uint64 = 1 << 63
	for i := 0; i < b.N; i++ {
		MinUint64(&x, uint64(1<<63)-uint64(i))
	}
}
