package parallel

import (
	"sync"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count(1) != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for _, i := range []uint32{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count(1) != 4 {
		t.Fatalf("Count=%d want 4", b.Count(1))
	}
	b.Clear(64)
	if b.Get(64) || b.Count(1) != 3 {
		t.Fatal("Clear failed")
	}
	members := b.Members(nil)
	want := []uint32{0, 63, 129}
	if len(members) != len(want) {
		t.Fatalf("Members=%v", members)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("Members=%v want %v", members, want)
		}
	}
	b.Reset(1)
	if b.Count(1) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBitsetTrySetAtomic(t *testing.T) {
	b := NewBitset(64)
	if !b.TrySetAtomic(7) {
		t.Fatal("first TrySetAtomic must win")
	}
	if b.TrySetAtomic(7) {
		t.Fatal("second TrySetAtomic must lose")
	}
	if !b.GetAtomic(7) {
		t.Fatal("bit not observable")
	}
}

// TestBitsetTrySetAtomicRace hammers one word from many goroutines: each
// bit must be won exactly once.
func TestBitsetTrySetAtomicRace(t *testing.T) {
	const n = 64
	const goroutines = 8
	b := NewBitset(n)
	wins := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for k := 0; k < goroutines; k++ {
		go func(k int) {
			defer wg.Done()
			for i := uint32(0); i < n; i++ {
				if b.TrySetAtomic(i) {
					wins[k] = append(wins[k], i)
				}
			}
		}(k)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += len(w)
	}
	if total != n {
		t.Fatalf("bits won %d times, want %d", total, n)
	}
	if b.Count(2) != n {
		t.Fatalf("Count=%d want %d", b.Count(2), n)
	}
}

func TestBitsetForEachWord(t *testing.T) {
	b := NewBitset(256)
	b.Set(5)
	b.Set(130)
	seen := make(map[int]uint64)
	var mu sync.Mutex
	b.ForEachWord(2, func(wi int, w uint64) {
		mu.Lock()
		seen[wi] = w
		mu.Unlock()
	})
	if len(seen) != 2 || seen[0] != 1<<5 || seen[2] != 1<<2 {
		t.Fatalf("ForEachWord saw %v", seen)
	}
}
