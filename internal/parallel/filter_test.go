package parallel

import (
	"testing"
)

// TestFilterUint32MatchesSerial checks the pool filter against the obvious
// serial loop on sizes straddling the serial cutoff and at several worker
// counts; order must be preserved and identical everywhere.
func TestFilterUint32MatchesSerial(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	for _, n := range []int{0, 1, 100, 2047, 2048, 10000} {
		src := make([]uint32, n)
		for i := range src {
			src[i] = uint32((i * 7) % 1000)
		}
		keep := func(v uint32) bool { return v%3 == 0 }
		var want []uint32
		for _, v := range src {
			if keep(v) {
				want = append(want, v)
			}
		}
		for _, w := range []int{1, 2, 8} {
			got := pool.FilterUint32(w, src, keep, nil)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: got %d kept, want %d", n, w, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: got[%d]=%d want %d", n, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFilterUint32ReusesDst verifies the destination buffer is reused when
// its capacity suffices (the cohort double-buffering contract).
func TestFilterUint32ReusesDst(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	src := make([]uint32, 5000)
	for i := range src {
		src[i] = uint32(i)
	}
	dst := make([]uint32, 0, len(src))
	out := pool.FilterUint32(4, src, func(v uint32) bool { return v%2 == 0 }, dst)
	if len(out) != 2500 {
		t.Fatalf("kept %d, want 2500", len(out))
	}
	if &out[0] != &dst[:1][0] {
		t.Error("dst backing array was not reused despite sufficient capacity")
	}
}
