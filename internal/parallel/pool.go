package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker-pool scheduler: a fixed set of long-lived
// goroutines parked on a channel receive (a futex wait under the hood),
// woken only when a parallel primitive submits work. Submitting a loop
// costs a few channel operations instead of spawning and destroying one
// goroutine per worker per call, which is what makes fine-grained
// synchronous rounds (BFS levels, EdgeMap sweeps, Partition claim rounds)
// cheap enough to run back to back.
//
// Scheduling model: every primitive call is turned into a job of `slots`
// logical work units (one per requested worker). The submitting goroutine
// offers the job to the parked workers and then participates itself;
// whoever is free grabs slot indices from an atomic counter until the job
// drains. Because results depend only on the slot decomposition — never on
// which physical worker executes a slot — every primitive keeps the
// package's determinism guarantee. The submitter always helps, so a job
// completes even if every pool worker is busy (or the pool is closed), and
// nested submission — a slot body invoking another primitive on the same
// pool — cannot deadlock: the inner call is drained by its own submitter
// plus any workers that free up.
//
// Job descriptors are recycled through a sync.Pool with reference counting
// (owner plus each enqueued hand-off holds a reference), so steady-state
// submission performs no O(n) allocation; the only per-call garbage is the
// closure passed in.
//
// A nil *Pool is valid in every method and means Default(), so plumbing an
// optional pool through Options structs needs no nil checks.
type Pool struct {
	size      int
	jobs      chan *job
	quit      chan struct{}
	jobPool   sync.Pool
	closeOnce sync.Once
	closed    atomic.Bool
	// hook, when non-nil, instruments every submission for fault-injection
	// tests (SetFaultHook); submitSeq numbers the submissions it observes.
	hook      atomic.Pointer[FaultHook]
	submitSeq atomic.Int64
}

// job is one submitted parallel loop: slots logical work units drained via
// an atomic counter by the owner and any helping workers.
type job struct {
	fn      func(k int)
	slots   int64
	next    atomic.Int64  // next slot index to claim
	pending atomic.Int64  // slots not yet completed
	refs    atomic.Int64  // owner + enqueued hand-offs still holding the job
	wake    chan struct{} // helper that completes the last slot -> owner
	pool    *Pool
	// panicked records the first panic captured in a slot body; Run
	// re-panics with it on the submitter once the job has drained. Slots
	// claimed after a panic is recorded are skipped (their results would be
	// discarded anyway), but still counted, so the drain protocol — and
	// with it the pool, the descriptor freelist and Wait — is unaffected
	// by a faulting body.
	panicked atomic.Pointer[PanicError]
}

// NewPool starts a pool of the given number of persistent workers;
// workers <= 0 means runtime.GOMAXPROCS(0). Call Close to release the
// workers when the pool is no longer needed (package Default is never
// closed).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size: workers,
		jobs: make(chan *job, workers),
		quit: make(chan struct{}),
	}
	p.jobPool.New = func() any {
		return &job{wake: make(chan struct{}, 1), pool: p}
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide shared pool (GOMAXPROCS workers),
// creating it on first use. The package-level primitives (For, Pack, ...)
// and every method invoked on a nil *Pool run on it, so one pool instance
// serves an entire run unless a caller explicitly constructs its own.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

func (p *Pool) orDefault() *Pool {
	if p == nil {
		return Default()
	}
	return p
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.orDefault().size }

// Close parks the pool permanently: the persistent workers exit. Primitives
// invoked afterwards still complete correctly — the submitting goroutine
// executes every slot itself. Close is safe to race with in-flight
// submissions: jobs already handed to workers drain normally, hand-offs the
// exiting workers never pick up are drained here or by the submitter that
// observes the pool closed, and every such Run still completes all slots
// before returning.
func (p *Pool) Close() {
	if p == nil {
		return // the shared default pool is never closed
	}
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		close(p.quit)
		// Workers may exit with hand-offs still queued; drain them —
		// helping each to completion and releasing it — so no job
		// descriptor or closure is pinned for the pool's lifetime.
		p.drainQueued()
	})
}

func (p *Pool) worker() {
	for {
		select {
		case j := <-p.jobs:
			if j.work() {
				j.wake <- struct{}{}
			}
			j.release()
		case <-p.quit:
			return
		}
	}
}

// work drains slots until the claim counter passes the end, reporting
// whether this goroutine completed the job's final slot. A slot body that
// panics is contained by runSlot: the panic is recorded on the job and the
// slot still counts as completed, so the drain protocol never stalls and
// the worker goroutine survives. Once a panic is recorded the remaining
// slots are claimed but not executed (fast-fail — the submitter is about
// to discard the computation and re-panic).
func (j *job) work() (closedJob bool) {
	slots := j.slots
	for {
		k := j.next.Add(1) - 1
		if k >= slots {
			return closedJob
		}
		if j.panicked.Load() == nil {
			j.runSlot(int(k))
		}
		if j.pending.Add(-1) == 0 {
			closedJob = true
		}
	}
}

// runSlot executes one slot body, converting a panic into the job's
// recorded *PanicError (first panic wins; a value that is already a
// *PanicError — a nested submission's fault — is kept as-is so the
// innermost stack survives).
func (j *job) runSlot(k int) {
	defer func() {
		if r := recover(); r != nil {
			j.panicked.CompareAndSwap(nil, Recovered(r))
		}
	}()
	j.fn(k)
}

// release drops one reference; the last holder returns the descriptor to
// the freelist. A job is never recycled while any hand-off of it is still
// queued or any goroutine is still inside work(), which is what makes the
// freelist safe under concurrent and nested submission.
func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.fn = nil
		j.pool.jobPool.Put(j)
	}
}

// Run executes fn(k) for every slot k in [0, slots) on the pool: parked
// workers are offered the job and the caller participates until all slots
// complete. Each slot runs exactly once; which goroutine runs it is
// unspecified. Run returns only after every slot has finished (all writes
// made by fn happen-before Run returns).
//
// Panic containment: if any slot body panics, the panic is recovered in
// the executing goroutine, the remaining slots are skipped, the job drains
// normally (the pool, its workers and the recycled descriptor all stay
// usable), and Run re-panics on the calling goroutine with the first
// captured *PanicError. Callers that need an error instead recover it at
// their boundary (parallel.Recovered); on the serial slots <= 1 path the
// body's panic propagates unwrapped, so boundaries must recover any value,
// not just *PanicError. After a contained panic the slot coverage is
// partial by design — the computation's outputs must be discarded.
func (p *Pool) Run(slots int, fn func(k int)) {
	p = p.orDefault()
	if h := p.hook.Load(); h != nil {
		seq := p.submitSeq.Add(1)
		if h.Submit != nil {
			h.Submit(seq, slots)
		}
		if h.Slot != nil {
			inner := fn
			fn = func(k int) { h.Slot(seq, k); inner(k) }
		}
	}
	if slots <= 1 {
		if slots == 1 {
			fn(0)
		}
		return
	}
	j := p.jobPool.Get().(*job)
	j.fn = fn
	j.slots = int64(slots)
	j.next.Store(0)
	j.pending.Store(int64(slots))
	j.panicked.Store(nil)
	offers := p.size
	if offers > slots-1 {
		offers = slots - 1
	}
	if p.closed.Load() {
		// No worker will ever drain the channel; queueing would pin the
		// closure (and everything it captures) for the pool's lifetime.
		offers = 0
	}
	// The reference count must cover every planned hand-off before the
	// first send: a worker may receive and release its reference while the
	// owner is still offering.
	j.refs.Store(int64(offers) + 1)
	sent := 0
	for ; sent < offers; sent++ {
		select {
		case p.jobs <- j:
		default:
			// Every worker is already busy or has a queued offer; the
			// remaining slots drain through the participants we have.
			goto offered
		}
	}
offered:
	if sent < offers {
		j.refs.Add(int64(sent - offers))
	}
	if sent > 0 && p.closed.Load() {
		// Close raced with the sends above: its drain may have run before
		// our hand-offs landed, and the exiting workers may never receive
		// them. Drain whatever is queued ourselves, acting exactly like a
		// worker (complete, signal, release), so no descriptor or closure —
		// ours or a concurrent submitter's — is pinned for the pool's
		// lifetime. Seen-closed ordering guarantees Close's store happened
		// before this load, so anything it missed is still in the channel.
		p.drainQueued()
	}
	if !j.work() {
		// Helpers still own claimed slots; the one that completes the last
		// slot signals wake.
		<-j.wake
	}
	pe := j.panicked.Load()
	j.release()
	if pe != nil {
		panic(pe)
	}
}

// drainQueued empties the job channel, standing in for the exited workers:
// each received hand-off is helped to completion and released. Called by
// Close and by submitters that observe the pool closed after enqueueing.
func (p *Pool) drainQueued() {
	for {
		select {
		case j := <-p.jobs:
			if j.work() {
				j.wake <- struct{}{}
			}
			j.release()
		default:
			return
		}
	}
}

// For runs body(i) for every i in [0, n) on the pool, splitting the index
// space into one contiguous block per logical worker.
func (p *Pool) For(workers, n int, body func(i int)) {
	p.ForRange(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange splits [0, n) into one contiguous block per logical worker and
// runs body(lo, hi) on each block.
func (p *Pool) ForRange(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		body(0, n)
		return
	}
	p.orDefault().Run(w, func(k int) {
		body(k*n/w, (k+1)*n/w)
	})
}

// ForDynamic runs body(i) for i in [0, n) with dynamic chunk scheduling:
// participants repeatedly grab chunks of the given size from a shared
// counter. chunk <= 0 picks a default.
func (p *Pool) ForDynamic(workers, n, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if chunk <= 0 {
		chunk = 256
	}
	if w == 1 || n < serialCutoff {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	p.orDefault().Run(w, func(int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	})
}

// ReduceInt64 computes the sum over i in [0, n) of f(i) with per-slot
// partials combined in slot order (deterministic for a fixed worker count).
func (p *Pool) ReduceInt64(workers, n int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var s int64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]int64, w)
	p.orDefault().Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		var s int64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[k] = s
	})
	var s int64
	for _, v := range partial {
		s += v
	}
	return s
}

// ReduceFloat64 is ReduceInt64 for float64 values; the fixed combine order
// keeps results deterministic for a fixed worker count.
func (p *Pool) ReduceFloat64(workers, n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]float64, w)
	p.orDefault().Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[k] = s
	})
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

type fpair struct {
	v float64
	i int
}

// MaxFloat64 returns the maximum of f(i) over [0, n) and the smallest index
// attaining it. n must be >= 1: an empty range has no maximum, and the call
// panics with "parallel: MaxFloat64 over empty range" rather than invent a
// sentinel that could be mistaken for data.
func (p *Pool) MaxFloat64(workers, n int, f func(i int) float64) (max float64, argmax int) {
	if n <= 0 {
		panic("parallel: MaxFloat64 over empty range")
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		best := fpair{f(0), 0}
		for i := 1; i < n; i++ {
			if v := f(i); v > best.v {
				best = fpair{v, i}
			}
		}
		return best.v, best.i
	}
	partial := make([]fpair, w)
	p.orDefault().Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		best := fpair{f(lo), lo}
		for i := lo + 1; i < hi; i++ {
			if v := f(i); v > best.v {
				best = fpair{v, i}
			}
		}
		partial[k] = best
	})
	best := partial[0]
	for _, q := range partial[1:] {
		if q.v > best.v {
			best = q
		}
	}
	return best.v, best.i
}

// ExclusiveScan replaces data with its exclusive prefix sum and returns the
// total, using the classic two-pass blocked algorithm on the pool.
func (p *Pool) ExclusiveScan(workers int, data []int64) int64 {
	n := len(data)
	if n == 0 {
		return 0
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		var run int64
		for i := 0; i < n; i++ {
			v := data[i]
			data[i] = run
			run += v
		}
		return run
	}
	p = p.orDefault()
	blockSum := make([]int64, w)
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		var s int64
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		blockSum[k] = s
	})
	var run int64
	for k := 0; k < w; k++ {
		v := blockSum[k]
		blockSum[k] = run
		run += v
	}
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		local := blockSum[k]
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = local
			local += v
		}
	})
	return run
}

// Pack returns the values v in [0, n) (in increasing order) for which
// keep(v) is true.
func (p *Pool) Pack(workers, n int, keep func(i int) bool) []uint32 {
	return p.PackInto(workers, n, keep, nil)
}

// PackInto is Pack writing into dst (reused when its capacity suffices,
// grown otherwise); it returns the filled slice. The two-pass offset-scan
// structure makes the output order identical at every worker count.
func (p *Pool) PackInto(workers, n int, keep func(i int) bool, dst []uint32) []uint32 {
	if n <= 0 {
		return dst[:0]
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		out := dst[:0]
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	p = p.orDefault()
	counts := make([]int64, w)
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		var c int64
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[k] = c
	})
	var run int64
	for k := 0; k < w; k++ {
		v := counts[k]
		counts[k] = run
		run += v
	}
	out := GrowUint32(dst, int(run))
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		pos := counts[k]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[pos] = uint32(i)
				pos++
			}
		}
	})
	return out
}

// FilterUint32 writes the elements of src for which keep is true into dst
// (reused when its capacity suffices), preserving src order, and returns
// the filled slice. Like PackInto it is a two-pass count/scan/copy, so the
// output is identical at every worker count; keep is therefore invoked
// twice per element and concurrently from pool workers — it must be pure
// and safe for concurrent use. src and dst must not overlap.
func (p *Pool) FilterUint32(workers int, src []uint32, keep func(uint32) bool, dst []uint32) []uint32 {
	n := len(src)
	if n == 0 {
		return dst[:0]
	}
	w := Workers(workers, n)
	if w == 1 || n < serialCutoff {
		out := dst[:0]
		for _, v := range src {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out
	}
	p = p.orDefault()
	counts := make([]int64, w)
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		var c int64
		for _, v := range src[lo:hi] {
			if keep(v) {
				c++
			}
		}
		counts[k] = c
	})
	var run int64
	for k := 0; k < w; k++ {
		v := counts[k]
		counts[k] = run
		run += v
	}
	out := GrowUint32(dst, int(run))
	p.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		pos := counts[k]
		for _, v := range src[lo:hi] {
			if keep(v) {
				out[pos] = v
				pos++
			}
		}
	})
	return out
}

// Concat appends the contents of bufs (in buffer order) to dst with one
// pre-sized grow, an offset scan, and a parallel per-buffer copy — the
// scan-based frontier compaction that replaces serial worker-order
// concatenation. dst is reused when capacity suffices.
func (p *Pool) Concat(workers int, dst []uint32, bufs [][]uint32) []uint32 {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return dst
	}
	base := len(dst)
	dst = GrowUint32(dst, base+total)
	if total < serialCutoff || Workers(workers, len(bufs)) == 1 {
		off := base
		for _, b := range bufs {
			copy(dst[off:], b)
			off += len(b)
		}
		return dst
	}
	p.orDefault().Run(len(bufs), func(k int) {
		// Buffer counts are small (one per logical worker), so each slot
		// recomputes its offset instead of allocating a scan array.
		off := base
		for i := 0; i < k; i++ {
			off += len(bufs[i])
		}
		copy(dst[off:], bufs[k])
	})
	return dst
}

// GrowUint32 resizes s to length n, reusing its backing array when the
// capacity suffices and preserving the prefix otherwise.
func GrowUint32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]uint32, n)
	copy(out, s)
	return out
}

// FillPool sets every element of data to v using the given pool (nil means
// Default). It is the pool-explicit form of Fill.
func FillPool[T any](p *Pool, workers int, data []T, v T) {
	p.ForRange(workers, len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = v
		}
	})
}
