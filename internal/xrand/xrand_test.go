package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the published SplitMix64 algorithm, seed 0.
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMixDistinctKeys(t *testing.T) {
	seen := make(map[uint64]uint64)
	for k := uint64(0); k < 10000; k++ {
		v := Mix(1, k)
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: keys %d and %d both map to %#x", prev, k, v)
		}
		seen[v] = k
	}
}

func TestFloat64InRange(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestUniform01Properties(t *testing.T) {
	f := func(seed, key uint64) bool {
		u := Uniform01(seed, key)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := NewSplitMix64(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %g", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSplitMix64(0).Intn(0)
}

func TestExpMeanAndPositivity(t *testing.T) {
	const n = 200000
	rate := 0.25
	var sum float64
	for k := uint64(0); k < n; k++ {
		x := Exp(9, k, rate)
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("bad exponential draw: %g", x)
		}
		sum += x
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean %g, want ~%g", mean, want)
	}
}

func TestExpMemorylessTail(t *testing.T) {
	// P[X > t] = exp(-rate t): check the empirical tail at a few points.
	const n = 100000
	rate := 1.0
	for _, tail := range []float64{0.5, 1, 2} {
		count := 0
		for k := uint64(0); k < n; k++ {
			if Exp(123, k, rate) > tail {
				count++
			}
		}
		want := math.Exp(-rate * tail)
		got := float64(count) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("tail %g: got %g want %g", tail, got, want)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Exp(0, 0, 0)
}

func TestExpSeqMatchesDistribution(t *testing.T) {
	s := NewSplitMix64(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.ExpSeq(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("ExpSeq mean %g, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(11)
	for _, n := range []int{0, 1, 2, 17, 1000} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	s := NewSplitMix64(13)
	p := s.Perm32(500)
	seen := make([]bool, 500)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in Perm32")
		}
		seen[v] = true
	}
}

func TestPermUnbiasedFirstElement(t *testing.T) {
	const n, draws = 5, 50000
	counts := make([]int, n)
	s := NewSplitMix64(17)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("position 0 value %d: count %d too far from %g", i, c, want)
		}
	}
}

func TestPCG32Deterministic(t *testing.T) {
	a := NewPCG32(1, 2)
	b := NewPCG32(1, 2)
	for i := 0; i < 50; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("PCG32 streams diverged")
		}
	}
	c := NewPCG32(1, 3)
	same := true
	a2 := NewPCG32(1, 2)
	for i := 0; i < 50; i++ {
		if a2.Uint32() != c.Uint32() {
			same = false
		}
	}
	if same {
		t.Error("different streams should differ")
	}
}

func TestPCG32Float64Range(t *testing.T) {
	p := NewPCG32(9, 1)
	for i := 0; i < 1000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("PCG32 Float64 out of range: %g", f)
		}
	}
}

func TestMix2IndependentStreams(t *testing.T) {
	// Draws for the same vertex under different stream ids must differ.
	equal := 0
	for v := uint64(0); v < 1000; v++ {
		if Mix2(7, v, 0) == Mix2(7, v, 1) {
			equal++
		}
	}
	if equal > 0 {
		t.Errorf("%d collisions between stream 0 and 1", equal)
	}
}

func TestBoundedUint64Unbiased(t *testing.T) {
	// n = 3 forces the rejection path frequently enough to exercise it.
	s := NewSplitMix64(21)
	counts := make([]int, 3)
	const draws = 90000
	for i := 0; i < draws; i++ {
		counts[s.Intn(3)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-draws/3) > 6*math.Sqrt(draws/3) {
			t.Errorf("bucket %d: count %d biased", b, c)
		}
	}
}
