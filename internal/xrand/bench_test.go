package xrand

import "testing"

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkMix(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mix(42, uint64(i))
	}
	_ = sink
}

func BenchmarkExpCounterBased(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Exp(7, uint64(i), 0.1)
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := NewSplitMix64(3)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(1000)
	}
	_ = sink
}

func BenchmarkPerm1024(b *testing.B) {
	s := NewSplitMix64(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Perm32(1024)
	}
}

func BenchmarkPCG32(b *testing.B) {
	p := NewPCG32(1, 1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = p.Uint32()
	}
	_ = sink
}
