package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesParallelMatchesSequential(t *testing.T) {
	cases := [][]Edge{
		nil,
		{{0, 1}, {1, 2}, {0, 2}},
		Grid2D(20, 30).Edges(),
		GNM(500, 2000, 7).Edges(),
		{{0, 0}, {1, 1}, {0, 1}}, // self loops dropped
		{{0, 1}, {0, 1}, {1, 0}}, // parallel edges kept
	}
	for ci, edges := range cases {
		n := 600
		seq, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			par, err := FromEdgesParallel(n, edges, w)
			if err != nil {
				t.Fatal(err)
			}
			if par.NumVertices() != seq.NumVertices() || par.NumEdges() != seq.NumEdges() {
				t.Fatalf("case %d workers %d: shape mismatch", ci, w)
			}
			for v := 0; v < n; v++ {
				a, b := seq.Neighbors(uint32(v)), par.Neighbors(uint32(v))
				if len(a) != len(b) {
					t.Fatalf("case %d: degree mismatch at %d", ci, v)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("case %d: adjacency mismatch at %d", ci, v)
					}
				}
			}
		}
	}
}

func TestFromEdgesParallelErrors(t *testing.T) {
	if _, err := FromEdgesParallel(2, []Edge{{0, 9}}, 2); err == nil {
		t.Error("expected range error")
	}
	if _, err := FromEdgesParallel(-1, nil, 2); err == nil {
		t.Error("expected negative-n error")
	}
}

func TestFromEdgesParallelQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		n := 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i]) % uint32(n), uint32(raw[i+1]) % uint32(n)})
		}
		a, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		b, err := FromEdgesParallel(n, edges, 3)
		if err != nil {
			return false
		}
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
