package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPermutePreservesStructure(t *testing.T) {
	g := Grid2D(6, 7)
	perm := RandomPermutation(g.NumVertices(), 3)
	p, err := Permute(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVertices() != g.NumVertices() || p.NumEdges() != g.NumEdges() {
		t.Fatal("shape changed")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if p.Degree(perm[v]) != g.Degree(uint32(v)) {
			t.Fatalf("degree of %d changed under relabeling", v)
		}
		for _, u := range g.Neighbors(uint32(v)) {
			if !p.HasEdge(perm[v], perm[u]) {
				t.Fatalf("edge {%d,%d} lost", v, u)
			}
		}
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	g := Path(4)
	if _, err := Permute(g, []uint32{0, 1}); err == nil {
		t.Error("expected length error")
	}
	if _, err := Permute(g, []uint32{0, 1, 1, 2}); err == nil {
		t.Error("expected duplicate error")
	}
	if _, err := Permute(g, []uint32{0, 1, 2, 9}); err == nil {
		t.Error("expected range error")
	}
}

func TestUnion(t *testing.T) {
	a := Path(4)                                 // 0-1-2-3
	b, _ := FromEdges(5, []Edge{{0, 2}, {3, 4}}) // extra chords
	u := Union(a, b)
	if u.NumVertices() != 5 {
		t.Errorf("n=%d", u.NumVertices())
	}
	if u.NumEdges() != 5 {
		t.Errorf("m=%d want 5", u.NumEdges())
	}
	if !u.HasEdge(0, 2) || !u.HasEdge(1, 2) || !u.HasEdge(3, 4) {
		t.Error("missing union edges")
	}
}

func TestAddRandomMatching(t *testing.T) {
	g := Path(100)
	h := AddRandomMatching(g, 10, 7)
	if h.NumEdges() != g.NumEdges()+10 {
		t.Errorf("added %d edges, want 10", h.NumEdges()-g.NumEdges())
	}
	tiny, _ := FromEdges(1, nil)
	if AddRandomMatching(tiny, 5, 0).NumEdges() != 0 {
		t.Error("single vertex cannot gain edges")
	}
}

func TestContractClusters(t *testing.T) {
	g := Grid2D(2, 4) // vertices 0..7
	// Two clusters: left half {0,1,4,5} label 9, right half {2,3,6,7} label 4.
	label := []uint32{9, 9, 4, 4, 9, 9, 4, 4}
	q, quot, err := ContractClusters(g, label)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumVertices() != 2 || q.NumEdges() != 1 {
		t.Errorf("quotient n=%d m=%d", q.NumVertices(), q.NumEdges())
	}
	if quot[0] == quot[2] {
		t.Error("different clusters mapped together")
	}
	if quot[0] != quot[1] || quot[2] != quot[3] {
		t.Error("same cluster split")
	}
	if _, _, err := ContractClusters(g, []uint32{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestSubdivide(t *testing.T) {
	g := Cycle(4)
	s := Subdivide(g, 3)
	if s.NumVertices() != 4+2*4 || s.NumEdges() != 12 {
		t.Errorf("n=%d m=%d", s.NumVertices(), s.NumEdges())
	}
	if !IsConnected(s) {
		t.Error("subdivision disconnected")
	}
	// k=1 copies the graph.
	c := Subdivide(g, 1)
	if c.NumEdges() != g.NumEdges() || c.NumVertices() != g.NumVertices() {
		t.Error("k=1 should copy")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := GNM(30, 80, 2)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestReadDIMACSFeatures(t *testing.T) {
	in := "c comment\np edge 3 2\ne 1 2\ne 2 3\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// Duplicate arcs ("a") collapse.
	in2 := "p sp 2 2\na 1 2\na 2 1\n"
	g2, err := ReadDIMACS(strings.NewReader(in2))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 1 {
		t.Errorf("duplicate arcs not collapsed: m=%d", g2.NumEdges())
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"e 1 2",                  // edge before header
		"p edge 2 1\ne 1 5",      // out of range
		"p edge 2 1\ne 0 1",      // 0 is invalid (1-based)
		"p edge x y\n",           // bad counts
		"p edge 2 1\nz 1 2",      // unknown record
		"",                       // no header
		"p edge 2 1\np edge 2 1", // duplicate header
		"p edge 2 1\ne 1",        // short edge
		"p edge -1 1",            // negative n
		"p edge 2 -5",            // negative m
		"p edge 2000000000 1",    // n beyond the allocation limit
	}
	for i, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadDIMACSWeightedFeatures(t *testing.T) {
	in := "c weighted\np sp 3 2\na 1 2 2.5\na 2 3\n"
	wg, err := ReadDIMACSWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if wg.NumVertices() != 3 || wg.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", wg.NumVertices(), wg.NumEdges())
	}
	if w, ok := wg.Weight(0, 1); !ok || w != 2.5 {
		t.Errorf("weight(0,1) = %v,%v, want 2.5", w, ok)
	}
	// The weightless line defaults to 1.
	if w, ok := wg.Weight(1, 2); !ok || w != 1 {
		t.Errorf("weight(1,2) = %v,%v, want 1", w, ok)
	}
	// Duplicate arcs collapse, last weight winning.
	in2 := "p sp 2 2\na 1 2 3\na 2 1 7\n"
	wg2, err := ReadDIMACSWeighted(strings.NewReader(in2))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := wg2.Weight(0, 1); wg2.NumEdges() != 1 || w != 7 {
		t.Errorf("duplicate arcs: m=%d w=%v, want 1/7", wg2.NumEdges(), w)
	}
}

// TestReadDIMACSWeightedErrors covers the weighted parser's hostile inputs.
// The non-finite cases matter most: NaN fails every ordered comparison and
// +Inf passes a bare w > 0 test, so a positivity check alone admits both
// and a single such weight poisons every downstream shortest-path distance.
func TestReadDIMACSWeightedErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"nan weight", "p sp 2 1\na 1 2 NaN\n", "finite positive"},
		{"plus inf weight", "p sp 2 1\na 1 2 +Inf\n", "finite positive"},
		{"inf weight", "p sp 2 1\na 1 2 Inf\n", "finite positive"},
		{"minus inf weight", "p sp 2 1\na 1 2 -Inf\n", "finite positive"},
		{"zero weight", "p sp 2 1\na 1 2 0\n", "finite positive"},
		{"negative weight", "p sp 2 1\na 1 2 -3\n", "finite positive"},
		{"unparsable weight", "p sp 2 1\na 1 2 heavy\n", "bad weight"},
		{"edge before header", "a 1 2 1\n", "before problem line"},
		{"out of range", "p sp 2 1\na 1 5 1\n", "out of 1..2"},
		{"zero vertex", "p sp 2 1\na 0 1 1\n", "out of 1..2"},
		{"duplicate header", "p sp 2 1\np sp 2 1\n", "duplicate problem line"},
		{"no header", "", "missing DIMACS problem line"},
		{"huge n", "p sp 2000000000 1\n", "exceeds limit"},
	}
	for _, tc := range cases {
		_, err := ReadDIMACSWeighted(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: parse succeeded, want error containing %q", tc.name, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestFromWeightedEdgesRejectsNonFinite pins the same invariant at the CSR
// layer, which ApplyBatchWeighted and every generator funnel through.
func TestFromWeightedEdgesRejectsNonFinite(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		if _, err := FromWeightedEdges(2, []WeightedEdge{{U: 0, V: 1, W: w}}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

// TestReadDIMACSHostileHeader feeds a header declaring an absurd edge count
// followed by a tiny body: the reader must clamp its pre-allocation (rather
// than OOM on make([]Edge, 0, m)) and still parse the file correctly.
func TestReadDIMACSHostileHeader(t *testing.T) {
	in := "p edge 10 999999999999\ne 1 2\ne 2 3\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 2 {
		t.Errorf("n=%d m=%d, want 10/2", g.NumVertices(), g.NumEdges())
	}
}
