package graph

import (
	"fmt"
	"math"
	"sort"
)

// Batch is a set of edge updates to apply to a graph: the unit of change of
// the incremental hierarchy maintenance layer (internal/hier,
// Hierarchy.Update). Semantically the deletes are applied first, then the
// inserts, against a simple (deduplicated) graph — exactly the
// FromEdgesDedup edge-set algebra — so an edge listed in both Delete and
// Insert ends up present.
type Batch struct {
	// Insert lists edges to add. Inserting an edge that already exists is a
	// no-op on an unweighted graph; on a weighted graph it updates the
	// edge's weight (an upsert). Self loops are dropped, duplicates within
	// the list collapse, and {U,V} is the same edge as {V,U}.
	Insert []Edge
	// InsertW optionally carries the weight of each Insert entry, aligned
	// by index. Required (with positive weights) when applying to a
	// weighted graph; ignored for unweighted graphs.
	InsertW []float64
	// Delete lists edges to remove. Deleting an absent edge is a no-op.
	Delete []Edge
}

// Len returns the number of update entries in the batch (before
// canonicalization).
func (b Batch) Len() int { return len(b.Insert) + len(b.Delete) }

// edgeKey packs a canonical (u < v) edge into a sortable uint64.
func edgeKey(e Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

// canonBatch canonicalizes one side of a batch: orients each edge U < V,
// drops self loops, sorts, and collapses duplicates. For weighted inserts
// the LAST duplicate's weight wins, matching FromWeightedEdges. Returns an
// error for out-of-range endpoints or non-positive weights (weighted).
func canonBatch(n int, edges []Edge, weights []float64) ([]Edge, []float64, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, nil, fmt.Errorf("graph: batch weight count %d does not match insert count %d", len(weights), len(edges))
	}
	out := make([]Edge, 0, len(edges))
	var outW []float64
	if weights != nil {
		outW = make([]float64, 0, len(edges))
	}
	for i, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, nil, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if weights != nil {
			w := weights[i]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, nil, fmt.Errorf("graph: batch insert (%d,%d) has non-positive weight %g", e.U, e.V, w)
			}
			outW = append(outW, w)
		}
		out = append(out, e)
	}
	// Stable sort by canonical key keeps the original order of duplicates,
	// so "last wins" is a backward scan over equal keys.
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return edgeKey(out[idx[i]]) < edgeKey(out[idx[j]]) })
	uniq := make([]Edge, 0, len(out))
	var uniqW []float64
	if weights != nil {
		uniqW = make([]float64, 0, len(out))
	}
	for i := 0; i < len(idx); i++ {
		// Take the last entry of each equal-key run.
		if i+1 < len(idx) && edgeKey(out[idx[i]]) == edgeKey(out[idx[i+1]]) {
			continue
		}
		uniq = append(uniq, out[idx[i]])
		if weights != nil {
			uniqW = append(uniqW, outW[idx[i]])
		}
	}
	return uniq, uniqW, nil
}

// searchEdge returns the position of v in the sorted neighbor list nb and
// whether it is present.
func searchEdge(nb []uint32, v uint32) (int, bool) {
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i, i < len(nb) && nb[i] == v
}

// deltaSet is the per-vertex adjacency change derived from a canonical
// batch: sorted neighbor ids to remove and to add.
type deltaSet struct {
	del []uint32
	add []uint32
	// addW aligns with add on weighted graphs; upd/updW are weight-only
	// changes (edge present, weight bits differ).
	addW []float64
	upd  []uint32
	updW []float64
}

// ApplyBatch applies b to g (deletes first, then inserts) and returns the
// updated graph together with the effective changes: the canonical edges
// actually removed and added (no-op entries dropped) and the sorted set of
// vertices whose adjacency changed. The input graph must be simple
// (deduplicated adjacency, as built by FromEdgesDedup or the generators);
// the result is then bit-identical to FromEdgesDedup over the updated edge
// list. g is not modified.
func ApplyBatch(g *Graph, b Batch) (*Graph, ApplyResult, error) {
	ins, _, err := canonBatch(g.NumVertices(), b.Insert, nil)
	if err != nil {
		return nil, ApplyResult{}, err
	}
	del, _, err := canonBatch(g.NumVertices(), b.Delete, nil)
	if err != nil {
		return nil, ApplyResult{}, err
	}
	res := ApplyResult{}
	deltas := make(map[uint32]*deltaSet)
	delta := func(v uint32) *deltaSet {
		d := deltas[v]
		if d == nil {
			d = &deltaSet{}
			deltas[v] = d
		}
		return d
	}
	inserted := make(map[uint64]bool, len(ins))
	for _, e := range ins {
		inserted[edgeKey(e)] = true
	}
	for _, e := range del {
		if inserted[edgeKey(e)] {
			continue // delete-then-insert of the same edge: net no-op
		}
		if _, ok := searchEdge(g.Neighbors(e.U), e.V); !ok {
			continue // absent: no-op
		}
		delta(e.U).del = append(delta(e.U).del, e.V)
		delta(e.V).del = append(delta(e.V).del, e.U)
		res.Deleted = append(res.Deleted, e)
	}
	for _, e := range ins {
		if _, ok := searchEdge(g.Neighbors(e.U), e.V); ok {
			continue // present: no-op (unweighted)
		}
		delta(e.U).add = append(delta(e.U).add, e.V)
		delta(e.V).add = append(delta(e.V).add, e.U)
		res.Inserted = append(res.Inserted, e)
	}
	out := rebuildCSR(g.offsets, g.adj, nil, deltas)
	res.Dirty = dirtyList(deltas)
	return &Graph{offsets: out.offsets, adj: out.adj}, res, nil
}

// ApplyResult reports what an ApplyBatch call actually changed.
type ApplyResult struct {
	// Inserted and Deleted are the effective canonical (U < V) edge
	// changes, sorted; entries of the batch that were already present
	// (inserts), absent (deletes), self loops, or duplicates are dropped.
	Inserted []Edge
	Deleted  []Edge
	// Reweighted lists edges whose weight changed without a structural
	// change (weighted upserts only).
	Reweighted []Edge
	// Dirty is the sorted set of vertices whose adjacency (or incident
	// weights) changed.
	Dirty []uint32
}

// Unchanged reports whether the batch was a structural and weight no-op.
func (r ApplyResult) Unchanged() bool {
	return len(r.Inserted) == 0 && len(r.Deleted) == 0 && len(r.Reweighted) == 0
}

// ApplyBatchWeighted is ApplyBatch for weighted graphs: Batch.InsertW must
// align with Batch.Insert and carry positive weights. Inserting an existing
// edge updates its weight (reported in ApplyResult.Reweighted when the bits
// change); the result is bit-identical to FromWeightedEdges over the
// updated weighted edge list.
func ApplyBatchWeighted(g *WeightedGraph, b Batch) (*WeightedGraph, ApplyResult, error) {
	if b.InsertW == nil && len(b.Insert) > 0 {
		return nil, ApplyResult{}, fmt.Errorf("graph: weighted batch requires InsertW weights for its %d inserts", len(b.Insert))
	}
	ins, insW, err := canonBatch(g.NumVertices(), b.Insert, b.InsertW)
	if err != nil {
		return nil, ApplyResult{}, err
	}
	del, _, err := canonBatch(g.NumVertices(), b.Delete, nil)
	if err != nil {
		return nil, ApplyResult{}, err
	}
	res := ApplyResult{}
	deltas := make(map[uint32]*deltaSet)
	delta := func(v uint32) *deltaSet {
		d := deltas[v]
		if d == nil {
			d = &deltaSet{}
			deltas[v] = d
		}
		return d
	}
	inserted := make(map[uint64]bool, len(ins))
	for _, e := range ins {
		inserted[edgeKey(e)] = true
	}
	for _, e := range del {
		if inserted[edgeKey(e)] {
			continue
		}
		if _, ok := searchEdge(g.adjOf(e.U), e.V); !ok {
			continue
		}
		du, dv := delta(e.U), delta(e.V)
		du.del = append(du.del, e.V)
		dv.del = append(dv.del, e.U)
		res.Deleted = append(res.Deleted, e)
	}
	for i, e := range ins {
		w := insW[i]
		if old, ok := g.Weight(e.U, e.V); ok {
			if math.Float64bits(old) == math.Float64bits(w) {
				continue // exact no-op
			}
			du, dv := delta(e.U), delta(e.V)
			du.upd = append(du.upd, e.V)
			du.updW = append(du.updW, w)
			dv.upd = append(dv.upd, e.U)
			dv.updW = append(dv.updW, w)
			res.Reweighted = append(res.Reweighted, e)
			continue
		}
		du, dv := delta(e.U), delta(e.V)
		du.add = append(du.add, e.V)
		du.addW = append(du.addW, w)
		dv.add = append(dv.add, e.U)
		dv.addW = append(dv.addW, w)
		res.Inserted = append(res.Inserted, e)
	}
	out := rebuildCSR(g.offsets, g.adj, g.weights, deltas)
	res.Dirty = dirtyList(deltas)
	return &WeightedGraph{offsets: out.offsets, adj: out.adj, weights: out.weights}, res, nil
}

func (g *WeightedGraph) adjOf(v uint32) []uint32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

func dirtyList(deltas map[uint32]*deltaSet) []uint32 {
	dirty := make([]uint32, 0, len(deltas))
	for v := range deltas {
		dirty = append(dirty, v)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	return dirty
}

type csrBuf struct {
	offsets []int64
	adj     []uint32
	weights []float64
}

// rebuildCSR merges the per-vertex deltas into a fresh CSR: untouched
// vertices copy their (sorted) adjacency verbatim, touched vertices merge
// their sorted add/del lists into it. weights is nil for unweighted graphs.
func rebuildCSR(offsets []int64, adj []uint32, weights []float64, deltas map[uint32]*deltaSet) csrBuf {
	n := len(offsets) - 1
	if n < 0 {
		n = 0
	}
	for _, d := range deltas {
		sortDelta(d)
	}
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		deg := offsets[v+1] - offsets[v]
		if d := deltas[uint32(v)]; d != nil {
			deg += int64(len(d.add) - len(d.del))
		}
		newOffsets[v+1] = newOffsets[v] + deg
	}
	newAdj := make([]uint32, newOffsets[n])
	var newW []float64
	if weights != nil {
		newW = make([]float64, newOffsets[n])
	}
	for v := 0; v < n; v++ {
		src := adj[offsets[v]:offsets[v+1]]
		dst := newAdj[newOffsets[v]:newOffsets[v+1]]
		var srcW, dstW []float64
		if weights != nil {
			srcW = weights[offsets[v]:offsets[v+1]]
			dstW = newW[newOffsets[v]:newOffsets[v+1]]
		}
		d := deltas[uint32(v)]
		if d == nil {
			copy(dst, src)
			if weights != nil {
				copy(dstW, srcW)
			}
			continue
		}
		// Three sorted streams merge into dst: the old adjacency minus the
		// delete list, interleaved with the add list; weight updates rewrite
		// in place as the old stream is copied.
		di, ai, ui, o := 0, 0, 0, 0
		for i, u := range src {
			if di < len(d.del) && d.del[di] == u {
				di++
				continue
			}
			for ai < len(d.add) && d.add[ai] < u {
				dst[o] = d.add[ai]
				if weights != nil {
					dstW[o] = d.addW[ai]
				}
				ai++
				o++
			}
			dst[o] = u
			if weights != nil {
				w := srcW[i]
				if ui < len(d.upd) && d.upd[ui] == u {
					w = d.updW[ui]
					ui++
				}
				dstW[o] = w
			}
			o++
		}
		for ai < len(d.add) {
			dst[o] = d.add[ai]
			if weights != nil {
				dstW[o] = d.addW[ai]
			}
			ai++
			o++
		}
		if o != len(dst) {
			panic("graph: batch delta merge produced inconsistent degree")
		}
	}
	return csrBuf{offsets: newOffsets, adj: newAdj, weights: newW}
}

// sortDelta sorts each delta stream by neighbor id, keeping addW/updW
// aligned. The streams are tiny (per-vertex batch fan-in), so simple sorts
// suffice.
func sortDelta(d *deltaSet) {
	sort.Slice(d.del, func(i, j int) bool { return d.del[i] < d.del[j] })
	if d.addW == nil {
		sort.Slice(d.add, func(i, j int) bool { return d.add[i] < d.add[j] })
	} else {
		idx := make([]int, len(d.add))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return d.add[idx[i]] < d.add[idx[j]] })
		add := make([]uint32, len(d.add))
		addW := make([]float64, len(d.add))
		for o, i := range idx {
			add[o], addW[o] = d.add[i], d.addW[i]
		}
		d.add, d.addW = add, addW
	}
	if len(d.upd) > 1 {
		idx := make([]int, len(d.upd))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return d.upd[idx[i]] < d.upd[idx[j]] })
		upd := make([]uint32, len(d.upd))
		updW := make([]float64, len(d.upd))
		for o, i := range idx {
			upd[o], updW[o] = d.upd[i], d.updW[i]
		}
		d.upd, d.updW = upd, updW
	}
}

// DiffCSR compares two graphs on the same vertex set and returns the
// canonical edges present only in old (del) and only in new (ins), plus
// whether the CSRs are bit-identical. The incremental hierarchy uses it to
// derive the next level's effective batch from a re-contracted quotient.
func DiffCSR(old, new_ *Graph) (ins, del []Edge, equal bool) {
	if old.NumVertices() != new_.NumVertices() {
		panic("graph: DiffCSR on different vertex counts")
	}
	equal = true
	n := old.NumVertices()
	for v := 0; v < n; v++ {
		a := old.Neighbors(uint32(v))
		b := new_.Neighbors(uint32(v))
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			switch {
			case j == len(b) || (i < len(a) && a[i] < b[j]):
				equal = false
				if a[i] > uint32(v) {
					del = append(del, Edge{U: uint32(v), V: a[i]})
				}
				i++
			case i == len(a) || b[j] < a[i]:
				equal = false
				if b[j] > uint32(v) {
					ins = append(ins, Edge{U: uint32(v), V: b[j]})
				}
				j++
			default:
				i++
				j++
			}
		}
	}
	return ins, del, equal
}
