package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Fuzz targets double as robustness tests: the seed corpus runs under
// plain `go test`, and `go test -fuzz` explores further. The parsers must
// never panic on arbitrary input, and successful parses must round-trip.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("")
	f.Add("# comment\n1 0\n")
	f.Add("2 1\n0 1\n")
	f.Add("5 0\n")
	f.Add("1 1\n0 0\n")
	f.Add("2 1\n0 999999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		// A successful parse must produce a graph that survives a write /
		// re-read round trip.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c x\np edge 1 0\n")
	f.Add("p sp 2 1\na 1 2\n")
	f.Add("p edge 0 0\n")
	f.Add("e 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadDIMACS(&buf); err != nil {
			t.Fatalf("re-read: %v", err)
		}
	})
}

func FuzzReadDIMACSWeighted(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 2.5\na 2 3\n")
	f.Add("p edge 2 1\ne 1 2 1e300\n")
	f.Add("p sp 2 1\na 1 2 NaN\n")
	f.Add("p sp 2 1\na 1 2 +Inf\n")
	f.Add("p sp 2 1\na 1 2 -0\n")
	f.Add("c x\np sp 1 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		wg, err := ReadDIMACSWeighted(strings.NewReader(in))
		if err != nil {
			return
		}
		// A successful parse may never smuggle a non-finite or non-positive
		// weight into the CSR — the invariant every weighted engine assumes.
		for v := 0; v < wg.NumVertices(); v++ {
			_, ws := wg.Neighbors(uint32(v))
			for _, w := range ws {
				if !(w > 0) || math.IsInf(w, 0) {
					t.Fatalf("parse accepted weight %v", w)
				}
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, Path(5))
	f.Add(buf.Bytes())
	f.Add([]byte("MPXG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
	})
}
