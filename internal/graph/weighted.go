package graph

import (
	"math"
	"sort"

	"mpx/internal/xrand"
)

// WeightedGraph is an immutable undirected graph in CSR form with positive
// float64 edge lengths, used by the weighted extension (paper Section 6).
type WeightedGraph struct {
	offsets []int64
	adj     []uint32
	weights []float64
}

// WeightedEdge is an undirected weighted edge.
type WeightedEdge struct {
	U, V uint32
	W    float64
}

// NumVertices returns n.
func (g *WeightedGraph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *WeightedGraph) NumEdges() int64 { return int64(len(g.adj)) / 2 }

// Degree returns the degree of v.
func (g *WeightedGraph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the neighbor ids and matching weights of v; both slices
// alias internal storage.
func (g *WeightedGraph) Neighbors(v uint32) ([]uint32, []float64) {
	return g.adj[g.offsets[v]:g.offsets[v+1]], g.weights[g.offsets[v]:g.offsets[v+1]]
}

// FromWeightedEdges builds a weighted CSR graph. Weights must be finite
// and positive (NaN fails every ordered comparison and +Inf passes a bare
// positivity test, and either poisons every downstream distance, so both
// are rejected explicitly); self loops are dropped.
func FromWeightedEdges(n int, edges []WeightedEdge) (*WeightedGraph, error) {
	plain := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.W <= 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return nil, errNonPositiveWeight
		}
		plain = append(plain, Edge{e.U, e.V})
	}
	base, err := FromEdges(n, plain)
	if err != nil {
		return nil, err
	}
	// Rebuild weights aligned with the (sorted) adjacency of base. A map from
	// (u,v) to weight handles the alignment; for parallel edges the last
	// weight wins on both directions symmetrically because we key on the
	// ordered pair.
	wmap := make(map[uint64]float64, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		wmap[uint64(a)<<32|uint64(b)] = e.W
	}
	weights := make([]float64, len(base.adj))
	for v := 0; v < base.NumVertices(); v++ {
		lo, hi := base.offsets[v], base.offsets[v+1]
		for i := lo; i < hi; i++ {
			w := base.adj[i]
			a, b := uint32(v), w
			if a > b {
				a, b = b, a
			}
			weights[i] = wmap[uint64(a)<<32|uint64(b)]
		}
	}
	return &WeightedGraph{offsets: base.offsets, adj: base.adj, weights: weights}, nil
}

var errNonPositiveWeight = errorString("graph: edge weight must be a finite positive number")

type errorString string

func (e errorString) Error() string { return string(e) }

// Unweighted returns the underlying unweighted graph (sharing storage).
func (g *WeightedGraph) Unweighted() *Graph {
	return &Graph{offsets: g.offsets, adj: g.adj}
}

// Weight returns the weight of edge {u, v} and whether the edge exists.
// Adjacency lists are sorted, so the lookup is a binary search.
func (g *WeightedGraph) Weight(u, v uint32) (float64, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	nb := g.adj[lo:hi]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if i == len(nb) || nb[i] != v {
		return 0, false
	}
	return g.weights[lo+int64(i)], true
}

// TotalWeight returns the sum of all undirected edge weights (each edge
// counted once, accumulated in canonical (v, adjacency) order).
func (g *WeightedGraph) TotalWeight() float64 {
	var total float64
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			if uint32(v) < g.adj[i] {
				total += g.weights[i]
			}
		}
	}
	return total
}

// WeightedEdges returns the undirected weighted edge list in canonical
// (U, V) order.
func (g *WeightedGraph) WeightedEdges() []WeightedEdge {
	edges := make([]WeightedEdge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			if u := g.adj[i]; uint32(v) < u {
				edges = append(edges, WeightedEdge{U: uint32(v), V: u, W: g.weights[i]})
			}
		}
	}
	return edges
}

// RandomWeights lifts an unweighted graph to a weighted one with independent
// uniform weights in [lo, hi), deterministic in seed.
func RandomWeights(g *Graph, lo, hi float64, seed uint64) *WeightedGraph {
	if lo <= 0 || hi < lo {
		panic("graph: RandomWeights needs 0 < lo <= hi")
	}
	weights := make([]float64, len(g.adj))
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.offsets[v]; i < g.offsets[v+1]; i++ {
			w := g.adj[i]
			a, b := uint32(v), w
			if a > b {
				a, b = b, a
			}
			// Same draw for both directions of the edge.
			u := xrand.Uniform01(seed, uint64(a)<<32|uint64(b))
			weights[i] = lo + u*(hi-lo)
		}
	}
	return &WeightedGraph{offsets: g.offsets, adj: g.adj, weights: weights}
}
