package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DIMACS format support: the de-facto exchange format for graph benchmark
// suites ("p edge n m" header, "e u v" edge lines, 1-based vertex ids,
// "c" comment lines). Having it here lets the CLI consume published
// instances directly.

// maxEdgeCapHint bounds how many edge slots the header's declared count may
// pre-allocate (16 Mi edges = 128 MiB); larger files grow normally.
const maxEdgeCapHint = 1 << 24

// maxDimacsVertices bounds the header's declared vertex count. Unlike the
// edge count, n cannot be clamped lazily — the CSR build allocates O(n)
// arrays — so an absurd n in a tiny hostile file must be rejected outright.
// 2^28 vertices (~2 GiB of offsets) is far beyond any real DIMACS text file.
const maxDimacsVertices = 1 << 28

// ReadDIMACS parses a DIMACS .col/.edge graph.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var m int64
	var edges []Edge
	header := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if header {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col" && fields[1] != "sp") {
				return nil, fmt.Errorf("graph: line %d: malformed problem line", lineNo)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("graph: line %d: bad n %q", lineNo, fields[2])
			}
			if nv > maxDimacsVertices {
				return nil, fmt.Errorf("graph: line %d: n %d exceeds limit %d", lineNo, nv, maxDimacsVertices)
			}
			me, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || me < 0 {
				return nil, fmt.Errorf("graph: line %d: bad m %q", lineNo, fields[3])
			}
			n, m = nv, me
			// The header's edge count is a hint, not a contract: a corrupt or
			// hostile header (e.g. "p edge 10 999999999999") must not OOM the
			// reader before a single edge line is parsed. Clamp the initial
			// capacity and let the slice grow to whatever the file holds.
			capHint := m
			if capHint > maxEdgeCapHint {
				capHint = maxEdgeCapHint
			}
			edges = make([]Edge, 0, capHint)
			header = true
		case "e", "a":
			if !header {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			u, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad u: %v", lineNo, err)
			}
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad v: %v", lineNo, err)
			}
			if u < 1 || v < 1 || int(u) > n || int(v) > n {
				return nil, fmt.Errorf("graph: line %d: vertex out of 1..%d", lineNo, n)
			}
			edges = append(edges, Edge{uint32(u - 1), uint32(v - 1)})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner fails while reading the line *after* the last one it
		// delivered; without the position a "token too long" on a multi-GB
		// instance is undebuggable.
		return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
	}
	if !header {
		return nil, fmt.Errorf("graph: missing DIMACS problem line")
	}
	// DIMACS files sometimes list each edge twice ("a" arcs); dedup.
	return FromEdgesDedup(n, edges)
}

// ReadDIMACSWeighted parses a DIMACS graph whose edge lines carry an
// optional weight ("e u v w" / "a u v w", the shortest-path .gr flavor);
// lines without a weight field default to weight 1. Weights must be
// finite and positive (NaN and ±Inf are rejected, not just non-positive
// values). Duplicate edge records (DIMACS files often list each arc
// twice) collapse to one edge, last weight winning — the FromWeightedEdges
// convention.
func ReadDIMACSWeighted(r io.Reader) (*WeightedGraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var m int64
	var edges []WeightedEdge
	header := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if header {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col" && fields[1] != "sp") {
				return nil, fmt.Errorf("graph: line %d: malformed problem line", lineNo)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("graph: line %d: bad n %q", lineNo, fields[2])
			}
			if nv > maxDimacsVertices {
				return nil, fmt.Errorf("graph: line %d: n %d exceeds limit %d", lineNo, nv, maxDimacsVertices)
			}
			me, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || me < 0 {
				return nil, fmt.Errorf("graph: line %d: bad m %q", lineNo, fields[3])
			}
			n, m = nv, me
			capHint := m
			if capHint > maxEdgeCapHint {
				capHint = maxEdgeCapHint
			}
			edges = make([]WeightedEdge, 0, capHint)
			header = true
		case "e", "a":
			if !header {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			u, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad u: %v", lineNo, err)
			}
			v, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad v: %v", lineNo, err)
			}
			if u < 1 || v < 1 || int(u) > n || int(v) > n {
				return nil, fmt.Errorf("graph: line %d: vertex out of 1..%d", lineNo, n)
			}
			w := 1.0
			if len(fields) >= 4 {
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
				}
				// NaN fails every ordered comparison and +Inf passes w > 0,
				// so the positivity check alone lets both through — and a
				// single non-finite weight poisons every downstream distance.
				if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
					return nil, fmt.Errorf("graph: line %d: weight %q is not a finite positive number", lineNo, fields[3])
				}
			}
			edges = append(edges, WeightedEdge{U: uint32(u - 1), V: uint32(v - 1), W: w})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
	}
	if !header {
		return nil, fmt.Errorf("graph: missing DIMACS problem line")
	}
	// Collapse duplicate records before the strict CSR build, keeping each
	// pair's last weight (matching the FromWeightedEdges alignment rule).
	// Same sort-based canonical dedup as fromEdges — a stable sort keeps
	// equal pairs in file order, so the last record of a run carries the
	// winning weight — rather than a map pre-sized to len(edges), which
	// allocated O(m) even for duplicate-free files.
	canon := edges[:0]
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		canon = append(canon, e)
	}
	sort.SliceStable(canon, func(i, j int) bool {
		if canon[i].U != canon[j].U {
			return canon[i].U < canon[j].U
		}
		return canon[i].V < canon[j].V
	})
	dedup := canon[:0]
	for i, e := range canon {
		if i > 0 && e.U == dedup[len(dedup)-1].U && e.V == dedup[len(dedup)-1].V {
			dedup[len(dedup)-1].W = e.W // last weight wins
			continue
		}
		dedup = append(dedup, e)
	}
	return FromWeightedEdges(n, dedup)
}

// WriteDIMACSWeighted writes g in the DIMACS shortest-path format
// ("p sp n m" header, "a u v w" arc lines, 1-based, each undirected edge
// listed once). Weights print via strconv.FormatFloat('g', -1), the
// shortest decimal that parses back to the identical float64 bits, so a
// read → write → read round trip is exact — the writer ReadDIMACSWeighted
// lacked (WriteDIMACS silently dropped the weights).
func WriteDIMACSWeighted(w io.Writer, g *WeightedGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		nb, ws := g.Neighbors(uint32(v))
		for i, u := range nb {
			if uint32(v) < u {
				if _, err := fmt.Fprintf(bw, "a %d %d %s\n", v+1, u+1, strconv.FormatFloat(ws[i], 'g', -1, 64)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteDIMACS writes g in DIMACS edge format (1-based).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
