package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"mpx/internal/xrand"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Errorf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := uint32(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d)=%d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
}

func TestFromEdgesDropsSelfLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 0}, {0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("m=%d, want 1", g.NumEdges())
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("expected range error")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("expected negative-n error")
	}
}

func TestFromEdgesDedup(t *testing.T) {
	g, err := FromEdgesDedup(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m=%d, want 2", g.NumEdges())
	}
}

func TestAdjacencySorted(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 4}, {0, 2}, {0, 1}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	g, err := FromEdges(4, orig)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	if len(got) != len(orig) {
		t.Fatalf("got %d edges, want %d", len(got), len(orig))
	}
	for _, e := range got {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v missing", e)
		}
	}
}

func TestGridCounts(t *testing.T) {
	g := Grid2D(10, 15)
	if g.NumVertices() != 150 {
		t.Errorf("n=%d", g.NumVertices())
	}
	want := int64(10*14 + 15*9)
	if g.NumEdges() != want {
		t.Errorf("m=%d want %d", g.NumEdges(), want)
	}
	if !IsConnected(g) {
		t.Error("grid should be connected")
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus2D(5, 7)
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(uint32(v)) != 4 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(uint32(v)))
		}
	}
}

func TestGrid3DCounts(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.NumVertices() != 60 {
		t.Errorf("n=%d", g.NumVertices())
	}
	want := int64(2*4*5 + 3*3*5 + 3*4*4)
	if g.NumEdges() != want {
		t.Errorf("m=%d want %d", g.NumEdges(), want)
	}
}

func TestPathCycleCounts(t *testing.T) {
	if g := Path(10); g.NumEdges() != 9 || !IsConnected(g) {
		t.Error("path wrong")
	}
	if g := Cycle(10); g.NumEdges() != 10 {
		t.Error("cycle wrong")
	}
}

func TestCompleteStarTree(t *testing.T) {
	if g := Complete(7); g.NumEdges() != 21 {
		t.Errorf("K7 m=%d", g.NumEdges())
	}
	if g := Star(8); g.NumEdges() != 7 || g.Degree(0) != 7 {
		t.Error("star wrong")
	}
	if g := BinaryTree(15); g.NumEdges() != 14 || !IsConnected(g) {
		t.Error("tree wrong")
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	if g.NumVertices() != 32 {
		t.Errorf("n=%d", g.NumVertices())
	}
	for v := 0; v < 32; v++ {
		if g.Degree(uint32(v)) != 5 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(uint32(v)))
		}
	}
	if g.NumEdges() != 80 {
		t.Errorf("m=%d", g.NumEdges())
	}
}

func TestGNMExactEdgeCount(t *testing.T) {
	g := GNM(100, 450, 3)
	if g.NumEdges() != 450 {
		t.Errorf("m=%d want 450", g.NumEdges())
	}
	if g.NumVertices() != 100 {
		t.Errorf("n=%d", g.NumVertices())
	}
}

func TestGNMDeterministic(t *testing.T) {
	a := GNM(50, 100, 9)
	b := GNM(50, 100, 9)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("GNM not deterministic")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(60, 4, 1)
	for v := 0; v < 60; v++ {
		if g.Degree(uint32(v)) != 4 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(uint32(v)))
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(200, 3, 4)
	if g.NumVertices() != 200 {
		t.Errorf("n=%d", g.NumVertices())
	}
	if !IsConnected(g) {
		t.Error("PA graph should be connected")
	}
	// Degree skew: max degree should clearly exceed the attachment count.
	if g.MaxDegree() <= 6 {
		t.Errorf("max degree %d suspiciously small", g.MaxDegree())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(8, 2000, 7)
	if g.NumVertices() != 256 {
		t.Errorf("n=%d", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 2000 {
		t.Errorf("m=%d", g.NumEdges())
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3)
	if g.NumVertices() != 40 || g.NumEdges() != 39 || !IsConnected(g) {
		t.Errorf("caterpillar n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRoadNetwork(t *testing.T) {
	g := RoadNetwork(20, 20, 0.9, 10, 3)
	if g.NumVertices() != 400 {
		t.Errorf("n=%d", g.NumVertices())
	}
	lc, ids := LargestComponent(g)
	if lc.NumVertices() == 0 || len(ids) != lc.NumVertices() {
		t.Error("largest component extraction broken")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := FromEdges(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	labels, count := ConnectedComponents(g)
	if count != 4 {
		t.Errorf("count=%d want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("component 0 mislabeled")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("component 1 mislabeled")
	}
	if labels[5] == labels[6] {
		t.Error("isolated vertices must be separate components")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid2D(4, 4)
	sub, ids, err := g.InducedSubgraph([]uint32{0, 1, 2, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 5 {
		t.Errorf("n=%d", sub.NumVertices())
	}
	// Edges among {0,1,2,4,5} in a 4x4 grid: 0-1,1-2,0-4,1-5,4-5 = 5 edges.
	if sub.NumEdges() != 5 {
		t.Errorf("m=%d want 5", sub.NumEdges())
	}
	if len(ids) != 5 {
		t.Errorf("ids=%v", ids)
	}
	if _, _, err := g.InducedSubgraph([]uint32{0, 0}); err == nil {
		t.Error("expected duplicate error")
	}
	if _, _, err := g.InducedSubgraph([]uint32{999}); err == nil {
		t.Error("expected range error")
	}
}

func TestTextIORoundTrip(t *testing.T) {
	g := GNM(40, 100, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryIORoundTrip(t *testing.T) {
	g := Grid2D(9, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"3",                     // short header
		"2 1\n0 1\n0 1",         // edge count mismatch
		"2 1\nx y",              // bad numbers
		"2 1\n0 9",              // out of range
		"not a header at all x", // malformed
	}
	for i, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n% also comment\n3 2\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("m=%d", g.NumEdges())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("BAD!xxxxxxxx"))); err == nil {
		t.Error("expected magic error")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("expected EOF error")
	}
}

func TestWeightedGraph(t *testing.T) {
	wg, err := FromWeightedEdges(3, []WeightedEdge{{0, 1, 2.5}, {1, 2, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if wg.NumVertices() != 3 || wg.NumEdges() != 2 {
		t.Errorf("shape: n=%d m=%d", wg.NumVertices(), wg.NumEdges())
	}
	nbrs, ws := wg.Neighbors(1)
	if len(nbrs) != 2 {
		t.Fatalf("deg(1)=%d", len(nbrs))
	}
	for i, u := range nbrs {
		want := 2.5
		if u == 2 {
			want = 1.0
		}
		if ws[i] != want {
			t.Errorf("weight(1,%d)=%g want %g", u, ws[i], want)
		}
	}
	if _, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, -1}}); err == nil {
		t.Error("expected weight error")
	}
}

func TestRandomWeightsSymmetric(t *testing.T) {
	g := Grid2D(5, 5)
	wg := RandomWeights(g, 1, 4, 9)
	for v := 0; v < wg.NumVertices(); v++ {
		nbrs, ws := wg.Neighbors(uint32(v))
		for i, u := range nbrs {
			back, bws := wg.Neighbors(u)
			found := false
			for j, x := range back {
				if x == uint32(v) && bws[j] == ws[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric weight on edge {%d,%d}", v, u)
			}
			if ws[i] < 1 || ws[i] >= 4 {
				t.Fatalf("weight %g out of range", ws[i])
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5)
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram %v", h)
	}
}

func TestFromEdgesQuick(t *testing.T) {
	// Degree sum always equals 2m; property over random edge lists.
	f := func(raw []uint16) bool {
		n := 50
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{uint32(raw[i]) % uint32(n), uint32(raw[i+1]) % uint32(n)})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		var degSum int64
		for v := 0; v < n; v++ {
			degSum += int64(g.Degree(uint32(v)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	rngCheck := func(a, b *Graph) bool {
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if !rngCheck(RMAT(7, 500, 1), RMAT(7, 500, 1)) {
		t.Error("RMAT not deterministic")
	}
	if !rngCheck(PreferentialAttachment(80, 2, 5), PreferentialAttachment(80, 2, 5)) {
		t.Error("PA not deterministic")
	}
	if !rngCheck(RoadNetwork(10, 10, 0.8, 4, 2), RoadNetwork(10, 10, 0.8, 4, 2)) {
		t.Error("RoadNetwork not deterministic")
	}
	_ = xrand.Mix(0, 0)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 5)
	if g.NumVertices() != 200 {
		t.Errorf("n=%d", g.NumVertices())
	}
	// Close to n*k edges (rewiring collisions may drop a few).
	if g.NumEdges() < 550 || g.NumEdges() > 600 {
		t.Errorf("m=%d, want ~600", g.NumEdges())
	}
	// p=0 gives the exact ring lattice: 2k-regular.
	lattice := WattsStrogatz(100, 2, 0, 1)
	for v := 0; v < 100; v++ {
		if lattice.Degree(uint32(v)) != 4 {
			t.Fatalf("lattice degree(%d)=%d", v, lattice.Degree(uint32(v)))
		}
	}
	// Determinism.
	a, b := WattsStrogatz(80, 2, 0.3, 9), WattsStrogatz(80, 2, 0.3, 9)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WattsStrogatz(4, 2, 0.1, 0) },
		func() { WattsStrogatz(100, 2, 1.5, 0) },
		func() { WattsStrogatz(100, 0, 0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
