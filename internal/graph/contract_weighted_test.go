package graph

import (
	"math"
	"math/rand"
	"testing"

	"mpx/internal/parallel"
)

// weightedGraphsEqual compares two weighted graphs bit for bit, including
// the IEEE bits of every weight.
func weightedGraphsEqual(a, b *WeightedGraph) bool {
	if a.NumVertices() != b.NumVertices() || len(a.adj) != len(b.adj) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			return false
		}
	}
	for i := range a.weights {
		if math.Float64bits(a.weights[i]) != math.Float64bits(b.weights[i]) {
			return false
		}
	}
	return true
}

// weightVariants lifts an unweighted graph into the weight regimes the
// weighted contraction must survive: generic uniform weights, all-equal
// weights (maximal FP tie density), and denormal weights (the sums stay
// denormal, where naive normalization tricks break).
func weightVariants(g *Graph) map[string]*WeightedGraph {
	uniform := RandomWeights(g, 0.5, 8, 77)
	equal := RandomWeights(g, 3, 3, 1) // lo == hi: every weight exactly 3
	denormal := RandomWeights(g, 1, 2, 5)
	// Scale into the denormal range: values are k·2^-1074 for small k.
	for i := range denormal.weights {
		denormal.weights[i] = float64(1+int(denormal.weights[i]*4)) * 5e-324
	}
	return map[string]*WeightedGraph{
		"uniform": uniform, "equal": equal, "denormal": denormal,
	}
}

// duplicateHeavyLabels assigns few distinct labels so almost every cut arc
// collapses onto one of a handful of quotient arcs — the regime where the
// run-sum order matters most.
func duplicateHeavyLabels(n, classes int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	label := make([]uint32, n)
	for v := range label {
		label[v] = uint32(rng.Intn(classes))
	}
	return label
}

// TestContractWeightedPoolMatchesSerial pins the pooled weighted
// contraction bit-identical — structure AND summed weight bits — to the
// serial map reference across weight regimes, label densities and worker
// counts 1/2/8.
func TestContractWeightedPoolMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	graphs := map[string]*Graph{
		"grid": Grid2D(30, 40),
		"gnm":  GNM(2000, 9000, 9),
		"path": Path(400),
	}
	for gname, g := range graphs {
		n := g.NumVertices()
		labelings := map[string][]uint32{
			"dup2":   duplicateHeavyLabels(n, 2, 1),
			"dup7":   duplicateHeavyLabels(n, 7, 2),
			"sparse": duplicateHeavyLabels(n, n/3+2, 3),
		}
		for wname, wg := range weightVariants(g) {
			for lname, label := range labelings {
				want, wantQuot, err := ContractWeightedClusters(wg, label)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 8} {
					sc := &ContractScratch{}
					got, gotQuot, err := ContractWeightedClustersPool(pool, workers, wg, label, sc)
					if err != nil {
						t.Fatal(err)
					}
					if !weightedGraphsEqual(want, got) {
						t.Fatalf("%s/%s/%s workers=%d: weighted quotient diverges from serial",
							gname, wname, lname, workers)
					}
					// Both directions of every quotient edge must carry
					// identical bits — asymmetry breaks push/pull
					// bit-identity of the weighted partition one level up.
					for v := 0; v < got.NumVertices(); v++ {
						nbrs, ws := got.Neighbors(uint32(v))
						for i, u := range nbrs {
							w2, ok := got.Weight(u, uint32(v))
							if !ok || math.Float64bits(w2) != math.Float64bits(ws[i]) {
								t.Fatalf("%s/%s/%s workers=%d: asymmetric quotient weight on (%d,%d)",
									gname, wname, lname, workers, v, u)
							}
						}
					}
					for v := range wantQuot {
						if wantQuot[v] != gotQuot[v] {
							t.Fatalf("%s/%s/%s workers=%d: quot[%d] = %d want %d",
								gname, wname, lname, workers, v, gotQuot[v], wantQuot[v])
						}
					}
				}
			}
		}
	}
}

// TestContractWeightedConservesWeight checks the AKPW invariant on exactly
// representable weights: every quotient arc's weight is the exact sum of
// the original cut arcs mapping onto it, and total weight is conserved
// (quotient total == cut total). Small-integer weights make float addition
// exact, so conservation can be asserted with == at every worker count.
func TestContractWeightedConservesWeight(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	g := GNM(1500, 7000, 4)
	n := g.NumVertices()
	wg := RandomWeights(g, 1, 2, 3)
	// Integer-valued weights in 1..16: sums of a few thousand of them are
	// exact in float64.
	for i := range wg.weights {
		wg.weights[i] = float64(1 + int(wg.weights[i]*971)%16)
	}
	for _, classes := range []int{2, 5, 40} {
		label := duplicateHeavyLabels(n, classes, int64(classes))
		// Exact per-quotient-arc expectation, independent accumulation.
		expect := make(map[uint64]float64)
		var cutTotal float64
		quotOf := func(quot []uint32) {
			for v := 0; v < n; v++ {
				nbrs, ws := wg.Neighbors(uint32(v))
				for i, u := range nbrs {
					if label[u] == label[v] {
						continue
					}
					key := uint64(quot[v])<<32 | uint64(quot[u])
					expect[key] += ws[i]
					if uint32(v) < u {
						cutTotal += ws[i]
					}
				}
			}
		}
		for _, workers := range []int{1, 2, 8} {
			q, quot, err := ContractWeightedClustersPool(pool, workers, wg, label, &ContractScratch{})
			if err != nil {
				t.Fatal(err)
			}
			if len(expect) == 0 {
				quotOf(quot)
			}
			var quotTotal float64
			for v := 0; v < q.NumVertices(); v++ {
				nbrs, ws := q.Neighbors(uint32(v))
				for i, u := range nbrs {
					key := uint64(v)<<32 | uint64(u)
					if ws[i] != expect[key] {
						t.Fatalf("classes=%d workers=%d: quotient arc (%d,%d) weight %g want %g",
							classes, workers, v, u, ws[i], expect[key])
					}
					if uint32(v) < u {
						quotTotal += ws[i]
					}
				}
			}
			if quotTotal != cutTotal {
				t.Fatalf("classes=%d workers=%d: quotient total %g != cut total %g",
					classes, workers, quotTotal, cutTotal)
			}
		}
	}
}

// TestCutWeightedSubgraphPoolMatchesFromWeightedEdges pins the weighted
// residual builder bit-identical to FromWeightedEdges over the filtered
// cut-edge list.
func TestCutWeightedSubgraphPoolMatchesFromWeightedEdges(t *testing.T) {
	pool := parallel.NewPool(8)
	defer pool.Close()
	for gname, g := range map[string]*Graph{
		"grid": Grid2D(25, 30),
		"gnm":  GNM(1200, 5000, 6),
	} {
		for wname, wg := range weightVariants(g) {
			n := g.NumVertices()
			label := duplicateHeavyLabels(n, 6, 11)
			var cut []WeightedEdge
			for v := 0; v < n; v++ {
				nbrs, ws := wg.Neighbors(uint32(v))
				for i, u := range nbrs {
					if uint32(v) < u && label[v] != label[u] {
						cut = append(cut, WeightedEdge{U: uint32(v), V: u, W: ws[i]})
					}
				}
			}
			want, err := FromWeightedEdges(n, cut)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := CutWeightedSubgraphPool(pool, workers, wg, label, &ContractScratch{})
				if err != nil {
					t.Fatal(err)
				}
				if !weightedGraphsEqual(want, got) {
					t.Fatalf("%s/%s workers=%d: weighted residual diverges from FromWeightedEdges",
						gname, wname, workers)
				}
			}
		}
	}
}

// TestContractWeightedOutOfRangeLabels exercises the serial fallback for
// label values outside [0, n).
func TestContractWeightedOutOfRangeLabels(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	g := Grid2D(8, 9)
	wg := RandomWeights(g, 1, 4, 2)
	n := g.NumVertices()
	label := make([]uint32, n)
	for v := range label {
		label[v] = uint32(1_000_000 + v%5) // far out of range
	}
	want, wantQuot, err := ContractWeightedClusters(wg, label)
	if err != nil {
		t.Fatal(err)
	}
	sc := &ContractScratch{}
	got, gotQuot, err := ContractWeightedClustersPool(pool, 4, wg, label, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !weightedGraphsEqual(want, got) {
		t.Fatal("fallback diverges from serial reference")
	}
	for v := range wantQuot {
		if wantQuot[v] != gotQuot[v] {
			t.Fatalf("fallback quot[%d] = %d want %d", v, gotQuot[v], wantQuot[v])
		}
	}
	if sc.CutArcs == 0 {
		t.Fatal("fallback did not record cut-arc stats")
	}
}
