package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestScannerErrorsCarryLineNumber pins the bugfix for scanner-level
// failures: a line longer than the 1 MiB token buffer used to surface as
// a bare "bufio.Scanner: token too long" with no position, which on a
// multi-GB instance is undebuggable. All three text readers must report
// the offending line.
func TestScannerErrorsCarryLineNumber(t *testing.T) {
	long := strings.Repeat("c", 2<<20) // one 2 MiB line, over the 1 MiB buffer
	cases := []struct {
		name     string
		in       string
		read     func(*strings.Reader) error
		wantLine string
	}{
		{
			"dimacs", "p edge 2 1\n" + long + "\n",
			func(r *strings.Reader) error { _, err := ReadDIMACS(r); return err },
			"line 2",
		},
		{
			"dimacs weighted", "c ok\np sp 2 1\n" + long + "\n",
			func(r *strings.Reader) error { _, err := ReadDIMACSWeighted(r); return err },
			"line 3",
		},
		{
			"edge list", "2 1\n" + long + "\n",
			func(r *strings.Reader) error { _, err := ReadEdgeList(r); return err },
			"line 2",
		},
	}
	for _, tc := range cases {
		err := tc.read(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: long line accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.wantLine)
		}
		if !strings.Contains(err.Error(), "token too long") {
			t.Errorf("%s: error %q lost the scanner cause", tc.name, err)
		}
	}
}

// TestWriteDIMACSWeightedRoundTrip is the read → write → read bit-identity
// test for the weighted writer: every weight, including awkward values
// (shortest-decimal-hostile fractions, denormals, huge magnitudes), must
// come back as the identical float64 bit pattern, and the CSR must match
// array for array.
func TestWriteDIMACSWeightedRoundTrip(t *testing.T) {
	weights := []float64{
		1.0 / 3.0,
		math.Pi,
		5e-324, // smallest denormal
		1e300,
		math.Nextafter(1, 2),
		2.5,
		1,
	}
	var edges []WeightedEdge
	for i, w := range weights {
		edges = append(edges, WeightedEdge{U: uint32(i), V: uint32(i + 1), W: w})
	}
	wg, err := FromWeightedEdges(len(weights)+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACSWeighted(&buf, wg); err != nil {
		t.Fatal(err)
	}
	wg2, err := ReadDIMACSWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertWeightedEqual(t, wg, wg2)

	// And a second trip through the writer must be byte-identical: the
	// formatter is canonical.
	var buf1, buf2 bytes.Buffer
	if err := WriteDIMACSWeighted(&buf1, wg); err != nil {
		t.Fatal(err)
	}
	if err := WriteDIMACSWeighted(&buf2, wg2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("write → read → write changed the bytes")
	}
}

// TestWriteDIMACSWeightedRoundTripRandom widens the bit-identity check to
// a generated graph with uniform random weights.
func TestWriteDIMACSWeightedRoundTripRandom(t *testing.T) {
	wg := RandomWeights(GNM(200, 800, 42), 1, 10, 7)
	var buf bytes.Buffer
	if err := WriteDIMACSWeighted(&buf, wg); err != nil {
		t.Fatal(err)
	}
	wg2, err := ReadDIMACSWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertWeightedEqual(t, wg, wg2)
}

func assertWeightedEqual(t *testing.T, a, b *WeightedGraph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape changed: n %d->%d m %d->%d", a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	ao, bo := a.Offsets(), b.Offsets()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("offsets differ at %d: %d vs %d", i, ao[i], bo[i])
		}
	}
	aa, ba := a.Adjacency(), b.Adjacency()
	aw, bw := a.Weights(), b.Weights()
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("adjacency differs at arc %d: %d vs %d", i, aa[i], ba[i])
		}
		if math.Float64bits(aw[i]) != math.Float64bits(bw[i]) {
			t.Fatalf("weight bits differ at arc %d: %x vs %x", i, math.Float64bits(aw[i]), math.Float64bits(bw[i]))
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint changed: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestReadDIMACSWeightedDedupOrder pins the sort-based dedup rewrite
// against the documented contract: duplicate records (either orientation)
// collapse to ONE edge carrying the file's LAST weight, self loops drop,
// and the result is bit-identical to FromWeightedEdges over the
// already-deduplicated edge list — exactly what the old map-based dedup
// produced.
func TestReadDIMACSWeightedDedupOrder(t *testing.T) {
	in := "p sp 4 7\n" +
		"a 1 2 5\n" +
		"a 3 4 1\n" +
		"a 2 1 7\n" + // flipped duplicate of (1,2): weight 7 wins
		"a 1 2 9\n" + // and then 9 wins
		"a 2 3 2\n" +
		"a 3 3 8\n" + // self loop: dropped
		"a 4 3 4\n" // flipped duplicate of (3,4): 4 wins
	wg, err := ReadDIMACSWeighted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromWeightedEdges(4, []WeightedEdge{
		{U: 0, V: 1, W: 9}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertWeightedEqual(t, wg, want)
	if w, _ := wg.Weight(0, 1); w != 9 {
		t.Fatalf("weight(0,1) = %v, want last-wins 9", w)
	}
	if w, _ := wg.Weight(2, 3); w != 4 {
		t.Fatalf("weight(2,3) = %v, want last-wins 4", w)
	}
}
