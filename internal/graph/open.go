package graph

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// OpenAny opens a graph file of any supported format, auto-detected from
// its leading bytes: registered binary formats by magic (the CSR snapshot
// format in internal/graph/snapshot registers itself), the legacy "MPXG"
// binary edge list, and the two text formats by sniffing — DIMACS when
// the first non-blank character is a 'c' comment or 'p' problem line,
// edge list when it is a digit or a '#'/'%' comment. The CLI and the
// update-trace replay path both load through here, so every input flag
// accepts every format.

// Opened is an open graph plus the resources backing it. Graph is always
// set; Weighted is additionally set when the source carries weights (a
// weighted snapshot, or any DIMACS file — lines without a weight column
// default to weight 1), sharing storage with Graph. Close releases any
// backing resources (a snapshot's memory mapping); the graphs must not be
// used after Close.
type Opened struct {
	Graph    *Graph
	Weighted *WeightedGraph
	Format   string // "snapshot", "binary", "dimacs", "edgelist"
	closer   io.Closer
}

// Close releases the resources backing the graphs, if any. Safe to call
// twice.
func (o *Opened) Close() error {
	if o == nil || o.closer == nil {
		return nil
	}
	c := o.closer
	o.closer = nil
	return c.Close()
}

// FormatLoader opens one registered binary format. It owns the whole
// load: OpenAny only sniffs the magic and delegates the path.
type FormatLoader func(path string) (*Opened, error)

type registeredFormat struct {
	name  string
	magic []byte
	load  FormatLoader
}

var formatRegistry []registeredFormat

// RegisterFormat registers a magic-prefixed binary graph format with
// OpenAny. Format packages call it from init (mirroring image.RegisterFormat);
// it is not safe for concurrent use with OpenAny. The Opened returned by
// load should set Format to name and wire its closer via NewOpened.
func RegisterFormat(name string, magic []byte, load FormatLoader) {
	if len(magic) == 0 || load == nil {
		panic("graph: RegisterFormat needs a magic prefix and a loader")
	}
	formatRegistry = append(formatRegistry, registeredFormat{name: name, magic: magic, load: load})
}

// NewOpened assembles an Opened for a registered format loader: g must be
// non-nil, wg may be nil, closer (may be nil) is invoked by Opened.Close.
func NewOpened(g *Graph, wg *WeightedGraph, format string, closer io.Closer) *Opened {
	return &Opened{Graph: g, Weighted: wg, Format: format, closer: closer}
}

// sniffLimit bounds how many leading bytes OpenAny reads to classify a
// file; text files may open with comments, so it is larger than any magic.
const sniffLimit = 512

// OpenAny opens path and parses it as whatever graph format its leading
// bytes identify. See the package comments above for the detection rules.
func OpenAny(path string) (*Opened, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	prefix := make([]byte, sniffLimit)
	k, err := io.ReadFull(f, prefix)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		f.Close()
		return nil, fmt.Errorf("graph: sniffing %s: %w", path, err)
	}
	prefix = prefix[:k]
	for _, rf := range formatRegistry {
		if bytes.HasPrefix(prefix, rf.magic) {
			f.Close()
			return rf.load(path)
		}
	}
	if bytes.HasPrefix(prefix, binaryMagic[:]) {
		defer f.Close()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		g, err := ReadBinary(f)
		if err != nil {
			return nil, err
		}
		return &Opened{Graph: g, Format: "binary"}, nil
	}
	format, err := sniffText(prefix, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch format {
	case "dimacs":
		// Parse weighted so ".gr" weights survive; for weightless DIMACS
		// files every line defaults to weight 1, and the unweighted view is
		// bit-identical to ReadDIMACS (both dedup to the same canonical
		// edge set).
		wg, err := ReadDIMACSWeighted(f)
		if err != nil {
			return nil, err
		}
		return &Opened{Graph: wg.Unweighted(), Weighted: wg, Format: "dimacs"}, nil
	default: // "edgelist"
		g, err := ReadEdgeList(f)
		if err != nil {
			return nil, err
		}
		return &Opened{Graph: g, Format: "edgelist"}, nil
	}
}

// sniffText classifies a text graph file from its first non-whitespace
// byte.
func sniffText(prefix []byte, path string) (string, error) {
	for _, c := range prefix {
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			continue
		case c == 'c' || c == 'p':
			return "dimacs", nil
		case c >= '0' && c <= '9' || c == '#' || c == '%':
			return "edgelist", nil
		default:
			return "", fmt.Errorf("graph: %s: unrecognized graph format (leading byte %q)", path, c)
		}
	}
	return "", fmt.Errorf("graph: %s: unrecognized graph format (no content)", path)
}
