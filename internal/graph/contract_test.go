package graph

import (
	"math/rand"
	"testing"

	"mpx/internal/parallel"
)

func contractTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	return map[string]*Graph{
		"grid":     Grid2D(40, 55),
		"gnm":      GNM(3000, 12000, 9),
		"powerlaw": RMAT(11, 8000, 4),
		"path":     Path(500),
		"star":     star(t, 300),
		"edgeless": mustFromEdges(t, 64, nil),
		"empty":    mustFromEdges(t, 0, nil),
	}
}

func star(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{0, uint32(v)})
	}
	return mustFromEdges(t, n, edges)
}

func mustFromEdges(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusterishLabels mimics decomposition output: pick k random "centers"
// and label every vertex with a random center id, so labels repeat, skip
// values, and appear in scattered first-appearance order.
func clusterishLabels(n, k int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	centers := make([]uint32, k)
	for i := range centers {
		centers[i] = uint32(rng.Intn(n))
	}
	label := make([]uint32, n)
	for v := range label {
		label[v] = centers[rng.Intn(k)]
	}
	return label
}

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || len(a.adj) != len(b.adj) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			return false
		}
	}
	return true
}

// TestContractClustersPoolMatchesSerial is the bit-identity property test
// gating the parallel contraction primitive: on every workload family, for
// several label assignments and at workers 1/2/8, ContractClustersPool
// must produce exactly the quotient CSR and vertex mapping of the serial
// map-based ContractClusters, with and without a reused scratch.
func TestContractClustersPoolMatchesSerial(t *testing.T) {
	sc := &ContractScratch{}
	for name, g := range contractTestGraphs(t) {
		n := g.NumVertices()
		for trial := 0; trial < 4; trial++ {
			var label []uint32
			if n > 0 {
				label = clusterishLabels(n, 1+n/(10*(trial+1)), int64(trial)*7+3)
			} else {
				label = []uint32{}
			}
			want, wantQuot, err := ContractClusters(g, label)
			if err != nil {
				t.Fatalf("%s: serial: %v", name, err)
			}
			for _, w := range []int{1, 2, 8} {
				for _, scratch := range []*ContractScratch{nil, sc} {
					got, gotQuot, err := ContractClustersPool(nil, w, g, label, scratch)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, w, err)
					}
					if !graphsEqual(want, got) {
						t.Fatalf("%s trial=%d workers=%d: quotient CSR differs from serial (%v vs %v)",
							name, trial, w, got, want)
					}
					if len(gotQuot) != len(wantQuot) {
						t.Fatalf("%s workers=%d: quot length %d want %d", name, w, len(gotQuot), len(wantQuot))
					}
					for v := range wantQuot {
						if gotQuot[v] != wantQuot[v] {
							t.Fatalf("%s trial=%d workers=%d: quot[%d]=%d want %d",
								name, trial, w, v, gotQuot[v], wantQuot[v])
						}
					}
				}
			}
		}
	}
}

// TestContractClustersPoolOutOfRangeFallback checks that labels outside
// [0, n) — legal for the serial primitive — fall back to identical serial
// semantics instead of corrupting the slice-compaction path.
func TestContractClustersPoolOutOfRangeFallback(t *testing.T) {
	g := Grid2D(8, 9)
	n := g.NumVertices()
	label := make([]uint32, n)
	for v := range label {
		label[v] = uint32(1<<20 + v/7*13)
	}
	want, wantQuot, err := ContractClusters(g, label)
	if err != nil {
		t.Fatal(err)
	}
	got, gotQuot, err := ContractClustersPool(nil, 4, g, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(want, got) {
		t.Fatalf("fallback quotient differs: %v want %v", got, want)
	}
	for v := range wantQuot {
		if gotQuot[v] != wantQuot[v] {
			t.Fatalf("fallback quot[%d]=%d want %d", v, gotQuot[v], wantQuot[v])
		}
	}
}

// TestCutSubgraphPoolMatchesFromEdges checks the residual-graph builder
// against the serial reference: filter the edge list by label inequality
// and rebuild with FromEdges.
func TestCutSubgraphPoolMatchesFromEdges(t *testing.T) {
	sc := &ContractScratch{}
	for name, g := range contractTestGraphs(t) {
		n := g.NumVertices()
		var label []uint32
		if n > 0 {
			label = clusterishLabels(n, 1+n/8, 17)
		} else {
			label = []uint32{}
		}
		var cut []Edge
		for _, e := range g.Edges() {
			if label[e.U] != label[e.V] {
				cut = append(cut, e)
			}
		}
		want := mustFromEdges(t, n, cut)
		for _, w := range []int{1, 2, 8} {
			got, err := CutSubgraphPool(nil, w, g, label, sc)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !graphsEqual(want, got) {
				t.Fatalf("%s workers=%d: residual CSR differs from FromEdges (%v vs %v)", name, w, got, want)
			}
		}
	}
}

// TestContractClustersPoolSteadyAllocs pins the allocation contract: with
// a warmed scratch, one contraction allocates only its results (quotient
// offsets + adjacency + quot map and a handful of pool closures), never
// O(m) map or append churn.
func TestContractClustersPoolSteadyAllocs(t *testing.T) {
	g := GNM(4000, 16000, 5)
	label := clusterishLabels(g.NumVertices(), 300, 21)
	sc := &ContractScratch{}
	pool := parallel.NewPool(4)
	defer pool.Close()
	if _, _, err := ContractClustersPool(pool, 4, g, label, sc); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := ContractClustersPool(pool, 4, g, label, sc); err != nil {
			t.Fatal(err)
		}
	})
	// Results (3 slices) plus submitted loop closures and the radix sort's
	// per-call histograms (~44 measured); the map path costs thousands here.
	if avg > 64 {
		t.Fatalf("steady-state contraction allocates %.1f objects, want <= 64", avg)
	}
}
