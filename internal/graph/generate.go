package graph

import (
	"fmt"

	"mpx/internal/xrand"
)

// This file holds the synthetic graph generators used by the experiment
// suite. Each generator is deterministic for a fixed seed and documents its
// exact vertex/edge counts so tests can assert structure.

// Grid2D returns the rows x cols grid graph (4-neighbor mesh). The paper's
// Figure 1 uses Grid2D(1000, 1000). n = rows*cols, m = rows*(cols-1) +
// cols*(rows-1).
func Grid2D(rows, cols int) *Graph {
	if rows <= 0 || cols <= 0 {
		panic("graph: Grid2D dimensions must be positive")
	}
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	g, err := FromEdges(rows*cols, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Torus2D returns the rows x cols grid with wraparound edges; every vertex
// has degree 4 (degree 2 when a dimension has length 2 collapses duplicate
// wrap edges; dimensions must be >= 3 to avoid parallel edges).
func Torus2D(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D dimensions must be >= 3")
	}
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, Edge{id(r, c), id(r, (c+1)%cols)})
			edges = append(edges, Edge{id(r, c), id((r+1)%rows, c)})
		}
	}
	g, err := FromEdges(rows*cols, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Grid3D returns the x*y*z 6-neighbor mesh.
func Grid3D(x, y, z int) *Graph {
	if x <= 0 || y <= 0 || z <= 0 {
		panic("graph: Grid3D dimensions must be positive")
	}
	id := func(i, j, k int) uint32 { return uint32((i*y+j)*z + k) }
	var edges []Edge
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					edges = append(edges, Edge{id(i, j, k), id(i+1, j, k)})
				}
				if j+1 < y {
					edges = append(edges, Edge{id(i, j, k), id(i, j+1, k)})
				}
				if k+1 < z {
					edges = append(edges, Edge{id(i, j, k), id(i, j, k+1)})
				}
			}
		}
	}
	g, err := FromEdges(x*y*z, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the path graph on n vertices (the paper's worst case for the
// number of pieces: a (β, d) decomposition of a path needs ~βn pieces).
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{uint32(i), uint32(i + 1)})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Cycle returns the cycle on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{uint32(i), uint32((i + 1) % n)})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns K_n (the paper's example where a single piece may hold
// the whole graph).
func Complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{uint32(i), uint32(j)})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, uint32(i)})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// BinaryTree returns the complete binary tree with n vertices (vertex i has
// children 2i+1 and 2i+2 when present).
func BinaryTree(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		if 2*i+1 < n {
			edges = append(edges, Edge{uint32(i), uint32(2*i + 1)})
		}
		if 2*i+2 < n {
			edges = append(edges, Edge{uint32(i), uint32(2*i + 2)})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Hypercube returns the d-dimensional hypercube graph: n = 2^d vertices,
// each adjacent to the d vertices differing in one bit.
func Hypercube(d int) *Graph {
	if d < 0 || d > 30 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << d
	var edges []Edge
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, Edge{uint32(v), uint32(w)})
			}
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// GNM returns an Erdős–Rényi G(n, m) multigraph sample with self loops and
// duplicates rejected, so exactly m distinct edges (requires m <= n(n-1)/2).
func GNM(n int, m int64, seed uint64) *Graph {
	if n < 2 {
		panic("graph: GNM needs n >= 2")
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d", m, maxEdges))
	}
	rng := xrand.NewSplitMix64(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{u, v})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomRegular samples a d-regular graph on n vertices (n*d even) with the
// configuration model, resampling until the pairing is simple. Practical
// for the small d used in experiments.
func RandomRegular(n, d int, seed uint64) *Graph {
	if n*d%2 != 0 {
		panic("graph: RandomRegular needs n*d even")
	}
	if d >= n {
		panic("graph: RandomRegular needs d < n")
	}
	rng := xrand.NewSplitMix64(seed)
	stubs := make([]uint32, n*d)
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			panic("graph: RandomRegular failed to find a simple pairing")
		}
		for i := range stubs {
			stubs[i] = uint32(i / d)
		}
		// Shuffle stubs and pair them up consecutively.
		for i := len(stubs) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			stubs[i], stubs[j] = stubs[j], stubs[i]
		}
		edges := make([]Edge, 0, n*d/2)
		seen := make(map[uint64]struct{}, n*d/2)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if _, dup := seen[key]; dup {
				ok = false
				break
			}
			seen[key] = struct{}{}
			edges = append(edges, Edge{u, v})
		}
		if !ok {
			continue
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			panic(err)
		}
		return g
	}
}

// PreferentialAttachment returns a Barabási–Albert style graph: vertices
// arrive one at a time and attach k edges to existing vertices chosen
// proportionally to degree (via the repeated-endpoint trick). The result is
// connected with m = k*(n-k) + C(k,2)-ish edges after dedup.
func PreferentialAttachment(n, k int, seed uint64) *Graph {
	if k < 1 || n <= k {
		panic("graph: PreferentialAttachment needs 1 <= k < n")
	}
	rng := xrand.NewSplitMix64(seed)
	// endpoint pool: every time an edge {u,v} is added, push u and v; picking
	// a uniform pool element picks vertices ∝ degree.
	var pool []uint32
	var edges []Edge
	// Seed clique on the first k+1 vertices keeps early choices meaningful.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, Edge{uint32(i), uint32(j)})
			pool = append(pool, uint32(i), uint32(j))
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := make([]uint32, 0, k)
		for len(chosen) < k {
			t := pool[rng.Intn(len(pool))]
			if int(t) >= v {
				continue
			}
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, Edge{uint32(v), t})
			pool = append(pool, uint32(v), t)
		}
	}
	g, err := FromEdgesDedup(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RMAT samples an R-MAT graph (Chakrabarti et al.) with the standard
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) partition probabilities, scale
// log2(n) and the requested number of edge samples. Self loops and
// duplicates are removed, so the realized edge count is slightly below
// edgeSamples. RMAT graphs are the skewed-degree workload in the suite.
func RMAT(scale int, edgeSamples int64, seed uint64) *Graph {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale out of range")
	}
	n := 1 << scale
	rng := xrand.NewSplitMix64(seed)
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]Edge, 0, edgeSamples)
	for i := int64(0); i < edgeSamples; i++ {
		var u, v uint32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// stay in the (0,0) quadrant
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	g, err := FromEdgesDedup(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Caterpillar returns a path of length spine with legs pendant vertices
// attached to every spine vertex: a tree with skewed structure used in
// diameter edge cases.
func Caterpillar(spine, legs int) *Graph {
	if spine < 1 || legs < 0 {
		panic("graph: Caterpillar needs spine >= 1, legs >= 0")
	}
	n := spine * (1 + legs)
	var edges []Edge
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, Edge{uint32(i), uint32(i + 1)})
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, Edge{uint32(i), uint32(next)})
			next++
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RoadNetwork returns a synthetic road-network-like graph: a rows x cols
// grid where each edge survives with probability keep and a few random
// "highway" shortcut edges are added between random vertices. Disconnected
// leftovers are reconnected through the largest component is NOT enforced;
// callers that need connectivity should extract the largest component. This
// stands in for the real road traces the literature evaluates on (we have
// no dataset access offline); it preserves the relevant behavior: bounded
// degree, high diameter, spatial locality.
func RoadNetwork(rows, cols int, keep float64, highways int, seed uint64) *Graph {
	if keep <= 0 || keep > 1 {
		panic("graph: RoadNetwork keep must be in (0,1]")
	}
	rng := xrand.NewSplitMix64(seed)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < keep {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows && rng.Float64() < keep {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	n := rows * cols
	for h := 0; h < highways; h++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	g, err := FromEdgesDedup(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors on each side, with each edge
// rewired to a random endpoint with probability p. Small-world graphs mix
// the high clustering of lattices with logarithmic diameter — a workload
// family between grids and G(n,m) for the decomposition experiments.
func WattsStrogatz(n, k int, p float64, seed uint64) *Graph {
	if n < 2*k+2 || k < 1 {
		panic("graph: WattsStrogatz needs n >= 2k+2, k >= 1")
	}
	if p < 0 || p > 1 {
		panic("graph: WattsStrogatz rewiring probability out of [0,1]")
	}
	rng := xrand.NewSplitMix64(seed)
	seen := make(map[uint64]struct{}, n*k)
	addKey := func(u, v uint32) bool {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := uint64(a)<<32 | uint64(b)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		return true
	}
	edges := make([]Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := uint32(v)
			w := uint32((v + j) % n)
			if rng.Float64() < p {
				// Rewire the far endpoint to a uniform non-duplicate target.
				for attempt := 0; attempt < 32; attempt++ {
					cand := uint32(rng.Intn(n))
					if cand != u && addKey(u, cand) {
						w = cand
						goto added
					}
				}
				// Fall back to the lattice edge if rewiring keeps colliding.
				if !addKey(u, w) {
					continue
				}
			} else if !addKey(u, w) {
				continue
			}
		added:
			edges = append(edges, Edge{u, w})
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
