package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list format: header line "n m", then one "u v" line per
// undirected edge. Lines starting with '#' or '%' are comments. Binary
// format: magic "MPXG", little-endian uint64 n, uint64 m, then 2m uint32
// endpoint pairs.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var m int64
	header := false
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: header must be \"n m\"", lineNo)
			}
			nv, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad n: %v", lineNo, err)
			}
			me, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad m: %v", lineNo, err)
			}
			n, m = nv, me
			header = true
			edges = make([]Edge, 0, m)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: edge must be \"u v\"", lineNo)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad u: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad v: %v", lineNo, err)
		}
		edges = append(edges, Edge{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		// Failed while reading the line after the last delivered one; the
		// position turns "token too long" into an actionable report.
		return nil, fmt.Errorf("graph: line %d: %w", lineNo+1, err)
	}
	if !header {
		return nil, fmt.Errorf("graph: missing header line")
	}
	if int64(len(edges)) != m {
		return nil, fmt.Errorf("graph: header promised %d edges, found %d", m, len(edges))
	}
	return FromEdges(n, edges)
}

var binaryMagic = [4]byte{'M', 'P', 'X', 'G'}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumEdges())); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				if err := binary.Write(bw, binary.LittleEndian, [2]uint32{uint32(v), u}); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("graph: vertex count %d too large", n)
	}
	edges := make([]Edge, m)
	for i := range edges {
		var pair [2]uint32
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		edges[i] = Edge{pair[0], pair[1]}
	}
	return FromEdges(int(n), edges)
}
