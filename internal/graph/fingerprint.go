package graph

import (
	"encoding/binary"
	"math"
)

// Content fingerprints: a 64-bit FNV-1a hash over the canonical CSR bits.
// Because every builder in this package produces a canonical CSR (sorted
// adjacency, deterministic construction — see docs/determinism.md), the
// fingerprint is a stable identity for the graph's *content*: two graphs
// built from any edge ordering of the same edge set hash equal, and any
// single-bit difference in shape or weights hashes different with
// overwhelming probability. The snapshot format (internal/graph/snapshot)
// stores it in the header, and it is the registry/cache key for the
// planned mpxd service.
//
// The fingerprint is an FNV-1a fold over three per-section sums rather
// than one long chain, so a snapshot loader that has already checksummed
// its sections verifies the fingerprint in O(1) and the payload is hashed
// exactly once. Each section sum is itself a fold over 1 MiB chunks —
// FNV-1a is a serial dependency chain, so chunking is what lets the
// loader hash an 8 MB adjacency section on all cores instead of one:
//
//	chunkSum(chunk) = FNV-1a at 64-bit granularity: h starts at the FNV
//	    offset basis and absorbs each little-endian 64-bit word w of the
//	    chunk as h = (h XOR w) × FNVprime; a trailing partial word is
//	    zero-padded. Word granularity processes 8 bytes per multiply —
//	    FNV's serial dependence makes the byte-wise chain ~8× slower,
//	    and every section is a whole number of words by construction.
//
//	sectionSum(bytes) = FNV1a(LE64(chunkSum(chunk_0)) ‖ LE64(chunkSum(chunk_1)) ‖ …)
//	    over consecutive 1 MiB chunks (last one partial; an empty
//	    section has no chunks, so its sum is the FNV-1a offset basis)
//
//	offsetsSum = sectionSum(offsets as LE64s)
//	adjSum     = sectionSum(adjacency as LE32s)
//	weightsSum = sectionSum(weights as LE64 IEEE-754 bits), or 0 if unweighted
//	fingerprint = FNV1a(LE64(n) ‖ LE64(arcs) ‖ weightedByte ‖
//	                    LE64(offsetsSum) ‖ LE64(adjSum) ‖ LE64(weightsSum))
//
// where weightedByte is 0x01 when a weight payload is present and 0x00
// otherwise. The three section streams are exactly the section bytes of
// the snapshot format (1 MiB is a whole number of 8- and 4-byte values,
// so chunk boundaries agree between typed arrays and raw bytes), and the
// section sums are exactly the snapshot's per-section checksums.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvAdd absorbs raw bytes into an FNV-1a 64-bit state.
func fnvAdd(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// SectionChunkBytes is the chunk size of the per-section checksum fold:
// sections are hashed as independent FNV-1a chains over consecutive
// chunks of this many bytes, folded in order. The snapshot package
// depends on this value; changing it changes every fingerprint and
// requires a snapshot format version bump.
const SectionChunkBytes = 1 << 20

// foldChunk absorbs a completed chunk sum into the section fold.
func foldChunk(fold, chunkSum uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], chunkSum)
	return fnvAdd(fold, b[:])
}

// fnvAddWord absorbs one 64-bit word — the chunk-hash step. A uint64 IS
// its little-endian word, so typed slices hash without serialization.
func fnvAddWord(h, w uint64) uint64 {
	h ^= w
	h *= fnvPrime64
	return h
}

// fnvAddInt64s absorbs int64 values as little-endian two's-complement
// words (the on-disk encoding of the snapshot offsets section).
func fnvAddInt64s(h uint64, xs []int64) uint64 {
	for _, x := range xs {
		h = fnvAddWord(h, uint64(x))
	}
	return h
}

// fnvAddUint32s absorbs uint32 values pairwise as little-endian words
// (the on-disk encoding of the snapshot adjacency section: consecutive
// LE32s, low value in the low half). A trailing lone value — impossible
// for a valid CSR, whose arc count is even — is zero-padded, matching the
// byte-stream definition.
func fnvAddUint32s(h uint64, xs []uint32) uint64 {
	for ; len(xs) >= 2; xs = xs[2:] {
		h = fnvAddWord(h, uint64(xs[0])|uint64(xs[1])<<32)
	}
	if len(xs) == 1 {
		h = fnvAddWord(h, uint64(xs[0]))
	}
	return h
}

// fnvAddFloat64s absorbs float64 values as the little-endian words of
// their IEEE-754 bit patterns (the on-disk encoding of the snapshot
// weights section). Hashing the bits, not the values, keeps the
// fingerprint exact: weights that differ by one ulp hash different.
func fnvAddFloat64s(h uint64, xs []float64) uint64 {
	for _, x := range xs {
		h = fnvAddWord(h, math.Float64bits(x))
	}
	return h
}

// FingerprintCSR hashes raw CSR arrays per the scheme above. A nil or
// empty offsets slice is canonicalized to the empty graph's [0], so the
// zero-value *Graph and a loaded empty snapshot fingerprint equal.
// weights is nil for an unweighted graph.
func FingerprintCSR(offsets []int64, adj []uint32, weights []float64) uint64 {
	if len(offsets) == 0 {
		offsets = []int64{0}
	}
	offsetsSum := SectionSumInt64s(offsets)
	adjSum := SectionSumUint32s(adj)
	var weightsSum uint64
	if weights != nil {
		weightsSum = SectionSumFloat64s(weights)
	}
	weighted := weights != nil
	return FoldFingerprint(uint64(len(offsets)-1), uint64(len(adj)), weighted, offsetsSum, adjSum, weightsSum)
}

// SectionSumInt64s computes the chunked section checksum of xs encoded as
// little-endian bytes — the value the snapshot header records for the
// offsets section.
func SectionSumInt64s(xs []int64) uint64 {
	const perChunk = SectionChunkBytes / 8
	fold := uint64(fnvOffset64)
	for start := 0; start < len(xs); start += perChunk {
		end := min(start+perChunk, len(xs))
		fold = foldChunk(fold, fnvAddInt64s(fnvOffset64, xs[start:end]))
	}
	return fold
}

// SectionSumUint32s is the chunked section checksum for the adjacency
// section.
func SectionSumUint32s(xs []uint32) uint64 {
	const perChunk = SectionChunkBytes / 4
	fold := uint64(fnvOffset64)
	for start := 0; start < len(xs); start += perChunk {
		end := min(start+perChunk, len(xs))
		fold = foldChunk(fold, fnvAddUint32s(fnvOffset64, xs[start:end]))
	}
	return fold
}

// SectionSumFloat64s is the chunked section checksum for the weights
// section (IEEE-754 bit patterns).
func SectionSumFloat64s(xs []float64) uint64 {
	const perChunk = SectionChunkBytes / 8
	fold := uint64(fnvOffset64)
	for start := 0; start < len(xs); start += perChunk {
		end := min(start+perChunk, len(xs))
		fold = foldChunk(fold, fnvAddFloat64s(fnvOffset64, xs[start:end]))
	}
	return fold
}

// FoldFingerprint combines the shape and the per-section FNV-1a sums into
// the content fingerprint. The snapshot loader calls this with the sums
// it computed from the raw file sections; FingerprintCSR calls it with
// sums over the typed arrays. Both spell the identical value because the
// section byte streams match.
func FoldFingerprint(n, arcs uint64, weighted bool, offsetsSum, adjSum, weightsSum uint64) uint64 {
	var buf [41]byte
	binary.LittleEndian.PutUint64(buf[0:], n)
	binary.LittleEndian.PutUint64(buf[8:], arcs)
	if weighted {
		buf[16] = 1
	}
	binary.LittleEndian.PutUint64(buf[17:], offsetsSum)
	binary.LittleEndian.PutUint64(buf[25:], adjSum)
	binary.LittleEndian.PutUint64(buf[33:], weightsSum)
	return fnvAdd(fnvOffset64, buf[:])
}

// Fingerprint returns the content fingerprint of the graph.
func (g *Graph) Fingerprint() uint64 {
	return FingerprintCSR(g.offsets, g.adj, nil)
}

// Fingerprint returns the content fingerprint of the weighted graph. It
// covers the weight bits, so it never collides with the fingerprint of
// the unweighted graph with the same shape.
func (g *WeightedGraph) Fingerprint() uint64 {
	return FingerprintCSR(g.offsets, g.adj, g.weights)
}
