package graph

import (
	"fmt"
	"math"
)

// Zero-copy CSR constructors: adopt caller-provided arrays as a graph
// after validating every structural invariant the rest of the library
// assumes. The snapshot loader (internal/graph/snapshot) hands these
// views straight over memory-mapped file sections, so the checks here are
// the line between "corrupt file" and "undefined behavior in a traversal
// kernel": they must catch everything the builders normally guarantee.
//
// Invariants checked:
//
//   - offsets is non-empty, starts at 0, is non-decreasing, and its last
//     entry equals len(adj);
//   - len(adj) is even (every undirected edge is stored as two arcs);
//   - every neighbor list is sorted non-decreasing (duplicates are legal:
//     FromEdges keeps parallel edges) with all ids in [0, n) and no self
//     loops (every builder drops them).
//
// Symmetry (u in adj[v] ⇔ v in adj[u]) is NOT verified — it would cost
// O(m log d) — so these constructors trust the writer for it, as does
// every algorithm downstream. The checksummed snapshot format makes an
// asymmetric payload a deliberate forgery rather than an accident.

// ErrInvalidCSR reports caller-provided CSR arrays that violate a
// structural invariant.
var ErrInvalidCSR = errorString("graph: invalid CSR")

// validateCSR checks the shared Graph invariants on raw arrays.
func validateCSR(offsets []int64, adj []uint32) error {
	if len(offsets) == 0 {
		return fmt.Errorf("%w: empty offsets (need at least [0])", ErrInvalidCSR)
	}
	if offsets[0] != 0 {
		return fmt.Errorf("%w: offsets[0] = %d, want 0", ErrInvalidCSR, offsets[0])
	}
	n := len(offsets) - 1
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return fmt.Errorf("%w: offsets decrease at vertex %d (%d -> %d)", ErrInvalidCSR, v, offsets[v], offsets[v+1])
		}
	}
	if offsets[n] != int64(len(adj)) {
		return fmt.Errorf("%w: offsets end at %d but adjacency has %d arcs", ErrInvalidCSR, offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return fmt.Errorf("%w: odd arc count %d (undirected edges store two arcs)", ErrInvalidCSR, len(adj))
	}
	for v := 0; v < n; v++ {
		nb := adj[offsets[v]:offsets[v+1]]
		for i, u := range nb {
			if int(u) >= n {
				return fmt.Errorf("%w: vertex %d lists neighbor %d, out of [0,%d)", ErrInvalidCSR, v, u, n)
			}
			if u == uint32(v) {
				return fmt.Errorf("%w: self loop at vertex %d", ErrInvalidCSR, v)
			}
			if i > 0 && u < nb[i-1] {
				return fmt.Errorf("%w: adjacency of vertex %d not sorted (%d after %d)", ErrInvalidCSR, v, u, nb[i-1])
			}
		}
	}
	return nil
}

// FromCSR adopts offsets/adjacency arrays as a *Graph without copying.
// The arrays are owned by the graph afterwards and must not be modified;
// if they alias a memory-mapped file the graph is only valid while the
// mapping is.
func FromCSR(offsets []int64, adj []uint32) (*Graph, error) {
	if err := validateCSR(offsets, adj); err != nil {
		return nil, err
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}

// FromWeightedCSR adopts offsets/adjacency/weights arrays as a
// *WeightedGraph without copying, under the same ownership rules as
// FromCSR. Weights must align with the adjacency and be finite and
// positive; weight symmetry across the two directions of an edge is
// trusted, like adjacency symmetry.
func FromWeightedCSR(offsets []int64, adj []uint32, weights []float64) (*WeightedGraph, error) {
	if err := validateCSR(offsets, adj); err != nil {
		return nil, err
	}
	if len(weights) != len(adj) {
		return nil, fmt.Errorf("%w: %d weights for %d arcs", ErrInvalidCSR, len(weights), len(adj))
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: arc %d: %v", errNonPositiveWeight, i, w)
		}
	}
	return &WeightedGraph{offsets: offsets, adj: adj, weights: weights}, nil
}

// Weights exposes the per-arc weight array aligned with Adjacency(). The
// slice must not be modified.
func (g *WeightedGraph) Weights() []float64 { return g.weights }

// Offsets exposes the CSR offset array (length n+1). The slice must not
// be modified.
func (g *WeightedGraph) Offsets() []int64 { return g.offsets }

// Adjacency exposes the CSR adjacency array (length 2m). The slice must
// not be modified.
func (g *WeightedGraph) Adjacency() []uint32 { return g.adj }
