package graph

// ConnectedComponents labels every vertex with a component id in
// [0, count) and returns the labels and the component count. Labels are
// assigned in order of the smallest vertex in each component, so the output
// is canonical.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []uint32
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the induced subgraph of the largest connected
// component along with the original ids of its vertices.
func LargestComponent(g *Graph) (*Graph, []uint32) {
	labels, count := ConnectedComponents(g)
	if count <= 1 {
		ids := make([]uint32, g.NumVertices())
		for i := range ids {
			ids[i] = uint32(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	members := make([]uint32, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			members = append(members, uint32(v))
		}
	}
	sub, ids, err := g.InducedSubgraph(members)
	if err != nil {
		panic(err) // members are distinct and in range by construction
	}
	return sub, ids
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func IsConnected(g *Graph) bool {
	_, count := ConnectedComponents(g)
	return count <= 1
}
