package graph

import (
	"errors"
	"math"
	"testing"
)

// TestFromCSRValidation is the structural-invariant table for the
// zero-copy constructors: every class of malformed array the snapshot
// loader could hand over must come back as ErrInvalidCSR.
func TestFromCSRValidation(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int64
		adj     []uint32
	}{
		{"empty offsets", nil, nil},
		{"offsets start nonzero", []int64{1, 2}, []uint32{0}},
		{"offsets decrease", []int64{0, 2, 1, 4}, []uint32{1, 2, 0, 0}},
		{"offsets end short", []int64{0, 1}, []uint32{1, 0}},
		{"odd arcs", []int64{0, 1}, []uint32{1}},
		{"neighbor out of range", []int64{0, 1, 2}, []uint32{1, 5}},
		{"self loop", []int64{0, 1, 2}, []uint32{1, 1}},
		{"unsorted neighbors", []int64{0, 2, 3, 5}, []uint32{2, 1, 0, 0, 0}},
	}
	for _, tc := range cases {
		if _, err := FromCSR(tc.offsets, tc.adj); !errors.Is(err, ErrInvalidCSR) {
			t.Errorf("FromCSR %s: error %v, want ErrInvalidCSR", tc.name, err)
		}
		weights := make([]float64, len(tc.adj))
		for i := range weights {
			weights[i] = 1
		}
		if _, err := FromWeightedCSR(tc.offsets, tc.adj, weights); !errors.Is(err, ErrInvalidCSR) {
			t.Errorf("FromWeightedCSR %s: error %v, want ErrInvalidCSR", tc.name, err)
		}
	}
}

// TestFromCSRAdopts checks the valid path: the arrays are adopted
// without copying, and the graph matches the builder-constructed twin.
func TestFromCSRAdopts(t *testing.T) {
	want := Path(4) // 0-1-2-3
	g, err := FromCSR([]int64{0, 1, 3, 5, 6}, []uint32{1, 0, 2, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint %016x != Path(4) %016x", g.Fingerprint(), want.Fingerprint())
	}
	// Parallel edges are legal (FromEdges keeps them): duplicate sorted
	// neighbors must validate.
	if _, err := FromCSR([]int64{0, 2, 4}, []uint32{1, 1, 0, 0}); err != nil {
		t.Fatalf("parallel edge rejected: %v", err)
	}
}

// TestFromWeightedCSRWeights covers the weight-specific checks.
func TestFromWeightedCSRWeights(t *testing.T) {
	offsets := []int64{0, 1, 2}
	adj := []uint32{1, 0}
	if _, err := FromWeightedCSR(offsets, adj, []float64{1}); !errors.Is(err, ErrInvalidCSR) {
		t.Errorf("length mismatch: error %v", err)
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := FromWeightedCSR(offsets, adj, []float64{w, w}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	wg, err := FromWeightedCSR(offsets, adj, []float64{2.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := wg.Weight(0, 1); !ok || w != 2.5 {
		t.Fatalf("Weight(0,1) = %v,%v", w, ok)
	}
}

// TestFingerprintProperties pins the fingerprint semantics the snapshot
// store depends on: construction-order independence (the CSR is
// canonical), sensitivity to every component, and weighted ≠ unweighted.
func TestFingerprintProperties(t *testing.T) {
	a, err := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromEdges(4, []Edge{{2, 3}, {1, 2}, {1, 0}}) // shuffled + flipped
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on edge input order")
	}
	c, _ := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint ignores a missing edge")
	}
	d, _ := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint ignores an isolated vertex")
	}
	wg := RandomWeights(a, 1, 2, 1)
	if wg.Fingerprint() == a.Fingerprint() {
		t.Error("weighted fingerprint collides with unweighted")
	}
	wg2 := RandomWeights(a, 1, 2, 2) // different seed → different weights
	if wg.Fingerprint() == wg2.Fingerprint() {
		t.Error("fingerprint ignores weight values")
	}
	var zero Graph
	empty, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Fingerprint() != empty.Fingerprint() {
		t.Error("zero-value and empty graphs fingerprint differently")
	}
}
