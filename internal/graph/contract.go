package graph

import (
	"fmt"
	"sync/atomic"

	"mpx/internal/parallel"
)

// This file is the parallel contraction layer of the hierarchy engine
// (internal/hier): ContractClustersPool replaces the map-based
// ContractClusters + FromEdgesDedup path with slice-based label compaction
// and a pool radix sort on packed (qu, qv) 64-bit arc keys, and
// CutSubgraphPool builds the residual graph of cut edges on the same
// vertex set (the Linial–Saks block iteration). Both construct the CSR
// directly from the sorted symmetric arc keys, so no per-vertex adjacency
// sort (and none of its per-vertex closures) runs, and with a reused
// ContractScratch a steady-state contraction level performs a small
// constant number of allocations — the result graph and the quotient map
// — each sized O(cut edges), never O(m) map churn.

// ContractScratch owns every reusable buffer of ContractClustersPool and
// CutSubgraphPool. A zero value is ready to use; reusing one across the
// levels of a hierarchy makes steady-state contractions allocate only
// their results. Buffers are sized to the first (largest) level and shrink
// logically afterwards.
type ContractScratch struct {
	// CutArcs reports, after a ContractClustersPool or CutSubgraphPool
	// call, the number of directed cut arcs the input graph had (twice the
	// undirected cut edges, before parallel-edge dedup). The hierarchy
	// engine reads it for per-level stats instead of re-scanning all arcs.
	CutArcs int64

	firstPos []uint32 // per label: smallest vertex carrying it
	qid      []uint32 // per label: dense quotient id
	firsts   []uint32 // labels' first-carrier vertices, ascending
	arcKeys  []uint64 // packed (qu, qv) directed cut arcs
	arcTmp   []uint64 // radix-sort ping-pong + dedup output
	blockOff []int    // per-worker two-pass offsets
	counts   []int64  // quotient degree histogram

	// Weighted-contraction extensions (ContractWeightedClustersPool,
	// CutWeightedSubgraphPool).
	arcW   []float64 // per collected cut arc: its weight, in collection order
	arcPos []uint32  // collection positions riding the stable radix sort
	posTmp []uint32  // SortPairs value scratch
}

func (sc *ContractScratch) ensureOff(w int) []int {
	if cap(sc.blockOff) < w+1 {
		sc.blockOff = make([]int, w+1)
	}
	return sc.blockOff[:w+1]
}

// minUint32 atomically lowers *addr to v if v is smaller. Minimum is
// order-independent, so concurrent callers land on a deterministic value.
func minUint32(addr *uint32, v uint32) {
	for {
		old := atomic.LoadUint32(addr)
		if v >= old {
			return
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return
		}
	}
}

// ContractClustersPool is ContractClusters executed on a persistent worker
// pool (nil means parallel.Default()): the quotient graph of the given
// cluster labels plus the vertex→quotient mapping, bit-identical to the
// serial ContractClusters — quotient ids are assigned in first-appearance
// order and the CSR is canonical (sorted adjacency) — at every worker
// count.
//
// Label values must lie in [0, n) (true for every in-repo caller, which
// passes Decomposition.Center); inputs with out-of-range labels fall back
// to the serial map-based path, preserving ContractClusters semantics.
func ContractClustersPool(pool *parallel.Pool, workers int, g *Graph, label []uint32, sc *ContractScratch) (*Graph, []uint32, error) {
	n := g.NumVertices()
	if len(label) != n {
		return nil, nil, fmt.Errorf("graph: label length %d for n=%d", len(label), n)
	}
	if n == 0 {
		if sc != nil {
			sc.CutArcs = 0
		}
		return &Graph{offsets: make([]int64, 1)}, []uint32{}, nil
	}
	if sc == nil {
		sc = &ContractScratch{}
	}
	bad := pool.ReduceInt64(workers, n, func(v int) int64 {
		if int(label[v]) >= n {
			return 1
		}
		return 0
	})
	if bad > 0 {
		sc.CutArcs = pool.ReduceInt64(workers, n, func(v int) int64 {
			var c int64
			for _, u := range g.adj[g.offsets[v]:g.offsets[v+1]] {
				if label[u] != label[v] {
					c++
				}
			}
			return c
		})
		return ContractClusters(g, label)
	}

	quot, nq := compactLabelsPool(pool, workers, n, label, sc)

	keys := collectCutArcs(pool, workers, g, label, quot, sc)
	sc.CutArcs = int64(len(keys))
	sc.arcTmp = parallel.Grow(sc.arcTmp, len(keys))
	pool.SortUint64(workers, keys, sc.arcTmp)
	// Parallel contracted edges collapse to runs of equal keys; keep one.
	arcs := dedupSortedUint64(pool, workers, keys, sc.arcTmp, sc)
	q, err := csrFromSortedArcs(pool, workers, nq, arcs, sc)
	if err != nil {
		return nil, nil, err
	}
	return q, quot, nil
}

// compactLabelsPool densely renumbers the label values in first-appearance
// order without a map: the quotient id of a label is its rank among the
// smallest vertices carrying each label, which is exactly the order a
// serial first-appearance scan assigns. It returns the freshly allocated
// vertex→quotient map and the quotient vertex count. Labels must lie in
// [0, n).
func compactLabelsPool(pool *parallel.Pool, workers, n int, label []uint32, sc *ContractScratch) ([]uint32, int) {
	sc.firstPos = parallel.Grow(sc.firstPos, n)
	firstPos := sc.firstPos
	parallel.FillPool(pool, workers, firstPos, ^uint32(0))
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			minUint32(&firstPos[label[v]], uint32(v))
		}
	})
	sc.firsts = pool.PackInto(workers, n, func(v int) bool {
		return firstPos[label[v]] == uint32(v)
	}, sc.firsts)
	firsts := sc.firsts
	nq := len(firsts)
	sc.qid = parallel.Grow(sc.qid, n)
	qid := sc.qid
	pool.For(workers, nq, func(i int) {
		qid[label[firsts[i]]] = uint32(i)
	})
	quot := make([]uint32, n)
	pool.ForRange(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			quot[v] = qid[label[v]]
		}
	})
	return quot, nq
}

// CutSubgraphPool returns the graph on the same vertex set containing
// exactly the edges of g whose endpoints carry different labels — the
// residual graph the block-decomposition iteration recurses on. The result
// is bit-identical to FromEdges(n, cutEdges). Unlike contraction, no
// dedup pass is needed: g is simple, and identity-mapped cut arcs stay
// distinct.
func CutSubgraphPool(pool *parallel.Pool, workers int, g *Graph, label []uint32, sc *ContractScratch) (*Graph, error) {
	n := g.NumVertices()
	if len(label) != n {
		return nil, fmt.Errorf("graph: label length %d for n=%d", len(label), n)
	}
	if n == 0 {
		if sc != nil {
			sc.CutArcs = 0
		}
		return &Graph{offsets: make([]int64, 1)}, nil
	}
	if sc == nil {
		sc = &ContractScratch{}
	}
	keys := collectCutArcs(pool, workers, g, label, nil, sc)
	sc.CutArcs = int64(len(keys))
	sc.arcTmp = parallel.Grow(sc.arcTmp, len(keys))
	pool.SortUint64(workers, keys, sc.arcTmp)
	return csrFromSortedArcs(pool, workers, n, keys, sc)
}

// collectCutArcs gathers the packed key (quot[v]<<32 | quot[u]) — or
// (v<<32 | u) when quot is nil — for every directed arc (v, u) of g whose
// endpoints carry different class labels, in (v, adjacency) order. The
// two-pass layout (per-worker-block counts, serial offset scan, in-order
// fill) makes the output independent of scheduling.
func collectCutArcs(pool *parallel.Pool, workers int, g *Graph, class, quot []uint32, sc *ContractScratch) []uint64 {
	n := g.NumVertices()
	w := parallel.Workers(workers, n)
	off := sc.ensureOff(w)
	offsets, adj := g.offsets, g.adj
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		cnt := 0
		for v := lo; v < hi; v++ {
			cv := class[v]
			for _, u := range adj[offsets[v]:offsets[v+1]] {
				if class[u] != cv {
					cnt++
				}
			}
		}
		off[k+1] = cnt
	})
	off[0] = 0
	for k := 1; k <= w; k++ {
		off[k] += off[k-1]
	}
	sc.arcKeys = parallel.Grow(sc.arcKeys, off[w])
	keys := sc.arcKeys
	pool.Run(w, func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		pos := off[k]
		for v := lo; v < hi; v++ {
			cv := class[v]
			for _, u := range adj[offsets[v]:offsets[v+1]] {
				if class[u] == cv {
					continue
				}
				if quot != nil {
					keys[pos] = uint64(quot[v])<<32 | uint64(quot[u])
				} else {
					keys[pos] = uint64(v)<<32 | uint64(u)
				}
				pos++
			}
		}
	})
	return keys
}

// dedupSortedUint64 compacts runs of equal keys in the sorted input into
// dst (which must have capacity >= len(keys)) and returns the compacted
// prefix. Deterministic two-pass compaction, same discipline as the
// frontier concatenations.
func dedupSortedUint64(pool *parallel.Pool, workers int, keys, dst []uint64, sc *ContractScratch) []uint64 {
	m := len(keys)
	if m == 0 {
		return dst[:0]
	}
	w := parallel.Workers(workers, m)
	off := sc.ensureOff(w)
	pool.Run(w, func(k int) {
		lo, hi := k*m/w, (k+1)*m/w
		cnt := 0
		for i := lo; i < hi; i++ {
			if i == 0 || keys[i] != keys[i-1] {
				cnt++
			}
		}
		off[k+1] = cnt
	})
	off[0] = 0
	for k := 1; k <= w; k++ {
		off[k] += off[k-1]
	}
	out := dst[:off[w]]
	pool.Run(w, func(k int) {
		lo, hi := k*m/w, (k+1)*m/w
		pos := off[k]
		for i := lo; i < hi; i++ {
			if i == 0 || keys[i] != keys[i-1] {
				out[pos] = keys[i]
				pos++
			}
		}
	})
	return out
}

// csrFromSortedArcs builds the canonical CSR graph on nq vertices whose
// directed arc list is exactly the given sorted, deduplicated packed keys.
// Because the keys are sorted by (source, target), the adjacency array is
// simply the low halves in order and every neighbor list comes out sorted
// — no per-vertex sort pass. The two result slices are the only
// allocations.
func csrFromSortedArcs(pool *parallel.Pool, workers int, nq int, arcs []uint64, sc *ContractScratch) (*Graph, error) {
	sc.counts = parallel.Grow(sc.counts, nq)
	counts := sc.counts
	parallel.FillPool(pool, workers, counts, 0)
	var bad int32
	pool.ForRange(workers, len(arcs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src := arcs[i] >> 32
			if int(src) >= nq || int(uint32(arcs[i])) >= nq {
				atomic.StoreInt32(&bad, 1)
				continue
			}
			atomic.AddInt64(&counts[src], 1)
		}
	})
	if bad != 0 {
		return nil, ErrVertexRange
	}
	offs := make([]int64, nq+1)
	pool.ForRange(workers, nq, func(lo, hi int) {
		copy(offs[lo:hi], counts[lo:hi])
	})
	total := pool.ExclusiveScan(workers, offs[:nq])
	offs[nq] = total
	adjOut := make([]uint32, len(arcs))
	pool.ForRange(workers, len(arcs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			adjOut[i] = uint32(arcs[i])
		}
	})
	return &Graph{offsets: offs, adj: adjOut}, nil
}
