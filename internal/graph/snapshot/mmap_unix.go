//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. A false return (zero-length file or
// any mmap failure) sends Load down the io.ReadAll fallback; mapping is
// an optimization, never a requirement. MAP_PRIVATE keeps the mapping
// immune to concurrent writers flipping PROT semantics — the pages are
// read-only either way, and a snapshot is written once via rename.
func mmapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false
	}
	return data, true
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
