package snapshot

import (
	"bytes"
	"testing"

	"mpx/internal/graph"
)

// FuzzLoadSnapshot feeds arbitrary bytes to the decoder. The contract
// under fuzzing is total: Decode either returns a typed error or a
// fully-validated snapshot — never a panic, out-of-range adjacency, or a
// graph whose canonical re-encode differs from the accepted input (the
// format admits exactly one encoding per graph, so acceptance implies
// byte-level canonicity).
func FuzzLoadSnapshot(f *testing.F) {
	seedGraph := func(g *graph.Graph, wg *graph.WeightedGraph) []byte {
		var buf bytes.Buffer
		var err error
		if wg != nil {
			err = WriteWeighted(&buf, wg)
		} else {
			err = Write(&buf, g)
		}
		if err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seedGraph(graph.Grid2D(4, 5), nil)
	wvalid := seedGraph(nil, graph.RandomWeights(graph.Path(6), 1, 3, 2))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(wvalid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-3])
	f.Add(append(bytes.Clone(valid), 0xff))
	f.Add([]byte("MPXSNAP\x00 not really a snapshot"))
	f.Add(bytes.Repeat([]byte{0}, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		defer s.Close()
		var buf bytes.Buffer
		if s.Weighted() != nil {
			err = WriteWeighted(&buf, s.Weighted())
		} else {
			err = Write(&buf, s.Graph())
		}
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted input is not canonical: re-encode differs (%d vs %d bytes)", buf.Len(), len(data))
		}
		if s.Graph().NumVertices() == 0 && len(data) != headerSize+8 {
			t.Fatalf("empty graph from %d-byte input", len(data))
		}
	})
}
