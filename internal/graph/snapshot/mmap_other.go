//go:build !unix

package snapshot

import "os"

// Non-unix platforms have no mmap here; Load always takes the io.ReadAll
// fallback, which shares every validation path with the mapped route.
func mmapFile(f *os.File, size int64) ([]byte, bool) {
	return nil, false
}

func munmap(data []byte) error {
	return nil
}
