// Package snapshot implements the versioned binary CSR snapshot format:
// a graph (optionally weighted) written once and memory-mapped on load,
// with per-section checksums and the content fingerprint in the header.
// Loading constructs the CSR views zero-copy over the mapped sections, so
// startup cost is validation, not parsing — see docs/snapshot.md for the
// format specification and the E24 benchmark family for the speedup gate
// against text DIMACS parsing.
//
// Layout (all integers little-endian):
//
//	offset size  field
//	 0      8    magic "MPXSNAP\x00"
//	 8      4    version (currently 1)
//	12      4    flags (bit 0: weight section present; others must be 0)
//	16      8    n, vertex count
//	24      8    arcs = 2m, adjacency length
//	32      8    content fingerprint (graph.FingerprintCSR)
//	40      8    chunked FNV-1a checksum of the offsets section bytes
//	48      8    chunked FNV-1a checksum of the adjacency section bytes
//	56      8    chunked FNV-1a checksum of the weights section (0 if none)
//	64      8    FNV-1a checksum of header bytes [0, 64)
//	72      —    offsets section: (n+1) int64
//	 …      —    adjacency section: arcs uint32
//	 …      —    weights section (flag bit 0): arcs float64 IEEE-754 bits
//
// The header is 72 bytes and every section length is a multiple of 8
// (arcs is even), so all sections are 8-byte aligned relative to the
// page-aligned mapping and can be reinterpreted in place. A file must be
// exactly header+sections long: trailing bytes are an error, truncation
// is an error, and every checksum and CSR invariant is verified before a
// graph is handed out — a corrupt snapshot is a typed error, never a
// crash.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"mpx/internal/graph"
)

// Magic identifies a snapshot file; OpenAny dispatches on it.
var Magic = [8]byte{'M', 'P', 'X', 'S', 'N', 'A', 'P', 0}

// Version is the current format version. Readers reject any other value:
// the format evolves by bumping it, never by reinterpreting version 1.
const Version = 1

// FlagWeighted marks the presence of the weights section.
const FlagWeighted = 1 << 0

const (
	headerSize   = 72
	offHeaderSum = 64
)

// maxSnapshotVertices / maxSnapshotArcs bound the header's declared
// counts before any size arithmetic: the exact-size check below catches
// every mismatch, but only if computing the expected size cannot
// overflow uint64 first.
const (
	maxSnapshotVertices = 1 << 40
	maxSnapshotArcs     = 1 << 42
)

// Typed errors for every rejection class; corrupt inputs always unwrap to
// one of these (or graph.ErrInvalidCSR from the structural validation).
var (
	ErrBadMagic  = errors.New("snapshot: bad magic")
	ErrVersion   = errors.New("snapshot: unsupported version")
	ErrFlags     = errors.New("snapshot: unknown flag bits")
	ErrTruncated = errors.New("snapshot: truncated or wrong size")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrHeader    = errors.New("snapshot: malformed header")
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes raw bytes with FNV-1a 64, continuing from h (pass
// fnvOffset64 to start).
func fnv64a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// header is the decoded fixed-size prelude.
type header struct {
	version     uint32
	flags       uint32
	n           uint64
	arcs        uint64
	fingerprint uint64
	offsetsSum  uint64
	adjSum      uint64
	weightsSum  uint64
}

func (h *header) weighted() bool { return h.flags&FlagWeighted != 0 }

// sectionSizes returns the byte length of each section.
func (h *header) sectionSizes() (offsetsLen, adjLen, weightsLen uint64) {
	offsetsLen = 8 * (h.n + 1)
	adjLen = 4 * h.arcs
	if h.weighted() {
		weightsLen = 8 * h.arcs
	}
	return
}

// encodeHeader serializes h, computing the trailing header checksum.
func encodeHeader(h *header) [headerSize]byte {
	var buf [headerSize]byte
	copy(buf[0:8], Magic[:])
	binary.LittleEndian.PutUint32(buf[8:], h.version)
	binary.LittleEndian.PutUint32(buf[12:], h.flags)
	binary.LittleEndian.PutUint64(buf[16:], h.n)
	binary.LittleEndian.PutUint64(buf[24:], h.arcs)
	binary.LittleEndian.PutUint64(buf[32:], h.fingerprint)
	binary.LittleEndian.PutUint64(buf[40:], h.offsetsSum)
	binary.LittleEndian.PutUint64(buf[48:], h.adjSum)
	binary.LittleEndian.PutUint64(buf[56:], h.weightsSum)
	binary.LittleEndian.PutUint64(buf[offHeaderSum:], fnv64a(fnvOffset64, buf[:offHeaderSum]))
	return buf
}

// decodeHeader validates magic, header checksum, version and flags.
func decodeHeader(data []byte) (*header, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	if string(data[0:8]) != string(Magic[:]) {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, data[0:8])
	}
	wantSum := binary.LittleEndian.Uint64(data[offHeaderSum:headerSize])
	if gotSum := fnv64a(fnvOffset64, data[:offHeaderSum]); gotSum != wantSum {
		return nil, fmt.Errorf("%w: header hashes %#016x, recorded %#016x", ErrChecksum, gotSum, wantSum)
	}
	h := &header{
		version:     binary.LittleEndian.Uint32(data[8:]),
		flags:       binary.LittleEndian.Uint32(data[12:]),
		n:           binary.LittleEndian.Uint64(data[16:]),
		arcs:        binary.LittleEndian.Uint64(data[24:]),
		fingerprint: binary.LittleEndian.Uint64(data[32:]),
		offsetsSum:  binary.LittleEndian.Uint64(data[40:]),
		adjSum:      binary.LittleEndian.Uint64(data[48:]),
		weightsSum:  binary.LittleEndian.Uint64(data[56:]),
	}
	if h.version != Version {
		return nil, fmt.Errorf("%w: %d (reader supports %d)", ErrVersion, h.version, Version)
	}
	if h.flags&^uint32(FlagWeighted) != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrFlags, h.flags)
	}
	if h.n > maxSnapshotVertices {
		return nil, fmt.Errorf("%w: vertex count %d exceeds limit %d", ErrHeader, h.n, uint64(maxSnapshotVertices))
	}
	if h.arcs > maxSnapshotArcs {
		return nil, fmt.Errorf("%w: arc count %d exceeds limit %d", ErrHeader, h.arcs, uint64(maxSnapshotArcs))
	}
	if h.arcs%2 != 0 {
		return nil, fmt.Errorf("%w: odd arc count %d", ErrHeader, h.arcs)
	}
	if !h.weighted() && h.weightsSum != 0 {
		return nil, fmt.Errorf("%w: weights checksum set without the weighted flag", ErrHeader)
	}
	return h, nil
}

// Snapshot is a decoded snapshot: the graph views plus ownership of the
// backing memory (a mapping under Load, a heap buffer under Read/Decode).
// The views alias that memory — Close invalidates them.
type Snapshot struct {
	g      *graph.Graph
	wg     *graph.WeightedGraph // nil when the file has no weights
	data   []byte
	mapped bool
}

// Graph returns the unweighted view (always present; for a weighted
// snapshot it shares storage with Weighted).
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Weighted returns the weighted view, or nil for an unweighted snapshot.
func (s *Snapshot) Weighted() *graph.WeightedGraph { return s.wg }

// Fingerprint returns the content fingerprint recorded in (and verified
// against) the file.
func (s *Snapshot) Fingerprint() uint64 {
	if s.wg != nil {
		return s.wg.Fingerprint()
	}
	return s.g.Fingerprint()
}

// Mapped reports whether the snapshot is backed by a memory mapping (vs a
// heap copy from the read fallback).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Close releases the backing memory. The graphs returned by Graph and
// Weighted must not be used afterwards: for a mapped snapshot their
// storage is unmapped. Safe to call twice.
func (s *Snapshot) Close() error {
	if s == nil || s.data == nil {
		return nil
	}
	data := s.data
	s.data, s.g, s.wg = nil, nil, nil
	if s.mapped {
		s.mapped = false
		return munmap(data)
	}
	return nil
}

// decode validates data as a snapshot and builds the views. On the happy
// path the views alias data directly; when data is not suitably aligned
// for in-place reinterpretation (possible for arbitrary caller buffers,
// never for a mapping or io.ReadAll result in practice) the affected
// section is copied.
func decode(data []byte, mapped bool) (*Snapshot, error) {
	h, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	offsetsLen, adjLen, weightsLen := h.sectionSizes()
	want := uint64(headerSize) + offsetsLen + adjLen + weightsLen
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: %d bytes, header describes %d", ErrTruncated, len(data), want)
	}
	offsetsBytes := data[headerSize : headerSize+offsetsLen]
	adjBytes := data[headerSize+offsetsLen : headerSize+offsetsLen+adjLen]
	weightsBytes := data[headerSize+offsetsLen+adjLen:]

	offsets := int64View(offsetsBytes)
	adj := uint32View(adjBytes)
	var weights []float64
	if h.weighted() {
		weights = float64View(weightsBytes)
	}

	// The section hashes (chunk-parallel) and the structural CSR
	// validation are independent read-only passes over the mapping; for a
	// large snapshot each costs milliseconds, so overlap them too.
	s := &Snapshot{data: data, mapped: mapped}
	var structErr error
	var wait sync.WaitGroup
	wait.Add(1)
	go func() {
		defer wait.Done()
		if h.weighted() {
			wg, err := graph.FromWeightedCSR(offsets, adj, weights)
			if err != nil {
				structErr = err
				return
			}
			s.wg = wg
			s.g = wg.Unweighted()
		} else {
			g, err := graph.FromCSR(offsets, adj)
			if err != nil {
				structErr = err
				return
			}
			s.g = g
		}
	}()
	offsetsSum := chunkedSum(offsetsBytes)
	adjSum := chunkedSum(adjBytes)
	var weightsSum uint64
	if h.weighted() {
		weightsSum = chunkedSum(weightsBytes)
	}
	wait.Wait()

	// Report checksum mismatches before structural ones: a corrupted bit
	// usually breaks both, and "checksum mismatch" is the actionable
	// diagnosis (re-fetch the file), not "invalid CSR".
	if offsetsSum != h.offsetsSum {
		return nil, fmt.Errorf("%w: offsets section hashes %#016x, recorded %#016x", ErrChecksum, offsetsSum, h.offsetsSum)
	}
	if adjSum != h.adjSum {
		return nil, fmt.Errorf("%w: adjacency section hashes %#016x, recorded %#016x", ErrChecksum, adjSum, h.adjSum)
	}
	if h.weighted() && weightsSum != h.weightsSum {
		return nil, fmt.Errorf("%w: weights section hashes %#016x, recorded %#016x", ErrChecksum, weightsSum, h.weightsSum)
	}
	if structErr != nil {
		return nil, structErr
	}
	// The fingerprint is a fold over the section sums verified above, so
	// checking it costs O(1) — the payload is hashed exactly once per
	// load, which is what keeps mapping a snapshot an order of magnitude
	// cheaper than parsing it from text (the E24 gate).
	if got := graph.FoldFingerprint(h.n, h.arcs, h.weighted(), h.offsetsSum, h.adjSum, h.weightsSum); got != h.fingerprint {
		return nil, fmt.Errorf("%w: content fingerprint is %#016x, header records %#016x", ErrChecksum, got, h.fingerprint)
	}
	return s, nil
}

// Decode validates data as a snapshot. The returned views alias data
// where alignment permits; the caller keeps data alive until Close.
func Decode(data []byte) (*Snapshot, error) {
	return decode(data, false)
}

// Read loads a snapshot from any reader via one contiguous read — the
// fallback for non-mmap platforms and non-file sources.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decode(data, false)
}

// Load opens a snapshot file, memory-mapping it where the platform
// supports it and falling back to reading it whole otherwise. The
// returned snapshot owns the mapping; Close releases it and invalidates
// the graphs.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("%w: %s is %d bytes, header needs %d", ErrTruncated, path, size, headerSize)
	}
	if uint64(size) > uint64(math.MaxInt) {
		return nil, fmt.Errorf("%w: %s is %d bytes, beyond this platform's address space", ErrHeader, path, size)
	}
	if data, ok := mmapFile(f, size); ok {
		s, err := decode(data, true)
		if err != nil {
			_ = munmap(data)
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// fnvWords is the chunk hash: FNV-1a absorbing little-endian 64-bit
// words (a trailing partial word zero-padded — unreachable for real
// sections, which are whole numbers of words). Identical to the typed
// hashing behind graph.SectionSum*.
func fnvWords(h uint64, b []byte) uint64 {
	for ; len(b) >= 8; b = b[8:] {
		w := binary.LittleEndian.Uint64(b)
		h ^= w
		h *= fnvPrime64
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h ^= binary.LittleEndian.Uint64(tail[:])
		h *= fnvPrime64
	}
	return h
}

// chunkedSum computes the chunked section checksum over raw section
// bytes, hashing chunks concurrently when the section is large and cores
// are available — the decode-side counterpart of graph.SectionSum*.
func chunkedSum(b []byte) uint64 {
	nChunks := (len(b) + graph.SectionChunkBytes - 1) / graph.SectionChunkBytes
	sums := make([]uint64, nChunks)
	hashRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			start := i * graph.SectionChunkBytes
			end := min(start+graph.SectionChunkBytes, len(b))
			sums[i] = fnvWords(fnvOffset64, b[start:end])
		}
	}
	if workers := min(nChunks, runtime.GOMAXPROCS(0), 8); workers > 1 {
		var wait sync.WaitGroup
		per := (nChunks + workers - 1) / workers
		for lo := 0; lo < nChunks; lo += per {
			wait.Add(1)
			go func(lo int) {
				defer wait.Done()
				hashRange(lo, min(lo+per, nChunks))
			}(lo)
		}
		wait.Wait()
	} else {
		hashRange(0, nChunks)
	}
	fold := uint64(fnvOffset64)
	var le [8]byte
	for _, s := range sums {
		binary.LittleEndian.PutUint64(le[:], s)
		fold = fnv64a(fold, le[:])
	}
	return fold
}

// sectionWriter streams a numeric slice as little-endian bytes in chunks,
// hashing as it goes; encode fills buf with up to len(xs)-done values and
// returns how many bytes it produced.
const writeChunk = 1 << 16

// writeInt64s streams xs little-endian.
func writeInt64s(w io.Writer, xs []int64) error {
	var buf [writeChunk]byte
	for len(xs) > 0 {
		k := len(buf) / 8
		if k > len(xs) {
			k = len(xs)
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(xs[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeUint32s(w io.Writer, xs []uint32) error {
	var buf [writeChunk]byte
	for len(xs) > 0 {
		k := len(buf) / 4
		if k > len(xs) {
			k = len(xs)
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], xs[i])
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

func writeFloat64s(w io.Writer, xs []float64) error {
	var buf [writeChunk]byte
	for len(xs) > 0 {
		k := len(buf) / 8
		if k > len(xs) {
			k = len(xs)
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(xs[i]))
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

// writeCSR streams the full snapshot for raw CSR arrays. The section
// checksums hash the typed arrays directly (graph.SectionSum* — word-wise,
// no serialization pass), then the sections stream as plain bytes.
func writeCSR(w io.Writer, offsets []int64, adj []uint32, weights []float64) error {
	if len(offsets) == 0 {
		offsets = []int64{0} // zero-value graph canonicalizes to the empty snapshot
	}
	h := header{
		version:    Version,
		n:          uint64(len(offsets) - 1),
		arcs:       uint64(len(adj)),
		offsetsSum: graph.SectionSumInt64s(offsets),
		adjSum:     graph.SectionSumUint32s(adj),
	}
	if weights != nil {
		h.flags |= FlagWeighted
		h.weightsSum = graph.SectionSumFloat64s(weights)
	}
	// The fingerprint folds the section sums just computed, so it costs
	// nothing extra here and equals graph.FingerprintCSR on the arrays.
	h.fingerprint = graph.FoldFingerprint(h.n, h.arcs, weights != nil, h.offsetsSum, h.adjSum, h.weightsSum)
	buf := encodeHeader(&h)
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	if err := writeInt64s(w, offsets); err != nil {
		return err
	}
	if err := writeUint32s(w, adj); err != nil {
		return err
	}
	if weights != nil {
		if err := writeFloat64s(w, weights); err != nil {
			return err
		}
	}
	return nil
}

// Write streams g as an unweighted snapshot. The output is canonical:
// writing the same graph always produces the same bytes, and decoding
// then re-writing any valid snapshot reproduces it exactly.
func Write(w io.Writer, g *graph.Graph) error {
	return writeCSR(w, g.Offsets(), g.Adjacency(), nil)
}

// WriteWeighted streams g as a weighted snapshot.
func WriteWeighted(w io.Writer, g *graph.WeightedGraph) error {
	return writeCSR(w, g.Offsets(), g.Adjacency(), g.Weights())
}

// WriteFile writes g (or, when wg is non-nil, wg) to path via a temp file
// rename so a crashed writer never leaves a partial snapshot at path.
func WriteFile(path string, g *graph.Graph, wg *graph.WeightedGraph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".mpxsnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if wg != nil {
		err = WriteWeighted(tmp, wg)
	} else {
		err = Write(tmp, g)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if err == nil {
		// CreateTemp opens 0600; a snapshot is a shareable artifact.
		err = tmp.Chmod(0o644)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// init registers the format with graph.OpenAny.
func init() {
	graph.RegisterFormat("snapshot", Magic[:], func(path string) (*graph.Opened, error) {
		s, err := Load(path)
		if err != nil {
			return nil, err
		}
		return graph.NewOpened(s.Graph(), s.Weighted(), "snapshot", s), nil
	})
}
