package snapshot

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// In-place section views. The on-disk encoding is little-endian, and the
// sections are laid out 8-byte aligned relative to the file start, so on
// a little-endian host with an aligned base pointer (always true for a
// page-aligned mapping or an io.ReadAll buffer) a section can be
// reinterpreted as its typed slice without copying. The fallbacks — a
// big-endian host, or a caller-provided unaligned buffer to Decode —
// decode by copying, preserving correctness everywhere the fast path
// doesn't apply.

// hostLittleEndian reports whether the running machine stores integers
// little-endian, decided once at startup.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func aligned(b []byte, align uintptr) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%align == 0
}

// int64View reinterprets b (length a multiple of 8) as []int64,
// zero-copy when possible.
func int64View(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// uint32View reinterprets b (length a multiple of 4) as []uint32.
func uint32View(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// float64View reinterprets b (length a multiple of 8) as []float64.
func float64View(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
