package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"mpx/internal/graph"
)

func encodeUnweighted(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeWeighted(t *testing.T, wg *graph.WeightedGraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteWeighted(&buf, wg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reseal recomputes every checksum and the fingerprint of a (possibly
// mutated) snapshot byte image from its actual content, using an
// implementation independent of the decoder: per-section FNV-1a sums over
// the raw section bytes, then the fingerprint as an FNV-1a fold of
// LE64(n) ‖ LE64(arcs) ‖ weightedByte ‖ the three sums. Tests use it to
// push a mutation past the checksum layer so the structural validation is
// what must reject it.
func reseal(data []byte) {
	n := binary.LittleEndian.Uint64(data[16:])
	arcs := binary.LittleEndian.Uint64(data[24:])
	flags := binary.LittleEndian.Uint32(data[12:])
	offsetsEnd := uint64(headerSize) + 8*(n+1)
	adjEnd := offsetsEnd + 4*arcs
	weightsEnd := adjEnd
	weightedByte := byte(0)
	if flags&FlagWeighted != 0 {
		weightsEnd += 8 * arcs
		weightedByte = 1
	}
	// Independent reference implementation of the chunked section sum:
	// word-wise FNV-1a per 1 MiB chunk, chunk sums folded byte-wise.
	const prime = 1099511628211
	sectionSum := func(b []byte) uint64 {
		fold := uint64(fnvOffset64)
		for start := 0; start < len(b); start += graph.SectionChunkBytes {
			end := min(start+graph.SectionChunkBytes, len(b))
			h := uint64(fnvOffset64)
			for p := start; p < end; p += 8 {
				h = (h ^ binary.LittleEndian.Uint64(b[p:])) * prime
			}
			var le [8]byte
			binary.LittleEndian.PutUint64(le[:], h)
			fold = fnv64a(fold, le[:])
		}
		return fold
	}
	offsetsSum := sectionSum(data[headerSize:offsetsEnd])
	adjSum := sectionSum(data[offsetsEnd:adjEnd])
	var weightsSum uint64
	if weightedByte == 1 {
		weightsSum = sectionSum(data[adjEnd:weightsEnd])
	}
	var fold [41]byte
	binary.LittleEndian.PutUint64(fold[0:], n)
	binary.LittleEndian.PutUint64(fold[8:], arcs)
	fold[16] = weightedByte
	binary.LittleEndian.PutUint64(fold[17:], offsetsSum)
	binary.LittleEndian.PutUint64(fold[25:], adjSum)
	binary.LittleEndian.PutUint64(fold[33:], weightsSum)
	binary.LittleEndian.PutUint64(data[32:], fnv64a(fnvOffset64, fold[:]))
	binary.LittleEndian.PutUint64(data[40:], offsetsSum)
	binary.LittleEndian.PutUint64(data[48:], adjSum)
	binary.LittleEndian.PutUint64(data[56:], weightsSum)
	binary.LittleEndian.PutUint64(data[offHeaderSum:], fnv64a(fnvOffset64, data[:offHeaderSum]))
}

// TestGoldenLayout pins the on-disk byte layout: any change to the header
// fields, section order, endianness, checksum definition, or fingerprint
// definition changes these bytes and must bump the format version
// instead.
func TestGoldenLayout(t *testing.T) {
	const goldenUnweighted = "4d5058534e415000010000000000000003000000000000000400000000000000" +
		"aa2131f13eeee75c6bae5113341f0ab16d690be54a0bcba10000000000000000" +
		"bac56bb762bd438f000000000000000001000000000000000300000000000000" +
		"040000000000000001000000000000000200000001000000"
	const goldenWeighted = "4d5058534e415000010000000100000003000000000000000400000000000000b6" +
		"f7a96bd1b757426bae5113341f0ab16d690be54a0bcba1865e5743ecf608ad9638" +
		"af09134a27e1000000000000000001000000000000000300000000000000040000" +
		"000000000001000000000000000200000001000000000000000000044000000000" +
		"00000440000000000000f03f000000000000f03f"

	got := hex.EncodeToString(encodeUnweighted(t, graph.Path(3)))
	if got != goldenUnweighted {
		t.Errorf("unweighted Path(3) bytes changed:\n got %s\nwant %s", got, goldenUnweighted)
	}
	wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(encodeWeighted(t, wg)); got != goldenWeighted {
		t.Errorf("weighted bytes changed:\n got %s\nwant %s", got, goldenWeighted)
	}
}

func assertGraphEqual(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	ao, bo := a.Offsets(), b.Offsets()
	aa, ba := a.Adjacency(), b.Adjacency()
	if len(ao) != len(bo) || len(aa) != len(ba) {
		t.Fatalf("shape differs: offsets %d vs %d, arcs %d vs %d", len(ao), len(bo), len(aa), len(ba))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("offsets differ at %d", i)
		}
	}
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("adjacency differs at arc %d", i)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
}

// TestRoundTripUnweighted checks write → decode bit-identity (CSR arrays
// and fingerprint) across graph shapes, including the empty graph and the
// zero value.
func TestRoundTripUnweighted(t *testing.T) {
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{
		graph.Grid2D(7, 9),
		graph.GNM(500, 2000, 11),
		graph.Path(2),
		empty,
		{}, // zero value canonicalizes to the empty snapshot
	} {
		data := encodeUnweighted(t, g)
		s, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if s.Weighted() != nil {
			t.Fatalf("%v: unweighted snapshot decoded a weighted view", g)
		}
		if g.NumVertices() > 0 {
			assertGraphEqual(t, g, s.Graph())
		}
		if s.Fingerprint() != g.Fingerprint() {
			t.Fatalf("%v: fingerprint %016x != %016x", g, s.Fingerprint(), g.Fingerprint())
		}
		// Canonical re-encode: decode → write reproduces the input bytes.
		if !bytes.Equal(encodeUnweighted(t, s.Graph()), data) {
			t.Fatalf("%v: re-encode changed bytes", g)
		}
	}
}

// TestRoundTripWeighted covers the weight payload: exact float64 bit
// round-trip and the weighted fingerprint.
func TestRoundTripWeighted(t *testing.T) {
	wg := graph.RandomWeights(graph.GNM(300, 1200, 5), 1, 8, 3)
	data := encodeWeighted(t, wg)
	s, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Weighted()
	if got == nil {
		t.Fatal("weighted snapshot lost its weights")
	}
	assertGraphEqual(t, wg.Unweighted(), got.Unweighted())
	aw, bw := wg.Weights(), got.Weights()
	for i := range aw {
		if math.Float64bits(aw[i]) != math.Float64bits(bw[i]) {
			t.Fatalf("weight bits differ at arc %d", i)
		}
	}
	if s.Fingerprint() != wg.Fingerprint() {
		t.Fatalf("fingerprint %016x != %016x", s.Fingerprint(), wg.Fingerprint())
	}
	if wg.Fingerprint() == wg.Unweighted().Fingerprint() {
		t.Fatal("weighted and unweighted fingerprints collide")
	}
	if !bytes.Equal(encodeWeighted(t, got), data) {
		t.Fatal("re-encode changed bytes")
	}
}

// TestLoadMmap exercises the file path: Load must memory-map on unix,
// serve the identical graph, and survive Close (including double Close).
func TestLoadMmap(t *testing.T) {
	g := graph.Grid2D(20, 30)
	path := filepath.Join(t.TempDir(), "g.mpxsnap")
	if err := WriteFile(path, g, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd":
		if !s.Mapped() {
			t.Error("Load did not mmap on a unix platform")
		}
	}
	assertGraphEqual(t, g, s.Graph())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if s.Graph() != nil {
		t.Fatal("Graph() still set after Close")
	}
}

// TestWriteFileAtomic checks the rename discipline: a failed write leaves
// nothing at the target path.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.mpxsnap")
	if err := WriteFile(path, graph.Path(4), nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.mpxsnap" {
		t.Fatalf("directory not clean after write: %v", entries)
	}
}

// TestHostileInputs is the corrupt-snapshot table: every mutation class
// must fail with its typed error, never a panic or a silently wrong
// graph. Structural mutations are resealed (checksums and fingerprint
// recomputed) so the CSR validation layer is what rejects them.
func TestHostileInputs(t *testing.T) {
	base := func() []byte { return encodeUnweighted(t, graph.Path(3)) }
	wbase := func() []byte {
		wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}})
		if err != nil {
			t.Fatal(err)
		}
		return encodeWeighted(t, wg)
	}
	cases := []struct {
		name   string
		mutate func() []byte
		want   error
	}{
		{"empty", func() []byte { return nil }, ErrTruncated},
		{"truncated header", func() []byte { return base()[:71] }, ErrTruncated},
		{"header only", func() []byte { return base()[:headerSize] }, ErrTruncated},
		{"truncated payload", func() []byte { d := base(); return d[:len(d)-1] }, ErrTruncated},
		{"trailing garbage", func() []byte { return append(base(), 0) }, ErrTruncated},
		{"bad magic", func() []byte { d := base(); d[0] = 'X'; return d }, ErrBadMagic},
		{"flipped header bit", func() []byte { d := base(); d[17] ^= 1; return d }, ErrChecksum},
		{"wrong version", func() []byte {
			d := base()
			binary.LittleEndian.PutUint32(d[8:], 2)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrVersion},
		{"unknown flag", func() []byte {
			d := base()
			binary.LittleEndian.PutUint32(d[12:], 2)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrFlags},
		{"odd arcs", func() []byte {
			d := base()
			binary.LittleEndian.PutUint64(d[24:], 5)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrHeader},
		{"huge n", func() []byte {
			d := base()
			binary.LittleEndian.PutUint64(d[16:], 1<<50)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrHeader},
		{"weights checksum without flag", func() []byte {
			d := base()
			binary.LittleEndian.PutUint64(d[56:], 1)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrHeader},
		{"corrupt offsets", func() []byte { d := base(); d[headerSize] ^= 1; return d }, ErrChecksum},
		{"corrupt adjacency", func() []byte { d := base(); d[len(d)-1] ^= 1; return d }, ErrChecksum},
		{"corrupt weights", func() []byte { d := wbase(); d[len(d)-1] ^= 1; return d }, ErrChecksum},
		{"wrong fingerprint", func() []byte {
			d := base()
			binary.LittleEndian.PutUint64(d[32:], 0xdeadbeef)
			binary.LittleEndian.PutUint64(d[offHeaderSum:], fnv64a(fnvOffset64, d[:offHeaderSum]))
			return d
		}, ErrChecksum},
		{"out-of-range adjacency", func() []byte {
			d := base()
			binary.LittleEndian.PutUint32(d[len(d)-4:], 99) // last arc -> vertex 99 of 3
			reseal(d)
			return d
		}, graph.ErrInvalidCSR},
		{"unsorted adjacency", func() []byte {
			d := base()
			// Vertex 1's list is [0, 2]; swap to [2, 0].
			binary.LittleEndian.PutUint32(d[len(d)-12:], 2)
			binary.LittleEndian.PutUint32(d[len(d)-8:], 0)
			reseal(d)
			return d
		}, graph.ErrInvalidCSR},
		{"self loop", func() []byte {
			d := base()
			binary.LittleEndian.PutUint32(d[len(d)-4:], 2) // vertex 2 lists itself
			reseal(d)
			return d
		}, graph.ErrInvalidCSR},
		{"offsets start nonzero", func() []byte {
			d := base()
			binary.LittleEndian.PutUint64(d[headerSize:], 1)
			reseal(d)
			return d
		}, graph.ErrInvalidCSR},
		{"offsets decrease", func() []byte {
			d := base()
			// offsets are [0,1,3,4]; make the middle one 9 > 4... decreasing after.
			binary.LittleEndian.PutUint64(d[headerSize+16:], 9)
			reseal(d)
			return d
		}, graph.ErrInvalidCSR},
		{"bad weight bits", func() []byte {
			d := wbase()
			binary.LittleEndian.PutUint64(d[len(d)-8:], math.Float64bits(math.NaN()))
			reseal(d)
			return d
		}, nil}, // any error is fine, but it must be an error
	}
	for _, tc := range cases {
		data := tc.mutate()
		s, err := Decode(data)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
			_ = s.Close()
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestLoadErrors covers the file-level failure paths of Load.
func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.mpxsnap")); err == nil {
		t.Error("Load of a missing file succeeded")
	}
	short := filepath.Join(dir, "short.mpxsnap")
	if err := os.WriteFile(short, []byte("MPXSNAP\x00tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short file: error %v, want ErrTruncated", err)
	}
	trunc := filepath.Join(dir, "trunc.mpxsnap")
	data := encodeUnweighted(t, graph.Grid2D(5, 5))
	if err := os.WriteFile(trunc, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated file: error %v, want ErrTruncated", err)
	}
}

// TestOpenAnyDispatch checks the graph.OpenAny integration this package
// registers in init: snapshots dispatch by magic, and the update-trace /
// CLI loading path gets the same graph as a direct Load.
func TestOpenAnyDispatch(t *testing.T) {
	dir := t.TempDir()
	g := graph.Grid2D(8, 6)
	upath := filepath.Join(dir, "u.mpxsnap")
	if err := WriteFile(upath, g, nil); err != nil {
		t.Fatal(err)
	}
	o, err := graph.OpenAny(upath)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.Format != "snapshot" {
		t.Fatalf("format %q, want snapshot", o.Format)
	}
	if o.Weighted != nil {
		t.Fatal("unweighted snapshot opened weighted")
	}
	assertGraphEqual(t, g, o.Graph)

	wg := graph.RandomWeights(g, 1, 4, 9)
	wpath := filepath.Join(dir, "w.mpxsnap")
	if err := WriteFile(wpath, nil, wg); err != nil {
		t.Fatal(err)
	}
	ow, err := graph.OpenAny(wpath)
	if err != nil {
		t.Fatal(err)
	}
	defer ow.Close()
	if ow.Format != "snapshot" || ow.Weighted == nil {
		t.Fatalf("weighted snapshot: format %q weighted %v", ow.Format, ow.Weighted != nil)
	}
	if ow.Weighted.Fingerprint() != wg.Fingerprint() {
		t.Fatal("weighted fingerprint changed through OpenAny")
	}
}
