package graph

import (
	"sort"
	"sync/atomic"

	"mpx/internal/parallel"
)

// FromEdgesParallel builds the same CSR graph as FromEdges using the
// scan-based parallel construction: parallel degree counting (atomic
// histogram), a parallel exclusive scan for the offsets, parallel
// scattering of arcs, and parallel per-vertex adjacency sorts. Output is
// bit-identical to FromEdges (both sort each adjacency list), so callers
// can switch freely; the experiments use it for multi-million-edge
// workloads.
func FromEdgesParallel(n int, edges []Edge, workers int) (*Graph, error) {
	if n < 0 {
		return nil, errNegativeN
	}
	var bad int32
	parallel.ForRange(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if int(edges[i].U) >= n || int(edges[i].V) >= n {
				atomic.StoreInt32(&bad, 1)
			}
		}
	})
	if bad != 0 {
		return nil, ErrVertexRange
	}

	// Degree histogram: counts[v] = deg(v); self loops dropped as in
	// FromEdges.
	counts := make([]int64, n)
	parallel.ForRange(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			atomic.AddInt64(&counts[e.U], 1)
			atomic.AddInt64(&counts[e.V], 1)
		}
	})

	// Offsets via exclusive scan: offsets[v] = Σ_{u<v} deg(u).
	offsets := make([]int64, n+1)
	copy(offsets[:n], counts)
	total := parallel.ExclusiveScan(workers, offsets[:n])
	offsets[n] = total

	// Scatter arcs with per-vertex atomic cursors; the nondeterministic
	// placement is erased by the per-vertex sort below.
	adj := make([]uint32, total)
	cursor := make([]int64, n)
	parallel.For(workers, n, func(v int) { cursor[v] = offsets[v] })
	parallel.ForRange(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if e.U == e.V {
				continue
			}
			adj[atomic.AddInt64(&cursor[e.U], 1)-1] = e.V
			adj[atomic.AddInt64(&cursor[e.V], 1)-1] = e.U
		}
	})

	g := &Graph{offsets: offsets, adj: adj}
	parallel.For(workers, n, func(v int) {
		nb := adj[offsets[v]:offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	})
	return g, nil
}

var errNegativeN = errorString("graph: negative vertex count")
