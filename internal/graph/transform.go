package graph

import (
	"fmt"

	"mpx/internal/xrand"
)

// Permute relabels the vertices of g by the given permutation: vertex v in
// g becomes perm[v] in the result. Decomposition algorithms whose behavior
// must be label-independent are tested against permuted copies.
func Permute(g *Graph, perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d for n=%d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u {
				edges = append(edges, Edge{perm[v], perm[u]})
			}
		}
	}
	return FromEdges(n, edges)
}

// RandomPermutation returns a uniform random relabeling for Permute.
func RandomPermutation(n int, seed uint64) []uint32 {
	return xrand.NewSplitMix64(seed).Perm32(n)
}

// Union returns the graph on max(n1, n2) vertices whose edge set is the
// union of the two inputs (deduplicated).
func Union(a, b *Graph) *Graph {
	n := a.NumVertices()
	if b.NumVertices() > n {
		n = b.NumVertices()
	}
	edges := append(a.Edges(), b.Edges()...)
	g, err := FromEdgesDedup(n, edges)
	if err != nil {
		panic(err) // inputs are valid graphs
	}
	return g
}

// AddRandomMatching adds k random non-adjacent edges to g (a cheap way to
// build small-world variants of structured graphs). Fewer than k edges may
// be added if rejection sampling runs out of attempts.
func AddRandomMatching(g *Graph, k int, seed uint64) *Graph {
	n := g.NumVertices()
	if n < 2 {
		return g
	}
	rng := xrand.NewSplitMix64(seed)
	edges := g.Edges()
	added := 0
	for attempt := 0; attempt < 20*k && added < k; attempt++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		edges = append(edges, Edge{u, v})
		added++
	}
	out, err := FromEdgesDedup(n, edges)
	if err != nil {
		panic(err)
	}
	return out
}

// ContractClusters returns the quotient graph whose vertices are the
// distinct values of label (densely renumbered in first-appearance order)
// and whose edges connect clusters joined by at least one original edge.
// It also returns the mapping from original vertex to quotient vertex.
// Self-loops (intra-cluster edges) are dropped; parallel edges collapsed.
// This is the contraction step of decomposition hierarchies (AKPW, tree
// embeddings) promoted to a reusable primitive.
func ContractClusters(g *Graph, label []uint32) (*Graph, []uint32, error) {
	n := g.NumVertices()
	if len(label) != n {
		return nil, nil, fmt.Errorf("graph: label length %d for n=%d", len(label), n)
	}
	remap := make(map[uint32]uint32)
	quot := make([]uint32, n)
	for v := 0; v < n; v++ {
		l := label[v]
		q, ok := remap[l]
		if !ok {
			q = uint32(len(remap))
			remap[l] = q
		}
		quot[v] = q
	}
	var edges []Edge
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if uint32(v) < u && quot[v] != quot[u] {
				edges = append(edges, Edge{quot[v], quot[u]})
			}
		}
	}
	out, err := FromEdgesDedup(len(remap), edges)
	if err != nil {
		return nil, nil, err
	}
	return out, quot, nil
}

// Subdivide returns the graph where every edge is split into a path of k
// unit edges (k >= 1; k == 1 returns a copy). Used to manufacture
// high-diameter variants of dense graphs.
func Subdivide(g *Graph, k int) *Graph {
	if k < 1 {
		panic("graph: Subdivide needs k >= 1")
	}
	n := g.NumVertices()
	edges := g.Edges()
	out := make([]Edge, 0, len(edges)*k)
	next := uint32(n)
	for _, e := range edges {
		prev := e.U
		for i := 1; i < k; i++ {
			out = append(out, Edge{prev, next})
			prev = next
			next++
		}
		out = append(out, Edge{prev, e.V})
	}
	res, err := FromEdges(n+(k-1)*len(edges), out)
	if err != nil {
		panic(err)
	}
	return res
}
