package graph

import "testing"

func BenchmarkFromEdgesGrid(b *testing.B) {
	proto := Grid2D(300, 300)
	edges := proto.Edges()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(proto.NumVertices(), edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGrid2DGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Grid2D(200, 200)
	}
}

func BenchmarkGNMGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = GNM(20000, 80000, uint64(i))
	}
}

func BenchmarkRMATGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RMAT(14, 100000, uint64(i))
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := Grid2D(300, 300)
	b.SetBytes(g.NumArcs() * 4)
	var sink uint32
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(uint32(v)) {
				sink += u
			}
		}
	}
	_ = sink
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := GNM(50000, 100000, 1)
	for i := 0; i < b.N; i++ {
		_, _ = ConnectedComponents(g)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := RMAT(14, 100000, 3)
	n := uint32(g.NumVertices())
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = g.HasEdge(uint32(i)%n, uint32(i*7)%n)
	}
	_ = sink
}
